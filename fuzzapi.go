package sesa

import (
	"sesa/internal/fuzz"
)

// FuzzBudget bounds the shape of generated litmus programs (threads, ops
// per thread, distinct addresses, fences, RMWs).
type FuzzBudget = fuzz.Budget

// FuzzOptions configures one three-way cross-validation: which machines to
// witness-run on the timing simulator and with what timing exploration.
type FuzzOptions = fuzz.Options

// FuzzReport is the cross-validation result for one program; FuzzMismatch
// one three-way disagreement inside it.
type (
	FuzzReport   = fuzz.Report
	FuzzMismatch = fuzz.Mismatch
)

// FuzzProgramReport pairs a generated program's seed with its report.
type FuzzProgramReport = fuzz.ProgramReport

// DefaultFuzzBudget is the CI fuzzing budget: 3 threads, 4 ops, 2 addresses,
// 1 fence, 1 RMW.
func DefaultFuzzBudget() FuzzBudget { return fuzz.DefaultBudget() }

// ParseFuzzBudget parses a -budget flag value ("threads=3,ops=4,...");
// omitted keys keep their defaults.
func ParseFuzzBudget(s string) (FuzzBudget, error) { return fuzz.ParseBudget(s) }

// DefaultFuzzOptions is the CI witness budget: all five machines, a handful
// of timing samples per variant, SB pressure on, both configurations.
func DefaultFuzzOptions() FuzzOptions { return fuzz.DefaultOptions() }

// GenerateLitmus deterministically generates the litmus program of a seed
// under a budget: same seed and budget, same program, forever.
func GenerateLitmus(seed uint64, b FuzzBudget) CheckerProgram { return fuzz.Generate(seed, b) }

// RenderLitmusText renders a program in the ConsistencyChecker column
// format; ParseLitmusText is its inverse.
func RenderLitmusText(p CheckerProgram) (string, error) { return fuzz.Render(p) }

// ParseLitmusText parses a ConsistencyChecker-style program text.
func ParseLitmusText(src string) (CheckerProgram, error) { return fuzz.Parse(src) }

// ExportAlloy renders a program as a memalloy-style candidate-execution
// module (exec_H signature) for external axiomatic tools.
func ExportAlloy(name string, p CheckerProgram) (string, error) { return fuzz.ExportAlloy(name, p) }

// FuzzCrossValidate checks one program three ways: operational checker vs
// axiomatic enumerator (outcome-set equality per model) and timing-simulator
// witnesses vs the bounding operational model (set inclusion).
func FuzzCrossValidate(p CheckerProgram, opt FuzzOptions) (*FuzzReport, error) {
	return fuzz.CrossValidate(p, opt)
}

// FuzzMany generates and cross-validates count programs on jobs workers.
// Program i uses seed baseSeed+i and results come back in index order, so
// output is byte-identical across worker counts and any program reproduces
// alone from its seed.
func FuzzMany(baseSeed uint64, count int, b FuzzBudget, opt FuzzOptions, jobs int) []FuzzProgramReport {
	return fuzz.RunMany(baseSeed, count, b, opt, jobs)
}

// MinimizeLitmus greedily shrinks a failing program while the predicate
// keeps holding, deterministically.
func MinimizeLitmus(p CheckerProgram, failing func(CheckerProgram) bool) CheckerProgram {
	return fuzz.Minimize(p, fuzz.Failing(failing))
}
