package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRunDeterministic guards the fix for the nondeterministic
// map-iteration output order: two runs must be byte-identical.
func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs produced different output")
	}
}

// TestRunGolden compares the full-suite report against the checked-in
// golden. Regenerate with:
//
//	go run ./cmd/sesa-check > cmd/sesa-check/testdata/check_all.golden
func TestRunGolden(t *testing.T) {
	var got bytes.Buffer
	if err := run(&got, ""); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "check_all.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("output differs from testdata/check_all.golden;\ngot:\n%s", got.String())
	}
}

// TestRunUnknownTest checks the error path.
func TestRunUnknownTest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "no-such-test"); err == nil {
		t.Fatal("expected an error for an unknown test")
	}
}
