package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRunDeterministic guards the fix for the nondeterministic
// map-iteration output order: two runs must be byte-identical.
func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "", ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs produced different output")
	}
}

// TestRunGolden compares the full-suite report against the checked-in
// golden. Regenerate with:
//
//	go run ./cmd/sesa-check > cmd/sesa-check/testdata/check_all.golden
func TestRunGolden(t *testing.T) {
	var got bytes.Buffer
	if err := run(&got, "", ""); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "check_all.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("output differs from testdata/check_all.golden;\ngot:\n%s", got.String())
	}
}

// TestRunUnknownTest checks the error path.
func TestRunUnknownTest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "no-such-test", ""); err == nil {
		t.Fatal("expected an error for an unknown test")
	}
}

// TestRunExportAlloy: -export-alloy writes one module per selected test and
// leaves the stdout report byte-identical to a run without it.
func TestRunExportAlloy(t *testing.T) {
	dir := t.TempDir()
	var with, without bytes.Buffer
	if err := run(&without, "n6,iriw", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&with, "n6,iriw", dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(with.Bytes(), without.Bytes()) {
		t.Fatal("-export-alloy changed the report output")
	}
	for _, name := range []string{"n6.als", "iriw.als"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte("open exec_H[E]")) {
			t.Errorf("%s: not an exec_H module", name)
		}
	}
}
