// Command sesa-check is the ConsistencyChecker of the paper's footnote 1:
// it exhaustively enumerates the outcomes of the litmus suite under the
// operational x86-TSO, store-atomic 370 and SC models, and prints the
// outcomes that x86 admits but a store-atomic machine forbids — the
// observable cost of abandoning store atomicity.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"sesa"
	"sesa/internal/config"
	"sesa/internal/telemetry"
)

// modelPair cross-validates one operational model against its axiomatic
// formulation. The pairs are a fixed slice, not a map: output order must be
// deterministic so runs are diffable and the golden test is byte-stable.
type modelPair struct {
	op sesa.CheckerModel
	ax sesa.AxiomaticModel
}

var modelPairs = []modelPair{
	{sesa.CheckerSC, sesa.AxSC},
	{sesa.Checker370TSO, sesa.Ax370TSO},
	{sesa.CheckerX86TSO, sesa.AxX86TSO},
}

func main() {
	testName := flag.String("test", "", "litmus test name or comma-separated list (default: all)")
	alloyDir := flag.String("export-alloy", "", "also write each selected test as a memalloy-style candidate-execution module (<name>.als) into this directory")
	stepModeName := flag.String("step-mode", "skip", "accepted for CLI uniformity with the simulator binaries; the exhaustive checker is untimed, so the value has no effect")
	listModels := flag.Bool("list-models", false, "print the machine-model roster and exit")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	if *listModels {
		fmt.Print(sesa.ListModels())
		return
	}

	logger, err := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger.With(telemetry.KeyComponent, "sesa-check"))

	if _, err := sesa.ParseStepMode(*stepModeName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if err := run(os.Stdout, *testName, *alloyDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run checks the selected tests and writes the report to w; with a non-empty
// alloyDir it additionally exports every test as an Alloy module, leaving
// the report itself untouched.
func run(w io.Writer, testName, alloyDir string) error {
	tests := sesa.LitmusTests()
	if testName != "" {
		tests = nil
		for _, name := range strings.Split(testName, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			t, err := sesa.GetLitmus(name)
			if err != nil {
				return err
			}
			tests = append(tests, t)
		}
		if len(tests) == 0 {
			return fmt.Errorf("-test %q selects no tests (valid tests: %s)",
				testName, strings.Join(sesa.LitmusNames(), ", "))
		}
	}

	if alloyDir != "" {
		if err := os.MkdirAll(alloyDir, 0o755); err != nil {
			return err
		}
	}

	for _, t := range tests {
		if alloyDir != "" {
			mod, err := sesa.ExportAlloy(t.Name, t.Prog)
			if err != nil {
				return err
			}
			path := filepath.Join(alloyDir, t.Name+".als")
			if err := os.WriteFile(path, []byte(mod), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "=== %s — %s\n", t.Name, t.Doc)
		for _, m := range []sesa.CheckerModel{sesa.CheckerSC, sesa.Checker370TSO, sesa.CheckerX86TSO} {
			out := sesa.Enumerate(t.Prog, m)
			fmt.Fprintf(w, "  %-8s %2d outcomes:", m, len(out))
			for _, o := range out.Sorted() {
				fmt.Fprintf(w, "  [%s]", o)
			}
			fmt.Fprintln(w)
		}
		// Cross-validate the two formulations.
		for _, p := range modelPairs {
			axOut, err := sesa.EnumerateAxiomatic(t.Prog, p.ax)
			if err != nil {
				return err
			}
			opOut := sesa.Enumerate(t.Prog, p.op)
			match := len(axOut) == len(opOut)
			for o := range opOut {
				if !axOut.Contains(o) {
					match = false
				}
			}
			if !match {
				return fmt.Errorf("MISMATCH between operational %s and axiomatic %s on %s", p.op, p.ax, t.Name)
			}
		}
		fmt.Fprintln(w, "  axiomatic formulation agrees (uniproc + atomicity + ghb)")
		diff := sesa.CompareModels(t.Prog, sesa.CheckerX86TSO, sesa.Checker370TSO)
		if len(diff) == 0 {
			fmt.Fprintln(w, "  store atomicity is not observable in this test")
		} else {
			fmt.Fprintf(w, "  x86-only (store-atomicity violations observable):")
			for _, o := range diff {
				fmt.Fprintf(w, "  [%s]", o)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
