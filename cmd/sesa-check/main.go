// Command sesa-check is the ConsistencyChecker of the paper's footnote 1:
// it exhaustively enumerates the outcomes of the litmus suite under the
// operational x86-TSO, store-atomic 370 and SC models, and prints the
// outcomes that x86 admits but a store-atomic machine forbids — the
// observable cost of abandoning store atomicity.
package main

import (
	"flag"
	"fmt"
	"os"

	"sesa"
)

func main() {
	testName := flag.String("test", "", "litmus test name (default: all)")
	flag.Parse()

	tests := sesa.LitmusTests()
	if *testName != "" {
		t, err := sesa.GetLitmus(*testName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tests = []sesa.LitmusTest{t}
	}

	for _, t := range tests {
		fmt.Printf("=== %s — %s\n", t.Name, t.Doc)
		for _, m := range []sesa.CheckerModel{sesa.CheckerSC, sesa.Checker370TSO, sesa.CheckerX86TSO} {
			out := sesa.Enumerate(t.Prog, m)
			fmt.Printf("  %-8s %2d outcomes:", m, len(out))
			for _, o := range out.Sorted() {
				fmt.Printf("  [%s]", o)
			}
			fmt.Println()
		}
		// Cross-validate the two formulations.
		for op, ax := range map[sesa.CheckerModel]sesa.AxiomaticModel{
			sesa.CheckerSC:     sesa.AxSC,
			sesa.Checker370TSO: sesa.Ax370TSO,
			sesa.CheckerX86TSO: sesa.AxX86TSO,
		} {
			axOut, err := sesa.EnumerateAxiomatic(t.Prog, ax)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opOut := sesa.Enumerate(t.Prog, op)
			match := len(axOut) == len(opOut)
			for o := range opOut {
				if !axOut.Contains(o) {
					match = false
				}
			}
			if !match {
				fmt.Printf("  MISMATCH between operational %s and axiomatic %s!\n", op, ax)
				os.Exit(1)
			}
		}
		fmt.Println("  axiomatic formulation agrees (uniproc + atomicity + ghb)")
		diff := sesa.CompareModels(t.Prog, sesa.CheckerX86TSO, sesa.Checker370TSO)
		if len(diff) == 0 {
			fmt.Println("  store atomicity is not observable in this test")
		} else {
			fmt.Printf("  x86-only (store-atomicity violations observable):")
			for _, o := range diff {
				fmt.Printf("  [%s]", o)
			}
			fmt.Println()
		}
	}
}
