// Command sesa-litmus runs the paper's litmus tests on the cycle-accurate
// simulator and cross-checks every observed outcome against the exhaustive
// operational model (the litmus7-on-hardware workflow of Section III, with
// the simulator standing in for the Intel parts).
//
// Usage:
//
//	sesa-litmus [-test mp|n6|iriw|fig5|... or a comma list: mp,n6,iriw]
//	            [-model all|x86,370-RCP,...] [-iters N]
//	            [-pressure N] [-seed S]
//	            [-trace-out trace.json] [-trace-format chrome|kanata]
//	            [-metrics-interval N -metrics-out metrics.csv]
//	sesa-litmus -list-models
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"

	"sesa"
	"sesa/internal/config"
	"sesa/internal/telemetry"
)

func main() {
	testName := flag.String("test", "", "litmus test name or comma-separated list (default: all)")
	modelName := flag.String("model", "all", "machine model, comma list of models, or 'all'")
	iters := flag.Int("iters", 20, "simulator iterations per test and model")
	pressure := flag.Int("pressure", 3, "store-buffer pressure stores per forwarding thread (0 disables)")
	seed := flag.Uint64("seed", 1, "base seed for timing exploration")
	traceOut := flag.String("trace-out", "", "write a cycle-level pipeline trace of every iteration to this file")
	traceFormat := flag.String("trace-format", "chrome", "pipeline trace format: "+sesa.ValidTraceFormats)
	traceBuf := flag.Int("trace-buf", sesa.DefaultTraceBufCap, "per-core trace ring capacity in events")
	metricsInterval := flag.Uint64("metrics-interval", 0, "sample interval metrics every N cycles (0 disables)")
	metricsOut := flag.String("metrics-out", "", "write interval metrics to this file (.json for JSON, else CSV)")
	histOut := flag.String("hist-out", "", "write latency-distribution histograms to this file (empty with -hist-format set = stdout)")
	histFormat := flag.String("hist-format", "", "histogram format, text or json; setting it (or -hist-out) enables histogram collection")
	stepModeName := flag.String("step-mode", "skip", "clock stepper: skip (two-level, default) or naive (tick every cycle); outputs are byte-identical")
	listModels := flag.Bool("list-models", false, "print the machine-model roster and exit")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	if *listModels {
		fmt.Print(sesa.ListModels())
		return
	}
	wantHists := *histOut != "" || *histFormat != ""

	logger, err := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger.With(telemetry.KeyComponent, "sesa-litmus"))

	stepMode, err := sesa.ParseStepMode(*stepModeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *traceOut != "" && *traceFormat != "chrome" && *traceFormat != "kanata" {
		fmt.Fprintf(os.Stderr, "unknown -trace-format %q (want %s)\n", *traceFormat, sesa.ValidTraceFormats)
		os.Exit(1)
	}
	if (*metricsInterval > 0) != (*metricsOut != "") {
		fmt.Fprintln(os.Stderr, "-metrics-interval and -metrics-out must be used together")
		os.Exit(1)
	}
	var traceOpts *sesa.TraceOptions
	if *traceOut != "" || *metricsInterval > 0 {
		o := sesa.TraceOptions{MetricsInterval: *metricsInterval}
		if *traceOut != "" {
			o.BufCap = *traceBuf
		}
		traceOpts = &o
	}
	var runs []sesa.TraceRun
	var histRuns []sesa.HistRun

	tests := sesa.LitmusTests()
	if *testName != "" {
		tests = nil
		for _, name := range strings.Split(*testName, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			t, err := sesa.GetLitmus(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tests = append(tests, t)
		}
		if len(tests) == 0 {
			fmt.Fprintf(os.Stderr, "-test %q selects no tests (valid tests: %s)\n",
				*testName, strings.Join(sesa.LitmusNames(), ", "))
			os.Exit(1)
		}
	}

	models, err := sesa.ParseModels(*modelName)
	if err != nil || len(models) == 0 {
		if err == nil {
			err = fmt.Errorf("-model %q selects no models", *modelName)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	exit := 0
	for _, test := range tests {
		fmt.Printf("=== %s — %s\n", test.Name, test.Doc)
		fmt.Printf("    allowed (x86-TSO):  %v\n", test.Allowed(sesa.CheckerX86TSO).Sorted())
		fmt.Printf("    allowed (370-TSO):  %v\n", test.Allowed(sesa.Checker370TSO).Sorted())
		fmt.Printf("    highlighted:        %q\n", test.Interesting)

		variant := test
		if *pressure > 0 {
			variant = sesa.WithSBPressure(test, *pressure)
		}
		for _, model := range models {
			var res *sesa.LitmusResult
			var err error
			if traceOpts != nil || wantHists {
				// Each iteration's machine records into its own tracer and
				// histogram set; runs are collected in iteration order, and
				// the iteration sets merge into one distribution per
				// (test, model) — exactly equivalent to one histogram fed
				// every iteration's samples.
				prefix := variant.Name + "/" + model.String()
				var iterSets []*sesa.HistSet
				res, err = sesa.RunLitmusTraced(variant, model, *iters, *seed,
					func(iter int, m *sesa.SimMachine) {
						m.SetStepMode(stepMode)
						if traceOpts != nil {
							tr := sesa.NewTracer(m.Config().Cores, *traceOpts)
							m.AttachTracer(tr)
							runs = append(runs, sesa.TraceRun{
								Name: fmt.Sprintf("%s#%d", prefix, iter), Tracer: tr})
						}
						if wantHists {
							hs := sesa.NewHistSet(m.Config().Cores)
							m.AttachHists(hs)
							iterSets = append(iterSets, hs)
						}
					})
				if err == nil && len(iterSets) > 0 {
					merged := iterSets[0]
					for _, hs := range iterSets[1:] {
						if err = merged.Merge(hs); err != nil {
							break
						}
					}
					if err == nil {
						histRuns = append(histRuns, sesa.NewHistRun(prefix, merged))
					}
				}
			} else {
				res, err = sesa.RunLitmusTraced(variant, model, *iters, *seed,
					func(_ int, m *sesa.SimMachine) { m.SetStepMode(stepMode) })
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			allowed := test.Allowed(sesa.SimCheckerModel(model))
			var keys []string
			for o := range res.Outcomes {
				keys = append(keys, string(o))
			}
			sort.Strings(keys)
			fmt.Printf("    %-15s:", model)
			for _, k := range keys {
				marker := ""
				if !allowed.Contains(sesa.Outcome(k)) {
					marker = " ILLEGAL!"
					exit = 1
				}
				if sesa.Outcome(k) == test.Interesting {
					marker += " <- highlighted"
				}
				fmt.Printf("  [%s x%d%s]", k, res.Outcomes[sesa.Outcome(k)], marker)
			}
			fmt.Println()
		}
	}

	if *traceOut != "" {
		if err := sesa.WriteTraceFile(*traceOut, *traceFormat, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s trace (%d runs) to %s\n", *traceFormat, len(runs), *traceOut)
	}
	if *metricsOut != "" {
		if err := sesa.WriteMetricsFile(*metricsOut, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote interval metrics to %s\n", *metricsOut)
	}
	if wantHists {
		f := *histFormat
		if f == "" {
			f = "text"
		}
		rep := sesa.HistReport{
			Title: fmt.Sprintf("latency distributions, %d iterations/model, seed %d", *iters, *seed),
			Runs:  histRuns,
		}
		if err := sesa.WriteHistReport(*histOut, f, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}
