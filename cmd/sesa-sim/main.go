// Command sesa-sim runs one Table IV benchmark on the simulated multicore
// under one (or all) of the five consistency-model implementations, and
// prints the characterization row, the stall breakdown and the memory-system
// statistics.
//
// Usage:
//
//	sesa-sim -bench barnes [-model all] [-n 100000] [-seed 42]
//	sesa-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"sesa"
)

func main() {
	bench := flag.String("bench", "barnes", "benchmark name (see -list)")
	modelName := flag.String("model", "all", "machine model or 'all'")
	n := flag.Int("n", 100_000, "instructions per core")
	seed := flag.Uint64("seed", 42, "trace generation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	dump := flag.String("dump", "", "write the generated workload to this trace file and exit")
	traceIn := flag.String("trace", "", "run this trace file instead of a generated benchmark")
	flag.Parse()

	if *list {
		fmt.Println("parallel (SPLASH-3 + PARSEC, 8 cores):")
		for _, p := range sesa.ParallelProfiles() {
			fmt.Printf("  %-18s loads %6.2f%%  forwarded %6.2f%%\n", p.Name, p.LoadPct, p.ForwardPct)
		}
		fmt.Println("sequential (SPECrate 2017, 1 core):")
		for _, p := range sesa.SequentialProfiles() {
			fmt.Printf("  %-18s loads %6.2f%%  forwarded %6.2f%%\n", p.Name, p.LoadPct, p.ForwardPct)
		}
		return
	}

	models := sesa.AllModels()
	if *modelName != "all" {
		models = nil
		for _, m := range sesa.AllModels() {
			if m.String() == *modelName {
				models = []sesa.Model{m}
			}
		}
		if models == nil {
			fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
			os.Exit(1)
		}
	}

	if *dump != "" {
		p, ok := sesa.LookupProfile(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		w := sesa.BuildWorkload(p, sesa.DefaultConfig(models[0]).Cores, *n, *seed)
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sesa.WritePrograms(f, w.Programs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d threads to %s\n", len(w.Programs), *dump)
		return
	}

	var replay []sesa.Program
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		replay, err = sesa.ReadPrograms(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// The generated-benchmark path fans the models across -jobs workers,
	// replaying one cached trace; replaying an external trace file keeps the
	// serial path (its programs bypass the profile-keyed cache).
	var results []sesa.SweepResult
	if replay == nil {
		js := make([]sesa.SweepJob, len(models))
		for i, model := range models {
			j, err := sesa.BenchmarkJob(*bench, model, *n, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			js[i] = j
		}
		results, _ = sesa.RunSweep(js, *jobs)
	}

	var base uint64
	for mi, model := range models {
		var ch sesa.Characterization
		var st *sesa.Stats
		var err error
		if replay != nil {
			cfg := sesa.DefaultConfig(model)
			if len(replay) > cfg.Cores {
				cfg.Cores = len(replay)
			}
			w := sesa.Workload{Name: *traceIn, Programs: replay}
			st, err = sesa.RunWorkload(model, cfg, w, 1_000_000_000)
			if err == nil {
				ch = st.Characterize()
			}
		} else {
			res := results[mi]
			ch, st, err = res.Char, res.Stats, res.Err
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if base == 0 {
			base = ch.Cycles
		}
		t := st.Total()
		fmt.Printf("== %s on %s\n", *bench, model)
		fmt.Printf("   cycles %d (%.3fx of first model)   IPC %.3f\n",
			ch.Cycles, float64(ch.Cycles)/float64(base), ch.IPC)
		fmt.Printf("   loads %.3f%%   forwarded %.3f%%   gate stalls %.3f%% (avg %.1f cyc)   SA re-executed %.3f%%\n",
			ch.LoadsPct, ch.ForwardedPct, ch.GateStallsPct, ch.AvgStallCycles, ch.ReexecutedPct)
		fmt.Printf("   dispatch stalls: ROB %.1f%%  LQ %.1f%%  SQ/SB %.1f%%\n",
			ch.StallROBPct, ch.StallLQPct, ch.StallSQPct)
		fmt.Printf("   squashes %d (SA %d, dependence %d)   branch mispredicts %d\n",
			t.Squashes, t.SASquashes, t.DepSquashes, t.BranchMispredicts)
	}
}
