// Command sesa-sim runs one Table IV benchmark on the simulated multicore
// under any selection of the registered consistency-model machines, and
// prints the characterization row, the stall breakdown and the memory-system
// statistics.
//
// Usage:
//
//	sesa-sim -bench barnes [-model all|x86,370-RCP,...] [-n 100000] [-seed 42]
//	sesa-sim -bench ocean_cp -trace-out trace.json -trace-format chrome
//	sesa-sim -bench barnes -metrics-interval 1000 -metrics-out metrics.csv
//	sesa-sim -list
//	sesa-sim -list-models
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"

	"sesa"
	"sesa/internal/config"
	"sesa/internal/telemetry"
)

func main() {
	bench := flag.String("bench", "barnes", "benchmark name (see -list)")
	modelName := flag.String("model", "all", "machine model, comma list of models, or 'all'")
	n := flag.Int("n", 100_000, "instructions per core")
	seed := flag.Uint64("seed", 42, "trace generation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	dump := flag.String("dump", "", "write the generated workload to this trace file and exit")
	traceIn := flag.String("trace", "", "run this trace file instead of a generated benchmark")
	traceOut := flag.String("trace-out", "", "write a cycle-level pipeline trace to this file")
	traceFormat := flag.String("trace-format", "chrome", "pipeline trace format: "+sesa.ValidTraceFormats)
	traceBuf := flag.Int("trace-buf", sesa.DefaultTraceBufCap, "per-core trace ring capacity in events")
	metricsInterval := flag.Uint64("metrics-interval", 0, "sample interval metrics every N cycles (0 disables)")
	metricsOut := flag.String("metrics-out", "", "write interval metrics to this file (.json for JSON, else CSV)")
	histOut := flag.String("hist-out", "", "write latency-distribution histograms to this file (empty with -hist-format set = stdout)")
	histFormat := flag.String("hist-format", "", "histogram format, text or json; setting it (or -hist-out) enables histogram collection")
	statusAddr := flag.String("status-addr", "", "serve live sweep status, expvar and pprof on this address (e.g. localhost:6060)")
	stepModeName := flag.String("step-mode", "skip", "clock stepper: skip (two-level, default) or naive (tick every cycle); outputs are byte-identical")
	listModels := flag.Bool("list-models", false, "print the machine-model roster and exit")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	if *listModels {
		fmt.Print(sesa.ListModels())
		return
	}
	wantHists := *histOut != "" || *histFormat != ""

	logger, err := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger.With(telemetry.KeyComponent, "sesa-sim"))

	stepMode, err := sesa.ParseStepMode(*stepModeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *traceOut != "" && *traceFormat != "chrome" && *traceFormat != "kanata" {
		fmt.Fprintf(os.Stderr, "unknown -trace-format %q (want %s)\n", *traceFormat, sesa.ValidTraceFormats)
		os.Exit(1)
	}
	if (*metricsInterval > 0) != (*metricsOut != "") {
		fmt.Fprintln(os.Stderr, "-metrics-interval and -metrics-out must be used together")
		os.Exit(1)
	}
	var traceOpts *sesa.TraceOptions
	if *traceOut != "" || *metricsInterval > 0 {
		o := sesa.TraceOptions{MetricsInterval: *metricsInterval}
		if *traceOut != "" {
			o.BufCap = *traceBuf
		}
		traceOpts = &o
	}

	if *list {
		fmt.Println("parallel (SPLASH-3 + PARSEC, 8 cores):")
		for _, p := range sesa.ParallelProfiles() {
			fmt.Printf("  %-18s loads %6.2f%%  forwarded %6.2f%%\n", p.Name, p.LoadPct, p.ForwardPct)
		}
		fmt.Println("sequential (SPECrate 2017, 1 core):")
		for _, p := range sesa.SequentialProfiles() {
			fmt.Printf("  %-18s loads %6.2f%%  forwarded %6.2f%%\n", p.Name, p.LoadPct, p.ForwardPct)
		}
		return
	}

	models, err := sesa.ParseModels(*modelName)
	if err != nil || len(models) == 0 {
		if err == nil {
			err = fmt.Errorf("-model %q selects no models", *modelName)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *dump != "" {
		p, ok := sesa.LookupProfile(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		w := sesa.BuildWorkload(p, sesa.DefaultConfig(models[0]).Cores, *n, *seed)
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sesa.WritePrograms(f, w.Programs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d threads to %s\n", len(w.Programs), *dump)
		return
	}

	var replay []sesa.Program
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		replay, err = sesa.ReadPrograms(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// The generated-benchmark path fans the models across -jobs workers,
	// replaying one cached trace; replaying an external trace file keeps the
	// serial path (its programs bypass the profile-keyed cache).
	var results []sesa.SweepResult
	if replay == nil {
		var progress *sesa.SweepProgress
		if *statusAddr != "" {
			progress = sesa.NewSweepProgress()
			addr, err := sesa.ServeStatus(*statusAddr, progress)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			slog.Info("status endpoints up", "addr", "http://"+addr+"/status")
		}
		js := make([]sesa.SweepJob, len(models))
		for i, model := range models {
			j, err := sesa.BenchmarkJob(*bench, model, *n, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			j.Trace = traceOpts
			j.Hists = wantHists
			j.StepMode = stepMode
			js[i] = j
		}
		var summary sesa.SweepSummary
		results, summary = sesa.RunSweepMonitored(js, *jobs, progress)
		if *jobs > 1 {
			fmt.Fprintln(os.Stderr, summary)
		}
	}

	var base uint64
	var runs []sesa.TraceRun
	var histRuns []sesa.HistRun
	for mi, model := range models {
		var ch sesa.Characterization
		var st *sesa.Stats
		var tr *sesa.Tracer
		var hs *sesa.HistSet
		var err error
		if replay != nil {
			cfg := sesa.DefaultConfig(model)
			cfg.StepMode = stepMode
			if len(replay) > cfg.Cores {
				cfg.Cores = len(replay)
			}
			w := sesa.Workload{Name: *traceIn, Programs: replay}
			st, tr, hs, err = runReplay(model, cfg, w, traceOpts, wantHists)
			if err == nil {
				ch = st.Characterize()
			}
		} else {
			res := results[mi]
			ch, st, err = res.Char, res.Stats, res.Err
			tr = res.Trace
			hs = res.Hists
		}
		if tr != nil {
			runs = append(runs, sesa.TraceRun{Name: *bench + "/" + model.String(), Tracer: tr})
		}
		if hs != nil {
			histRuns = append(histRuns, sesa.NewHistRun(*bench+"/"+model.String(), hs))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if base == 0 {
			base = ch.Cycles
		}
		t := st.Total()
		fmt.Printf("== %s on %s\n", *bench, model)
		fmt.Printf("   cycles %d (%.3fx of first model)   IPC %.3f\n",
			ch.Cycles, float64(ch.Cycles)/float64(base), ch.IPC)
		fmt.Printf("   loads %.3f%%   forwarded %.3f%%   gate stalls %.3f%% (avg %.1f cyc)   SA re-executed %.3f%%\n",
			ch.LoadsPct, ch.ForwardedPct, ch.GateStallsPct, ch.AvgStallCycles, ch.ReexecutedPct)
		fmt.Printf("   dispatch stalls: ROB %.1f%%  LQ %.1f%%  SQ/SB %.1f%%\n",
			ch.StallROBPct, ch.StallLQPct, ch.StallSQPct)
		fmt.Printf("   squashes %d (SA %d, dependence %d)   branch mispredicts %d\n",
			t.Squashes, t.SASquashes, t.DepSquashes, t.BranchMispredicts)
		fmt.Printf("   %s\n", st.NoC)
	}

	if *traceOut != "" {
		if err := sesa.WriteTraceFile(*traceOut, *traceFormat, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s trace (%d runs) to %s\n", *traceFormat, len(runs), *traceOut)
	}
	if *metricsOut != "" {
		if err := sesa.WriteMetricsFile(*metricsOut, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote interval metrics to %s\n", *metricsOut)
	}
	if wantHists {
		f := *histFormat
		if f == "" {
			f = "text"
		}
		rep := sesa.HistReport{
			Title: fmt.Sprintf("latency distributions: %s, %d instructions/core, seed %d", *bench, *n, *seed),
			Runs:  histRuns,
		}
		if err := sesa.WriteHistReport(*histOut, f, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runReplay runs a trace-file workload on one machine, optionally attaching
// an observability tracer and latency histograms (the sweep path does this
// via SweepJob.Trace / SweepJob.Hists).
func runReplay(model sesa.Model, cfg sesa.Config, w sesa.Workload, opts *sesa.TraceOptions, wantHists bool) (*sesa.Stats, *sesa.Tracer, *sesa.HistSet, error) {
	cfg.Model = model
	sys, err := sesa.NewSystem(cfg, w.Name)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, p := range w.Programs {
		if err := sys.LoadProgram(i, p); err != nil {
			return nil, nil, nil, err
		}
	}
	var tr *sesa.Tracer
	if opts != nil {
		tr = sesa.NewTracer(cfg.Cores, *opts)
		sys.AttachTracer(tr)
	}
	var hs *sesa.HistSet
	if wantHists {
		hs = sesa.NewHistSet(cfg.Cores)
		sys.AttachHists(hs)
	}
	if err := sys.Run(1_000_000_000); err != nil {
		return nil, nil, nil, err
	}
	return sys.Stats(), tr, hs, nil
}
