package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sesa"
)

// fastOptions cross-validates model legs only (no simulator witnesses), so
// CLI tests stay quick and fully deterministic.
func fastOptions(t *testing.T) options {
	t.Helper()
	b, err := sesa.ParseFuzzBudget("")
	if err != nil {
		t.Fatal(err)
	}
	return options{seed: 1, count: 10, budget: b, jobs: 2}
}

func TestRunByteIdenticalAcrossJobs(t *testing.T) {
	var a, b bytes.Buffer
	o := fastOptions(t)
	o.jobs = 1
	if _, err := run(&a, o); err != nil {
		t.Fatal(err)
	}
	o.jobs = 7
	if _, err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("output differs across -jobs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunSeedReproducesBatchMember(t *testing.T) {
	var batch bytes.Buffer
	o := fastOptions(t)
	if _, err := run(&batch, o); err != nil {
		t.Fatal(err)
	}
	var solo bytes.Buffer
	o.seed, o.count = 4, 1
	if _, err := run(&solo, o); err != nil {
		t.Fatal(err)
	}
	soloLine := ""
	for _, line := range strings.Split(solo.String(), "\n") {
		if strings.HasPrefix(line, "prog ") {
			soloLine = strings.SplitN(line, "seed=", 2)[1]
		}
	}
	if soloLine == "" {
		t.Fatalf("no prog line in solo output:\n%s", solo.String())
	}
	if !strings.Contains(batch.String(), soloLine) {
		t.Fatalf("batch output lacks the solo run's report %q:\n%s", soloLine, batch.String())
	}
}

// TestParseModels exercises the shared roster parser through the -models
// flag's entry point (the parser itself lives in internal/config).
func TestParseModels(t *testing.T) {
	all, err := sesa.ParseModels("all")
	if err != nil || len(all) != len(sesa.AllModels()) {
		t.Fatalf("all -> %v, %v", all, err)
	}
	none, err := sesa.ParseModels("none")
	if err != nil || none != nil {
		t.Fatalf("none -> %v, %v", none, err)
	}
	two, err := sesa.ParseModels("x86, 370-SLFSoS-key")
	if err != nil || len(two) != 2 || two[0] != sesa.X86 || two[1] != sesa.SLFSoSKey370 {
		t.Fatalf("pair -> %v, %v", two, err)
	}
	_, err = sesa.ParseModels("x86,bogus")
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, name := range sesa.ModelNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid model %s", err, name)
		}
	}
}

func TestCorpusReplayAndAlloyExport(t *testing.T) {
	dir := t.TempDir()
	src := "st x, 1    | st y, 1\nld y -> a0 | ld x -> b0\n"
	if err := os.WriteFile(filepath.Join(dir, "sb.litmus"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	alloyDir := t.TempDir()
	var out bytes.Buffer
	o := fastOptions(t)
	o.count = 0
	o.corpus = dir
	o.alloyDir = alloyDir
	failures, err := run(&out, o)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("sb replay failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "corpus sb.litmus") {
		t.Fatalf("missing corpus report line:\n%s", out.String())
	}
	als, err := os.ReadFile(filepath.Join(alloyDir, "sb.als"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(als), "open exec_H[E]") {
		t.Fatalf("alloy export malformed:\n%s", als)
	}
}

func TestCorpusRejectsBadProgram(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.litmus"), []byte("frob q"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := fastOptions(t)
	o.count = 0
	o.corpus = dir
	var out bytes.Buffer
	if _, err := run(&out, o); err == nil || !strings.Contains(err.Error(), "bad.litmus") {
		t.Fatalf("want parse error naming the file, got %v", err)
	}
}
