// Command sesa-fuzz is the seeded litmus fuzzer with three-way
// cross-validation: it generates deterministic random litmus programs and
// checks each one on three independent engines — the timing simulator's
// witness search, the exhaustive operational checker and the axiomatic
// enumerator. A simulator-witnessed outcome the bounding operational model
// forbids, or any operational/axiomatic disagreement, is a failure: the
// program is printed in ConsistencyChecker text together with a minimized
// repro and the one-line command that regenerates it.
//
// Usage:
//
//	sesa-fuzz [-seed S] [-count N] [-budget threads=3,ops=4,addrs=2,fences=1,rmws=1]
//	          [-models all|x86,370-SLFSoS-key,...] [-jobs N]
//	          [-sim-iters N] [-pressure N] [-small=true|false]
//	          [-corpus dir] [-repro-dir dir] [-export-alloy dir]
//	          [-step-mode skip|naive] [-list-models]
//
// Program i of a run uses generator seed S+i, so any program of a large run
// is reproduced alone by `sesa-fuzz -seed <its seed> -count 1` with the same
// budget. Output is byte-identical across -jobs values.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"sesa"
	"sesa/internal/config"
	"sesa/internal/telemetry"
)

type options struct {
	seed     uint64
	count    int
	budget   sesa.FuzzBudget
	models   []sesa.Model
	jobs     int
	simIters int
	pressure int
	small    bool
	stepMode sesa.StepMode
	corpus   string
	reproDir string
	alloyDir string
	simSeed  uint64
}

func main() {
	seed := flag.Uint64("seed", 1, "base generator seed; program i uses seed+i")
	count := flag.Int("count", 20, "number of programs to generate and cross-validate")
	budgetSpec := flag.String("budget", "", "program shape budget, e.g. threads=3,ops=4,addrs=2,fences=1,rmws=1 (omitted keys keep defaults)")
	modelsSpec := flag.String("models", "all", "comma-separated machine models to witness-run on the simulator, or all, or none")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel cross-validation workers (output is identical for any value)")
	simIters := flag.Int("sim-iters", 3, "simulator iterations per (model, variant, config) witness cell")
	pressure := flag.Int("pressure", 3, "store-buffer-pressure stores per thread in the pressure variant (0 disables the variant)")
	small := flag.Bool("small", true, "also witness-run every model on the tiny-cache configuration")
	simSeed := flag.Uint64("sim-seed", 1, "base seed for the witness search's timing exploration")
	corpus := flag.String("corpus", "", "replay every *.litmus file in this directory before generating")
	reproDir := flag.String("repro-dir", "", "write failing programs (full + minimized ConsistencyChecker text) into this directory")
	alloyDir := flag.String("export-alloy", "", "write a memalloy-style candidate-execution module per program into this directory")
	stepModeName := flag.String("step-mode", "skip", "simulation clock for witness runs: skip (two-level, default) or naive")
	listModels := flag.Bool("list-models", false, "print the valid machine-model names and exit")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	logger, lerr := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if lerr != nil {
		fatal(lerr)
	}
	slog.SetDefault(logger.With(telemetry.KeyComponent, "sesa-fuzz"))

	if *listModels {
		fmt.Print(sesa.ListModels())
		return
	}

	opt := options{
		seed: *seed, count: *count, jobs: *jobs,
		simIters: *simIters, pressure: *pressure, small: *small,
		simSeed: *simSeed, corpus: *corpus, reproDir: *reproDir, alloyDir: *alloyDir,
	}
	var err error
	if opt.budget, err = sesa.ParseFuzzBudget(*budgetSpec); err != nil {
		fatal(err)
	}
	if opt.models, err = sesa.ParseModels(*modelsSpec); err != nil {
		fatal(err)
	}
	if opt.stepMode, err = sesa.ParseStepMode(*stepModeName); err != nil {
		fatal(err)
	}
	if opt.count < 0 {
		fatal(fmt.Errorf("-count must be >= 0"))
	}

	failures, err := run(os.Stdout, opt)
	if err != nil {
		fatal(err)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// run replays the corpus (if any), fuzzes count programs, and reports; it
// returns the number of failing programs.
func run(w io.Writer, opt options) (failures int, err error) {
	fopt := sesa.FuzzOptions{
		Models:      opt.models,
		SimIters:    opt.simIters,
		Pressure:    opt.pressure,
		SmallConfig: opt.small,
		SimSeed:     opt.simSeed,
		StepMode:    opt.stepMode,
	}

	interesting := 0
	if opt.corpus != "" {
		n, fail, err := replayCorpus(w, opt, fopt)
		if err != nil {
			return 0, err
		}
		failures += fail
		fmt.Fprintf(w, "corpus: %d programs, %d failing\n", n, fail)
	}

	if opt.count > 0 {
		// The worker count is deliberately absent: output is byte-identical
		// across -jobs values, and CI pins that with cmp.
		fmt.Fprintf(w, "fuzz: seed=%d count=%d budget=%s models=%s\n",
			opt.seed, opt.count, opt.budget, modelList(opt.models))
		reports := sesa.FuzzMany(opt.seed, opt.count, opt.budget, fopt, opt.jobs)
		for _, pr := range reports {
			if pr.Err != nil {
				return 0, fmt.Errorf("seed %d: %w", pr.Seed, pr.Err)
			}
			rep := pr.Rep
			mark := "ok"
			if !rep.Ok() {
				mark = "FAIL"
			}
			tag := ""
			if rep.Interesting {
				tag = " interesting"
				interesting++
			}
			fmt.Fprintf(w, "prog %4d seed=%-6d sc=%d 370=%d x86=%d witnessed=%d%s %s\n",
				pr.Index, pr.Seed, rep.OpCount[sesa.CheckerSC], rep.OpCount[sesa.Checker370TSO],
				rep.OpCount[sesa.CheckerX86TSO], rep.Witnessed, tag, mark)
			if opt.alloyDir != "" {
				name := fmt.Sprintf("seed%d", pr.Seed)
				if err := writeAlloy(opt.alloyDir, name, rep.Prog); err != nil {
					return 0, err
				}
			}
			if !rep.Ok() {
				failures++
				if err := reportFailure(w, opt, fopt, pr); err != nil {
					return 0, err
				}
			}
		}
	}

	fmt.Fprintf(w, "summary: %d failing, %d interesting\n", failures, interesting)
	return failures, nil
}

// replayCorpus cross-validates every *.litmus file in the corpus directory,
// in sorted name order.
func replayCorpus(w io.Writer, opt options, fopt sesa.FuzzOptions) (n, failures int, err error) {
	entries, err := os.ReadDir(opt.corpus)
	if err != nil {
		return 0, 0, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".litmus") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(opt.corpus, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return 0, 0, err
		}
		p, err := sesa.ParseLitmusText(string(src))
		if err != nil {
			return 0, 0, fmt.Errorf("%s: %w", path, err)
		}
		rep, err := sesa.FuzzCrossValidate(p, fopt)
		if err != nil {
			return 0, 0, fmt.Errorf("%s: %w", path, err)
		}
		n++
		mark := "ok"
		if !rep.Ok() {
			mark = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "corpus %-30s sc=%d 370=%d x86=%d witnessed=%d %s\n",
			name, rep.OpCount[sesa.CheckerSC], rep.OpCount[sesa.Checker370TSO],
			rep.OpCount[sesa.CheckerX86TSO], rep.Witnessed, mark)
		if opt.alloyDir != "" {
			base := strings.TrimSuffix(name, ".litmus")
			if err := writeAlloy(opt.alloyDir, base, p); err != nil {
				return 0, 0, err
			}
		}
		if !rep.Ok() {
			for _, m := range rep.Mismatches {
				fmt.Fprintf(w, "  %s\n", m)
			}
			text, rerr := sesa.RenderLitmusText(p)
			if rerr == nil {
				fmt.Fprintf(w, "program:\n%s", indent(text))
			}
		}
	}
	return n, failures, nil
}

// reportFailure prints everything needed to chase one failing generated
// program: the mismatches, the full program, a minimized repro and the
// one-line command that regenerates it — and optionally writes both texts
// into -repro-dir.
func reportFailure(w io.Writer, opt options, fopt sesa.FuzzOptions, pr sesa.FuzzProgramReport) error {
	rep := pr.Rep
	fmt.Fprintf(w, "FAIL seed=%d: %d mismatches\n", pr.Seed, len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Fprintf(w, "  %s\n", m)
	}
	text, err := sesa.RenderLitmusText(rep.Prog)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "program:\n%s", indent(text))

	stillFailing := func(q sesa.CheckerProgram) bool {
		r, err := sesa.FuzzCrossValidate(q, fopt)
		return err == nil && !r.Ok()
	}
	min := sesa.MinimizeLitmus(rep.Prog, stillFailing)
	minText, err := sesa.RenderLitmusText(min)
	if err != nil {
		return err
	}
	if minText != text {
		fmt.Fprintf(w, "minimized:\n%s", indent(minText))
	}
	fmt.Fprintf(w, "reproduce: sesa-fuzz -seed %d -count 1 -budget %s -models %s -sim-iters %d -pressure %d -small=%v -sim-seed %d\n",
		pr.Seed, opt.budget, modelList(opt.models), opt.simIters, opt.pressure, opt.small, opt.simSeed)

	if opt.reproDir != "" {
		if err := os.MkdirAll(opt.reproDir, 0o755); err != nil {
			return err
		}
		base := filepath.Join(opt.reproDir, fmt.Sprintf("seed%d", pr.Seed))
		if err := os.WriteFile(base+".litmus", []byte(text), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(base+".min.litmus", []byte(minText), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeAlloy exports one program as an Alloy candidate-execution module.
func writeAlloy(dir, name string, p sesa.CheckerProgram) error {
	mod, err := sesa.ExportAlloy(name, p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".als"), []byte(mod), 0o644)
}

// modelList renders the -models value that selects exactly these models.
func modelList(models []sesa.Model) string {
	if len(models) == 0 {
		return "none"
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.String()
	}
	return strings.Join(names, ",")
}

// indent prefixes every line with two spaces, keeping the column layout.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
