// Command sesa-serve is the sweep-as-a-service daemon: a long-running HTTP
// front end over the parallel experiment runner, for design-space studies
// too large or too shared for one-shot CLI invocations.
//
//	sesa-serve -addr :8344 -max-workers 8 -max-queued 16
//
// Submit, poll, fetch and cancel sweeps:
//
//	curl -X POST localhost:8344/v1/sweeps -d '{"jobs":[{"profile":"radix","model":"370-SLFSoS-key","inst_per_core":50000,"seed":42}]}'
//	curl localhost:8344/v1/sweeps/sw-000001
//	curl localhost:8344/v1/sweeps/sw-000001/results
//	curl -X DELETE localhost:8344/v1/sweeps/sw-000001
//
// Completed jobs land in a content-addressed cache, so resubmitting an
// experiment returns instantly with byte-identical results. SIGTERM/SIGINT
// drains gracefully: admission stops (503), queued and running sweeps get
// -drain-timeout to finish, then the rest is canceled and the process exits.
//
// With -fleet the daemon becomes a coordinator: instead of simulating on
// the local runner pool, it shards each sweep into job batches that
// sesa-worker processes lease over /v1/fleet/ (lease TTL + heartbeat;
// expired leases are reassigned, so worker loss costs time, not results).
// Output is byte-identical to single-host execution of the same sweep:
//
//	sesa-serve -addr :8344 -fleet
//	sesa-worker -coordinator http://localhost:8344 &
//	sesa-worker -coordinator http://localhost:8344 &
//
// Telemetry: -log-level/-log-format control the structured log on stderr,
// GET /metrics serves the lease-lifecycle and sweep-throughput counters in
// Prometheus text format, and GET /v1/sweeps/{id}/timeline exports a
// sweep's distributed span timeline as Chrome-trace JSON (open it in
// ui.perfetto.dev).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sesa/internal/config"
	"sesa/internal/serve"
	"sesa/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address (host:port, :0 picks a free port)")
	maxWorkers := flag.Int("max-workers", runtime.GOMAXPROCS(0), "parallel simulation workers for the running sweep")
	maxQueued := flag.Int("max-queued", serve.DefaultMaxQueued, "bound on queued sweeps; submissions past it get 429 with Retry-After")
	maxCached := flag.Int("max-cached", serve.DefaultMaxCached, "bound on content-addressed cached job results (negative disables the cache)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM/SIGINT before running sweeps are canceled")
	resultsDir := flag.String("results-dir", "", "flush every finished sweep's results document to this directory as <id>.json")
	fleetMode := flag.Bool("fleet", false, "coordinator mode: shard sweeps across sesa-worker nodes pulling from /v1/fleet/ instead of simulating locally")
	fleetBatch := flag.Int("fleet-batch", config.DefaultFleetBatchSize, "jobs per fleet lease batch")
	fleetTTL := flag.Duration("fleet-lease-ttl", config.DefaultFleetLeaseTTL, "fleet lease TTL; a worker silent this long forfeits its batches")
	fleetAttempts := flag.Int("fleet-max-attempts", config.DefaultFleetMaxAttempts, "lease attempts before a batch's jobs are failed outright")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log := logger.With("component", "sesa-serve")

	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			log.Error("creating results directory failed", "error", err)
			os.Exit(1)
		}
	}

	opts := serve.Options{
		MaxWorkers: *maxWorkers,
		MaxQueued:  *maxQueued,
		MaxCached:  *maxCached,
		ResultsDir: *resultsDir,
		Telemetry:  &telemetry.T{Log: logger, Metrics: telemetry.NewRegistry()},
	}
	if *fleetMode {
		opts.Fleet = &config.Fleet{
			BatchSize:   *fleetBatch,
			LeaseTTL:    *fleetTTL,
			MaxAttempts: *fleetAttempts,
		}
	}
	srv, err := serve.NewFleet(opts)
	if err != nil {
		log.Error("invalid server options", "error", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "error", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	if *fleetMode {
		log.Info("coordinating fleet", "addr", "http://"+ln.Addr().String(),
			"batch", *fleetBatch, "lease_ttl", fleetTTL.String(), "max_queued", *maxQueued)
	} else {
		log.Info("listening", "addr", "http://"+ln.Addr().String(),
			"max_workers", *maxWorkers, "max_queued", *maxQueued)
	}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Error("http server failed", "error", err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()

	log.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	srv.Drain(dctx)
	cancel()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = hs.Shutdown(sctx)
	cancel()
	log.Info("drained, exiting")
}
