// Command sesa-serve is the sweep-as-a-service daemon: a long-running HTTP
// front end over the parallel experiment runner, for design-space studies
// too large or too shared for one-shot CLI invocations.
//
//	sesa-serve -addr :8344 -max-workers 8 -max-queued 16
//
// Submit, poll, fetch and cancel sweeps:
//
//	curl -X POST localhost:8344/v1/sweeps -d '{"jobs":[{"profile":"radix","model":"370-SLFSoS-key","inst_per_core":50000,"seed":42}]}'
//	curl localhost:8344/v1/sweeps/sw-000001
//	curl localhost:8344/v1/sweeps/sw-000001/results
//	curl -X DELETE localhost:8344/v1/sweeps/sw-000001
//
// Completed jobs land in a content-addressed cache, so resubmitting an
// experiment returns instantly with byte-identical results. SIGTERM/SIGINT
// drains gracefully: admission stops (503), queued and running sweeps get
// -drain-timeout to finish, then the rest is canceled and the process exits.
//
// With -fleet the daemon becomes a coordinator: instead of simulating on
// the local runner pool, it shards each sweep into job batches that
// sesa-worker processes lease over /v1/fleet/ (lease TTL + heartbeat;
// expired leases are reassigned, so worker loss costs time, not results).
// Output is byte-identical to single-host execution of the same sweep:
//
//	sesa-serve -addr :8344 -fleet
//	sesa-worker -coordinator http://localhost:8344 &
//	sesa-worker -coordinator http://localhost:8344 &
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sesa/internal/config"
	"sesa/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address (host:port, :0 picks a free port)")
	maxWorkers := flag.Int("max-workers", runtime.GOMAXPROCS(0), "parallel simulation workers for the running sweep")
	maxQueued := flag.Int("max-queued", serve.DefaultMaxQueued, "bound on queued sweeps; submissions past it get 429 with Retry-After")
	maxCached := flag.Int("max-cached", serve.DefaultMaxCached, "bound on content-addressed cached job results (negative disables the cache)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM/SIGINT before running sweeps are canceled")
	resultsDir := flag.String("results-dir", "", "flush every finished sweep's results document to this directory as <id>.json")
	fleetMode := flag.Bool("fleet", false, "coordinator mode: shard sweeps across sesa-worker nodes pulling from /v1/fleet/ instead of simulating locally")
	fleetBatch := flag.Int("fleet-batch", config.DefaultFleetBatchSize, "jobs per fleet lease batch")
	fleetTTL := flag.Duration("fleet-lease-ttl", config.DefaultFleetLeaseTTL, "fleet lease TTL; a worker silent this long forfeits its batches")
	fleetAttempts := flag.Int("fleet-max-attempts", config.DefaultFleetMaxAttempts, "lease attempts before a batch's jobs are failed outright")
	flag.Parse()

	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := serve.Options{
		MaxWorkers: *maxWorkers,
		MaxQueued:  *maxQueued,
		MaxCached:  *maxCached,
		ResultsDir: *resultsDir,
	}
	if *fleetMode {
		opts.Fleet = &config.Fleet{
			BatchSize:   *fleetBatch,
			LeaseTTL:    *fleetTTL,
			MaxAttempts: *fleetAttempts,
		}
	}
	srv, err := serve.NewFleet(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	if *fleetMode {
		fmt.Fprintf(os.Stderr, "sesa-serve: coordinating fleet on http://%s (batch %d, lease %s, queue %d)\n",
			ln.Addr(), *fleetBatch, *fleetTTL, *maxQueued)
	} else {
		fmt.Fprintf(os.Stderr, "sesa-serve: listening on http://%s (workers %d, queue %d)\n",
			ln.Addr(), *maxWorkers, *maxQueued)
	}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()

	fmt.Fprintf(os.Stderr, "sesa-serve: draining (up to %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	srv.Drain(dctx)
	cancel()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = hs.Shutdown(sctx)
	cancel()
	fmt.Fprintln(os.Stderr, "sesa-serve: drained, exiting")
}
