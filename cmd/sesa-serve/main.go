// Command sesa-serve is the sweep-as-a-service daemon: a long-running HTTP
// front end over the parallel experiment runner, for design-space studies
// too large or too shared for one-shot CLI invocations.
//
//	sesa-serve -addr :8344 -max-workers 8 -max-queued 16
//
// Submit, poll, fetch and cancel sweeps:
//
//	curl -X POST localhost:8344/v1/sweeps -d '{"jobs":[{"profile":"radix","model":"370-SLFSoS-key","inst_per_core":50000,"seed":42}]}'
//	curl localhost:8344/v1/sweeps/sw-000001
//	curl localhost:8344/v1/sweeps/sw-000001/results
//	curl -X DELETE localhost:8344/v1/sweeps/sw-000001
//
// Completed jobs land in a content-addressed cache, so resubmitting an
// experiment returns instantly with byte-identical results. SIGTERM/SIGINT
// drains gracefully: admission stops (503), queued and running sweeps get
// -drain-timeout to finish, then the rest is canceled and the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sesa/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address (host:port, :0 picks a free port)")
	maxWorkers := flag.Int("max-workers", runtime.GOMAXPROCS(0), "parallel simulation workers for the running sweep")
	maxQueued := flag.Int("max-queued", serve.DefaultMaxQueued, "bound on queued sweeps; submissions past it get 429 with Retry-After")
	maxCached := flag.Int("max-cached", serve.DefaultMaxCached, "bound on content-addressed cached job results (negative disables the cache)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM/SIGINT before running sweeps are canceled")
	resultsDir := flag.String("results-dir", "", "flush every finished sweep's results document to this directory as <id>.json")
	flag.Parse()

	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	srv := serve.New(serve.Options{
		MaxWorkers: *maxWorkers,
		MaxQueued:  *maxQueued,
		MaxCached:  *maxCached,
		ResultsDir: *resultsDir,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "sesa-serve: listening on http://%s (workers %d, queue %d)\n",
		ln.Addr(), *maxWorkers, *maxQueued)
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()

	fmt.Fprintf(os.Stderr, "sesa-serve: draining (up to %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	srv.Drain(dctx)
	cancel()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = hs.Shutdown(sctx)
	cancel()
	fmt.Fprintln(os.Stderr, "sesa-serve: drained, exiting")
}
