// Command sesa-bench regenerates every table and figure of the paper's
// evaluation (Section VI) on the simulated machine:
//
//	sesa-bench -table 1        Table I   (atomicity taxonomy, via the checker)
//	sesa-bench -table 2        Table II  (Figure 5 outcomes under x86 vs 370)
//	sesa-bench -table 3        Table III (machine configuration)
//	sesa-bench -table 4        Table IV  (characterization under 370-SLFSoS-key)
//	sesa-bench -fig 1 ... 5    litmus allowed sets + simulator witnesses
//	sesa-bench -fig 9          dispatch-stall breakdown for every machine
//	sesa-bench -fig 10         normalized execution time for every machine
//	sesa-bench -list-models    print the machine-model roster
//
// The figure sweeps cover the whole registered roster — the paper's five
// machines plus the related-work policies (370-Louvre, 370-RCP). The
// -suite, -n and -seed flags select the workloads and scale.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"

	"sesa"
	"sesa/internal/config"
	"sesa/internal/report"
	"sesa/internal/stats"
	"sesa/internal/telemetry"
)

var (
	n            = flag.Int("n", 50_000, "instructions per core")
	seed         = flag.Uint64("seed", 42, "trace seed")
	suite        = flag.String("suite", "both", "parallel, sequential or both")
	format       = flag.String("format", "text", "output format for -table 4 and -fig 10: text, csv or json")
	jobs         = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	quiet        = flag.Bool("q", false, "suppress the sweep summary on stderr")
	histOut      = flag.String("hist-out", "", "write latency-distribution histograms to this file (empty with -hist-format set = stdout)")
	histFormat   = flag.String("hist-format", "", "histogram format, text or json; setting it (or -hist-out) enables histogram collection")
	statusAddr   = flag.String("status-addr", "", "serve live sweep status, expvar and pprof on this address (e.g. localhost:6060)")
	stepModeName = flag.String("step-mode", "skip", "clock stepper: skip (two-level, default) or naive (tick every cycle); outputs are byte-identical")
	listModels   = flag.Bool("list-models", false, "print the machine-model roster and exit")
)

// stepMode is the parsed -step-mode, resolved at the top of main.
var stepMode sesa.StepMode

// histRuns accumulates the per-job histogram runs, in job order, across
// every sweep the invocation performs.
var histRuns []sesa.HistRun

// progress is non-nil when -status-addr is set.
var progress *sesa.SweepProgress

func histEnabled() bool { return *histOut != "" || *histFormat != "" }

// sweep fans the experiment jobs across -jobs workers. Results come back in
// job order, so stdout is byte-identical for any worker count; the
// wall-clock summary goes to stderr.
func sweep(js []sesa.SweepJob) []sesa.SweepResult {
	if histEnabled() {
		for i := range js {
			js[i].Hists = true
		}
	}
	results, summary := sesa.RunSweepMonitored(js, *jobs, progress)
	if !*quiet {
		fmt.Fprintln(os.Stderr, summary)
	}
	for _, res := range results {
		if res.Hists != nil {
			histRuns = append(histRuns, sesa.NewHistRun(res.Job.Name(), res.Hists))
		}
	}
	return results
}

// writeHists exports the accumulated histogram runs: every job's merged and
// per-core tables, preceded by an "all" run merging the whole invocation.
func writeHists() {
	f := *histFormat
	if f == "" {
		f = "text"
	}
	rep := sesa.HistReport{
		Title: fmt.Sprintf("latency distributions, %d instructions/core, seed %d", *n, *seed),
		Runs:  histRuns,
	}
	if len(histRuns) > 1 {
		all := &sesa.HistCollector{}
		for _, r := range histRuns {
			all.Merge(r.Merged)
		}
		rep.Runs = append([]sesa.HistRun{{Name: "all", Merged: all}}, histRuns...)
	}
	if err := sesa.WriteHistReport(*histOut, f, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchmarkJobs builds the (profile × model) job grid in row-major order.
func benchmarkJobs(profiles []sesa.Profile, models []sesa.Model) []sesa.SweepJob {
	js := make([]sesa.SweepJob, 0, len(profiles)*len(models))
	for _, p := range profiles {
		for _, m := range models {
			js = append(js, sesa.SweepJob{Profile: p, Model: m, InstPerCore: *n, Seed: *seed,
				StepMode: stepMode})
		}
	}
	return js
}

func main() {
	table := flag.Int("table", 0, "regenerate a table (1-4)")
	fig := flag.Int("fig", 0, "regenerate a figure (1-5, 9, 10)")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	if *listModels {
		fmt.Print(sesa.ListModels())
		return
	}

	logger, err := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.SetDefault(logger.With(telemetry.KeyComponent, "sesa-bench"))

	if stepMode, err = sesa.ParseStepMode(*stepModeName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *statusAddr != "" {
		progress = sesa.NewSweepProgress()
		addr, err := sesa.ServeStatus(*statusAddr, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		slog.Info("status endpoints up", "addr", "http://"+addr+"/status")
	}

	switch {
	case *table == 1:
		tableI()
	case *table == 2:
		tableII()
	case *table == 3:
		tableIII()
	case *table == 4:
		forSuites(tableIV)
	case *fig >= 1 && *fig <= 5:
		figLitmus(*fig)
	case *fig == 9:
		forSuites(fig9)
	case *fig == 10:
		forSuites(fig10)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if histEnabled() {
		writeHists()
	}
}

func forSuites(f func(sesa.Suite)) {
	if *suite == "parallel" || *suite == "both" {
		f(sesa.ParallelSuite)
	}
	if *suite == "sequential" || *suite == "both" {
		f(sesa.SequentialSuite)
	}
}

func profiles(s sesa.Suite) []sesa.Profile {
	if s == sesa.ParallelSuite {
		return sesa.ParallelProfiles()
	}
	return sesa.SequentialProfiles()
}

// tableI verifies the atomicity taxonomy on the litmus suite: SC ⊆ 370 ⊆
// x86, with the inclusions strict where store atomicity is observable.
func tableI() {
	fmt.Println("Table I: atomicity of store operations")
	fmt.Println("  370   store atomicity (MCA):     a core may not see its own stores early")
	fmt.Println("  x86   write atomicity (rMCA):    read-own-write-early allowed")
	fmt.Println("  PC    non-write-atomic (non-MCA): not modelled (write-atomic MESI assumed)")
	fmt.Println()
	fmt.Println("checker verification over the litmus suite:")
	for _, t := range sesa.LitmusTests() {
		sc := sesa.Enumerate(t.Prog, sesa.CheckerSC)
		m370 := sesa.Enumerate(t.Prog, sesa.Checker370TSO)
		x86 := sesa.Enumerate(t.Prog, sesa.CheckerX86TSO)
		subset := func(a, b sesa.OutcomeSet) bool {
			for o := range a {
				if !b.Contains(o) {
					return false
				}
			}
			return true
		}
		fmt.Printf("  %-10s SC %d ⊆ 370 %d: %v   370 %d ⊆ x86 %d: %v\n",
			t.Name, len(sc), len(m370), subset(sc, m370), len(m370), len(x86), subset(m370, x86))
	}
}

func tableII() {
	t, _ := sesa.GetLitmus("fig5")
	fmt.Println("Table II: all possible outcomes for the Figure 5 code")
	fmt.Println("(c1x/c1y = Core1's view of [x],[y]; c2y/c2x = Core2's view)")
	x86 := sesa.Enumerate(t.Prog, sesa.CheckerX86TSO)
	m370 := sesa.Enumerate(t.Prog, sesa.Checker370TSO)
	for _, o := range x86.Sorted() {
		tag := "common (store-atomic and non-store-atomic)"
		if !m370.Contains(o) {
			tag = "NON-STORE-ATOMIC ONLY: disagreement in order"
		}
		fmt.Printf("  %-40s %s\n", o, tag)
	}
	fmt.Printf("x86 outcomes: %d, store-atomic 370 outcomes: %d\n", len(x86), len(m370))
}

func tableIII() {
	c := sesa.DefaultConfig(sesa.SLFSoSKey370)
	fmt.Println("Table III: system configuration (Skylake-like)")
	fmt.Printf("  cores                      %d\n", c.Cores)
	fmt.Printf("  issue/retire width         %d\n", c.Core.Width)
	fmt.Printf("  reorder buffer             %d entries\n", c.Core.ROBEntries)
	fmt.Printf("  load queue                 %d entries\n", c.Core.LQEntries)
	fmt.Printf("  store queue + store buffer %d entries\n", c.Core.SQEntries)
	fmt.Printf("  L1 D-cache                 %dKB, %d ways, %d hit cycles\n",
		c.Mem.L1D.SizeBytes>>10, c.Mem.L1D.Ways, c.Mem.L1D.HitCycles)
	fmt.Printf("  L2 cache                   %dKB, %d ways, %d hit cycles\n",
		c.Mem.L2.SizeBytes>>10, c.Mem.L2.Ways, c.Mem.L2.HitCycles)
	fmt.Printf("  shared L3                  %d banks x %dMB, %d ways, %d hit cycles\n",
		c.Mem.L3Banks, c.Mem.L3.SizeBytes>>20, c.Mem.L3.Ways, c.Mem.L3.HitCycles)
	fmt.Printf("  directory                  %d ways, %.0f%% L2 coverage\n",
		c.Mem.DirectoryWays, c.Mem.DirectoryCoverage*100)
	fmt.Printf("  memory access              %d cycles\n", c.Mem.MemCycles)
	fmt.Printf("  NoC                        fully connected, %d/%d flits, %d cycles/switch\n",
		c.NoC.ControlFlits, c.NoC.DataFlits, c.NoC.SwitchLatency)
	fmt.Printf("  SLFSoS-key extra storage   %d bits\n", sesa.GateStorageBits(c))
}

func tableIV(s sesa.Suite) {
	fmtSel, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	table := report.CharacterizationTable{
		Title: fmt.Sprintf("Table IV (%s): characterization under 370-SLFSoS-key, %d instructions/core, seed %d",
			s, *n, *seed),
	}
	for _, res := range sweep(benchmarkJobs(profiles(s), []sesa.Model{sesa.SLFSoSKey370})) {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "FAILED %s: %v\n", res.Job.Profile.Name, res.Err)
			continue
		}
		table.Rows = append(table.Rows, res.Char)
	}
	switch fmtSel {
	case report.CSV:
		if err := table.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case report.JSON:
		if err := table.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(table.Title)
	fmt.Println(stats.TableIVHeader)
	var loads, fwd, gate, stallCyc, reexec []float64
	for _, ch := range table.Rows {
		fmt.Println(ch.FormatRow())
		loads = append(loads, ch.LoadsPct)
		fwd = append(fwd, ch.ForwardedPct)
		gate = append(gate, ch.GateStallsPct)
		stallCyc = append(stallCyc, ch.AvgStallCycles)
		reexec = append(reexec, ch.ReexecutedPct)
	}
	fmt.Printf("%-25s %12s  %6.3f  %6.3f  %9.3f  %11.3f  %7.3f\n",
		"Average", "", sesa.Mean(loads), sesa.Mean(fwd), sesa.Mean(gate),
		sesa.Mean(stallCyc), sesa.Mean(reexec))
}

func figLitmus(fig int) {
	name := map[int]string{1: "mp", 2: "n6", 3: "iriw", 4: "fig4", 5: "fig5"}[fig]
	t, _ := sesa.GetLitmus(name)
	fmt.Printf("Figure %d (%s): %s\n", fig, t.Name, t.Doc)
	fmt.Printf("  allowed (x86-TSO): %v\n", t.Allowed(sesa.CheckerX86TSO).Sorted())
	fmt.Printf("  allowed (370-TSO): %v\n", t.Allowed(sesa.Checker370TSO).Sorted())
	variant := sesa.WithSBPressure(t, 3)
	for _, model := range sesa.AllModels() {
		res, err := sesa.RunLitmusTraced(variant, model, 10, *seed,
			func(_ int, m *sesa.SimMachine) { m.SetStepMode(stepMode) })
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-15s witnessed %q: %v\n", model, t.Interesting, res.Observed(t.Interesting))
	}
}

func fig9(s sesa.Suite) {
	fmt.Printf("Figure 9 (%s): %% cycles stalled on full ROB / LQ / SQ-SB, %d instructions/core\n", s, *n)
	fmt.Printf("%-18s", "benchmark")
	models := sesa.AllModels()
	for _, m := range models {
		fmt.Printf(" %20s", m)
	}
	fmt.Println()
	ps := profiles(s)
	results := sweep(benchmarkJobs(ps, models))
	for i, p := range ps {
		fmt.Printf("%-18s", p.Name)
		for j := range models {
			res := results[i*len(models)+j]
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "FAILED %s on %s: %v\n", p.Name, models[j], res.Err)
				fmt.Printf("  %17s ", "-")
				continue
			}
			ch := res.Char
			fmt.Printf("  %5.1f/%5.1f/%5.1f ", ch.StallROBPct, ch.StallLQPct, ch.StallSQPct)
		}
		fmt.Println()
	}
}

func fig10(s sesa.Suite) {
	fmtSel, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	table := report.ComparisonTable{
		Title:      fmt.Sprintf("Figure 10 (%s): execution time normalized to x86, %d instructions/core", s, *n),
		Normalized: map[string][]float64{},
	}
	models := sesa.AllModels()
	for _, m := range models {
		table.Models = append(table.Models, m.String())
	}
	ps := profiles(s)
	results := sweep(benchmarkJobs(ps, models))
	for i, p := range ps {
		// A failed model leaves the benchmark's row incomparable: skip the
		// whole row (deterministically) and report the failures on stderr.
		failed := false
		for j := range models {
			if err := results[i*len(models)+j].Err; err != nil {
				fmt.Fprintf(os.Stderr, "FAILED %s on %s: %v\n", p.Name, models[j], err)
				failed = true
			}
		}
		if failed {
			continue
		}
		table.Benchmarks = append(table.Benchmarks, p.Name)
		var base uint64
		for j, model := range models {
			ch := results[i*len(models)+j].Char
			if model == sesa.X86 {
				base = ch.Cycles
			}
			table.Normalized[model.String()] = append(table.Normalized[model.String()],
				float64(ch.Cycles)/float64(base))
		}
	}
	switch fmtSel {
	case report.CSV:
		if err := table.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case report.JSON:
		if err := table.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(table.Title)
	fmt.Printf("%-18s", "benchmark")
	for _, m := range table.Models {
		fmt.Printf(" %15s", m)
	}
	fmt.Println()
	for i, b := range table.Benchmarks {
		fmt.Printf("%-18s", b)
		for _, m := range table.Models {
			fmt.Printf(" %15.3f", table.Normalized[m][i])
		}
		fmt.Println()
	}
	gm := table.GeoMeans()
	fmt.Printf("%-18s", "GeoMean")
	for _, m := range table.Models {
		fmt.Printf(" %15.3f", gm[m])
	}
	fmt.Println()
}
