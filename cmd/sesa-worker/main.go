// Command sesa-worker is a fleet node for sesa-serve's coordinator mode: it
// registers with a coordinator, leases sweep job batches over /v1/fleet/,
// simulates them on its local runner pool and streams the results back.
//
//	sesa-worker -coordinator http://host:8344 -jobs 8 -name rack3-a
//
// Workers are stateless and interchangeable — start as many as you have
// machines; the coordinator's lease protocol shards work and survives any
// of them dying. SIGTERM/SIGINT drains gracefully: the worker stops
// leasing, finishes and reports its in-flight batch, and deregisters so
// the coordinator requeues immediately instead of waiting out the lease.
//
// With -status-addr the worker serves its own observability surface, in
// parity with every other sesa process: GET /metrics (lease and batch
// counters in Prometheus text format), /debug/pprof and /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sesa/internal/config"
	"sesa/internal/fleet"
	"sesa/internal/telemetry"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8344", "coordinator base URL (a sesa-serve started with -fleet)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers for each leased batch")
	name := flag.String("name", "", "worker label in the coordinator's status table (default: hostname)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle re-lease interval when the coordinator has no work")
	statusAddr := flag.String("status-addr", "", "serve /metrics, /debug/pprof and /healthz on this address (\":0\" picks a free port)")
	logFlags := config.TelemetryFlags()
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, logFlags.LogLevel, logFlags.LogFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log := logger.With("component", "sesa-worker")

	label := *name
	if label == "" {
		if h, err := os.Hostname(); err == nil {
			label = h
		}
	}

	base := strings.TrimRight(*coordinator, "/")
	if !strings.HasSuffix(base, "/v1/fleet") {
		base += "/v1/fleet"
	}
	reg := telemetry.NewRegistry()
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: base,
		Name:        label,
		Jobs:        *jobs,
		Poll:        *poll,
		Tel:         &telemetry.T{Log: logger, Metrics: reg},
	})

	if *statusAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			log.Error("status listener failed", "error", err)
			os.Exit(1)
		}
		go func() { _ = http.Serve(ln, mux) }()
		log.Info("status endpoints up", "addr", "http://"+ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("pulling from coordinator", "worker", label, "coordinator", base, "jobs", *jobs)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		log.Error("worker failed", "error", err)
		os.Exit(1)
	}
	log.Info("drained, exiting")
}
