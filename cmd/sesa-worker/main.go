// Command sesa-worker is a fleet node for sesa-serve's coordinator mode: it
// registers with a coordinator, leases sweep job batches over /v1/fleet/,
// simulates them on its local runner pool and streams the results back.
//
//	sesa-worker -coordinator http://host:8344 -jobs 8 -name rack3-a
//
// Workers are stateless and interchangeable — start as many as you have
// machines; the coordinator's lease protocol shards work and survives any
// of them dying. SIGTERM/SIGINT drains gracefully: the worker stops
// leasing, finishes and reports its in-flight batch, and deregisters so
// the coordinator requeues immediately instead of waiting out the lease.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sesa/internal/fleet"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8344", "coordinator base URL (a sesa-serve started with -fleet)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers for each leased batch")
	name := flag.String("name", "", "worker label in the coordinator's status table (default: hostname)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle re-lease interval when the coordinator has no work")
	flag.Parse()

	label := *name
	if label == "" {
		if h, err := os.Hostname(); err == nil {
			label = h
		}
	}

	base := strings.TrimRight(*coordinator, "/")
	if !strings.HasSuffix(base, "/v1/fleet") {
		base += "/v1/fleet"
	}
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: base,
		Name:        label,
		Jobs:        *jobs,
		Poll:        *poll,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "sesa-worker: %s pulling from %s (jobs %d)\n", label, base, *jobs)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sesa-worker: drained, exiting")
}
