package sesa

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sesa/internal/checker"
	"sesa/internal/config"
	"sesa/internal/litmus"
	"sesa/internal/runner"
	"sesa/internal/stats"
	"sesa/internal/trace"
)

var updatePolicyEquiv = flag.Bool("update-policy-equiv", false, "rewrite testdata/policy_equiv.golden.json from the current simulator")

// legacyModels is the paper's five machines, spelled as constants rather
// than config.AllModels(): the golden below pins these five regardless of
// how many machines the registry grows, so a policy-extraction refactor is
// checked old-vs-new while new machines land alongside.
func legacyModels() []config.Model {
	return []config.Model{
		config.X86, config.NoSpec370, config.SLFSpec370,
		config.SLFSoS370, config.SLFSoSKey370,
	}
}

// policyLitmusCell pins one (test, model) outcome histogram from the timing
// simulator's witness search. Any change to issue, forwarding, gating,
// snooping or squash decisions perturbs which outcomes appear and how often.
type policyLitmusCell struct {
	Test     string
	Model    string
	Outcomes map[checker.Outcome]int
}

// policySweepCell pins one (profile, model) characterization sweep cell:
// complete machine statistics plus the Table IV derivation.
type policySweepCell struct {
	Job   string
	Stats *stats.Machine
	Char  stats.Characterization
}

type policyEquivGolden struct {
	Litmus []policyLitmusCell
	Sweep  []policySweepCell
}

const policyLitmusIters = 48

func policyEquivSnapshot(t *testing.T) []byte {
	t.Helper()
	var g policyEquivGolden
	for _, lt := range litmus.Tests() {
		for _, m := range legacyModels() {
			res, err := litmus.Run(lt, m, policyLitmusIters, 7)
			if err != nil {
				t.Fatalf("litmus %s on %s: %v", lt.Name, m, err)
			}
			g.Litmus = append(g.Litmus, policyLitmusCell{
				Test: lt.Name, Model: m.String(), Outcomes: res.Outcomes,
			})
		}
	}

	var jobs []runner.Job
	for _, p := range []struct {
		name string
		n    int
	}{{"505.mcf", 2000}, {"x264", 1500}} {
		prof, ok := trace.Lookup(p.name)
		if !ok {
			t.Fatalf("unknown profile %q", p.name)
		}
		for _, m := range legacyModels() {
			jobs = append(jobs, runner.Job{
				Profile:     prof,
				Model:       m,
				InstPerCore: p.n,
				Seed:        42,
				StepMode:    config.StepNaive,
			})
		}
	}
	results, _ := runner.Pool{Workers: 1}.Run(jobs)
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Job.Name(), r.Err)
		}
		g.Sweep = append(g.Sweep, policySweepCell{Job: r.Job.Name(), Stats: r.Stats, Char: r.Char})
	}

	b, err := json.MarshalIndent(&g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestPolicyEquivalence pins the five paper machines across the consistency
// policy extraction: litmus outcome histograms over the full suite and two
// characterization sweeps must be byte-identical to the golden generated
// before the per-model switches moved behind core.Policy. Runs under -race
// in CI. Regenerate with:
//
//	go test -run TestPolicyEquivalence -update-policy-equiv .
func TestPolicyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second litmus + characterization sweep")
	}
	got := policyEquivSnapshot(t)

	golden := filepath.Join("testdata", "policy_equiv.golden.json")
	if *updatePolicyEquiv {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-policy-equiv)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("legacy-model behavior diverged from pre-refactor golden (regenerate with -update-policy-equiv only if the change is intentional)")
	}
}

// TestLitmusRosterAgainstChecker runs the full litmus suite on every
// registered machine and requires each witnessed outcome to be allowed by
// the machine's bounding operational model. For the five paper machines
// this re-checks the paper's Table; for machines added through the policy
// registry (Louvre, RCP) it is the primary consistency proof obligation.
func TestLitmusRosterAgainstChecker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second litmus sweep")
	}
	for _, lt := range litmus.Tests() {
		for _, m := range config.AllModels() {
			res, err := litmus.Run(lt, m, 40, 11)
			if err != nil {
				t.Fatalf("litmus %s on %s: %v", lt.Name, m, err)
			}
			allowed := lt.Allowed(litmus.CheckerModelFor(m))
			for o, n := range res.Outcomes {
				if n > 0 && !allowed.Contains(o) {
					t.Errorf("%s on %s: witnessed %q (%d times), not allowed by %v",
						lt.Name, m, o, n, litmus.CheckerModelFor(m))
				}
			}
		}
	}
}
