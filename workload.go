package sesa

import (
	"fmt"
	"io"

	"sesa/internal/isa"
	"sesa/internal/stats"
	"sesa/internal/trace"
	"sesa/internal/tracefile"
)

// Profile describes one synthetic benchmark (Table IV calibration).
type Profile = trace.Profile

// Workload is a set of per-core programs generated from a profile.
type Workload = trace.Workload

// Suite distinguishes the parallel (SPLASH-3/PARSEC) and sequential
// (SPECrate 2017) halves of Table IV.
type Suite = trace.Suite

// The two benchmark suites.
const (
	ParallelSuite   = trace.Parallel
	SequentialSuite = trace.Sequential
)

// ParallelProfiles returns the 25 SPLASH-3/PARSEC profiles of Table IV.
func ParallelProfiles() []Profile { return trace.ParallelProfiles() }

// SequentialProfiles returns the 36 SPECrate 2017 profiles of Table IV.
func SequentialProfiles() []Profile { return trace.SequentialProfiles() }

// LookupProfile finds a profile by benchmark name.
func LookupProfile(name string) (Profile, bool) { return trace.Lookup(name) }

// BuildWorkload generates the deterministic per-core traces for a profile.
func BuildWorkload(p Profile, cores, instPerCore int, seed uint64) Workload {
	return trace.Build(p, cores, instPerCore, seed)
}

// RunWorkload builds a machine for the model, runs the workload to
// completion and returns the statistics. Cores without a program idle.
func RunWorkload(model Model, cfg Config, w Workload, maxCycles uint64) (*Stats, error) {
	cfg.Model = model
	sys, err := NewSystem(cfg, w.Name)
	if err != nil {
		return nil, err
	}
	if len(w.Programs) > cfg.Cores {
		return nil, fmt.Errorf("sesa: workload %s has %d programs but machine has %d cores",
			w.Name, len(w.Programs), cfg.Cores)
	}
	for i, p := range w.Programs {
		if err := sys.LoadProgram(i, p); err != nil {
			return nil, err
		}
	}
	if err := sys.Run(maxCycles); err != nil {
		return nil, err
	}
	return sys.Stats(), nil
}

// GeoMean returns the geometric mean of positive values, the aggregation
// Figure 10 uses for normalized execution times.
func GeoMean(xs []float64) float64 { return stats.GeoMean(xs) }

// Mean returns the arithmetic mean, the aggregation Table IV uses.
func Mean(xs []float64) float64 { return stats.Mean(xs) }

// WritePrograms serializes per-thread programs to the sesa trace text
// format, so generated workloads can be archived, inspected and replayed.
func WritePrograms(w io.Writer, threads []Program) error {
	ps := make([]isa.Program, len(threads))
	copy(ps, threads)
	return tracefile.Write(w, ps)
}

// ReadPrograms parses a trace file written by WritePrograms.
func ReadPrograms(r io.Reader) ([]Program, error) {
	ps, err := tracefile.Read(r)
	if err != nil {
		return nil, err
	}
	out := make([]Program, len(ps))
	copy(out, ps)
	return out, nil
}

// RunBenchmark generates the named Table IV benchmark and runs it under the
// model on the paper's 8-core machine (sequential benchmarks use core 0),
// returning the Table IV characterization row and the raw statistics. The
// trace comes from the process-wide cache, so running the same benchmark
// under several models generates it only once.
func RunBenchmark(name string, model Model, instPerCore int, seed uint64) (Characterization, *Stats, error) {
	p, ok := LookupProfile(name)
	if !ok {
		return Characterization{}, nil, fmt.Errorf("sesa: unknown benchmark %q", name)
	}
	cfg := DefaultConfig(model)
	w := trace.CachedWorkload(p, cfg.Cores, instPerCore, seed)
	st, err := RunWorkload(model, cfg, w, uint64(instPerCore)*200+2_000_000)
	if err != nil {
		return Characterization{}, nil, err
	}
	return st.Characterize(), st, nil
}
