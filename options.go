package sesa

import "sesa/internal/sim"

// Option configures a System at construction. Options consolidate the
// cross-cutting concerns that used to require post-construction setters —
// workload naming, pipeline tracing, latency histograms, the clock stepper —
// into one call:
//
//	sys, err := sesa.New(cfg,
//		sesa.WithWorkloadName("mp-demo"),
//		sesa.WithHistograms(hists),
//		sesa.WithStepMode(sesa.StepNaive))
//
// The attach methods (AttachTracer, AttachHists, and the workload argument
// of NewSystem) remain as the imperative equivalents; an option and its
// setter are interchangeable as long as both happen before Run.
type Option func(*sysOptions)

// sysOptions accumulates the applied options.
type sysOptions struct {
	workload string
	tracer   *Tracer
	hists    *HistSet
	stepMode *StepMode
}

// WithWorkloadName names the run in statistics and reports, as NewSystem's
// workload argument does. The zero value leaves the run unnamed.
func WithWorkloadName(name string) Option {
	return func(o *sysOptions) { o.workload = name }
}

// WithTrace attaches an observability tracer (per-core pipeline event rings
// plus interval metrics) to the machine, equivalent to calling AttachTracer
// before Run. A nil tracer is a no-op.
func WithTrace(t *Tracer) Option {
	return func(o *sysOptions) { o.tracer = t }
}

// WithHistograms attaches latency-histogram sinks to the machine's cores,
// memory hierarchy and interconnect, equivalent to calling AttachHists
// before Run. A nil set is a no-op.
func WithHistograms(h *HistSet) Option {
	return func(o *sysOptions) { o.hists = h }
}

// WithStepMode overrides the configuration's clock stepper (skip or naive).
// The mode only affects how the clock advances, never what it observes: both
// steppers produce byte-identical statistics, traces and histograms.
func WithStepMode(m StepMode) Option {
	return func(o *sysOptions) { o.stepMode = &m }
}

// New builds a machine from the configuration and applies the options. It is
// the constructor behind NewSystem; the options cover everything that must
// happen between construction and Run.
func New(cfg Config, opts ...Option) (*System, error) {
	var o sysOptions
	for _, opt := range opts {
		opt(&o)
	}
	m, err := sim.New(cfg, o.workload)
	if err != nil {
		return nil, err
	}
	s := &System{m: m}
	if o.tracer != nil {
		s.AttachTracer(o.tracer)
	}
	if o.hists != nil {
		s.AttachHists(o.hists)
	}
	if o.stepMode != nil {
		m.SetStepMode(*o.stepMode)
	}
	return s, nil
}
