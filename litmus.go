package sesa

import (
	"sesa/internal/axiomatic"
	"sesa/internal/checker"
	"sesa/internal/litmus"
)

// CheckerModel selects an operational memory model for exhaustive outcome
// enumeration.
type CheckerModel = checker.Model

// The three operational models of the checker.
const (
	// CheckerX86TSO: TSO with store-to-load forwarding (rMCA).
	CheckerX86TSO = checker.X86TSO
	// Checker370TSO: store-atomic TSO without forwarding (MCA).
	Checker370TSO = checker.TSO370
	// CheckerSC: sequential consistency.
	CheckerSC = checker.SC
)

// Outcome is a canonical final-state observation; OutcomeSet a set of them.
type (
	Outcome    = checker.Outcome
	OutcomeSet = checker.OutcomeSet
)

// CheckerProgram is a litmus-style multithreaded program with observables.
type CheckerProgram = checker.Program

// RegObs and MemObs declare the observables of a CheckerProgram.
type (
	RegObs = checker.RegObs
	MemObs = checker.MemObs
)

// Enumerate exhaustively explores every interleaving of p under the model
// and returns the reachable outcomes — the paper's ConsistencyChecker.
func Enumerate(p CheckerProgram, m CheckerModel) OutcomeSet { return checker.Enumerate(p, m) }

// CompareModels returns outcomes allowed under a but not b, e.g. the
// store-atomicity gap between x86 and 370.
func CompareModels(p CheckerProgram, a, b CheckerModel) []Outcome { return checker.Compare(p, a, b) }

// LitmusTest is a named litmus test with its paper-highlighted outcome.
type LitmusTest = litmus.Test

// LitmusResult is the outcome histogram of simulator runs of a test.
type LitmusResult = litmus.Result

// LitmusTests returns the paper's suite: mp, n6, iriw, fig5, fig4, sb,
// sb+fence, lb, wrc.
func LitmusTests() []LitmusTest { return litmus.Tests() }

// GetLitmus returns the named litmus test; the error for an unknown name
// lists every valid one.
func GetLitmus(name string) (LitmusTest, error) { return litmus.Get(name) }

// LitmusNames returns the suite's test names in presentation order.
func LitmusNames() []string { return litmus.Names() }

// RunLitmus executes a litmus test on the cycle-accurate simulator iters
// times with varied timing, collecting the outcome histogram.
func RunLitmus(t LitmusTest, model Model, iters int, seed uint64) (*LitmusResult, error) {
	return litmus.Run(t, model, iters, seed)
}

// WithSBPressure returns a variant of the test whose forwarding threads
// first fill their store buffers with scratch-line stores, making the
// store-atomicity signatures observable on the timing simulator (the
// backlog real programs always have).
func WithSBPressure(t LitmusTest, n int) LitmusTest { return litmus.WithSBPressure(t, n) }

// SimCheckerModel maps a machine model to the operational model bounding
// its outcomes (x86 -> x86-TSO; every 370 machine -> store-atomic TSO).
func SimCheckerModel(m Model) CheckerModel { return litmus.CheckerModelFor(m) }

// AxiomaticModel selects the Alglave-style axiomatic formulation: candidate
// executions (rf + write serialization) filtered by uniproc, atomicity and
// ghb-acyclicity. Store atomicity is exactly "rfi is a global edge" — the
// paper's Figure 2 cycle argument.
type AxiomaticModel = axiomatic.Model

// The three axiomatic models.
const (
	AxX86TSO = axiomatic.X86TSO
	Ax370TSO = axiomatic.TSO370
	AxSC     = axiomatic.SC
)

// EnumerateAxiomatic explores every candidate execution of p under the
// axiomatic model and returns the allowed outcomes. It agrees with
// Enumerate (the operational formulation) on every litmus test in the
// suite; the two engines validate each other.
func EnumerateAxiomatic(p CheckerProgram, m AxiomaticModel) (OutcomeSet, error) {
	return axiomatic.Enumerate(p, m)
}
