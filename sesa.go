// Package sesa is a cycle-level reproduction of "Speculative Enforcement of
// Store Atomicity" (Ros & Kaxiras, MICRO 2020).
//
// It provides:
//
//   - a trace-driven multicore simulator with Skylake-like out-of-order
//     cores, a write-atomic MESI directory hierarchy and the paper's five
//     consistency-model implementations (x86, 370-NoSpec, 370-SLFSpec,
//     370-SLFSoS, 370-SLFSoS-key), built around SLF loads, SA-speculative
//     loads and the retire gate;
//   - an exhaustive operational consistency checker (x86-TSO, store-atomic
//     370 TSO, SC) that enumerates all outcomes of litmus programs;
//   - the paper's litmus tests (mp, n6, iriw, Figure 5, ...) runnable on
//     both engines;
//   - synthetic workload profiles for every benchmark in Table IV, and the
//     harnesses that regenerate the paper's tables and figures.
//
// Quick start:
//
//	sys, _ := sesa.NewSystem(sesa.DefaultConfig(sesa.SLFSoSKey370), "demo")
//	sys.LoadProgram(0, sesa.Program{
//		sesa.StoreImm(0x100, 1),
//		sesa.Load(1, 0x100), // forwarded: an SLF load
//	})
//	_ = sys.Run(1_000_000)
//	fmt.Println(sys.Core(0).RegValue(1))
package sesa

import (
	"context"

	"sesa/internal/config"
	"sesa/internal/core"
	"sesa/internal/isa"
	"sesa/internal/mem"
	"sesa/internal/sim"
	"sesa/internal/stats"
)

// Model selects the consistency-model implementation (Section V).
type Model = config.Model

// The machine roster: the paper's five evaluated machines, plus the
// machines built on the consistency-policy registry from related work.
const (
	X86          = config.X86
	NoSpec370    = config.NoSpec370
	SLFSpec370   = config.SLFSpec370
	SLFSoS370    = config.SLFSoS370
	SLFSoSKey370 = config.SLFSoSKey370
	Louvre370    = config.Louvre370
	RCP370       = config.RCP370
)

// AllModels lists every registered machine in registry order.
func AllModels() []Model { return config.AllModels() }

// PaperModels lists the five machines evaluated in the source paper, in
// the paper's order.
func PaperModels() []Model { return config.PaperModels() }

// Config is the machine configuration (Table III).
type Config = config.Config

// DefaultConfig returns the paper's evaluated machine: 8 Skylake-like cores
// with the Table III memory hierarchy.
func DefaultConfig(m Model) Config { return config.Default(m) }

// SkylakeConfig returns the Table III configuration with a custom core
// count.
func SkylakeConfig(cores int, m Model) Config { return config.Skylake(cores, m) }

// SmallConfig returns a scaled-down machine with tiny caches, useful for
// experimentation and tests that need to provoke evictions.
func SmallConfig(cores int, m Model) Config { return config.Small(cores, m) }

// StepMode selects how the machine advances its simulation clock.
type StepMode = config.StepMode

// The two clock steppers: the default two-level skip clock, and the naive
// cycle-by-cycle reference it is byte-identical to.
const (
	StepSkip  = config.StepSkip
	StepNaive = config.StepNaive
)

// ParseStepMode parses a -step-mode flag value ("skip" or "naive").
func ParseStepMode(s string) (StepMode, error) { return config.ParseStepMode(s) }

// ParseModel parses a model name as printed by Model.String ("x86",
// "370-NoSpec", ...), the inverse used by flags and the sesa-serve job JSON.
func ParseModel(s string) (Model, error) { return config.ParseModel(s) }

// ParseModels parses a -models flag value: "all", "none" (or empty), or a
// comma-separated list of machine names.
func ParseModels(spec string) ([]Model, error) { return config.ParseModels(spec) }

// ModelNames lists every registered machine name in registry order — the
// spellings ParseModel accepts.
func ModelNames() []string { return config.ModelNames() }

// ListModels renders the machine roster with one-line policy summaries,
// the body of the -list-models flag on every model-taking binary.
func ListModels() string { return config.ListModels() }

// Program is a per-core instruction trace.
type Program = isa.Program

// Inst is one micro-operation.
type Inst = isa.Inst

// Reg names an architectural register.
type Reg = isa.Reg

// RegNone marks an unused register operand.
const RegNone = isa.RegNone

// Instruction constructors, re-exported from the micro-ISA.
var (
	// Load builds an 8-byte load from addr into dst.
	Load = isa.Load
	// StoreImm builds an 8-byte store of an immediate to addr.
	StoreImm = isa.StoreImm
	// StoreReg builds a store of a register to addr.
	StoreReg = isa.StoreReg
	// ALU builds dst = src1 + src2.
	ALU = isa.ALU
	// ALUImm builds dst = src1 + imm with extra latency.
	ALUImm = isa.ALUImm
	// Fence builds a full memory fence (mfence).
	Fence = isa.Fence
	// RMW builds an atomic fetch-and-add.
	RMW = isa.RMW
	// Branch builds a conditional branch with the trace outcome.
	Branch = isa.Branch
	// Nop builds a no-op.
	Nop = isa.Nop
)

// Stats aggregates a run's measurements; Characterization is one Table IV
// row derived from them.
type (
	Stats            = stats.Machine
	CoreStats        = stats.Core
	Characterization = stats.Characterization
)

// MemStats exposes the memory-hierarchy counters.
type MemStats = mem.Stats

// System is one simulated multicore machine.
type System struct {
	m *sim.Machine
}

// NewSystem builds a machine; workload names the run in statistics. It is a
// thin wrapper over New(cfg, WithWorkloadName(workload)), kept so the
// original two-argument constructor keeps compiling everywhere; new code
// that also needs tracing, histograms or a step-mode override should call
// New with the corresponding options.
func NewSystem(cfg Config, workload string) (*System, error) {
	return New(cfg, WithWorkloadName(workload))
}

// LoadProgram installs the trace for core i.
func (s *System) LoadProgram(i int, p Program) error { return s.m.SetProgram(i, p) }

// InitMemory sets an initial 8-byte value.
func (s *System) InitMemory(addr, val uint64) { s.m.InitMemory(addr, val) }

// ReadMemory reads the current memory-order value at addr.
func (s *System) ReadMemory(addr uint64) uint64 { return s.m.ReadMemory(addr) }

// Core returns core i for register inspection.
func (s *System) Core(i int) *core.Core { return s.m.Core(i) }

// Run executes until all cores finish or maxCycles elapse. It is
// RunContext with context.Background().
func (s *System) Run(maxCycles uint64) error { return s.m.Run(maxCycles) }

// RunContext is Run with cooperative cancellation: a canceled context stops
// the machine within ~1000 simulated steps and returns a *CanceledError
// wrapping the context's cause (errors.Is(err, context.Canceled) matches),
// with partial statistics readable — mirroring the timeout path.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) error {
	return s.m.RunContext(ctx, maxCycles)
}

// Cycles returns the machine execution time so far.
func (s *System) Cycles() uint64 { return s.m.Cycle() }

// Stats returns the run's statistics.
func (s *System) Stats() *Stats { return s.m.Stats }

// MemoryStats returns the memory-hierarchy counters.
func (s *System) MemoryStats() MemStats { return s.m.Hierarchy().Stats }

// GateStorageBits returns the hardware cost of the SLFSoS-key mechanism for
// a configuration (Section IV-D: 640 bits for the Table III machine).
func GateStorageBits(cfg Config) int { return cfg.GateStorageBits() }
