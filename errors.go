package sesa

import "sesa/internal/sim"

// TimeoutError reports a machine that did not finish within its cycle bound
// (the liveness check of Section IV-C). Run, RunWorkload and sweep results
// surface it; classify with errors.As:
//
//	var te *sesa.TimeoutError
//	if errors.As(err, &te) { ... te.MaxCycles ... }
//
// Partial statistics (including Stats.Cycles at the cut) remain readable.
type TimeoutError = sim.TimeoutError

// CanceledError reports a run cut short by context cancellation
// (System.RunContext, RunSweepContext, or a DELETEd sesa-serve sweep). It
// unwraps to the context's cause, so errors.Is(err, context.Canceled)
// matches, and like TimeoutError it leaves partial statistics readable.
type CanceledError = sim.CanceledError
