package sesa

import (
	"context"
	"fmt"

	"sesa/internal/report"
	"sesa/internal/runner"
	"sesa/internal/trace"
)

// SweepJob is one experiment of a sweep: a workload profile run on one
// machine model.
type SweepJob = runner.Job

// SweepResult is the outcome of one sweep job, positionally matched to it.
type SweepResult = runner.Result

// SweepSummary aggregates a sweep's wall-clock and simulated throughput.
type SweepSummary = report.SweepSummary

// BenchmarkJob builds the sweep job for a named Table IV benchmark, the
// parallel analogue of RunBenchmark.
func BenchmarkJob(name string, model Model, instPerCore int, seed uint64) (SweepJob, error) {
	p, ok := LookupProfile(name)
	if !ok {
		return SweepJob{}, fmt.Errorf("sesa: unknown benchmark %q", name)
	}
	return SweepJob{Profile: p, Model: model, InstPerCore: instPerCore, Seed: seed}, nil
}

// RunSweep fans the jobs across `workers` goroutines (0 means GOMAXPROCS)
// and returns results in job order plus the sweep summary. Traces are
// generated once per (profile, cores, n, seed) in the process-wide cache and
// replayed read-only by every model. Results are bit-identical for any
// worker count: workers=1 reproduces the serial path.
//
// A failed job (e.g. a machine exceeding its cycle bound) does not abort the
// sweep; it is returned with Err set and partial statistics.
func RunSweep(jobs []SweepJob, workers int) ([]SweepResult, SweepSummary) {
	return RunSweepMonitored(jobs, workers, nil)
}

// RunSweepContext is RunSweep with cooperative cancellation: when ctx is
// canceled, running machines stop at their next cancellation poll and queued
// jobs fail immediately, freeing the workers mid-sweep. Canceled jobs come
// back as results whose Err wraps the context's cause (errors.Is with
// context.Canceled matches; SweepResult.Canceled reports them) with partial
// statistics. An uncanceled context reproduces RunSweep exactly.
func RunSweepContext(ctx context.Context, jobs []SweepJob, workers int) ([]SweepResult, SweepSummary) {
	pool := runner.Pool{Workers: workers, Cache: trace.Shared()}
	return pool.RunContext(ctx, jobs)
}

// SweepProgress tracks a live sweep for the -status-addr endpoint: jobs
// done/running/failed, retired instructions, ETA, and merged histograms.
type SweepProgress = runner.Progress

// NewSweepProgress returns an empty tracker to pass to RunSweepMonitored and
// ServeStatus.
func NewSweepProgress() *SweepProgress { return runner.NewProgress() }

// ServeStatus starts the live-introspection HTTP server on addr and returns
// the bound address. It serves /status and /histograms as JSON plus
// /debug/vars (expvar) and /debug/pprof.
func ServeStatus(addr string, p *SweepProgress) (string, error) {
	return runner.ServeStatus(addr, p)
}

// RunSweepMonitored is RunSweep with live progress reporting: the tracker is
// updated at job boundaries and never affects results (nil is allowed and
// reproduces RunSweep).
func RunSweepMonitored(jobs []SweepJob, workers int, p *SweepProgress) ([]SweepResult, SweepSummary) {
	pool := runner.Pool{Workers: workers, Cache: trace.Shared(), Progress: p}
	return pool.Run(jobs)
}
