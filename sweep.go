package sesa

import (
	"fmt"

	"sesa/internal/report"
	"sesa/internal/runner"
	"sesa/internal/trace"
)

// SweepJob is one experiment of a sweep: a workload profile run on one
// machine model.
type SweepJob = runner.Job

// SweepResult is the outcome of one sweep job, positionally matched to it.
type SweepResult = runner.Result

// SweepSummary aggregates a sweep's wall-clock and simulated throughput.
type SweepSummary = report.SweepSummary

// BenchmarkJob builds the sweep job for a named Table IV benchmark, the
// parallel analogue of RunBenchmark.
func BenchmarkJob(name string, model Model, instPerCore int, seed uint64) (SweepJob, error) {
	p, ok := LookupProfile(name)
	if !ok {
		return SweepJob{}, fmt.Errorf("sesa: unknown benchmark %q", name)
	}
	return SweepJob{Profile: p, Model: model, InstPerCore: instPerCore, Seed: seed}, nil
}

// RunSweep fans the jobs across `workers` goroutines (0 means GOMAXPROCS)
// and returns results in job order plus the sweep summary. Traces are
// generated once per (profile, cores, n, seed) in the process-wide cache and
// replayed read-only by every model. Results are bit-identical for any
// worker count: workers=1 reproduces the serial path.
//
// A failed job (e.g. a machine exceeding its cycle bound) does not abort the
// sweep; it is returned with Err set and partial statistics.
func RunSweep(jobs []SweepJob, workers int) ([]SweepResult, SweepSummary) {
	pool := runner.Pool{Workers: workers, Cache: trace.Shared()}
	return pool.Run(jobs)
}
