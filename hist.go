package sesa

import (
	"fmt"
	"io"
	"os"

	"sesa/internal/hist"
	"sesa/internal/report"
)

// HistSet is the latency-histogram sinks of one machine: a collector per
// core plus one for the interconnect.
type HistSet = hist.Set

// HistCollector holds one latency histogram per instrumented metric.
type HistCollector = hist.Collector

// HistSummary is the fixed percentile digest (count/mean/min/p50/p90/p99/max).
type HistSummary = hist.Summary

// HistRun is one machine's latency distributions, named for export.
type HistRun = report.HistRun

// HistReport is a set of named histogram runs, the document behind -hist-out.
type HistReport = report.HistReport

// NewHistSet builds the histogram sinks for a machine with the given core
// count; attach it with System.AttachHists or SweepJob.Hists.
func NewHistSet(cores int) *HistSet { return hist.NewSet(cores) }

// NewHistRun snapshots a machine's histogram set under the given name.
func NewHistRun(name string, s *HistSet) HistRun { return report.NewHistRun(name, s) }

// AttachHists wires latency-histogram sinks through the system's cores,
// memory hierarchy and interconnect. Call before Run.
func (s *System) AttachHists(h *HistSet) { s.m.AttachHists(h) }

// Hists returns the system's attached histogram set (nil when disabled).
func (s *System) Hists() *HistSet { return s.m.Hists() }

// ValidHistFormats names the supported -hist-format values.
const ValidHistFormats = "text, json"

// WriteHistReport writes the report to path in the given format ("text" or
// "json"); an empty path or "-" writes to stdout.
func WriteHistReport(path, format string, rep HistReport) error {
	var f report.Format
	switch format {
	case "text":
		f = report.Text
	case "json":
		f = report.JSON
	default:
		return fmt.Errorf("sesa: unknown histogram format %q (want %s)", format, ValidHistFormats)
	}
	var w io.Writer = os.Stdout
	if path != "" && path != "-" {
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = file.Close() }()
		w = file
	}
	return rep.Write(w, f)
}
