package sesa

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sesa/internal/config"
	"sesa/internal/runner"
	"sesa/internal/stats"
	"sesa/internal/trace"
)

var updateEquiv = flag.Bool("update-equiv", false, "rewrite testdata/hotpath_equiv.golden.json from the current simulator")

// equivProfiles is the refactor-equivalence workload set: a 505.mcf slice
// (the pointer-chasing, stream-heavy sequential profile the hot-path work
// targets) plus the two most synchronization-heavy parallel profiles, whose
// cross-core invalidation traffic exercises squash/snoop event ordering the
// way the litmus suite does.
func equivProfiles() []struct {
	name string
	n    int
} {
	return []struct {
		name string
		n    int
	}{
		{"505.mcf", 4000},
		{"x264", 2500},
		{"ferret", 2500},
	}
}

func equivJobs(t *testing.T, mode config.StepMode) []runner.Job {
	t.Helper()
	var jobs []runner.Job
	for _, p := range equivProfiles() {
		prof, ok := trace.Lookup(p.name)
		if !ok {
			t.Fatalf("unknown profile %q", p.name)
		}
		// The paper's five machines: the golden predates the policy
		// registry, and pinning the fixed roster keeps it byte-stable as
		// machines are added.
		for _, m := range config.PaperModels() {
			jobs = append(jobs, runner.Job{
				Profile:     prof,
				Model:       m,
				InstPerCore: p.n,
				Seed:        42,
				StepMode:    mode,
			})
		}
	}
	return jobs
}

// equivCell is one (profile, model) golden record: the complete machine
// statistics plus the derived Table IV characterization. Any change to
// event order, squash timing, forwarding decisions, or cycle accounting
// shows up here.
type equivCell struct {
	Job   string
	Stats *stats.Machine
	Char  stats.Characterization
}

func equivMarshal(t *testing.T, results []runner.Result) []byte {
	t.Helper()
	cells := make([]equivCell, 0, len(results))
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Job.Name(), r.Err)
		}
		cells = append(cells, equivCell{Job: r.Job.Name(), Stats: r.Stats, Char: r.Char})
	}
	b, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestHotpathEquivalence pins the simulator's observable behavior across
// memory-layout refactors: every (profile, model) cell must produce
// byte-identical statistics under the naive and skip clocks, under 1 and 8
// sweep workers, and against the checked-in golden generated before the
// layout change. Run with -race in CI so data movement between workers is
// exercised too. Regenerate with:
//
//	go test -run TestHotpathEquivalence -update-equiv .
func TestHotpathEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second characterization sweep")
	}
	baseline, _ := runner.Pool{Workers: 1}.Run(equivJobs(t, config.StepNaive))
	got := equivMarshal(t, baseline)

	golden := filepath.Join("testdata", "hotpath_equiv.golden.json")
	if *updateEquiv {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-equiv)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("naive/jobs=1 sweep diverged from golden (regenerate with -update-equiv only if the change is intentional)")
	}

	variants := []struct {
		name string
		mode config.StepMode
		jobs int
	}{
		{"naive/jobs=8", config.StepNaive, 8},
		{"skip/jobs=1", config.StepSkip, 1},
		{"skip/jobs=8", config.StepSkip, 8},
	}
	for _, v := range variants {
		results, _ := runner.Pool{Workers: v.jobs}.Run(equivJobs(t, v.mode))
		if b := equivMarshal(t, results); !bytes.Equal(b, got) {
			t.Errorf("%s diverged from naive/jobs=1 baseline", v.name)
		}
	}
}
