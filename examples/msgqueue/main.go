// Message queue: a hand-built producer/consumer workload, the class of code
// the paper's introduction motivates. The producer writes payload slots and
// publishes sequence numbers; the consumer polls the sequence numbers and
// reads the payloads. Fences mark the publication points, as portable code
// on either memory model would.
//
// The example shows that the program's final state is identical under every
// registered machine (the models differ in performance, not correctness for
// properly synchronized code) and compares their cycle counts.
//
//	go run ./examples/msgqueue
package main

import (
	"fmt"
	"log"

	"sesa"
)

const (
	slots    = 16
	messages = 200
	payload  = uint64(0x1_0000) // payload ring
	seqs     = uint64(0x2_0000) // sequence numbers, one line apart
)

func producer() sesa.Program {
	var p sesa.Program
	for m := 0; m < messages; m++ {
		slot := uint64(m % slots)
		// Write the payload, fence, publish the sequence number. The
		// local re-read of the payload is the store-to-load forwarding
		// idiom the paper is about.
		p = append(p,
			sesa.StoreImm(payload+slot*8, uint64(m)*10+7),
			sesa.Load(1, payload+slot*8), // SLF load: producer-side check
			sesa.Fence(),
			sesa.StoreImm(seqs+slot*64, uint64(m+1)),
		)
	}
	return p
}

func consumer() sesa.Program {
	var p sesa.Program
	for m := 0; m < messages; m++ {
		slot := uint64(m % slots)
		// A trace cannot spin, so the consumer reads the sequence number
		// (ordering only) and then the payload.
		p = append(p,
			sesa.Load(2, seqs+slot*64),
			sesa.Load(3, payload+slot*8),
			sesa.ALU(4, 4, 3), // accumulate payloads
		)
	}
	return p
}

func main() {
	var baseline uint64
	for _, model := range sesa.AllModels() {
		sys, err := sesa.NewSystem(sesa.SkylakeConfig(2, model), "msgqueue")
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadProgram(0, producer()); err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadProgram(1, consumer()); err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(10_000_000); err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = sys.Cycles()
		}
		st := sys.Stats().Total()

		// Correctness: every slot holds the payload of the last message
		// written to it.
		for s := uint64(0); s < slots; s++ {
			last := uint64(messages - 1)
			for last%slots != s {
				last--
			}
			if got := sys.ReadMemory(payload + s*8); got != last*10+7 {
				log.Fatalf("%s: slot %d = %d, want %d", model, s, got, last*10+7)
			}
		}
		fmt.Printf("%-15s cycles=%6d (%.3fx)  forwarded=%3d  gate closes=%4d  squashes=%d\n",
			model, sys.Cycles(), float64(sys.Cycles())/float64(baseline),
			st.SLFLoads, st.GateCloses, st.Squashes)
	}
	fmt.Println("\nAll machines produce the identical memory image; they differ")
	fmt.Println("only in how much the store-atomicity guarantee costs.")
}
