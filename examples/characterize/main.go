// Characterize: run a few Table IV benchmarks under all five consistency
// models and print the paper's key metrics — forwarding rate, gate stalls,
// store-atomicity re-execution, and execution time normalized to x86.
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"sesa"
)

func main() {
	const instPerCore = 20_000
	benchmarks := []string{"barnes", "x264", "radix", "505.mcf", "500.perlbench_2"}

	for _, bench := range benchmarks {
		fmt.Printf("== %s\n", bench)
		var base uint64
		for _, model := range sesa.AllModels() {
			ch, _, err := sesa.RunBenchmark(bench, model, instPerCore, 42)
			if err != nil {
				log.Fatal(err)
			}
			if model == sesa.X86 {
				base = ch.Cycles
			}
			fmt.Printf("   %-15s time=%.3fx  fwd=%6.3f%%  gate-stalls=%6.3f%% (%4.1f cyc)  SA-reexec=%6.3f%%\n",
				model, float64(ch.Cycles)/float64(base),
				ch.ForwardedPct, ch.GateStallsPct, ch.AvgStallCycles, ch.ReexecutedPct)
		}
	}

	fmt.Println()
	fmt.Println("Expected shape (paper, Section VI): x86 fastest; 370-NoSpec pays the")
	fmt.Println("blanket-enforcement cost; 370-SLFSpec recovers some; the retire gate")
	fmt.Println("(370-SLFSoS) and the key (370-SLFSoS-key) close most of the gap.")
}
