// Litmus gallery: reproduce the paper's Figures 1-5 and Table II.
//
// For every litmus test it prints the exhaustively enumerated outcome sets
// of the operational x86-TSO and store-atomic 370 models, then runs the test
// on the cycle-accurate machine to witness (or fail to witness, on the
// store-atomic machines) the highlighted behaviour.
//
//	go run ./examples/litmusgallery
package main

import (
	"fmt"
	"log"

	"sesa"
)

func main() {
	for _, name := range []string{"mp", "n6", "iriw", "fig4", "fig5"} {
		test, err := sesa.GetLitmus(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s\n    %s\n", test.Name, test.Doc)

		x86Allowed := test.Allowed(sesa.CheckerX86TSO)
		atomAllowed := test.Allowed(sesa.Checker370TSO)
		fmt.Printf("    outcomes allowed under x86-TSO: %d, under store-atomic 370: %d\n",
			len(x86Allowed), len(atomAllowed))
		fmt.Printf("    highlighted outcome %q: x86=%v 370=%v\n",
			test.Interesting,
			x86Allowed.Contains(test.Interesting),
			atomAllowed.Contains(test.Interesting))

		// Run with store-buffer pressure so the simulated x86 machine can
		// actually witness the violation, like litmus7 on real hardware.
		pressured := sesa.WithSBPressure(test, 3)
		for _, model := range []sesa.Model{sesa.X86, sesa.SLFSoSKey370} {
			res, err := sesa.RunLitmus(pressured, model, 10, 7)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    simulated %-15s witnessed the highlighted outcome: %v\n",
				model, res.Observed(test.Interesting))
		}
		fmt.Println()
	}
}
