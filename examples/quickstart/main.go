// Quickstart: build a machine, run a tiny program with store-to-load
// forwarding on two models, and watch the retire gate work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sesa"
)

func main() {
	// A store followed closely by a load of the same address: the load is
	// satisfied by store-to-load forwarding (an SLF load). Two slow
	// stores ahead of it keep the forwarding store in the store buffer,
	// so under 370-SLFSoS-key the retiring SLF load closes the retire
	// gate and the younger load waits.
	delay := sesa.Reg(30)
	program := sesa.Program{
		sesa.ALUImm(delay, delay, 1, 200), // long dependency chain ...
	}
	slow := sesa.StoreImm(0x9000, 1) // ... delaying this store's address
	slow.Src2 = delay
	program = append(program,
		slow,
		sesa.StoreImm(0x100, 42), // the forwarding store
		sesa.Load(1, 0x100),      // SLF load: gets 42 from the store buffer
		sesa.Load(2, 0x200),      // younger load: SA-speculative
	)

	for _, model := range []sesa.Model{sesa.X86, sesa.SLFSoSKey370} {
		sys, err := sesa.NewSystem(sesa.SkylakeConfig(1, model), "quickstart")
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadProgram(0, program); err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		st := sys.Stats().Total()
		fmt.Printf("%-15s  r1=%d  cycles=%d  SLF loads=%d  gate closes=%d  gate stalls=%d\n",
			model, sys.Core(0).RegValue(1), sys.Cycles(),
			st.SLFLoads, st.GateCloses, st.GateStalls)
	}
	fmt.Println()
	fmt.Println("Both models forward the store value (r1=42); only 370-SLFSoS-key")
	fmt.Println("closes the retire gate to keep the forwarding invisible to other cores.")
	fmt.Printf("Hardware cost of the mechanism on this machine: %d bits.\n",
		sesa.GateStorageBits(sesa.DefaultConfig(sesa.SLFSoSKey370)))
}
