package sesa

import "testing"

// runProgram runs one single-core program on a model and returns the
// machine's aggregate core statistics.
func runProgram(t *testing.T, m Model, p Program) (CoreStats, MemStats) {
	t.Helper()
	sys, err := NewSystem(SkylakeConfig(1, m), "policy-probe")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadProgram(0, p); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return sys.Stats().Total(), sys.MemoryStats()
}

// TestLouvreIssuesLoadsPastFences pins the Louvre policy's defining
// behavior: a load younger than an in-flight fence issues speculatively
// (counted as a version-speculative load) instead of stalling, while the
// keyed paper machine keeps the load latched until the fence completes and
// never takes the versioned path.
func TestLouvreIssuesLoadsPastFences(t *testing.T) {
	// The store drains through the SB while the fence waits on it; the
	// trailing load targets a different line so only the fence can hold it.
	prog := Program{
		StoreImm(0x100, 1),
		Fence(),
		Load(1, 0x2000),
	}
	louvre, _ := runProgram(t, Louvre370, prog)
	if louvre.VersionSpecLoads == 0 {
		t.Error("370-Louvre issued no loads past the in-flight fence")
	}
	keyed, _ := runProgram(t, SLFSoSKey370, prog)
	if keyed.VersionSpecLoads != 0 {
		t.Errorf("370-SLFSoS-key counted %d version-speculative loads, want 0", keyed.VersionSpecLoads)
	}
}

// TestRCPInvisibleLoadsAreValidated pins the RCP policy's defining behavior:
// a load that is speculative at issue (here: younger than a long-latency
// in-flight load) reads the hierarchy invisibly and is value-validated at
// retirement. The same program on the keyed machine must leave every RCP
// counter at zero — that invariant is what keeps the pre-roster goldens
// byte-identical through the omitempty stats fields.
func TestRCPInvisibleLoadsAreValidated(t *testing.T) {
	// The first load misses to memory; the second issues in its shadow.
	prog := Program{
		Load(1, 0x4000),
		Load(2, 0x8000),
	}
	rcp, mem := runProgram(t, RCP370, prog)
	if rcp.InvisibleLoads == 0 {
		t.Error("370-RCP performed no invisible loads")
	}
	if rcp.Validations == 0 {
		t.Error("370-RCP validated no loads at retirement")
	}
	if rcp.Validations < rcp.InvisibleLoads-rcp.Squashes {
		t.Errorf("validations %d < surviving invisible loads %d",
			rcp.Validations, rcp.InvisibleLoads-rcp.Squashes)
	}
	if mem.InvisibleLoads == 0 {
		t.Error("hierarchy saw no invisible loads")
	}
	// Single core, no remote writers: value validation must never fail.
	if rcp.ValidationSquashes != 0 {
		t.Errorf("single-core run squashed %d loads on validation", rcp.ValidationSquashes)
	}

	keyed, kmem := runProgram(t, SLFSoSKey370, prog)
	if keyed.InvisibleLoads != 0 || keyed.Validations != 0 || keyed.ValidationSquashes != 0 || kmem.InvisibleLoads != 0 {
		t.Errorf("keyed machine touched RCP counters: %+v mem=%d", keyed, kmem.InvisibleLoads)
	}
}
