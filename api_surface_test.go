package sesa_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update", false, "rewrite testdata/api_surface.golden from the current source")

// TestAPISurfaceLocked guards the package's exported surface: every exported
// identifier of package sesa (types, funcs, methods, consts, vars) must
// appear in testdata/api_surface.golden. An unreviewed addition, rename or
// removal fails this test; after review, regenerate with
//
//	go test -run TestAPISurfaceLocked -update .
func TestAPISurfaceLocked(t *testing.T) {
	got := strings.Join(apiSurface(t), "\n") + "\n"
	const golden = "testdata/api_surface.golden"
	if *updateSurface {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface changed; review and regenerate with -update.\ndiff:\n%s",
			surfaceDiff(strings.Split(string(want), "\n"), strings.Split(got, "\n")))
	}
}

// apiSurface enumerates the exported identifiers of the root package, one
// canonical line each.
func apiSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["sesa"]
	if !ok {
		t.Fatalf("package sesa not found (got %v)", pkgs)
	}

	var ids []string
	add := func(kind, name string) {
		if ast.IsExported(name) {
			ids = append(ids, kind+" "+name)
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					add("func", d.Name.Name)
					continue
				}
				recv := recvTypeName(d.Recv.List[0].Type)
				if ast.IsExported(recv) {
					add("method", recv+"."+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						add("type", sp.Name.Name)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range sp.Names {
							add(kind, n.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(ids)
	return ids
}

// recvTypeName unwraps a method receiver type to its base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr: // generic receiver
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// surfaceDiff renders the added/removed lines between two sorted line sets.
func surfaceDiff(want, got []string) string {
	in := func(set []string, s string) bool {
		i := sort.SearchStrings(set, s)
		return i < len(set) && set[i] == s
	}
	var b strings.Builder
	for _, s := range got {
		if s != "" && !in(want, s) {
			fmt.Fprintf(&b, "+ %s\n", s)
		}
	}
	for _, s := range want {
		if s != "" && !in(got, s) {
			fmt.Fprintf(&b, "- %s\n", s)
		}
	}
	if b.Len() == 0 {
		return "(ordering only)"
	}
	return b.String()
}
