// Package config holds the simulated system configuration.
//
// The default configuration reproduces Table III of the paper: an 8-core
// Skylake-like out-of-order multicore with private L1/L2 caches, a shared
// 8-bank L3, a directory-based write-atomic MESI protocol and a fully
// connected interconnect.
package config

import (
	"fmt"
	"strings"
)

// Model selects the consistency-model implementation a core runs. The
// value is an index into the machine registry below; core maps it to the
// policy implementation that realizes the machine's decisions.
type Model int

// The machine roster: the five machines compared in Section VI of the
// paper, followed by the machines built on the policy API from related
// work. Registry order is presentation order everywhere (sweeps, flags,
// litmus tables), so new machines append.
const (
	// X86 is the non-store-atomic x86-TSO baseline: store-to-load
	// forwarding from in-limbo stores is unrestricted and SLF loads retire
	// freely. Load-load ordering uses in-window speculation.
	X86 Model = iota
	// NoSpec370 enforces store atomicity without speculation, as IBM 370:
	// a load matching a store in the SQ/SB cannot perform until that store
	// has written to the L1.
	NoSpec370
	// SLFSpec370 adapts in-window SC-like speculation to the 370 model:
	// SLF loads perform speculatively but cannot retire until the store
	// buffer drains, and are squashed by invalidations meanwhile.
	SLFSpec370
	// SLFSoS370 is the paper's source-of-speculation insight without the
	// key: SLF loads retire freely, closing the retire gate behind them;
	// the gate reopens when the store buffer becomes empty.
	SLFSoS370
	// SLFSoSKey370 is the paper's full proposal: the retiring SLF load
	// locks the gate with the key of its forwarding store, and the gate
	// reopens as soon as that particular store writes to the L1.
	SLFSoSKey370
	// Louvre370 layers Louvre-style versioned ordering (Kumar et al.) on
	// the keyed machine: loads issue speculatively past in-flight fences
	// instead of stalling, remain squashable by invalidations until the
	// fence retires, and in-order retirement discharges the version check.
	Louvre370
	// RCP370 rides a reversible-coherence idea (Wu et al.) on the keyed
	// machine: loads that are speculative at issue time read the hierarchy
	// invisibly — no directory, cache or LRU state changes — and are
	// value-validated against memory at retirement, squashing on mismatch.
	RCP370
)

// ModelInfo describes one registered machine. The registry drives every
// model-facing API surface — String, StoreAtomic, Speculative, AllModels,
// ModelNames, ParseModel and Config.Validate — so registering a machine
// here (plus its core policy) is the whole integration.
type ModelInfo struct {
	// Name is the canonical spelling, as printed by Model.String and
	// accepted by ParseModel.
	Name string
	// StoreAtomic reports whether the machine guarantees store atomicity.
	StoreAtomic bool
	// Speculative reports whether the machine uses speculation to enforce
	// store atomicity (as opposed to blanket enforcement or none).
	Speculative bool
	// Paper marks the five machines evaluated in the source paper; the
	// refactor-equivalence goldens pin exactly these.
	Paper bool
	// Doc is a one-line policy summary for -list-models and docs.
	Doc string
}

var registry = [...]ModelInfo{
	X86: {Name: "x86", StoreAtomic: false, Speculative: false, Paper: true,
		Doc: "non-store-atomic x86-TSO baseline: unrestricted SLF, free retirement"},
	NoSpec370: {Name: "370-NoSpec", StoreAtomic: true, Speculative: false, Paper: true,
		Doc: "blanket enforcement: loads matching an SQ/SB store wait for its L1 write"},
	SLFSpec370: {Name: "370-SLFSpec", StoreAtomic: true, Speculative: true, Paper: true,
		Doc: "SC-like speculation: SLF loads perform early but retire only after SB drain"},
	SLFSoS370: {Name: "370-SLFSoS", StoreAtomic: true, Speculative: true, Paper: true,
		Doc: "source-of-speculation: retiring SLF load closes the gate until the SB drains"},
	SLFSoSKey370: {Name: "370-SLFSoS-key", StoreAtomic: true, Speculative: true, Paper: true,
		Doc: "keyed gate: reopens as soon as the forwarding store writes to the L1"},
	Louvre370: {Name: "370-Louvre", StoreAtomic: true, Speculative: true, Paper: false,
		Doc: "versioned ordering: loads issue past in-flight fences, squashable until the fence retires"},
	RCP370: {Name: "370-RCP", StoreAtomic: true, Speculative: true, Paper: false,
		Doc: "reversible coherence: speculative loads read invisibly, value-validated at retirement"},
}

// Info returns the registry entry for the model and whether it exists.
func (m Model) Info() (ModelInfo, bool) {
	if int(m) >= 0 && int(m) < len(registry) {
		return registry[m], true
	}
	return ModelInfo{}, false
}

// String returns the machine's canonical name.
func (m Model) String() string {
	if info, ok := m.Info(); ok {
		return info.Name
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// StoreAtomic reports whether the model guarantees store atomicity (MCA).
func (m Model) StoreAtomic() bool {
	info, _ := m.Info()
	return info.StoreAtomic
}

// Speculative reports whether the model uses speculation to enforce store
// atomicity (as opposed to blanket enforcement or no enforcement).
func (m Model) Speculative() bool {
	info, _ := m.Info()
	return info.Speculative
}

// AllModels lists every registered machine in registry order.
func AllModels() []Model {
	out := make([]Model, len(registry))
	for i := range registry {
		out[i] = Model(i)
	}
	return out
}

// PaperModels lists the five machines evaluated in the source paper, in
// the paper's order — the set the hot-path and policy equivalence goldens
// pin byte-identically across refactors.
func PaperModels() []Model {
	var out []Model
	for i := range registry {
		if registry[i].Paper {
			out = append(out, Model(i))
		}
	}
	return out
}

// ModelNames lists every registered machine name in registry order — the
// spellings ParseModel accepts.
func ModelNames() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = registry[i].Name
	}
	return out
}

// ParseModel parses a model name as printed by Model.String ("x86",
// "370-NoSpec", ...); the error for an unknown name lists every valid one.
func ParseModel(s string) (Model, error) {
	for m := range registry {
		if s == registry[m].Name {
			return Model(m), nil
		}
	}
	return 0, fmt.Errorf("config: unknown model %q (want %s)", s, strings.Join(ModelNames(), ", "))
}

// ParseModels parses a -models flag value: "all" selects every registered
// machine, "none" (or empty) selects none, and otherwise a comma-separated
// list of machine names is parsed with ParseModel; unknown names are
// rejected with the valid list.
func ParseModels(spec string) ([]Model, error) {
	switch spec {
	case "all":
		return AllModels(), nil
	case "none", "":
		return nil, nil
	}
	var models []Model
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := ParseModel(name)
		if err != nil {
			return nil, fmt.Errorf("config: unknown model %q (want all, none, or a comma list of %s)",
				name, strings.Join(ModelNames(), ", "))
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("config: model list %q selects no models", spec)
	}
	return models, nil
}

// ListModels renders the registered machine roster, one "name  summary"
// line per machine in registry order — the shared body of the -list-models
// flag on every model-taking binary.
func ListModels() string {
	width := 0
	for i := range registry {
		if len(registry[i].Name) > width {
			width = len(registry[i].Name)
		}
	}
	var b strings.Builder
	for i := range registry {
		fmt.Fprintf(&b, "%-*s  %s\n", width, registry[i].Name, registry[i].Doc)
	}
	return b.String()
}

// StepMode selects how the machine advances its simulation clock.
type StepMode int

const (
	// StepSkip is the default two-level clock: when every core reports a
	// quiescent cycle the machine jumps straight to the next pending
	// event or core wake cycle, bulk-accounting the skipped range. Its
	// observable outputs (stats, traces, histograms, interval metrics)
	// are byte-identical to StepNaive.
	StepSkip StepMode = iota
	// StepNaive ticks every core on every cycle — the reference stepper
	// the skip path is validated against.
	StepNaive
)

var stepModeNames = [...]string{
	StepSkip:  "skip",
	StepNaive: "naive",
}

// String returns the -step-mode flag spelling of the mode.
func (m StepMode) String() string {
	if int(m) >= 0 && int(m) < len(stepModeNames) {
		return stepModeNames[m]
	}
	return fmt.Sprintf("step-mode(%d)", int(m))
}

// ParseStepMode parses a -step-mode flag value.
func ParseStepMode(s string) (StepMode, error) {
	for m, name := range stepModeNames {
		if s == name {
			return StepMode(m), nil
		}
	}
	return 0, fmt.Errorf("config: unknown step mode %q (want skip or naive)", s)
}

// Core holds the out-of-order core parameters (Table III, top).
type Core struct {
	// Width is the dispatch and retire width in instructions per cycle.
	Width int
	// ROBEntries is the reorder-buffer capacity.
	ROBEntries int
	// LQEntries is the load-queue capacity.
	LQEntries int
	// SQEntries is the combined store-queue + store-buffer capacity. The
	// SQ and SB are a single physical structure; the division is the
	// retirement pointer (Section II-A).
	SQEntries int
	// BranchMispredictPenalty is the front-end redirect latency in cycles
	// charged when a branch resolves mispredicted.
	BranchMispredictPenalty int
	// SquashRefillPenalty is charged when speculative loads are squashed
	// by an invalidation and the pipeline refills from the squashed load.
	SquashRefillPenalty int
	// PipelineDepth is the minimum dispatch-to-retire latency in cycles,
	// modelling the front-end and commit stages a real pipeline has
	// between rename and retirement.
	PipelineDepth int
}

// Cache holds the geometry and latency of one cache level.
type Cache struct {
	SizeBytes int
	Ways      int
	LineBytes int
	HitCycles int
}

// Sets returns the number of sets of the cache.
func (c Cache) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Memory holds the memory-hierarchy parameters (Table III, middle).
type Memory struct {
	L1D Cache
	L2  Cache
	// L3 describes one bank; there are L3Banks of them.
	L3      Cache
	L3Banks int
	// DirectoryWays and DirectoryCoverage describe the sparse directory:
	// coverage is a multiple of aggregate L2 capacity (2.0 = 200%).
	DirectoryWays     int
	DirectoryCoverage float64
	// MemCycles is the DRAM access latency.
	MemCycles int
	// StridePrefetch enables the L1 stride prefetcher.
	StridePrefetch bool
	// RFOPrefetch enables read-for-ownership prefetching at store
	// execution (as x86 cores do); disabling it is the ablation that
	// exposes every store miss serially in the SB drain.
	RFOPrefetch bool
}

// NoC holds the interconnect parameters (Table III, bottom). The topology is
// fully connected, so every hop is one switch-to-switch traversal.
type NoC struct {
	SwitchLatency int // cycles per switch-to-switch hop
	ControlFlits  int
	DataFlits     int
	FlitCycles    int // cycles of serialization per flit
}

// ControlLatency is the one-way latency of a control message.
func (n NoC) ControlLatency() int { return n.SwitchLatency + n.ControlFlits*n.FlitCycles }

// DataLatency is the one-way latency of a data message.
func (n NoC) DataLatency() int { return n.SwitchLatency + n.DataFlits*n.FlitCycles }

// Config is the full machine configuration.
type Config struct {
	Cores int
	Model Model
	Core  Core
	Mem   Memory
	NoC   NoC
	// JitterSeed and Jitter add a deterministic pseudo-random 0..Jitter
	// cycle perturbation to memory-system event latencies. Zero disables
	// it. Litmus witness search uses it to explore interleavings.
	Jitter     int
	JitterSeed uint64
	// StepMode selects the clock stepper; the zero value is StepSkip.
	StepMode StepMode
}

// Skylake returns the Table III configuration with the given core count and
// consistency model.
func Skylake(cores int, model Model) Config {
	return Config{
		Cores: cores,
		Model: model,
		Core: Core{
			Width:                   5,
			ROBEntries:              224,
			LQEntries:               72,
			SQEntries:               56,
			BranchMispredictPenalty: 14,
			SquashRefillPenalty:     12,
			PipelineDepth:           12,
		},
		Mem: Memory{
			L1D:               Cache{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitCycles: 4},
			L2:                Cache{SizeBytes: 128 << 10, Ways: 8, LineBytes: 64, HitCycles: 12},
			L3:                Cache{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, HitCycles: 35},
			L3Banks:           8,
			DirectoryWays:     8,
			DirectoryCoverage: 2.0,
			MemCycles:         160,
			StridePrefetch:    true,
			RFOPrefetch:       true,
		},
		NoC: NoC{SwitchLatency: 6, ControlFlits: 1, DataFlits: 5, FlitCycles: 1},
	}
}

// Default returns the paper's evaluated machine: 8 Skylake-like cores.
func Default(model Model) Config { return Skylake(8, model) }

// Small returns a scaled-down configuration useful for fast unit tests: the
// same structure with tiny caches so that evictions and misses are easy to
// provoke.
func Small(cores int, model Model) Config {
	c := Skylake(cores, model)
	c.Core.ROBEntries = 32
	c.Core.LQEntries = 12
	c.Core.SQEntries = 8
	c.Mem.L1D = Cache{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 4}
	c.Mem.L2 = Cache{SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitCycles: 12}
	c.Mem.L3 = Cache{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, HitCycles: 35}
	c.Mem.L3Banks = 2
	return c
}

// Validate checks the configuration for structural consistency.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("config: cores must be positive, got %d", c.Cores)
	}
	if _, ok := c.Model.Info(); !ok {
		return fmt.Errorf("config: unknown model %d (want %s)", int(c.Model), strings.Join(ModelNames(), ", "))
	}
	if c.Core.Width <= 0 || c.Core.ROBEntries <= 0 || c.Core.LQEntries <= 0 || c.Core.SQEntries <= 0 {
		return fmt.Errorf("config: core structure sizes must be positive: %+v", c.Core)
	}
	if c.Core.ROBEntries < c.Core.LQEntries && c.Core.ROBEntries < c.Core.SQEntries {
		return fmt.Errorf("config: ROB (%d) smaller than both LQ (%d) and SQ (%d)",
			c.Core.ROBEntries, c.Core.LQEntries, c.Core.SQEntries)
	}
	for _, cc := range []struct {
		name string
		c    Cache
	}{{"L1D", c.Mem.L1D}, {"L2", c.Mem.L2}, {"L3", c.Mem.L3}} {
		if cc.c.LineBytes == 0 || cc.c.Ways == 0 || cc.c.SizeBytes == 0 {
			return fmt.Errorf("config: %s has zero geometry: %+v", cc.name, cc.c)
		}
		if cc.c.SizeBytes%(cc.c.Ways*cc.c.LineBytes) != 0 {
			return fmt.Errorf("config: %s size %d not divisible by ways*line", cc.name, cc.c.SizeBytes)
		}
		if cc.c.Sets()&(cc.c.Sets()-1) != 0 {
			return fmt.Errorf("config: %s sets %d not a power of two", cc.name, cc.c.Sets())
		}
	}
	if c.Mem.L1D.LineBytes != c.Mem.L2.LineBytes || c.Mem.L2.LineBytes != c.Mem.L3.LineBytes {
		return fmt.Errorf("config: mismatched line sizes")
	}
	if c.Mem.L3Banks <= 0 || c.Mem.L3Banks&(c.Mem.L3Banks-1) != 0 {
		return fmt.Errorf("config: L3 banks must be a positive power of two, got %d", c.Mem.L3Banks)
	}
	if c.NoC.SwitchLatency < 0 || c.NoC.ControlFlits <= 0 || c.NoC.DataFlits <= 0 {
		return fmt.Errorf("config: bad NoC parameters: %+v", c.NoC)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("config: jitter must be non-negative, got %d", c.Jitter)
	}
	if c.StepMode != StepSkip && c.StepMode != StepNaive {
		return fmt.Errorf("config: unknown step mode %d", int(c.StepMode))
	}
	return nil
}

// GateStorageBits returns the extra storage the SLFSoS-key mechanism needs
// (Section IV-D): per-LQ-entry SLF bit + key, the retire-gate bit + key
// register, and one sorting bit per SB entry.
func (c Config) GateStorageBits() int {
	keyBits := bitsFor(c.Core.SQEntries) + 1 // position bits + sorting bit
	perLQ := 1 + keyBits                     // SLF bit + key copy
	gate := 1 + keyBits                      // open/closed bit + key register
	return c.Core.LQEntries*perLQ + gate + c.Core.SQEntries
}

func bitsFor(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}
