package config

import "flag"

// Telemetry holds the structured-logging flag values every sesa binary
// accepts. The strings are parsed by internal/telemetry (NewLogger), which
// owns the level/format vocabulary; config only carries them from the
// command line so all seven cmd/ binaries spell the flags identically.
type Telemetry struct {
	// LogLevel is the minimum level emitted: debug, info, warn or error.
	LogLevel string
	// LogFormat is the handler encoding: text (human-readable key=value)
	// or json (one object per line, for log shippers).
	LogFormat string
}

// RegisterTelemetryFlags registers the shared -log-level and -log-format
// flags on fs and returns the destination struct. Call before flag.Parse.
func RegisterTelemetryFlags(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.LogLevel, "log-level", "info", "structured-log level: debug, info, warn or error")
	fs.StringVar(&t.LogFormat, "log-format", "text", "structured-log encoding: text or json")
	return t
}

// TelemetryFlags registers the shared logging flags on the process-global
// flag set (the form the cmd/ binaries use).
func TelemetryFlags() *Telemetry { return RegisterTelemetryFlags(flag.CommandLine) }
