package config

import (
	"fmt"
	"time"
)

// Fleet defaults. The lease TTL is deliberately generous relative to batch
// runtimes on loopback deployments; lower it for chattier failure detection.
const (
	DefaultFleetBatchSize   = 4
	DefaultFleetLeaseTTL    = 15 * time.Second
	DefaultFleetMaxAttempts = 5
)

// Fleet holds the coordinator-side scheduling parameters of the distributed
// sweep fabric: how a sweep's job list is cut into lease units and how
// worker loss is survived. None of these affect simulation results — batch
// boundaries, lease timing and retries only decide *where* a job runs, and
// jobs are deterministic — so Fleet stays out of the content-addressed job
// key.
type Fleet struct {
	// BatchSize is the number of consecutive jobs per lease unit; 0 means
	// DefaultFleetBatchSize. Smaller batches spread a sweep across more
	// workers and lose less work per expired lease; larger ones amortize
	// protocol round trips.
	BatchSize int
	// LeaseTTL is how long a worker may hold a batch without a heartbeat
	// before the coordinator reassigns it; 0 means DefaultFleetLeaseTTL.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one batch may be leased before its
	// jobs are failed outright (a poison batch must not recirculate
	// forever); 0 means DefaultFleetMaxAttempts.
	MaxAttempts int
}

// DefaultFleet returns the default fleet scheduling parameters.
func DefaultFleet() Fleet {
	return Fleet{
		BatchSize:   DefaultFleetBatchSize,
		LeaseTTL:    DefaultFleetLeaseTTL,
		MaxAttempts: DefaultFleetMaxAttempts,
	}
}

// WithDefaults fills zero fields with the defaults.
func (f Fleet) WithDefaults() Fleet {
	if f.BatchSize == 0 {
		f.BatchSize = DefaultFleetBatchSize
	}
	if f.LeaseTTL == 0 {
		f.LeaseTTL = DefaultFleetLeaseTTL
	}
	if f.MaxAttempts == 0 {
		f.MaxAttempts = DefaultFleetMaxAttempts
	}
	return f
}

// Validate rejects nonsensical fleet parameters (after WithDefaults).
func (f Fleet) Validate() error {
	if f.BatchSize < 1 {
		return fmt.Errorf("config: fleet batch size must be at least 1, got %d", f.BatchSize)
	}
	if f.LeaseTTL <= 0 {
		return fmt.Errorf("config: fleet lease TTL must be positive, got %s", f.LeaseTTL)
	}
	if f.MaxAttempts < 1 {
		return fmt.Errorf("config: fleet max attempts must be at least 1, got %d", f.MaxAttempts)
	}
	return nil
}

// HeartbeatEvery is the renewal cadence workers should use: a third of the
// lease TTL, so two consecutive heartbeats can be lost before a lease
// expires.
func (f Fleet) HeartbeatEvery() time.Duration {
	return f.LeaseTTL / 3
}
