package config

import (
	"strings"
	"testing"
)

// TestSkylakeMatchesTableIII pins the default configuration to the paper's
// Table III.
func TestSkylakeMatchesTableIII(t *testing.T) {
	c := Default(X86)
	if c.Cores != 8 {
		t.Errorf("cores = %d, want 8", c.Cores)
	}
	if c.Core.Width != 5 {
		t.Errorf("width = %d, want 5", c.Core.Width)
	}
	if c.Core.ROBEntries != 224 || c.Core.LQEntries != 72 || c.Core.SQEntries != 56 {
		t.Errorf("ROB/LQ/SQ = %d/%d/%d, want 224/72/56",
			c.Core.ROBEntries, c.Core.LQEntries, c.Core.SQEntries)
	}
	if c.Mem.L1D.SizeBytes != 32<<10 || c.Mem.L1D.Ways != 8 || c.Mem.L1D.HitCycles != 4 {
		t.Errorf("L1D = %+v", c.Mem.L1D)
	}
	if c.Mem.L2.SizeBytes != 128<<10 || c.Mem.L2.HitCycles != 12 {
		t.Errorf("L2 = %+v", c.Mem.L2)
	}
	if c.Mem.L3.SizeBytes != 1<<20 || c.Mem.L3Banks != 8 || c.Mem.L3.HitCycles != 35 {
		t.Errorf("L3 = %+v banks=%d", c.Mem.L3, c.Mem.L3Banks)
	}
	if c.Mem.DirectoryWays != 8 || c.Mem.DirectoryCoverage != 2.0 {
		t.Errorf("directory = %d ways %.1f coverage", c.Mem.DirectoryWays, c.Mem.DirectoryCoverage)
	}
	if c.Mem.MemCycles != 160 {
		t.Errorf("memory latency = %d, want 160", c.Mem.MemCycles)
	}
	if c.NoC.SwitchLatency != 6 || c.NoC.ControlFlits != 1 || c.NoC.DataFlits != 5 {
		t.Errorf("NoC = %+v", c.NoC)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Table III config invalid: %v", err)
	}
}

// TestGateStorageBits pins Section IV-D: 640 bits total for the Table III
// machine (8 bits per LQ entry, 8 for the gate, one sorting bit per SB
// entry).
func TestGateStorageBits(t *testing.T) {
	c := Default(SLFSoSKey370)
	if got := c.GateStorageBits(); got != 640 {
		t.Errorf("gate storage = %d bits, want 640", got)
	}
}

func TestModelNamesAndPredicates(t *testing.T) {
	want := map[Model]string{
		X86:          "x86",
		NoSpec370:    "370-NoSpec",
		SLFSpec370:   "370-SLFSpec",
		SLFSoS370:    "370-SLFSoS",
		SLFSoSKey370: "370-SLFSoS-key",
		Louvre370:    "370-Louvre",
		RCP370:       "370-RCP",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), name)
		}
	}
	if X86.StoreAtomic() {
		t.Error("x86 is not store-atomic")
	}
	for _, m := range AllModels() {
		if m != X86 && !m.StoreAtomic() {
			t.Errorf("%s should be store-atomic", m)
		}
	}
	if NoSpec370.Speculative() || X86.Speculative() {
		t.Error("speculation misattributed")
	}
	for _, m := range []Model{SLFSoSKey370, Louvre370, RCP370} {
		if !m.Speculative() {
			t.Errorf("%s is speculative", m)
		}
	}
}

// TestRegistryDrivenRoster pins the roster APIs to the registry itself, not
// to a hard-coded size: adding a machine must grow every roster-derived
// surface in lockstep (the old `len(AllModels()) != 5` assertion silently
// under-covered model-loop tests when the roster grew).
func TestRegistryDrivenRoster(t *testing.T) {
	all, names := AllModels(), ModelNames()
	if len(all) != len(registry) || len(names) != len(registry) {
		t.Fatalf("AllModels/ModelNames = %d/%d entries, registry has %d",
			len(all), len(names), len(registry))
	}
	for i, m := range all {
		if int(m) != i {
			t.Errorf("AllModels()[%d] = %v, want registry order", i, m)
		}
		info, ok := m.Info()
		if !ok {
			t.Fatalf("%v has no registry entry", m)
		}
		if info.Name != names[i] || m.String() != names[i] {
			t.Errorf("%v: name %q / String %q / ModelNames %q disagree", m, info.Name, m, names[i])
		}
		if info.Doc == "" {
			t.Errorf("%v: registry entry has no doc line", m)
		}
		got, err := ParseModel(names[i])
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", names[i], got, err, m)
		}
	}
	paper := PaperModels()
	if len(paper) != 5 {
		t.Fatalf("PaperModels() = %d entries, the paper evaluates 5", len(paper))
	}
	for i, m := range []Model{X86, NoSpec370, SLFSpec370, SLFSoS370, SLFSoSKey370} {
		if paper[i] != m {
			t.Errorf("PaperModels()[%d] = %v, want %v", i, paper[i], m)
		}
	}
}

func TestParseModels(t *testing.T) {
	if ms, err := ParseModels("all"); err != nil || len(ms) != len(AllModels()) {
		t.Errorf(`ParseModels("all") = %v, %v`, ms, err)
	}
	for _, spec := range []string{"none", ""} {
		if ms, err := ParseModels(spec); err != nil || ms != nil {
			t.Errorf("ParseModels(%q) = %v, %v; want nil, nil", spec, ms, err)
		}
	}
	ms, err := ParseModels(" x86 , 370-RCP ")
	if err != nil || len(ms) != 2 || ms[0] != X86 || ms[1] != RCP370 {
		t.Errorf("comma list = %v, %v", ms, err)
	}
	if _, err := ParseModels("x86,bogus"); err == nil || !strings.Contains(err.Error(), "370-Louvre") {
		t.Errorf("unknown name should list valid models, got %v", err)
	}
	if _, err := ParseModels(" , "); err == nil {
		t.Error("blank list should be rejected")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		f    func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"bad model", func(c *Config) { c.Model = Model(99) }},
		{"zero width", func(c *Config) { c.Core.Width = 0 }},
		{"zero rob", func(c *Config) { c.Core.ROBEntries = 0 }},
		{"bad L1 geometry", func(c *Config) { c.Mem.L1D.SizeBytes = 1000 }},
		{"line mismatch", func(c *Config) { c.Mem.L2.LineBytes = 32 }},
		{"bad banks", func(c *Config) { c.Mem.L3Banks = 3 }},
		{"negative jitter", func(c *Config) { c.Jitter = -1 }},
	}
	for _, m := range mutations {
		c := Default(X86)
		m.f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}

	// The unknown-model error is registry-driven and lists the valid
	// names, like ParseModel's.
	c := Default(X86)
	c.Model = Model(99)
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "370-SLFSoS-key") || !strings.Contains(err.Error(), "370-RCP") {
		t.Errorf("unknown-model error should list valid names, got %v", err)
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if c.Sets() != 64 {
		t.Errorf("sets = %d, want 64", c.Sets())
	}
}

func TestNoCLatencies(t *testing.T) {
	n := Default(X86).NoC
	if n.ControlLatency() != 7 {
		t.Errorf("control latency = %d, want 7", n.ControlLatency())
	}
	if n.DataLatency() != 11 {
		t.Errorf("data latency = %d, want 11", n.DataLatency())
	}
}

func TestSmallConfigValid(t *testing.T) {
	for _, m := range AllModels() {
		if err := Small(2, m).Validate(); err != nil {
			t.Errorf("Small(2, %s) invalid: %v", m, err)
		}
	}
}

func TestUnknownModelString(t *testing.T) {
	if !strings.Contains(Model(42).String(), "42") {
		t.Error("unknown model should render its number")
	}
}
