package predictor

// StoreSet is the memory-dependence predictor of Chrysos & Emer (ISCA '98),
// the configuration in Table III. Loads and stores that have collided in the
// past are placed in a common store set; a load predicted dependent waits
// for the stores of its set instead of issuing speculatively.
//
// The implementation uses the two classic tables: the Store Set ID Table
// (SSIT), indexed by instruction PC, and the Last Fetched Store Table
// (LFST), indexed by store-set ID.
type StoreSet struct {
	ssit   []uint32 // PC -> store-set ID + 1 (0 = no set)
	nextID uint32
}

const (
	ssitBits = 12
	// invalidSet marks an unassigned SSIT entry.
	invalidSet = 0
)

// NewStoreSet returns an empty predictor.
func NewStoreSet() *StoreSet {
	return &StoreSet{ssit: make([]uint32, 1<<ssitBits)}
}

func (s *StoreSet) index(pc uint64) uint64 {
	return (pc ^ pc>>ssitBits) & ((1 << ssitBits) - 1)
}

// SetOf returns the store-set ID assigned to pc and whether one exists.
func (s *StoreSet) SetOf(pc uint64) (uint32, bool) {
	v := s.ssit[s.index(pc)]
	return v, v != invalidSet
}

// PredictDependent reports whether the load at loadPC should wait for the
// store at storePC: true when both are in the same store set.
func (s *StoreSet) PredictDependent(loadPC, storePC uint64) bool {
	ls, ok1 := s.SetOf(loadPC)
	ss, ok2 := s.SetOf(storePC)
	return ok1 && ok2 && ls == ss
}

// TrainViolation records a memory-order violation between the load at
// loadPC and the store at storePC: both are merged into a common store set,
// following the paper's assignment rules.
func (s *StoreSet) TrainViolation(loadPC, storePC uint64) {
	li, si := s.index(loadPC), s.index(storePC)
	lv, sv := s.ssit[li], s.ssit[si]
	switch {
	case lv == invalidSet && sv == invalidSet:
		s.nextID++
		if s.nextID == invalidSet {
			s.nextID++
		}
		s.ssit[li] = s.nextID
		s.ssit[si] = s.nextID
	case lv != invalidSet && sv == invalidSet:
		s.ssit[si] = lv
	case lv == invalidSet && sv != invalidSet:
		s.ssit[li] = sv
	default:
		// Both assigned: the one with the smaller ID wins (a
		// deterministic merge rule, as in the original paper).
		if lv < sv {
			s.ssit[si] = lv
		} else {
			s.ssit[li] = sv
		}
	}
}

// Clear invalidates all store sets (periodic clearing bounds the impact of
// aliasing; real implementations do this too).
func (s *StoreSet) Clear() {
	for i := range s.ssit {
		s.ssit[i] = invalidSet
	}
}
