package predictor

import (
	"testing"
	"testing/quick"
)

func accuracy(t *TAGE, pattern func(i int) bool, n int, pc uint64) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		if t.Update(pc, pattern(i)) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

func TestTAGELearnsBias(t *testing.T) {
	p := NewTAGE()
	acc := accuracy(p, func(i int) bool { return true }, 1000, 0x400)
	if acc < 0.95 {
		t.Errorf("always-taken accuracy = %.2f, want > 0.95", acc)
	}
}

func TestTAGELearnsPeriodicPattern(t *testing.T) {
	p := NewTAGE()
	// Taken except every 8th: needs history to beat the bimodal table.
	pattern := func(i int) bool { return i%8 != 0 }
	accuracy(p, pattern, 2000, 0x400) // warm up
	acc := accuracy(p, pattern, 2000, 0x400)
	if acc < 0.9 {
		t.Errorf("periodic pattern accuracy = %.2f, want > 0.9", acc)
	}
}

func TestTAGERandomIsHard(t *testing.T) {
	p := NewTAGE()
	seed := uint64(12345)
	rnd := func(i int) bool {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed>>63 == 1
	}
	acc := accuracy(p, rnd, 4000, 0x400)
	if acc > 0.65 {
		t.Errorf("random pattern accuracy = %.2f, implausibly high", acc)
	}
}

func TestTAGESeparatesBranches(t *testing.T) {
	p := NewTAGE()
	for i := 0; i < 3000; i++ {
		p.Update(0x100, true)
		p.Update(0x200, false)
	}
	if !p.Predict(0x100) {
		t.Error("branch at 0x100 should predict taken")
	}
	if p.Predict(0x200) {
		t.Error("branch at 0x200 should predict not-taken")
	}
}

func TestFoldHistoryBounded(t *testing.T) {
	f := func(hist uint64, bits, out uint8) bool {
		b := uint(bits%64) + 1
		o := uint(out%16) + 1
		return foldHistory(hist, b, o) < (1 << o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreSetMergeRules(t *testing.T) {
	s := NewStoreSet()
	if s.PredictDependent(0x10, 0x20) {
		t.Fatal("untrained predictor must predict independent")
	}
	s.TrainViolation(0x10, 0x20)
	if !s.PredictDependent(0x10, 0x20) {
		t.Fatal("trained pair must predict dependent")
	}
	// A second load colliding with the same store joins the set.
	s.TrainViolation(0x30, 0x20)
	if !s.PredictDependent(0x30, 0x20) {
		t.Error("second load should join the store's set")
	}
	// Merging two assigned sets: the smaller ID wins, deterministically.
	s.TrainViolation(0x40, 0x50) // new set
	s.TrainViolation(0x10, 0x50) // merge
	l1, _ := s.SetOf(0x10)
	s1, _ := s.SetOf(0x50)
	if l1 != s1 {
		t.Error("merge did not unify the sets")
	}
}

func TestStoreSetClear(t *testing.T) {
	s := NewStoreSet()
	s.TrainViolation(0x10, 0x20)
	s.Clear()
	if s.PredictDependent(0x10, 0x20) {
		t.Error("Clear should forget all sets")
	}
}

func TestStoreSetUnrelatedPairsIndependent(t *testing.T) {
	s := NewStoreSet()
	s.TrainViolation(0x10, 0x20)
	s.TrainViolation(0x30, 0x40)
	if s.PredictDependent(0x10, 0x40) {
		t.Error("loads and stores from different sets must stay independent")
	}
}
