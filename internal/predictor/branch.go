// Package predictor implements the two predictors of Table III: an L-TAGE
// style branch predictor (Seznec) and the StoreSet memory-dependence
// predictor (Chrysos & Emer).
package predictor

// TAGE is a tagged-geometric-history branch predictor: a bimodal base table
// plus several partially tagged tables indexed by geometrically increasing
// global-history lengths. It captures the structure of L-TAGE at a scale
// appropriate for the trace-driven core model.
type TAGE struct {
	base  []int8 // bimodal 2-bit counters
	banks []tageBank
	hist  uint64 // global history register
}

type tageBank struct {
	entries  []tageEntry
	histBits uint
}

type tageEntry struct {
	tag    uint16
	ctr    int8 // signed 3-bit counter: >=0 predicts taken
	useful uint8
}

// TAGE geometry: history lengths roughly geometric (L-TAGE uses 5..640).
var tageHistLens = []uint{4, 8, 16, 32, 64}

const (
	tageBaseBits = 12
	tageBankBits = 10
	tageTagBits  = 9
)

// NewTAGE returns a predictor with default geometry.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]int8, 1<<tageBaseBits)}
	for _, hl := range tageHistLens {
		t.banks = append(t.banks, tageBank{
			entries:  make([]tageEntry, 1<<tageBankBits),
			histBits: hl,
		})
	}
	return t
}

func foldHistory(hist uint64, bits, out uint) uint64 {
	if bits > 64 {
		bits = 64
	}
	h := hist & ((1 << bits) - 1)
	var f uint64
	for h != 0 {
		f ^= h & ((1 << out) - 1)
		h >>= out
	}
	return f
}

func (t *TAGE) bankIndex(b int, pc uint64) (idx uint64, tag uint16) {
	bank := &t.banks[b]
	fh := foldHistory(t.hist, bank.histBits, tageBankBits)
	idx = (pc ^ (pc >> tageBankBits) ^ fh) & ((1 << tageBankBits) - 1)
	ft := foldHistory(t.hist, bank.histBits, tageTagBits)
	tag = uint16((pc ^ (pc >> 3) ^ ft<<1) & ((1 << tageTagBits) - 1))
	return
}

// Predict returns the predicted direction for the branch at pc.
func (t *TAGE) Predict(pc uint64) bool {
	for b := len(t.banks) - 1; b >= 0; b-- {
		idx, tag := t.bankIndex(b, pc)
		e := &t.banks[b].entries[idx]
		if e.tag == tag && e.useful > 0 {
			return e.ctr >= 0
		}
	}
	return t.base[pc&((1<<tageBaseBits)-1)] >= 0
}

// Update trains the predictor with the actual outcome and returns whether
// the prediction was correct.
func (t *TAGE) Update(pc uint64, taken bool) bool {
	pred := t.Predict(pc)
	correct := pred == taken

	// Train the providing component.
	provider := -1
	for b := len(t.banks) - 1; b >= 0; b-- {
		idx, tag := t.bankIndex(b, pc)
		e := &t.banks[b].entries[idx]
		if e.tag == tag && e.useful > 0 {
			provider = b
			bump(&e.ctr, taken, 3)
			if correct && e.useful < 3 {
				e.useful++
			}
			break
		}
	}
	if provider < 0 {
		i := pc & ((1 << tageBaseBits) - 1)
		bump(&t.base[i], taken, 2)
	}

	// On a misprediction, allocate in a longer-history bank.
	if !correct {
		for b := provider + 1; b < len(t.banks); b++ {
			idx, tag := t.bankIndex(b, pc)
			e := &t.banks[b].entries[idx]
			if e.useful == 0 {
				*e = tageEntry{tag: tag, useful: 1}
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				break
			}
			e.useful--
		}
	}

	t.hist = t.hist<<1 | b2u(taken)
	return correct
}

func bump(c *int8, up bool, bits uint) {
	max := int8(1<<(bits-1)) - 1
	min := -int8(1 << (bits - 1))
	if up {
		if *c < max {
			*c++
		}
	} else if *c > min {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
