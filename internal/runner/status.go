package runner

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sesa/internal/hist"
)

// Progress tracks a live sweep for the -status-addr HTTP endpoint. The pool
// updates it at job boundaries only — machines are single-threaded and their
// internal state must not be read mid-run — so a snapshot is always a
// consistent set of completed-job aggregates plus the names of running jobs.
// All methods are nil-safe no-ops on a nil receiver and safe for concurrent
// use.
type Progress struct {
	mu       sync.Mutex
	start    time.Time
	end      time.Time // set when the last job completes; freezes elapsed
	total    int
	done     int
	failed   int
	timedOut int
	canceled int
	running  map[int]string
	insts    uint64
	cycles   uint64
	failures []JobFailure
	rates    []JobThroughput
	merged   *hist.Collector
	hists    bool
}

// JobThroughput is one completed job's host-side simulation throughput.
type JobThroughput struct {
	Index           int     `json:"index"`
	Name            string  `json:"name"`
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	InstsPerSecond  float64 `json:"insts_per_second"`
}

// JobFailure describes one failed job in the status report.
type JobFailure struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Error    string `json:"error"`
	TimedOut bool   `json:"timed_out"`
	Canceled bool   `json:"canceled"`
}

// RunningJob names one in-flight job.
type RunningJob struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

// Snapshot is one consistent view of the sweep, as served at /status.
type Snapshot struct {
	TotalJobs int          `json:"total_jobs"`
	Done      int          `json:"done"`
	Failed    int          `json:"failed"`
	TimedOut  int          `json:"timed_out"`
	Canceled  int          `json:"canceled"`
	Running   []RunningJob `json:"running"`
	// Insts and Cycles total the retired instructions and simulated cycles
	// of completed jobs.
	Insts          uint64  `json:"instructions_retired"`
	Cycles         uint64  `json:"sim_cycles"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds extrapolates the remaining time from the mean completed-job
	// duration; 0 until the first job completes or once the sweep is done.
	ETASeconds float64      `json:"eta_seconds"`
	Failures   []JobFailure `json:"failures"`
	// CyclesPerSecond and InstsPerSecond are the sweep-aggregate host-side
	// throughput so far: completed jobs' simulated work over the elapsed
	// wall-clock time.
	CyclesPerSecond float64 `json:"cycles_per_second"`
	InstsPerSecond  float64 `json:"insts_per_second"`
	// Jobs lists each completed job's individual throughput, in job order.
	Jobs []JobThroughput `json:"job_throughput,omitempty"`
}

// NewProgress returns an empty progress tracker to hand to Pool.Progress
// and ServeStatus.
func NewProgress() *Progress {
	return &Progress{running: make(map[int]string), merged: hist.NewCollector()}
}

// begin resets the tracker for a sweep of n jobs. Sequential sweeps may reuse
// one tracker; counters accumulate only within a sweep.
func (p *Progress) begin(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.start = time.Now()
	p.end = time.Time{}
	p.total = n
	p.done, p.failed, p.timedOut, p.canceled = 0, 0, 0, 0
	p.insts, p.cycles = 0, 0
	p.running = make(map[int]string)
	p.failures = nil
	p.rates = nil
	p.merged = hist.NewCollector()
	p.hists = false
}

// jobStarted records that job i is now running.
func (p *Progress) jobStarted(i int, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running[i] = name
}

// jobDone folds a completed job into the aggregates.
func (p *Progress) jobDone(r *Result) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, r.Index)
	p.done++
	if p.done >= p.total {
		// Freeze elapsed time: a daemon keeps the tracker around long after
		// the sweep finished, and its elapsed must not keep growing.
		p.end = time.Now()
	}
	if r.Err != nil {
		p.failed++
		to, ca := r.TimedOut(), r.Canceled()
		if to {
			p.timedOut++
		}
		if ca {
			p.canceled++
		}
		p.failures = append(p.failures, JobFailure{
			Index: r.Index, Name: r.Job.Name(), Error: r.Err.Error(), TimedOut: to, Canceled: ca,
		})
	}
	if r.Stats != nil {
		p.cycles += r.Stats.Cycles
		p.insts += r.Stats.Total().RetiredInsts
	}
	p.rates = append(p.rates, JobThroughput{
		Index:           r.Index,
		Name:            r.Job.Name(),
		WallSeconds:     r.Wall.Seconds(),
		CyclesPerSecond: r.CyclesPerSecond(),
		InstsPerSecond:  r.InstsPerSecond(),
	})
	if r.Hists != nil {
		p.merged.Merge(r.Hists.Merged())
		p.hists = true
	}
}

// Snapshot returns a consistent view of the sweep.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		TotalJobs: p.total,
		Done:      p.done,
		Failed:    p.failed,
		TimedOut:  p.timedOut,
		Canceled:  p.canceled,
		Insts:     p.insts,
		Cycles:    p.cycles,
		Failures:  append([]JobFailure(nil), p.failures...),
	}
	for i, name := range p.running {
		s.Running = append(s.Running, RunningJob{Index: i, Name: name})
	}
	sort.Slice(s.Running, func(a, b int) bool { return s.Running[a].Index < s.Running[b].Index })
	if !p.start.IsZero() {
		if !p.end.IsZero() {
			s.ElapsedSeconds = p.end.Sub(p.start).Seconds()
		} else {
			s.ElapsedSeconds = time.Since(p.start).Seconds()
		}
	}
	if p.done > 0 && p.done < p.total {
		s.ETASeconds = s.ElapsedSeconds / float64(p.done) * float64(p.total-p.done)
	}
	if s.ElapsedSeconds > 0 {
		s.CyclesPerSecond = float64(p.cycles) / s.ElapsedSeconds
		s.InstsPerSecond = float64(p.insts) / s.ElapsedSeconds
	}
	s.Jobs = append([]JobThroughput(nil), p.rates...)
	sort.Slice(s.Jobs, func(a, b int) bool { return s.Jobs[a].Index < s.Jobs[b].Index })
	return s
}

// Histograms returns the merged latency histograms of every completed job
// that recorded any (nil when no job carried histograms yet).
func (p *Progress) Histograms() *hist.Collector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hists {
		return nil
	}
	c := hist.NewCollector()
	c.Merge(p.merged)
	return c
}

// statusSource is what the expvar callbacks read; expvar publication is
// process-global and once-only, so the callbacks indirect through this
// getter to always report the most recently constructed handler's sweep.
var statusSource atomic.Value // of func() *Progress

// currentProgress resolves the most recently installed getter (nil-safe).
func currentProgress() *Progress {
	if get, ok := statusSource.Load().(func() *Progress); ok && get != nil {
		return get()
	}
	return nil
}

var publishExpvars = sync.OnceFunc(func() {
	expvar.Publish("sesa.sweep", expvar.Func(func() any {
		return currentProgress().Snapshot()
	}))
	expvar.Publish("sesa.histograms", expvar.Func(func() any {
		return currentProgress().Histograms().Summaries()
	}))
})

// StatusHandler returns the live-introspection handler without binding a
// listener, so daemons (sesa-serve) can mount the same endpoints on their own
// mux. get is called once per request and returns the Progress to report —
// for a CLI sweep that is a fixed tracker, for a daemon whichever sweep is
// currently running; nil is allowed and serves empty snapshots. Endpoints:
//
//	/status         sweep progress snapshot (JSON)
//	/histograms     merged latency histograms of completed jobs (JSON)
//	/debug/vars     expvar counters, including sesa.sweep
//	/debug/pprof/   runtime profiling
//
// The expvar counters are process-global; they follow the most recently
// constructed handler's getter.
func StatusHandler(get func() *Progress) http.Handler {
	if get == nil {
		get = func() *Progress { return nil }
	}
	statusSource.Store(get)
	publishExpvars()

	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, get().Snapshot())
	})
	mux.HandleFunc("/histograms", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, get().Histograms().Summaries())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeStatus starts the live-introspection HTTP server on addr and returns
// the bound address (useful with ":0"). It serves StatusHandler's endpoints
// for the fixed tracker p. The server lives until the process exits; CLI
// sweeps are short-lived relative to the process, so there is no shutdown
// plumbing (daemons use StatusHandler on their own server instead).
func ServeStatus(addr string, p *Progress) (string, error) {
	if p == nil {
		return "", fmt.Errorf("runner: ServeStatus needs a non-nil Progress")
	}
	h := StatusHandler(func() *Progress { return p })
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("runner: status server: %w", err)
	}
	go func() { _ = http.Serve(ln, h) }()
	return ln.Addr().String(), nil
}
