package runner

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sesa/internal/hist"
)

// Progress tracks a live sweep for the -status-addr HTTP endpoint. The pool
// updates it at job boundaries only — machines are single-threaded and their
// internal state must not be read mid-run — so a snapshot is always a
// consistent set of completed-job aggregates plus the names of running jobs.
// All methods are nil-safe no-ops on a nil receiver and safe for concurrent
// use.
type Progress struct {
	mu       sync.Mutex
	start    time.Time
	end      time.Time // set when the last job completes; freezes elapsed
	total    int
	done     int
	failed   int
	timedOut int
	canceled int
	running  map[int]string
	insts    uint64
	cycles   uint64
	failures []JobFailure
	rates    []JobThroughput
	merged   *hist.Collector
	hists    bool
	fleet    func() []WorkerStatus
}

// WorkerStatus is one fleet worker's row in the /status report: how much
// work the coordinator has entrusted to it and what came back. The runner
// defines the type (the fleet coordinator fills it via AttachFleet) so the
// status surface stays in one package.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Cores is the worker's advertised parallel job capacity.
	Cores int `json:"cores"`
	// Leased counts batches currently held under lease; Completed, Failed
	// and Retried are cumulative: batches the worker finished, leases it
	// lost to expiry, and re-leased batches (a prior holder lost them) it
	// picked up.
	Leased    int `json:"leased"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Retried   int `json:"retried"`
	// LastHeartbeatSeconds is the age of the worker's most recent
	// register/lease/heartbeat/complete call.
	LastHeartbeatSeconds float64 `json:"last_heartbeat_seconds"`
	// Draining marks a worker that announced it is deregistering.
	Draining bool `json:"draining,omitempty"`
}

// JobThroughput is one completed job's host-side simulation throughput.
type JobThroughput struct {
	Index           int     `json:"index"`
	Name            string  `json:"name"`
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	InstsPerSecond  float64 `json:"insts_per_second"`
}

// JobFailure describes one failed job in the status report.
type JobFailure struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Error    string `json:"error"`
	TimedOut bool   `json:"timed_out"`
	Canceled bool   `json:"canceled"`
}

// RunningJob names one in-flight job.
type RunningJob struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

// Snapshot is one consistent view of the sweep, as served at /status.
type Snapshot struct {
	TotalJobs int          `json:"total_jobs"`
	Done      int          `json:"done"`
	Failed    int          `json:"failed"`
	TimedOut  int          `json:"timed_out"`
	Canceled  int          `json:"canceled"`
	Running   []RunningJob `json:"running"`
	// Insts and Cycles total the retired instructions and simulated cycles
	// of completed jobs.
	Insts          uint64  `json:"instructions_retired"`
	Cycles         uint64  `json:"sim_cycles"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds extrapolates the remaining time from the mean completed-job
	// duration; 0 until the first job completes or once the sweep is done.
	ETASeconds float64      `json:"eta_seconds"`
	Failures   []JobFailure `json:"failures"`
	// CyclesPerSecond and InstsPerSecond are the sweep-aggregate host-side
	// throughput so far: completed jobs' simulated work over the elapsed
	// wall-clock time.
	CyclesPerSecond float64 `json:"cycles_per_second"`
	InstsPerSecond  float64 `json:"insts_per_second"`
	// Jobs lists each completed job's individual throughput, in job order.
	Jobs []JobThroughput `json:"job_throughput,omitempty"`
	// FleetWorkers lists the coordinator's per-worker rows when the sweep
	// runs on a fleet (absent for local sweeps).
	FleetWorkers []WorkerStatus `json:"fleet_workers,omitempty"`
}

// NewProgress returns an empty progress tracker to hand to Pool.Progress
// and ServeStatus.
func NewProgress() *Progress {
	return &Progress{running: make(map[int]string), merged: hist.NewCollector()}
}

// AttachFleet installs a per-worker status source (the fleet coordinator's
// worker table); Snapshot includes its rows as FleetWorkers. Attach before
// the sweep starts — the callback is invoked outside the progress lock.
func (p *Progress) AttachFleet(fn func() []WorkerStatus) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fleet = fn
}

// Begin resets the tracker for a sweep of n jobs. Sequential sweeps may reuse
// one tracker; counters accumulate only within a sweep. The pool calls it at
// the top of RunContext; a fleet coordinator, which distributes jobs instead
// of running them through a pool, calls it (and JobStarted/JobDone) itself.
func (p *Progress) Begin(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.start = time.Now()
	p.end = time.Time{}
	p.total = n
	p.done, p.failed, p.timedOut, p.canceled = 0, 0, 0, 0
	p.insts, p.cycles = 0, 0
	p.running = make(map[int]string)
	p.failures = nil
	p.rates = nil
	p.merged = hist.NewCollector()
	p.hists = false
}

// JobStarted records that job i is now running (for a fleet sweep: leased
// to a worker).
func (p *Progress) JobStarted(i int, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running[i] = name
}

// JobDone folds a completed job into the aggregates.
func (p *Progress) JobDone(r *Result) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, r.Index)
	p.done++
	if p.done >= p.total {
		// Freeze elapsed time: a daemon keeps the tracker around long after
		// the sweep finished, and its elapsed must not keep growing.
		p.end = time.Now()
	}
	if r.Err != nil {
		p.failed++
		to, ca := r.TimedOut(), r.Canceled()
		if to {
			p.timedOut++
		}
		if ca {
			p.canceled++
		}
		p.failures = append(p.failures, JobFailure{
			Index: r.Index, Name: r.Job.Name(), Error: r.Err.Error(), TimedOut: to, Canceled: ca,
		})
	}
	if r.Stats != nil {
		p.cycles += r.Stats.Cycles
		p.insts += r.Stats.Total().RetiredInsts
	}
	p.rates = append(p.rates, JobThroughput{
		Index:           r.Index,
		Name:            r.Job.Name(),
		WallSeconds:     r.Wall.Seconds(),
		CyclesPerSecond: r.CyclesPerSecond(),
		InstsPerSecond:  r.InstsPerSecond(),
	})
	if r.Hists != nil {
		p.merged.Merge(r.Hists.Merged())
		p.hists = true
	}
}

// Snapshot returns a consistent view of the sweep.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		TotalJobs: p.total,
		Done:      p.done,
		Failed:    p.failed,
		TimedOut:  p.timedOut,
		Canceled:  p.canceled,
		Insts:     p.insts,
		Cycles:    p.cycles,
		Failures:  append([]JobFailure(nil), p.failures...),
	}
	for i, name := range p.running {
		s.Running = append(s.Running, RunningJob{Index: i, Name: name})
	}
	sort.Slice(s.Running, func(a, b int) bool { return s.Running[a].Index < s.Running[b].Index })
	if !p.start.IsZero() {
		if !p.end.IsZero() {
			s.ElapsedSeconds = p.end.Sub(p.start).Seconds()
		} else {
			s.ElapsedSeconds = time.Since(p.start).Seconds()
		}
	}
	if p.done > 0 && p.done < p.total {
		s.ETASeconds = s.ElapsedSeconds / float64(p.done) * float64(p.total-p.done)
	}
	if s.ElapsedSeconds > 0 {
		s.CyclesPerSecond = float64(p.cycles) / s.ElapsedSeconds
		s.InstsPerSecond = float64(p.insts) / s.ElapsedSeconds
	}
	s.Jobs = append([]JobThroughput(nil), p.rates...)
	sort.Slice(s.Jobs, func(a, b int) bool { return s.Jobs[a].Index < s.Jobs[b].Index })
	fleet := p.fleet
	if fleet != nil {
		// The worker table has its own lock; release ours first.
		p.mu.Unlock()
		rows := fleet()
		p.mu.Lock()
		s.FleetWorkers = rows
	}
	return s
}

// Histograms returns the merged latency histograms of every completed job
// that recorded any (nil when no job carried histograms yet).
func (p *Progress) Histograms() *hist.Collector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hists {
		return nil
	}
	c := hist.NewCollector()
	c.Merge(p.merged)
	return c
}

// statusSource is what the expvar callbacks read; expvar publication is
// process-global and once-only, so the callbacks indirect through this
// getter to always report the most recently constructed handler's sweep.
var statusSource atomic.Value // of func() *Progress

// currentProgress resolves the most recently installed getter (nil-safe).
func currentProgress() *Progress {
	if get, ok := statusSource.Load().(func() *Progress); ok && get != nil {
		return get()
	}
	return nil
}

// publishExpvars installs the sesa.sweep and sesa.histograms expvars.
//
// Known limitation: expvar publication is process-global and permanent, so
// these two vars can only ever describe ONE sweep — whichever handler was
// installed most recently (a daemon running sweeps back to back silently
// repoints them). They are kept for /debug/vars compatibility; anything
// that needs to observe several sweeps side by side should scrape the
// /metrics endpoint instead, whose per-sweep families are namespaced by a
// sweep="sw-NNNNNN" label (see internal/telemetry and serve.registerMetrics).
var publishExpvars = sync.OnceFunc(func() {
	expvar.Publish("sesa.sweep", expvar.Func(func() any {
		return currentProgress().Snapshot()
	}))
	expvar.Publish("sesa.histograms", expvar.Func(func() any {
		return currentProgress().Histograms().Summaries()
	}))
})

// StatusHandler returns the live-introspection handler without binding a
// listener, so daemons (sesa-serve) can mount the same endpoints on their own
// mux. get is called once per request and returns the Progress to report —
// for a CLI sweep that is a fixed tracker, for a daemon whichever sweep is
// currently running; nil is allowed and serves empty snapshots. Endpoints:
//
//	/status         sweep progress snapshot (JSON)
//	/histograms     merged latency histograms of completed jobs (JSON)
//	/debug/vars     expvar counters, including sesa.sweep
//	/debug/pprof/   runtime profiling
//
// The expvar counters are process-global; they follow the most recently
// constructed handler's getter.
func StatusHandler(get func() *Progress) http.Handler {
	if get == nil {
		get = func() *Progress { return nil }
	}
	statusSource.Store(get)
	publishExpvars()

	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, get().Snapshot())
	})
	mux.HandleFunc("/histograms", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, get().Histograms().Summaries())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeStatus starts the live-introspection HTTP server on addr and returns
// the bound address (useful with ":0"). It serves StatusHandler's endpoints
// for the fixed tracker p. The server lives until the process exits; CLI
// sweeps are short-lived relative to the process, so there is no shutdown
// plumbing (daemons use StatusHandler on their own server instead).
func ServeStatus(addr string, p *Progress) (string, error) {
	if p == nil {
		return "", fmt.Errorf("runner: ServeStatus needs a non-nil Progress")
	}
	h := StatusHandler(func() *Progress { return p })
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("runner: status server: %w", err)
	}
	go func() { _ = http.Serve(ln, h) }()
	return ln.Addr().String(), nil
}
