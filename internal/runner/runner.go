// Package runner fans independent simulation jobs across a worker pool.
//
// Every sesa.Machine is fully self-contained — per-machine event queue,
// seeded jitter, per-core predictors and statistics — and the workload traces
// it replays are immutable, so a sweep of (model × workload × seed) jobs is
// embarrassingly parallel. The runner exploits that: jobs are distributed
// over a pool of goroutines and results are collected positionally, so the
// result slice is in job order and bit-identical no matter how many workers
// ran the sweep (Workers=1 reproduces the historical serial path exactly).
//
// A failed job (most commonly a machine exceeding its cycle bound) does not
// abort the sweep: it becomes a Result with Err set, and its partial
// statistics — including the cycle count at which it was cut off — remain
// available for failure-row reporting.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/obs"
	"sesa/internal/report"
	"sesa/internal/sim"
	"sesa/internal/stats"
	"sesa/internal/trace"
)

// Job is one experiment: a workload profile run to completion on one machine
// model.
type Job struct {
	// Profile is the workload to generate (or fetch from the trace cache).
	Profile trace.Profile
	// Model selects the consistency-model implementation.
	Model config.Model
	// InstPerCore scales the generated trace.
	InstPerCore int
	// Seed seeds the trace generator.
	Seed uint64
	// Config optionally overrides the machine configuration (its Model
	// field is overwritten with Job.Model). Nil uses config.Default(Model).
	Config *config.Config
	// StepMode selects the machine's clock stepper; like Model it is
	// applied over Config. The zero value is the default two-level skip
	// clock, whose output is byte-identical to naive stepping.
	StepMode config.StepMode
	// MaxCycles bounds the run; 0 applies the default bound of
	// 200*InstPerCore + 2M cycles, the liveness bound the benchmark
	// harnesses have always used.
	MaxCycles uint64
	// Trace, when non-nil, attaches an observability tracer to the job's
	// machine. Each job gets a private tracer (machines are single-threaded,
	// a parallel sweep must not share one), returned in Result.Trace.
	Trace *obs.Options
	// Hists, when true, attaches a latency-histogram set to the job's
	// machine. Like Trace, each job gets a private set, returned in
	// Result.Hists, so histograms are identical no matter how many workers
	// ran the sweep.
	Hists bool
}

// Name identifies the job in progress reports: workload profile plus model.
func (j Job) Name() string {
	return fmt.Sprintf("%s/%s/seed%d", j.Profile.Name, j.Model, j.Seed)
}

// DefaultMaxCycles is the cycle bound applied when Job.MaxCycles is zero.
func (j Job) DefaultMaxCycles() uint64 {
	if j.MaxCycles != 0 {
		return j.MaxCycles
	}
	return uint64(j.InstPerCore)*200 + 2_000_000
}

// Result is the outcome of one job, in the same position as its job.
type Result struct {
	Job   Job
	Index int
	// Stats is the machine statistics; non-nil even when Err is set (a
	// timed-out machine reports the cycles it consumed before the cut).
	Stats *stats.Machine
	// Char is the Table IV characterization derived from Stats.
	Char stats.Characterization
	// Err records a per-job failure; the sweep continues past it.
	Err error
	// Wall is the job's wall-clock duration (excluded from any
	// deterministic output — it varies run to run).
	Wall time.Duration
	// Trace holds the job's recorded events and metrics when Job.Trace was
	// set. Export happens after the sweep, in job order, so trace files are
	// byte-identical no matter how many workers ran.
	Trace *obs.Tracer
	// Hists holds the job's latency histograms when Job.Hists was set.
	Hists *hist.Set
}

// TimedOut reports whether the job failed by exceeding its cycle bound.
func (r *Result) TimedOut() bool {
	var te *sim.TimeoutError
	return errors.As(r.Err, &te)
}

// Canceled reports whether the job was cut short (or never started) because
// the sweep's context was canceled. A canceled result is non-deterministic —
// the cut lands wherever the host scheduler put it — so result caches must
// never store one.
func (r *Result) Canceled() bool {
	return errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded)
}

// CyclesPerSecond is the job's host-side simulation throughput: simulated
// cycles delivered per wall-clock second. Like Wall it is non-deterministic
// and must stay out of byte-identical table output.
func (r *Result) CyclesPerSecond() float64 {
	if r.Stats == nil || r.Wall <= 0 {
		return 0
	}
	return float64(r.Stats.Cycles) / r.Wall.Seconds()
}

// InstsPerSecond is the job's retired-instruction throughput per wall-clock
// second.
func (r *Result) InstsPerSecond() float64 {
	if r.Stats == nil || r.Wall <= 0 {
		return 0
	}
	return float64(r.Stats.Total().RetiredInsts) / r.Wall.Seconds()
}

// Pool runs sweeps.
type Pool struct {
	// Workers is the pool size; 0 or negative means runtime.GOMAXPROCS(0).
	// 1 runs every job inline on the calling goroutine, reproducing the
	// serial path.
	Workers int
	// Cache deduplicates trace generation across jobs. Nil means each job
	// generates its own trace (the historical behaviour).
	Cache *trace.Cache
	// Progress, when non-nil, receives live sweep updates at job boundaries
	// (for the -status-addr endpoint). It never affects results.
	Progress *Progress
	// OnJobSpan, when non-nil, receives each job's execution window right
	// after the job finishes — the telemetry hook behind sweep timelines.
	// Like Progress it fires at job boundaries only (never inside a
	// machine), never affects results, and costs one nil check when unset.
	OnJobSpan func(i int, name string, start, end time.Time)
}

// workers resolves the effective pool size.
func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs and returns results in job order plus the sweep
// summary. Results are deterministic: result[i] depends only on jobs[i], so
// any worker count produces identical statistics.
func (p Pool) Run(jobs []Job) ([]Result, report.SweepSummary) {
	return p.RunContext(context.Background(), jobs)
}

// RunContext is Run with cooperative cancellation. When ctx is canceled
// mid-sweep, every running machine stops at its next cancellation poll
// (sim.Machine.RunContext) and every job not yet started fails immediately,
// so the pool's workers are freed within a poll interval rather than
// finishing the sweep. Canceled jobs come back as Results whose Err wraps
// the context's cause (Result.Canceled reports them), with partial
// statistics for machines that were mid-run. An uncanceled context
// reproduces Run exactly.
func (p Pool) RunContext(ctx context.Context, jobs []Job) ([]Result, report.SweepSummary) {
	start := time.Now()
	results := make([]Result, len(jobs))
	n := p.workers()
	p.Progress.Begin(len(jobs))
	if n <= 1 || len(jobs) <= 1 {
		for i := range jobs {
			results[i] = p.runJob(ctx, i, jobs[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = p.runJob(ctx, i, jobs[i])
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return results, p.summarize(results, n, time.Since(start))
}

// runJob wraps runOne with progress notifications (nil-safe no-ops when the
// pool has no Progress attached). A job picked up after the sweep's context
// was canceled fails without building a machine, so a canceled sweep drains
// its remaining queue in microseconds.
func (p Pool) runJob(ctx context.Context, i int, j Job) Result {
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != err {
			err = fmt.Errorf("%w (%w)", err, cause)
		}
		r := Result{Job: j, Index: i,
			Err: fmt.Errorf("runner: sweep canceled before job ran: %w", err)}
		p.Progress.JobDone(&r)
		return r
	}
	p.Progress.JobStarted(i, j.Name())
	start := time.Now()
	r := p.runOne(ctx, i, j)
	if p.OnJobSpan != nil {
		p.OnJobSpan(i, j.Name(), start, time.Now())
	}
	p.Progress.JobDone(&r)
	return r
}

// runOne executes a single job on the calling goroutine.
func (p Pool) runOne(ctx context.Context, i int, j Job) Result {
	res := Result{Job: j, Index: i}
	jobStart := time.Now()
	defer func() { res.Wall = time.Since(jobStart) }()

	var cfg config.Config
	if j.Config != nil {
		cfg = *j.Config
	} else {
		cfg = config.Default(j.Model)
	}
	cfg.Model = j.Model
	cfg.StepMode = j.StepMode

	var w trace.Workload
	if p.Cache != nil {
		w = p.Cache.Workload(j.Profile, cfg.Cores, j.InstPerCore, j.Seed)
	} else {
		w = trace.Build(j.Profile, cfg.Cores, j.InstPerCore, j.Seed)
	}

	m, err := sim.New(cfg, w.Name)
	if err != nil {
		res.Err = err
		return res
	}
	res.Stats = m.Stats
	if len(w.Programs) > cfg.Cores {
		res.Err = fmt.Errorf("runner: workload %s has %d programs but machine has %d cores",
			w.Name, len(w.Programs), cfg.Cores)
		return res
	}
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			res.Err = err
			return res
		}
	}
	if j.Trace != nil {
		res.Trace = obs.New(cfg.Cores, *j.Trace)
		m.AttachTracer(res.Trace)
	}
	if j.Hists {
		res.Hists = hist.NewSet(cfg.Cores)
		m.AttachHists(res.Hists)
	}
	if err := m.RunContext(ctx, j.DefaultMaxCycles()); err != nil {
		res.Err = err
	}
	res.Char = m.Stats.Characterize()
	return res
}

// summarize aggregates the sweep-level quantities.
func (p Pool) summarize(results []Result, workers int, wall time.Duration) report.SweepSummary {
	s := report.SweepSummary{Jobs: len(results), Workers: workers, WallSeconds: wall.Seconds()}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			s.Failed++
			if r.TimedOut() {
				s.TimedOut++
			}
			if r.Canceled() {
				s.Canceled++
			}
		}
		if r.Stats != nil {
			s.SimCycles += r.Stats.Cycles
			s.SimInsts += r.Stats.Total().RetiredInsts
		}
	}
	if p.Cache != nil {
		s.TraceCacheHits, s.TraceCacheMisses = p.Cache.Stats()
	}
	s.CyclesPerSec = s.CyclesPerSecond()
	s.InstsPerSec = s.InstsPerSecond()
	return s
}
