package runner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sesa/internal/config"
	"sesa/internal/sim"
	"sesa/internal/trace"
)

// cancelJobs builds a sweep of identical long-running jobs.
func cancelJobs(t *testing.T, n, instPerCore int) []Job {
	t.Helper()
	p, ok := trace.Lookup("radix")
	if !ok {
		t.Fatal("radix profile missing")
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Profile: p, Model: config.X86, InstPerCore: instPerCore, Seed: uint64(i + 1)}
	}
	return jobs
}

func TestRunContextCancelFreesWorkers(t *testing.T) {
	// More jobs than workers, each long enough that the cancel lands while
	// the first wave runs: the running machines must stop at their next
	// cancellation poll and the queued jobs must fail without simulating.
	jobs := cancelJobs(t, 6, 200_000)
	pool := Pool{Workers: 2, Cache: trace.NewCache(), Progress: NewProgress()}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(150*time.Millisecond, cancel)
	defer timer.Stop()

	start := time.Now()
	results, sum := pool.RunContext(ctx, jobs)
	wall := time.Since(start)
	// A full 6-job sweep at n=200k takes tens of seconds; a canceled one must
	// return as soon as the running machines hit a poll.
	if wall > 10*time.Second {
		t.Errorf("canceled sweep took %s; workers were not freed", wall)
	}

	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	var ran, skipped int
	for i := range results {
		r := &results[i]
		if r.Err == nil {
			t.Errorf("job %d finished despite cancellation", i)
			continue
		}
		if !r.Canceled() {
			t.Errorf("job %d: Canceled() = false, err = %v", i, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: errors.Is(context.Canceled) = false, err = %v", i, r.Err)
		}
		var ce *sim.CanceledError
		switch {
		case errors.As(r.Err, &ce):
			ran++
			if r.Stats == nil {
				t.Errorf("job %d: canceled mid-run but no partial stats", i)
			}
		case strings.Contains(r.Err.Error(), "before job ran"):
			skipped++
			if r.Stats != nil {
				t.Errorf("job %d: never ran but has stats", i)
			}
		default:
			t.Errorf("job %d: unexpected error %v", i, r.Err)
		}
	}
	if ran == 0 {
		t.Error("no job was canceled mid-run; the timer fired too late or too early")
	}
	if skipped == 0 {
		t.Error("no queued job was skipped; sweep too small or cancel too late")
	}
	if sum.Failed != len(jobs) || sum.Canceled != len(jobs) {
		t.Errorf("summary Failed=%d Canceled=%d, want both %d", sum.Failed, sum.Canceled, len(jobs))
	}

	snap := pool.Progress.Snapshot()
	if snap.Canceled != len(jobs) {
		t.Errorf("progress snapshot Canceled = %d, want %d", snap.Canceled, len(jobs))
	}
	if snap.Done != len(jobs) {
		t.Errorf("progress snapshot Done = %d, want %d", snap.Done, len(jobs))
	}
}

func TestRunContextPreCanceledSkipsAll(t *testing.T) {
	jobs := cancelJobs(t, 3, 50_000)
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("never even started")
	cancel(cause)
	pool := Pool{Workers: 2, Cache: trace.NewCache()}
	start := time.Now()
	results, sum := pool.RunContext(ctx, jobs)
	if wall := time.Since(start); wall > 2*time.Second {
		t.Errorf("pre-canceled sweep took %s", wall)
	}
	for i := range results {
		if !results[i].Canceled() {
			t.Errorf("job %d: Canceled() = false, err = %v", i, results[i].Err)
		}
		if !errors.Is(results[i].Err, cause) {
			t.Errorf("job %d: cause not wrapped, err = %v", i, results[i].Err)
		}
	}
	if hits, misses := pool.Cache.Stats(); hits != 0 || misses != 0 {
		t.Errorf("pre-canceled sweep generated traces (hits %d, misses %d)", hits, misses)
	}
	if sum.Canceled != len(jobs) {
		t.Errorf("summary Canceled = %d, want %d", sum.Canceled, len(jobs))
	}
}

// TestRunContextBackgroundIdenticalToRun locks in that context plumbing does
// not perturb sweep results.
func TestRunContextBackgroundIdenticalToRun(t *testing.T) {
	jobs := cancelJobs(t, 3, 2000)
	a, asum := Pool{Workers: 2, Cache: trace.NewCache()}.Run(jobs)
	b, bsum := Pool{Workers: 2, Cache: trace.NewCache()}.RunContext(context.Background(), jobs)
	if len(a) != len(b) {
		t.Fatalf("result counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("job %d failed: Run %v, RunContext %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Char != b[i].Char {
			t.Errorf("job %d characterization diverges", i)
		}
	}
	if asum.SimCycles != bsum.SimCycles || asum.SimInsts != bsum.SimInsts {
		t.Errorf("summaries diverge: Run %d/%d, RunContext %d/%d",
			asum.SimCycles, asum.SimInsts, bsum.SimCycles, bsum.SimInsts)
	}
}
