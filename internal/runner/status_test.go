package runner

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/trace"
)

func TestProgressCounts(t *testing.T) {
	jobs := histJobs(t, 3)
	// Force one timeout: two cycles is never enough to finish.
	jobs[1].MaxCycles = 2
	pr := NewProgress()
	results, summary := Pool{Workers: 2, Progress: pr}.Run(jobs)

	s := pr.Snapshot()
	if s.TotalJobs != 3 || s.Done != 3 {
		t.Errorf("snapshot jobs = %d/%d, want 3/3", s.Done, s.TotalJobs)
	}
	if s.Failed != 1 || s.TimedOut != 1 {
		t.Errorf("failed/timedOut = %d/%d, want 1/1", s.Failed, s.TimedOut)
	}
	if len(s.Running) != 0 {
		t.Errorf("running = %v after the sweep ended", s.Running)
	}
	if len(s.Failures) != 1 || !s.Failures[0].TimedOut || s.Failures[0].Index != 1 {
		t.Errorf("failures = %+v", s.Failures)
	}
	if s.Insts == 0 || s.Cycles == 0 {
		t.Errorf("no work accounted: %+v", s)
	}
	if summary.Failed != 1 || summary.TimedOut != 1 {
		t.Errorf("summary failed/timedOut = %d/%d, want 1/1", summary.Failed, summary.TimedOut)
	}
	if !results[1].TimedOut() {
		t.Errorf("job 1 err = %v, not classified as timeout", results[1].Err)
	}
	if results[0].TimedOut() || results[0].Err != nil {
		t.Errorf("job 0 unexpectedly failed: %v", results[0].Err)
	}

	// Completed jobs' histograms merge into the live view.
	h := pr.Histograms()
	if h == nil {
		t.Fatal("no merged histograms")
	}
	if h.H(hist.LoadL1).Count() == 0 {
		t.Error("merged histograms empty")
	}
}

func TestProgressNilSafe(t *testing.T) {
	var pr *Progress
	pr.Begin(1)
	pr.JobStarted(0, "x")
	pr.JobDone(&Result{})
	if s := pr.Snapshot(); s.TotalJobs != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if pr.Histograms() != nil {
		t.Error("nil progress returned histograms")
	}
}

func TestServeStatus(t *testing.T) {
	pr := NewProgress()
	addr, err := ServeStatus("127.0.0.1:0", pr)
	if err != nil {
		t.Fatal(err)
	}

	jobs := []Job{{
		Profile: trace.ParallelProfiles()[0], Model: config.SLFSoSKey370,
		InstPerCore: 2_000, Seed: 42, Hists: true,
	}}
	Pool{Workers: 1, Progress: pr}.Run(jobs)

	get := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
	}

	var snap Snapshot
	get("/status", &snap)
	if snap.TotalJobs != 1 || snap.Done != 1 || snap.Failed != 0 {
		t.Errorf("/status = %+v", snap)
	}
	if snap.Insts == 0 {
		t.Error("/status reports no retired instructions")
	}

	var hists map[string]hist.Summary
	get("/histograms", &hists)
	if hists["load-l1"].Count == 0 {
		t.Errorf("/histograms missing load-l1: %v", hists)
	}

	var vars map[string]json.RawMessage
	get("/debug/vars", &vars)
	if _, ok := vars["sesa.sweep"]; !ok {
		t.Errorf("expvar missing sesa.sweep: have %d vars", len(vars))
	}

	get("/debug/pprof/cmdline", nil)
}
