package runner

import (
	"bytes"
	"testing"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/report"
	"sesa/internal/trace"
)

func histJobs(t *testing.T, n int) []Job {
	t.Helper()
	profiles := trace.ParallelProfiles()
	if len(profiles) < n {
		t.Fatalf("need %d profiles, have %d", n, len(profiles))
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Profile:     profiles[i],
			Model:       config.SLFSoSKey370,
			InstPerCore: 2_000,
			Seed:        42,
			Hists:       true,
		}
	}
	return jobs
}

// renderHists exports the per-job histogram runs exactly as the CLIs do.
func renderHists(t *testing.T, results []Result) []byte {
	t.Helper()
	var rep report.HistReport
	for _, r := range results {
		if r.Hists == nil {
			t.Fatalf("job %d: no histograms", r.Index)
		}
		rep.Runs = append(rep.Runs, report.NewHistRun(r.Job.Name(), r.Hists))
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHistsIdenticalAcrossWorkers is the determinism contract for -hist-out:
// every job records into a private set and results are positional, so the
// rendered report is byte-identical no matter how many workers ran. Under
// -race this also exercises concurrent recording across the pool.
func TestHistsIdenticalAcrossWorkers(t *testing.T) {
	cache := trace.NewCache()
	serial, _ := Pool{Workers: 1, Cache: cache}.Run(histJobs(t, 4))
	parallel, _ := Pool{Workers: 8, Cache: cache}.Run(histJobs(t, 4))

	got, want := renderHists(t, parallel), renderHists(t, serial)
	if !bytes.Equal(got, want) {
		t.Errorf("histogram report differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

// TestHistsOffByDefault: a job without Hists must not allocate a set.
func TestHistsOffByDefault(t *testing.T) {
	jobs := histJobs(t, 1)
	jobs[0].Hists = false
	results, _ := Pool{Workers: 1}.Run(jobs)
	if results[0].Hists != nil {
		t.Error("Hists set on a job that did not ask for histograms")
	}
}

// TestHistMergeAcrossJobs: merging per-job sets must equal a collector fed
// both jobs' merged views — the runner-level face of the merge property.
func TestHistMergeAcrossJobs(t *testing.T) {
	results, _ := Pool{Workers: 2}.Run(histJobs(t, 2))
	all := hist.NewCollector()
	var want uint64
	for _, r := range results {
		m := r.Hists.Merged()
		want += m.H(hist.GateClosed).Count()
		all.Merge(m)
	}
	if got := all.H(hist.GateClosed).Count(); got != want {
		t.Errorf("merged gate-closed count %d, want %d", got, want)
	}
	if want == 0 {
		t.Error("no gate-closed episodes recorded across jobs; workload too small?")
	}
}
