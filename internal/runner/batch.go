package runner

// Span is one contiguous batch of a sweep's job list: the half-open index
// range [Start, End). Batches are spans rather than job copies so the
// decomposition is pure bookkeeping — the coordinator keeps the single
// authoritative job slice and results land positionally, which is what
// makes fleet output placement-independent.
type Span struct {
	Start, End int
}

// Len returns the number of jobs in the span.
func (s Span) Len() int { return s.End - s.Start }

// Decompose splits n jobs into contiguous batches of at most size jobs, in
// job order. The decomposition is deterministic: it depends only on n and
// size, never on which workers exist or how fast they are, so the same
// sweep always produces the same batch set (and therefore the same
// content-addressed work units). size <= 0 is treated as 1.
func Decompose(n, size int) []Span {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = 1
	}
	spans := make([]Span, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		spans = append(spans, Span{Start: start, End: end})
	}
	return spans
}
