package runner

import (
	"bytes"
	"testing"

	"sesa/internal/config"
	"sesa/internal/obs"
	"sesa/internal/trace"
)

// tracedJobs builds a small model sweep with tracing enabled.
func tracedJobs() []Job {
	p, _ := trace.Lookup("x264")
	opts := &obs.Options{BufCap: obs.DefaultBufCap, MetricsInterval: 500}
	var jobs []Job
	for _, m := range config.AllModels() {
		jobs = append(jobs, Job{Profile: p, Model: m, InstPerCore: 1000, Seed: 42, Trace: opts})
	}
	return jobs
}

// exportAll renders the sweep's traces in job order, the way the CLIs do.
func exportAll(t *testing.T, results []Result) ([]byte, []byte) {
	t.Helper()
	var runs []obs.Run
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Trace == nil {
			t.Fatal("job ran without a tracer despite Job.Trace being set")
		}
		runs = append(runs, obs.Run{
			Name:   r.Job.Name(),
			Tracer: r.Trace,
		})
	}
	var chrome, kanata bytes.Buffer
	if err := obs.WriteChrome(&chrome, runs); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteKanata(&kanata, runs); err != nil {
		t.Fatal(err)
	}
	return chrome.Bytes(), kanata.Bytes()
}

// TestTraceByteIdenticalAcrossWorkers is the acceptance criterion: for a
// fixed seed, exported traces are byte-identical no matter how many workers
// ran the sweep. Running it under -race also exercises the per-job tracers
// for sharing bugs.
func TestTraceByteIdenticalAcrossWorkers(t *testing.T) {
	cache := trace.NewCache()
	serial, _ := Pool{Workers: 1, Cache: cache}.Run(tracedJobs())
	parallel, _ := Pool{Workers: 8, Cache: cache}.Run(tracedJobs())

	c1, k1 := exportAll(t, serial)
	c8, k8 := exportAll(t, parallel)
	if !bytes.Equal(c1, c8) {
		t.Error("chrome trace differs between 1 and 8 workers")
	}
	if !bytes.Equal(k1, k8) {
		t.Error("kanata trace differs between 1 and 8 workers")
	}

	// The metrics series must agree sample for sample too.
	for i := range serial {
		ms, mp := serial[i].Trace.Metrics(), parallel[i].Trace.Metrics()
		if len(ms.Samples) != len(mp.Samples) {
			t.Fatalf("job %d: %d vs %d metric samples", i, len(ms.Samples), len(mp.Samples))
		}
		for j := range ms.Samples {
			if ms.Samples[j] != mp.Samples[j] {
				t.Errorf("job %d sample %d differs: %+v vs %+v", i, j, ms.Samples[j], mp.Samples[j])
			}
		}
	}
}
