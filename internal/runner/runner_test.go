package runner

import (
	"reflect"
	"testing"

	"sesa/internal/config"
	"sesa/internal/trace"
)

// sweepJobs builds a small but representative grid: two parallel profiles
// and one sequential profile under all five models.
func sweepJobs(t testing.TB, insts int) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range []string{"barnes", "x264", "505.mcf"} {
		p, ok := trace.Lookup(name)
		if !ok {
			t.Fatalf("unknown profile %q", name)
		}
		for _, m := range config.AllModels() {
			jobs = append(jobs, Job{Profile: p, Model: m, InstPerCore: insts, Seed: 42})
		}
	}
	return jobs
}

// TestDeterministicAcrossWorkers is the tentpole's central property: the
// same sweep run serially and with 4 workers must produce deep-equal
// statistics in the same order.
func TestDeterministicAcrossWorkers(t *testing.T) {
	jobs := sweepJobs(t, 1500)
	serial, _ := Pool{Workers: 1, Cache: trace.NewCache()}.Run(jobs)
	parallel, _ := Pool{Workers: 4, Cache: trace.NewCache()}.Run(jobs)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("job %d: error mismatch: %v vs %v", i, s.Err, p.Err)
		}
		if !reflect.DeepEqual(s.Stats, p.Stats) {
			t.Errorf("job %d (%s on %s): stats differ between 1 and 4 workers",
				i, s.Job.Profile.Name, s.Job.Model)
		}
		if s.Char != p.Char {
			t.Errorf("job %d (%s on %s): characterization differs:\n  serial   %+v\n  parallel %+v",
				i, s.Job.Profile.Name, s.Job.Model, s.Char, p.Char)
		}
	}
}

// TestCachedEqualsUncached: replaying the shared cached trace must be
// indistinguishable from regenerating it per job.
func TestCachedEqualsUncached(t *testing.T) {
	jobs := sweepJobs(t, 1000)
	cached, _ := Pool{Workers: 2, Cache: trace.NewCache()}.Run(jobs)
	uncached, _ := Pool{Workers: 2, Cache: nil}.Run(jobs)
	for i := range cached {
		if !reflect.DeepEqual(cached[i].Stats, uncached[i].Stats) {
			t.Errorf("job %d (%s on %s): cached trace changed the simulation",
				i, cached[i].Job.Profile.Name, cached[i].Job.Model)
		}
	}
}

// TestResultOrderAndSummary: results are positional, and the summary
// aggregates all jobs.
func TestResultOrderAndSummary(t *testing.T) {
	jobs := sweepJobs(t, 800)
	results, sum := Pool{Workers: 3, Cache: trace.NewCache()}.Run(jobs)
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Job.Profile.Name != jobs[i].Profile.Name || r.Job.Model != jobs[i].Model {
			t.Errorf("result %d does not match job %d", i, i)
		}
	}
	if sum.Jobs != len(jobs) || sum.Failed != 0 {
		t.Errorf("summary: got %d jobs %d failed, want %d and 0", sum.Jobs, sum.Failed, len(jobs))
	}
	if sum.SimCycles == 0 || sum.SimInsts == 0 {
		t.Errorf("summary: zero simulated work: %+v", sum)
	}
	if sum.Workers != 3 {
		t.Errorf("summary: workers = %d, want 3", sum.Workers)
	}
}

// TestFailureDoesNotAbortSweep: a job with an impossible cycle bound must
// come back as a failure row — with the cycle count at which it was cut —
// while the rest of the sweep completes.
func TestFailureDoesNotAbortSweep(t *testing.T) {
	p, _ := trace.Lookup("barnes")
	jobs := []Job{
		{Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 42},
		{Profile: p, Model: config.SLFSoSKey370, InstPerCore: 1000, Seed: 42, MaxCycles: 50},
		{Profile: p, Model: config.NoSpec370, InstPerCore: 1000, Seed: 42},
	}
	results, sum := Pool{Workers: 2, Cache: trace.NewCache()}.Run(jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("job with MaxCycles=50 did not time out")
	}
	if results[1].Stats == nil || results[1].Stats.Cycles == 0 {
		t.Fatal("timed-out job reports no cycle count (failure row would show 0)")
	}
	if sum.Failed != 1 {
		t.Errorf("summary.Failed = %d, want 1", sum.Failed)
	}
}

// TestDefaultMaxCycles covers the zero-value bound derivation.
func TestDefaultMaxCycles(t *testing.T) {
	if got := (Job{InstPerCore: 1000}).DefaultMaxCycles(); got != 1000*200+2_000_000 {
		t.Errorf("DefaultMaxCycles = %d", got)
	}
	if got := (Job{InstPerCore: 1000, MaxCycles: 7}).DefaultMaxCycles(); got != 7 {
		t.Errorf("explicit MaxCycles not honoured: %d", got)
	}
}

// TestConfigOverride: a custom configuration reaches the machine, and the
// job's model always wins over the override's.
func TestConfigOverride(t *testing.T) {
	p, _ := trace.Lookup("swaptions")
	cfg := config.Small(2, config.X86)
	jobs := []Job{{Profile: p, Model: config.SLFSoSKey370, InstPerCore: 500, Seed: 7, Config: &cfg}}
	results, _ := Pool{Workers: 1}.Run(jobs)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if got := results[0].Stats.Model; got != config.SLFSoSKey370.String() {
		t.Errorf("stats model = %q, want %q (job model must override config)", got, config.SLFSoSKey370)
	}
	if got := len(results[0].Stats.Cores); got != 2 {
		t.Errorf("machine ran %d cores, want the override's 2", got)
	}
}
