package runner

import (
	"bytes"
	"reflect"
	"testing"

	"sesa/internal/config"
	"sesa/internal/obs"
	"sesa/internal/trace"
)

// stepJobs builds the step-mode equivalence sweep: a memory-latency-bound
// sequential profile (long skippable quiescent ranges) and an 8-core parallel
// profile (frequent cross-core events), two models each, with tracing and
// histograms attached.
func stepJobs(t *testing.T, mode config.StepMode) []Job {
	t.Helper()
	opts := &obs.Options{BufCap: obs.DefaultBufCap, MetricsInterval: 500}
	var jobs []Job
	for _, name := range []string{"505.mcf", "x264"} {
		p, ok := trace.Lookup(name)
		if !ok {
			t.Fatalf("unknown profile %q", name)
		}
		for _, m := range []config.Model{config.X86, config.SLFSoSKey370} {
			jobs = append(jobs, Job{
				Profile:     p,
				Model:       m,
				InstPerCore: 2_000,
				Seed:        42,
				Trace:       opts,
				Hists:       true,
				StepMode:    mode,
			})
		}
	}
	return jobs
}

// TestStepModesIdenticalSweep is the two-level clock's acceptance criterion
// at the sweep level: a traced, histogrammed sweep produces identical
// statistics, characterizations, trace files, metrics series and histogram
// reports under naive and skip stepping.
func TestStepModesIdenticalSweep(t *testing.T) {
	cache := trace.NewCache()
	naive, _ := Pool{Workers: 1, Cache: cache}.Run(stepJobs(t, config.StepNaive))
	skip, _ := Pool{Workers: 1, Cache: cache}.Run(stepJobs(t, config.StepSkip))

	for i := range naive {
		if naive[i].Err != nil || skip[i].Err != nil {
			t.Fatalf("job %d failed: naive=%v skip=%v", i, naive[i].Err, skip[i].Err)
		}
		if !reflect.DeepEqual(naive[i].Stats, skip[i].Stats) {
			t.Errorf("job %d statistics differ:\nnaive: %+v\nskip:  %+v",
				i, naive[i].Stats, skip[i].Stats)
		}
		if naive[i].Char != skip[i].Char {
			t.Errorf("job %d characterization differs:\nnaive: %+v\nskip:  %+v",
				i, naive[i].Char, skip[i].Char)
		}
	}

	cn, kn := exportAll(t, naive)
	cs, ks := exportAll(t, skip)
	if !bytes.Equal(cn, cs) {
		t.Error("chrome trace differs between naive and skip stepping")
	}
	if !bytes.Equal(kn, ks) {
		t.Error("kanata trace differs between naive and skip stepping")
	}

	for i := range naive {
		mn, ms := naive[i].Trace.Metrics(), skip[i].Trace.Metrics()
		if len(mn.Samples) != len(ms.Samples) {
			t.Fatalf("job %d: %d vs %d metric samples", i, len(mn.Samples), len(ms.Samples))
		}
		for j := range mn.Samples {
			if mn.Samples[j] != ms.Samples[j] {
				t.Errorf("job %d sample %d differs: %+v vs %+v", i, j, mn.Samples[j], ms.Samples[j])
			}
		}
	}

	hn, hs := renderHists(t, naive), renderHists(t, skip)
	if !bytes.Equal(hn, hs) {
		t.Errorf("histogram report differs between step modes:\n--- naive ---\n%s\n--- skip ---\n%s", hn, hs)
	}
}
