// Package noc models the on-chip interconnect of Table III: a fully
// connected topology with 6-cycle switch-to-switch latency, 1-flit control
// messages and 5-flit data messages.
//
// Because the topology is fully connected, every message takes exactly one
// switch-to-switch traversal plus its serialization latency; the model
// therefore reduces to a per-message delay plus traffic accounting, with
// optional deterministic jitter used by litmus witness search.
package noc

import (
	"sesa/internal/config"
	"sesa/internal/hist"
)

// MsgKind classifies interconnect messages by size class.
type MsgKind int

// Message kinds.
const (
	// Control messages: requests, invalidations, acks (1 flit).
	Control MsgKind = iota
	// Data messages: cache-line transfers (5 flits).
	Data
)

// Traffic accumulates interconnect usage counters, per message class so
// Table IV-style reports can attribute bandwidth to coherence control
// versus line transfers.
type Traffic struct {
	ControlMsgs  uint64
	DataMsgs     uint64
	ControlFlits uint64
	DataFlits    uint64
	Flits        uint64
}

// Network is the fully connected interconnect model.
type Network struct {
	cfg     config.NoC
	jitter  int
	rng     rngState
	Traffic Traffic

	// hc is the latency-histogram sink; nil when histograms are disabled.
	hc *hist.Collector
}

// AttachHists sets the network's histogram collector (nil disables it);
// every delivered message records its per-class latency.
func (n *Network) AttachHists(c *hist.Collector) { n.hc = c }

// New returns a network with the given parameters. jitter adds a
// deterministic pseudo-random 0..jitter extra cycles to each message (0
// disables it); seed selects the jitter stream.
func New(cfg config.NoC, jitter int, seed uint64) *Network {
	return &Network{cfg: cfg, jitter: jitter, rng: rngState(seed*0x9E3779B97F4A7C15 + 0x61C88647)}
}

// Delay returns the one-way latency of a message of the given kind,
// including jitter, and accounts the traffic.
func (n *Network) Delay(kind MsgKind) int {
	var d int
	switch kind {
	case Data:
		d = n.cfg.DataLatency()
		n.Traffic.DataMsgs++
		n.Traffic.DataFlits += uint64(n.cfg.DataFlits)
		n.Traffic.Flits += uint64(n.cfg.DataFlits)
	default:
		d = n.cfg.ControlLatency()
		n.Traffic.ControlMsgs++
		n.Traffic.ControlFlits += uint64(n.cfg.ControlFlits)
		n.Traffic.Flits += uint64(n.cfg.ControlFlits)
	}
	if n.jitter > 0 {
		d += int(n.rng.next() % uint64(n.jitter+1))
	}
	if n.hc != nil {
		m := hist.NoCControl
		if kind == Data {
			m = hist.NoCData
		}
		n.hc.Observe(m, uint64(d))
	}
	return d
}

// rngState is a splitmix64 generator: tiny, fast and deterministic.
type rngState uint64

func (s *rngState) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
