package noc

import "container/heap"

// Event is a scheduled callback: at Cycle, Fn runs. Events scheduled for the
// same cycle fire in insertion order, keeping the simulation deterministic.
type Event struct {
	Cycle uint64
	Fn    func()
	seq   uint64
}

// EventQueue is a deterministic min-heap of events ordered by (cycle,
// insertion sequence). It is the spine of the memory-system timing model.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues fn to run at the given cycle.
func (q *EventQueue) Schedule(cycle uint64, fn func()) {
	q.seq++
	heap.Push(&q.h, Event{Cycle: cycle, Fn: fn, seq: q.seq})
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event; ok is false if
// the queue is empty.
func (q *EventQueue) NextCycle() (cycle uint64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Cycle, true
}

// RunUntil fires, in order, every event scheduled at or before cycle.
func (q *EventQueue) RunUntil(cycle uint64) {
	for len(q.h) > 0 && q.h[0].Cycle <= cycle {
		ev := heap.Pop(&q.h).(Event)
		ev.Fn()
	}
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Cycle != h[j].Cycle {
		return h[i].Cycle < h[j].Cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
