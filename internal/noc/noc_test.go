package noc

import (
	"testing"

	"sesa/internal/config"
)

func tableIIINoC() config.NoC {
	return config.NoC{SwitchLatency: 6, ControlFlits: 1, DataFlits: 5, FlitCycles: 1}
}

func TestTableIIILatencies(t *testing.T) {
	n := New(tableIIINoC(), 0, 1)
	if d := n.Delay(Control); d != 7 {
		t.Errorf("control delay = %d, want 7 (6 switch + 1 flit)", d)
	}
	if d := n.Delay(Data); d != 11 {
		t.Errorf("data delay = %d, want 11 (6 switch + 5 flits)", d)
	}
}

func TestTrafficAccounting(t *testing.T) {
	n := New(tableIIINoC(), 0, 1)
	for i := 0; i < 3; i++ {
		n.Delay(Control)
	}
	for i := 0; i < 2; i++ {
		n.Delay(Data)
	}
	if n.Traffic.ControlMsgs != 3 || n.Traffic.DataMsgs != 2 {
		t.Errorf("traffic = %+v", n.Traffic)
	}
	if n.Traffic.Flits != 3*1+2*5 {
		t.Errorf("flits = %d, want 13", n.Traffic.Flits)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	a := New(tableIIINoC(), 8, 42)
	b := New(tableIIINoC(), 8, 42)
	c := New(tableIIINoC(), 8, 43)
	same, diff := true, false
	for i := 0; i < 200; i++ {
		da, db, dc := a.Delay(Control), b.Delay(Control), c.Delay(Control)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
		if da < 7 || da > 15 {
			t.Fatalf("jittered delay %d out of [7,15]", da)
		}
	}
	if !same {
		t.Error("same seed must give the same delays")
	}
	if !diff {
		t.Error("different seeds should give different delays")
	}
}
