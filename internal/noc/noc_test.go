package noc

import (
	"testing"
	"testing/quick"

	"sesa/internal/config"
)

func tableIIINoC() config.NoC {
	return config.NoC{SwitchLatency: 6, ControlFlits: 1, DataFlits: 5, FlitCycles: 1}
}

func TestTableIIILatencies(t *testing.T) {
	n := New(tableIIINoC(), 0, 1)
	if d := n.Delay(Control); d != 7 {
		t.Errorf("control delay = %d, want 7 (6 switch + 1 flit)", d)
	}
	if d := n.Delay(Data); d != 11 {
		t.Errorf("data delay = %d, want 11 (6 switch + 5 flits)", d)
	}
}

func TestTrafficAccounting(t *testing.T) {
	n := New(tableIIINoC(), 0, 1)
	for i := 0; i < 3; i++ {
		n.Delay(Control)
	}
	for i := 0; i < 2; i++ {
		n.Delay(Data)
	}
	if n.Traffic.ControlMsgs != 3 || n.Traffic.DataMsgs != 2 {
		t.Errorf("traffic = %+v", n.Traffic)
	}
	if n.Traffic.Flits != 3*1+2*5 {
		t.Errorf("flits = %d, want 13", n.Traffic.Flits)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	a := New(tableIIINoC(), 8, 42)
	b := New(tableIIINoC(), 8, 42)
	c := New(tableIIINoC(), 8, 43)
	same, diff := true, false
	for i := 0; i < 200; i++ {
		da, db, dc := a.Delay(Control), b.Delay(Control), c.Delay(Control)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
		if da < 7 || da > 15 {
			t.Fatalf("jittered delay %d out of [7,15]", da)
		}
	}
	if !same {
		t.Error("same seed must give the same delays")
	}
	if !diff {
		t.Error("different seeds should give different delays")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var order []int
	q.Schedule(10, func() { order = append(order, 2) })
	q.Schedule(5, func() { order = append(order, 1) })
	q.Schedule(10, func() { order = append(order, 3) }) // same cycle: FIFO
	q.Schedule(20, func() { order = append(order, 4) })
	q.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
	next, ok := q.NextCycle()
	if !ok || next != 20 {
		t.Fatalf("next = %d ok=%v", next, ok)
	}
	q.RunUntil(100)
	if len(order) != 4 || order[3] != 4 {
		t.Fatalf("final order = %v", order)
	}
}

func TestEventQueueScheduleDuringRun(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(1, func() {
		fired = append(fired, 1)
		q.Schedule(1, func() { fired = append(fired, 2) }) // same cycle, later seq
		q.Schedule(5, func() { fired = append(fired, 3) })
	})
	q.RunUntil(1)
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("nested same-cycle event not fired in order: %v", fired)
	}
	q.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("future nested event lost: %v", fired)
	}
}

// TestEventQueueMonotonic is a property test: events always fire in
// non-decreasing cycle order regardless of insertion order.
func TestEventQueueMonotonic(t *testing.T) {
	f := func(cycles []uint16) bool {
		q := NewEventQueue()
		var fired []uint64
		for _, c := range cycles {
			c := uint64(c)
			q.Schedule(c, func() { fired = append(fired, c) })
		}
		q.RunUntil(1 << 20)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(cycles)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
