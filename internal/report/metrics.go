package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"sesa/internal/obs"
)

// MetricsSeries is the interval-metrics time series of one or more runs:
// per-core IPC, structure occupancies, gate-closed fraction and squash rate
// sampled every N cycles by the simulator's observability layer.
type MetricsSeries struct {
	// Interval is the configured sampling period in cycles.
	Interval uint64 `json:"interval"`
	// Runs holds one entry per traced machine, in run order.
	Runs []MetricsRun `json:"runs"`
}

// MetricsRun is one run's samples.
type MetricsRun struct {
	Name    string       `json:"name"`
	Samples []obs.Sample `json:"samples"`
}

// NewMetricsSeries collects the metrics of the named runs. Runs whose
// tracer has no metrics (sampling disabled) contribute an empty sample set,
// keeping run indices aligned with the trace export.
func NewMetricsSeries(runs []obs.Run) MetricsSeries {
	var s MetricsSeries
	for _, r := range runs {
		mr := MetricsRun{Name: r.Name}
		if m := r.Tracer.Metrics(); m != nil {
			if s.Interval == 0 {
				s.Interval = m.Interval
			}
			mr.Samples = m.Samples
		}
		s.Runs = append(s.Runs, mr)
	}
	return s
}

// WriteCSV emits one row per (run, interval, core) sample.
func (s MetricsSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"run", "cycle", "span", "core", "ipc",
		"rob_occ", "lq_occ", "sb_occ", "gate_closed_frac", "squashes",
	}); err != nil {
		return err
	}
	for _, run := range s.Runs {
		for _, sm := range run.Samples {
			rec := []string{
				run.Name,
				strconv.FormatUint(sm.Cycle, 10),
				strconv.FormatUint(sm.Span, 10),
				strconv.Itoa(sm.Core),
				f(sm.IPC),
				strconv.Itoa(sm.ROBOcc),
				strconv.Itoa(sm.LQOcc),
				strconv.Itoa(sm.SBOcc),
				f(sm.GateClosedFrac),
				strconv.FormatUint(sm.Squashes, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the series as a JSON document.
func (s MetricsSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
