package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sesa/internal/hist"
)

func testSet() *hist.Set {
	s := hist.NewSet(2)
	for i := uint64(1); i <= 100; i++ {
		s.Core(0).Observe(hist.LoadL1, i)
	}
	s.Core(1).Observe(hist.GateClosed, 40)
	s.Net().Observe(hist.NoCControl, 7)
	return s
}

func TestHistReportText(t *testing.T) {
	rep := HistReport{Title: "unit", Runs: []HistRun{NewHistRun("run0", testSet())}}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== unit ==",
		"-- run0 (merged) --",
		"-- run0 core 0 --",
		"-- run0 core 1 --",
		"load-l1",
		"gate-closed",
		"noc-control",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// The interconnect collector appears only in the merged table — its
	// messages are not attributable to a core.
	core0 := out[strings.Index(out, "core 0"):]
	if strings.Contains(core0, "noc-control") {
		t.Error("noc-control leaked into a per-core table")
	}
}

func TestHistReportJSON(t *testing.T) {
	rep := HistReport{Title: "unit", Runs: []HistRun{NewHistRun("run0", testSet())}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title string `json:"title"`
		Runs  []struct {
			Name   string                  `json:"name"`
			Merged map[string]hist.Summary `json:"merged"`
			Cores  []map[string]hist.Summary
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Title != "unit" || len(doc.Runs) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	r := doc.Runs[0]
	if r.Name != "run0" || len(r.Cores) != 2 {
		t.Fatalf("run = %+v", r)
	}
	l1 := r.Merged["load-l1"]
	if l1.Count != 100 || l1.P50 != 50 || l1.Max != 100 {
		t.Errorf("load-l1 summary = %+v", l1)
	}
	if r.Merged["noc-control"].Count != 1 {
		t.Errorf("noc-control missing from merged: %+v", r.Merged)
	}
}

func TestHistReportEmptyRun(t *testing.T) {
	rep := HistReport{Runs: []HistRun{NewHistRun("empty", hist.NewSet(1))}}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no samples)") {
		t.Errorf("empty run not marked: %q", buf.String())
	}
}

func TestHistReportBadFormat(t *testing.T) {
	rep := HistReport{}
	if err := rep.Write(&bytes.Buffer{}, CSV); err == nil {
		t.Error("csv accepted for histogram report")
	}
}

func TestSortedMetricNames(t *testing.T) {
	s := map[string]hist.Summary{
		"gate-closed": {}, "load-slf": {}, "noc-data": {},
	}
	got := SortedMetricNames(s)
	want := []string{"load-slf", "noc-data", "gate-closed"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
