package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sesa/internal/hist"
)

// HistRun is one machine's latency distributions: the merged machine-level
// view plus the per-core collectors it was merged from. The interconnect
// collector is folded into Merged (its messages are not attributable to a
// single core).
type HistRun struct {
	Name   string
	Merged *hist.Collector
	Cores  []*hist.Collector
}

// NewHistRun snapshots a machine's histogram set under the given name.
func NewHistRun(name string, s *hist.Set) HistRun {
	r := HistRun{Name: name, Merged: s.Merged()}
	for i := 0; i < s.Cores(); i++ {
		r.Cores = append(r.Cores, s.Core(i))
	}
	return r
}

// HistReport is a set of named runs, the document behind -hist-out.
type HistReport struct {
	Title string
	Runs  []HistRun
}

// histRunJSON is the JSON shape of one run.
type histRunJSON struct {
	Name   string                    `json:"name"`
	Merged map[string]hist.Summary   `json:"merged"`
	Cores  []map[string]hist.Summary `json:"cores,omitempty"`
}

// WriteJSON emits the report as a JSON document.
func (r HistReport) WriteJSON(w io.Writer) error {
	doc := struct {
		Title string        `json:"title"`
		Runs  []histRunJSON `json:"runs"`
	}{Title: r.Title}
	for _, run := range r.Runs {
		j := histRunJSON{Name: run.Name, Merged: run.Merged.Summaries()}
		for _, c := range run.Cores {
			j.Cores = append(j.Cores, c.Summaries())
		}
		doc.Runs = append(doc.Runs, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText emits percentile tables: for each run, the merged machine-level
// table followed by one table per core that recorded samples. Output is
// deterministic (metrics in enum order) and depends only on the recorded
// samples, so it is byte-identical across worker counts.
func (r HistReport) WriteText(w io.Writer) error {
	if r.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", r.Title); err != nil {
			return err
		}
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "\n-- %s (merged) --\n", run.Name); err != nil {
			return err
		}
		if err := writeCollectorTable(w, run.Merged); err != nil {
			return err
		}
		for i, c := range run.Cores {
			if !collectorHasSamples(c) {
				continue
			}
			if _, err := fmt.Fprintf(w, "\n-- %s core %d --\n", run.Name, i); err != nil {
				return err
			}
			if err := writeCollectorTable(w, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// Write dispatches on format; histogram reports support text and json.
func (r HistReport) Write(w io.Writer, format Format) error {
	switch format {
	case Text:
		return r.WriteText(w)
	case JSON:
		return r.WriteJSON(w)
	}
	return fmt.Errorf("report: histogram format %q not supported (want text or json)", format)
}

func collectorHasSamples(c *hist.Collector) bool {
	for m := hist.Metric(0); m < hist.NumMetrics; m++ {
		if c.H(m).Count() > 0 {
			return true
		}
	}
	return false
}

// histTableHeader matches writeCollectorTable's columns.
const histTableHeader = "metric             count        mean       p50       p90       p99       max"

func writeCollectorTable(w io.Writer, c *hist.Collector) error {
	if !collectorHasSamples(c) {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	if _, err := fmt.Fprintln(w, histTableHeader); err != nil {
		return err
	}
	for m := hist.Metric(0); m < hist.NumMetrics; m++ {
		h := c.H(m)
		if h.Count() == 0 {
			continue
		}
		s := h.Summarize()
		if _, err := fmt.Fprintf(w, "%-15s %9d  %10.2f %9d %9d %9d %9d\n",
			m, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max); err != nil {
			return err
		}
	}
	return nil
}

// SortedMetricNames returns the metric names present in the summaries map in
// enum order — helpers for CLIs that render summaries themselves.
func SortedMetricNames(s map[string]hist.Summary) []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	order := make(map[string]int, int(hist.NumMetrics))
	for m := hist.Metric(0); m < hist.NumMetrics; m++ {
		order[m.String()] = int(m)
	}
	sort.Slice(names, func(a, b int) bool { return order[names[a]] < order[names[b]] })
	return names
}
