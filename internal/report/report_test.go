package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sesa/internal/stats"
)

func sampleChars() CharacterizationTable {
	return CharacterizationTable{
		Title: "Table IV (test)",
		Rows: []stats.Characterization{
			{Benchmark: "barnes", Instructions: 1000, LoadsPct: 31.78, ForwardedPct: 18.3,
				GateStallsPct: 5.9, AvgStallCycles: 6.4, ReexecutedPct: 0.19, Cycles: 500, IPC: 2},
			{Benchmark: "x264", Instructions: 2000, LoadsPct: 26.2, ForwardedPct: 3.3,
				GateStallsPct: 1.4, AvgStallCycles: 13.7, ReexecutedPct: 10.2, Cycles: 900, IPC: 2.2},
		},
	}
}

func TestCharacterizationCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChars().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(recs))
	}
	if recs[1][0] != "barnes" || recs[2][0] != "x264" {
		t.Errorf("benchmark column wrong: %v", recs)
	}
	if recs[1][3] != "18.3000" {
		t.Errorf("forwarded column = %q", recs[1][3])
	}
	if len(recs[0]) != len(recs[1]) {
		t.Error("header and data widths differ")
	}
}

func TestCharacterizationJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChars().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back CharacterizationTable
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "Table IV (test)" || len(back.Rows) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Rows[0].ForwardedPct != 18.3 {
		t.Errorf("fwd = %f", back.Rows[0].ForwardedPct)
	}
}

func sampleComparison() ComparisonTable {
	return ComparisonTable{
		Title:      "Figure 10 (test)",
		Benchmarks: []string{"a", "b"},
		Models:     []string{"x86", "370-SLFSoS-key"},
		Normalized: map[string][]float64{
			"x86":            {1, 1},
			"370-SLFSoS-key": {1.1, 1.21},
		},
	}
}

func TestComparisonCSVAndGeoMean(t *testing.T) {
	c := sampleComparison()
	gm := c.GeoMeans()
	if math.Abs(gm["370-SLFSoS-key"]-math.Sqrt(1.1*1.21)) > 1e-9 {
		t.Errorf("geomean = %f", gm["370-SLFSoS-key"])
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 2 benchmarks + geomean
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[3][0] != "geomean" {
		t.Errorf("last row = %v", recs[3])
	}
}

func TestComparisonJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleComparison().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "370-SLFSoS-key") {
		t.Error("JSON lost the model names")
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "json"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("%s rejected: %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("xml accepted")
	}
}

func TestSweepSummary(t *testing.T) {
	s := SweepSummary{
		Jobs: 10, Failed: 1, Workers: 4,
		WallSeconds: 2.0, SimCycles: 1_000_000, SimInsts: 500_000,
		TraceCacheHits: 8, TraceCacheMisses: 2,
	}
	if got := s.CyclesPerSecond(); got != 500_000 {
		t.Errorf("CyclesPerSecond = %g, want 500000", got)
	}
	if got := s.InstsPerSecond(); got != 250_000 {
		t.Errorf("InstsPerSecond = %g, want 250000", got)
	}
	for _, want := range []string{"10 jobs", "1 failed", "4 workers", "8 hits", "2 misses"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("summary %q missing %q", s.String(), want)
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SweepSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("JSON round trip changed the summary: %+v != %+v", back, s)
	}

	zero := SweepSummary{}
	if zero.CyclesPerSecond() != 0 || zero.InstsPerSecond() != 0 {
		t.Error("zero-wall summary must report zero throughput, not Inf")
	}
}
