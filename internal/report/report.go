// Package report renders experiment results in machine-readable formats
// (CSV and JSON), so regenerated tables and figures can be diffed, plotted
// and archived alongside the paper's.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"sesa/internal/stats"
)

// Format selects an output encoding.
type Format string

// Supported encodings.
const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, JSON:
		return Format(s), nil
	}
	return "", fmt.Errorf("report: unknown format %q (want text, csv or json)", s)
}

// CharacterizationTable is a Table IV-style result set.
type CharacterizationTable struct {
	Title string                   `json:"title"`
	Rows  []stats.Characterization `json:"rows"`
}

// WriteCSV emits one row per benchmark with the Table IV columns.
func (t CharacterizationTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "instructions", "loads_pct", "forwarded_pct",
		"gate_stalls_pct", "avg_stall_cycles", "sa_reexec_pct",
		"total_reexec_pct", "cycles", "ipc",
		"stall_rob_pct", "stall_lq_pct", "stall_sq_pct",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{
			r.Benchmark,
			strconv.FormatUint(r.Instructions, 10),
			f(r.LoadsPct), f(r.ForwardedPct),
			f(r.GateStallsPct), f(r.AvgStallCycles), f(r.ReexecutedPct),
			f(r.TotalReexecPct),
			strconv.FormatUint(r.Cycles, 10), f(r.IPC),
			f(r.StallROBPct), f(r.StallLQPct), f(r.StallSQPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as a JSON document.
func (t CharacterizationTable) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ComparisonTable is a Figure 10-style normalized-execution-time matrix.
type ComparisonTable struct {
	Title      string   `json:"title"`
	Benchmarks []string `json:"benchmarks"`
	Models     []string `json:"models"`
	// Normalized[model][i] is benchmark i's time normalized to the
	// baseline model.
	Normalized map[string][]float64 `json:"normalized"`
}

// GeoMeans returns the per-model geometric means.
func (t ComparisonTable) GeoMeans() map[string]float64 {
	out := make(map[string]float64, len(t.Models))
	for _, m := range t.Models {
		out[m] = stats.GeoMean(t.Normalized[m])
	}
	return out
}

// WriteCSV emits one row per benchmark, one column per model, plus a
// geomean row.
func (t ComparisonTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"benchmark"}, t.Models...)); err != nil {
		return err
	}
	for i, b := range t.Benchmarks {
		rec := []string{b}
		for _, m := range t.Models {
			rec = append(rec, f(t.Normalized[m][i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	gm := t.GeoMeans()
	rec := []string{"geomean"}
	for _, m := range t.Models {
		rec = append(rec, f(gm[m]))
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the comparison as a JSON document.
func (t ComparisonTable) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
