// Package report renders experiment results in machine-readable formats
// (CSV and JSON), so regenerated tables and figures can be diffed, plotted
// and archived alongside the paper's.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"sesa/internal/stats"
)

// Format selects an output encoding.
type Format string

// Supported encodings.
const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, JSON:
		return Format(s), nil
	}
	return "", fmt.Errorf("report: unknown format %q (want text, csv or json)", s)
}

// CharacterizationTable is a Table IV-style result set.
type CharacterizationTable struct {
	Title string                   `json:"title"`
	Rows  []stats.Characterization `json:"rows"`
}

// WriteCSV emits one row per benchmark with the Table IV columns.
func (t CharacterizationTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "instructions", "loads_pct", "forwarded_pct",
		"gate_stalls_pct", "avg_stall_cycles", "sa_reexec_pct",
		"total_reexec_pct", "cycles", "ipc",
		"stall_rob_pct", "stall_lq_pct", "stall_sq_pct",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{
			r.Benchmark,
			strconv.FormatUint(r.Instructions, 10),
			f(r.LoadsPct), f(r.ForwardedPct),
			f(r.GateStallsPct), f(r.AvgStallCycles), f(r.ReexecutedPct),
			f(r.TotalReexecPct),
			strconv.FormatUint(r.Cycles, 10), f(r.IPC),
			f(r.StallROBPct), f(r.StallLQPct), f(r.StallSQPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as a JSON document.
func (t CharacterizationTable) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ComparisonTable is a Figure 10-style normalized-execution-time matrix.
type ComparisonTable struct {
	Title      string   `json:"title"`
	Benchmarks []string `json:"benchmarks"`
	Models     []string `json:"models"`
	// Normalized[model][i] is benchmark i's time normalized to the
	// baseline model.
	Normalized map[string][]float64 `json:"normalized"`
}

// GeoMeans returns the per-model geometric means.
func (t ComparisonTable) GeoMeans() map[string]float64 {
	out := make(map[string]float64, len(t.Models))
	for _, m := range t.Models {
		out[m] = stats.GeoMean(t.Normalized[m])
	}
	return out
}

// WriteCSV emits one row per benchmark, one column per model, plus a
// geomean row.
func (t ComparisonTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"benchmark"}, t.Models...)); err != nil {
		return err
	}
	for i, b := range t.Benchmarks {
		rec := []string{b}
		for _, m := range t.Models {
			rec = append(rec, f(t.Normalized[m][i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	gm := t.GeoMeans()
	rec := []string{"geomean"}
	for _, m := range t.Models {
		rec = append(rec, f(gm[m]))
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the comparison as a JSON document.
func (t ComparisonTable) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// SweepSummary aggregates a parallel experiment sweep: how much simulated
// work the run got through and how fast the host delivered it. It is the
// wall-clock side of a sweep and is therefore NOT deterministic — emit it to
// stderr or a perf log, never interleaved with table output that must be
// byte-identical across worker counts.
type SweepSummary struct {
	Jobs   int `json:"jobs"`
	Failed int `json:"failed"`
	// TimedOut is the subset of Failed whose machines exceeded their cycle
	// bound (the liveness check) rather than failing outright.
	TimedOut int `json:"timed_out"`
	// Canceled is the subset of Failed cut short by context cancellation
	// (a canceled RunSweepContext or a DELETEd sesa-serve sweep).
	Canceled int `json:"canceled"`
	Workers  int `json:"workers"`
	// WallSeconds is the end-to-end sweep duration.
	WallSeconds float64 `json:"wall_seconds"`
	// SimCycles and SimInsts total the simulated cycles and retired
	// instructions across all jobs (failed jobs contribute what they ran).
	SimCycles uint64 `json:"sim_cycles"`
	SimInsts  uint64 `json:"sim_insts"`
	// TraceCacheHits/Misses are the shared trace cache's cumulative
	// process-wide counters at the end of the sweep.
	TraceCacheHits   uint64 `json:"trace_cache_hits"`
	TraceCacheMisses uint64 `json:"trace_cache_misses"`
	// CyclesPerSec and InstsPerSec carry the aggregate host-side
	// throughput into the serialized form (BENCH records, status JSON);
	// the pool fills them from CyclesPerSecond/InstsPerSecond.
	CyclesPerSec float64 `json:"cycles_per_second"`
	InstsPerSec  float64 `json:"insts_per_second"`
}

// CyclesPerSecond is the sweep's aggregate simulation throughput.
func (s SweepSummary) CyclesPerSecond() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.WallSeconds
}

// InstsPerSecond is the aggregate retired-instruction throughput.
func (s SweepSummary) InstsPerSecond() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return float64(s.SimInsts) / s.WallSeconds
}

// String renders the one-line summary the CLIs print to stderr.
func (s SweepSummary) String() string {
	return fmt.Sprintf(
		"sweep: %d jobs (%d failed, %d timed out) on %d workers in %.2fs — %d simulated cycles (%.3g cyc/s), %d instructions (%.3g inst/s), trace cache %d hits / %d misses",
		s.Jobs, s.Failed, s.TimedOut, s.Workers, s.WallSeconds,
		s.SimCycles, s.CyclesPerSecond(), s.SimInsts, s.InstsPerSecond(),
		s.TraceCacheHits, s.TraceCacheMisses)
}

// WriteJSON emits the summary as a JSON document.
func (s SweepSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
