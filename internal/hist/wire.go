package hist

import (
	"encoding/json"
	"fmt"
)

// Wire encoding.
//
// The fleet ships histograms from workers back to the coordinator, and the
// coordinator merges them exactly as if the jobs had run locally — so the
// wire form must round-trip a Hist without losing a single bucket count.
// The encoding is sparse: only non-empty buckets travel, as [index, count]
// pairs in ascending index order, so a typical latency histogram (a few
// dozen occupied buckets out of ~1900) costs a few hundred bytes. count,
// sum, min and max are carried explicitly — min/max are tracked exactly,
// not derivable from bucket bounds. All fields are uint64 and encoding/json
// emits and parses integer literals directly, so the round trip is exact
// over the full range.

// wireHist is the serialized form of a Hist.
type wireHist struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Min     uint64      `json:"min"`
	Max     uint64      `json:"max"`
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram in the sparse wire form.
func (h *Hist) MarshalJSON() ([]byte, error) {
	w := wireHist{Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
	if h != nil {
		for i, c := range h.counts {
			if c != 0 {
				w.Buckets = append(w.Buckets, [2]uint64{uint64(i), c})
			}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the sparse wire form, replacing the receiver's
// contents. The decoded histogram is indistinguishable from the one that
// was encoded: same buckets, same count/sum/min/max, so merges and
// quantiles behave identically.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var w wireHist
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*h = Hist{count: w.Count, sum: w.Sum, min: w.Min, max: w.Max}
	for _, b := range w.Buckets {
		if b[0] >= numBuckets {
			return fmt.Errorf("hist: wire bucket index %d out of range (max %d)", b[0], numBuckets-1)
		}
		h.counts[b[0]] = b[1]
	}
	return nil
}

// metricByName inverts the metric name table for decoding.
var metricByName = func() map[string]Metric {
	m := make(map[string]Metric, NumMetrics)
	for i := Metric(0); i < NumMetrics; i++ {
		m[i.String()] = i
	}
	return m
}()

// MarshalJSON encodes the collector as a name-keyed object of non-empty
// histograms. encoding/json sorts map keys, so the bytes are deterministic.
func (c *Collector) MarshalJSON() ([]byte, error) {
	out := make(map[string]*Hist)
	if c != nil {
		for m := Metric(0); m < NumMetrics; m++ {
			if h := &c.h[m]; h.Count() > 0 {
				out[m.String()] = h
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a name-keyed collector, replacing the receiver's
// contents. Unknown metric names are an error: a coordinator and its
// workers must agree on the instrumented set.
func (c *Collector) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*c = Collector{}
	for name, msg := range raw {
		m, ok := metricByName[name]
		if !ok {
			return fmt.Errorf("hist: unknown wire metric %q", name)
		}
		if err := json.Unmarshal(msg, &c.h[m]); err != nil {
			return fmt.Errorf("hist: metric %q: %w", name, err)
		}
	}
	return nil
}

// wireSet is the serialized form of a Set.
type wireSet struct {
	Cores []*Collector `json:"cores"`
	Net   *Collector   `json:"net"`
}

// MarshalJSON encodes the per-core collectors and the interconnect
// collector.
func (s *Set) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(wireSet{Cores: s.cores, Net: s.net})
}

// UnmarshalJSON decodes a Set, replacing the receiver's contents. The
// decoded set has the encoded set's shape, so Set.Merge across the wire
// behaves exactly like a local merge.
func (s *Set) UnmarshalJSON(data []byte) error {
	var w wireSet
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.cores = w.Cores
	for i, c := range s.cores {
		if c == nil {
			s.cores[i] = NewCollector()
		}
	}
	s.net = w.Net
	if s.net == nil {
		s.net = NewCollector()
	}
	return nil
}
