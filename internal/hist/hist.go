// Package hist provides the allocation-free, log-bucketed latency
// histograms behind the simulator's distribution-level metrics.
//
// The paper's cost argument (Section IV) is about where cycles go — SLF
// forwarding latency, gate-closed stalls, squash refill windows, remote
// coherence round trips — and machine-wide averages hide exactly the tails
// that argument rests on. A Hist buckets uint64 cycle counts HDR-style:
// exact buckets below 2*subCount, then 2^subBits sub-buckets per binary
// order of magnitude, bounding the relative error of any reported quantile
// to ~3% while covering the full uint64 range with a fixed array.
//
// Recording never allocates (the bucket array is part of the struct), and
// two histograms merge by adding their bucket arrays, so per-core
// histograms merge into machine histograms and machine histograms merge
// across runner jobs without losing any percentile: merging N histograms
// is exactly equivalent to one histogram fed all N sample streams.
package hist

import (
	"math"
	"math/bits"
)

const (
	// subBits sets the resolution: 2^subBits sub-buckets per power of two,
	// i.e. a worst-case relative quantile error of 1/2^subBits ≈ 3%.
	subBits  = 5
	subCount = 1 << subBits
	// numBuckets covers the full uint64 range: values below 2*subCount get
	// exact unit buckets, every further binary order of magnitude gets
	// subCount log-spaced buckets.
	numBuckets = (64 - subBits + 1) * subCount
)

// bucketIndex maps a value to its bucket. Values below 2*subCount map
// exactly (shift 0); above, the top subBits+1 significand bits select the
// bucket within the value's binary order of magnitude.
func bucketIndex(v uint64) int {
	shift := bits.Len64(v) - subBits - 1
	if shift <= 0 {
		return int(v)
	}
	return shift*subCount + int(v>>uint(shift))
}

// bucketBound returns the largest value that maps to bucket i — the value
// reported for any quantile that lands in the bucket.
func bucketBound(i int) uint64 {
	if i < 2*subCount {
		return uint64(i)
	}
	shift := uint(i/subCount - 1)
	base := uint64(i) - uint64(shift)*subCount
	return ((base + 1) << shift) - 1
}

// Hist is a log-bucketed histogram of uint64 samples (cycle counts). The
// zero value is ready to use; recording is allocation-free. A Hist is not
// safe for concurrent use — like the machines that feed it, each simulation
// owns its histograms and merges happen after the fact.
type Hist struct {
	counts [numBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// Record adds one sample.
func (h *Hist) Record(v uint64) { h.RecordN(v, 1) }

// RecordN adds n samples of value v.
func (h *Hist) RecordN(v, n uint64) {
	if n == 0 {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)] += n
	h.count += n
	h.sum += v * n
}

// Merge folds o into h. Merging is exact: the result is indistinguishable
// from a histogram that recorded both sample streams directly.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket holding the ceil(q*count)-th sample, clamped to the exactly
// tracked min and max. Empty histograms report 0.
func (h *Hist) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := bucketBound(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Summary is the fixed percentile digest every exporter reports.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summarize digests the histogram into the reported percentiles.
func (h *Hist) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
