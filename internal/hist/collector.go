package hist

import "fmt"

// Metric identifies one instrumented latency distribution. Every metric is
// measured in cycles.
type Metric uint8

// The instrumented distributions.
const (
	// LoadSLF: latency of loads satisfied by store-to-load forwarding.
	LoadSLF Metric = iota
	// LoadL1 / LoadL2 / LoadL3: load completion latency when the request
	// was served by the given cache level.
	LoadL1
	LoadL2
	LoadL3
	// LoadRemote: load completion latency when the directory forwarded the
	// request to a remote owner core (the remote-coherence round trip).
	LoadRemote
	// LoadMem: load completion latency on a full miss to main memory.
	LoadMem
	// NoCControl / NoCData: per-message-class interconnect delivery latency
	// (including jitter).
	NoCControl
	NoCData
	// GateClosed: duration of each retire-gate closed episode, from the
	// retiring SLF load that closed it to the store write that reopened it.
	GateClosed
	// SBResidency: cycles each store spent in the store buffer, from
	// retirement to its memory-order insertion (L1 write).
	SBResidency
	// SquashRefill: per-squash cost, the cycles dispatch stays blocked from
	// the squash to the end of its refill window.
	SquashRefill
	// NumMetrics bounds the metric space; a Collector holds one histogram
	// per metric.
	NumMetrics
)

var metricNames = [...]string{
	LoadSLF:      "load-slf",
	LoadL1:       "load-l1",
	LoadL2:       "load-l2",
	LoadL3:       "load-l3",
	LoadRemote:   "load-remote",
	LoadMem:      "load-mem",
	NoCControl:   "noc-control",
	NoCData:      "noc-data",
	GateClosed:   "gate-closed",
	SBResidency:  "sb-residency",
	SquashRefill: "squash-refill",
}

// String names the metric as it appears in exported tables.
func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// Collector holds one histogram per metric. Like obs.CoreTracer it is the
// nil-checked sink a core (or the hierarchy, or the NoC) stores: a nil
// Collector means histograms are disabled and every hook is one never-taken
// branch. A Collector is single-owner and not safe for concurrent use.
type Collector struct {
	h [NumMetrics]Hist
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Observe records one sample of metric m. The receiver must be non-nil —
// call sites nil-check the collector pointer, keeping the disabled path
// free.
func (c *Collector) Observe(m Metric, v uint64) { c.h[m].Record(v) }

// H returns metric m's histogram (nil-safe, for reporting).
func (c *Collector) H(m Metric) *Hist {
	if c == nil {
		return nil
	}
	return &c.h[m]
}

// Summaries returns the percentile summary of every metric with at least one
// sample, keyed by metric name — the JSON shape of a collector (nil-safe).
func (c *Collector) Summaries() map[string]Summary {
	out := make(map[string]Summary)
	if c == nil {
		return out
	}
	for m := Metric(0); m < NumMetrics; m++ {
		if h := &c.h[m]; h.Count() > 0 {
			out[m.String()] = h.Summarize()
		}
	}
	return out
}

// Merge folds o's histograms into c, metric by metric.
func (c *Collector) Merge(o *Collector) {
	if o == nil {
		return
	}
	for m := range c.h {
		c.h[m].Merge(&o.h[m])
	}
}

// Set is one machine's histogram sinks: a collector per core plus one for
// the interconnect (whose messages are not attributable to a single core).
type Set struct {
	cores []*Collector
	net   *Collector
}

// NewSet builds the sinks for a machine with the given core count.
func NewSet(cores int) *Set {
	s := &Set{cores: make([]*Collector, cores), net: NewCollector()}
	for i := range s.cores {
		s.cores[i] = NewCollector()
	}
	return s
}

// Core returns core i's collector, or nil when the set is nil — the pointer
// a core stores and nil-checks in its hooks.
func (s *Set) Core(i int) *Collector {
	if s == nil {
		return nil
	}
	return s.cores[i]
}

// Net returns the interconnect collector (nil when the set is nil).
func (s *Set) Net() *Collector {
	if s == nil {
		return nil
	}
	return s.net
}

// Cores reports the number of per-core collectors.
func (s *Set) Cores() int {
	if s == nil {
		return 0
	}
	return len(s.cores)
}

// Merged returns a fresh collector merging every core and the interconnect:
// the machine-level view.
func (s *Set) Merged() *Collector {
	m := NewCollector()
	if s == nil {
		return m
	}
	for _, c := range s.cores {
		m.Merge(c)
	}
	m.Merge(s.net)
	return m
}

// Merge folds o into s core by core; the sets must have the same shape.
// This is how litmus iterations and runner jobs of the same machine
// configuration aggregate into one distribution.
func (s *Set) Merge(o *Set) error {
	if o == nil {
		return nil
	}
	if len(o.cores) != len(s.cores) {
		return fmt.Errorf("hist: cannot merge a %d-core set into a %d-core set",
			len(o.cores), len(s.cores))
	}
	for i, c := range s.cores {
		c.Merge(o.cores[i])
	}
	s.net.Merge(o.net)
	return nil
}
