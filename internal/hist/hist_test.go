package hist

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// TestBucketIndexBounds: every uint64 maps inside the bucket array, and the
// bucket's bound is never below the value's bucket floor.
func TestBucketIndexBounds(t *testing.T) {
	vals := []uint64{0, 1, subCount - 1, subCount, 2*subCount - 1, 2 * subCount,
		63, 64, 65, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, i, numBuckets)
		}
		if ub := bucketBound(i); ub < v {
			t.Errorf("bucketBound(bucketIndex(%d)) = %d < value", v, ub)
		}
	}
}

// TestBucketRelativeError: the bucket upper bound overestimates a value by
// at most one part in subCount (the HDR resolution guarantee).
func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 100000; n++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		ub := bucketBound(bucketIndex(v))
		if ub < v {
			t.Fatalf("upper bound %d below value %d", ub, v)
		}
		// err <= v / subCount, conservatively allowing the +1 of the bound.
		if float64(ub-v) > float64(v)/subCount+1 {
			t.Fatalf("value %d bucketed at %d: relative error too large", v, ub)
		}
	}
}

// TestBucketMonotone: bucket indices and bounds are monotone in the value,
// so quantiles are order-consistent.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
	for i := 1; i < numBuckets; i++ {
		if bucketBound(i) <= bucketBound(i-1) {
			t.Fatalf("bucketBound not strictly increasing at %d", i)
		}
	}
}

// TestMergeEqualsSingle is the satellite property test: merging per-core
// histograms must be exactly equivalent to one histogram fed all samples —
// same count, sum, min, max and every reported percentile.
func TestMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		cores := 1 + rng.Intn(8)
		parts := make([]*Hist, cores)
		for i := range parts {
			parts[i] = &Hist{}
		}
		single := &Hist{}
		n := rng.Intn(5000)
		for s := 0; s < n; s++ {
			// Mix magnitudes: exact region, mid-range and heavy tail.
			v := rng.Uint64() >> uint(rng.Intn(64))
			parts[rng.Intn(cores)].Record(v)
			single.Record(v)
		}
		merged := &Hist{}
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Count() != single.Count() || merged.Sum() != single.Sum() {
			t.Fatalf("trial %d: count/sum diverge: %d/%d vs %d/%d",
				trial, merged.Count(), merged.Sum(), single.Count(), single.Sum())
		}
		if merged.Min() != single.Min() || merged.Max() != single.Max() {
			t.Fatalf("trial %d: min/max diverge", trial)
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			if m, s := merged.Quantile(q), single.Quantile(q); m != s {
				t.Fatalf("trial %d: q%.3f diverges: merged %d vs single %d", trial, q, m, s)
			}
		}
		if merged.Summarize() != single.Summarize() {
			t.Fatalf("trial %d: summaries diverge", trial)
		}
	}
}

// TestQuantileExactRegion: below 2*subCount buckets are exact, so quantiles
// of small samples are exact order statistics (by bucket upper bound).
func TestQuantileExactRegion(t *testing.T) {
	h := &Hist{}
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 of 1..100 = %d, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 of 1..100 = %d, want 99", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 of 1..100 = %d, want 100", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 of 1..100 = %d, want 1", got)
	}
}

// TestQuantileClamped: reported quantiles never leave [min, max] even when
// the containing bucket's bound does.
func TestQuantileClamped(t *testing.T) {
	h := &Hist{}
	h.Record(1 << 33) // bucket bound overshoots the single sample
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1<<33 {
			t.Errorf("single-sample q%.2f = %d, want %d", q, got, uint64(1)<<33)
		}
	}
}

// TestEmptyAndNil: the zero value and nil receivers are safe and report
// zeros.
func TestEmptyAndNil(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram reports nonzero digests")
	}
	var nilH *Hist
	if nilH.Count() != 0 || nilH.Quantile(0.9) != 0 || nilH.Max() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram reports nonzero digests")
	}
	h.Merge(nil)
	h.Merge(&Hist{})
	if h.Count() != 0 {
		t.Error("merging empties changed the histogram")
	}
}

// TestRecordN: weighted recording matches repeated recording.
func TestRecordN(t *testing.T) {
	a, b := &Hist{}, &Hist{}
	a.RecordN(37, 1000)
	for i := 0; i < 1000; i++ {
		b.Record(37)
	}
	if a.Summarize() != b.Summarize() {
		t.Errorf("RecordN diverges from repeated Record: %+v vs %+v", a.Summarize(), b.Summarize())
	}
	a.RecordN(5, 0)
	if a.Count() != 1000 {
		t.Error("RecordN with n=0 recorded something")
	}
}

// TestCollectorMergeAndSet: collectors merge metric-by-metric and sets
// merge core-by-core; shape mismatches are rejected.
func TestCollectorMergeAndSet(t *testing.T) {
	s := NewSet(2)
	s.Core(0).Observe(LoadL1, 4)
	s.Core(1).Observe(LoadL1, 8)
	s.Net().Observe(NoCControl, 6)

	m := s.Merged()
	if got := m.H(LoadL1).Count(); got != 2 {
		t.Errorf("merged load-l1 count = %d, want 2", got)
	}
	if got := m.H(NoCControl).Count(); got != 1 {
		t.Errorf("merged noc-control count = %d, want 1", got)
	}

	o := NewSet(2)
	o.Core(0).Observe(LoadL1, 16)
	if err := s.Merge(o); err != nil {
		t.Fatal(err)
	}
	if got := s.Core(0).H(LoadL1).Count(); got != 2 {
		t.Errorf("set merge lost samples: count = %d, want 2", got)
	}
	if err := s.Merge(NewSet(3)); err == nil {
		t.Error("merging mismatched core counts did not error")
	}

	var nilSet *Set
	if nilSet.Core(0) != nil || nilSet.Net() != nil || nilSet.Cores() != 0 {
		t.Error("nil set accessors are not nil-safe")
	}
	if nilSet.Merged().H(LoadL1).Count() != 0 {
		t.Error("nil set merged view is not empty")
	}
}

// TestMetricNames: every metric has a distinct printable name (exporters
// key tables on them).
func TestMetricNames(t *testing.T) {
	seen := map[string]bool{}
	for m := Metric(0); m < NumMetrics; m++ {
		n := m.String()
		if n == "" || seen[n] {
			t.Errorf("metric %d has empty or duplicate name %q", m, n)
		}
		seen[n] = true
	}
}

// TestHighBitLen sanity-checks the index math against the documented
// geometry: the top bucket holds MaxUint64.
func TestHighBitLen(t *testing.T) {
	i := bucketIndex(math.MaxUint64)
	if i != numBuckets-1 {
		t.Errorf("MaxUint64 lands in bucket %d, want %d", i, numBuckets-1)
	}
	if got := bits.Len64(math.MaxUint64); got != 64 {
		t.Fatalf("bits.Len64(MaxUint64) = %d", got)
	}
}
