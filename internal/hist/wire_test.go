package hist

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// fillHist records a deterministic pseudo-random sample stream.
func fillHist(h *Hist, seed uint64, n int) {
	x := seed
	for i := 0; i < n; i++ {
		// splitmix64 step, then take a value spanning many orders of
		// magnitude so buckets across the whole range are exercised.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		h.Record(z >> (z % 60))
	}
}

// TestHistWireRoundTrip proves the wire form is lossless: every bucket,
// count, sum, min and max survives encode/decode, so quantiles and merges
// are identical on both sides.
func TestHistWireRoundTrip(t *testing.T) {
	var h Hist
	fillHist(&h, 42, 10_000)
	h.Record(0)
	h.Record(math.MaxUint64)

	buf, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("hist did not round-trip: %+v vs %+v", back.Summarize(), h.Summarize())
	}

	// Re-encoding the decoded histogram must reproduce the exact bytes —
	// the coordinator may forward what a worker sent.
	buf2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("re-encoded bytes differ:\n%s\nvs\n%s", buf, buf2)
	}
}

func TestHistWireEmpty(t *testing.T) {
	var h Hist
	buf, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("empty hist did not round-trip: %q", buf)
	}
}

func TestHistWireRejectsBadBucket(t *testing.T) {
	var h Hist
	if err := json.Unmarshal([]byte(`{"count":1,"buckets":[[999999,1]]}`), &h); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

// TestSetWireRoundTrip round-trips a full machine set and checks the merged
// summaries — what the coordinator reports — are identical to the local
// ones, and that a decoded set merges into an aggregate exactly like the
// original would have.
func TestSetWireRoundTrip(t *testing.T) {
	s := NewSet(4)
	for i := 0; i < 4; i++ {
		for m := Metric(0); m < NumMetrics; m += 2 {
			fillHist(&s.Core(i).h[m], uint64(i)*1000+uint64(m), 500)
		}
	}
	fillHist(&s.Net().h[NoCControl], 7, 300)

	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cores() != s.Cores() {
		t.Fatalf("cores = %d, want %d", back.Cores(), s.Cores())
	}
	for i := 0; i < s.Cores(); i++ {
		if *back.Core(i) != *s.Core(i) {
			t.Fatalf("core %d collector did not round-trip", i)
		}
	}
	if *back.Net() != *s.Net() {
		t.Fatal("net collector did not round-trip")
	}

	// The decoded set must aggregate exactly like the original: merge both
	// into fresh collectors and compare the full state, not just summaries.
	local, remote := NewCollector(), NewCollector()
	local.Merge(s.Merged())
	remote.Merge(back.Merged())
	if *local != *remote {
		t.Fatal("merged collectors differ after wire round-trip")
	}
}

func TestCollectorWireRejectsUnknownMetric(t *testing.T) {
	var c Collector
	if err := json.Unmarshal([]byte(`{"no-such-metric":{"count":0}}`), &c); err == nil {
		t.Fatal("unknown metric name accepted")
	}
}
