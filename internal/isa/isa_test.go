package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsAndStrings(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Load(1, 0x100), "ld r1, [0x100]"},
		{StoreImm(0x200, 7), "st [0x200], 7"},
		{StoreReg(0x200, 3), "st [0x200], r3"},
		{Fence(), "fence"},
		{Nop(), "nop"},
		{RMW(2, 0x300, 1), "rmw r2, [0x300]"},
		{Branch(0x40, true), "br taken=true"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.HasPrefix(ALU(1, 2, 3).String(), "alu") {
		t.Error("ALU mnemonic")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || !OpRMW.IsMem() {
		t.Error("memory ops misclassified")
	}
	if OpALU.IsMem() || OpBranch.IsMem() || OpFence.IsMem() || OpNop.IsMem() {
		t.Error("non-memory ops misclassified")
	}
}

func TestEffSize(t *testing.T) {
	if Load(1, 0).EffSize() != 8 {
		t.Error("default size must be 8")
	}
	in := Inst{Op: OpLoad, Size: 4}
	if in.EffSize() != 4 {
		t.Error("explicit size lost")
	}
}

func TestProgramCounts(t *testing.T) {
	p := Program{Load(1, 0), StoreImm(8, 1), RMW(2, 16, 1), Branch(0, true), Nop()}
	l, s, b := p.Counts()
	if l != 2 || s != 2 || b != 1 {
		t.Errorf("counts = %d %d %d, want 2 2 1", l, s, b)
	}
}

func TestValidate(t *testing.T) {
	good := Program{Load(1, 0x100), StoreImm(0x108, 5), ALU(2, 1, 1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	bad := []Program{
		{Inst{Op: OpLoad, Dst: 40, Src1: RegNone, Src2: RegNone}},             // bad dst
		{Inst{Op: OpALU, Dst: 1, Src1: 99, Src2: RegNone}},                    // bad src1
		{Inst{Op: OpALU, Dst: 1, Src1: RegNone, Src2: 99}},                    // bad src2
		{Inst{Op: OpLoad, Dst: 1, Src1: RegNone, Src2: RegNone, Addr: 0x101}}, // misaligned
		{Inst{Op: OpLoad, Dst: 1, Src1: RegNone, Src2: RegNone, Size: 3}},     // bad size
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

// TestConstructorsAlwaysValid: every constructor with in-range arguments
// produces an instruction that validates.
func TestConstructorsAlwaysValid(t *testing.T) {
	f := func(dst, src uint8, addrWords uint32, v uint64) bool {
		d := Reg(dst % NumRegs)
		s := Reg(src % NumRegs)
		addr := uint64(addrWords) * 8
		p := Program{
			Load(d, addr),
			StoreImm(addr, v),
			StoreReg(addr, s),
			ALU(d, s, s),
			ALUImm(d, s, v, uint8(v%32)),
			Fence(),
			RMW(d, addr, 1),
			Branch(addr, v%2 == 0),
			Nop(),
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
