// Package isa defines the trace-driven micro-operation ISA executed by the
// out-of-order core model.
//
// The simulator is trace driven: a Program is a per-thread sequence of
// micro-ops with explicit register dependences and, for memory operations,
// explicit virtual addresses. Branch outcomes are part of the trace; the
// branch predictor decides only whether the front end predicted them
// correctly. This is the same level of abstraction used by the paper's
// Sniper-driven in-house core model.
package isa

import "fmt"

// Op enumerates micro-operation kinds.
type Op uint8

// Micro-operation kinds.
const (
	// OpALU is a register-to-register operation with a fixed latency.
	OpALU Op = iota
	// OpLoad reads Size bytes from Addr into Dst.
	OpLoad
	// OpStore writes the value of Src1 (or Imm if Src1 == RegNone) of Size
	// bytes to Addr.
	OpStore
	// OpBranch is a conditional branch; Taken records the trace outcome.
	OpBranch
	// OpFence is a full memory fence: it drains the store buffer and does
	// not retire until all earlier memory operations are performed. mfence
	// on x86, a serializing operation on 370.
	OpFence
	// OpRMW is an atomic read-modify-write (e.g. lock xadd, xchg). It acts
	// as a load and a store to Addr and has fence semantics on TSO
	// machines.
	OpRMW
	// OpNop occupies a ROB slot for one cycle and has no dependences.
	OpNop
)

var opNames = [...]string{
	OpALU:    "alu",
	OpLoad:   "ld",
	OpStore:  "st",
	OpBranch: "br",
	OpFence:  "fence",
	OpRMW:    "rmw",
	OpNop:    "nop",
}

// String returns the mnemonic for the operation kind.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the operation accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore || o == OpRMW }

// Reg identifies an architectural register in the micro-ISA. The register
// file is small; traces only need registers to express dependences and to
// observe litmus outcomes.
type Reg uint8

// RegNone marks an unused register operand.
const RegNone Reg = 0xFF

// NumRegs is the number of architectural registers.
const NumRegs = 32

// Inst is one micro-operation of a trace.
type Inst struct {
	Op   Op
	Dst  Reg    // destination register (RegNone if none)
	Src1 Reg    // first source (store data for OpStore/OpRMW)
	Src2 Reg    // second source (RegNone if none)
	Addr uint64 // virtual address for memory ops
	Size uint8  // access size in bytes (memory ops); 0 defaults to 8
	Imm  uint64 // immediate: store data when Src1==RegNone, ALU constant
	Lat  uint8  // extra execution latency for OpALU beyond 1 cycle
	// Taken is the trace outcome for OpBranch.
	Taken bool
	// PC is the (synthetic) program counter, used by the branch and
	// memory-dependence predictors for indexing.
	PC uint64
}

// EffSize returns the access size, defaulting to 8 bytes.
func (in Inst) EffSize() uint8 {
	if in.Size == 0 {
		return 8
	}
	return in.Size
}

// String renders the instruction in a compact assembly-like form.
func (in Inst) String() string {
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("ld r%d, [%#x]", in.Dst, in.Addr)
	case OpStore:
		if in.Src1 == RegNone {
			return fmt.Sprintf("st [%#x], %d", in.Addr, in.Imm)
		}
		return fmt.Sprintf("st [%#x], r%d", in.Addr, in.Src1)
	case OpRMW:
		return fmt.Sprintf("rmw r%d, [%#x]", in.Dst, in.Addr)
	case OpBranch:
		return fmt.Sprintf("br taken=%v", in.Taken)
	case OpFence:
		return "fence"
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("alu r%d, r%d, r%d", in.Dst, in.Src1, in.Src2)
	}
}

// Program is a finite per-thread instruction sequence.
type Program []Inst

// Counts reports the number of loads, stores and branches in the program.
// OpRMW counts as both a load and a store.
func (p Program) Counts() (loads, stores, branches int) {
	for _, in := range p {
		switch in.Op {
		case OpLoad:
			loads++
		case OpStore:
			stores++
		case OpRMW:
			loads++
			stores++
		case OpBranch:
			branches++
		}
	}
	return
}

// Validate checks structural well-formedness of the program: register
// indices in range and memory operations carrying addresses aligned to their
// size.
func (p Program) Validate() error {
	for i, in := range p {
		if in.Dst != RegNone && in.Dst >= NumRegs {
			return fmt.Errorf("isa: inst %d (%s): dst register %d out of range", i, in, in.Dst)
		}
		if in.Src1 != RegNone && in.Src1 >= NumRegs {
			return fmt.Errorf("isa: inst %d (%s): src1 register %d out of range", i, in, in.Src1)
		}
		if in.Src2 != RegNone && in.Src2 >= NumRegs {
			return fmt.Errorf("isa: inst %d (%s): src2 register %d out of range", i, in, in.Src2)
		}
		if in.Op.IsMem() {
			sz := uint64(in.EffSize())
			if sz != 1 && sz != 2 && sz != 4 && sz != 8 {
				return fmt.Errorf("isa: inst %d (%s): unsupported size %d", i, in, sz)
			}
			if in.Addr%sz != 0 {
				return fmt.Errorf("isa: inst %d (%s): address %#x misaligned for size %d", i, in, in.Addr, sz)
			}
		}
	}
	return nil
}

// Convenience constructors used by litmus tests and workload generators.

// Load builds a load of 8 bytes from addr into dst.
func Load(dst Reg, addr uint64) Inst {
	return Inst{Op: OpLoad, Dst: dst, Src1: RegNone, Src2: RegNone, Addr: addr}
}

// StoreImm builds a store of the 8-byte immediate v to addr.
func StoreImm(addr uint64, v uint64) Inst {
	return Inst{Op: OpStore, Dst: RegNone, Src1: RegNone, Src2: RegNone, Addr: addr, Imm: v}
}

// StoreReg builds a store of register src to addr.
func StoreReg(addr uint64, src Reg) Inst {
	return Inst{Op: OpStore, Dst: RegNone, Src1: src, Src2: RegNone, Addr: addr}
}

// ALU builds a single-cycle register operation dst = f(src1, src2).
func ALU(dst, src1, src2 Reg) Inst {
	return Inst{Op: OpALU, Dst: dst, Src1: src1, Src2: src2}
}

// ALUImm builds dst = src1 + imm with the given extra latency.
func ALUImm(dst, src1 Reg, imm uint64, lat uint8) Inst {
	return Inst{Op: OpALU, Dst: dst, Src1: src1, Src2: RegNone, Imm: imm, Lat: lat}
}

// Fence builds a full memory fence.
func Fence() Inst {
	return Inst{Op: OpFence, Dst: RegNone, Src1: RegNone, Src2: RegNone}
}

// RMW builds an atomic fetch-and-add of imm at addr, old value into dst.
func RMW(dst Reg, addr uint64, imm uint64) Inst {
	return Inst{Op: OpRMW, Dst: dst, Src1: RegNone, Src2: RegNone, Addr: addr, Imm: imm}
}

// Branch builds a conditional branch with the given trace outcome.
func Branch(pc uint64, taken bool) Inst {
	return Inst{Op: OpBranch, Dst: RegNone, Src1: RegNone, Src2: RegNone, PC: pc, Taken: taken}
}

// Nop builds a no-op.
func Nop() Inst {
	return Inst{Op: OpNop, Dst: RegNone, Src1: RegNone, Src2: RegNone}
}
