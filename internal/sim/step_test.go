package sim

import (
	"reflect"
	"testing"

	"sesa/internal/config"
	"sesa/internal/obs"
	"sesa/internal/stats"
	"sesa/internal/trace"
)

// runTimedOut runs a workload far past its cycle budget under the given step
// mode with interval metrics attached, and returns the machine after the
// timeout path has finished it.
func runTimedOut(t *testing.T, mode config.StepMode, maxCycles uint64) *Machine {
	t.Helper()
	p, _ := trace.Lookup("barnes")
	cfg := config.Default(config.X86)
	cfg.StepMode = mode
	m := newMachine(t, cfg, "barnes")
	w := trace.Build(p, cfg.Cores, 5_000, 42)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	m.AttachTracer(obs.New(cfg.Cores, obs.Options{MetricsInterval: 64}))
	err := m.Run(maxCycles)
	if _, ok := err.(*TimeoutError); !ok {
		t.Fatalf("Run returned %T (%v), want *TimeoutError", err, err)
	}
	return m
}

// TestStepModesAgreeOnTimeout pins down the timeout exit: both steppers must
// drain residual events, capture the NoC traffic and emit the closing
// metrics sample, leaving identical statistics at the cut-off cycle. The
// bound is deliberately not a multiple of the metrics interval so the
// closing sample only exists if the finish path emits it.
func TestStepModesAgreeOnTimeout(t *testing.T) {
	const maxCycles = 1000 // not a multiple of the 64-cycle interval
	naive := runTimedOut(t, config.StepNaive, maxCycles)
	skip := runTimedOut(t, config.StepSkip, maxCycles)

	if naive.Stats.Cycles != maxCycles || skip.Stats.Cycles != maxCycles {
		t.Errorf("Stats.Cycles = %d (naive), %d (skip), want %d",
			naive.Stats.Cycles, skip.Stats.Cycles, maxCycles)
	}
	if !reflect.DeepEqual(naive.Stats, skip.Stats) {
		t.Errorf("timed-out statistics differ:\nnaive: %+v\nskip:  %+v", naive.Stats, skip.Stats)
	}
	if naive.Stats.NoC == (stats.NoCTraffic{}) {
		t.Error("timed-out run captured no NoC traffic; finish path must snapshot the network")
	}

	for _, m := range []*Machine{naive, skip} {
		samples := m.Tracer().Metrics().Samples
		if len(samples) == 0 {
			t.Fatal("no metric samples on the timeout path")
		}
		if last := samples[len(samples)-1]; last.Cycle != maxCycles {
			t.Errorf("final sample at cycle %d, want the closing sample at %d", last.Cycle, maxCycles)
		}
	}
	mn, ms := naive.Tracer().Metrics(), skip.Tracer().Metrics()
	if !reflect.DeepEqual(mn.Samples, ms.Samples) {
		t.Error("timeout metrics series differ between step modes")
	}
}
