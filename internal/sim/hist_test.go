package sim

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/trace"
)

// runWithHists runs a generated workload with histograms attached and
// returns the machine.
func runWithHists(t *testing.T, model config.Model, bench string, n int) *Machine {
	t.Helper()
	p, ok := trace.Lookup(bench)
	if !ok {
		t.Fatalf("unknown profile %q", bench)
	}
	cfg := config.Default(model)
	m := newMachine(t, cfg, bench)
	w := trace.Build(p, cfg.Cores, n, 42)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	m.AttachHists(hist.NewSet(cfg.Cores))
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestHistCountInvariants pins the histogram sample counts to the
// independently maintained scalar counters: every hook fires exactly once
// per counted event.
func TestHistCountInvariants(t *testing.T) {
	m := runWithHists(t, config.SLFSoSKey370, "barnes", 5_000)
	merged := m.Hists().Merged()
	st := m.Stats.Total()
	mem := m.Hierarchy().Stats

	// Every hierarchy load completion records exactly one service-level
	// sample. (SLF loads never reach the hierarchy; prefetches are not
	// recorded.)
	var served uint64
	for _, lvl := range []hist.Metric{hist.LoadL1, hist.LoadL2, hist.LoadL3, hist.LoadRemote, hist.LoadMem} {
		served += merged.H(lvl).Count()
	}
	if served != mem.LoadsCompleted {
		t.Errorf("service-level samples %d != LoadsCompleted %d", served, mem.LoadsCompleted)
	}

	// Every delivered NoC message records one per-class latency sample,
	// and the per-kind flit split sums to the total.
	noc := m.Network().Traffic
	if got := merged.H(hist.NoCControl).Count(); got != noc.ControlMsgs {
		t.Errorf("noc-control samples %d != ControlMsgs %d", got, noc.ControlMsgs)
	}
	if got := merged.H(hist.NoCData).Count(); got != noc.DataMsgs {
		t.Errorf("noc-data samples %d != DataMsgs %d", got, noc.DataMsgs)
	}
	if noc.ControlFlits+noc.DataFlits != noc.Flits {
		t.Errorf("flit split %d+%d != total %d", noc.ControlFlits, noc.DataFlits, noc.Flits)
	}
	// And the traffic is mirrored into the machine stats (satellite view).
	if m.Stats.NoC.Msgs() != noc.ControlMsgs+noc.DataMsgs {
		t.Errorf("stats NoC msgs %d != network %d", m.Stats.NoC.Msgs(), noc.ControlMsgs+noc.DataMsgs)
	}
	if m.Stats.NoC.Flits() != noc.Flits {
		t.Errorf("stats NoC flits %d != network %d", m.Stats.NoC.Flits(), noc.Flits)
	}

	// Every gate-closed episode ends in exactly one reopen, which records
	// its duration.
	if got := merged.H(hist.GateClosed).Count(); got != st.GateReopens {
		t.Errorf("gate-closed samples %d != GateReopens %d", got, st.GateReopens)
	}

	// Every squash (speculation or dependence) records one refill sample.
	if got, want := merged.H(hist.SquashRefill).Count(), st.Squashes+st.DepSquashes; got != want {
		t.Errorf("squash-refill samples %d != Squashes+DepSquashes %d", got, want)
	}

	// SLF latency is recorded at issue; squashed-and-reexecuted loads are
	// observed again, so the count can only exceed the retired SLF loads.
	if got := merged.H(hist.LoadSLF).Count(); got < st.SLFLoads {
		t.Errorf("load-slf samples %d < retired SLF loads %d", got, st.SLFLoads)
	}

	// Every retired store resides in the SB between retirement and its L1
	// write, recording exactly one residency sample.
	if got := merged.H(hist.SBResidency).Count(); got != st.RetiredStores {
		t.Errorf("sb-residency samples %d != RetiredStores %d", got, st.RetiredStores)
	}
}

// TestHistDisabledIdentical verifies the nil-hook discipline: attaching
// histograms must not perturb the simulation in any way.
func TestHistDisabledIdentical(t *testing.T) {
	with := runWithHists(t, config.SLFSoSKey370, "ferret", 3_000)

	p, _ := trace.Lookup("ferret")
	cfg := config.Default(config.SLFSoSKey370)
	without := newMachine(t, cfg, "ferret")
	w := trace.Build(p, cfg.Cores, 3_000, 42)
	for c, prog := range w.Programs {
		if err := without.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	if err := without.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if with.Stats.Cycles != without.Stats.Cycles {
		t.Errorf("cycles with hists %d != without %d", with.Stats.Cycles, without.Stats.Cycles)
	}
	wt, wo := with.Stats.Total(), without.Stats.Total()
	if wt != wo {
		t.Errorf("totals differ:\nwith:    %+v\nwithout: %+v", wt, wo)
	}
}

// TestTimeoutError verifies the typed timeout: a machine cut off by its
// cycle bound reports a *TimeoutError carrying the bound.
func TestTimeoutError(t *testing.T) {
	p, _ := trace.Lookup("barnes")
	cfg := config.Default(config.X86)
	m := newMachine(t, cfg, "barnes")
	w := trace.Build(p, cfg.Cores, 5_000, 42)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	err := m.Run(100)
	te, ok := err.(*TimeoutError)
	if !ok {
		t.Fatalf("Run returned %T (%v), want *TimeoutError", err, err)
	}
	if te.MaxCycles != 100 || te.Workload != "barnes" {
		t.Errorf("TimeoutError = %+v", te)
	}
	if m.Stats.Cycles != 100 {
		t.Errorf("timed-out machine reports %d cycles, want 100", m.Stats.Cycles)
	}
}
