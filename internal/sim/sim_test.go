package sim

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/isa"
)

func mustRun(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
}

func newMachine(t *testing.T, cfg config.Config, name string) *Machine {
	t.Helper()
	m, err := New(cfg, name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSingleCoreStraightLine(t *testing.T) {
	for _, model := range config.AllModels() {
		t.Run(model.String(), func(t *testing.T) {
			m := newMachine(t, config.Small(1, model), "straight")
			prog := isa.Program{
				isa.StoreImm(0x1000, 7),
				isa.Load(1, 0x1000),
				isa.ALUImm(2, 1, 5, 0), // r2 = r1 + 5
				isa.StoreReg(0x1008, 2),
				isa.Load(3, 0x1008),
			}
			if err := m.SetProgram(0, prog); err != nil {
				t.Fatal(err)
			}
			mustRun(t, m)
			if got := m.Core(0).RegValue(1); got != 7 {
				t.Errorf("r1 = %d, want 7", got)
			}
			if got := m.Core(0).RegValue(3); got != 12 {
				t.Errorf("r3 = %d, want 12", got)
			}
			if got := m.ReadMemory(0x1008); got != 12 {
				t.Errorf("[0x1008] = %d, want 12", got)
			}
			st := m.Stats.Total()
			if st.RetiredInsts != 5 {
				t.Errorf("retired %d instructions, want 5", st.RetiredInsts)
			}
			// The two loads both hit younger stores in the SQ/SB.
			// Under x86 and the speculative 370 models they are SLF
			// loads; under 370-NoSpec forwarding is forbidden.
			if model == config.NoSpec370 {
				if st.SLFLoads != 0 {
					t.Errorf("370-NoSpec forwarded %d loads, want 0", st.SLFLoads)
				}
				if st.NoSpecWaits == 0 {
					t.Error("370-NoSpec should have counted blanket-enforcement waits")
				}
			} else if st.SLFLoads != 2 {
				t.Errorf("forwarded %d loads, want 2", st.SLFLoads)
			}
		})
	}
}

func TestStoreValueReachesMemory(t *testing.T) {
	m := newMachine(t, config.Small(1, config.X86), "stores")
	var prog isa.Program
	for i := uint64(0); i < 100; i++ {
		prog = append(prog, isa.StoreImm(0x2000+8*i, i*i))
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	for i := uint64(0); i < 100; i++ {
		if got := m.ReadMemory(0x2000 + 8*i); got != i*i {
			t.Fatalf("[%#x] = %d, want %d", 0x2000+8*i, got, i*i)
		}
	}
}

func TestRegisterDependencyChain(t *testing.T) {
	m := newMachine(t, config.Small(1, config.SLFSoSKey370), "chain")
	prog := isa.Program{
		isa.ALUImm(1, isa.RegNone, 1, 0),
	}
	for i := 0; i < 50; i++ {
		prog = append(prog, isa.ALUImm(1, 1, 1, 0)) // r1++
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	if got := m.Core(0).RegValue(1); got != 51 {
		t.Errorf("r1 = %d, want 51", got)
	}
}

func TestTwoCoresProducerConsumer(t *testing.T) {
	// Core 0 publishes data then a flag with a fence between; core 1
	// spins are not expressible in a trace, so it simply loads both after
	// the machine settles; TSO guarantees it can never see flag=1 with
	// data=0 — here we just check the final memory image.
	for _, model := range config.AllModels() {
		m := newMachine(t, config.Small(2, model), "prodcons")
		p0 := isa.Program{
			isa.StoreImm(0x100, 42),
			isa.Fence(),
			isa.StoreImm(0x200, 1),
		}
		p1 := isa.Program{
			isa.Load(1, 0x200),
			isa.Load(2, 0x100),
		}
		if err := m.SetProgram(0, p0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetProgram(1, p1); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		if m.ReadMemory(0x100) != 42 || m.ReadMemory(0x200) != 1 {
			t.Fatalf("%s: memory image wrong: data=%d flag=%d",
				model, m.ReadMemory(0x100), m.ReadMemory(0x200))
		}
		flag := m.Core(1).RegValue(1)
		data := m.Core(1).RegValue(2)
		if flag == 1 && data != 42 {
			t.Errorf("%s: TSO violation: flag=1 but data=%d", model, data)
		}
	}
}

func TestRMWFetchAdd(t *testing.T) {
	for _, model := range config.AllModels() {
		m := newMachine(t, config.Small(2, model), "rmw")
		p := isa.Program{
			isa.RMW(1, 0x300, 1),
			isa.RMW(2, 0x300, 1),
		}
		if err := m.SetProgram(0, p); err != nil {
			t.Fatal(err)
		}
		if err := m.SetProgram(1, p); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		if got := m.ReadMemory(0x300); got != 4 {
			t.Errorf("%s: counter = %d, want 4 (atomicity lost)", model, got)
		}
	}
}

func TestBranchesRetire(t *testing.T) {
	m := newMachine(t, config.Small(1, config.X86), "branches")
	var prog isa.Program
	for i := 0; i < 200; i++ {
		prog = append(prog, isa.Branch(uint64(0x4000+i*4), i%3 == 0))
		prog = append(prog, isa.ALUImm(1, 1, 1, 0))
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	st := m.Stats.Total()
	if st.RetiredInsts != 400 {
		t.Errorf("retired %d, want 400", st.RetiredInsts)
	}
	if st.BranchMispredicts == 0 {
		t.Error("expected some branch mispredictions on an irregular pattern")
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := newMachine(t, config.Small(2, config.SLFSoSKey370), "det")
		p0 := isa.Program{isa.StoreImm(0x40, 1), isa.Load(1, 0x80)}
		p1 := isa.Program{isa.StoreImm(0x80, 1), isa.Load(1, 0x40)}
		if err := m.SetProgram(0, p0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetProgram(1, p1); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		return m.Stats.Cycles, m.Core(0).RegValue(1)<<1 | m.Core(1).RegValue(1)
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, v1, c2, v2)
	}
}

func TestTimeoutRecordsCycles(t *testing.T) {
	m := newMachine(t, config.Small(1, config.X86), "timeout")
	prog := make(isa.Program, 0, 200)
	for i := 0; i < 200; i++ {
		prog = append(prog, isa.ALUImm(1, 1, 1, 10))
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	err := m.Run(30) // far too few cycles for a 200-op dependency chain
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if m.Stats.Cycles == 0 {
		t.Error("timed-out run reports 0 cycles; it must record the cut-off point")
	}
	if m.Stats.Cycles != m.Cycle() {
		t.Errorf("Stats.Cycles = %d, want the machine cycle %d", m.Stats.Cycles, m.Cycle())
	}
}
