// Observability-layer tests live in an external test package: they drive the
// machine through the litmus harness, which itself imports sim.
package sim_test

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/litmus"
	"sesa/internal/obs"
	"sesa/internal/sim"
	"sesa/internal/stats"
	"sesa/internal/trace"
)

// runTracedWorkload runs one generated workload under the model with a
// tracer attached and returns the machine.
func runTracedWorkload(t *testing.T, profile string, model config.Model, n int) *sim.Machine {
	t.Helper()
	p, ok := trace.Lookup(profile)
	if !ok {
		t.Fatalf("unknown profile %q", profile)
	}
	cfg := config.Default(model)
	w := trace.Build(p, cfg.Cores, n, 42)
	m, err := sim.New(cfg, w.Name)
	if err != nil {
		t.Fatal(err)
	}
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	m.AttachTracer(obs.New(cfg.Cores, obs.Options{BufCap: obs.DefaultBufCap, MetricsInterval: 500}))
	if err := m.Run(uint64(n)*200 + 2_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// checkGateInvariant asserts the retire-gate bookkeeping invariant: at the
// end of a completed run every close has been matched by a reopen — the gate
// cannot end a run closed, since its SLF load's forwarding store must
// eventually write to the L1 (the paper's no-deadlock argument, IV-C).
func checkGateInvariant(t *testing.T, name string, st *stats.Machine) {
	t.Helper()
	for i := range st.Cores {
		c := &st.Cores[i]
		if c.GateCloses != c.GateReopens {
			t.Errorf("%s core %d: GateCloses=%d GateReopens=%d — gate left closed",
				name, i, c.GateCloses, c.GateReopens)
		}
	}
}

// TestGateInvariantAcrossLitmusSuite runs every litmus test (with SB
// pressure, which provokes forwarding) under every model and checks the
// close/reopen balance on each iteration's machine.
func TestGateInvariantAcrossLitmusSuite(t *testing.T) {
	for _, test := range litmus.Tests() {
		variant := litmus.WithSBPressure(test, 3)
		for _, model := range config.AllModels() {
			var machines []*sim.Machine
			_, err := litmus.RunTraced(variant, model, 2, 1, func(iter int, m *sim.Machine) {
				machines = append(machines, m)
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", variant.Name, model, err)
			}
			for _, m := range machines {
				checkGateInvariant(t, variant.Name+"/"+model.String(), m.Stats)
			}
		}
	}
}

// TestGateInvariantOnWorkloads checks the same invariant at benchmark scale,
// on a forwarding-heavy profile (x264) and a sharing-heavy one (ocean_cp).
func TestGateInvariantOnWorkloads(t *testing.T) {
	for _, profile := range []string{"x264", "ocean_cp"} {
		for _, model := range config.AllModels() {
			m := runTracedWorkload(t, profile, model, 2000)
			checkGateInvariant(t, profile+"/"+model.String(), m.Stats)
		}
	}
}

// TestTraceCountsMatchStats is the tentpole's acceptance check: the traced
// gate close/reopen event counts equal the statistics counters, and retire /
// squash events line up with the aggregate counts too.
func TestTraceCountsMatchStats(t *testing.T) {
	m := runTracedWorkload(t, "x264", config.SLFSoSKey370, 5000)
	tr := m.Tracer()
	for i := range m.Stats.Cores {
		st := &m.Stats.Cores[i]
		ct := tr.Core(i)
		if got := ct.Count(obs.KGateClose); got != st.GateCloses {
			t.Errorf("core %d: traced gate closes %d != stats %d", i, got, st.GateCloses)
		}
		if got := ct.Count(obs.KGateReopen); got != st.GateReopens {
			t.Errorf("core %d: traced gate reopens %d != stats %d", i, got, st.GateReopens)
		}
		if got := ct.Count(obs.KRetire); got != st.RetiredInsts {
			t.Errorf("core %d: traced retires %d != stats %d", i, got, st.RetiredInsts)
		}
		if got := ct.Count(obs.KSquash); got != st.Squashes+st.DepSquashes {
			t.Errorf("core %d: traced squashes %d != stats %d", i, got, st.Squashes+st.DepSquashes)
		}
		if got := ct.Count(obs.KSLFHit); got < st.SLFLoads {
			// Every retired SLF load issued with a hit; squashed ones may add more.
			t.Errorf("core %d: traced SLF hits %d < retired SLF loads %d", i, got, st.SLFLoads)
		}
	}
	// The SLFSoS-key machine on a forwarding-heavy profile must actually
	// exercise the gate, or this test checks nothing.
	if m.Stats.Total().GateCloses == 0 {
		t.Error("expected gate activity on x264 under 370-SLFSoS-key")
	}
}

// TestMetricsSampledOverRun checks the interval series covers the whole run
// with per-core rows at every boundary.
func TestMetricsSampledOverRun(t *testing.T) {
	m := runTracedWorkload(t, "x264", config.SLFSoSKey370, 2000)
	mt := m.Tracer().Metrics()
	if mt == nil {
		t.Fatal("metrics disabled")
	}
	cores := m.Config().Cores
	if len(mt.Samples) == 0 || len(mt.Samples)%cores != 0 {
		t.Fatalf("got %d samples, want a positive multiple of %d", len(mt.Samples), cores)
	}
	last := mt.Samples[len(mt.Samples)-1]
	if last.Cycle != m.Stats.Cycles {
		t.Errorf("final sample at cycle %d, machine finished at %d", last.Cycle, m.Stats.Cycles)
	}
	var retired float64
	for _, s := range mt.Samples {
		if s.GateClosedFrac < 0 || s.GateClosedFrac > 1 {
			t.Errorf("gate closed fraction %f out of range", s.GateClosedFrac)
		}
		retired += s.IPC * float64(s.Span)
	}
	if want := float64(m.Stats.Total().RetiredInsts); retired < want-0.5 || retired > want+0.5 {
		t.Errorf("integrated IPC gives %.1f retired instructions, stats say %d", retired, m.Stats.Total().RetiredInsts)
	}
}

// TestTracingDoesNotPerturbResults: attaching a tracer must not change a
// single statistic — the observability layer is read-only.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	run := func(attach bool) *stats.Machine {
		p, _ := trace.Lookup("x264")
		cfg := config.Default(config.SLFSoSKey370)
		w := trace.Build(p, cfg.Cores, 2000, 42)
		m, err := sim.New(cfg, w.Name)
		if err != nil {
			t.Fatal(err)
		}
		for c, prog := range w.Programs {
			if err := m.SetProgram(c, prog); err != nil {
				t.Fatal(err)
			}
		}
		if attach {
			m.AttachTracer(obs.New(cfg.Cores, obs.Options{BufCap: 1 << 16, MetricsInterval: 100}))
		}
		if err := m.Run(2_400_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats
	}
	plain, traced := run(false), run(true)
	if plain.Cycles != traced.Cycles {
		t.Errorf("cycles diverge with tracing: %d vs %d", plain.Cycles, traced.Cycles)
	}
	for i := range plain.Cores {
		if plain.Cores[i] != traced.Cores[i] {
			t.Errorf("core %d stats diverge with tracing:\n%+v\nvs\n%+v", i, plain.Cores[i], traced.Cores[i])
		}
	}
}
