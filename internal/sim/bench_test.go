package sim

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/trace"
)

// benchMachine builds a warm machine on the barnes workload: programs
// installed, predictors and tables past their cold-start transient.
func benchMachine(b *testing.B, n int) *Machine {
	return benchMachineModel(b, n, config.X86)
}

// benchMachineModel is benchMachine under an arbitrary consistency policy,
// so the perf-guard can pin the policy indirection itself at 0 allocs/op.
func benchMachineModel(b *testing.B, n int, model config.Model) *Machine {
	b.Helper()
	p, ok := trace.Lookup("barnes")
	if !ok {
		b.Fatal("barnes workload missing")
	}
	cfg := config.Default(model)
	m, err := New(cfg, "barnes")
	if err != nil {
		b.Fatal(err)
	}
	w := trace.Build(p, cfg.Cores, n, 42)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20_000 && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		b.Fatal("workload finished during warmup")
	}
	return m
}

// BenchmarkMachineStepNaive is the hot loop itself: one naive-mode machine
// step — core.Tick on every core plus batched event delivery. The CI
// perf-guard pins its allocs/op at zero.
func BenchmarkMachineStepNaive(b *testing.B) {
	m := benchMachine(b, 300_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Done() {
			b.StopTimer()
			m = benchMachine(b, 300_000)
			b.StartTimer()
		}
		m.Step()
	}
}

// BenchmarkMachineStepNaivePolicy runs the same hot loop under the two
// related-work policies: Louvre's fence bypassing and RCP's invisible
// speculative loads both sit on the per-cycle path, so the perf-guard pins
// them at 0 allocs/op too (the regex `MachineStepNaive` matches the
// sub-benchmarks).
func BenchmarkMachineStepNaivePolicy(b *testing.B) {
	for _, model := range []config.Model{config.Louvre370, config.RCP370} {
		b.Run(model.String(), func(b *testing.B) {
			m := benchMachineModel(b, 300_000, model)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m.Done() {
					b.StopTimer()
					m = benchMachineModel(b, 300_000, model)
					b.StartTimer()
				}
				m.Step()
			}
		})
	}
}

// BenchmarkSkipCyclesReplay is the two-level clock's bulk replay: applying
// one skipped quiescent cycle to every core. The CI perf-guard pins its
// allocs/op at zero.
func BenchmarkSkipCyclesReplay(b *testing.B) {
	m := benchMachine(b, 300_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.bulkTick(1)
	}
}
