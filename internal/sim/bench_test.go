package sim

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/trace"
)

// benchMachine builds a warm machine on the barnes workload: programs
// installed, predictors and tables past their cold-start transient.
func benchMachine(b *testing.B, n int) *Machine {
	b.Helper()
	p, ok := trace.Lookup("barnes")
	if !ok {
		b.Fatal("barnes workload missing")
	}
	cfg := config.Default(config.X86)
	m, err := New(cfg, "barnes")
	if err != nil {
		b.Fatal(err)
	}
	w := trace.Build(p, cfg.Cores, n, 42)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20_000 && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		b.Fatal("workload finished during warmup")
	}
	return m
}

// BenchmarkMachineStepNaive is the hot loop itself: one naive-mode machine
// step — core.Tick on every core plus batched event delivery. The CI
// perf-guard pins its allocs/op at zero.
func BenchmarkMachineStepNaive(b *testing.B) {
	m := benchMachine(b, 300_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Done() {
			b.StopTimer()
			m = benchMachine(b, 300_000)
			b.StartTimer()
		}
		m.Step()
	}
}

// BenchmarkSkipCyclesReplay is the two-level clock's bulk replay: applying
// one skipped quiescent cycle to every core. The CI perf-guard pins its
// allocs/op at zero.
func BenchmarkSkipCyclesReplay(b *testing.B) {
	m := benchMachine(b, 300_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.bulkTick(1)
	}
}
