package sim

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/isa"
	"sesa/internal/stats"
)

// The Figure 9 accounting: dispatch stalls must be attributed to the
// structure that is actually full.

// TestStallAttributionROB: a long-latency dependency chain fills the ROB.
func TestStallAttributionROB(t *testing.T) {
	cfg := config.Skylake(1, config.X86)
	m := newMachine(t, cfg, "rob-stall")
	var prog isa.Program
	for i := 0; i < 600; i++ {
		prog = append(prog, isa.ALUImm(1, 1, 1, 200)) // serial 200-cycle chain
		prog = append(prog, isa.ALUImm(2, 2, 1, 0))
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	c := &m.Stats.Cores[0]
	if c.StallCycles[stats.StallROB] == 0 {
		t.Error("expected ROB-full stalls on a serial latency chain")
	}
	if c.StallCycles[stats.StallLQ] > c.StallCycles[stats.StallROB] {
		t.Error("LQ should not dominate: no loads in the program")
	}
}

// TestStallAttributionLQ: loads blocked behind one slow load fill the LQ
// before the ROB (LQ is much smaller).
func TestStallAttributionLQ(t *testing.T) {
	cfg := config.Skylake(1, config.X86)
	m := newMachine(t, cfg, "lq-stall")
	var prog isa.Program
	// A pointer-chase-like chain of slow loads, all resident in the LQ,
	// plus more loads than LQ entries.
	for i := 0; i < 400; i++ {
		ld := isa.Load(8, 0x100000+uint64(i)*0x40000) // L2+ misses
		ld.Src2 = 8                                   // serialize on the previous load
		prog = append(prog, ld)
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	c := &m.Stats.Cores[0]
	if c.StallCycles[stats.StallLQ] == 0 {
		t.Error("expected LQ-full stalls on a load chain")
	}
}

// TestStallAttributionSQ: a burst of slow stores fills the SQ/SB — the
// radix behaviour of Section VI-B.
func TestStallAttributionSQ(t *testing.T) {
	cfg := config.Skylake(1, config.X86)
	cfg.Mem.RFOPrefetch = false // expose the store misses in the drain
	m := newMachine(t, cfg, "sq-stall")
	var prog isa.Program
	for i := 0; i < 300; i++ {
		prog = append(prog, isa.StoreImm(0x200000+uint64(i)*64, uint64(i)))
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	c := &m.Stats.Cores[0]
	if c.StallCycles[stats.StallSQ] == 0 {
		t.Error("expected SQ/SB-full stalls on a store streaming burst")
	}
	if c.StallCycles[stats.StallSQ] < c.StallCycles[stats.StallROB] {
		t.Error("SQ/SB should dominate the stall attribution for a store burst")
	}
}

// TestJitterChangesTimingNotResults: jitter perturbs cycle counts but the
// architectural results stay correct.
func TestJitterChangesTimingNotResults(t *testing.T) {
	run := func(seed uint64) (uint64, uint64) {
		cfg := config.Skylake(1, config.SLFSoSKey370)
		cfg.Jitter = 9
		cfg.JitterSeed = seed
		m := newMachine(t, cfg, "jitter")
		prog := isa.Program{
			isa.StoreImm(0x100, 5),
			isa.Load(1, 0x100),
			isa.Load(2, 0x40000),
			isa.ALU(3, 1, 2),
		}
		if err := m.SetProgram(0, prog); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		return m.Stats.Cycles, m.Core(0).RegValue(3)
	}
	c1, v1 := run(1)
	c2, v2 := run(2)
	if v1 != 5 || v2 != 5 {
		t.Errorf("architectural results changed under jitter: %d %d", v1, v2)
	}
	if c1 == c2 {
		t.Log("note: both seeds produced identical cycle counts (possible but unlikely)")
	}
}

// TestRMWContention: 8 cores hammering one counter always sum correctly —
// coherence, atomicity and the RMW serialization all have to cooperate.
func TestRMWContention(t *testing.T) {
	for _, model := range []config.Model{config.X86, config.SLFSoSKey370} {
		const perCore, cores = 25, 8
		m := newMachine(t, config.Skylake(cores, model), "rmw-contention")
		for c := 0; c < cores; c++ {
			var p isa.Program
			for i := 0; i < perCore; i++ {
				p = append(p, isa.RMW(1, 0x7000, 1))
				p = append(p, isa.ALUImm(2, 2, 1, 0))
			}
			if err := m.SetProgram(c, p); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if got := m.ReadMemory(0x7000); got != perCore*cores {
			t.Errorf("%s: counter = %d, want %d", model, got, perCore*cores)
		}
	}
}

// TestPartialSizeForwarding: a 4-byte load forwarded from an 8-byte store
// and a blocked partial overlap both produce correct values.
func TestPartialSizeForwarding(t *testing.T) {
	m := newMachine(t, config.Skylake(1, config.X86), "partial")
	ld4 := isa.Inst{Op: isa.OpLoad, Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x104, Size: 4}
	st4 := isa.Inst{Op: isa.OpStore, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		Addr: 0x108, Size: 4, Imm: 0xCAFE}
	ld8over := isa.Load(2, 0x108) // 8-byte load over a 4-byte store: blocked, reads memory
	prog := isa.Program{
		isa.StoreImm(0x100, 0xAABBCCDD11223344),
		ld4,     // forwarded: upper half of the store
		st4,     // narrow store
		ld8over, // partial overlap: waits for the store's L1 write
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	if got := m.Core(0).RegValue(1); got != 0xAABBCCDD {
		t.Errorf("forwarded 4-byte value = %#x, want 0xAABBCCDD", got)
	}
	if got := m.Core(0).RegValue(2); got != 0xCAFE {
		t.Errorf("partial-overlap load = %#x, want 0xCAFE", got)
	}
}

// TestCharacterizationPipeline: the stats pipeline from a real run matches
// manual recomputation.
func TestCharacterizationPipeline(t *testing.T) {
	m := newMachine(t, config.Skylake(1, config.SLFSoSKey370), "char")
	var prog isa.Program
	for i := 0; i < 100; i++ {
		prog = append(prog, isa.StoreImm(0x100+uint64(i%8)*8, uint64(i)))
		prog = append(prog, isa.Load(1, 0x100+uint64(i%8)*8))
		prog = append(prog, isa.ALUImm(2, 2, 1, 0))
	}
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	ch := m.Stats.Characterize()
	tot := m.Stats.Total()
	wantLoads := 100 * float64(tot.RetiredLoads) / float64(tot.RetiredInsts)
	if ch.LoadsPct != wantLoads {
		t.Errorf("LoadsPct = %f, want %f", ch.LoadsPct, wantLoads)
	}
	if ch.Instructions != 300 {
		t.Errorf("instructions = %d, want 300", ch.Instructions)
	}
}
