package sim

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/trace"
)

// TestStepZeroAllocSteadyState pins the hot loop's allocation budget at
// zero: once the arenas, rings, address tables and event heap are warm, a
// full machine step — core.Tick on every core plus the batched event
// delivery — must not allocate. This is the contract the index-based entry
// arena and the typed event queue exist to provide; any regression here
// reintroduces per-cycle GC pressure on every simulated cycle.
func TestStepZeroAllocSteadyState(t *testing.T) {
	p, ok := trace.Lookup("barnes")
	if !ok {
		t.Fatal("barnes workload missing")
	}
	cfg := config.Default(config.X86)
	m, err := New(cfg, "barnes")
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Build(p, cfg.Cores, 200_000, 42)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: fill the branch-predictor paths, grow the event heap and
	// address tables to their steady-state footprint.
	for i := 0; i < 20_000 && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		t.Fatal("workload finished during warmup; steady state never reached")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if !m.Done() {
			m.Step()
		}
	})
	if allocs != 0 {
		t.Errorf("machine step allocates %.2f per cycle in steady state, want 0", allocs)
	}
}
