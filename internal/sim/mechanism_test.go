package sim

import (
	"testing"
	"testing/quick"

	"sesa/internal/config"
	"sesa/internal/isa"
)

// slowStorePrefix returns instructions that put n stores with
// late-resolving addresses into the pipeline, so everything behind them
// stays in the SQ/SB for hundreds of cycles (the litmus SB-pressure trick).
func slowStorePrefix(n int, base uint64) isa.Program {
	var p isa.Program
	const delayReg = isa.Reg(30)
	for i := 0; i < n; i++ {
		p = append(p, isa.ALUImm(delayReg, delayReg, 1, 200))
		st := isa.StoreImm(base+uint64(i)*0x80, uint64(i+1))
		st.Src2 = delayReg
		p = append(p, st)
	}
	return p
}

// TestRetireGateClosesAndReopens drives Figure 8 end to end: an SLF load
// retires while its forwarding store is in limbo, closing the gate; the
// store's L1 write reopens it; a younger load retires only afterwards.
func TestRetireGateClosesAndReopens(t *testing.T) {
	for _, model := range []config.Model{config.SLFSoS370, config.SLFSoSKey370} {
		prog := append(slowStorePrefix(2, 0x90000),
			isa.StoreImm(0x1000, 7), // forwarding store, stuck behind the slow drain
			isa.Load(1, 0x1000),     // SLF load
			isa.Load(2, 0x2000),     // younger load: SA-speculative
		)
		m := newMachine(t, config.Skylake(1, model), "gate")
		if err := m.SetProgram(0, prog); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		st := m.Stats.Total()
		if st.GateCloses == 0 {
			t.Errorf("%s: retire gate never closed", model)
		}
		if st.GateReopens != st.GateCloses {
			t.Errorf("%s: closes=%d reopens=%d, every close must reopen",
				model, st.GateCloses, st.GateReopens)
		}
		if st.GateStalls == 0 {
			t.Errorf("%s: the younger load should have stalled at the gate", model)
		}
		if got := m.Core(0).RegValue(1); got != 7 {
			t.Errorf("%s: forwarded value = %d, want 7", model, got)
		}
	}
}

// TestX86NeverClosesGate: the baseline has no gate.
func TestX86NeverClosesGate(t *testing.T) {
	prog := append(slowStorePrefix(2, 0x90000),
		isa.StoreImm(0x1000, 7), isa.Load(1, 0x1000), isa.Load(2, 0x2000))
	m := newMachine(t, config.Skylake(1, config.X86), "nogate")
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	if st := m.Stats.Total(); st.GateCloses != 0 || st.GateStalls != 0 {
		t.Errorf("x86 used the gate: %+v", st)
	}
}

// TestVulnerabilityWindowSquash recreates Figures 6-7: core 0 forwards from
// an in-limbo store and a younger load performs; core 1's store to that
// younger load's address arrives inside the window of vulnerability. The
// SA-speculative load must be squashed and re-executed (reading the new
// value); the machine result is store-atomic.
func TestVulnerabilityWindowSquash(t *testing.T) {
	for _, model := range []config.Model{config.SLFSoS370, config.SLFSoSKey370} {
		p0 := append(slowStorePrefix(3, 0x90000),
			isa.StoreImm(0x1000, 1), // st x
			isa.Load(1, 0x1000),     // ld x: SLF
			isa.Load(2, 0x2000),     // ld y: performs early, sees 0
		)
		p1 := isa.Program{isa.StoreImm(0x2000, 1)} // st y from another core
		m := newMachine(t, config.Skylake(2, model), "window")
		if err := m.SetProgram(0, p0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetProgram(1, p1); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		st := m.Stats.Total()
		if st.SASquashes == 0 {
			t.Errorf("%s: expected an SA-speculation squash in the vulnerability window", model)
		}
		if got := m.Core(0).RegValue(2); got != 1 {
			t.Errorf("%s: ld y = %d after squash, want the re-executed value 1", model, got)
		}
	}
}

// TestX86KeepsStaleValueInWindow: under x86 the same scenario retires the
// stale value — the observable store-atomicity violation the paper fixes.
func TestX86KeepsStaleValueInWindow(t *testing.T) {
	p0 := append(slowStorePrefix(3, 0x90000),
		isa.StoreImm(0x1000, 1),
		isa.Load(1, 0x1000),
		isa.Load(2, 0x2000),
	)
	p1 := isa.Program{isa.StoreImm(0x2000, 1)}
	m := newMachine(t, config.Skylake(2, config.X86), "window-x86")
	if err := m.SetProgram(0, p0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProgram(1, p1); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	if st := m.Stats.Total(); st.SASquashes != 0 {
		t.Errorf("x86 performed SA squashes: %+v", st)
	}
	if got := m.Core(0).RegValue(2); got != 0 {
		t.Errorf("x86 ld y = %d; expected the stale 0 (the violation)", got)
	}
}

// TestNoSpecBlocksForwarding checks blanket 370 enforcement: the load gets
// the correct value but only after the store writes, and is never SLF.
func TestNoSpecBlocksForwarding(t *testing.T) {
	prog := append(slowStorePrefix(2, 0x90000),
		isa.StoreImm(0x1000, 9),
		isa.Load(1, 0x1000),
	)
	m := newMachine(t, config.Skylake(1, config.NoSpec370), "nospec")
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	st := m.Stats.Total()
	if st.SLFLoads != 0 {
		t.Error("370-NoSpec must never forward")
	}
	if st.NoSpecWaits == 0 {
		t.Error("the matching load should have waited for the store drain")
	}
	if got := m.Core(0).RegValue(1); got != 9 {
		t.Errorf("value = %d, want 9", got)
	}
}

// TestRMWBlocksYoungerOverlappingLoad: an RMW bypasses the store queue, so
// its write is invisible to load disambiguation; a younger same-address load
// must nonetheless observe it. The slow-store prefix keeps the SB busy so
// the RMW (which waits for the drain) issues long after the load is ready —
// exactly the window where an unblocked load would read the pre-RMW value.
func TestRMWBlocksYoungerOverlappingLoad(t *testing.T) {
	for _, model := range []config.Model{config.X86, config.NoSpec370,
		config.SLFSpec370, config.SLFSoS370, config.SLFSoSKey370} {
		prog := append(slowStorePrefix(2, 0x90000),
			isa.RMW(1, 0x1000, 5), // old value -> r1, writes 5
			isa.Load(2, 0x1000),   // must see the RMW's write
			isa.Load(3, 0x1040),   // disjoint address: unconstrained
		)
		m := newMachine(t, config.Skylake(1, model), "rmw-load")
		if err := m.SetProgram(0, prog); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		if got := m.Core(0).RegValue(1); got != 0 {
			t.Errorf("%s: rmw old value = %d, want 0", model, got)
		}
		if got := m.Core(0).RegValue(2); got != 5 {
			t.Errorf("%s: ld after rmw = %d, want the rmw's write 5", model, got)
		}
	}
}

// TestSLFSpecHoldsSLFLoadAtRetire: SC-like speculation retires the SLF load
// only when the store buffer has drained.
func TestSLFSpecHoldsSLFLoadAtRetire(t *testing.T) {
	prog := append(slowStorePrefix(2, 0x90000),
		isa.StoreImm(0x1000, 9),
		isa.Load(1, 0x1000),
	)
	m := newMachine(t, config.Skylake(1, config.SLFSpec370), "slfspec")
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	st := m.Stats.Total()
	if st.SLFLoads != 1 {
		t.Errorf("SLF loads = %d, want 1 (forwarding allowed)", st.SLFLoads)
	}
	if st.SLFSpecRetWaits == 0 {
		t.Error("the SLF load should have been held at retirement")
	}
}

// TestStoreSetLearnsDependence: a load that repeatedly collides with a
// late-resolving store is squashed at first, then predicted dependent.
func TestStoreSetLearnsDependence(t *testing.T) {
	var prog isa.Program
	const delayReg = isa.Reg(30)
	for i := 0; i < 40; i++ {
		// The store's address resolves late; the load to the same
		// address is tempted to bypass it. Identical PCs every
		// iteration let the StoreSet train.
		prog = append(prog, isa.ALUImm(delayReg, delayReg, 1, 30))
		st := isa.StoreImm(0x5000, uint64(i))
		st.Src2 = delayReg
		st.PC = 0x100
		prog = append(prog, st)
		ld := isa.Load(1, 0x5000)
		ld.PC = 0x104
		prog = append(prog, ld)
		for j := 0; j < 5; j++ {
			prog = append(prog, isa.ALUImm(1, 1, 1, 0))
		}
	}
	m := newMachine(t, config.Skylake(1, config.X86), "storeset")
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	st := m.Stats.Total()
	if st.DepSquashes == 0 {
		t.Error("expected at least one memory-dependence violation before training")
	}
	if st.DepSquashes > 10 {
		t.Errorf("StoreSet never learned: %d dependence squashes in 40 iterations", st.DepSquashes)
	}
	if got := m.Core(0).RegValue(1); got < 39 {
		t.Errorf("final forwarded value = %d, want >= 39", got)
	}
}

// TestNoDeadlockProperty is the Section IV-C liveness argument as a
// property test: random programs on random models always finish.
func TestNoDeadlockProperty(t *testing.T) {
	f := func(seed uint64, modelSel, coreSel uint8) bool {
		model := config.AllModels()[int(modelSel)%5]
		cores := 1 + int(coreSel)%3
		m, err := New(config.Small(cores, model), "deadlock")
		if err != nil {
			return false
		}
		rng := seed
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 11
		}
		for c := 0; c < cores; c++ {
			var p isa.Program
			for i := 0; i < 120; i++ {
				addr := (next() % 64) * 8
				switch next() % 6 {
				case 0:
					p = append(p, isa.Load(isa.Reg(next()%8), addr))
				case 1:
					p = append(p, isa.StoreImm(addr, next()))
				case 2:
					p = append(p, isa.ALU(isa.Reg(next()%8), isa.Reg(next()%8), isa.Reg(next()%8)))
				case 3:
					p = append(p, isa.Branch(0x40+(next()%16)*4, next()%2 == 0))
				case 4:
					p = append(p, isa.Fence())
				case 5:
					p = append(p, isa.RMW(isa.Reg(next()%8), addr, 1))
				}
			}
			if err := m.SetProgram(c, p); err != nil {
				return false
			}
		}
		return m.Run(3_000_000) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGateStallsAccounted: Table IV bookkeeping — every gate stall has
// positive cycles and the averages are sane.
func TestGateStallsAccounted(t *testing.T) {
	prog := append(slowStorePrefix(2, 0x90000),
		isa.StoreImm(0x1000, 7), isa.Load(1, 0x1000), isa.Load(2, 0x2000))
	m := newMachine(t, config.Skylake(1, config.SLFSoSKey370), "acct")
	if err := m.SetProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	st := m.Stats.Total()
	if st.GateStalls > 0 && st.GateStallCycles < st.GateStalls {
		t.Errorf("stall cycles %d < stalls %d", st.GateStallCycles, st.GateStalls)
	}
	ch := m.Stats.Characterize()
	if ch.GateStallsPct <= 0 || ch.AvgStallCycles <= 0 {
		t.Errorf("characterization lost the gate stalls: %+v", ch)
	}
}
