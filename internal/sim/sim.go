// Package sim ties the out-of-order cores, the memory hierarchy and the
// interconnect into the cycle-driven multicore machine the paper evaluates.
package sim

import (
	"context"
	"fmt"

	"sesa/internal/config"
	"sesa/internal/core"
	"sesa/internal/hist"
	"sesa/internal/isa"
	"sesa/internal/mem"
	"sesa/internal/noc"
	"sesa/internal/obs"
	"sesa/internal/sched"
	"sesa/internal/stats"
)

// TimeoutError reports a machine that did not finish within its cycle
// bound — the liveness check of Section IV-C. Runners detect it with
// errors.As to classify timed-out jobs apart from other failures.
type TimeoutError struct {
	MaxCycles uint64
	Model     string
	Workload  string
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sim: machine did not finish within %d cycles (model %s, workload %s)",
		e.MaxCycles, e.Model, e.Workload)
}

// CanceledError reports a run cut short by context cancellation. Like a
// timeout it carries the machine identity and how far the run got, and the
// machine's partial statistics remain readable. It unwraps to both the
// context's error and its cancellation cause, so
// errors.Is(err, context.Canceled) matches even when the canceler attached a
// custom cause (e.g. "sweep deleted by client"), and the cause itself
// matches too.
type CanceledError struct {
	Cycles   uint64
	Model    string
	Workload string
	// Err is the context's error: context.Canceled or DeadlineExceeded.
	Err error
	// Cause is the context's cancellation cause (context.Cause); equal to
	// Err unless the canceler set one.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled after %d cycles (model %s, workload %s): %v",
		e.Cycles, e.Model, e.Workload, e.Cause)
}

// Unwrap exposes the context error and the cancellation cause to errors.Is/As.
func (e *CanceledError) Unwrap() []error {
	if e.Cause != nil && e.Cause != e.Err {
		return []error{e.Err, e.Cause}
	}
	return []error{e.Err}
}

// Machine is one simulated multicore.
type Machine struct {
	cfg   config.Config
	clock *sched.Clock
	net   *noc.Network
	hier  *mem.Hierarchy
	cores []*core.Core

	// stepMode selects naive cycle-by-cycle stepping or the two-level
	// clock that skips quiescent ranges; both produce byte-identical
	// observable output.
	stepMode config.StepMode
	// quiet records whether the last Step was fully quiescent — the
	// precondition for skipAhead.
	quiet bool

	// tracer is the observability sink; nil when tracing is disabled.
	tracer *obs.Tracer

	// hists is the latency-histogram sink; nil when histograms are
	// disabled.
	hists *hist.Set

	Stats *stats.Machine
}

// New builds a machine from the configuration; workload names the run in
// the statistics.
func New(cfg config.Config, workload string) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		clock:    sched.NewClock(cfg.Cores),
		net:      noc.New(cfg.NoC, cfg.Jitter, cfg.JitterSeed),
		stepMode: cfg.StepMode,
		Stats:    stats.New(cfg.Model.String(), workload, cfg.Cores),
	}
	m.hier = mem.NewHierarchy(cfg.Cores, cfg.Mem, m.net, &m.clock.EventQueue)
	m.cores = make([]*core.Core, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.cores[i] = core.New(i, cfg, m.hier, &m.Stats.Cores[i])
	}
	return m, nil
}

// SetStepMode overrides the configured clock stepper. Call before Run; the
// mode only affects how the clock advances, never what it observes.
func (m *Machine) SetStepMode(mode config.StepMode) { m.stepMode = mode }

// StepMode returns the active clock stepper.
func (m *Machine) StepMode() config.StepMode { return m.stepMode }

// AttachTracer wires the observability sink through the cores and the
// memory hierarchy. Call before the first Step; nil detaches.
func (m *Machine) AttachTracer(t *obs.Tracer) {
	m.tracer = t
	for i, c := range m.cores {
		ct := t.Core(i) // nil-safe: nil when t is nil or events are disabled
		c.AttachTracer(ct)
		m.hier.AttachTracer(i, ct)
	}
}

// Tracer returns the attached observability sink (nil when disabled).
func (m *Machine) Tracer() *obs.Tracer { return m.tracer }

// AttachHists wires the latency-histogram sinks through the cores, the
// memory hierarchy and the interconnect. Call before the first Step; nil
// detaches. Hook sites nil-check their collector, so a machine without
// histograms pays one never-taken branch per hook.
func (m *Machine) AttachHists(s *hist.Set) {
	m.hists = s
	for i, c := range m.cores {
		hc := s.Core(i) // nil-safe: nil when s is nil
		c.AttachHists(hc)
		m.hier.AttachHists(i, hc)
	}
	m.net.AttachHists(s.Net())
}

// Hists returns the attached histogram set (nil when disabled).
func (m *Machine) Hists() *hist.Set { return m.hists }

// sampleMetrics records one interval boundary from the live core state.
func (m *Machine) sampleMetrics(cycle uint64) {
	mt := m.tracer.Metrics()
	if mt == nil {
		return
	}
	snaps := make([]obs.CoreSnapshot, len(m.cores))
	for i, c := range m.cores {
		st := &m.Stats.Cores[i]
		rob, lq, sb := c.Occupancy()
		snaps[i] = obs.CoreSnapshot{
			Retired:          st.RetiredInsts,
			Squashes:         st.Squashes + st.DepSquashes,
			GateClosedCycles: st.GateClosedCycles,
			ROBOcc:           rob,
			LQOcc:            lq,
			SBOcc:            sb,
		}
	}
	m.tracer.Metrics().Sample(cycle, snaps)
}

// Config returns the machine configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// Core returns core i.
func (m *Machine) Core(i int) *core.Core { return m.cores[i] }

// Hierarchy exposes the memory system (memory image inspection, stats).
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// Network exposes interconnect traffic counters.
func (m *Machine) Network() *noc.Network { return m.net }

// SetProgram installs the trace for core i and presizes the hierarchy's
// per-run address tables from the trace's touched-word and touched-line
// footprint, so the simulation's steady state never rehashes them.
func (m *Machine) SetProgram(i int, p isa.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.cores[i].SetProgram(p)
	words := make(map[uint64]struct{})
	lines := make(map[uint64]struct{})
	for _, in := range p {
		if in.Op == isa.OpLoad || in.Op == isa.OpStore || in.Op == isa.OpRMW {
			words[in.Addr&^7] = struct{}{}
			lines[m.hier.LineAddr(in.Addr)] = struct{}{}
		}
	}
	m.hier.Reserve(len(words), len(lines))
	return nil
}

// InitMemory sets an initial 8-byte value in the memory image.
func (m *Machine) InitMemory(addr, val uint64) { m.hier.WriteImage(addr, 8, val) }

// ReadMemory reads the current memory-order value at addr.
func (m *Machine) ReadMemory(addr uint64) uint64 { return m.hier.ReadImage(addr, 8) }

// Cycle returns the current cycle.
func (m *Machine) Cycle() uint64 { return m.clock.Now() }

// Done reports whether every core has finished its trace.
func (m *Machine) Done() bool {
	for _, c := range m.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Step advances the machine one cycle: deliver the cycle's memory events,
// then tick every core in index order (deterministic), collecting each
// core's quiescence report into the clock's wake registrations.
func (m *Machine) Step() {
	now := m.clock.Now()
	m.clock.Deliver(m.hier)
	quiet := true
	for i, c := range m.cores {
		progressed, wake := c.Tick(now)
		quiet = quiet && !progressed
		m.clock.SetWake(i, wake)
	}
	m.quiet = quiet
	m.clock.Tick()
	if iv := m.tracer.MetricsInterval(); iv > 0 && m.clock.Now()%iv == 0 {
		m.sampleMetrics(m.clock.Now())
	}
}

// skipAhead jumps the clock from the current cycle to the two-level clock's
// horizon — the next pending event or core wake, bounded by bound — after a
// fully quiescent Step. The skipped ticks are exact replays of the last one
// (see the quiescence argument in DESIGN.md), so their per-cycle counters
// are bulk-applied via SkipCycles, and every metrics-interval boundary the
// jump crosses is sampled exactly where naive stepping would have sampled
// it. No-op when the last Step made progress.
func (m *Machine) skipAhead(bound uint64) {
	cur := m.clock.Now()
	if !m.quiet || cur >= bound {
		return
	}
	target := m.clock.Horizon(bound)
	if target <= cur {
		return
	}
	if iv := m.tracer.MetricsInterval(); iv > 0 {
		for {
			b := (cur/iv + 1) * iv
			if b > target {
				break
			}
			m.bulkTick(b - cur)
			cur = b
			m.sampleMetrics(b)
		}
	}
	m.bulkTick(target - cur)
	m.clock.AdvanceTo(target)
}

// bulkTick applies n skipped quiescent cycles to every core.
func (m *Machine) bulkTick(n uint64) {
	if n == 0 {
		return
	}
	for _, c := range m.cores {
		c.SkipCycles(n)
	}
}

// Run executes until every core finishes or maxCycles elapse; it returns an
// error on timeout, which doubles as the liveness check (the no-deadlock
// argument of Section IV-C).
func (m *Machine) Run(maxCycles uint64) error {
	return m.RunContext(context.Background(), maxCycles)
}

// cancelCheckMask throttles the cancellation poll to every 1024 steps: cheap
// enough to vanish in the per-step cost, frequent enough that a canceled
// machine stops within well under a millisecond of host time.
const cancelCheckMask = 1024 - 1

// RunContext is Run with cooperative cancellation. A context without a Done
// channel (context.Background) takes a checked-once fast path and behaves
// exactly like Run; otherwise the context is polled every 1024 steps and a
// cancellation stops the machine at the next poll, returning a
// *CanceledError that wraps the context's cause. The cancelled machine is
// closed out like a timed-out one: residual events drain, Stats.Cycles
// records how far it got, and the final metrics interval is emitted, so
// partial statistics stay readable.
func (m *Machine) RunContext(ctx context.Context, maxCycles uint64) error {
	skip := m.stepMode == config.StepSkip
	// Quiescence wake reports feed skipAhead and nothing else: under the
	// naive stepper the per-tick wake scan is dead work, so turn it off.
	for _, c := range m.cores {
		c.SetWakeHints(skip)
	}
	done := ctx.Done()
	steps := 0
	for !m.Done() {
		if m.clock.Now() >= maxCycles {
			m.finish()
			return &TimeoutError{MaxCycles: maxCycles, Model: m.cfg.Model.String(),
				Workload: m.Stats.Workload}
		}
		if done != nil && steps&cancelCheckMask == 0 {
			select {
			case <-done:
				m.finish()
				return &CanceledError{Cycles: m.clock.Now(), Model: m.cfg.Model.String(),
					Workload: m.Stats.Workload, Err: ctx.Err(), Cause: context.Cause(ctx)}
			default:
			}
		}
		steps++
		m.Step()
		if skip {
			m.skipAhead(maxCycles)
		}
	}
	m.finish()
	return nil
}

// finish closes out a run on both the completion and the timeout path:
// drain residual events (late invalidation deliveries), record how far the
// machine got, capture the NoC counters, and emit the final (possibly
// short) metrics interval. A timed-out run therefore reports its cycle
// count and a complete metrics series just like a finished one.
func (m *Machine) finish() {
	for m.clock.Len() > 0 {
		next, _ := m.clock.NextCycle()
		m.clock.RunUntil(next, m.hier)
	}
	m.Stats.Cycles = m.clock.Now()
	m.captureNoC()
	if m.tracer.MetricsInterval() > 0 {
		m.sampleMetrics(m.clock.Now())
	}
}

// captureNoC copies the interconnect's traffic counters into the stats so
// reports can show NoC load next to the core counters.
func (m *Machine) captureNoC() {
	t := m.net.Traffic
	m.Stats.NoC = stats.NoCTraffic{
		ControlMsgs:  t.ControlMsgs,
		DataMsgs:     t.DataMsgs,
		ControlFlits: t.ControlFlits,
		DataFlits:    t.DataFlits,
	}
}
