// Package sim ties the out-of-order cores, the memory hierarchy and the
// interconnect into the cycle-driven multicore machine the paper evaluates.
package sim

import (
	"fmt"

	"sesa/internal/config"
	"sesa/internal/core"
	"sesa/internal/hist"
	"sesa/internal/isa"
	"sesa/internal/mem"
	"sesa/internal/noc"
	"sesa/internal/obs"
	"sesa/internal/stats"
)

// TimeoutError reports a machine that did not finish within its cycle
// bound — the liveness check of Section IV-C. Runners detect it with
// errors.As to classify timed-out jobs apart from other failures.
type TimeoutError struct {
	MaxCycles uint64
	Model     string
	Workload  string
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sim: machine did not finish within %d cycles (model %s, workload %s)",
		e.MaxCycles, e.Model, e.Workload)
}

// Machine is one simulated multicore.
type Machine struct {
	cfg   config.Config
	evq   *noc.EventQueue
	net   *noc.Network
	hier  *mem.Hierarchy
	cores []*core.Core

	// tracer is the observability sink; nil when tracing is disabled.
	tracer *obs.Tracer

	// hists is the latency-histogram sink; nil when histograms are
	// disabled.
	hists *hist.Set

	Stats *stats.Machine
	cycle uint64
}

// New builds a machine from the configuration; workload names the run in
// the statistics.
func New(cfg config.Config, workload string) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		evq:   noc.NewEventQueue(),
		net:   noc.New(cfg.NoC, cfg.Jitter, cfg.JitterSeed),
		Stats: stats.New(cfg.Model.String(), workload, cfg.Cores),
	}
	m.hier = mem.NewHierarchy(cfg.Cores, cfg.Mem, m.net, m.evq)
	m.cores = make([]*core.Core, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.cores[i] = core.New(i, cfg, m.hier, m.evq, &m.Stats.Cores[i])
	}
	return m, nil
}

// AttachTracer wires the observability sink through the cores and the
// memory hierarchy. Call before the first Step; nil detaches.
func (m *Machine) AttachTracer(t *obs.Tracer) {
	m.tracer = t
	for i, c := range m.cores {
		ct := t.Core(i) // nil-safe: nil when t is nil or events are disabled
		c.AttachTracer(ct)
		m.hier.AttachTracer(i, ct)
	}
}

// Tracer returns the attached observability sink (nil when disabled).
func (m *Machine) Tracer() *obs.Tracer { return m.tracer }

// AttachHists wires the latency-histogram sinks through the cores, the
// memory hierarchy and the interconnect. Call before the first Step; nil
// detaches. Hook sites nil-check their collector, so a machine without
// histograms pays one never-taken branch per hook.
func (m *Machine) AttachHists(s *hist.Set) {
	m.hists = s
	for i, c := range m.cores {
		hc := s.Core(i) // nil-safe: nil when s is nil
		c.AttachHists(hc)
		m.hier.AttachHists(i, hc)
	}
	m.net.AttachHists(s.Net())
}

// Hists returns the attached histogram set (nil when disabled).
func (m *Machine) Hists() *hist.Set { return m.hists }

// sampleMetrics records one interval boundary from the live core state.
func (m *Machine) sampleMetrics(cycle uint64) {
	mt := m.tracer.Metrics()
	if mt == nil {
		return
	}
	snaps := make([]obs.CoreSnapshot, len(m.cores))
	for i, c := range m.cores {
		st := &m.Stats.Cores[i]
		rob, lq, sb := c.Occupancy()
		snaps[i] = obs.CoreSnapshot{
			Retired:          st.RetiredInsts,
			Squashes:         st.Squashes + st.DepSquashes,
			GateClosedCycles: st.GateClosedCycles,
			ROBOcc:           rob,
			LQOcc:            lq,
			SBOcc:            sb,
		}
	}
	m.tracer.Metrics().Sample(cycle, snaps)
}

// Config returns the machine configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// Core returns core i.
func (m *Machine) Core(i int) *core.Core { return m.cores[i] }

// Hierarchy exposes the memory system (memory image inspection, stats).
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// Network exposes interconnect traffic counters.
func (m *Machine) Network() *noc.Network { return m.net }

// SetProgram installs the trace for core i.
func (m *Machine) SetProgram(i int, p isa.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.cores[i].SetProgram(p)
	return nil
}

// InitMemory sets an initial 8-byte value in the memory image.
func (m *Machine) InitMemory(addr, val uint64) { m.hier.WriteImage(addr, 8, val) }

// ReadMemory reads the current memory-order value at addr.
func (m *Machine) ReadMemory(addr uint64) uint64 { return m.hier.ReadImage(addr, 8) }

// Cycle returns the current cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Done reports whether every core has finished its trace.
func (m *Machine) Done() bool {
	for _, c := range m.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Step advances the machine one cycle: deliver the cycle's memory events,
// then tick every core in index order (deterministic).
func (m *Machine) Step() {
	m.evq.RunUntil(m.cycle)
	for _, c := range m.cores {
		c.Tick(m.cycle)
	}
	m.cycle++
	if iv := m.tracer.MetricsInterval(); iv > 0 && m.cycle%iv == 0 {
		m.sampleMetrics(m.cycle)
	}
}

// Run executes until every core finishes or maxCycles elapse; it returns an
// error on timeout, which doubles as the liveness check (the no-deadlock
// argument of Section IV-C).
func (m *Machine) Run(maxCycles uint64) error {
	for !m.Done() {
		if m.cycle >= maxCycles {
			// Record how far the machine got: a timed-out run must still
			// report its cycle count (failure rows would otherwise show 0).
			m.Stats.Cycles = m.cycle
			m.captureNoC()
			return &TimeoutError{MaxCycles: maxCycles, Model: m.cfg.Model.String(),
				Workload: m.Stats.Workload}
		}
		m.Step()
	}
	// Drain any residual events (late invalidation deliveries).
	for m.evq.Len() > 0 {
		next, _ := m.evq.NextCycle()
		m.evq.RunUntil(next)
	}
	m.Stats.Cycles = m.cycle
	m.captureNoC()
	// Close out the metrics series with the final (possibly short) interval.
	if m.tracer.MetricsInterval() > 0 {
		m.sampleMetrics(m.cycle)
	}
	return nil
}

// captureNoC copies the interconnect's traffic counters into the stats so
// reports can show NoC load next to the core counters.
func (m *Machine) captureNoC() {
	t := m.net.Traffic
	m.Stats.NoC = stats.NoCTraffic{
		ControlMsgs:  t.ControlMsgs,
		DataMsgs:     t.DataMsgs,
		ControlFlits: t.ControlFlits,
		DataFlits:    t.DataFlits,
	}
}
