package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sesa/internal/config"
	"sesa/internal/trace"
)

// loadedMachine builds a machine running the barnes profile, big enough that
// a run takes visibly many cycles.
func loadedMachine(t *testing.T, instPerCore int) *Machine {
	t.Helper()
	p, ok := trace.Lookup("barnes")
	if !ok {
		t.Fatal("barnes profile missing")
	}
	cfg := config.Default(config.SLFSoSKey370)
	w := trace.Build(p, cfg.Cores, instPerCore, 42)
	m := newMachine(t, cfg, w.Name)
	for c, prog := range w.Programs {
		if err := m.SetProgram(c, prog); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestRunContextPreCanceled(t *testing.T) {
	m := loadedMachine(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.RunContext(ctx, 2_000_000)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
	if ce.Cycles != 0 {
		t.Errorf("pre-canceled run consumed %d cycles, want 0", ce.Cycles)
	}
	if m.Stats.Cycles != ce.Cycles {
		t.Errorf("Stats.Cycles = %d, error says %d", m.Stats.Cycles, ce.Cycles)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// Big enough that the run takes well over 100ms of host time, so the
	// timer below lands mid-run.
	m := loadedMachine(t, 100_000)
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := fmt.Errorf("test asked to stop: %w", errTestCause)
	timer := time.AfterFunc(100*time.Millisecond, func() { cancel(cause) })
	defer timer.Stop()
	err := m.RunContext(ctx, 100_000_000)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
	if !errors.Is(err, errTestCause) {
		t.Errorf("errors.Is(err, cause) = false; err = %v", err)
	}
	if ce.Cycles == 0 {
		t.Error("canceled at cycle 0; the run should have progressed before the timer fired")
	}
	if m.Stats.Cycles != ce.Cycles {
		t.Errorf("partial stats not recorded: Stats.Cycles = %d, want %d", m.Stats.Cycles, ce.Cycles)
	}
}

var errTestCause = errors.New("sentinel cause")

func TestRunContextDeadlineExceeded(t *testing.T) {
	m := loadedMachine(t, 2000)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	err := m.RunContext(ctx, 2_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, DeadlineExceeded) = false; err = %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("deadline-exceeded run must not match context.Canceled; err = %v", err)
	}
}

// TestRunContextBackgroundIdentical locks in that the cancellation plumbing
// never perturbs results: RunContext(Background) is Run.
func TestRunContextBackgroundIdentical(t *testing.T) {
	a := loadedMachine(t, 3000)
	b := loadedMachine(t, 3000)
	if err := a.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if err := b.RunContext(context.Background(), 2_000_000); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("cycles diverge: Run %d, RunContext %d", a.Stats.Cycles, b.Stats.Cycles)
	}
	at, bt := a.Stats.Total(), b.Stats.Total()
	if at != bt {
		t.Errorf("totals diverge:\nRun        %+v\nRunContext %+v", at, bt)
	}
}
