package axiomatic

import (
	"testing"

	"sesa/internal/checker"
	"sesa/internal/isa"
)

// randomProgram builds a small 2-thread program over two variables from a
// seed: loads, stores, fences and the occasional RMW.
func randomProgram(seed uint64) checker.Program {
	rng := seed
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 11
	}
	vars := []uint64{0x100, 0x140}
	p := checker.Program{Init: map[uint64]uint64{0x100: 0, 0x140: 0}}
	reg := isa.Reg(1)
	for th := 0; th < 2; th++ {
		var prog isa.Program
		n := 2 + int(next()%3)
		for i := 0; i < n; i++ {
			addr := vars[next()%2]
			switch next() % 5 {
			case 0, 1:
				prog = append(prog, isa.Load(reg, addr))
				p.Regs = append(p.Regs, checker.RegObs{
					Thread: th, Reg: reg,
					Name: string(rune('a'+th)) + string(rune('0'+int(reg)%10)),
				})
				reg++
			case 2:
				prog = append(prog, isa.StoreImm(addr, 1+next()%3))
			case 3:
				prog = append(prog, isa.Fence())
			case 4:
				prog = append(prog, isa.RMW(reg, addr, 1))
				p.Regs = append(p.Regs, checker.RegObs{
					Thread: th, Reg: reg,
					Name: string(rune('a'+th)) + string(rune('0'+int(reg)%10)),
				})
				reg++
			}
		}
		p.Threads = append(p.Threads, prog)
	}
	p.Mem = []checker.MemObs{{Addr: 0x100, Name: "x"}, {Addr: 0x140, Name: "y"}}
	return p
}

// TestRandomProgramsAgree: the axiomatic and operational formulations
// produce identical outcome sets on randomly generated programs, for all
// three models. Two completely different algorithms (state-space search vs
// candidate-execution filtering) agreeing over a large random sample is the
// strongest internal-consistency evidence in the repository.
func TestRandomProgramsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("random agreement sweep is slow")
	}
	pairs := []struct {
		ax Model
		op checker.Model
	}{
		{X86TSO, checker.X86TSO},
		{TSO370, checker.TSO370},
		{SC, checker.SC},
	}
	for seed := uint64(1); seed <= 150; seed++ {
		p := randomProgram(seed * 2654435761)
		for _, pr := range pairs {
			ax, err := Enumerate(p, pr.ax)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pr.ax, err)
			}
			op := checker.Enumerate(p, pr.op)
			for o := range op {
				if !ax.Contains(o) {
					t.Fatalf("seed %d %s: operational outcome %q not axiomatic\nprogram: %v",
						seed, pr.ax, o, p.Threads)
				}
			}
			for o := range ax {
				if !op.Contains(o) {
					t.Fatalf("seed %d %s: axiomatic outcome %q not operational\nprogram: %v",
						seed, pr.ax, o, p.Threads)
				}
			}
		}
	}
}
