package axiomatic

import (
	"testing"

	"sesa/internal/checker"
	"sesa/internal/isa"
	"sesa/internal/litmus"
)

// opModel maps an axiomatic model to its operational twin.
func opModel(m Model) checker.Model {
	switch m {
	case X86TSO:
		return checker.X86TSO
	case TSO370:
		return checker.TSO370
	default:
		return checker.SC
	}
}

// TestAgreesWithOperationalChecker is the headline cross-validation: the
// axiomatic and operational formulations must produce identical outcome
// sets on the whole litmus suite, for all three models.
func TestAgreesWithOperationalChecker(t *testing.T) {
	for _, lt := range litmus.Tests() {
		for _, m := range []Model{X86TSO, TSO370, SC} {
			ax, err := Enumerate(lt.Prog, m)
			if err != nil {
				t.Fatalf("%s under %s: %v", lt.Name, m, err)
			}
			op := checker.Enumerate(lt.Prog, opModel(m))
			for o := range op {
				if !ax.Contains(o) {
					t.Errorf("%s under %s: operational outcome %q missing axiomatically",
						lt.Name, m, o)
				}
			}
			for o := range ax {
				if !op.Contains(o) {
					t.Errorf("%s under %s: axiomatic outcome %q not operationally reachable",
						lt.Name, m, o)
				}
			}
		}
	}
}

// TestN6CycleArgument pins the paper's Figure 2 reasoning directly: the n6
// signature outcome is reachable under x86 (rfi is not a global edge) and
// becomes a ghb cycle the moment rfi is made global (370).
func TestN6CycleArgument(t *testing.T) {
	n6 := litmus.N6()
	sig := n6.Interesting
	x86, err := Enumerate(n6.Prog, X86TSO)
	if err != nil {
		t.Fatal(err)
	}
	if !x86.Contains(sig) {
		t.Error("x86 axiomatic model must admit the n6 signature")
	}
	atom, err := Enumerate(n6.Prog, TSO370)
	if err != nil {
		t.Fatal(err)
	}
	if atom.Contains(sig) {
		t.Error("making rfi global must forbid the n6 signature (the Figure 2 cycle)")
	}
}

// TestSCIsStrongest: SC outcome sets are subsets of 370's, which are
// subsets of x86's, on the whole suite (Table I, axiomatically).
func TestSCIsStrongest(t *testing.T) {
	for _, lt := range litmus.Tests() {
		sc, err := Enumerate(lt.Prog, SC)
		if err != nil {
			t.Fatal(err)
		}
		atom, err := Enumerate(lt.Prog, TSO370)
		if err != nil {
			t.Fatal(err)
		}
		x86, err := Enumerate(lt.Prog, X86TSO)
		if err != nil {
			t.Fatal(err)
		}
		for o := range sc {
			if !atom.Contains(o) {
				t.Errorf("%s: SC outcome %q not in 370", lt.Name, o)
			}
		}
		for o := range atom {
			if !x86.Contains(o) {
				t.Errorf("%s: 370 outcome %q not in x86", lt.Name, o)
			}
		}
	}
}

// TestRMWAtomicityAxiom: concurrent fetch-and-adds never lose updates.
func TestRMWAtomicityAxiom(t *testing.T) {
	prog := checker.Program{
		Threads: []isa.Program{
			{isa.RMW(1, 0x100, 1)},
			{isa.RMW(1, 0x100, 1)},
		},
		Init: map[uint64]uint64{0x100: 0},
		Mem:  []checker.MemObs{{Addr: 0x100, Name: "x"}},
	}
	for _, m := range []Model{X86TSO, TSO370, SC} {
		out, err := Enumerate(prog, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || !out.Contains("[x]=2") {
			t.Errorf("%s: RMW outcomes = %v, want exactly [x]=2", m, out.Sorted())
		}
	}
}
