// Package axiomatic is a second, independent formulation of the memory
// models: the Alglave-style axiomatic framework the paper uses to explain
// n6 (Section III-A, "if store-to-load forwarding (rfi) enforces memory
// order, we have a cycle").
//
// A candidate execution assigns every read a writer (rf) and every location
// a total order of its writes (ws, write serialization). The execution is
// allowed when
//
//   - uniproc: po-loc ∪ rf ∪ ws ∪ fr is acyclic per location (coherence);
//
//   - atomicity: for an RMW, no other write to the location is ws-between
//     the read's source and the RMW's write;
//
//   - ghb: ppo ∪ ws ∪ fr ∪ grf is acyclic, where ppo is program order
//     minus store→load pairs (TSO) plus fence-restored edges, and grf is
//     the set of rf edges the model makes globally visible:
//
//     x86-TSO: only external rf (rfe) — a core may read its own
//     store early (read-own-write-early, rMCA);
//     370-TSO: all rf, including internal (rfi) — store atomicity:
//     the forwarded load is ordered after its store's
//     insertion, exactly the paper's cycle in Figure 2;
//     SC:      all rf, with ppo = full program order.
//
// Enumerate explores every candidate execution of a (straight-line) litmus
// program and returns the reachable final outcomes, rendered identically to
// the operational checker so the two engines can be compared outcome for
// outcome.
package axiomatic

import (
	"fmt"

	"sesa/internal/checker"
	"sesa/internal/isa"
)

// Model selects the axiomatic model.
type Model int

// The three axiomatic models, mirroring the operational ones.
const (
	X86TSO Model = iota
	TSO370
	SC
)

var modelNames = [...]string{"x86-TSO(ax)", "370-TSO(ax)", "SC(ax)"}

// String names the model.
func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// evKind classifies events.
type evKind uint8

const (
	evRead evKind = iota
	evWrite
	evFence
)

// event is one memory event of a candidate execution.
type event struct {
	id     int
	thread int
	kind   evKind
	addr   uint64
	// reg is the destination register for reads.
	reg isa.Reg
	// val is the value written (writes; computed during evaluation) or
	// read (reads; derived from rf).
	val uint64
	// rmwPair links the read and write halves of an atomic RMW.
	rmwPair int // event id of the partner, or -1
	rmwAdd  uint64
}

// execution is the event graph of a program.
type execution struct {
	prog    checker.Program
	events  []*event
	byAddr  map[uint64][]*event // writes per address
	reads   []*event
	threads [][]*event // events in program order per thread
}

// buildExecution lowers a straight-line program to events. Branches are not
// supported (litmus programs are branch-free); ALU ops are evaluated during
// value propagation, not represented as events.
func buildExecution(p checker.Program) (*execution, error) {
	x := &execution{
		prog:   p,
		byAddr: make(map[uint64][]*event),
	}
	id := 0
	for ti, th := range p.Threads {
		var evs []*event
		for _, in := range th {
			switch in.Op {
			case isa.OpLoad:
				e := &event{id: id, thread: ti, kind: evRead, addr: in.Addr,
					reg: in.Dst, rmwPair: -1}
				id++
				evs = append(evs, e)
			case isa.OpStore:
				e := &event{id: id, thread: ti, kind: evWrite, addr: in.Addr,
					rmwPair: -1}
				id++
				evs = append(evs, e)
			case isa.OpFence:
				e := &event{id: id, thread: ti, kind: evFence, rmwPair: -1}
				id++
				evs = append(evs, e)
			case isa.OpRMW:
				r := &event{id: id, thread: ti, kind: evRead, addr: in.Addr,
					reg: in.Dst}
				id++
				w := &event{id: id, thread: ti, kind: evWrite, addr: in.Addr,
					rmwAdd: in.Imm}
				id++
				r.rmwPair = w.id
				w.rmwPair = r.id
				evs = append(evs, r, w)
			case isa.OpALU, isa.OpNop:
				// evaluated in value propagation / no event
			default:
				return nil, fmt.Errorf("axiomatic: unsupported op %v", in.Op)
			}
		}
		x.threads = append(x.threads, evs)
	}
	for _, th := range x.threads {
		for _, e := range th {
			x.events = append(x.events, e)
			if e.kind == evWrite {
				x.byAddr[e.addr] = append(x.byAddr[e.addr], e)
			}
			if e.kind == evRead {
				x.reads = append(x.reads, e)
			}
		}
	}
	return x, nil
}

// candidate is one rf + ws assignment. rf[readID] = write event id, or -1
// for the initial value. ws[addr] is a permutation of the writes to addr.
type candidate struct {
	rf map[int]int
	ws map[uint64][]*event
}

// Enumerate returns all outcomes of allowed candidate executions under m.
func Enumerate(p checker.Program, m Model) (checker.OutcomeSet, error) {
	x, err := buildExecution(p)
	if err != nil {
		return nil, err
	}
	out := make(checker.OutcomeSet)

	rfChoices := make([]int, len(x.reads))
	var assignRF func(i int)
	assignRF = func(i int) {
		if i == len(x.reads) {
			x.enumerateWS(m, rfChoices, out)
			return
		}
		r := x.reads[i]
		rfChoices[i] = -1 // initial value
		assignRF(i + 1)
		for _, w := range x.byAddr[r.addr] {
			if w.id == r.rmwPair {
				continue // an RMW read cannot read its own write
			}
			rfChoices[i] = w.id
			assignRF(i + 1)
		}
	}
	assignRF(0)
	return out, nil
}

// enumerateWS enumerates write serializations for the fixed rf choice and
// records allowed outcomes.
func (x *execution) enumerateWS(m Model, rfChoices []int, out checker.OutcomeSet) {
	rf := make(map[int]int, len(rfChoices))
	for i, r := range x.reads {
		rf[r.id] = rfChoices[i]
	}
	addrs := make([]uint64, 0, len(x.byAddr))
	for a := range x.byAddr {
		addrs = append(addrs, a)
	}
	var rec func(ai int, c *candidate)
	rec = func(ai int, c *candidate) {
		if ai == len(addrs) {
			x.tryCandidate(m, c, out)
			return
		}
		a := addrs[ai]
		writes := x.byAddr[a]
		perm := make([]*event, len(writes))
		var permute func(used uint, depth int)
		permute = func(used uint, depth int) {
			if depth == len(writes) {
				c.ws[a] = append([]*event(nil), perm...)
				rec(ai+1, c)
				return
			}
			for i, w := range writes {
				if used&(1<<uint(i)) != 0 {
					continue
				}
				perm[depth] = w
				permute(used|1<<uint(i), depth+1)
			}
		}
		permute(0, 0)
	}
	rec(0, &candidate{rf: rf, ws: make(map[uint64][]*event)})
}

// tryCandidate evaluates values, checks the axioms and records the outcome.
func (x *execution) tryCandidate(m Model, c *candidate, out checker.OutcomeSet) {
	if !x.propagateValues(c) {
		return
	}
	if !x.uniproc(c) || !x.atomicity(c) {
		return
	}
	if !x.ghbAcyclic(m, c) {
		return
	}
	out[x.outcome(c)] = true
}

// propagateValues computes read and write values from the rf assignment and
// the threads' register dataflow; it iterates to a fixed point (cross-thread
// value cycles converge or the candidate is rejected).
func (x *execution) propagateValues(c *candidate) bool {
	for iter := 0; iter < len(x.events)+2; iter++ {
		changed := false
		for ti, th := range x.prog.Threads {
			var regs [isa.NumRegs]uint64
			evIdx := 0
			evs := x.threads[ti]
			for _, in := range th {
				switch in.Op {
				case isa.OpLoad:
					e := evs[evIdx]
					evIdx++
					var v uint64
					if w := c.rf[e.id]; w >= 0 {
						v = x.events[w].val
					} else {
						v = x.prog.Init[e.addr]
					}
					if e.val != v {
						e.val = v
						changed = true
					}
					if e.reg != isa.RegNone {
						regs[e.reg] = v
					}
				case isa.OpStore:
					e := evs[evIdx]
					evIdx++
					v := in.Imm
					if in.Src1 != isa.RegNone {
						v = regs[in.Src1]
					}
					if e.val != v {
						e.val = v
						changed = true
					}
				case isa.OpRMW:
					r, w := evs[evIdx], evs[evIdx+1]
					evIdx += 2
					var v uint64
					if src := c.rf[r.id]; src >= 0 {
						v = x.events[src].val
					} else {
						v = x.prog.Init[r.addr]
					}
					if r.val != v {
						r.val = v
						changed = true
					}
					if r.reg != isa.RegNone {
						regs[r.reg] = v
					}
					if w.val != v+w.rmwAdd {
						w.val = v + w.rmwAdd
						changed = true
					}
				case isa.OpFence:
					evIdx++
				case isa.OpALU:
					var a, b uint64
					if in.Src1 != isa.RegNone {
						a = regs[in.Src1]
					}
					if in.Src2 != isa.RegNone {
						b = regs[in.Src2]
					}
					if in.Dst != isa.RegNone {
						regs[in.Dst] = a + b + in.Imm
					}
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false // value cycle did not converge
}

// wsPos returns the position of write w in its location's serialization.
func (c *candidate) wsPos(x *execution, w *event) int {
	for i, e := range c.ws[w.addr] {
		if e == w {
			return i
		}
	}
	return -1
}

// frTargets returns, for read r, the writes that are from-read successors:
// every write to r's location ws-after r's source.
func (x *execution) frTargets(c *candidate, r *event) []*event {
	order := c.ws[r.addr]
	src := c.rf[r.id]
	start := 0
	if src >= 0 {
		start = c.wsPos(x, x.events[src]) + 1
	}
	return order[start:]
}

// uniproc checks per-location coherence: po-loc ∪ rf ∪ ws ∪ fr acyclic. For
// straight-line TSO-class programs it suffices to check the standard
// per-location conditions directly.
func (x *execution) uniproc(c *candidate) bool {
	return x.acyclic(func(add func(a, b *event)) {
		for _, th := range x.threads {
			for i, e := range th {
				if e.kind == evFence {
					continue
				}
				for j := i + 1; j < len(th); j++ {
					f := th[j]
					if f.kind == evFence || f.addr != e.addr {
						continue
					}
					add(e, f) // po-loc
				}
			}
		}
		x.comEdges(c, add)
	})
}

// atomicity: for every RMW, no foreign write to the location sits ws-between
// the read's source and the RMW's write.
func (x *execution) atomicity(c *candidate) bool {
	for _, r := range x.reads {
		if r.rmwPair < 0 {
			continue
		}
		w := x.events[r.rmwPair]
		wPos := c.wsPos(x, w)
		srcPos := -1
		if src := c.rf[r.id]; src >= 0 {
			srcPos = c.wsPos(x, x.events[src])
		}
		// The RMW's write must immediately follow the read's source.
		if wPos != srcPos+1 {
			return false
		}
	}
	return true
}

// comEdges adds rf, ws and fr edges.
func (x *execution) comEdges(c *candidate, add func(a, b *event)) {
	for a := range x.byAddr {
		order := c.ws[a]
		for i := 0; i+1 < len(order); i++ {
			add(order[i], order[i+1]) // ws
		}
	}
	for _, r := range x.reads {
		if src := c.rf[r.id]; src >= 0 {
			add(x.events[src], r) // rf (used by uniproc; ghb filters)
		}
		for _, w := range x.frTargets(c, r) {
			add(r, w) // fr
		}
	}
}

// ghbAcyclic checks the model's global-happens-before acyclicity.
func (x *execution) ghbAcyclic(m Model, c *candidate) bool {
	return x.acyclic(func(add func(a, b *event)) {
		// ppo: program order minus store->load (TSO); SC keeps all.
		for _, th := range x.threads {
			for i, e := range th {
				for j := i + 1; j < len(th); j++ {
					f := th[j]
					if e.kind == evFence || f.kind == evFence {
						continue
					}
					// TSO relaxes only store->load - and never across
					// an RMW: locked operations drain the store
					// buffer, so both halves of an RMW order fully
					// (as in the operational model, where an RMW runs
					// with an empty SB and writes memory directly).
					relaxed := m != SC && e.kind == evWrite && f.kind == evRead &&
						e.rmwPair < 0 && f.rmwPair < 0
					if relaxed && !x.fenceBetween(th, i, j) {
						continue
					}
					add(e, f)
				}
			}
		}
		// ws and fr are always global.
		for a := range x.byAddr {
			order := c.ws[a]
			for i := 0; i+1 < len(order); i++ {
				add(order[i], order[i+1])
			}
		}
		for _, r := range x.reads {
			for _, w := range x.frTargets(c, r) {
				add(r, w)
			}
		}
		// grf: which rf edges are globally ordering.
		for _, r := range x.reads {
			src := c.rf[r.id]
			if src < 0 {
				continue
			}
			w := x.events[src]
			if w.thread != r.thread || m != X86TSO {
				// rfe always; rfi only when the model enforces
				// store atomicity (370, SC) — the paper's Figure 2
				// cycle.
				add(w, r)
			}
		}
	})
}

// fenceBetween reports whether a fence separates indices i and j in th.
func (x *execution) fenceBetween(th []*event, i, j int) bool {
	for k := i + 1; k < j; k++ {
		if th[k].kind == evFence {
			return true
		}
	}
	return false
}

// acyclic builds the edge set via the callback and checks for cycles.
func (x *execution) acyclic(build func(add func(a, b *event))) bool {
	n := len(x.events)
	adj := make([][]int, n)
	build(func(a, b *event) {
		adj[a.id] = append(adj[a.id], b.id)
	})
	state := make([]uint8, n) // 0 unvisited, 1 in stack, 2 done
	var dfs func(v int) bool
	dfs = func(v int) bool {
		state[v] = 1
		for _, w := range adj[v] {
			switch state[w] {
			case 1:
				return false
			case 0:
				if !dfs(w) {
					return false
				}
			}
		}
		state[v] = 2
		return true
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 && !dfs(v) {
			return false
		}
	}
	return true
}

// outcome renders the observables exactly like the operational checker.
func (x *execution) outcome(c *candidate) checker.Outcome {
	return checker.RenderOutcome(x.prog, axFinal{x: x, c: c})
}

type axFinal struct {
	x *execution
	c *candidate
}

func (f axFinal) Reg(thread int, r isa.Reg) uint64 {
	// The register's final value is the last read (or RMW read) writing it
	// in program order; litmus observables always come from loads.
	var v uint64
	for _, e := range f.x.threads[thread] {
		if e.kind == evRead && e.reg == r {
			v = e.val
		}
	}
	return v
}

func (f axFinal) Mem(addr uint64) uint64 {
	order := f.c.ws[addr]
	if len(order) == 0 {
		return f.x.prog.Init[addr]
	}
	return order[len(order)-1].val
}
