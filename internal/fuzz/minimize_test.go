package fuzz

import (
	"reflect"
	"testing"

	"sesa/internal/checker"
)

// TestMinimizeShrinksToWitnessCore: a padded n6 — extra thread, junk loads
// and stores to an unrelated variable — minimized against "the x86-vs-370
// diff is still non-empty" must shed the padding and land back on the n6
// core, which is itself minimal (every one of its 5 ops pins the signature
// outcome).
func TestMinimizeShrinksToWitnessCore(t *testing.T) {
	p, err := Parse(`
init x=0 y=0 z=0
st x, 1    | st y, 2   | st z, 9
ld z -> a0 | st x, 2   | ld z -> c0
ld x -> a1 | ld z -> b0 | .
ld y -> a2 | .          | .
observe [x] [y]
`)
	if err != nil {
		t.Fatal(err)
	}
	failing := func(q checker.Program) bool {
		return len(checker.Compare(q, checker.X86TSO, checker.TSO370)) > 0
	}
	if !failing(p) {
		t.Fatal("padded n6 must distinguish the models before minimization")
	}
	min := Minimize(p, failing)
	if !failing(min) {
		t.Fatal("minimized program no longer fails")
	}
	if len(min.Threads) != 2 {
		t.Errorf("padding thread survived: %d threads", len(min.Threads))
	}
	ops := 0
	for _, th := range min.Threads {
		ops += len(th)
	}
	if ops != 5 {
		t.Errorf("want the 5-op n6 core after minimization, got %d ops", ops)
	}
	// Determinism: minimizing twice gives the identical program.
	min2 := Minimize(p, failing)
	if !reflect.DeepEqual(min, min2) {
		t.Error("minimization is not deterministic")
	}
}

// TestMinimizeDropsThread: with a failure predicate that ignores one whole
// thread, that thread must be removed and the remaining observables
// renumbered.
func TestMinimizeDropsThread(t *testing.T) {
	p, err := Parse(`
st x, 1    | ld y -> b0 | st y, 3
.          | ld x -> b1 | .
`)
	if err != nil {
		t.Fatal(err)
	}
	// Failure depends only on threads reading/writing x.
	failing := func(q checker.Program) bool {
		for _, th := range q.Threads {
			for _, in := range th {
				if in.Addr == VarAddr(0) && in.Op.IsMem() {
					goto hasX
				}
			}
		}
		return false
	hasX:
		return len(q.Threads) >= 2
	}
	min := Minimize(p, failing)
	if len(min.Threads) != 2 {
		t.Fatalf("want 2 threads after minimization, got %d", len(min.Threads))
	}
	for _, ro := range min.Regs {
		if ro.Thread >= len(min.Threads) {
			t.Fatalf("observable %v points past the surviving threads", ro)
		}
	}
}

// TestMinimizeNeverReturnsNonFailing: the result of Minimize always
// satisfies the predicate, even for a predicate that rejects every shrink.
func TestMinimizeNeverReturnsNonFailing(t *testing.T) {
	p := Generate(3, DefaultBudget())
	orig, _ := Render(p)
	failing := func(q checker.Program) bool {
		text, err := Render(q)
		return err == nil && text == orig
	}
	min := Minimize(p, failing)
	if text, _ := Render(min); text != orig {
		t.Fatal("minimize changed a program whose every shrink fails the predicate")
	}
}
