package fuzz

import (
	"testing"

	"sesa/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	b := DefaultBudget()
	for seed := uint64(0); seed < 50; seed++ {
		p1 := Generate(seed, b)
		p2 := Generate(seed, b)
		t1, err := Render(p1)
		if err != nil {
			t.Fatalf("seed %d: render: %v", seed, err)
		}
		t2, err := Render(p2)
		if err != nil {
			t.Fatalf("seed %d: render: %v", seed, err)
		}
		if t1 != t2 {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, t1, t2)
		}
	}
}

func TestGenerateRespectsBudget(t *testing.T) {
	budgets := []Budget{
		{Threads: 2, Ops: 2, Addrs: 1, Fences: 0, RMWs: 0},
		{Threads: 2, Ops: 4, Addrs: 2, Fences: 1, RMWs: 1},
		{Threads: 4, Ops: 6, Addrs: 3, Fences: 2, RMWs: 2},
		{Threads: 6, Ops: 3, Addrs: 6, Fences: 1, RMWs: 0},
	}
	for _, b := range budgets {
		if err := b.Validate(); err != nil {
			t.Fatalf("budget %v: %v", b, err)
		}
		for seed := uint64(0); seed < 200; seed++ {
			p := Generate(seed, b)
			if len(p.Threads) < 2 || len(p.Threads) > b.Threads {
				t.Fatalf("budget %v seed %d: %d threads", b, seed, len(p.Threads))
			}
			storesAt := map[uint64]int{}
			for ti, th := range p.Threads {
				if len(th) > b.Ops {
					t.Fatalf("budget %v seed %d thread %d: %d ops", b, seed, ti, len(th))
				}
				fences, rmws := 0, 0
				for _, in := range th {
					switch in.Op {
					case isa.OpFence:
						fences++
					case isa.OpRMW:
						rmws++
						storesAt[in.Addr]++
					case isa.OpStore:
						storesAt[in.Addr]++
					case isa.OpLoad:
					default:
						t.Fatalf("budget %v seed %d: unexpected op %v", b, seed, in.Op)
					}
					if in.Op.IsMem() {
						idx := int((in.Addr - varBase) / 0x40)
						if idx < 0 || idx >= b.Addrs {
							t.Fatalf("budget %v seed %d: addr %#x outside budget", b, seed, in.Addr)
						}
					}
				}
				if fences > b.Fences || rmws > b.RMWs {
					t.Fatalf("budget %v seed %d thread %d: %d fences, %d rmws", b, seed, ti, fences, rmws)
				}
			}
			for a, n := range storesAt {
				if n > maxStoresPerAddr {
					t.Fatalf("budget %v seed %d: %d stores to %#x", b, seed, n, a)
				}
			}
			if err := p.Threads[0].Validate(); err != nil {
				t.Fatalf("budget %v seed %d: %v", b, seed, err)
			}
		}
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in      string
		want    Budget
		wantErr bool
	}{
		{"", DefaultBudget(), false},
		{"threads=2,ops=4,addrs=2,fences=1,rmws=1", Budget{2, 4, 2, 1, 1}, false},
		{"threads=4", Budget{4, 4, 2, 1, 1}, false},
		{"ops=12,rmws=0", Budget{3, 12, 2, 1, 0}, false},
		{"threads=1", Budget{}, true},
		{"ops=99", Budget{}, true},
		{"bogus=3", Budget{}, true},
		{"threads", Budget{}, true},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if c.wantErr != (err != nil) {
			t.Fatalf("ParseBudget(%q): err=%v, wantErr=%v", c.in, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseBudget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// String/Parse round trip.
	b := Budget{4, 6, 3, 2, 1}
	got, err := ParseBudget(b.String())
	if err != nil || got != b {
		t.Fatalf("round trip %v -> %v (%v)", b, got, err)
	}
}
