// Package fuzz is the repository's standing correctness harness: a seeded,
// deterministic random litmus generator plus a three-way cross-validation
// driver that checks every generated program against the timing simulator
// (witness search across seeds and configurations), the exhaustive
// operational checker and the axiomatic candidate-execution enumerator.
//
// The three engines share nothing but the micro-ISA: the simulator is a
// cycle-accurate microarchitecture, the checker a state-space search over an
// abstract machine, and the axiomatic enumerator a filter over rf/ws
// assignments. An outcome the simulator witnesses that the corresponding
// model forbids — or any checker/axiomatic disagreement — is a bug in one of
// them, and the seed plus the ConsistencyChecker-style text of the program
// make the failure a one-line reproduction.
package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"sesa/internal/checker"
	"sesa/internal/isa"
)

// Budget bounds the shape of generated programs. All limits are inclusive
// maxima; the generator draws the actual shape pseudo-randomly per seed.
type Budget struct {
	// Threads is the maximum thread count (at least 2).
	Threads int
	// Ops is the maximum number of operations per thread (at least 2).
	Ops int
	// Addrs is the number of distinct shared locations (1..6: x, y, z, w,
	// u, v — each on its own cache line).
	Addrs int
	// Fences is the maximum number of fences per thread.
	Fences int
	// RMWs is the maximum number of atomic read-modify-writes per thread.
	RMWs int
}

// DefaultBudget is the CI fuzz budget: 2-3 threads of up to 4 operations
// over two locations, small enough that exhaustive enumeration of every
// generated program is instantaneous.
func DefaultBudget() Budget {
	return Budget{Threads: 3, Ops: 4, Addrs: 2, Fences: 1, RMWs: 1}
}

// String renders the budget in the -budget flag syntax.
func (b Budget) String() string {
	return fmt.Sprintf("threads=%d,ops=%d,addrs=%d,fences=%d,rmws=%d",
		b.Threads, b.Ops, b.Addrs, b.Fences, b.RMWs)
}

// Validate checks the budget against the generator's hard limits.
func (b Budget) Validate() error {
	switch {
	case b.Threads < 2 || b.Threads > 6:
		return fmt.Errorf("fuzz: budget threads=%d out of range [2,6]", b.Threads)
	case b.Ops < 2 || b.Ops > 12:
		return fmt.Errorf("fuzz: budget ops=%d out of range [2,12]", b.Ops)
	case b.Addrs < 1 || b.Addrs > len(varNames):
		return fmt.Errorf("fuzz: budget addrs=%d out of range [1,%d]", b.Addrs, len(varNames))
	case b.Fences < 0 || b.RMWs < 0:
		return fmt.Errorf("fuzz: budget fences/rmws must be non-negative")
	}
	return nil
}

// ParseBudget parses the -budget flag syntax, e.g.
// "threads=2,ops=4,addrs=2,fences=1,rmws=1". Omitted keys keep their
// DefaultBudget value; unknown keys are rejected.
func ParseBudget(s string) (Budget, error) {
	b := DefaultBudget()
	if strings.TrimSpace(s) == "" {
		return b, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, valStr, ok := strings.Cut(kv, "=")
		if !ok {
			return b, fmt.Errorf("fuzz: budget term %q is not key=value", kv)
		}
		var val int
		if _, err := fmt.Sscanf(valStr, "%d", &val); err != nil {
			return b, fmt.Errorf("fuzz: budget term %q: %v", kv, err)
		}
		switch key {
		case "threads":
			b.Threads = val
		case "ops":
			b.Ops = val
		case "addrs":
			b.Addrs = val
		case "fences":
			b.Fences = val
		case "rmws":
			b.RMWs = val
		default:
			return b, fmt.Errorf("fuzz: unknown budget key %q (want threads, ops, addrs, fences, rmws)", key)
		}
	}
	return b, b.Validate()
}

// rng is a splitmix64 stream: every draw is a pure function of the seed and
// the draw count, so a program is fully determined by (seed, budget).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	// Pre-mix so that adjacent seeds (the driver hands out seed, seed+1,
	// ...) produce uncorrelated streams.
	r := &rng{state: seed + 0x9e3779b97f4a7c15}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// opKind is the generator's pre-lowering operation alphabet.
type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opStoreReg
	opFence
	opRMW
)

// opSpec is one drawn operation before lowering to the micro-ISA.
type opSpec struct {
	kind opKind
	addr int    // variable index for memory ops
	val  uint64 // store value / RMW addend
	src  int    // opStoreReg: per-thread load index whose register is stored
}

// maxStoresPerAddr bounds the write serializations the axiomatic enumerator
// must permute (k! per location).
const maxStoresPerAddr = 4

// complexityCap bounds the candidate-execution count of a generated program
// (product of per-read rf choices and per-location ws permutations); programs
// over the cap are deterministically trimmed from the back.
const complexityCap = 500_000

// Generate builds the seeded random litmus program for (seed, budget). The
// same pair always yields the identical program; adjacent seeds yield
// unrelated programs. Every load (and RMW) becomes a named register
// observable and every referenced location a memory observable, so outcome
// strings discriminate executions as finely as the ISA allows.
func Generate(seed uint64, b Budget) checker.Program {
	r := newRNG(seed)

	nThreads := 2
	if b.Threads > 2 {
		nThreads += r.intn(b.Threads - 1)
	}

	// Distinct store values per location discriminate writers in outcomes.
	nextVal := make([]uint64, b.Addrs)
	storesAt := make([]int, b.Addrs)

	ops := make([][]opSpec, nThreads)
	for ti := 0; ti < nThreads; ti++ {
		n := 2
		if b.Ops > 2 {
			n += r.intn(b.Ops - 1)
		}
		fencesLeft, rmwsLeft := b.Fences, b.RMWs
		loads := 0
		for i := 0; i < n; i++ {
			addr := r.intn(b.Addrs)
			roll := r.intn(10)
			var op opSpec
			switch {
			case roll < 4: // load
				op = opSpec{kind: opLoad, addr: addr}
			case roll < 7: // store of a fresh immediate
				op = opSpec{kind: opStore, addr: addr}
			case roll < 8 && fencesLeft > 0:
				op = opSpec{kind: opFence}
				fencesLeft--
			case roll < 9 && rmwsLeft > 0:
				op = opSpec{kind: opRMW, addr: addr, val: uint64(1 + r.intn(2))}
				rmwsLeft--
			case loads > 0: // store a previously loaded register
				op = opSpec{kind: opStoreReg, addr: addr, src: r.intn(loads)}
			default:
				op = opSpec{kind: opStore, addr: addr}
			}
			// Keep write serializations enumerable: excess stores degrade
			// to loads.
			if (op.kind == opStore || op.kind == opStoreReg || op.kind == opRMW) &&
				storesAt[op.addr] >= maxStoresPerAddr {
				op = opSpec{kind: opLoad, addr: addr}
			}
			switch op.kind {
			case opLoad:
				loads++
			case opStore:
				nextVal[op.addr]++
				op.val = nextVal[op.addr]
				storesAt[op.addr]++
			case opStoreReg, opRMW:
				storesAt[op.addr]++
			}
			ops[ti] = append(ops[ti], op)
		}
	}

	trimToComplexityCap(ops, b)
	return lower(seed, ops, b)
}

// trimToComplexityCap removes memory operations from the back of the program
// until the candidate-execution estimate fits the cap. Deterministic: it
// scans threads last-to-first.
func trimToComplexityCap(ops [][]opSpec, b Budget) {
	for estimate(ops, b) > complexityCap {
		trimmed := false
		for ti := len(ops) - 1; ti >= 0 && !trimmed; ti-- {
			th := ops[ti]
			for i := len(th) - 1; i >= 0; i-- {
				if th[i].kind == opFence {
					continue
				}
				ops[ti] = append(th[:i:i], th[i+1:]...)
				trimmed = true
				break
			}
		}
		if !trimmed {
			return
		}
	}
}

// estimate approximates the axiomatic candidate count: every read has
// (writes-to-its-location + 1) rf choices and every location's writes
// permute.
func estimate(ops [][]opSpec, b Budget) int {
	writes := make([]int, b.Addrs)
	reads := make([]int, b.Addrs)
	for _, th := range ops {
		for _, op := range th {
			switch op.kind {
			case opLoad:
				reads[op.addr]++
			case opStore, opStoreReg:
				writes[op.addr]++
			case opRMW:
				reads[op.addr]++
				writes[op.addr]++
			}
		}
	}
	total := 1
	for a := 0; a < b.Addrs; a++ {
		for i := 0; i < reads[a]; i++ {
			total *= writes[a] + 1
			if total > complexityCap {
				return total
			}
		}
		for k := writes[a]; k > 1; k-- {
			total *= k
			if total > complexityCap {
				return total
			}
		}
	}
	return total
}

// lower turns the drawn operations into a checker.Program, assigning
// registers and observable names per thread (a0, a1 for thread 0, b0 for
// thread 1, ...) and observing every referenced location.
func lower(seed uint64, ops [][]opSpec, b Budget) checker.Program {
	p := checker.Program{Init: make(map[uint64]uint64)}
	used := make(map[int]bool)
	for ti, th := range ops {
		var prog isa.Program
		reg := isa.Reg(1)
		obs := 0
		var loadRegs []isa.Reg
		for _, op := range th {
			switch op.kind {
			case opLoad, opRMW:
				var in isa.Inst
				if op.kind == opLoad {
					in = isa.Load(reg, VarAddr(op.addr))
				} else {
					in = isa.RMW(reg, VarAddr(op.addr), op.val)
				}
				prog = append(prog, in)
				p.Regs = append(p.Regs, checker.RegObs{
					Thread: ti, Reg: reg, Name: obsName(ti, obs)})
				if op.kind == opLoad {
					loadRegs = append(loadRegs, reg)
				}
				reg++
				obs++
				used[op.addr] = true
			case opStore:
				prog = append(prog, isa.StoreImm(VarAddr(op.addr), op.val))
				used[op.addr] = true
			case opStoreReg:
				prog = append(prog, isa.StoreReg(VarAddr(op.addr), loadRegs[op.src]))
				used[op.addr] = true
			case opFence:
				prog = append(prog, isa.Fence())
			}
		}
		p.Threads = append(p.Threads, prog)
	}
	addrs := make([]int, 0, len(used))
	for a := range used {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		p.Init[VarAddr(a)] = 0
		p.Mem = append(p.Mem, checker.MemObs{Addr: VarAddr(a), Name: VarName(a)})
	}
	_ = seed
	return p
}

// obsName is the observable name of thread ti's i-th observed register.
func obsName(ti, i int) string {
	return fmt.Sprintf("%c%d", 'a'+ti, i)
}
