package fuzz

import (
	"strings"
	"testing"
)

func TestExportAlloyN6(t *testing.T) {
	p, err := Parse(`
init x=0 y=0
st x, 1    | st y, 2
ld x -> a0 | st x, 2
ld y -> a1 | .
observe [x] [y]
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExportAlloy("n6", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module n6[E]",
		"open exec_H[E]",
		"pred n6 [x : Exec_H]",
		"some disj e1, e2, e3, e4, e5 : E",
		"x.ev = e1 + e2 + e3 + e4 + e5",
		// Thread 0 program order is transitive: three events, three pairs.
		"(e1 -> e2) + (e1 -> e3) + (e2 -> e3)",
		"x.W = e1 + e4 + e5",
		"x.R = e2 + e3",
		"x.F = none",
		"x.sthd = sq[e1 + e2 + e3] + sq[e4 + e5]",
		// x-events and y-events partition by location.
		"sq[e1 + e2 + e5] + sq[e3 + e4]",
		"x.atom = none->none",
		"run { some x : Exec_H | n6[x] } for 5 E",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// rf and co must be left free for the external enumerator.
	if strings.Contains(out, "x.rf =") || strings.Contains(out, "x.co =") {
		t.Error("rf/co must not be constrained")
	}
}

func TestExportAlloyRMWAndFence(t *testing.T) {
	p, err := Parse(`
rmw x, 1 -> a0
fence
ld x -> a1
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExportAlloy("rmw-fence", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// RMW splits into an atom-related read-write pair.
		"x.atom = (e1 -> e2)",
		"x.F = e3",
		"x.R = e1 + e4",
		"x.W = e2",
		"pred rmw_fence",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestExportAlloyDeterministic(t *testing.T) {
	p := Generate(11, DefaultBudget())
	a, err := ExportAlloy("seed11", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExportAlloy("seed11", p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two exports of the same program differ")
	}
}
