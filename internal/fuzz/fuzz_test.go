package fuzz

import (
	"reflect"
	"testing"

	"sesa/internal/axiomatic"
	"sesa/internal/checker"
	"sesa/internal/config"
)

// TestCheckerVsAxiomaticAgreement is the generator-driven agreement
// property: over seeded random programs of several budgets, the operational
// checker and the axiomatic enumerator produce identical outcome sets for
// all three models. Deterministic: fixed seeds, fixed budgets.
func TestCheckerVsAxiomaticAgreement(t *testing.T) {
	cases := []struct {
		name  string
		b     Budget
		seeds uint64
	}{
		{"two-thread", Budget{Threads: 2, Ops: 4, Addrs: 2, Fences: 1, RMWs: 1}, 60},
		{"three-thread", Budget{Threads: 3, Ops: 3, Addrs: 2, Fences: 1, RMWs: 1}, 40},
		{"three-var", Budget{Threads: 3, Ops: 4, Addrs: 3, Fences: 0, RMWs: 0}, 30},
		{"rmw-heavy", Budget{Threads: 2, Ops: 5, Addrs: 1, Fences: 0, RMWs: 3}, 30},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seeds := c.seeds
			if testing.Short() {
				seeds /= 4 // keep the -race -short CI leg quick
			}
			for seed := uint64(0); seed < seeds; seed++ {
				p := Generate(seed, c.b)
				rep, err := CrossValidate(p, Options{}) // model legs only
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Ok() {
					text, _ := Render(p)
					t.Fatalf("seed %d: %d mismatches, first: %v\nprogram:\n%s",
						seed, len(rep.Mismatches), rep.Mismatches[0], text)
				}
			}
		})
	}
}

// TestCrossValidateDetectsOpVsAxDivergence: feeding the X86 operational set
// against the 370 axiomatic model on n6 must produce mismatches — the
// detector is live, not vacuously green.
func TestCrossValidateDetectsOpVsAxDivergence(t *testing.T) {
	p, err := Parse(`
init x=0 y=0
st x, 1    | st y, 2
ld x -> a0 | st x, 2
ld y -> a1 | .
observe [x] [y]
`)
	if err != nil {
		t.Fatal(err)
	}
	op := checker.Enumerate(p, checker.X86TSO)
	ax, err := axiomatic.Enumerate(p, axiomatic.TSO370)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(op, ax) {
		t.Fatal("x86 operational and 370 axiomatic unexpectedly agree on n6; the oracle would be blind")
	}
}

// TestWitnessStaysWithinModel runs the full three-way validation, simulator
// included, on a few seeds: every witnessed outcome must be model-allowed.
func TestWitnessStaysWithinModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator witness sweep is slow")
	}
	opt := Options{
		Models:      []config.Model{config.X86, config.SLFSoSKey370},
		SimIters:    2,
		Pressure:    3,
		SmallConfig: true,
		SimSeed:     1,
	}
	b := DefaultBudget()
	for seed := uint64(1); seed <= 6; seed++ {
		p := Generate(seed, b)
		rep, err := CrossValidate(p, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Ok() {
			text, _ := Render(p)
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, rep.Mismatches[0], text)
		}
	}
}

// TestRunManyDeterministicAcrossJobs: the parallel driver returns identical
// reports regardless of worker count, and program i is reproduced by seed
// base+i alone.
func TestRunManyDeterministicAcrossJobs(t *testing.T) {
	b := DefaultBudget()
	opt := Options{} // model legs only: fast and fully deterministic
	serial := RunMany(100, 20, b, opt, 1)
	parallel := RunMany(100, 20, b, opt, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Seed != p.Seed || s.Index != p.Index {
			t.Fatalf("report %d: seed/index differ", i)
		}
		if !reflect.DeepEqual(s.Rep.OpCount, p.Rep.OpCount) ||
			s.Rep.Interesting != p.Rep.Interesting ||
			!reflect.DeepEqual(s.Rep.Mismatches, p.Rep.Mismatches) {
			t.Fatalf("report %d differs across jobs", i)
		}
	}
	// Reproduction: program i of the batch == program 0 of a -count 1 run
	// seeded with its seed.
	solo := RunMany(serial[7].Seed, 1, b, opt, 1)
	if !reflect.DeepEqual(solo[0].Rep.OpCount, serial[7].Rep.OpCount) {
		t.Fatal("seed-based reproduction changed the program")
	}
	t1, _ := Render(Generate(serial[7].Seed, b))
	t2, _ := Render(solo[0].Rep.Prog)
	if t1 != t2 {
		t.Fatal("solo run generated a different program")
	}
}
