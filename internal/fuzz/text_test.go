package fuzz

import (
	"reflect"
	"strings"
	"testing"

	"sesa/internal/checker"
	"sesa/internal/isa"
)

func TestRenderParseRoundTrip(t *testing.T) {
	b := Budget{Threads: 4, Ops: 6, Addrs: 3, Fences: 1, RMWs: 1}
	for seed := uint64(0); seed < 100; seed++ {
		p := Generate(seed, b)
		text, err := Render(p)
		if err != nil {
			t.Fatalf("seed %d: render: %v", seed, err)
		}
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: parse:\n%s\n%v", seed, text, err)
		}
		if !reflect.DeepEqual(p.Threads, q.Threads) {
			t.Fatalf("seed %d: threads differ after round trip:\n%s", seed, text)
		}
		if !reflect.DeepEqual(p.Regs, q.Regs) || !reflect.DeepEqual(p.Mem, q.Mem) {
			t.Fatalf("seed %d: observables differ after round trip:\n%s", seed, text)
		}
		if !reflect.DeepEqual(p.Init, q.Init) {
			t.Fatalf("seed %d: init differs after round trip:\n%s", seed, text)
		}
		// Structural identity (checked above for every seed) already implies
		// identical outcomes; enumerate a sample anyway as an end-to-end
		// check that rendering changed no semantics.
		if seed%20 != 0 {
			continue
		}
		for _, m := range []checker.Model{checker.SC, checker.TSO370, checker.X86TSO} {
			po, qo := checker.Enumerate(p, m), checker.Enumerate(q, m)
			if !reflect.DeepEqual(po, qo) {
				t.Fatalf("seed %d %s: outcome sets differ after round trip", seed, m)
			}
		}
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
# n6, Figure 2 of the paper
init x=0 y=0
st x, 1    | st y, 2
ld x -> a0 | st x, 2
ld y -> a1 | .
observe [x] [y]
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Threads) != 2 || len(p.Threads[0]) != 3 || len(p.Threads[1]) != 2 {
		t.Fatalf("unexpected shape: %v", p.Threads)
	}
	if p.Threads[0][1].Op != isa.OpLoad || p.Threads[0][1].Addr != VarAddr(0) {
		t.Fatalf("thread 0 inst 1 = %v", p.Threads[0][1])
	}
	if len(p.Regs) != 2 || p.Regs[0].Name != "a0" || p.Regs[1].Name != "a1" {
		t.Fatalf("regs = %v", p.Regs)
	}
	if len(p.Mem) != 2 || p.Mem[0].Name != "x" || p.Mem[1].Name != "y" {
		t.Fatalf("mem = %v", p.Mem)
	}
	// The parsed program must reproduce the paper's n6 sets: the signature
	// outcome is x86-only.
	diff := checker.Compare(p, checker.X86TSO, checker.TSO370)
	found := false
	for _, o := range diff {
		if o == "a0=1 a1=0 [x]=1 [y]=2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("n6 signature missing from x86-vs-370 diff: %v", diff)
	}
}

func TestParseStoreReg(t *testing.T) {
	src := `
ld x -> a0 | st y, 7
st y, a0   | .
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Threads[0][1]
	if st.Op != isa.OpStore || st.Src1 != p.Regs[0].Reg {
		t.Fatalf("store-reg did not bind the load's register: %v", st)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                         // no rows
		"ld q -> a0",               // unknown variable
		"st x",                     // malformed store
		"st x, nosuch",             // unknown register name
		"frob x",                   // unknown mnemonic
		"init x=zz\nld x",          // bad init value
		"ld x\nobserve [q]",        // bad observe
		"rmw x -> a0",              // rmw without addend
		"init x=1\ninit y=2\nld x", // duplicate init
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestRenderRejectsUnnameableAddr(t *testing.T) {
	p := checker.Program{
		Threads: []isa.Program{{isa.Load(1, 0x9999)}},
		Init:    map[uint64]uint64{},
	}
	if _, err := Render(p); err == nil || !strings.Contains(err.Error(), "named location") {
		t.Fatalf("want named-location error, got %v", err)
	}
}
