// Failure minimization: shrink a failing program while it keeps failing, so
// the repro dumped on a cross-validation mismatch is as small as the bug
// allows.
package fuzz

import (
	"sesa/internal/checker"
	"sesa/internal/isa"
)

// Failing reports whether a candidate program still exhibits the failure
// being minimized (for the fuzzer: CrossValidate still returns mismatches).
type Failing func(checker.Program) bool

// Minimize greedily removes threads, then single instructions, then memory
// observables, re-checking the failure after each removal, until no single
// removal preserves it. Deterministic: candidates are tried in a fixed
// order, so the same failing program always minimizes to the same repro.
func Minimize(p checker.Program, failing Failing) checker.Program {
	cur := cloneProgram(p)
	for {
		shrunk := false

		for ti := 0; ti < len(cur.Threads); ti++ {
			if len(cur.Threads) <= 1 {
				break
			}
			if q := removeThread(cur, ti); failing(q) {
				cur = q
				shrunk = true
				ti--
			}
		}

		for ti := 0; ti < len(cur.Threads); ti++ {
			for i := 0; i < len(cur.Threads[ti]); i++ {
				if q := removeInst(cur, ti, i); failing(q) {
					cur = q
					shrunk = true
					i--
				}
			}
		}

		for i := 0; i < len(cur.Mem); i++ {
			q := cloneProgram(cur)
			q.Mem = append(q.Mem[:i:i], q.Mem[i+1:]...)
			if failing(q) {
				cur = q
				shrunk = true
				i--
			}
		}

		if !shrunk {
			return cur
		}
	}
}

// cloneProgram deep-copies a program.
func cloneProgram(p checker.Program) checker.Program {
	q := checker.Program{
		Threads: make([]isa.Program, len(p.Threads)),
		Init:    make(map[uint64]uint64, len(p.Init)),
		Regs:    append([]checker.RegObs(nil), p.Regs...),
		Mem:     append([]checker.MemObs(nil), p.Mem...),
	}
	for i, th := range p.Threads {
		q.Threads[i] = append(isa.Program(nil), th...)
	}
	for a, v := range p.Init {
		q.Init[a] = v
	}
	return q
}

// removeThread drops thread ti, dropping its register observables and
// renumbering the observables of later threads.
func removeThread(p checker.Program, ti int) checker.Program {
	q := cloneProgram(p)
	q.Threads = append(q.Threads[:ti:ti], q.Threads[ti+1:]...)
	regs := q.Regs[:0]
	for _, ro := range q.Regs {
		if ro.Thread == ti {
			continue
		}
		if ro.Thread > ti {
			ro.Thread--
		}
		regs = append(regs, ro)
	}
	q.Regs = regs
	return q
}

// removeInst drops instruction i of thread ti; a removed load or RMW also
// drops its register observable, and any later store of that register in the
// same thread (the register would read as 0, changing the failure shape).
func removeInst(p checker.Program, ti, i int) checker.Program {
	q := cloneProgram(p)
	in := q.Threads[ti][i]
	q.Threads[ti] = append(q.Threads[ti][:i:i], q.Threads[ti][i+1:]...)
	if (in.Op == isa.OpLoad || in.Op == isa.OpRMW) && in.Dst != isa.RegNone {
		regs := q.Regs[:0]
		for _, ro := range q.Regs {
			if ro.Thread == ti && ro.Reg == in.Dst {
				continue
			}
			regs = append(regs, ro)
		}
		q.Regs = regs
		th := q.Threads[ti][:0]
		for _, rem := range q.Threads[ti] {
			if rem.Op == isa.OpStore && rem.Src1 == in.Dst {
				continue
			}
			th = append(th, rem)
		}
		q.Threads[ti] = th
	}
	return q
}
