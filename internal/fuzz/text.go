// ConsistencyChecker-style text rendering and parsing of litmus programs.
//
// The format follows the column layout of the ConsistencyChecker tool the
// paper used (one row per program-order slot, one column per thread), made
// machine-parseable: cells are separated by " | ", loads name their
// observable, and optional init/observe lines carry initial values and
// memory observables.
//
//	# any comment
//	init x=0 y=0
//	st x, 1      | st y, 2
//	ld x -> a0   | st x, 2
//	ld y -> a1   | .
//	observe [x] [y]
//
// Instructions: "st x, 1" (store immediate), "st x, a0" (store the register
// named a0 by an earlier load in the same thread), "ld x -> a0" (load, with
// the observable name optional), "rmw x, 1 -> a0" (atomic fetch-and-add,
// name optional), "fence". Empty cells ("." or blank) pad shorter threads.
package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"sesa/internal/checker"
	"sesa/internal/isa"
)

// varNames are the shared locations' names; each sits on its own cache line
// (the same 0x40 spacing the hand-written litmus suite uses).
var varNames = [...]string{"x", "y", "z", "w", "u", "v"}

// varBase is the first shared location's address.
const varBase = uint64(0x1000)

// VarAddr returns the address of the i-th shared location.
func VarAddr(i int) uint64 { return varBase + uint64(i)*0x40 }

// VarName returns the name of the i-th shared location.
func VarName(i int) string {
	if i >= 0 && i < len(varNames) {
		return varNames[i]
	}
	return fmt.Sprintf("v%d", i)
}

// varIndex resolves a location name, or -1.
func varIndex(name string) int {
	for i, n := range varNames {
		if n == name {
			return i
		}
	}
	return -1
}

// addrName renders a program address as a location name.
func addrName(addr uint64) (string, error) {
	if addr < varBase || (addr-varBase)%0x40 != 0 {
		return "", fmt.Errorf("fuzz: address %#x is not a named location", addr)
	}
	i := int((addr - varBase) / 0x40)
	if i >= len(varNames) {
		return "", fmt.Errorf("fuzz: address %#x beyond the %d named locations", addr, len(varNames))
	}
	return varNames[i], nil
}

// Render writes the program in the ConsistencyChecker-style text format.
// Programs whose loads are observed (as the generator and parser always
// arrange) round-trip: Parse(Render(p)) is structurally identical to p.
func Render(p checker.Program) (string, error) {
	regName := make(map[[2]int]string, len(p.Regs))
	for _, ro := range p.Regs {
		regName[[2]int{ro.Thread, int(ro.Reg)}] = ro.Name
	}

	cells := make([][]string, len(p.Threads))
	rows := 0
	for ti, th := range p.Threads {
		for _, in := range th {
			var cell string
			switch in.Op {
			case isa.OpStore:
				name, err := addrName(in.Addr)
				if err != nil {
					return "", err
				}
				if in.Src1 == isa.RegNone {
					cell = fmt.Sprintf("st %s, %d", name, in.Imm)
				} else {
					src, ok := regName[[2]int{ti, int(in.Src1)}]
					if !ok {
						return "", fmt.Errorf("fuzz: thread %d stores unobserved register r%d", ti, in.Src1)
					}
					cell = fmt.Sprintf("st %s, %s", name, src)
				}
			case isa.OpLoad:
				name, err := addrName(in.Addr)
				if err != nil {
					return "", err
				}
				cell = "ld " + name
				if obs, ok := regName[[2]int{ti, int(in.Dst)}]; ok {
					cell += " -> " + obs
				}
			case isa.OpRMW:
				name, err := addrName(in.Addr)
				if err != nil {
					return "", err
				}
				cell = fmt.Sprintf("rmw %s, %d", name, in.Imm)
				if obs, ok := regName[[2]int{ti, int(in.Dst)}]; ok {
					cell += " -> " + obs
				}
			case isa.OpFence:
				cell = "fence"
			default:
				return "", fmt.Errorf("fuzz: cannot render op %v", in.Op)
			}
			cells[ti] = append(cells[ti], cell)
		}
		if len(th) > rows {
			rows = len(th)
		}
	}

	var b strings.Builder
	if len(p.Init) > 0 {
		addrs := make([]uint64, 0, len(p.Init))
		for a := range p.Init {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		b.WriteString("init")
		for _, a := range addrs {
			name, err := addrName(a)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %s=%d", name, p.Init[a])
		}
		b.WriteByte('\n')
	}

	width := make([]int, len(p.Threads))
	for ti, th := range cells {
		width[ti] = 1
		for _, c := range th {
			if len(c) > width[ti] {
				width[ti] = len(c)
			}
		}
	}
	for row := 0; row < rows; row++ {
		for ti := range cells {
			cell := "."
			if row < len(cells[ti]) {
				cell = cells[ti][row]
			}
			if ti > 0 {
				b.WriteString(" | ")
			}
			if ti < len(cells)-1 {
				fmt.Fprintf(&b, "%-*s", width[ti], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}

	if len(p.Mem) > 0 {
		b.WriteString("observe")
		for _, mo := range p.Mem {
			fmt.Fprintf(&b, " [%s]", mo.Name)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Parse reads the text format back into a checker.Program. Register
// observables are rebuilt thread-major (all of thread 0's loads in program
// order, then thread 1's, ...), matching the generator's ordering so that
// outcome strings agree.
func Parse(src string) (checker.Program, error) {
	var p checker.Program
	var rows [][]string
	nThreads := 0
	var initLine, observeLine string

	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "init "), line == "init":
			if initLine != "" {
				return p, fmt.Errorf("fuzz: line %d: duplicate init line", ln+1)
			}
			initLine = strings.TrimSpace(strings.TrimPrefix(line, "init"))
		case strings.HasPrefix(line, "observe ") || line == "observe":
			if observeLine != "" {
				return p, fmt.Errorf("fuzz: line %d: duplicate observe line", ln+1)
			}
			observeLine = strings.TrimSpace(strings.TrimPrefix(line, "observe"))
		default:
			cells := strings.Split(line, "|")
			for i := range cells {
				cells[i] = strings.TrimSpace(cells[i])
			}
			if len(cells) > nThreads {
				nThreads = len(cells)
			}
			rows = append(rows, cells)
		}
	}
	if nThreads == 0 {
		return p, fmt.Errorf("fuzz: no program rows")
	}

	p.Init = make(map[uint64]uint64)
	if initLine != "" {
		for _, term := range strings.Fields(initLine) {
			name, valStr, ok := strings.Cut(term, "=")
			vi := varIndex(name)
			if !ok || vi < 0 {
				return p, fmt.Errorf("fuzz: bad init term %q", term)
			}
			var val uint64
			if _, err := fmt.Sscanf(valStr, "%d", &val); err != nil {
				return p, fmt.Errorf("fuzz: bad init term %q: %v", term, err)
			}
			p.Init[VarAddr(vi)] = val
		}
	}

	p.Threads = make([]isa.Program, nThreads)
	type namedReg struct {
		reg  isa.Reg
		name string
	}
	obsNames := make([][]namedReg, nThreads) // observed regs, program order
	regCount := make([]isa.Reg, nThreads)
	findReg := func(ti int, name string) (isa.Reg, bool) {
		for _, nr := range obsNames[ti] {
			if nr.name == name {
				return nr.reg, true
			}
		}
		return 0, false
	}

	for _, cells := range rows {
		for ti := 0; ti < nThreads; ti++ {
			cell := ""
			if ti < len(cells) {
				cell = cells[ti]
			}
			if cell == "" || cell == "." {
				continue
			}
			in, obs, err := parseInst(cell, func(name string) (isa.Reg, bool) {
				return findReg(ti, name)
			}, &regCount[ti])
			if err != nil {
				return p, fmt.Errorf("fuzz: thread %d: %v", ti, err)
			}
			p.Threads[ti] = append(p.Threads[ti], in)
			if obs != "" {
				obsNames[ti] = append(obsNames[ti], namedReg{reg: in.Dst, name: obs})
			}
		}
	}

	for ti, named := range obsNames {
		for _, nr := range named {
			p.Regs = append(p.Regs, checker.RegObs{Thread: ti, Reg: nr.reg, Name: nr.name})
		}
	}

	if observeLine != "" {
		for _, term := range strings.Fields(observeLine) {
			name := strings.TrimSuffix(strings.TrimPrefix(term, "["), "]")
			vi := varIndex(name)
			if vi < 0 {
				return p, fmt.Errorf("fuzz: bad observe term %q", term)
			}
			p.Mem = append(p.Mem, checker.MemObs{Addr: VarAddr(vi), Name: name})
		}
	}

	// Referenced locations default to initial value 0.
	for _, th := range p.Threads {
		for _, in := range th {
			if in.Op.IsMem() {
				if _, ok := p.Init[in.Addr]; !ok {
					p.Init[in.Addr] = 0
				}
			}
		}
	}
	return p, nil
}

// parseInst parses one cell. lookup resolves a register observable name
// bound earlier in the same thread; nextReg allocates fresh registers.
func parseInst(cell string, lookup func(string) (isa.Reg, bool), nextReg *isa.Reg) (isa.Inst, string, error) {
	fields := strings.Fields(cell)
	alloc := func() isa.Reg {
		*nextReg++
		return *nextReg
	}
	switch fields[0] {
	case "fence":
		if len(fields) != 1 {
			return isa.Inst{}, "", fmt.Errorf("bad instruction %q", cell)
		}
		return isa.Fence(), "", nil

	case "st":
		rest := strings.TrimSpace(strings.TrimPrefix(cell, "st"))
		name, valStr, ok := strings.Cut(rest, ",")
		vi := varIndex(strings.TrimSpace(name))
		if !ok || vi < 0 {
			return isa.Inst{}, "", fmt.Errorf("bad store %q", cell)
		}
		valStr = strings.TrimSpace(valStr)
		var val uint64
		if _, err := fmt.Sscanf(valStr, "%d", &val); err == nil {
			return isa.StoreImm(VarAddr(vi), val), "", nil
		}
		src, ok := lookup(valStr)
		if !ok {
			return isa.Inst{}, "", fmt.Errorf("store %q references unknown register %q", cell, valStr)
		}
		return isa.StoreReg(VarAddr(vi), src), "", nil

	case "ld":
		rest := strings.TrimSpace(strings.TrimPrefix(cell, "ld"))
		name, obs, _ := strings.Cut(rest, "->")
		vi := varIndex(strings.TrimSpace(name))
		if vi < 0 {
			return isa.Inst{}, "", fmt.Errorf("bad load %q", cell)
		}
		return isa.Load(alloc(), VarAddr(vi)), strings.TrimSpace(obs), nil

	case "rmw":
		rest := strings.TrimSpace(strings.TrimPrefix(cell, "rmw"))
		body, obs, _ := strings.Cut(rest, "->")
		name, immStr, ok := strings.Cut(body, ",")
		vi := varIndex(strings.TrimSpace(name))
		if !ok || vi < 0 {
			return isa.Inst{}, "", fmt.Errorf("bad rmw %q", cell)
		}
		var imm uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(immStr), "%d", &imm); err != nil {
			return isa.Inst{}, "", fmt.Errorf("bad rmw %q: %v", cell, err)
		}
		return isa.RMW(alloc(), VarAddr(vi), imm), strings.TrimSpace(obs), nil
	}
	return isa.Inst{}, "", fmt.Errorf("unknown instruction %q", cell)
}
