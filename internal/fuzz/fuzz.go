// The three-way cross-validation driver.
package fuzz

import (
	"fmt"
	"sort"

	"sesa/internal/axiomatic"
	"sesa/internal/checker"
	"sesa/internal/config"
	"sesa/internal/litmus"
	"sesa/internal/sim"
)

// Mismatch kinds.
const (
	// KindSimForbidden: the timing simulator witnessed an outcome the
	// machine's bounding operational model forbids.
	KindSimForbidden = "sim-forbidden"
	// KindOpVsAx: the operational checker and the axiomatic enumerator
	// disagree on a model's allowed-outcome set.
	KindOpVsAx = "checker-vs-axiomatic"
)

// Mismatch is one cross-validation failure.
type Mismatch struct {
	// Kind is KindSimForbidden or KindOpVsAx.
	Kind string
	// Model names the machine (sim-forbidden) or the operational/axiomatic
	// pair (checker-vs-axiomatic).
	Model string
	// Outcome is the disputed outcome.
	Outcome checker.Outcome
	// Detail says which side produced or missed the outcome.
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s %s [%s]: %s", m.Kind, m.Model, m.Outcome, m.Detail)
}

// Options configures one cross-validation.
type Options struct {
	// Models are the machine models to witness-run on the timing
	// simulator; empty skips the simulator leg.
	Models []config.Model
	// SimIters is the number of simulator iterations per (model, variant,
	// config) cell.
	SimIters int
	// Pressure adds the store-buffer-pressure variant with this many
	// scratch stores per forwarding thread (0 disables the variant).
	Pressure int
	// SmallConfig also runs every model on the tiny-cache configuration,
	// whose evictions perturb timing differently from the Table III
	// machine.
	SmallConfig bool
	// SimSeed is the base seed for the witness search's timing
	// exploration.
	SimSeed uint64
	// StepMode selects the simulation clock for witness runs.
	StepMode config.StepMode
}

// DefaultOptions is the CI witness budget: all five machines, a handful of
// timing samples per variant, SB pressure on, both configurations.
func DefaultOptions() Options {
	return Options{
		Models:      config.AllModels(),
		SimIters:    3,
		Pressure:    3,
		SmallConfig: true,
		SimSeed:     1,
	}
}

// modelPairs are the operational/axiomatic formulations compared pairwise.
var modelPairs = []struct {
	op checker.Model
	ax axiomatic.Model
}{
	{checker.SC, axiomatic.SC},
	{checker.TSO370, axiomatic.TSO370},
	{checker.X86TSO, axiomatic.X86TSO},
}

// Report is the result of cross-validating one program.
type Report struct {
	Prog checker.Program
	// OpCount[m] is the operational model's allowed-outcome count, indexed
	// by checker.Model.
	OpCount [3]int
	// Witnessed counts the distinct simulator-observed outcomes across all
	// models and variants.
	Witnessed int
	// Interesting reports whether the program observably separates x86-TSO
	// from store-atomic 370 (the paper's store-atomicity gap).
	Interesting bool
	// Mismatches lists every cross-validation failure, deterministically
	// ordered.
	Mismatches []Mismatch
}

// Ok reports whether all three engines agreed.
func (r *Report) Ok() bool { return len(r.Mismatches) == 0 }

// CrossValidate checks one program three ways: the operational checker
// against the axiomatic enumerator (exact outcome-set equality per model),
// and the timing simulator's witnessed outcomes against the operational
// model bounding each machine (set inclusion — the simulator is one
// implementation, so it witnesses a subset).
func CrossValidate(p checker.Program, opt Options) (*Report, error) {
	r := &Report{Prog: p}

	var opSets [3]checker.OutcomeSet
	for _, pr := range modelPairs {
		opSets[pr.op] = checker.Enumerate(p, pr.op)
		r.OpCount[pr.op] = len(opSets[pr.op])
	}

	for _, pr := range modelPairs {
		axSet, err := axiomatic.Enumerate(p, pr.ax)
		if err != nil {
			return nil, err
		}
		pair := fmt.Sprintf("%s/%s", pr.op, pr.ax)
		for _, o := range opSets[pr.op].Sorted() {
			if !axSet.Contains(o) {
				r.Mismatches = append(r.Mismatches, Mismatch{
					Kind: KindOpVsAx, Model: pair, Outcome: o,
					Detail: "operational allows, axiomatic forbids"})
			}
		}
		for _, o := range axSet.Sorted() {
			if !opSets[pr.op].Contains(o) {
				r.Mismatches = append(r.Mismatches, Mismatch{
					Kind: KindOpVsAx, Model: pair, Outcome: o,
					Detail: "axiomatic allows, operational forbids"})
			}
		}
	}

	r.Interesting = len(checker.Compare(p, checker.X86TSO, checker.TSO370)) > 0

	witnessed := make(checker.OutcomeSet)
	for mi, m := range opt.Models {
		allowed := opSets[litmus.CheckerModelFor(m)]
		observed, err := witness(p, m, mi, opt)
		if err != nil {
			return nil, err
		}
		for _, o := range observed.Sorted() {
			witnessed[o] = true
			if !allowed.Contains(o) {
				r.Mismatches = append(r.Mismatches, Mismatch{
					Kind: KindSimForbidden, Model: m.String(), Outcome: o,
					Detail: fmt.Sprintf("simulator witnessed an outcome %s forbids",
						litmus.CheckerModelFor(m))})
			}
		}
	}
	r.Witnessed = len(witnessed)
	return r, nil
}

// witness runs the timing-simulator witness search for one machine model:
// SimIters timing samples per variant (plain, and under store-buffer
// pressure) per configuration (Table III, and the tiny-cache machine), each
// iteration with its own jitter seed and start stagger.
func witness(p checker.Program, m config.Model, modelIdx int, opt Options) (checker.OutcomeSet, error) {
	if opt.SimIters <= 0 {
		return nil, nil
	}
	base := litmus.Test{Name: "fuzz", Prog: p}
	variants := []litmus.Test{base}
	if opt.Pressure > 0 {
		variants = append(variants, litmus.WithSBPressure(base, opt.Pressure))
	}
	cores := len(p.Threads)
	configs := []config.Config{config.Skylake(cores, m)}
	if opt.SmallConfig {
		configs = append(configs, config.Small(cores, m))
	}

	observed := make(checker.OutcomeSet)
	for vi, v := range variants {
		for ci, cfg := range configs {
			seed := opt.SimSeed + uint64(modelIdx)*1000003 + uint64(vi)*101 + uint64(ci)*17
			res, err := litmus.RunConfigTraced(v, cfg, opt.SimIters, seed,
				func(_ int, mach *sim.Machine) { mach.SetStepMode(opt.StepMode) })
			if err != nil {
				return nil, err
			}
			for o := range res.Outcomes {
				observed[o] = true
			}
		}
	}
	return observed, nil
}

// ProgramReport pairs a generated program's seed with its report.
type ProgramReport struct {
	// Index is the program's position in the run; Seed the generator seed
	// that reproduces it (sesa-fuzz -seed <Seed> -count 1).
	Index int
	Seed  uint64
	Rep   *Report
	Err   error
}

// RunMany generates and cross-validates count programs on jobs parallel
// workers. Program i uses generator seed baseSeed+i, so any program of a
// larger run is reproduced alone by a run with -count 1 and its seed.
// Results are returned in index order regardless of the worker count, and
// every worker's work is self-contained, so output is byte-identical across
// jobs values.
func RunMany(baseSeed uint64, count int, b Budget, opt Options, jobs int) []ProgramReport {
	if jobs < 1 {
		jobs = 1
	}
	out := make([]ProgramReport, count)
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < jobs; w++ {
		go func() {
			for i := range idx {
				seed := baseSeed + uint64(i)
				p := Generate(seed, b)
				rep, err := CrossValidate(p, opt)
				out[i] = ProgramReport{Index: i, Seed: seed, Rep: rep, Err: err}
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < count; i++ {
		idx <- i
	}
	close(idx)
	for w := 0; w < jobs; w++ {
		<-done
	}
	return out
}

// SortedOutcomes renders an outcome set deterministically for reports.
func SortedOutcomes(s checker.OutcomeSet) []string {
	out := make([]string, 0, len(s))
	for o := range s {
		out = append(out, string(o))
	}
	sort.Strings(out)
	return out
}
