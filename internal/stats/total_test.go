package stats

import (
	"reflect"
	"testing"
)

// TestTotalEveryField fills every counter with distinct values on two cores
// and checks Total aggregates each one — so a newly added Core field that is
// forgotten in Total fails here instead of silently reading zero.
func TestTotalEveryField(t *testing.T) {
	m := New("370-SLFSoS-key", "w", 2)
	fill := func(c *Core, base uint64) {
		v := reflect.ValueOf(c).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Uint64:
				f.SetUint(base + uint64(i))
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					f.Index(j).SetUint(base + uint64(100+j))
				}
			default:
				t.Fatalf("unhandled Core field kind %s — extend Total and this test", f.Kind())
			}
		}
	}
	fill(&m.Cores[0], 1000)
	fill(&m.Cores[1], 5000)

	tot := m.Total()
	tv := reflect.ValueOf(tot)
	c0 := reflect.ValueOf(m.Cores[0])
	c1 := reflect.ValueOf(m.Cores[1])
	for i := 0; i < tv.NumField(); i++ {
		name := tv.Type().Field(i).Name
		switch tv.Field(i).Kind() {
		case reflect.Uint64:
			got := tv.Field(i).Uint()
			a, b := c0.Field(i).Uint(), c1.Field(i).Uint()
			want := a + b
			if name == "Cycles" {
				want = b // max, and core 1 has the larger base
			}
			if got != want {
				t.Errorf("Total().%s = %d, want %d — field not aggregated?", name, got, want)
			}
		case reflect.Array:
			for j := 0; j < tv.Field(i).Len(); j++ {
				got := tv.Field(i).Index(j).Uint()
				want := c0.Field(i).Index(j).Uint() + c1.Field(i).Index(j).Uint()
				if got != want {
					t.Errorf("Total().%s[%d] = %d, want %d", name, j, got, want)
				}
			}
		}
	}
}

// TestCharacterizeDerivations pins each derived Table IV quantity to a
// hand-computed value.
func TestCharacterizeDerivations(t *testing.T) {
	m := New("370-SLFSoS-key", "bench", 2)
	m.Cycles = 1000
	m.Cores[0] = Core{
		Cycles: 1000, RetiredInsts: 1500, RetiredLoads: 600, SLFLoads: 150,
		GateStalls: 30, GateStallCycles: 300,
		Squashes: 4, ReexecInsts: 120, SAReexecInsts: 90,
	}
	m.Cores[1] = Core{
		Cycles: 800, RetiredInsts: 500, RetiredLoads: 200, SLFLoads: 50,
		GateStalls: 10, GateStallCycles: 100,
		Squashes: 1, ReexecInsts: 40, SAReexecInsts: 30,
	}
	ch := m.Characterize()
	if ch.Benchmark != "bench" || ch.Instructions != 2000 || ch.Cycles != 1000 {
		t.Errorf("identity fields: %+v", ch)
	}
	if ch.LoadsPct != 40 { // 800/2000
		t.Errorf("LoadsPct = %v", ch.LoadsPct)
	}
	if ch.ForwardedPct != 10 { // 200/2000
		t.Errorf("ForwardedPct = %v", ch.ForwardedPct)
	}
	if ch.GateStallsPct != 2 { // 40/2000
		t.Errorf("GateStallsPct = %v", ch.GateStallsPct)
	}
	if ch.AvgStallCycles != 10 { // 400/40
		t.Errorf("AvgStallCycles = %v", ch.AvgStallCycles)
	}
	if ch.ReexecutedPct != 6 { // 120/2000
		t.Errorf("ReexecutedPct = %v", ch.ReexecutedPct)
	}
	if ch.TotalReexecPct != 8 { // 160/2000
		t.Errorf("TotalReexecPct = %v", ch.TotalReexecPct)
	}
	if ch.IPC != 2 { // 2000/1000
		t.Errorf("IPC = %v", ch.IPC)
	}
	if ch.SquashesPerMInst != 2500 { // 5/2000 * 1e6
		t.Errorf("SquashesPerMInst = %v", ch.SquashesPerMInst)
	}
}

// TestCharacterizeExcludesIdleCores: Figure 9 stall percentages average over
// cores that actually ran; a zero-cycle (idle) core must not dilute them.
// This matters for the sequential SPECrate benchmarks, which run on one core
// of the 8-core machine.
func TestCharacterizeExcludesIdleCores(t *testing.T) {
	m := New("370-SLFSoS-key", "seq", 8)
	m.Cycles = 1000
	m.Cores[0].Cycles = 1000
	m.Cores[0].RetiredInsts = 500
	m.Cores[0].StallCycles[StallROB] = 500
	m.Cores[0].StallCycles[StallLQ] = 100
	m.Cores[0].StallCycles[StallSQ] = 200
	// Cores 1..7 idle: zero cycles.
	ch := m.Characterize()
	if ch.StallROBPct != 50 || ch.StallLQPct != 10 || ch.StallSQPct != 20 {
		t.Errorf("idle cores diluted the stall averages: %+v", ch)
	}
	if ch.TotalStallPct != 80 {
		t.Errorf("TotalStallPct = %v, want 80", ch.TotalStallPct)
	}

	// All-idle machine: no division by zero, all-zero percentages.
	empty := New("370-SLFSoS-key", "empty", 2)
	che := empty.Characterize()
	if che.StallROBPct != 0 || che.TotalStallPct != 0 || che.IPC != 0 {
		t.Errorf("empty machine characterization not zero: %+v", che)
	}
}
