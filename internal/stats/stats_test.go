package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStallPct(t *testing.T) {
	var c Core
	c.Cycles = 200
	c.StallCycles[StallROB] = 50
	c.StallCycles[StallLQ] = 20
	c.StallCycles[StallSQ] = 10
	if got := c.StallPct(StallROB); got != 25 {
		t.Errorf("ROB stall = %.1f, want 25", got)
	}
	if got := c.TotalStallPct(); got != 40 {
		t.Errorf("total stall = %.1f, want 40", got)
	}
	var zero Core
	if zero.StallPct(StallROB) != 0 {
		t.Error("zero cycles must give zero percent")
	}
}

func TestTotalAggregation(t *testing.T) {
	m := New("x86", "w", 2)
	m.Cores[0] = Core{Cycles: 100, RetiredInsts: 1000, SLFLoads: 10, GateStalls: 2, GateStallCycles: 20}
	m.Cores[1] = Core{Cycles: 150, RetiredInsts: 500, SLFLoads: 5, Squashes: 1, SAReexecInsts: 30, ReexecInsts: 40}
	tot := m.Total()
	if tot.RetiredInsts != 1500 || tot.SLFLoads != 15 {
		t.Errorf("totals wrong: %+v", tot)
	}
	if tot.Cycles != 150 {
		t.Errorf("total cycles = max, got %d", tot.Cycles)
	}
}

func TestCharacterize(t *testing.T) {
	m := New("370-SLFSoS-key", "bench", 1)
	m.Cycles = 2000
	m.Cores[0] = Core{
		Cycles:          2000,
		RetiredInsts:    4000,
		RetiredLoads:    1000,
		SLFLoads:        200,
		GateStalls:      40,
		GateStallCycles: 400,
		SAReexecInsts:   20,
		ReexecInsts:     60,
	}
	ch := m.Characterize()
	if ch.LoadsPct != 25 {
		t.Errorf("loads%% = %.2f", ch.LoadsPct)
	}
	if ch.ForwardedPct != 5 {
		t.Errorf("fwd%% = %.2f", ch.ForwardedPct)
	}
	if ch.GateStallsPct != 1 {
		t.Errorf("gate%% = %.2f", ch.GateStallsPct)
	}
	if ch.AvgStallCycles != 10 {
		t.Errorf("avg stall = %.2f", ch.AvgStallCycles)
	}
	if ch.ReexecutedPct != 0.5 {
		t.Errorf("SA reexec%% = %.2f", ch.ReexecutedPct)
	}
	if ch.TotalReexecPct != 1.5 {
		t.Errorf("total reexec%% = %.2f", ch.TotalReexecPct)
	}
	if ch.IPC != 2 {
		t.Errorf("IPC = %.2f", ch.IPC)
	}
	row := ch.FormatRow()
	if !strings.Contains(row, "bench") {
		t.Error("row should include the benchmark name")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean(1,4) = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if g := GeoMean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("non-positive entries should be ignored, got %f", g)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

// TestGeoMeanBounds: geomean of positive values lies within [min, max].
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 && x > 1e-100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		g := GeoMean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatComparison(t *testing.T) {
	out := FormatComparison(
		[]string{"x86", "370-NoSpec"},
		[]string{"a", "b"},
		map[string][]float64{
			"x86":        {1, 1},
			"370-NoSpec": {1.2, 1.4},
		})
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "370-NoSpec") {
		t.Errorf("comparison output malformed:\n%s", out)
	}
}

func TestStallCauseString(t *testing.T) {
	if StallROB.String() != "ROB" || StallSQ.String() != "SQ/SB" {
		t.Error("stall cause names")
	}
}
