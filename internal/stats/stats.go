// Package stats collects the measurements the paper reports: Table IV's
// characterization columns, Figure 9's dispatch-stall attribution and
// Figure 10's execution time.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// StallCause identifies why dispatch could not make progress in a cycle
// (Figure 9 attributes stalls to the full structure blocking dispatch).
type StallCause int

// Dispatch stall causes.
const (
	StallNone StallCause = iota
	StallROB
	StallLQ
	StallSQ
	numStallCauses
)

var stallNames = [...]string{
	StallNone: "none",
	StallROB:  "ROB",
	StallLQ:   "LQ",
	StallSQ:   "SQ/SB",
}

// String names the stall cause as in Figure 9's legend.
func (s StallCause) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return fmt.Sprintf("stall(%d)", int(s))
}

// Core accumulates per-core counters.
type Core struct {
	Cycles        uint64 // cycles the core was active
	RetiredInsts  uint64
	RetiredLoads  uint64
	RetiredStores uint64

	// SLFLoads counts retired loads whose value came from a store-to-load
	// forwarding (Table IV "Forwarded").
	SLFLoads uint64

	// GateStalls counts instructions that stalled at the head of the ROB
	// because the retire gate was closed (Table IV "Gate Stalls"), and
	// GateStallCycles the total cycles those instructions waited.
	GateStalls      uint64
	GateStallCycles uint64

	// GateCloses and GateReopens count retire-gate transitions, and
	// GateClosedCycles the cycles the gate spent closed.
	GateCloses       uint64
	GateReopens      uint64
	GateClosedCycles uint64

	// Squashes counts pipeline flushes caused by an invalidation or
	// eviction hitting a speculative performed load, and ReexecInsts the
	// instructions re-executed because of them (from the squashed load to
	// the ROB tail). The SA* subset counts only store-atomicity
	// misspeculations — loads that were squashed because they were
	// SA-speculative and would NOT have been squashed under the baseline
	// load-load (M-speculative) rules every model shares. Table IV's
	// "Re-executed instr." is the SA subset.
	Squashes      uint64
	ReexecInsts   uint64
	SASquashes    uint64
	SAReexecInsts uint64

	// DepSquashes counts memory-dependence misspeculations (StoreSet).
	DepSquashes uint64

	// BranchMispredicts counts resolved mispredicted branches.
	BranchMispredicts uint64

	// NoSpecWaits counts loads that were delayed by blanket 370
	// enforcement (matching store had to drain first) and the cycles so
	// spent.
	NoSpecWaits     uint64
	NoSpecWaitCyc   uint64
	SLFSpecRetWaits uint64 // loads held at retire by SLFSpec SB-drain rule

	// StallCycles[c] counts cycles dispatch was blocked with cause c.
	StallCycles [numStallCauses]uint64

	// LQSnoops counts invalidation/eviction snoops of the load queue;
	// LQSnoopHits those that matched a performed speculative load.
	// EvictionSquashes is the subset of squashes caused by local cache
	// evictions rather than remote invalidations (505.mcf's failure
	// mode in Table IV).
	LQSnoops         uint64
	LQSnoopHits      uint64
	EvictionSquashes uint64

	// SQSearches counts store-queue snoops by issuing loads. The paper's
	// energy argument (Section VI-B) is that the mechanism adds no
	// snoops: the key copy rides on this search, which a conventional
	// core already performs for every load.
	SQSearches uint64

	// VersionSpecLoads counts loads the 370-Louvre machine issued past a
	// still-in-flight fence; such loads remain squashable until the fence
	// retires. InvisibleLoads counts loads the 370-RCP machine issued
	// without touching directory or cache state; Validations counts their
	// retire-time value checks and ValidationSquashes the subset that
	// failed and flushed. All four are zero on the five paper machines, so
	// they are omitted from JSON and pre-roster goldens stay byte-identical.
	VersionSpecLoads   uint64 `json:",omitempty"`
	InvisibleLoads     uint64 `json:",omitempty"`
	Validations        uint64 `json:",omitempty"`
	ValidationSquashes uint64 `json:",omitempty"`
}

// StallPct returns the percentage of cycles stalled with the given cause.
func (c *Core) StallPct(cause StallCause) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return 100 * float64(c.StallCycles[cause]) / float64(c.Cycles)
}

// TotalStallPct is the Figure 9 quantity: percentage of cycles in which the
// processor cannot make progress due to a full ROB, LQ or SQ/SB.
func (c *Core) TotalStallPct() float64 {
	return c.StallPct(StallROB) + c.StallPct(StallLQ) + c.StallPct(StallSQ)
}

// NoCTraffic is the machine-wide interconnect usage, per message class:
// control (requests, invalidations, acks) versus data (line transfers).
type NoCTraffic struct {
	ControlMsgs  uint64
	DataMsgs     uint64
	ControlFlits uint64
	DataFlits    uint64
}

// Msgs returns the total message count.
func (t NoCTraffic) Msgs() uint64 { return t.ControlMsgs + t.DataMsgs }

// Flits returns the total flit count.
func (t NoCTraffic) Flits() uint64 { return t.ControlFlits + t.DataFlits }

// String renders the traffic as a single report line.
func (t NoCTraffic) String() string {
	return fmt.Sprintf("noc: %d msgs (%d control, %d data), %d flits (%d control, %d data)",
		t.Msgs(), t.ControlMsgs, t.DataMsgs, t.Flits(), t.ControlFlits, t.DataFlits)
}

// Machine aggregates per-core statistics for one simulation.
type Machine struct {
	Model    string
	Workload string
	Cores    []Core
	// Cycles is the machine execution time: the cycle at which the last
	// core finished its trace.
	Cycles uint64
	// NoC is the interconnect traffic accumulated over the run, captured
	// from the network when the machine finishes (or times out).
	NoC NoCTraffic
}

// New returns a Machine with n per-core slots.
func New(model, workload string, n int) *Machine {
	return &Machine{Model: model, Workload: workload, Cores: make([]Core, n)}
}

// Total returns the sum of all per-core counters. Cycles is the max (the
// machine's wall-clock), StallCycles sums are kept per cause.
func (m *Machine) Total() Core {
	var t Core
	for i := range m.Cores {
		c := &m.Cores[i]
		if c.Cycles > t.Cycles {
			t.Cycles = c.Cycles
		}
		t.RetiredInsts += c.RetiredInsts
		t.RetiredLoads += c.RetiredLoads
		t.RetiredStores += c.RetiredStores
		t.SLFLoads += c.SLFLoads
		t.GateStalls += c.GateStalls
		t.GateStallCycles += c.GateStallCycles
		t.GateCloses += c.GateCloses
		t.GateReopens += c.GateReopens
		t.GateClosedCycles += c.GateClosedCycles
		t.Squashes += c.Squashes
		t.ReexecInsts += c.ReexecInsts
		t.SASquashes += c.SASquashes
		t.SAReexecInsts += c.SAReexecInsts
		t.DepSquashes += c.DepSquashes
		t.BranchMispredicts += c.BranchMispredicts
		t.NoSpecWaits += c.NoSpecWaits
		t.NoSpecWaitCyc += c.NoSpecWaitCyc
		t.SLFSpecRetWaits += c.SLFSpecRetWaits
		t.LQSnoops += c.LQSnoops
		t.LQSnoopHits += c.LQSnoopHits
		t.EvictionSquashes += c.EvictionSquashes
		t.SQSearches += c.SQSearches
		t.VersionSpecLoads += c.VersionSpecLoads
		t.InvisibleLoads += c.InvisibleLoads
		t.Validations += c.Validations
		t.ValidationSquashes += c.ValidationSquashes
		for s := range t.StallCycles {
			t.StallCycles[s] += c.StallCycles[s]
		}
	}
	return t
}

// Characterization is one row of Table IV.
type Characterization struct {
	Benchmark        string
	Instructions     uint64
	LoadsPct         float64 // retired loads, % of total instructions
	ForwardedPct     float64 // SLF loads, % of total instructions
	GateStallsPct    float64 // instructions stalling at ROB head on closed gate, %
	AvgStallCycles   float64 // average cycles per gate stall
	ReexecutedPct    float64 // re-executed due to SA misspeculation, % (Table IV)
	TotalReexecPct   float64 // re-executed incl. baseline load-load squashes, %
	Cycles           uint64
	IPC              float64
	StallROBPct      float64
	StallLQPct       float64
	StallSQPct       float64
	TotalStallPct    float64
	SquashesPerMInst float64
}

// Characterize computes the Table IV row for this machine run.
func (m *Machine) Characterize() Characterization {
	t := m.Total()
	ch := Characterization{
		Benchmark:    m.Workload,
		Instructions: t.RetiredInsts,
		Cycles:       m.Cycles,
	}
	if t.RetiredInsts > 0 {
		insts := float64(t.RetiredInsts)
		ch.LoadsPct = 100 * float64(t.RetiredLoads) / insts
		ch.ForwardedPct = 100 * float64(t.SLFLoads) / insts
		ch.GateStallsPct = 100 * float64(t.GateStalls) / insts
		ch.ReexecutedPct = 100 * float64(t.SAReexecInsts) / insts
		ch.TotalReexecPct = 100 * float64(t.ReexecInsts) / insts
		ch.SquashesPerMInst = 1e6 * float64(t.Squashes) / insts
	}
	if t.GateStalls > 0 {
		ch.AvgStallCycles = float64(t.GateStallCycles) / float64(t.GateStalls)
	}
	if m.Cycles > 0 {
		ch.IPC = float64(t.RetiredInsts) / float64(m.Cycles)
	}
	// Stall percentages are averaged over cores, matching Figure 9 (per
	// core stalls, then mean across the machine).
	var rob, lq, sq float64
	var n int
	for i := range m.Cores {
		c := &m.Cores[i]
		if c.Cycles == 0 {
			continue
		}
		rob += c.StallPct(StallROB)
		lq += c.StallPct(StallLQ)
		sq += c.StallPct(StallSQ)
		n++
	}
	if n > 0 {
		ch.StallROBPct = rob / float64(n)
		ch.StallLQPct = lq / float64(n)
		ch.StallSQPct = sq / float64(n)
		ch.TotalStallPct = ch.StallROBPct + ch.StallLQPct + ch.StallSQPct
	}
	return ch
}

// TableIVHeader is the header row matching FormatRow's columns. It is a
// plain string (printed verbatim, not a Printf format), so percent signs
// appear singly.
const TableIVHeader = "Benchmark                 Instructions  Loads%    Fwd%  Gate-Stl%  AvgStallCyc  Reexec%"

// FormatRow renders the characterization as one Table IV row.
func (ch Characterization) FormatRow() string {
	return fmt.Sprintf("%-25s %12d  %6.3f  %6.3f  %9.3f  %11.3f  %7.3f",
		ch.Benchmark, ch.Instructions, ch.LoadsPct, ch.ForwardedPct,
		ch.GateStallsPct, ch.AvgStallCycles, ch.ReexecutedPct)
}

// GeoMean returns the geometric mean of xs; it returns 0 for empty input and
// ignores non-positive entries the way benchmark reporting conventionally
// does (they cannot occur for execution-time ratios).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		prod *= x
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FormatComparison renders normalized execution times (Figure 10 style): one
// line per model with per-workload ratios and the geometric mean.
func FormatComparison(models []string, workloads []string, norm map[string][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "model")
	for _, w := range workloads {
		fmt.Fprintf(&b, " %12s", w)
	}
	fmt.Fprintf(&b, " %12s\n", "geomean")
	for _, m := range models {
		fmt.Fprintf(&b, "%-16s", m)
		for _, v := range norm[m] {
			fmt.Fprintf(&b, " %12.3f", v)
		}
		fmt.Fprintf(&b, " %12.3f\n", GeoMean(norm[m]))
	}
	return b.String()
}
