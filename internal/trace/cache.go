package trace

import (
	"sync"
	"sync/atomic"
)

// Cache deduplicates workload generation across experiments. A sweep runs
// every profile under five consistency models, but the generated trace
// depends only on (profile, cores, instructions, seed) — never on the model —
// so the five machines can replay one shared, read-only copy instead of
// regenerating it per model.
//
// Cached workloads are shared by reference: callers (and the machines they
// build) must treat the returned Programs as immutable. The simulator only
// ever reads installed programs (core fetch copies instructions by value),
// which is what makes sharing one trace across concurrently running machines
// sound.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheKey struct {
	name  string
	cores int
	inst  int
	seed  uint64
}

// cacheEntry decouples generation from the cache lock: the map is held only
// long enough to find or insert the entry, and the (expensive) Build runs
// under the entry's once, so concurrent requests for different keys generate
// in parallel while requests for the same key generate exactly once.
type cacheEntry struct {
	once sync.Once
	w    Workload
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*cacheEntry)}
}

// Workload returns the deterministic workload for (p, cores, instPerCore,
// seed), generating it on first use and replaying the cached copy afterwards.
// It is safe for concurrent use.
func (c *Cache) Workload(p Profile, cores, instPerCore int, seed uint64) Workload {
	k := cacheKey{name: p.Name, cores: cores, inst: instPerCore, seed: seed}
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		e = &cacheEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.w = Build(p, cores, instPerCore, seed) })
	return e.w
}

// Stats reports cache effectiveness: hits count requests served from an
// already-inserted entry, misses count first-time generations.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct cached workloads.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// shared is the process-wide cache used by the benchmark entry points: one
// sweep process regenerates each trace once, no matter how many models or
// workers replay it.
var shared = NewCache()

// Shared returns the process-wide cache.
func Shared() *Cache { return shared }

// CachedWorkload fetches (or generates once) the workload from the
// process-wide cache. The returned programs are shared and must be treated
// as read-only.
func CachedWorkload(p Profile, cores, instPerCore int, seed uint64) Workload {
	return shared.Workload(p, cores, instPerCore, seed)
}
