package trace

import (
	"testing"
	"testing/quick"

	"sesa/internal/isa"
)

func TestProfilesCoverTableIV(t *testing.T) {
	if n := len(ParallelProfiles()); n != 25 {
		t.Errorf("parallel profiles = %d, want 25 (SPLASH-3 + PARSEC)", n)
	}
	if n := len(SequentialProfiles()); n != 36 {
		t.Errorf("sequential profiles = %d, want 36 (SPECrate 2017)", n)
	}
	seen := map[string]bool{}
	for _, p := range append(ParallelProfiles(), SequentialProfiles()...) {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.LoadPct <= 0 || p.LoadPct >= 100 {
			t.Errorf("%s: LoadPct %v out of range", p.Name, p.LoadPct)
		}
		if p.ForwardPct < 0 || p.ForwardPct > p.LoadPct {
			t.Errorf("%s: ForwardPct %v exceeds LoadPct %v", p.Name, p.ForwardPct, p.LoadPct)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("barnes"); !ok {
		t.Error("barnes should exist")
	}
	if _, ok := Lookup("505.mcf"); !ok {
		t.Error("505.mcf should exist")
	}
	if _, ok := Lookup("no-such-bench"); ok {
		t.Error("unknown benchmark should not resolve")
	}
}

func TestGeneratedProgramsValidate(t *testing.T) {
	for _, p := range append(ParallelProfiles(), SequentialProfiles()...) {
		prog := Generate(p, 0, 2000, 7)
		if len(prog) != 2000 {
			t.Errorf("%s: generated %d instructions, want 2000", p.Name, len(prog))
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", p.Name, err)
		}
	}
}

func TestGeneratorHitsTableIVTargets(t *testing.T) {
	for _, name := range []string{"barnes", "fft", "500.perlbench_2", "527.cam4", "radix"} {
		p, _ := Lookup(name)
		prog := Generate(p, 0, 50000, 3)
		loads, stores, _ := prog.Counts()
		loadPct := 100 * float64(loads) / float64(len(prog))
		// Loads within 2.5 percentage points of the Table IV target.
		if diff := loadPct - p.LoadPct; diff > 2.5 || diff < -2.5 {
			t.Errorf("%s: generated loads%% = %.2f, target %.2f", name, loadPct, p.LoadPct)
		}
		_ = stores
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := Lookup("barnes")
	a := Generate(p, 1, 5000, 42)
	b := Generate(p, 1, 5000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs between identical generations", i)
		}
	}
}

func TestGeneratorVariesByCoreAndSeed(t *testing.T) {
	p, _ := Lookup("barnes")
	a := Generate(p, 0, 2000, 42)
	b := Generate(p, 1, 2000, 42)
	c := Generate(p, 0, 2000, 43)
	if same(a, b) {
		t.Error("different cores should get different streams")
	}
	if same(a, c) {
		t.Error("different seeds should get different streams")
	}
}

func same(a, b isa.Program) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCoresDoNotSharePrivateRegions(t *testing.T) {
	p, _ := Lookup("barnes")
	a := Generate(p, 0, 5000, 42)
	b := Generate(p, 1, 5000, 42)
	aPriv := map[uint64]bool{}
	for _, in := range a {
		if in.Op.IsMem() && in.Addr < sharedBase {
			aPriv[in.Addr&^63] = true
		}
	}
	for _, in := range b {
		if in.Op.IsMem() && in.Addr < sharedBase && aPriv[in.Addr&^63] {
			t.Fatalf("cores share private line %#x", in.Addr&^63)
		}
	}
}

func TestBuildWorkload(t *testing.T) {
	p, _ := Lookup("barnes")
	w := Build(p, 8, 1000, 1)
	if len(w.Programs) != 8 {
		t.Errorf("parallel workload should have 8 programs, got %d", len(w.Programs))
	}
	ps, _ := Lookup("505.mcf")
	ws := Build(ps, 8, 1000, 1)
	if len(ws.Programs) != 1 {
		t.Errorf("sequential workload should have 1 program, got %d", len(ws.Programs))
	}
}

// TestGenerateAnyProfileValid: generation never produces invalid programs,
// for arbitrary (sane) profile knobs.
func TestGenerateAnyProfileValid(t *testing.T) {
	f := func(loadPct, fwdFrac, storePct, branchPct, stream, shared, sync, chase, conflict uint8, seed uint64) bool {
		p := Profile{
			Name:        "prop",
			LoadPct:     5 + float64(loadPct%30),
			StorePct:    1 + float64(storePct%20),
			BranchPct:   1 + float64(branchPct%20),
			StreamPct:   float64(stream%50) / 100,
			SharedPct:   float64(shared%5) / 100,
			SyncPct:     float64(sync%3) / 10,
			ChasePct:    float64(chase%40) / 100,
			ConflictPct: float64(conflict%10) / 100,
		}
		p.ForwardPct = p.LoadPct * float64(fwdFrac%80) / 100
		prog := Generate(p, int(seed%8), 800, seed)
		return len(prog) == 800 && prog.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSuiteString(t *testing.T) {
	if Parallel.String() != "parallel" || Sequential.String() != "sequential" {
		t.Error("suite names")
	}
}
