package trace

import (
	"reflect"
	"sync"
	"testing"
)

// TestCacheMatchesBuild: a cached workload must be exactly what Build
// produces, for both suites.
func TestCacheMatchesBuild(t *testing.T) {
	c := NewCache()
	for _, name := range []string{"barnes", "505.mcf"} {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("unknown profile %q", name)
		}
		got := c.Workload(p, 8, 2000, 42)
		want := Build(p, 8, 2000, 42)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: cached workload differs from Build", name)
		}
	}
}

// TestCacheHitsAndMisses: the same key generates once; distinct keys (any
// coordinate differing) generate separately.
func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache()
	p, _ := Lookup("swaptions")
	w1 := c.Workload(p, 8, 500, 1)
	w2 := c.Workload(p, 8, 500, 1)
	if &w1.Programs[0][0] != &w2.Programs[0][0] {
		t.Error("same key did not return the shared trace")
	}
	c.Workload(p, 8, 500, 2) // different seed
	c.Workload(p, 8, 600, 1) // different length
	c.Workload(p, 4, 500, 1) // different cores
	hits, misses := c.Stats()
	if hits != 1 || misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 1/4", hits, misses)
	}
	if c.Len() != 4 {
		t.Errorf("cache holds %d entries, want 4", c.Len())
	}
}

// TestCacheConcurrentReaders hammers one cache from many goroutines mixing
// first-touch generation with replay of hot keys; run under -race this is
// the trace cache's concurrency certificate. Every reader must observe a
// workload identical to a fresh Build.
func TestCacheConcurrentReaders(t *testing.T) {
	c := NewCache()
	profiles := []string{"barnes", "x264", "radix", "505.mcf", "swaptions"}
	want := make(map[string]Workload, len(profiles))
	for _, name := range profiles {
		p, _ := Lookup(name)
		want[name] = Build(p, 8, 400, 99)
	}

	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := profiles[(g+r)%len(profiles)]
				p, _ := Lookup(name)
				w := c.Workload(p, 8, 400, 99)
				if !reflect.DeepEqual(w, want[name]) {
					errs <- name
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Errorf("concurrent reader observed a corrupted workload for %q", name)
	}
	hits, misses := c.Stats()
	if misses != uint64(len(profiles)) {
		t.Errorf("generated %d times, want once per profile (%d)", misses, len(profiles))
	}
	if hits+misses != goroutines*rounds {
		t.Errorf("hits+misses = %d, want %d requests", hits+misses, goroutines*rounds)
	}
}

// TestSharedCache: the process-wide cache serves CachedWorkload.
func TestSharedCache(t *testing.T) {
	p, _ := Lookup("fft")
	a := CachedWorkload(p, 8, 300, 1234)
	b := Shared().Workload(p, 8, 300, 1234)
	if &a.Programs[0][0] != &b.Programs[0][0] {
		t.Error("CachedWorkload and Shared().Workload disagree")
	}
}
