// Package trace generates the synthetic workloads that stand in for the
// paper's benchmark suites (SPLASH-3 and PARSEC 3.0 in Table IV top,
// SPECrate CPU 2017 in Table IV bottom).
//
// Each benchmark is described by a Profile whose load and forwarding
// percentages are taken directly from the paper's measured Table IV
// characterization; qualitative knobs (working-set size, sharing,
// synchronization contention, eviction pressure, pointer chasing, branch
// behaviour) encode the per-benchmark behaviours the paper calls out — the
// recursion-heavy stack traffic of barnes, the contended condition variable
// of x264, the eviction storms of 505.mcf, the store-bandwidth pressure of
// radix. The generator is deterministic for a given (profile, core, seed).
package trace

// Suite distinguishes the two halves of Table IV.
type Suite int

// Benchmark suites.
const (
	// Parallel is SPLASH-3 + PARSEC 3.0, run on all 8 cores.
	Parallel Suite = iota
	// Sequential is SPECrate CPU 2017, run on one core.
	Sequential
)

func (s Suite) String() string {
	if s == Parallel {
		return "parallel"
	}
	return "sequential"
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Suite Suite

	// LoadPct and ForwardPct are the Table IV targets: retired loads and
	// forwarded (SLF) loads as a percentage of retired instructions.
	// ForwardPct is included in LoadPct.
	LoadPct    float64
	ForwardPct float64

	// StorePct is the plain-store percentage (forwarding pairs add their
	// own stores on top).
	StorePct float64

	// BranchPct is the branch percentage; BranchNoise in [0,1] is the
	// fraction of branches with data-dependent (hard to predict)
	// outcomes.
	BranchPct   float64
	BranchNoise float64

	// WorkingSetBytes is the private working set each core walks.
	WorkingSetBytes int

	// StreamPct is the fraction of plain memory accesses that stream
	// through a region much larger than the caches, creating the
	// eviction pressure of 505.mcf-like applications.
	StreamPct   float64
	StreamBytes int

	// SharedPct is the fraction of plain memory accesses that touch
	// lines shared by all cores (parallel suites only).
	SharedPct   float64
	SharedLines int

	// SyncPct is the percentage of instructions spent in contended
	// synchronization episodes (atomic RMW plus store-to-load forwarding
	// on a shared line, the pthread_cond_wait pattern of x264).
	SyncPct  float64
	SyncVars int

	// ChasePct is the fraction of loads whose address depends on the
	// previous load's value (pointer chasing over a memory-sized region),
	// delaying address resolution and exercising the memory-dependence
	// machinery.
	ChasePct float64

	// ConflictPct is the fraction of plain accesses that walk a
	// page-strided region mapping into few L1 sets, so fills evict lines
	// whose loads are still in the instruction window — the eviction
	// behaviour behind 505.mcf's misspeculation rate.
	ConflictPct float64

	// FwdSlowPct is the fraction of forwarding pairs whose store targets
	// a streaming (cache-missing) line: its drain is slow, so the SLF
	// load casts a long SA-speculative shadow. Zero by default; only
	// workloads the paper singles out for store-atomicity misspeculation
	// (505.mcf) set it.
	FwdSlowPct float64

	// ChaseBytes bounds the pointer-chase region; small regions make the
	// chase cache-resident (compiler-like), huge ones memory-bound
	// (505.mcf-like). Defaults to 256 KiB.
	ChaseBytes int

	// ALULat is the extra latency of ALU filler operations.
	ALULat uint8
}

// defaults fills zero knobs with representative values.
func (p Profile) defaults() Profile {
	if p.StorePct == 0 {
		p.StorePct = 11
	}
	if p.BranchPct == 0 {
		p.BranchPct = 12
	}
	if p.BranchNoise == 0 {
		p.BranchNoise = 0.08
	}
	if p.WorkingSetBytes == 0 {
		p.WorkingSetBytes = 12 << 10
	}
	if p.StreamBytes == 0 {
		p.StreamBytes = 4 << 20
	}
	if p.SharedLines == 0 {
		p.SharedLines = 512
	}
	if p.SyncVars == 0 {
		p.SyncVars = 4
	}
	if p.ChaseBytes == 0 {
		p.ChaseBytes = 256 << 10
	}
	return p
}

// ParallelProfiles returns the 25 SPLASH-3/PARSEC workloads of Table IV
// (top), with LoadPct/ForwardPct equal to the paper's measured columns.
func ParallelProfiles() []Profile {
	ps := []Profile{
		{Name: "barnes", LoadPct: 31.780, ForwardPct: 18.336, WorkingSetBytes: 8 << 10, SharedPct: 0.0025},
		{Name: "blackscholes", LoadPct: 19.745, ForwardPct: 7.272, SharedPct: 0.0006},
		{Name: "bodytrack", LoadPct: 17.915, ForwardPct: 4.119, SharedPct: 0.0025, SyncPct: 0.1},
		{Name: "canneal", LoadPct: 24.259, ForwardPct: 2.755, StreamPct: 0.25, SharedPct: 0.006},
		{Name: "cholesky", LoadPct: 26.320, ForwardPct: 1.604, SharedPct: 0.004},
		{Name: "dedup", LoadPct: 13.762, ForwardPct: 6.481, SharedPct: 0.0025, SyncPct: 0.05},
		{Name: "ferret", LoadPct: 20.542, ForwardPct: 3.527, SharedPct: 0.004, SyncPct: 0.1},
		{Name: "fft", LoadPct: 17.282, ForwardPct: 0.010, StreamPct: 0.15, SharedPct: 0.0025, WorkingSetBytes: 8 << 10},
		{Name: "fluidanimate", LoadPct: 25.233, ForwardPct: 1.044, SharedPct: 0.005, SyncPct: 0.05},
		{Name: "fmm", LoadPct: 15.439, ForwardPct: 0.294, SharedPct: 0.0025},
		{Name: "freqmine", LoadPct: 26.120, ForwardPct: 2.584, SharedPct: 0.0025},
		{Name: "lu_cb", LoadPct: 22.165, ForwardPct: 0.230, SharedPct: 0.0025},
		{Name: "lu_ncb", LoadPct: 24.261, ForwardPct: 1.352, SharedPct: 0.006},
		{Name: "ocean_cp", LoadPct: 30.497, ForwardPct: 0.031, StreamPct: 0.35, SharedPct: 0.004},
		{Name: "ocean_ncp", LoadPct: 27.233, ForwardPct: 0.064, StreamPct: 0.35, SharedPct: 0.004},
		{Name: "radiosity", LoadPct: 29.947, ForwardPct: 4.201, SharedPct: 0.004},
		// radix is dominated by long-latency streaming writes that
		// stress the SQ/SB (Section VI-B): store-heavy, fully
		// streaming stores.
		{Name: "radix", LoadPct: 28.182, ForwardPct: 1.411, StorePct: 24, StreamPct: 0.85, SharedPct: 0.0025, WorkingSetBytes: 8 << 10},
		{Name: "raytrace", LoadPct: 28.501, ForwardPct: 5.625, SharedPct: 0.0025},
		{Name: "streamcluster", LoadPct: 29.899, ForwardPct: 0.031, StreamPct: 0.5, SharedPct: 0.005},
		{Name: "swaptions", LoadPct: 24.576, ForwardPct: 4.498, SharedPct: 0.0006},
		{Name: "vips", LoadPct: 18.061, ForwardPct: 1.962, SharedPct: 0.0025},
		{Name: "volrend", LoadPct: 24.514, ForwardPct: 5.097, SharedPct: 0.0025},
		{Name: "water_nsquared", LoadPct: 26.834, ForwardPct: 7.687, SharedPct: 0.0025},
		{Name: "water_spatial", LoadPct: 27.851, ForwardPct: 8.669, SharedPct: 0.0025},
		// x264's misspeculation comes from store-to-load forwarding on
		// a highly contended synchronization variable inside
		// pthread_cond_wait (Section VI-A).
		{Name: "x264", LoadPct: 26.209, ForwardPct: 3.314, SyncPct: 0.6, SyncVars: 3, SharedPct: 0.006},
	}
	for i := range ps {
		ps[i].Suite = Parallel
		ps[i] = ps[i].defaults()
	}
	return ps
}

// SequentialProfiles returns the 36 SPECrate CPU 2017 workloads of Table IV
// (bottom).
func SequentialProfiles() []Profile {
	ps := []Profile{
		{Name: "500.perlbench_1", LoadPct: 23.866, ForwardPct: 7.527},
		{Name: "500.perlbench_2", LoadPct: 29.159, ForwardPct: 11.192},
		{Name: "500.perlbench_3", LoadPct: 7.889, ForwardPct: 1.075},
		{Name: "502.gcc_1", LoadPct: 24.143, ForwardPct: 8.032, ChasePct: 0.1},
		{Name: "502.gcc_2", LoadPct: 24.132, ForwardPct: 8.027, ChasePct: 0.1},
		{Name: "502.gcc_3", LoadPct: 24.955, ForwardPct: 8.300, ChasePct: 0.1},
		{Name: "502.gcc_4", LoadPct: 25.847, ForwardPct: 8.044, ChasePct: 0.1},
		{Name: "502.gcc_5", LoadPct: 25.847, ForwardPct: 8.043, ChasePct: 0.1},
		{Name: "503.bwaves_1", LoadPct: 30.147, ForwardPct: 1.722, StreamPct: 0.3},
		{Name: "503.bwaves_2", LoadPct: 30.147, ForwardPct: 1.722, StreamPct: 0.3},
		{Name: "503.bwaves_3", LoadPct: 33.200, ForwardPct: 2.094, StreamPct: 0.3},
		{Name: "503.bwaves_4", LoadPct: 30.310, ForwardPct: 1.765, StreamPct: 0.3},
		// 505.mcf: frequent cache evictions hit SA-speculative loads in
		// the LQ (Section VI-A): huge pointer-chased working set.
		{Name: "505.mcf", LoadPct: 29.973, ForwardPct: 4.958, StreamPct: 0.3, StreamBytes: 16 << 20, ChasePct: 0.35, ConflictPct: 0.03, FwdSlowPct: 0.7, ChaseBytes: 16 << 20},
		{Name: "507.cactuBSSN", LoadPct: 31.857, ForwardPct: 5.593, StreamPct: 0.2},
		{Name: "508.namd", LoadPct: 23.369, ForwardPct: 2.448},
		{Name: "510.parest", LoadPct: 33.230, ForwardPct: 1.852, StreamPct: 0.15},
		{Name: "511.povray", LoadPct: 30.513, ForwardPct: 10.185},
		// 519.lbm: streaming writes with forwarding; the case where
		// 370-NoSpec can beat 370-SLFSpec (Section VI-B).
		{Name: "519.lbm", LoadPct: 20.561, ForwardPct: 7.695, StorePct: 22, StreamPct: 0.7, WorkingSetBytes: 8 << 10},
		{Name: "520.omnetpp", LoadPct: 27.695, ForwardPct: 7.978, ChasePct: 0.2, StreamPct: 0.2},
		{Name: "521.wrf", LoadPct: 25.615, ForwardPct: 2.004, StreamPct: 0.2},
		{Name: "523.xalancbmk", LoadPct: 26.679, ForwardPct: 2.804, ChasePct: 0.15},
		{Name: "525.x264_1", LoadPct: 22.529, ForwardPct: 3.381},
		{Name: "525.x264_2", LoadPct: 23.605, ForwardPct: 1.397},
		{Name: "525.x264_3", LoadPct: 22.722, ForwardPct: 2.841},
		{Name: "526.blender", LoadPct: 23.531, ForwardPct: 6.116},
		{Name: "527.cam4", LoadPct: 22.683, ForwardPct: 0.001, StreamPct: 0.15},
		{Name: "531.deepsjeng", LoadPct: 22.159, ForwardPct: 6.743, BranchNoise: 0.2},
		{Name: "538.imagick", LoadPct: 18.552, ForwardPct: 0.103},
		{Name: "541.leela", LoadPct: 23.706, ForwardPct: 5.085, BranchNoise: 0.18},
		{Name: "544.nab", LoadPct: 22.047, ForwardPct: 4.176},
		{Name: "548.exchange2", LoadPct: 24.982, ForwardPct: 4.140, BranchPct: 18},
		{Name: "549.fotonik3d", LoadPct: 20.950, ForwardPct: 7.703, StreamPct: 0.3},
		{Name: "554.roms", LoadPct: 25.549, ForwardPct: 3.700, StreamPct: 0.25},
		{Name: "557.xz_1", LoadPct: 14.427, ForwardPct: 3.312},
		{Name: "557.xz_2", LoadPct: 10.098, ForwardPct: 1.064},
		{Name: "557.xz_3", LoadPct: 12.466, ForwardPct: 0.981},
	}
	for i := range ps {
		ps[i].Suite = Sequential
		ps[i] = ps[i].defaults()
	}
	return ps
}

// Lookup finds a profile by name in either suite.
func Lookup(name string) (Profile, bool) {
	for _, p := range ParallelProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range SequentialProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
