package trace

import (
	"sesa/internal/isa"
)

// Memory-layout bases. Per-core regions are spaced so cores never share
// private lines; the shared and sync regions are common to all cores.
const (
	stackBase  = uint64(0x1_0000_0000)
	wsBase     = uint64(0x2_0000_0000)
	streamBase = uint64(0x3_0000_0000)
	sharedBase = uint64(0x4_0000_0000)
	syncBase   = uint64(0x5_0000_0000)
	coreStride = uint64(0x1000_0000)
	lineBytes  = 64

	// codeFootprint is the number of distinct static PCs: instruction
	// PCs repeat modulo this, letting the branch and memory-dependence
	// predictors train as they would on looping code.
	codeFootprint = 2048
)

// rng is a splitmix64 stream.
type rng uint64

func (s *rng) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *rng) float() float64 { return float64(s.next()>>11) / (1 << 53) }

func (s *rng) intn(n int) int { return int(s.next() % uint64(n)) }

// Register allocation for generated code.
const (
	regALU0  = isa.Reg(0)  // r0..r5: ALU rotation
	regChase = isa.Reg(8)  // pointer-chase register
	regLoad0 = isa.Reg(10) // r10..r15: load destinations
)

// gen carries the generator state for one core's stream.
type gen struct {
	p    Profile
	core int
	r    rng
	prog isa.Program

	fwdQ        []pendingFwd
	nFwd        int
	nLoad       int
	nStore      int
	nBranch     int
	nSyncEp     int
	streamPtr   uint64
	wsPtr       uint64
	conflictIdx int
	stackSlot   int
	loadReg     int
	aluReg      int
	branchIdx   int
}

func (g *gen) pc() uint64 {
	return 0x40_0000 + uint64(len(g.prog)%codeFootprint)*4
}

func (g *gen) emit(in isa.Inst) {
	in.PC = g.pc()
	g.prog = append(g.prog, in)
}

// stackAddr returns one of a small ring of per-core stack slots — the
// write-then-read locations (call frames, spilled registers) that produce
// store-to-load forwarding.
func (g *gen) stackAddr() uint64 {
	g.stackSlot = (g.stackSlot + 1) % 16
	return stackBase + uint64(g.core)*coreStride + uint64(g.stackSlot)*8
}

// wsAddr walks the core's private working set mostly sequentially with
// occasional random jumps, the locality real code has: recently loaded
// lines keep getting touched, so the LRU protects them while their loads
// are still in the instruction window.
func (g *gen) wsAddr() uint64 {
	if g.r.float() < 0.05 {
		g.wsPtr = uint64(g.r.intn(g.p.WorkingSetBytes/8)) * 8
	} else {
		g.wsPtr = (g.wsPtr + 8) % uint64(g.p.WorkingSetBytes)
	}
	return wsBase + uint64(g.core)*coreStride + g.wsPtr
}

// streamAddr advances the streaming pointer one line through the large
// region, wrapping at StreamBytes.
func (g *gen) streamAddr() uint64 {
	g.streamPtr = (g.streamPtr + lineBytes) % uint64(g.p.StreamBytes)
	return streamBase + uint64(g.core)*coreStride + g.streamPtr
}

// conflictAddr walks a page-strided ring: 64 lines spaced 4 KiB apart, all
// mapping to few L1 sets, so fills evict each other while their loads are
// still in flight.
func (g *gen) conflictAddr() uint64 {
	g.conflictIdx = (g.conflictIdx + 1) % 64
	return streamBase + uint64(g.core)*coreStride + 0x80_0000 + uint64(g.conflictIdx)*4096
}

// sharedAddr returns a random line shared by all cores.
func (g *gen) sharedAddr() uint64 {
	return sharedBase + uint64(g.r.intn(g.p.SharedLines))*lineBytes
}

// syncAddr returns one of the contended synchronization lines.
func (g *gen) syncAddr() uint64 {
	return syncBase + uint64(g.r.intn(g.p.SyncVars))*lineBytes
}

// dataAddr picks a plain-access address according to the stream/shared
// knobs.
func (g *gen) dataAddr() uint64 {
	f := g.r.float()
	switch {
	case f < g.p.SharedPct:
		return g.sharedAddr()
	case f < g.p.SharedPct+g.p.ConflictPct:
		return g.conflictAddr()
	case f < g.p.SharedPct+g.p.ConflictPct+g.p.StreamPct:
		return g.streamAddr()
	default:
		return g.wsAddr()
	}
}

func (g *gen) nextLoadReg() isa.Reg {
	g.loadReg = (g.loadReg + 1) % 6
	return regLoad0 + isa.Reg(g.loadReg)
}

func (g *gen) nextALUReg() isa.Reg {
	g.aluReg = (g.aluReg + 1) % 6
	return regALU0 + isa.Reg(g.aluReg)
}

// pendingFwd is a queued forwarded load: the store was emitted at emitIdx
// dueAt-gap; the load goes out when the stream reaches dueAt.
type pendingFwd struct {
	addr  uint64
	dueAt int
}

// emitFwdStore emits the store half of a forwarding pair and queues its
// load a few instructions ahead — the write-then-read distance of argument
// passing and register spills. The instructions in between come from the
// normal mix, so the pair costs exactly two slots of the budget. The
// distance determines the retirement gap between store and load, and with
// it whether the forwarding store has already written to the L1 when the
// SLF load retires — i.e. whether the retire gate closes (Section VI-A:
// "in most of these cases ... the retire gate is never closed").
func (g *gen) emitFwdStore() {
	addr := g.stackAddr()
	if g.r.float() < g.p.FwdSlowPct {
		addr = g.streamAddr()
	}
	g.emit(isa.StoreImm(addr, g.r.next()))
	g.nStore++
	// Bimodal distance: most forwarding idioms are short (spill/reload,
	// immediately-read call arguments), a minority long (arguments read
	// deep in the callee). Short pairs are the ones blanket 370
	// enforcement stalls on; long pairs are the ones whose store has
	// usually written by SLF-load retirement.
	gap := 2 + g.r.intn(8)
	if g.r.float() < 0.4 {
		gap = 16 + g.r.intn(40)
	}
	g.fwdQ = append(g.fwdQ, pendingFwd{addr: addr, dueAt: len(g.prog) + gap})
}

// emitFwdLoad emits the load half of the oldest queued forwarding pair.
func (g *gen) emitFwdLoad() {
	pf := g.fwdQ[0]
	g.fwdQ = g.fwdQ[1:]
	g.emit(isa.Load(g.nextLoadReg(), pf.addr))
	g.nFwd++
	g.nLoad++
}

// emitLoad emits a plain load; with probability ChasePct it is a pointer
// chase whose address depends on the previous chase load.
func (g *gen) emitLoad() {
	if g.r.float() < g.p.ChasePct {
		// Pointer chase: each link's address depends on the previous
		// load's value; the region size decides how deep in the
		// hierarchy the chain runs.
		off := uint64(g.r.intn(g.p.ChaseBytes/64)) * 64
		in := isa.Load(regChase, streamBase+uint64(g.core)*coreStride+0x100_0000+off)
		in.Src2 = regChase // address depends on the previous link
		g.emit(in)
	} else {
		g.emit(isa.Load(g.nextLoadReg(), g.dataAddr()))
	}
	g.nLoad++
}

func (g *gen) emitStore() {
	g.emit(isa.StoreImm(g.dataAddr(), g.r.next()))
	g.nStore++
}

// emitBranch emits a branch with a mostly regular pattern plus a
// data-dependent noisy fraction.
func (g *gen) emitBranch() {
	g.branchIdx++
	taken := g.branchIdx%8 != 0
	if g.r.float() < g.p.BranchNoise {
		taken = g.r.next()&1 == 0
	}
	g.emit(isa.Branch(0, taken)) // PC is assigned by emit
	g.nBranch++
}

// emitSyncEpisode emits a contended synchronization episode: an atomic RMW
// on a sync line followed by a store and a forwarded load of the same line —
// the pthread_cond_wait pattern whose forwarding on a highly contended
// variable causes x264's store-atomicity misspeculations (Section VI-A).
func (g *gen) emitSyncEpisode() {
	sv := g.syncAddr()
	g.emit(isa.RMW(g.nextLoadReg(), sv, 1))
	g.emit(isa.StoreImm(sv+8, g.r.next()))
	g.emit(isa.Load(g.nextLoadReg(), sv+8))
	g.emit(isa.Load(g.nextLoadReg(), sv+16))
	g.nSyncEp++
	g.nFwd++
	g.nLoad += 3
	g.nStore++
}

func (g *gen) emitALU() {
	r := g.nextALUReg()
	g.emit(isa.ALUImm(r, r, 1, g.p.ALULat))
}

// Generate produces a deterministic n-instruction stream for one core.
func Generate(p Profile, core, n int, seed uint64) isa.Program {
	p = p.defaults()
	g := &gen{
		p:    p,
		core: core,
		r:    rng(seed*0x9E3779B9 + uint64(core)*0x85EBCA6B + 1),
		prog: make(isa.Program, 0, n+8),
	}

	// Target counts. Forwarding pairs and sync episodes contribute to the
	// load/store budgets, so plain loads/stores cover the remainder.
	targetFwd := float64(n) * p.ForwardPct / 100
	targetSync := float64(n) * p.SyncPct / 100 / 5 // ~5 instructions each
	targetLoad := float64(n)*p.LoadPct/100 - targetFwd - 2*targetSync
	targetStore := float64(n) * p.StorePct / 100
	targetBranch := float64(n) * p.BranchPct / 100
	if targetLoad < 0 {
		targetLoad = 0
	}

	for len(g.prog) < n {
		if len(g.fwdQ) > 0 && len(g.prog) >= g.fwdQ[0].dueAt {
			g.emitFwdLoad()
			continue
		}
		pos := float64(len(g.prog)) / float64(n)
		switch {
		case float64(g.nSyncEp) < targetSync*pos:
			g.emitSyncEpisode()
		case float64(g.nFwd+len(g.fwdQ)-g.nSyncEp) < targetFwd*pos:
			g.emitFwdStore()
		case float64(g.nLoad-g.nFwd-2*g.nSyncEp) < targetLoad*pos:
			g.emitLoad()
		case float64(g.nStore-g.nFwd-len(g.fwdQ)) < targetStore*pos:
			g.emitStore()
		case float64(g.nBranch) < targetBranch*pos:
			g.emitBranch()
		default:
			g.emitALU()
		}
	}
	return g.prog[:n]
}

// Workload is a set of per-core programs ready to run on a machine.
type Workload struct {
	Name     string
	Suite    Suite
	Programs []isa.Program
}

// Build generates the workload for a profile: all cores run the stream
// (with per-core seeds) for parallel suites; sequential suites use core 0
// only.
func Build(p Profile, cores, instPerCore int, seed uint64) Workload {
	w := Workload{Name: p.Name, Suite: p.Suite}
	n := cores
	if p.Suite == Sequential {
		n = 1
	}
	for c := 0; c < n; c++ {
		w.Programs = append(w.Programs, Generate(p, c, instPerCore, seed))
	}
	return w
}
