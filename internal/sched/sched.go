// Package sched provides the simulation's two-level clock: a deterministic
// event queue (the timing spine of the memory system, formerly part of
// internal/noc) plus a Clock that owns the current cycle and the per-core
// quiescence wake registrations. Level one is the ordinary cycle-by-cycle
// tick; level two lets the machine jump the cycle straight to the next
// pending event or core wake when every core reports it cannot make
// progress, skipping dead cycles without changing a single simulated one.
package sched

// Never marks a core with no timed wake-up: only a memory-system event can
// unblock it.
const Never = ^uint64(0)

// Kind tags an event's meaning. The values are opaque to this package; the
// handler that drains the queue interprets them.
type Kind uint8

// Event is one scheduled memory-system message, a plain value: no callback
// closure, so scheduling never allocates. The payload fields mean whatever
// the Kind's handler says they mean (a line address, a data value, an
// in-flight-instruction reference). Events scheduled for the same cycle are
// delivered in insertion order, keeping the simulation deterministic.
type Event struct {
	Cycle uint64
	seq   uint64
	Kind  Kind
	Evict bool
	Size  uint8
	Core  int32
	Addr  uint64
	Val   uint64
	Ref   uint64
}

// Handler consumes a batch of due events, in delivery order. A drain hands
// the handler one slice view per flush instead of one callback invocation
// per message; the slice is owned by the queue and valid only for the call.
type Handler interface {
	HandleBatch([]Event)
}

// EventQueue is a deterministic min-heap of events ordered by (cycle,
// insertion sequence). It is the spine of the memory-system timing model.
// The heap is a plain slice of event values — scheduling and draining touch
// no interface boxes and allocate nothing in steady state.
type EventQueue struct {
	h     []Event
	seq   uint64
	batch []Event
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues the event for delivery at ev.Cycle.
func (q *EventQueue) Schedule(ev Event) {
	q.seq++
	ev.seq = q.seq
	q.h = append(q.h, ev)
	q.siftUp(len(q.h) - 1)
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event; ok is false if
// the queue is empty.
func (q *EventQueue) NextCycle() (cycle uint64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Cycle, true
}

// RunUntil delivers, in order, every event scheduled at or before cycle:
// due events are drained into a reusable buffer and handed to h as one
// batch. Handling may schedule further events; any that fall due are
// drained in a following batch, preserving the (cycle, seq) firing order a
// callback-per-message queue would have produced.
func (q *EventQueue) RunUntil(cycle uint64, h Handler) {
	for len(q.h) > 0 && q.h[0].Cycle <= cycle {
		q.batch = q.batch[:0]
		for len(q.h) > 0 && q.h[0].Cycle <= cycle {
			q.batch = append(q.batch, q.pop())
		}
		h.HandleBatch(q.batch)
	}
}

// less orders the heap by (cycle, insertion sequence).
func (q *EventQueue) less(i, j int) bool {
	if q.h[i].Cycle != q.h[j].Cycle {
		return q.h[i].Cycle < q.h[j].Cycle
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *EventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) pop() Event {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			return top
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
}

// Clock is the two-level simulation clock: the current cycle, the event
// heap, and one wake registration per core. The machine refreshes every
// wake each Step; Horizon is meaningful only right after a fully quiescent
// Step, when all registrations describe the current cycle's state.
type Clock struct {
	EventQueue
	now   uint64
	wakes []uint64
}

// NewClock returns a clock at cycle 0 for the given core count, with every
// wake registration cleared to Never.
func NewClock(cores int) *Clock {
	c := &Clock{wakes: make([]uint64, cores)}
	for i := range c.wakes {
		c.wakes[i] = Never
	}
	return c
}

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.now }

// Deliver hands h every event scheduled at or before the current cycle.
func (c *Clock) Deliver(h Handler) { c.RunUntil(c.now, h) }

// Tick advances the clock one cycle.
func (c *Clock) Tick() { c.now++ }

// SetWake records core i's quiescence report: the earliest future cycle at
// which it can do timed work, or Never when it is purely event-blocked.
func (c *Clock) SetWake(i int, wake uint64) { c.wakes[i] = wake }

// Horizon returns the earliest cycle in [now, bound] at which anything can
// happen: the next pending event or the earliest registered core wake.
// When neither falls before bound it returns bound itself — with every core
// quiescent the machine may then advance the clock straight there.
func (c *Clock) Horizon(bound uint64) uint64 {
	h := bound
	for _, w := range c.wakes {
		if w < h {
			h = w
		}
	}
	if next, ok := c.NextCycle(); ok && next < h {
		h = next
	}
	if h < c.now {
		h = c.now
	}
	return h
}

// AdvanceTo jumps the clock forward to target; targets at or before the
// current cycle are ignored.
func (c *Clock) AdvanceTo(target uint64) {
	if target > c.now {
		c.now = target
	}
}
