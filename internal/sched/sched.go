// Package sched provides the simulation's two-level clock: a deterministic
// event queue (the timing spine of the memory system, formerly part of
// internal/noc) plus a Clock that owns the current cycle and the per-core
// quiescence wake registrations. Level one is the ordinary cycle-by-cycle
// tick; level two lets the machine jump the cycle straight to the next
// pending event or core wake when every core reports it cannot make
// progress, skipping dead cycles without changing a single simulated one.
package sched

import "container/heap"

// Never marks a core with no timed wake-up: only a memory-system event can
// unblock it.
const Never = ^uint64(0)

// Event is a scheduled callback: at Cycle, Fn runs. Events scheduled for the
// same cycle fire in insertion order, keeping the simulation deterministic.
type Event struct {
	Cycle uint64
	Fn    func()
	seq   uint64
}

// EventQueue is a deterministic min-heap of events ordered by (cycle,
// insertion sequence). It is the spine of the memory-system timing model.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues fn to run at the given cycle.
func (q *EventQueue) Schedule(cycle uint64, fn func()) {
	q.seq++
	heap.Push(&q.h, Event{Cycle: cycle, Fn: fn, seq: q.seq})
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event; ok is false if
// the queue is empty.
func (q *EventQueue) NextCycle() (cycle uint64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Cycle, true
}

// RunUntil fires, in order, every event scheduled at or before cycle.
func (q *EventQueue) RunUntil(cycle uint64) {
	for len(q.h) > 0 && q.h[0].Cycle <= cycle {
		ev := heap.Pop(&q.h).(Event)
		ev.Fn()
	}
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Cycle != h[j].Cycle {
		return h[i].Cycle < h[j].Cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Clock is the two-level simulation clock: the current cycle, the event
// heap, and one wake registration per core. The machine refreshes every
// wake each Step; Horizon is meaningful only right after a fully quiescent
// Step, when all registrations describe the current cycle's state.
type Clock struct {
	EventQueue
	now   uint64
	wakes []uint64
}

// NewClock returns a clock at cycle 0 for the given core count, with every
// wake registration cleared to Never.
func NewClock(cores int) *Clock {
	c := &Clock{wakes: make([]uint64, cores)}
	for i := range c.wakes {
		c.wakes[i] = Never
	}
	return c
}

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.now }

// Deliver fires every event scheduled at or before the current cycle.
func (c *Clock) Deliver() { c.RunUntil(c.now) }

// Tick advances the clock one cycle.
func (c *Clock) Tick() { c.now++ }

// SetWake records core i's quiescence report: the earliest future cycle at
// which it can do timed work, or Never when it is purely event-blocked.
func (c *Clock) SetWake(i int, wake uint64) { c.wakes[i] = wake }

// Horizon returns the earliest cycle in [now, bound] at which anything can
// happen: the next pending event or the earliest registered core wake.
// When neither falls before bound it returns bound itself — with every core
// quiescent the machine may then advance the clock straight there.
func (c *Clock) Horizon(bound uint64) uint64 {
	h := bound
	for _, w := range c.wakes {
		if w < h {
			h = w
		}
	}
	if next, ok := c.NextCycle(); ok && next < h {
		h = next
	}
	if h < c.now {
		h = c.now
	}
	return h
}

// AdvanceTo jumps the clock forward to target; targets at or before the
// current cycle are ignored.
func (c *Clock) AdvanceTo(target uint64) {
	if target > c.now {
		c.now = target
	}
}
