package sched

import (
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var order []int
	q.Schedule(10, func() { order = append(order, 2) })
	q.Schedule(5, func() { order = append(order, 1) })
	q.Schedule(10, func() { order = append(order, 3) }) // same cycle: FIFO
	q.Schedule(20, func() { order = append(order, 4) })
	q.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
	next, ok := q.NextCycle()
	if !ok || next != 20 {
		t.Fatalf("next = %d ok=%v", next, ok)
	}
	q.RunUntil(100)
	if len(order) != 4 || order[3] != 4 {
		t.Fatalf("final order = %v", order)
	}
}

func TestEventQueueScheduleDuringRun(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(1, func() {
		fired = append(fired, 1)
		q.Schedule(1, func() { fired = append(fired, 2) }) // same cycle, later seq
		q.Schedule(5, func() { fired = append(fired, 3) })
	})
	q.RunUntil(1)
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("nested same-cycle event not fired in order: %v", fired)
	}
	q.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("future nested event lost: %v", fired)
	}
}

// TestEventQueueMonotonic is a property test: events always fire in
// non-decreasing cycle order regardless of insertion order.
func TestEventQueueMonotonic(t *testing.T) {
	f := func(cycles []uint16) bool {
		q := NewEventQueue()
		var fired []uint64
		for _, c := range cycles {
			c := uint64(c)
			q.Schedule(c, func() { fired = append(fired, c) })
		}
		q.RunUntil(1 << 20)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(cycles)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockTickAndDeliver(t *testing.T) {
	c := NewClock(2)
	if c.Now() != 0 {
		t.Fatalf("new clock at cycle %d", c.Now())
	}
	var fired []uint64
	c.Schedule(0, func() { fired = append(fired, 0) })
	c.Schedule(2, func() { fired = append(fired, 2) })
	c.Deliver() // cycle 0: fires the first event only
	c.Tick()
	c.Deliver() // cycle 1: nothing due
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("fired = %v, want [0]", fired)
	}
	c.Tick()
	c.Deliver() // cycle 2
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [0 2]", fired)
	}
}

func TestClockHorizon(t *testing.T) {
	c := NewClock(3)
	// All wakes Never, no events: horizon is the bound.
	if h := c.Horizon(100); h != 100 {
		t.Fatalf("empty horizon = %d, want 100", h)
	}
	c.SetWake(0, 40)
	c.SetWake(1, 25)
	if h := c.Horizon(100); h != 25 {
		t.Fatalf("wake horizon = %d, want 25", h)
	}
	c.Schedule(17, func() {})
	if h := c.Horizon(100); h != 17 {
		t.Fatalf("event horizon = %d, want 17", h)
	}
	// The bound clamps everything.
	if h := c.Horizon(10); h != 10 {
		t.Fatalf("bounded horizon = %d, want 10", h)
	}
	// A horizon never moves behind the clock.
	c.AdvanceTo(30)
	if h := c.Horizon(100); h != 30 {
		t.Fatalf("past horizon = %d, want clamped to now=30", h)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(1)
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("now = %d, want 10", c.Now())
	}
	c.AdvanceTo(5) // backwards: ignored
	if c.Now() != 10 {
		t.Fatalf("now after backwards AdvanceTo = %d, want 10", c.Now())
	}
	c.Tick()
	if c.Now() != 11 {
		t.Fatalf("now after Tick = %d, want 11", c.Now())
	}
}
