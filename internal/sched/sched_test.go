package sched

import (
	"testing"
	"testing/quick"
)

// batchFunc adapts a function to the Handler interface for tests.
type batchFunc func([]Event)

func (f batchFunc) HandleBatch(evs []Event) { f(evs) }

// collect returns a handler appending every delivered event's Val to out.
func collect(out *[]uint64) Handler {
	return batchFunc(func(evs []Event) {
		for _, ev := range evs {
			*out = append(*out, ev.Val)
		}
	})
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var order []uint64
	q.Schedule(Event{Cycle: 10, Val: 2})
	q.Schedule(Event{Cycle: 5, Val: 1})
	q.Schedule(Event{Cycle: 10, Val: 3}) // same cycle: FIFO
	q.Schedule(Event{Cycle: 20, Val: 4})
	q.RunUntil(10, collect(&order))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
	next, ok := q.NextCycle()
	if !ok || next != 20 {
		t.Fatalf("next = %d ok=%v", next, ok)
	}
	q.RunUntil(100, collect(&order))
	if len(order) != 4 || order[3] != 4 {
		t.Fatalf("final order = %v", order)
	}
}

func TestEventQueueScheduleDuringRun(t *testing.T) {
	q := NewEventQueue()
	var fired []uint64
	h := batchFunc(func(evs []Event) {
		for _, ev := range evs {
			fired = append(fired, ev.Val)
			if ev.Val == 1 {
				// Handling may schedule further events; a same-cycle one
				// must still fire within this RunUntil, after the batch.
				q.Schedule(Event{Cycle: 1, Val: 2})
				q.Schedule(Event{Cycle: 5, Val: 3})
			}
		}
	})
	q.Schedule(Event{Cycle: 1, Val: 1})
	q.RunUntil(1, h)
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("nested same-cycle event not fired in order: %v", fired)
	}
	q.RunUntil(5, h)
	if len(fired) != 3 {
		t.Fatalf("future nested event lost: %v", fired)
	}
}

func TestEventQueueBatchView(t *testing.T) {
	// A drain hands the handler one contiguous slice of all due events
	// rather than one call per message.
	q := NewEventQueue()
	for i := uint64(1); i <= 6; i++ {
		q.Schedule(Event{Cycle: i % 3, Val: i})
	}
	var calls int
	var got []uint64
	q.RunUntil(2, batchFunc(func(evs []Event) {
		calls++
		for _, ev := range evs {
			got = append(got, ev.Val)
		}
	}))
	if calls != 1 {
		t.Fatalf("drain made %d handler calls, want 1 batch", calls)
	}
	// Cycle 0: vals 3,6; cycle 1: 1,4; cycle 2: 2,5 — insertion order within
	// each cycle.
	want := []uint64{3, 6, 1, 4, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("batch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v, want %v", got, want)
		}
	}
}

// TestEventQueueMonotonic is a property test: events always fire in
// non-decreasing cycle order regardless of insertion order.
func TestEventQueueMonotonic(t *testing.T) {
	f := func(cycles []uint16) bool {
		q := NewEventQueue()
		var fired []uint64
		for _, c := range cycles {
			q.Schedule(Event{Cycle: uint64(c), Val: uint64(c)})
		}
		q.RunUntil(1<<20, collect(&fired))
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(cycles)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockTickAndDeliver(t *testing.T) {
	c := NewClock(2)
	if c.Now() != 0 {
		t.Fatalf("new clock at cycle %d", c.Now())
	}
	var fired []uint64
	h := collect(&fired)
	c.Schedule(Event{Cycle: 0, Val: 0})
	c.Schedule(Event{Cycle: 2, Val: 2})
	c.Deliver(h) // cycle 0: fires the first event only
	c.Tick()
	c.Deliver(h) // cycle 1: nothing due
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("fired = %v, want [0]", fired)
	}
	c.Tick()
	c.Deliver(h) // cycle 2
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [0 2]", fired)
	}
}

func TestClockHorizon(t *testing.T) {
	c := NewClock(3)
	// All wakes Never, no events: horizon is the bound.
	if h := c.Horizon(100); h != 100 {
		t.Fatalf("empty horizon = %d, want 100", h)
	}
	c.SetWake(0, 40)
	c.SetWake(1, 25)
	if h := c.Horizon(100); h != 25 {
		t.Fatalf("wake horizon = %d, want 25", h)
	}
	c.Schedule(Event{Cycle: 17})
	if h := c.Horizon(100); h != 17 {
		t.Fatalf("event horizon = %d, want 17", h)
	}
	// The bound clamps everything.
	if h := c.Horizon(10); h != 10 {
		t.Fatalf("bounded horizon = %d, want 10", h)
	}
	// A horizon never moves behind the clock.
	c.AdvanceTo(30)
	if h := c.Horizon(100); h != 30 {
		t.Fatalf("past horizon = %d, want clamped to now=30", h)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(1)
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("now = %d, want 10", c.Now())
	}
	c.AdvanceTo(5) // backwards: ignored
	if c.Now() != 10 {
		t.Fatalf("now after backwards AdvanceTo = %d, want 10", c.Now())
	}
	c.Tick()
	if c.Now() != 11 {
		t.Fatalf("now after Tick = %d, want 11", c.Now())
	}
}

func TestScheduleDrainAllocFree(t *testing.T) {
	// Steady-state scheduling and draining must not allocate: the heap and
	// batch buffer are reused once warmed up.
	q := NewEventQueue()
	h := batchFunc(func([]Event) {})
	// Warm up the backing arrays.
	for i := uint64(0); i < 64; i++ {
		q.Schedule(Event{Cycle: i})
	}
	q.RunUntil(1<<30, h)
	cycle := uint64(1 << 30)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := uint64(0); i < 32; i++ {
			q.Schedule(Event{Cycle: cycle + i})
		}
		q.RunUntil(cycle+32, h)
		cycle += 64
	})
	if allocs != 0 {
		t.Fatalf("schedule+drain allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkEventQueueScheduleDrain is the NoC delivery path: schedule a
// burst of events and drain them as one batch. The CI perf-guard pins its
// allocs/op at zero.
func BenchmarkEventQueueScheduleDrain(b *testing.B) {
	q := NewEventQueue()
	h := batchFunc(func([]Event) {})
	// Warm the heap and batch buffer.
	for i := uint64(0); i < 64; i++ {
		q.Schedule(Event{Cycle: i})
	}
	q.RunUntil(1<<40, h)
	b.ReportAllocs()
	b.ResetTimer()
	cycle := uint64(1 << 40)
	for i := 0; i < b.N; i++ {
		for j := uint64(0); j < 32; j++ {
			q.Schedule(Event{Cycle: cycle + j})
		}
		q.RunUntil(cycle+32, h)
		cycle += 64
	}
}
