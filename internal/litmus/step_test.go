package litmus

import (
	"reflect"
	"testing"

	"sesa/internal/config"
	"sesa/internal/sim"
	"sesa/internal/stats"
)

// runStepped runs one litmus test and model under the given step mode and
// returns the outcome histogram plus every iteration's machine statistics.
func runStepped(t *testing.T, test Test, model config.Model, mode config.StepMode) (*Result, []*stats.Machine) {
	t.Helper()
	var sts []*stats.Machine
	res, err := RunTraced(test, model, 4, 7, func(_ int, m *sim.Machine) {
		m.SetStepMode(mode)
		sts = append(sts, m.Stats)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, sts
}

// TestStepModesAgreeOnLitmusSuite is the two-level clock's equivalence
// contract on the litmus suite: for every test and model, with and without
// store-buffer pressure, the skip clock must reproduce the naive stepper's
// outcomes and every per-iteration statistic exactly.
func TestStepModesAgreeOnLitmusSuite(t *testing.T) {
	for _, base := range Tests() {
		for _, test := range []Test{base, WithSBPressure(base, 3)} {
			for _, model := range config.AllModels() {
				t.Run(test.Name+"/"+model.String(), func(t *testing.T) {
					naiveRes, naiveSts := runStepped(t, test, model, config.StepNaive)
					skipRes, skipSts := runStepped(t, test, model, config.StepSkip)
					if !reflect.DeepEqual(naiveRes.Outcomes, skipRes.Outcomes) {
						t.Errorf("outcomes differ:\nnaive: %v\nskip:  %v", naiveRes.Outcomes, skipRes.Outcomes)
					}
					for i := range naiveSts {
						if !reflect.DeepEqual(naiveSts[i], skipSts[i]) {
							t.Errorf("iteration %d statistics differ:\nnaive: %+v\nskip:  %+v",
								i, naiveSts[i], skipSts[i])
						}
					}
				})
			}
		}
	}
}
