// Package litmus defines the litmus tests the paper builds its argument on
// (mp, n6, iriw, the Figure 5 disagreement test, and classic TSO tests) and
// runs them both through the exhaustive checker and on the timing simulator.
package litmus

import (
	"fmt"
	"strings"

	"sesa/internal/checker"
	"sesa/internal/config"
	"sesa/internal/isa"
	"sesa/internal/sim"
)

// Well-known variable addresses, placed on distinct cache lines.
const (
	X = uint64(0x1000)
	Y = uint64(0x1040)
	Z = uint64(0x1080)
)

// Test is one litmus test: a checker program plus the outcome the paper
// highlights for it.
type Test struct {
	Name string
	// Doc describes what the test demonstrates.
	Doc  string
	Prog checker.Program
	// Interesting is the outcome the paper discusses: forbidden under the
	// store-atomic model, or the hallmark relaxed behaviour.
	Interesting checker.Outcome
}

// Allowed returns the exhaustive outcome set under the operational model.
func (t Test) Allowed(m checker.Model) checker.OutcomeSet {
	return checker.Enumerate(t.Prog, m)
}

// CheckerModelFor maps a microarchitectural machine model to the
// operational model that bounds its observable outcomes, by its registry
// classification: store-atomic machines (every 370 variant, including the
// ones added through the policy registry) are bounded by TSO370, the
// non-store-atomic baseline by x86-TSO.
func CheckerModelFor(m config.Model) checker.Model {
	if !m.StoreAtomic() {
		return checker.X86TSO
	}
	return checker.TSO370
}

// MP is Figure 1: message passing. rx=1 ry=0 is forbidden under TSO — both
// flavours — because loads and stores each stay ordered.
func MP() Test {
	return Test{
		Name: "mp",
		Doc:  "Fig. 1: two ordered loads observe two ordered stores; rx=1 ry=0 forbidden in TSO",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.Load(1, X), isa.Load(2, Y)},
				{isa.StoreImm(Y, 1), isa.StoreImm(X, 1)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 0, Reg: 1, Name: "rx"},
				{Thread: 0, Reg: 2, Name: "ry"},
			},
		},
		Interesting: "rx=1 ry=0",
	}
}

// N6 is Figure 2: the store-atomicity litmus test. rx=1 ry=0 [x]=1 [y]=2 is
// allowed in x86 (store-to-load forwarding lets Core1 see its own st x,1
// early) but forbidden in store-atomic TSO.
func N6() Test {
	return Test{
		Name: "n6",
		Doc:  "Fig. 2: allowed in x86, forbidden in store-atomic TSO (370)",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1), isa.Load(1, X), isa.Load(2, Y)},
				{isa.StoreImm(Y, 2), isa.StoreImm(X, 2)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 0, Reg: 1, Name: "rx"},
				{Thread: 0, Reg: 2, Name: "ry"},
			},
			Mem: []checker.MemObs{
				{Addr: X, Name: "x"},
				{Addr: Y, Name: "y"},
			},
		},
		Interesting: "rx=1 ry=0 [x]=1 [y]=2",
	}
}

// IRIW is Figure 3: independent reads of independent writes. The two
// observers disagreeing on the store order (both reading 1 then 0) is
// forbidden in any write-atomic TSO, x86 included.
func IRIW() Test {
	return Test{
		Name: "iriw",
		Doc:  "Fig. 3: observers must agree on the order of independent stores",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1)},
				{isa.StoreImm(Y, 1)},
				{isa.Load(1, X), isa.Load(2, Y)},
				{isa.Load(1, Y), isa.Load(2, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 2, Reg: 1, Name: "r0x"},
				{Thread: 2, Reg: 2, Name: "r0y"},
				{Thread: 3, Reg: 1, Name: "r1y"},
				{Thread: 3, Reg: 2, Name: "r1x"},
			},
		},
		Interesting: "r0x=1 r0y=0 r1y=1 r1x=0",
	}
}

// Fig5 is the paper's Figure 5 / Table II test: each core stores to one
// variable and tries to observe the opposite order of the two independent
// stores. Under x86 both cores can claim their own store came first
// (Table II case 1); a store-atomic implementation admits exactly the other
// three outcomes.
func Fig5() Test {
	return Test{
		Name: "fig5",
		Doc:  "Fig. 5 / Table II: disagreement on independent store order",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1), isa.Load(1, X), isa.Load(2, Y)},
				{isa.StoreImm(Y, 1), isa.Load(1, Y), isa.Load(2, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 0, Reg: 1, Name: "c1x"},
				{Thread: 0, Reg: 2, Name: "c1y"},
				{Thread: 1, Reg: 1, Name: "c2y"},
				{Thread: 1, Reg: 2, Name: "c2x"},
			},
		},
		Interesting: "c1x=1 c1y=0 c2y=1 c2x=0",
	}
}

// SB is the store-buffering (Dekker) test: rx=0 ry=0 is the hallmark TSO
// relaxation, allowed in both x86 and 370 but forbidden in SC.
func SB() Test {
	return Test{
		Name: "sb",
		Doc:  "store buffering: rx=0 ry=0 allowed in TSO (both flavours), forbidden in SC",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1), isa.Load(1, Y)},
				{isa.StoreImm(Y, 1), isa.Load(1, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 0, Reg: 1, Name: "ry"},
				{Thread: 1, Reg: 1, Name: "rx"},
			},
		},
		Interesting: "ry=0 rx=0",
	}
}

// SBFence is SB with full fences: rx=0 ry=0 becomes forbidden everywhere.
func SBFence() Test {
	return Test{
		Name: "sb+fence",
		Doc:  "store buffering with mfence: rx=0 ry=0 forbidden in all models",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1), isa.Fence(), isa.Load(1, Y)},
				{isa.StoreImm(Y, 1), isa.Fence(), isa.Load(1, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 0, Reg: 1, Name: "ry"},
				{Thread: 1, Reg: 1, Name: "rx"},
			},
		},
		Interesting: "ry=0 rx=0",
	}
}

// LB is load buffering: rx=1 ry=1 would need load→store reordering, which
// TSO forbids.
func LB() Test {
	return Test{
		Name: "lb",
		Doc:  "load buffering: rx=1 ry=1 forbidden in TSO",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.Load(1, X), isa.StoreImm(Y, 1)},
				{isa.Load(1, Y), isa.StoreImm(X, 1)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 0, Reg: 1, Name: "rx"},
				{Thread: 1, Reg: 1, Name: "ry"},
			},
		},
		Interesting: "rx=1 ry=1",
	}
}

// Fig4 is the Figure 4 observer: one core tries to detect the order of two
// independent stores; all four observations are possible and only {1,0}
// establishes an order.
func Fig4() Test {
	return Test{
		Name: "fig4",
		Doc:  "Fig. 4: the four possible observations of two independent stores",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1)},
				{isa.StoreImm(Y, 1)},
				{isa.Load(1, Y), isa.Load(2, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 2, Reg: 1, Name: "ry"},
				{Thread: 2, Reg: 2, Name: "rx"},
			},
		},
		Interesting: "ry=1 rx=0",
	}
}

// WRC is write-to-read causality: Thread1 reads x then writes y; Thread2
// reads y then x. r1=1 r2=1 rx=0 requires non-write-atomic stores, so it is
// forbidden in both x86 and 370.
func WRC() Test {
	return Test{
		Name: "wrc",
		Doc:  "write-to-read causality: forbidden without PC-style non-write-atomicity",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1)},
				{isa.Load(1, X), isa.StoreImm(Y, 1)},
				{isa.Load(1, Y), isa.Load(2, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{
				{Thread: 1, Reg: 1, Name: "r1"},
				{Thread: 2, Reg: 1, Name: "r2"},
				{Thread: 2, Reg: 2, Name: "rx"},
			},
		},
		Interesting: "r1=1 r2=1 rx=0",
	}
}

// N6Fence is n6 with an mfence after the store: the software-fencing remedy
// the paper's Section I describes (and Section VIII's "patching the software
// with fences"). The fence forbids the forwarding-early behaviour, so the
// store-atomicity signature disappears even on x86 — at the cost of fencing
// every such code site, which is exactly what the paper's hardware mechanism
// avoids.
func N6Fence() Test {
	t := N6()
	t.Name = "n6+fence"
	t.Doc = "n6 with mfence after st x: the signature outcome is gone even on x86"
	th0 := t.Prog.Threads[0]
	t.Prog.Threads[0] = isa.Program{th0[0], isa.Fence(), th0[1], th0[2]}
	return t
}

// CoRR is coherence read-read: two loads of the same location must not see
// a newer write and then an older one; forbidden in every model.
func CoRR() Test {
	return Test{
		Name: "corr",
		Doc:  "coherence: two reads of one location never see new-then-old",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1)},
				{isa.Load(1, X), isa.Load(2, X)},
			},
			Init: map[uint64]uint64{X: 0},
			Regs: []checker.RegObs{
				{Thread: 1, Reg: 1, Name: "r1"},
				{Thread: 1, Reg: 2, Name: "r2"},
			},
		},
		Interesting: "r1=1 r2=0",
	}
}

// S is the classic S test: the final value of x decides whether T1's store
// overtook T0's; with T1's load reading T0's y, TSO forbids final x=2.
func S() Test {
	return Test{
		Name: "s",
		Doc:  "S: store-store order observed through a read; [x]=2 with ry=1 forbidden in TSO",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 2), isa.StoreImm(Y, 1)},
				{isa.Load(1, Y), isa.StoreImm(X, 1)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{{Thread: 1, Reg: 1, Name: "ry"}},
			Mem:  []checker.MemObs{{Addr: X, Name: "x"}},
		},
		Interesting: "ry=1 [x]=2",
	}
}

// TwoPlusTwoW is 2+2W: both cores write both variables in opposite orders;
// both locations ending on their first writer needs store-store reordering.
func TwoPlusTwoW() Test {
	return Test{
		Name: "2+2w",
		Doc:  "2+2W: [x]=1 [y]=1 needs store-store reordering, forbidden in TSO",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1), isa.StoreImm(Y, 2)},
				{isa.StoreImm(Y, 1), isa.StoreImm(X, 2)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Mem: []checker.MemObs{
				{Addr: X, Name: "x"},
				{Addr: Y, Name: "y"},
			},
		},
		Interesting: "[x]=1 [y]=1",
	}
}

// R is the R test: allowed in plain TSO (the store->load relaxation lets
// T1's read run ahead of its write), forbidden once T1 fences.
func R() Test {
	return Test{
		Name: "r",
		Doc:  "R: [y]=2 with rx=0 allowed in TSO via the store->load relaxation",
		Prog: checker.Program{
			Threads: []isa.Program{
				{isa.StoreImm(X, 1), isa.StoreImm(Y, 1)},
				{isa.StoreImm(Y, 2), isa.Load(1, X)},
			},
			Init: map[uint64]uint64{X: 0, Y: 0},
			Regs: []checker.RegObs{{Thread: 1, Reg: 1, Name: "rx"}},
			Mem:  []checker.MemObs{{Addr: Y, Name: "y"}},
		},
		Interesting: "rx=0 [y]=2",
	}
}

// RFence is R with a fence in the writing-then-reading thread: the
// relaxation disappears.
func RFence() Test {
	t := R()
	t.Name = "r+fence"
	t.Doc = "R with mfence: rx=0 [y]=2 forbidden everywhere"
	th1 := t.Prog.Threads[1]
	t.Prog.Threads[1] = isa.Program{th1[0], isa.Fence(), th1[1]}
	return t
}

// Tests returns the full suite in presentation order.
func Tests() []Test {
	return []Test{
		MP(), N6(), N6Fence(), IRIW(), Fig5(), Fig4(),
		SB(), SBFence(), LB(), WRC(), CoRR(),
		S(), TwoPlusTwoW(), R(), RFence(),
	}
}

// Names returns the names of the full suite in presentation order.
func Names() []string {
	ts := Tests()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// Get returns the named test; the error for an unknown name lists every
// valid one.
func Get(name string) (Test, error) {
	for _, t := range Tests() {
		if t.Name == name {
			return t, nil
		}
	}
	return Test{}, fmt.Errorf("litmus: unknown test %q (valid tests: %s)",
		name, strings.Join(Names(), ", "))
}

// WithSBPressure returns a variant of the test in which every thread that
// stores first issues n stores to private scratch cache lines. The scratch
// stores occupy the store buffer and delay the drain of the test's stores —
// the backlog real programs always have and the reason litmus7 needs many
// iterations on hardware — without touching any observable. The allowed
// outcome sets are unchanged; the timing simulator, however, becomes able
// to witness the store-atomicity signatures.
func WithSBPressure(t Test, n int) Test {
	out := t
	out.Name = t.Name + "+sbp"
	out.Prog.Threads = make([]isa.Program, len(t.Prog.Threads))

	// Pressure the threads that forward (a store later loaded by the same
	// thread); if none, fall back to every storing thread.
	forwarding := func(p isa.Program) bool {
		stored := map[uint64]bool{}
		for _, in := range p {
			switch in.Op {
			case isa.OpStore:
				stored[in.Addr] = true
			case isa.OpLoad:
				if stored[in.Addr] {
					return true
				}
			}
		}
		return false
	}
	anyForwards := false
	for _, p := range t.Prog.Threads {
		if forwarding(p) {
			anyForwards = true
			break
		}
	}
	for ti, p := range t.Prog.Threads {
		hasStore := false
		for _, in := range p {
			if in.Op == isa.OpStore {
				hasStore = true
				break
			}
		}
		if !hasStore || (anyForwards && !forwarding(p)) {
			out.Prog.Threads[ti] = p
			continue
		}
		// Each scratch store's address depends on a long ALU chain, so
		// it resolves (and drains) late; the thread's test store,
		// sitting behind them in the FIFO store buffer, is held in
		// limbo long past the point where the thread's loads perform.
		pre := make(isa.Program, 0, 2*n+len(p))
		const delayReg = isa.Reg(30)
		for i := 0; i < n; i++ {
			pre = append(pre, isa.ALUImm(delayReg, delayReg, 1, 200))
			st := isa.StoreImm(uint64(0x20000)+uint64(ti)*0x2000+uint64(i)*0x80, uint64(i+1))
			st.Src2 = delayReg // address available only after the chain
			pre = append(pre, st)
		}
		out.Prog.Threads[ti] = append(pre, p...)
	}
	return out
}

// Result is the outcome histogram of running a test on the timing simulator.
type Result struct {
	Test     string
	Model    config.Model
	Iters    int
	Outcomes map[checker.Outcome]int
}

// Observed reports whether the outcome was witnessed.
func (r *Result) Observed(o checker.Outcome) bool { return r.Outcomes[o] > 0 }

// Run executes the test on the cycle-accurate simulator `iters` times with
// varied jitter seeds and start staggering, collecting the outcome
// histogram. This is the analogue of running litmus7 on real hardware.
func Run(t Test, model config.Model, iters int, seedBase uint64) (*Result, error) {
	return RunTraced(t, model, iters, seedBase, nil)
}

// RunTraced is Run with an observability hook: when attach is non-nil it is
// called on every iteration's machine before it runs (e.g. to attach a
// tracer). The hook must not keep the machine running concurrently —
// iterations stay sequential and deterministic.
func RunTraced(t Test, model config.Model, iters int, seedBase uint64, attach func(iter int, m *sim.Machine)) (*Result, error) {
	return RunConfigTraced(t, config.Skylake(len(t.Prog.Threads), model), iters, seedBase, attach)
}

// RunConfigTraced is RunTraced with an explicit base machine configuration:
// the litmus fuzzer's witness search runs each program both on the Table III
// machine and on the tiny-cache variant, whose evictions perturb timing into
// orderings the big caches never exhibit. Per-iteration jitter seeds and
// start staggering are layered on top of the base configuration exactly as
// in RunTraced.
func RunConfigTraced(t Test, base config.Config, iters int, seedBase uint64, attach func(iter int, m *sim.Machine)) (*Result, error) {
	res := &Result{Test: t.Name, Model: base.Model, Iters: iters, Outcomes: make(map[checker.Outcome]int)}
	rng := seedBase*2654435761 + 1
	for it := 0; it < iters; it++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		cfg := base
		cfg.Jitter = 9
		cfg.JitterSeed = rng
		m, err := sim.New(cfg, t.Name)
		if err != nil {
			return nil, err
		}
		if attach != nil {
			attach(it, m)
		}
		for a, v := range t.Prog.Init {
			m.InitMemory(a, v)
		}
		for ti, prog := range t.Prog.Threads {
			staggered := stagger(prog, int(rng>>16)%7+ti%3)
			if err := m.SetProgram(ti, staggered); err != nil {
				return nil, err
			}
		}
		if err := m.Run(1_000_000); err != nil {
			return nil, err
		}
		res.Outcomes[extract(t, m)]++
	}
	return res, nil
}

// stagger prepends n dependent ALU ops so that thread start times differ
// across iterations, exploring interleavings.
func stagger(p isa.Program, n int) isa.Program {
	out := make(isa.Program, 0, len(p)+n)
	for i := 0; i < n; i++ {
		out = append(out, isa.ALUImm(31, 31, 1, 3))
	}
	return append(out, p...)
}

// extract reads the observables from a finished machine.
func extract(t Test, m *sim.Machine) checker.Outcome {
	st := &finalState{m: m}
	return checker.RenderOutcome(t.Prog, st)
}

// finalState adapts a finished machine to the checker's observable reader.
type finalState struct{ m *sim.Machine }

func (f *finalState) Reg(thread int, r isa.Reg) uint64 { return f.m.Core(thread).RegValue(r) }
func (f *finalState) Mem(addr uint64) uint64           { return f.m.ReadMemory(addr) }
