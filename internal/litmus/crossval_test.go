package litmus

import (
	"testing"
	"testing/quick"

	"sesa/internal/checker"
	"sesa/internal/config"
	"sesa/internal/isa"
)

// randomProgram builds a small 2-thread litmus-style program over two
// shared variables from a seed.
func randomProgram(seed uint64) checker.Program {
	rng := seed
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 11
	}
	vars := []uint64{X, Y}
	p := checker.Program{
		Init: map[uint64]uint64{X: 0, Y: 0},
	}
	reg := isa.Reg(1)
	for th := 0; th < 2; th++ {
		var prog isa.Program
		n := 2 + int(next()%3)
		for i := 0; i < n; i++ {
			addr := vars[next()%2]
			switch next() % 4 {
			case 0, 1:
				prog = append(prog, isa.Load(reg, addr))
				p.Regs = append(p.Regs, checker.RegObs{
					Thread: th, Reg: reg, Name: regName(th, int(reg)),
				})
				reg++
			case 2:
				prog = append(prog, isa.StoreImm(addr, 1+next()%3))
			case 3:
				prog = append(prog, isa.Fence())
			}
		}
		p.Threads = append(p.Threads, prog)
	}
	p.Mem = []checker.MemObs{{Addr: X, Name: "x"}, {Addr: Y, Name: "y"}}
	return p
}

func regName(th, r int) string {
	return string(rune('a'+th)) + string(rune('0'+r%10))
}

// TestTaxonomyProperty: on random programs, the outcome sets respect the
// Table I hierarchy: SC ⊆ store-atomic 370 ⊆ x86.
func TestTaxonomyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProgram(seed)
		sc := checker.Enumerate(p, checker.SC)
		atom := checker.Enumerate(p, checker.TSO370)
		x86 := checker.Enumerate(p, checker.X86TSO)
		for o := range sc {
			if !atom.Contains(o) {
				return false
			}
		}
		for o := range atom {
			if !x86.Contains(o) {
				return false
			}
		}
		return len(x86) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSimWithinCheckerProperty is the strongest cross-validation in the
// repository: for random programs, every outcome the cycle-accurate machine
// produces must be allowed by the exhaustive operational model of its
// consistency class. A single violation would mean the microarchitecture
// breaks its memory model.
func TestSimWithinCheckerProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	models := []config.Model{config.X86, config.NoSpec370, config.SLFSoSKey370}
	for seed := uint64(1); seed <= 12; seed++ {
		p := randomProgram(seed * 977)
		test := Test{Name: "rand", Prog: p}
		for _, model := range models {
			allowed := checker.Enumerate(p, CheckerModelFor(model))
			res, err := Run(WithSBPressure(test, 2), model, 6, seed)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, model, err)
			}
			for o, cnt := range res.Outcomes {
				if !allowed.Contains(o) {
					t.Errorf("seed %d on %s: outcome %q (x%d) outside the allowed set %v\nprogram: %v",
						seed, model, o, cnt, allowed.Sorted(), p.Threads)
				}
			}
		}
	}
}
