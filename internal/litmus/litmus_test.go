package litmus

import (
	"testing"

	"sesa/internal/checker"
	"sesa/internal/config"
)

// TestAllowedSetsMatchPaper pins each test's headline claim through the
// exhaustive checker.
func TestAllowedSetsMatchPaper(t *testing.T) {
	cases := []struct {
		test  Test
		inX86 bool // Interesting outcome allowed under x86-TSO
		in370 bool // ... under store-atomic TSO
	}{
		{MP(), false, false},
		{N6(), true, false},
		{N6Fence(), false, false},
		{IRIW(), false, false},
		{Fig5(), true, false},
		{Fig4(), true, true},
		{SB(), true, true},
		{SBFence(), false, false},
		{LB(), false, false},
		{WRC(), false, false},
		{CoRR(), false, false},
		{S(), false, false},
		{TwoPlusTwoW(), false, false},
		{R(), true, true},
		{RFence(), false, false},
	}
	for _, c := range cases {
		t.Run(c.test.Name, func(t *testing.T) {
			if got := c.test.Allowed(checker.X86TSO).Contains(c.test.Interesting); got != c.inX86 {
				t.Errorf("x86-TSO allows %q = %v, want %v", c.test.Interesting, got, c.inX86)
			}
			if got := c.test.Allowed(checker.TSO370).Contains(c.test.Interesting); got != c.in370 {
				t.Errorf("370-TSO allows %q = %v, want %v", c.test.Interesting, got, c.in370)
			}
		})
	}
}

// TestSimOutcomesWithinAllowedSets is the central cross-validation: every
// outcome the cycle-accurate machine produces must lie in the exhaustive
// allowed set of the corresponding operational model. x86 machines are
// bounded by x86-TSO; all four 370 machines by store-atomic TSO.
func TestSimOutcomesWithinAllowedSets(t *testing.T) {
	if testing.Short() {
		t.Skip("witness search is slow")
	}
	for _, base := range Tests() {
		for _, variant := range []Test{base, WithSBPressure(base, 3)} {
			allowedBase := base // allowed sets computed on the unpressured program
			for _, model := range config.AllModels() {
				res, err := Run(variant, model, 12, 0xC0FFEE)
				if err != nil {
					t.Fatalf("%s on %s: %v", variant.Name, model, err)
				}
				allowed := allowedBase.Allowed(CheckerModelFor(model))
				for o, n := range res.Outcomes {
					if !allowed.Contains(o) {
						t.Errorf("%s on %s: outcome %q (seen %d times) outside the allowed set %v",
							variant.Name, model, o, n, allowed.Sorted())
					}
				}
			}
		}
	}
}

// TestX86WitnessesN6 checks that the simulator's x86 machine actually
// exhibits the Figure 2 store-atomicity violation once the store buffer has
// backlog — the behaviour the authors measured on real Intel parts.
func TestX86WitnessesN6(t *testing.T) {
	test := WithSBPressure(N6(), 3)
	res, err := Run(test, config.X86, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Observed(N6().Interesting) {
		t.Errorf("x86 machine never witnessed %q; outcomes: %v",
			N6().Interesting, res.Outcomes)
	}
}

// TestX86WitnessesFig5Disagreement checks that two x86 cores can disagree
// about the order of their independent stores (Figure 5).
func TestX86WitnessesFig5Disagreement(t *testing.T) {
	test := WithSBPressure(Fig5(), 3)
	res, err := Run(test, config.X86, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Observed(Fig5().Interesting) {
		t.Errorf("x86 machine never witnessed %q; outcomes: %v",
			Fig5().Interesting, res.Outcomes)
	}
}

// TestStoreAtomicMachinesNeverViolate runs the two violation tests hard on
// all four 370 machines and checks the signatures never appear.
func TestStoreAtomicMachinesNeverViolate(t *testing.T) {
	models := []config.Model{
		config.NoSpec370, config.SLFSpec370, config.SLFSoS370, config.SLFSoSKey370,
	}
	for _, base := range []Test{N6(), Fig5()} {
		test := WithSBPressure(base, 3)
		for _, model := range models {
			res, err := Run(test, model, 10, 13)
			if err != nil {
				t.Fatal(err)
			}
			if res.Observed(base.Interesting) {
				t.Errorf("%s on %s: store-atomicity violation %q witnessed",
					base.Name, model, base.Interesting)
			}
		}
	}
}

// TestGetAndNames: registry sanity.
func TestGetAndNames(t *testing.T) {
	for _, tt := range Tests() {
		got, err := Get(tt.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != tt.Name {
			t.Errorf("Get(%q).Name = %q", tt.Name, got.Name)
		}
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Error("Get of unknown test should fail")
	}
}
