package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"debug":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"ERROR":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", KeySweep, "sw-000001")
	if out := buf.String(); !strings.Contains(out, "sweep=sw-000001") {
		t.Errorf("text handler output %q missing sweep attribute", out)
	}
	log.Debug("below threshold")
	if strings.Contains(buf.String(), "below threshold") {
		t.Error("info-level logger emitted a debug record")
	}

	buf.Reset()
	log, err = NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hello", KeyWorker, "rack3-a")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler emitted invalid JSON: %v (%q)", err, buf.String())
	}
	if rec[KeyWorker] != "rack3-a" {
		t.Errorf("json record = %v, missing worker attribute", rec)
	}

	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("NewLogger accepted an unknown level")
	}
}

func TestNilBundle(t *testing.T) {
	var tel *T
	if tel.Logger() == nil {
		t.Fatal("nil T returned a nil logger")
	}
	tel.Logger().Info("dropped")       // must not panic
	tel.Component("x").Warn("dropped") // must not panic
	if tel.Registry() != nil {
		t.Error("nil T returned a non-nil registry")
	}
	if tel.Logger().Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}

// TestDisabledTelemetryZeroCost is the telemetry sibling of the obs/hist
// disabled-overhead guards: every nil-object hook must be allocation-free,
// so an uninstrumented binary pays a nil comparison at most.
func TestDisabledTelemetryZeroCost(t *testing.T) {
	var reg *Registry
	var tl *Timeline
	c := reg.Counter("sesa_x_total", "help")
	g := reg.Gauge("sesa_y", "help")
	span := Span{Name: StageJob, Start: time.Unix(0, 0), Dur: time.Millisecond}
	checks := map[string]func(){
		"nil Counter.Add":      func() { c.Inc() },
		"nil Counter.Add(d)":   func() { c.Add(17) },
		"nil Gauge.Set":        func() { g.Set(3) },
		"nil Gauge.Add":        func() { g.Add(-1) },
		"nil Timeline.Add":     func() { tl.Add(span) },
		"nil Timeline.Spans":   func() { _ = tl.Spans() },
		"nil Timeline.Dropped": func() { _ = tl.Dropped() },
		"nil Registry.Counter": func() { reg.Counter("sesa_z_total", "help").Inc() },
		"nil Registry.Render":  func() { _ = reg.Render() },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", name, allocs)
		}
	}
}

func TestRegistryRenderGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sesa_fleet_leases_granted_total", "Lease batches granted to workers.",
		"worker", "rack3-a").Add(3)
	r.Counter("sesa_fleet_leases_granted_total", "Lease batches granted to workers.",
		"worker", "rack3-b").Inc()
	r.Counter("sesa_fleet_registrations_total", "Worker registrations accepted.").Add(2)
	r.Gauge("sesa_serve_queue_depth", "Sweeps waiting in the admission queue.").Set(1.5)
	r.GaugeFunc("sesa_fleet_workers", "Currently registered fleet workers.",
		func() []Sample { return []Sample{{Value: 2}} })
	r.CounterFunc("sesa_cache_hits_total", "Result-cache hits.",
		func() []Sample { return []Sample{{Value: 7}} })

	want := strings.Join([]string{
		"# HELP sesa_cache_hits_total Result-cache hits.",
		"# TYPE sesa_cache_hits_total counter",
		"sesa_cache_hits_total 7",
		"# HELP sesa_fleet_leases_granted_total Lease batches granted to workers.",
		"# TYPE sesa_fleet_leases_granted_total counter",
		`sesa_fleet_leases_granted_total{worker="rack3-a"} 3`,
		`sesa_fleet_leases_granted_total{worker="rack3-b"} 1`,
		"# HELP sesa_fleet_registrations_total Worker registrations accepted.",
		"# TYPE sesa_fleet_registrations_total counter",
		"sesa_fleet_registrations_total 2",
		"# HELP sesa_fleet_workers Currently registered fleet workers.",
		"# TYPE sesa_fleet_workers gauge",
		"sesa_fleet_workers 2",
		"# HELP sesa_serve_queue_depth Sweeps waiting in the admission queue.",
		"# TYPE sesa_serve_queue_depth gauge",
		"sesa_serve_queue_depth 1.5",
		"",
	}, "\n")
	if got := r.Render(); got != want {
		t.Errorf("Render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("sesa_x_total", "h", "worker", "a\\b\"c\nd").Inc()
	want := `sesa_x_total{worker="a\\b\"c\nd"} 1`
	if got := r.Render(); !strings.Contains(got, want) {
		t.Errorf("Render = %q, want it to contain %q", got, want)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sesa_x_total", "h")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := r.Render(); !strings.Contains(got, "sesa_x_total 8000") {
		t.Errorf("concurrent adds lost updates: %q", got)
	}
}

func TestTimelineBound(t *testing.T) {
	tl := &Timeline{sweep: "sw-000001", max: 2}
	for i := 0; i < 5; i++ {
		tl.Add(Span{Name: StageJob, Start: time.Unix(int64(i), 0), Dur: time.Second})
	}
	if got := len(tl.Spans()); got != 2 {
		t.Errorf("bounded timeline holds %d spans, want 2", got)
	}
	if got := tl.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 spans dropped") {
		t.Error("Chrome export does not report the dropped count")
	}
}

func TestWriteChromeGolden(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tl := NewTimeline("sw-000001")
	tl.Add(Span{Name: StageAdmission, Cat: "coordinator", Index: -1,
		Start: base, Dur: 2 * time.Millisecond})
	tl.Add(Span{Name: StageLease, Cat: "coordinator", Batch: "b-000001", Worker: "wA",
		Attempt: 1, Index: -1, Start: base.Add(5 * time.Millisecond), Dur: 40 * time.Millisecond})
	tl.Add(Span{Name: StageExecute, Cat: "worker", Batch: "b-000001", Worker: "wA",
		Index: -1, Start: base.Add(6 * time.Millisecond), Dur: 30 * time.Millisecond})
	tl.Add(Span{Name: StageJob, Cat: "worker", Batch: "b-000001", Worker: "wA",
		Job: "radix/x86/seed42", Index: 0,
		Start: base.Add(7 * time.Millisecond), Dur: 20 * time.Millisecond})
	tl.Add(Span{Name: StageReport, Cat: "coordinator", Batch: "b-000001", Worker: "wA",
		Index: -1, Start: base.Add(45 * time.Millisecond), Dur: 100 * time.Microsecond})

	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v\n%s", err, out)
	}
	// 5 spans + process/thread metadata for coordinator (proc, lifecycle,
	// reports, batch) and worker wA (proc, batches, 1 job slot).
	if len(doc.TraceEvents) != 12 {
		t.Errorf("trace has %d events, want 12:\n%s", len(doc.TraceEvents), out)
	}
	for _, want := range []string{
		`"name":"process_name","args":{"name":"coordinator (sw-000001)"}`,
		`"name":"process_name","args":{"name":"worker wA"}`,
		`"name":"thread_name","args":{"name":"batch b-000001"}`,
		`"name":"thread_name","args":{"name":"job slot 0"}`,
		// Timestamps are µs relative to the earliest span (admission).
		`{"name":"admission","cat":"coordinator","ph":"X","ts":0,"dur":2000,"pid":0,"tid":0,"args":{"sweep":"sw-000001"}}`,
		`{"name":"lease","cat":"coordinator","ph":"X","ts":5000,"dur":40000,"pid":0,"tid":2,"args":{"sweep":"sw-000001","batch":"b-000001","worker":"wA","attempt":1}}`,
		`{"name":"worker-execute","cat":"worker","ph":"X","ts":6000,"dur":30000,"pid":1,"tid":0,"args":{"sweep":"sw-000001","batch":"b-000001","worker":"wA"}}`,
		`{"name":"radix/x86/seed42","cat":"worker","ph":"X","ts":7000,"dur":20000,"pid":1,"tid":1,"args":{"sweep":"sw-000001","batch":"b-000001","worker":"wA","index":0}}`,
		`{"name":"report","cat":"coordinator","ph":"X","ts":45000,"dur":100,"pid":0,"tid":1,"args":{"sweep":"sw-000001","batch":"b-000001","worker":"wA"}}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Chrome export missing %s\n--- got ---\n%s", want, out)
		}
	}
}

func TestWriteChromeSubMicrosecondDur(t *testing.T) {
	tl := NewTimeline("sw-000001")
	tl.Add(Span{Name: StageShard, Cat: "coordinator", Index: -1,
		Start: time.Unix(10, 0), Dur: 200 * time.Nanosecond})
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":1`) {
		t.Errorf("sub-µs span not rounded up to 1µs: %s", buf.String())
	}
}

func TestWriteChromeEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTimeline("sw-000001").WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty timeline export is not valid JSON: %v", err)
	}
	var nilTL *Timeline
	if err := nilTL.WriteChrome(&buf); err == nil {
		t.Error("nil timeline WriteChrome succeeded, want error")
	}
}
