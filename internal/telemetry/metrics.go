package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a dependency-free Prometheus-text metrics registry. It
// renders the exposition format version 0.0.4 (the text format every
// Prometheus scraper speaks) with families sorted by name and series sorted
// by label set, so output is deterministic for a given state.
//
// Two kinds of series coexist:
//
//   - event-time counters and gauges, incremented where the event happens
//     (Counter.Add is one atomic add);
//   - scrape-time families registered with GaugeFunc, sampled only when
//     /metrics is actually read — the right shape for anything derived from
//     live state (queue depth, heartbeat age, sweep throughput), because an
//     unscraped registry then costs nothing.
//
// Every method is safe on a nil *Registry (and Counter/Gauge handles from
// one are nil and equally inert), so components take a registry
// unconditionally and instrument without branching.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Sample is one scrape-time series sample produced by a GaugeFunc callback.
type Sample struct {
	// Labels are label name/value pairs, e.g. {"worker", "rack3-a"}.
	Labels [][2]string
	Value  float64
}

type family struct {
	name, help, typ string
	series          map[string]*value // keyed by rendered label block
	fn              func() []Sample   // scrape-time families
}

type value struct {
	bits atomic.Uint64 // float64 bits
}

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing series handle; nil is a no-op.
type Counter struct{ v *value }

// Add increments the counter by d (callers pass non-negative deltas).
func (c *Counter) Add(d float64) {
	if c == nil || c.v == nil {
		return
	}
	c.v.add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a settable series handle; nil is a no-op.
type Gauge struct{ v *value }

// Set replaces the gauge's value.
func (g *Gauge) Set(f float64) {
	if g == nil || g.v == nil {
		return
	}
	g.v.set(f)
}

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil || g.v == nil {
		return
	}
	g.v.add(d)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it with the given type on first
// use. Help and type are fixed by the first registration.
func (r *Registry) family(name, help, typ string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*value)}
		r.families[name] = f
	}
	return f
}

// labelBlock renders a label set in sorted order: {a="x",b="y"} or "".
func labelBlock(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([][2]string(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i][0] < ls[j][0] })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l[0])
		b.WriteString("=\"")
		b.WriteString(escapeLabel(l[1]))
		b.WriteString("\"")
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\"", `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Counter returns (creating on first use) the counter series name{labels...}.
// labels are name/value pairs: Counter("x_total", "...", "worker", "a").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{v: r.seriesValue(name, help, "counter", labels)}
}

// Gauge returns (creating on first use) the gauge series name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{v: r.seriesValue(name, help, "gauge", labels)}
}

func (r *Registry) seriesValue(name, help, typ string, kv []string) *value {
	labels := make([][2]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, [2]string{kv[i], kv[i+1]})
	}
	block := labelBlock(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	v := f.series[block]
	if v == nil {
		v = &value{}
		f.series[block] = v
	}
	return v
}

// GaugeFunc registers a scrape-time family: fn is called once per render
// and its samples become the family's series. Registering the same name
// again replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() []Sample) {
	r.funcFamily(name, help, "gauge", fn)
}

// CounterFunc is GaugeFunc for monotonic series whose source of truth lives
// in component state (e.g. cache hit counters): sampled at scrape time,
// exposed with type counter.
func (r *Registry) CounterFunc(name, help string, fn func() []Sample) {
	r.funcFamily(name, help, "counter", fn)
}

func (r *Registry) funcFamily(name, help, typ string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	f.fn = fn
}

// formatValue renders a sample value the way Prometheus clients do:
// integers without exponent, everything else shortest round-trip.
func formatValue(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Render returns the full exposition document.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct{ block, val string }
	type fam struct {
		name, help, typ string
		rows            []row
		fn              func() []Sample
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ff := fam{name: f.name, help: f.help, typ: f.typ, fn: f.fn}
		blocks := make([]string, 0, len(f.series))
		for b := range f.series {
			blocks = append(blocks, b)
		}
		sort.Strings(blocks)
		for _, b := range blocks {
			ff.rows = append(ff.rows, row{block: b, val: formatValue(f.series[b].get())})
		}
		fams = append(fams, ff)
	}
	r.mu.Unlock()

	// Scrape-time callbacks run outside the registry lock: they read live
	// component state (coordinator tables, progress snapshots) that has its
	// own locks.
	var b strings.Builder
	for _, f := range fams {
		rows := f.rows
		if f.fn != nil {
			samples := f.fn()
			rows = rows[:0]
			for _, s := range samples {
				rows = append(rows, row{block: labelBlock(s.Labels), val: formatValue(s.Value)})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].block < rows[j].block })
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, rw := range rows {
			b.WriteString(f.name)
			b.WriteString(rw.block)
			b.WriteByte(' ')
			b.WriteString(rw.val)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Handler serves the registry at GET /metrics in the text exposition
// format. A nil registry serves an empty (but valid) document.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}
