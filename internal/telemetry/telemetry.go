// Package telemetry is the service-layer observability stack: structured
// logging on log/slog, a dependency-free Prometheus-text metrics registry,
// and distributed sweep timelines exported as Chrome-trace JSON.
//
// It is the service-side sibling of internal/obs and internal/hist, and
// follows the same discipline: every hook is nil-checked and off by
// default, so a binary that never asks for telemetry pays a nil comparison
// at most — simulation output stays byte-identical and the CI overhead
// guard stays green. Unlike obs/hist, nothing here ever touches the
// simulation hot path at all: telemetry instruments the layer *around* the
// simulator (admission, queues, leases, HTTP), where events are per-job or
// per-batch, not per-cycle.
//
// Attribute conventions (shared by every component so fleet-wide logs
// aggregate cleanly):
//
//	component  which subsystem emitted the record ("serve",
//	           "fleet.coordinator", "fleet.worker", "runner", or a cmd name)
//	sweep      the sweep id ("sw-000001")
//	worker     the fleet worker name (its -name label, not the minted id)
//	batch      the lease batch id ("b-000001")
//	attempt    the retry ordinal of the operation being logged
package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Shared attribute keys; see the package comment for the convention.
const (
	KeyComponent = "component"
	KeySweep     = "sweep"
	KeyWorker    = "worker"
	KeyBatch     = "batch"
	KeyAttempt   = "attempt"
)

// T bundles the two telemetry sinks a component receives: a structured
// logger and a metrics registry. A nil *T (or nil fields) is fully
// functional and free: Logger returns a discarding logger and Registry
// returns a nil registry whose every method is a no-op.
type T struct {
	Log     *slog.Logger
	Metrics *Registry
}

// Logger returns the bundle's logger, or a discarding one.
func (t *T) Logger() *slog.Logger {
	if t == nil || t.Log == nil {
		return Discard()
	}
	return t.Log
}

// Registry returns the bundle's metrics registry; nil (a no-op registry)
// when absent.
func (t *T) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// Component returns the bundle's logger scoped with the conventional
// component attribute.
func (t *T) Component(name string) *slog.Logger {
	return t.Logger().With(slog.String(KeyComponent, name))
}

// NewLogger builds a slog.Logger writing to w. level is one of debug, info,
// warn, error; format is text or json (the -log-level and -log-format flag
// values every sesa binary accepts via config.Telemetry).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// discardHandler drops every record (slog.DiscardHandler exists only from
// Go 1.24; the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discard = slog.New(discardHandler{})

// Discard returns a logger that drops everything — the nil-object default
// so call sites never branch on logger presence.
func Discard() *slog.Logger { return discard }
