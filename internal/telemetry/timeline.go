package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span stage names, covering a job's full path through the distributed
// sweep fabric. Coordinator-side stages carry Cat "coordinator"; stages
// measured on a worker's clock and shipped back carry Cat "worker".
const (
	StageAdmission = "admission"      // submit handling: parse, cache probe, enqueue
	StageQueue     = "queue"          // admitted → dispatcher picks the sweep up
	StageShard     = "shard"          // job list decomposed into lease batches
	StageLease     = "lease"          // batch granted → completion report recorded
	StageExpired   = "lease-expired"  // batch granted → lease forfeited by TTL
	StageExecute   = "worker-execute" // worker-side batch execution window
	StageJob       = "job"            // one job's execution window on a worker
	StageReport    = "report"         // coordinator processing a completion report
	StageAggregate = "aggregate"      // all results in → summary built and stored
)

// Span is one timed stage of a sweep's life, attributed with the shared
// telemetry keys. Spans are operational data — wall-clock, host-dependent —
// and are never part of the deterministic result surface.
type Span struct {
	Name    string        // a Stage* constant
	Cat     string        // "coordinator" or "worker": whose clock measured it
	Sweep   string        // sweep id
	Batch   string        // lease batch id, when stage is batch-scoped
	Worker  string        // fleet worker name, when a worker was involved
	Job     string        // job name, for StageJob spans
	Index   int           // sweep job index, for StageJob spans (-1 otherwise)
	Attempt int           // lease attempt ordinal, for lease-scoped spans
	Start   time.Time     // coordinator-clock start (worker spans are anchored at lease grant)
	Dur     time.Duration // measured duration
}

// DefaultMaxSpans bounds a timeline's memory: a span is ~100 bytes, so the
// default caps a sweep's timeline around 13 MB. Per-job spans dominate, so
// the bound is effectively a job-count ceiling far above any real sweep.
const DefaultMaxSpans = 1 << 17

// Timeline collects the spans of one sweep. All methods are safe for
// concurrent use and no-ops on a nil receiver, so span recording sites
// never branch on whether a timeline was requested.
type Timeline struct {
	mu      sync.Mutex
	sweep   string
	max     int
	spans   []Span
	dropped int
}

// NewTimeline builds a timeline for the sweep, bounded at DefaultMaxSpans.
func NewTimeline(sweep string) *Timeline {
	return &Timeline{sweep: sweep, max: DefaultMaxSpans}
}

// Add records one span; the sweep attribute is filled in. Past the span
// bound the record is counted as dropped instead of growing without limit
// (WriteChrome reports the dropped count so a truncated timeline is never
// mistaken for a complete one).
func (t *Timeline) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	s.Sweep = t.sweep
	t.spans = append(t.spans, s)
}

// Spans snapshots the recorded spans (copied; in recording order).
func (t *Timeline) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans the bound discarded.
func (t *Timeline) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteChrome renders the timeline as a Chrome trace-event JSON document,
// loadable in Perfetto (ui.perfetto.dev) — the same event model
// obs.WriteChrome uses for pipeline traces, applied to the service layer.
//
// Layout: pid 0 is the coordinator — tid 0 carries the sweep lifecycle
// (admission, queue, shard, aggregate), tid 1 the completion-report
// processing, and each lease batch gets its own track so concurrent leases
// render side by side. Each fleet worker is one process (named after the
// worker), with one track per batch-local job slot so a batch's parallel
// jobs stack visibly. Worker spans were measured on the worker's clock and
// are anchored at the coordinator's lease-grant time, so cross-host clock
// skew shifts a worker's block as a whole without distorting spans within
// it. One microsecond of trace time is one microsecond of wall clock,
// zeroed at the earliest recorded span.
func (t *Timeline) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: no timeline recorded")
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	sweep, dropped := t.sweep, t.dropped
	t.mu.Unlock()

	var zero time.Time
	for i := range spans {
		if zero.IsZero() || spans[i].Start.Before(zero) {
			zero = spans[i].Start
		}
	}
	ts := func(at time.Time) int64 { return at.Sub(zero).Microseconds() }

	// Stable track assignment: batches sorted by id on the coordinator;
	// workers sorted by name, one job track per batch-local slot.
	const (
		tidLifecycle = 0
		tidReports   = 1
		tidBatchBase = 2
	)
	batchTid := map[string]int{}
	var batchIDs []string
	workerPid := map[string]int{}
	var workerNames []string
	jobSlots := map[string]int{} // worker -> max concurrent-slot count seen
	seenBatch := map[string]bool{}
	for i := range spans {
		s := &spans[i]
		if s.Cat == "coordinator" && s.Batch != "" && !seenBatch[s.Batch] {
			seenBatch[s.Batch] = true
			batchIDs = append(batchIDs, s.Batch)
		}
		if s.Cat == "worker" && s.Worker != "" && workerPid[s.Worker] == 0 {
			workerPid[s.Worker] = -1 // mark; numbered after the sort
			workerNames = append(workerNames, s.Worker)
		}
	}
	sort.Strings(batchIDs)
	for i, id := range batchIDs {
		batchTid[id] = tidBatchBase + i
	}
	sort.Strings(workerNames)
	for i, name := range workerNames {
		workerPid[name] = 1 + i
	}
	// Job slots: within one batch, the k-th job span gets track k+1 (track 0
	// is the batch-execute row). Batches on one worker are sequential, so
	// reusing slots across batches never overlaps.
	slot := map[string]int{} // worker+batch -> next slot
	jobTid := make([]int, len(spans))
	for i := range spans {
		s := &spans[i]
		if s.Name != StageJob {
			continue
		}
		key := s.Worker + "\x00" + s.Batch
		slot[key]++
		jobTid[i] = slot[key]
		if slot[key] > jobSlots[s.Worker] {
			jobSlots[s.Worker] = slot[key]
		}
	}

	bw := bufio.NewWriter(w)
	cw := &timelineWriter{w: bw}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	cw.meta(0, -1, "process_name", "coordinator ("+sweep+")")
	cw.meta(0, tidLifecycle, "thread_name", "sweep lifecycle")
	cw.meta(0, tidReports, "thread_name", "reports")
	for _, id := range batchIDs {
		cw.meta(0, batchTid[id], "thread_name", "batch "+id)
	}
	for _, name := range workerNames {
		pid := workerPid[name]
		cw.meta(pid, -1, "process_name", "worker "+name)
		cw.meta(pid, 0, "thread_name", "batches")
		for k := 1; k <= jobSlots[name]; k++ {
			cw.meta(pid, k, "thread_name", fmt.Sprintf("job slot %d", k-1))
		}
	}
	for i := range spans {
		s := &spans[i]
		pid, tid := 0, tidLifecycle
		switch {
		case s.Cat == "worker":
			pid = workerPid[s.Worker]
			if s.Name == StageJob {
				tid = jobTid[i]
			} else {
				tid = 0
			}
		case s.Name == StageReport:
			tid = tidReports
		case s.Batch != "":
			tid = batchTid[s.Batch]
		}
		cw.span(pid, tid, s, ts(s.Start))
	}
	if dropped > 0 {
		cw.sep()
		fmt.Fprintf(bw, "{\"name\":\"%d spans dropped (timeline bound)\",\"cat\":\"coordinator\",\"ph\":\"i\",\"s\":\"g\",\"ts\":0,\"pid\":0,\"tid\":0}", dropped)
	}
	fmt.Fprintf(bw, "\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// timelineWriter hand-builds the trace-event array, exactly like the
// obs package's chromeWriter: no maps anywhere, so field order is fixed.
type timelineWriter struct {
	w       *bufio.Writer
	started bool
	err     error
}

func (cw *timelineWriter) sep() {
	if cw.started {
		fmt.Fprintf(cw.w, ",\n")
	}
	cw.started = true
}

func (cw *timelineWriter) meta(pid, tid int, kind, name string) {
	cw.sep()
	if tid < 0 {
		fmt.Fprintf(cw.w, "{\"ph\":\"M\",\"pid\":%d,\"name\":%q,\"args\":{\"name\":%q}}", pid, kind, name)
		return
	}
	fmt.Fprintf(cw.w, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%q}}", pid, tid, kind, name)
}

func (cw *timelineWriter) span(pid, tid int, s *Span, ts int64) {
	cw.sep()
	name := s.Name
	if s.Name == StageJob && s.Job != "" {
		name = s.Job
	}
	dur := s.Dur.Microseconds()
	if dur < 1 {
		dur = 1 // Perfetto hides zero-width slices; round sub-µs stages up
	}
	fmt.Fprintf(cw.w, "{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{",
		name, s.Cat, ts, dur, pid, tid)
	fmt.Fprintf(cw.w, "\"sweep\":%q", s.Sweep)
	if s.Batch != "" {
		fmt.Fprintf(cw.w, ",\"batch\":%q", s.Batch)
	}
	if s.Worker != "" {
		fmt.Fprintf(cw.w, ",\"worker\":%q", s.Worker)
	}
	if s.Name == StageJob {
		fmt.Fprintf(cw.w, ",\"index\":%d", s.Index)
	}
	if s.Attempt > 0 {
		fmt.Fprintf(cw.w, ",\"attempt\":%d", s.Attempt)
	}
	fmt.Fprintf(cw.w, "}}")
}
