package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sesa/internal/config"
	"sesa/internal/report"
	"sesa/internal/runner"
	"sesa/internal/trace"
)

// JobSpec is the wire form of one benchmark job, mirroring the sesa-bench
// flags: a Table IV profile run on one machine model.
type JobSpec struct {
	// Profile names a Table IV benchmark (e.g. "radix", "505.mcf").
	Profile string `json:"profile"`
	// Model is the consistency model name as printed ("x86", "370-SLFSoS-key", ...).
	Model string `json:"model"`
	// InstPerCore scales the generated trace.
	InstPerCore int `json:"inst_per_core"`
	// Seed seeds the trace generator.
	Seed uint64 `json:"seed"`
	// StepMode is "skip" (default when empty) or "naive".
	StepMode string `json:"step_mode,omitempty"`
	// MaxCycles optionally overrides the default liveness bound.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body.
type SweepRequest struct {
	// Title names the sweep's Table IV document; defaults to "sweep <id>".
	Title string `json:"title,omitempty"`
	// Jobs lists the experiments, run in order (results are positional).
	Jobs []JobSpec `json:"jobs"`
	// Histograms attaches latency-histogram collection to every job.
	Histograms bool `json:"histograms,omitempty"`
}

// resolve translates a wire job into a runner job.
func (sp JobSpec) resolve(hists bool) (runner.Job, error) {
	p, ok := trace.Lookup(sp.Profile)
	if !ok {
		return runner.Job{}, fmt.Errorf("serve: unknown profile %q", sp.Profile)
	}
	model, err := config.ParseModel(sp.Model)
	if err != nil {
		return runner.Job{}, fmt.Errorf("serve: job %q: %w", sp.Profile, err)
	}
	step := config.StepSkip
	if sp.StepMode != "" {
		if step, err = config.ParseStepMode(sp.StepMode); err != nil {
			return runner.Job{}, fmt.Errorf("serve: job %q: %w", sp.Profile, err)
		}
	}
	if sp.InstPerCore <= 0 {
		return runner.Job{}, fmt.Errorf("serve: job %q: inst_per_core must be positive, got %d",
			sp.Profile, sp.InstPerCore)
	}
	return runner.Job{
		Profile:     p,
		Model:       model,
		InstPerCore: sp.InstPerCore,
		Seed:        sp.Seed,
		StepMode:    step,
		MaxCycles:   sp.MaxCycles,
		Hists:       hists,
	}, nil
}

// SweepStatus is the GET /v1/sweeps/{id} (and submission) response.
type SweepStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Title string `json:"title,omitempty"`
	Jobs  int    `json:"jobs"`
	// QueuePosition is 1-based while queued (1 = next to run).
	QueuePosition int `json:"queue_position,omitempty"`
	// CacheHits counts jobs served from the content-addressed result cache
	// (filled when the sweep finishes).
	CacheHits int `json:"cache_hits"`
	// Progress is the live per-job view of the simulated (non-cached) jobs
	// while the sweep runs, and the final counts afterwards.
	Progress *runner.Snapshot `json:"progress,omitempty"`
}

// SweepResults is the GET /v1/sweeps/{id}/results response: the Table IV
// document for the sweep's jobs plus the sweep summary. The table rows are
// byte-identical to what sesa-bench emits for the same jobs — cached or
// simulated, jobs are deterministic.
type SweepResults struct {
	ID        string                       `json:"id"`
	State     string                       `json:"state"`
	CacheHits int                          `json:"cache_hits"`
	Table     report.CharacterizationTable `json:"table4"`
	Summary   report.SweepSummary          `json:"summary"`
	Failures  []SweepFailure               `json:"failures,omitempty"`
}

// SweepFailure reports one failed job in a results document.
type SweepFailure struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Error    string `json:"error"`
	TimedOut bool   `json:"timed_out"`
	Canceled bool   `json:"canceled"`
}

// CacheStats is the GET /v1/cache response.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// errDraining rejects submissions during graceful drain.
var errDraining = errors.New("serve: draining, not admitting new sweeps")

// admissionError is returned when the queue is full; retryAfter feeds the
// Retry-After header of the 429.
type admissionError struct{ retryAfter int }

func (e *admissionError) Error() string {
	return fmt.Sprintf("serve: admission queue full, retry in ~%ds", e.retryAfter)
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/sweeps               submit a sweep (202; 200 when fully cached;
//	                                429 + Retry-After when the queue is full;
//	                                503 while draining)
//	GET    /v1/sweeps/{id}          status + live per-job progress
//	GET    /v1/sweeps/{id}/results  Table IV rows + sweep summary
//	                                (?view=table serves the bare table document)
//	GET    /v1/sweeps/{id}/timeline the sweep's span timeline as Chrome-trace
//	                                JSON (open in ui.perfetto.dev)
//	DELETE /v1/sweeps/{id}          cancel (mid-run cancellation frees workers)
//	GET    /v1/cache                content-addressed result cache counters
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz                 liveness probe
//
// plus the live-introspection endpoints every sesa sweep has: /status,
// /histograms, /debug/vars and /debug/pprof, reporting the running sweep.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/sweeps/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	sh := runner.StatusHandler(s.currentProgress)
	mux.Handle("/status", sh)
	mux.Handle("/histograms", sh)
	mux.Handle("/debug/", sh)
	if s.fleet != nil {
		// Coordinator mode: the worker protocol (register/lease/heartbeat/
		// complete/deregister) plus GET /v1/fleet/workers status rows.
		mux.Handle("/v1/fleet/", http.StripPrefix("/v1/fleet", s.fleet.Handler()))
	}
	return mux
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes an {"error": ...} document.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad sweep request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: sweep has no jobs"))
		return
	}
	jobs := make([]runner.Job, len(req.Jobs))
	for i, sp := range req.Jobs {
		j, err := sp.resolve(req.Histograms)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		jobs[i] = j
	}

	sw, err := s.submit(req.Title, jobs)
	if err != nil {
		var ae *admissionError
		switch {
		case errors.Is(err, errDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &ae):
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	status := s.statusDoc(sw)
	if status.State == string(stateDone) {
		// Fully served from cache: terminal at submission.
		writeJSON(w, http.StatusOK, status)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.id)
	writeJSON(w, http.StatusAccepted, status)
}

// statusDoc builds the status view of a sweep.
func (s *Server) statusDoc(sw *sweep) SweepStatus {
	s.mu.Lock()
	st := SweepStatus{
		ID:    sw.id,
		State: string(sw.state),
		Title: sw.title,
		Jobs:  len(sw.jobs),
	}
	if sw.state == stateQueued {
		for i, q := range s.queue {
			if q == sw {
				st.QueuePosition = i + 1
				break
			}
		}
	}
	if sw.state.terminal() {
		st.CacheHits = sw.cacheHits
	}
	progress := sw.progress
	s.mu.Unlock()
	if progress != nil {
		snap := progress.Snapshot()
		st.Progress = &snap
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.statusDoc(sw))
}

// resultsDoc builds the results view of a terminal sweep. The table collects
// the Characterization rows of successful jobs in job order — exactly the
// rows sesa-bench's Table IV path would emit for the same jobs.
func resultsDoc(sw *sweep) SweepResults {
	title := sw.title
	if title == "" {
		title = "sweep " + sw.id
	}
	doc := SweepResults{
		ID:        sw.id,
		State:     string(sw.state),
		CacheHits: sw.cacheHits,
		Table:     report.CharacterizationTable{Title: title},
		Summary:   sw.summary,
	}
	for i := range sw.results {
		r := &sw.results[i]
		if r.Err != nil {
			doc.Failures = append(doc.Failures, SweepFailure{
				Index:    r.Index,
				Name:     r.Job.Name(),
				Error:    r.Err.Error(),
				TimedOut: r.TimedOut(),
				Canceled: r.Canceled(),
			})
			continue
		}
		doc.Table.Rows = append(doc.Table.Rows, r.Char)
	}
	return doc
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep %q", r.PathValue("id")))
		return
	}
	if !s.stateOf(sw).terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: sweep %s is %s; results are served once it is done or canceled",
				sw.id, s.stateOf(sw)))
		return
	}
	// Terminal: results/summary are immutable now, safe to read unlocked.
	doc := resultsDoc(sw)
	switch view := r.URL.Query().Get("view"); view {
	case "", "full":
		writeJSON(w, http.StatusOK, doc)
	case "table":
		// The bare Table IV document, byte-identical to
		// `sesa-bench ... -format json` for the same jobs and title.
		w.Header().Set("Content-Type", "application/json")
		_ = doc.Table.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: unknown results view %q (want full or table)", view))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep %q", r.PathValue("id")))
		return
	}
	state, err := s.cancelSweep(sw, fmt.Errorf("serve: sweep %s deleted by client", sw.id))
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	st := s.statusDoc(sw)
	st.State = string(state)
	if state == stateCanceling {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleTimeline serves the sweep's span record as a Chrome trace-event
// document. It works mid-run too — the timeline snapshots safely — which is
// how you watch a fleet sweep take shape live.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep %q", r.PathValue("id")))
		return
	}
	if sw.timeline == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: sweep %s recorded no timeline", sw.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", sw.id+".trace.json"))
	_ = sw.timeline.WriteChrome(w)
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size := s.cache.stats()
	writeJSON(w, http.StatusOK, CacheStats{Entries: size, Hits: hits, Misses: misses})
}
