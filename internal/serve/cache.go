package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"sesa/internal/config"
	"sesa/internal/runner"
)

// jobKey canonicalizes one job into its content address: a hash over the
// fully resolved machine configuration (model and step mode applied, exactly
// as the runner resolves them), the workload profile, the trace scale and
// seed, the effective cycle bound, and whether histograms were attached.
// Everything a job's observable result depends on is in the key; everything
// it does not (submission order, worker count, wall clock) is out, so two
// submissions of the same experiment always collide — which is the point.
//
// %#v is a faithful canonical form here: both structs are flat value types
// (ints, bools, float64s, strings) and Go prints float64s with shortest
// round-trip precision.
func jobKey(j runner.Job) string {
	cfg := config.Default(j.Model)
	if j.Config != nil {
		cfg = *j.Config
	}
	cfg.Model = j.Model
	cfg.StepMode = j.StepMode
	h := sha256.New()
	fmt.Fprintf(h, "cfg=%#v\nprofile=%#v\nn=%d\nseed=%d\nmax=%d\nhists=%t\n",
		cfg, j.Profile, j.InstPerCore, j.Seed, j.DefaultMaxCycles(), j.Hists)
	return hex.EncodeToString(h.Sum(nil))
}

// cachedResult is the deterministic slice of a runner.Result: statistics,
// characterization, histograms and the (deterministic) error. Job identity,
// index and wall clock are rebound at lookup time.
type cachedResult struct {
	r runner.Result
}

// resultCache is the content-addressed result store behind sweep
// deduplication: a bounded LRU keyed by jobKey. Only deterministic results
// may be stored (the server refuses canceled ones), so a hit is
// byte-identical to a re-run.
type resultCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List               // of cacheEntry, front = most recent
	entries map[string]*list.Element // key -> element in lru
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key string
	res cachedResult
}

// newResultCache builds a cache bounded to max entries (max <= 0 disables
// caching: every get misses, every put is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, lru: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key, rebound to job j at index i.
func (c *resultCache) get(key string, i int, j runner.Job) (runner.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return runner.Result{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	r := el.Value.(cacheEntry).res.r
	r.Job = j
	r.Index = i
	r.Wall = 0 // a hit costs no simulation time
	return r, true
}

// put stores a completed job's result under key, evicting the least recently
// used entry past the bound. Canceled results are refused: where the cut
// landed depends on the host scheduler, so caching one would serve
// non-deterministic bytes to a later identical submission.
func (c *resultCache) put(key string, r runner.Result) {
	if c.max <= 0 || r.Canceled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(cacheEntry{key: key, res: cachedResult{r: r}})
	for c.lru.Len() > c.max {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.entries, el.Value.(cacheEntry).key)
	}
}

// stats returns the cumulative hit/miss counters and the current size.
func (c *resultCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
