package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sesa/internal/config"
	"sesa/internal/report"
	"sesa/internal/runner"
	"sesa/internal/trace"
)

// newTestServer builds a Server plus an httptest front end and registers
// cleanup for both.
func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post submits a sweep request and returns the HTTP response with its decoded
// status document (when the body is one).
func post(t *testing.T, ts *httptest.Server, req SweepRequest) (*http.Response, SweepStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	_ = json.Unmarshal(raw, &st)
	return resp, st
}

// getStatus fetches a sweep's status document.
func getStatus(t *testing.T, ts *httptest.Server, id string) (int, SweepStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatal(err)
	}
	return resp.StatusCode, st
}

// waitTerminal polls a sweep until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, st := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if sweepState(st.State).terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitState polls until the sweep reports the wanted state.
func waitState(t *testing.T, ts *httptest.Server, id string, want sweepState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, st := getStatus(t, ts, id)
		if st.State == string(want) {
			return
		}
		if sweepState(st.State).terminal() {
			t.Fatalf("sweep %s reached %s while waiting for %s", id, st.State, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s after %s, want %s", id, st.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// del cancels a sweep and returns the HTTP status plus the reported state.
func del(t *testing.T, ts *httptest.Server, id string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st.State
}

// TestRoundTripByteIdentity is the service's core contract: the table served
// over HTTP is byte-identical to what the runner pool + report layer produce
// directly for the same jobs — i.e. exactly sesa-bench's output.
func TestRoundTripByteIdentity(t *testing.T) {
	const title = "round-trip identity sweep"
	req := SweepRequest{
		Title: title,
		Jobs: []JobSpec{
			{Profile: "radix", Model: "370-SLFSoS-key", InstPerCore: 2000, Seed: 42},
			{Profile: "barnes", Model: "x86", InstPerCore: 2000, Seed: 42},
		},
	}

	// Expected bytes: run the same jobs through the pool directly.
	jobs := make([]runner.Job, len(req.Jobs))
	for i, sp := range req.Jobs {
		j, err := sp.resolve(false)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	results, _ := runner.Pool{Workers: 2, Cache: trace.Shared()}.Run(jobs)
	table := report.CharacterizationTable{Title: title}
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
		table.Rows = append(table.Rows, results[i].Char)
	}
	var want bytes.Buffer
	if err := table.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{MaxWorkers: 2})
	resp, st := post(t, ts, req)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if resp.StatusCode == http.StatusAccepted {
		if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+st.ID {
			t.Errorf("Location = %q, want %q", loc, "/v1/sweeps/"+st.ID)
		}
	}
	fin := waitTerminal(t, ts, st.ID, 30*time.Second)
	if fin.State != string(stateDone) {
		t.Fatalf("sweep finished %s, want done", fin.State)
	}

	tr, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results?view=table")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	got, err := io.ReadAll(tr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("HTTP table is not byte-identical to the pool's:\nhttp:\n%s\npool:\n%s", got, want.Bytes())
	}
}

// TestCacheHitResubmission locks in the content-addressed cache: resubmitting
// a finished sweep completes at POST time, with no new simulation.
func TestCacheHitResubmission(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxWorkers: 2})
	req := SweepRequest{
		Title: "cache sweep",
		Jobs: []JobSpec{
			{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 7},
			{Profile: "radix", Model: "370-NoSpec", InstPerCore: 2000, Seed: 7},
		},
	}
	resp1, st1 := post(t, ts, req)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", resp1.StatusCode)
	}
	fin1 := waitTerminal(t, ts, st1.ID, 30*time.Second)
	if fin1.State != string(stateDone) || fin1.CacheHits != 0 {
		t.Fatalf("first run: state %s, cache hits %d", fin1.State, fin1.CacheHits)
	}

	_, _, sizeBefore := s.cache.stats()
	resp2, st2 := post(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200 (terminal at POST)", resp2.StatusCode)
	}
	if st2.State != string(stateDone) {
		t.Fatalf("resubmit state %s, want done", st2.State)
	}
	if st2.CacheHits != len(req.Jobs) {
		t.Errorf("resubmit cache hits = %d, want %d", st2.CacheHits, len(req.Jobs))
	}
	if _, misses, size := s.cache.stats(); size != sizeBefore || misses != 2 {
		t.Errorf("resubmission re-simulated: size %d→%d, misses %d (want unchanged size, 2 misses)",
			sizeBefore, size, misses)
	}

	// Both documents carry identical tables.
	var docs [2]SweepResults
	for i, id := range []string{st1.ID, st2.ID} {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&docs[i]); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if len(docs[0].Table.Rows) != len(req.Jobs) || len(docs[1].Table.Rows) != len(req.Jobs) {
		t.Fatalf("row counts: %d and %d, want %d", len(docs[0].Table.Rows), len(docs[1].Table.Rows), len(req.Jobs))
	}
	for i := range docs[0].Table.Rows {
		if docs[0].Table.Rows[i] != docs[1].Table.Rows[i] {
			t.Errorf("row %d differs between fresh and cached serve", i)
		}
	}
}

// TestAdmissionBound429 locks in bounded admission: with a one-slot queue
// behind a busy worker, the third submission is shed with 429 + Retry-After.
func TestAdmissionBound429(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkers: 1, MaxQueued: 1})
	long := func(seed uint64) SweepRequest {
		return SweepRequest{Jobs: []JobSpec{
			{Profile: "radix", Model: "x86", InstPerCore: 300_000, Seed: seed},
		}}
	}
	resp1, st1 := post(t, ts, long(1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", resp1.StatusCode)
	}
	waitState(t, ts, st1.ID, stateRunning, 10*time.Second)

	resp2, st2 := post(t, ts, long(2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d, want 202 (queued)", resp2.StatusCode)
	}
	if st2.QueuePosition != 1 {
		t.Errorf("queued sweep position = %d, want 1", st2.QueuePosition)
	}

	resp3, _ := post(t, ts, long(3))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: HTTP %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	// Canceling the queued sweep frees its slot: admission works again.
	if code, state := del(t, ts, st2.ID); code != http.StatusOK || state != string(stateCanceled) {
		t.Fatalf("cancel queued: HTTP %d state %s", code, state)
	}
	resp4, _ := post(t, ts, long(4))
	if resp4.StatusCode != http.StatusAccepted {
		t.Errorf("submit after freeing the queue: HTTP %d, want 202", resp4.StatusCode)
	}
}

// TestDeleteRunningSweepFreesWorkers is the cancellation acceptance test: a
// DELETE of a running sweep stops the simulation within a cancellation poll,
// the sweep reports canceled with partial statistics, and the freed workers
// pick up the next sweep.
func TestDeleteRunningSweepFreesWorkers(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkers: 2})
	// Sized so trace generation (not cancellable) finishes well inside the
	// sleep below even under -race, while the simulation itself runs for
	// seconds — the cancel must land mid-simulation to exercise partial
	// statistics.
	resp, st := post(t, ts, SweepRequest{Jobs: []JobSpec{
		{Profile: "radix", Model: "x86", InstPerCore: 100_000, Seed: 11},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, stateRunning, 20*time.Second)
	time.Sleep(1 * time.Second)

	start := time.Now()
	code, state := del(t, ts, st.ID)
	if code != http.StatusAccepted || state != string(stateCanceling) {
		t.Fatalf("DELETE running: HTTP %d state %s, want 202 canceling", code, state)
	}
	fin := waitTerminal(t, ts, st.ID, 15*time.Second)
	if fin.State != string(stateCanceled) {
		t.Fatalf("sweep finished %s, want canceled", fin.State)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("cancellation took %s; workers were not freed promptly", wall)
	}

	var doc SweepResults
	r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if doc.Summary.Canceled != 1 || len(doc.Failures) != 1 || !doc.Failures[0].Canceled {
		t.Errorf("canceled sweep results: summary.Canceled=%d failures=%+v", doc.Summary.Canceled, doc.Failures)
	}
	if doc.Summary.SimCycles == 0 {
		t.Error("canceled mid-run but no partial sim cycles reported")
	}

	// The freed worker runs the next sweep to completion.
	resp2, st2 := post(t, ts, SweepRequest{Jobs: []JobSpec{
		{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 12},
	}})
	if resp2.StatusCode != http.StatusAccepted && resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up submit: HTTP %d", resp2.StatusCode)
	}
	if resp2.StatusCode == http.StatusAccepted {
		if fin2 := waitTerminal(t, ts, st2.ID, 30*time.Second); fin2.State != string(stateDone) {
			t.Errorf("follow-up sweep finished %s, want done", fin2.State)
		}
	}
}

// TestDrainStopsAdmission locks in the SIGTERM semantics: after Drain begins,
// submissions are shed with 503.
func TestDrainStopsAdmission(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxWorkers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx) // idle server: drains immediately
	resp, _ := post(t, ts, SweepRequest{Jobs: []JobSpec{
		{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 1},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestDrainCancelsOverdueSweeps: a drain whose deadline expires cancels the
// running sweep rather than waiting for it.
func TestDrainCancelsOverdueSweeps(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxWorkers: 1})
	resp, st := post(t, ts, SweepRequest{Jobs: []JobSpec{
		{Profile: "radix", Model: "x86", InstPerCore: 200_000, Seed: 21},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, stateRunning, 20*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Drain(ctx)
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("overdue drain took %s", wall)
	}
	if _, st := getStatus(t, ts, st.ID); st.State != string(stateCanceled) {
		t.Errorf("sweep state after overdue drain = %s, want canceled", st.State)
	}
}

// TestValidation covers the 400/404/409 error paths.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkers: 1})
	badBodies := map[string]string{
		"no jobs":         `{"jobs":[]}`,
		"unknown profile": `{"jobs":[{"profile":"nope","model":"x86","inst_per_core":100}]}`,
		"unknown model":   `{"jobs":[{"profile":"radix","model":"nope","inst_per_core":100}]}`,
		"bad step mode":   `{"jobs":[{"profile":"radix","model":"x86","inst_per_core":100,"step_mode":"warp"}]}`,
		"zero insts":      `{"jobs":[{"profile":"radix","model":"x86","inst_per_core":0}]}`,
		"unknown field":   `{"jobs":[{"profile":"radix","model":"x86","inst_per_core":100,"bogus":1}]}`,
		"not json":        `not json`,
	}
	for name, body := range badBodies {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}

	if code, _ := getStatus(t, ts, "sw-999999"); code != http.StatusNotFound {
		t.Errorf("unknown sweep status: HTTP %d, want 404", code)
	}
	if code, _ := del(t, ts, "sw-999999"); code != http.StatusNotFound {
		t.Errorf("unknown sweep DELETE: HTTP %d, want 404", code)
	}

	// Results of a non-terminal sweep are 409.
	resp, st := post(t, ts, SweepRequest{Jobs: []JobSpec{
		{Profile: "radix", Model: "x86", InstPerCore: 300_000, Seed: 31},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("results of non-terminal sweep: HTTP %d, want 409", r.StatusCode)
	}
	// A DELETE of a terminal sweep is 409 too.
	if code, _ := del(t, ts, st.ID); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("cleanup DELETE: HTTP %d", code)
	}
	waitTerminal(t, ts, st.ID, 15*time.Second)
	if code, _ := del(t, ts, st.ID); code != http.StatusConflict {
		t.Errorf("DELETE of terminal sweep: HTTP %d, want 409", code)
	}
}

// TestJobKeyCanonical locks in the content address: equal resolved jobs share
// a key, different parameters do not, and explicit defaults hash like
// implicit ones.
func TestJobKeyCanonical(t *testing.T) {
	p, _ := trace.Lookup("radix")
	base := runner.Job{Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 1}
	same := runner.Job{Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 1}
	if jobKey(base) != jobKey(same) {
		t.Error("identical jobs hash differently")
	}
	cfg := config.Default(config.X86)
	explicit := base
	explicit.Config = &cfg
	if jobKey(base) != jobKey(explicit) {
		t.Error("explicit default config hashes differently from implicit")
	}
	for name, j := range map[string]runner.Job{
		"model": {Profile: p, Model: config.SLFSoSKey370, InstPerCore: 1000, Seed: 1},
		"n":     {Profile: p, Model: config.X86, InstPerCore: 2000, Seed: 1},
		"seed":  {Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 2},
		"step":  {Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 1, StepMode: config.StepNaive},
		"bound": {Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 1, MaxCycles: 5},
		"hists": {Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 1, Hists: true},
		"profile": func() runner.Job {
			b, _ := trace.Lookup("barnes")
			return runner.Job{Profile: b, Model: config.X86, InstPerCore: 1000, Seed: 1}
		}(),
	} {
		if jobKey(base) == jobKey(j) {
			t.Errorf("job differing in %s shares the base key", name)
		}
	}
}

// TestCacheRefusesCanceledResults guards the non-determinism firewall: a
// canceled result must never enter the content-addressed cache.
func TestCacheRefusesCanceledResults(t *testing.T) {
	c := newResultCache(10)
	p, _ := trace.Lookup("radix")
	j := runner.Job{Profile: p, Model: config.X86, InstPerCore: 1000, Seed: 1}
	r := runner.Result{Job: j, Err: fmt.Errorf("wrapped: %w", context.Canceled)}
	c.put(jobKey(j), r)
	if _, ok := c.get(jobKey(j), 0, j); ok {
		t.Error("canceled result was cached")
	}
}
