// Package serve implements sesa-serve, the sweep-as-a-service daemon: a
// long-running HTTP/JSON front end over the parallel experiment runner.
//
// Clients POST a sweep (a list of benchmark jobs) to /v1/sweeps, poll its
// status, fetch its Table IV rows and summary, and DELETE it to cancel —
// including mid-run, which frees the runner's workers within a cancellation
// poll via the context plumbed through runner.Pool and sim.Machine.
//
// The daemon sits on three load-shedding mechanisms a batch simulation
// service needs:
//
//   - a bounded admission queue: at most MaxQueued sweeps wait behind the
//     running one; submissions past the bound get 429 with Retry-After, so
//     overload is explicit back-pressure instead of unbounded memory;
//   - a content-addressed result cache: every completed job is stored under
//     the canonical hash of (config, profile, n, seed, step mode, cycle
//     bound, histograms), so a resubmitted experiment is served from memory
//     without re-simulation — byte-identical, because jobs are
//     deterministic;
//   - graceful drain: Drain stops admission (503), lets the queue finish
//     within the caller's deadline, then cancels whatever still runs and
//     flushes results.
//
// Sweeps execute one at a time in submission order, each fanned across
// MaxWorkers runner goroutines; results are therefore exactly what
// sesa-bench would print for the same jobs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sesa/internal/config"
	"sesa/internal/fleet"
	"sesa/internal/report"
	"sesa/internal/runner"
	"sesa/internal/telemetry"
	"sesa/internal/trace"
)

// Defaults for the zero values of Options.
const (
	DefaultMaxQueued = 16
	DefaultMaxCached = 4096
)

// Options configures a Server.
type Options struct {
	// MaxWorkers is the runner pool size for each running sweep; 0 means
	// GOMAXPROCS.
	MaxWorkers int
	// MaxQueued bounds the admission queue (sweeps waiting behind the
	// running one); 0 means DefaultMaxQueued, negative means no queueing
	// (every submission that cannot run from cache alone is 429).
	MaxQueued int
	// MaxCached bounds the content-addressed result cache in jobs; 0 means
	// DefaultMaxCached, negative disables caching.
	MaxCached int
	// ResultsDir, when non-empty, receives one <id>.json results document
	// per finished sweep — the flush half of graceful drain.
	ResultsDir string
	// Fleet, when non-nil, turns the daemon into a fleet coordinator:
	// non-cached jobs are decomposed into batches and executed by remote
	// workers pulling leases from /v1/fleet/ instead of the local runner
	// pool. Results are byte-identical either way — jobs are deterministic
	// and results land positionally — so flipping this changes capacity,
	// never output.
	Fleet *config.Fleet
	// Telemetry supplies the structured logger and metrics registry; nil is
	// fully functional (logs are discarded, metric updates are no-ops, and
	// /metrics serves an empty document). Sweep timelines are recorded
	// either way — they are per-job, not per-cycle, and never touch the
	// simulation hot path.
	Telemetry *telemetry.T
}

// sweepState is the lifecycle of one submitted sweep.
type sweepState string

const (
	stateQueued    sweepState = "queued"
	stateRunning   sweepState = "running"
	stateCanceling sweepState = "canceling"
	stateDone      sweepState = "done"
	stateCanceled  sweepState = "canceled"
)

// terminal reports whether the state is final.
func (s sweepState) terminal() bool { return s == stateDone || s == stateCanceled }

// sweep is one submitted sweep's full lifecycle record. Mutable fields are
// guarded by the server mutex; results/summary/cacheHits are written once
// (before done is closed) and read-only afterwards.
type sweep struct {
	id    string
	title string
	state sweepState
	jobs  []runner.Job
	keys  []string // jobs[i]'s content address

	progress *runner.Progress
	timeline *telemetry.Timeline     // span record of the sweep's path through the service
	admitted time.Time               // when submit enqueued it (feeds the queue span)
	runCtx   context.Context         // set when the dispatcher picks the sweep up
	cancel   context.CancelCauseFunc // non-nil while running
	done     chan struct{}           // closed on terminal state

	results   []runner.Result
	summary   report.SweepSummary
	cacheHits int
}

// Server is the sweep-as-a-service daemon state: admission queue, dispatcher,
// result cache, and — in fleet mode — the batch coordinator.
type Server struct {
	opts  Options
	cache *resultCache
	fleet *fleet.Coordinator  // nil in single-host mode
	log   *slog.Logger        // never nil (discards when telemetry is off)
	reg   *telemetry.Registry // nil-safe; backs GET /metrics

	// lifeCtx parents every sweep's run context; Close cancels it.
	lifeCtx  context.Context
	lifeStop context.CancelCauseFunc

	mu       sync.Mutex
	seq      int
	sweeps   map[string]*sweep
	queue    []*sweep
	running  *sweep
	last     *sweep // most recently finished (for /status after the sweep)
	draining bool
	stopped  bool

	wake chan struct{} // nudges the dispatcher, capacity 1
	wg   sync.WaitGroup
}

// New builds a Server and starts its dispatcher. Callers own the HTTP
// listener; mount Handler on it. Shut down with Drain (graceful) or Close
// (immediate).
func New(o Options) *Server {
	s, err := NewFleet(o)
	if err != nil {
		// Only fleet options can fail validation; plain servers cannot
		// reach this.
		panic(err)
	}
	return s
}

// NewFleet is New with fleet-option validation surfaced (New panics on bad
// fleet parameters; the CLI wants the error).
func NewFleet(o Options) (*Server, error) {
	if o.MaxQueued == 0 {
		o.MaxQueued = DefaultMaxQueued
	}
	if o.MaxCached == 0 {
		o.MaxCached = DefaultMaxCached
	}
	var coord *fleet.Coordinator
	if o.Fleet != nil {
		var err error
		if coord, err = fleet.NewCoordinator(*o.Fleet, o.Telemetry); err != nil {
			return nil, err
		}
	}
	ctx, stop := context.WithCancelCause(context.Background())
	s := &Server{
		fleet:    coord,
		opts:     o,
		cache:    newResultCache(o.MaxCached),
		log:      o.Telemetry.Component("serve"),
		reg:      o.Telemetry.Registry(),
		lifeCtx:  ctx,
		lifeStop: stop,
		sweeps:   make(map[string]*sweep),
		wake:     make(chan struct{}, 1),
	}
	s.registerMetrics()
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// registerMetrics installs the daemon's scrape-time families. All of them
// sample live state only when /metrics is actually read, so an unscraped
// registry costs nothing; all callbacks take the server mutex, which Render
// guarantees is not nested inside the registry lock.
//
// Per-sweep families are labeled sweep="sw-NNNNNN" and cover the queued,
// running and most recently finished sweeps — a bounded window, unlike the
// process-global /debug/vars counters (see runner.StatusHandler), which can
// only ever follow one sweep at a time.
func (s *Server) registerMetrics() {
	s.reg.GaugeFunc("sesa_serve_queue_depth",
		"Sweeps waiting in the admission queue.", func() []telemetry.Sample {
			s.mu.Lock()
			defer s.mu.Unlock()
			return []telemetry.Sample{{Value: float64(len(s.queue))}}
		})
	s.reg.GaugeFunc("sesa_cache_entries",
		"Jobs held in the content-addressed result cache.", func() []telemetry.Sample {
			_, _, size := s.cache.stats()
			return []telemetry.Sample{{Value: float64(size)}}
		})
	s.reg.CounterFunc("sesa_cache_hits_total",
		"Result-cache hits.", func() []telemetry.Sample {
			hits, _, _ := s.cache.stats()
			return []telemetry.Sample{{Value: float64(hits)}}
		})
	s.reg.CounterFunc("sesa_cache_misses_total",
		"Result-cache misses.", func() []telemetry.Sample {
			_, misses, _ := s.cache.stats()
			return []telemetry.Sample{{Value: float64(misses)}}
		})

	// One sample per observed sweep, labeled by sweep id.
	perSweep := func(v func(sw *sweep, snap runner.Snapshot) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, sw := range s.metricSweeps() {
				out = append(out, telemetry.Sample{
					Labels: [][2]string{{"sweep", sw.id}},
					Value:  v(sw, sw.progress.Snapshot()),
				})
			}
			return out
		}
	}
	s.reg.GaugeFunc("sesa_sweep_jobs",
		"Jobs in the sweep (cached jobs excluded while running).",
		perSweep(func(_ *sweep, sn runner.Snapshot) float64 { return float64(sn.TotalJobs) }))
	s.reg.GaugeFunc("sesa_sweep_jobs_done",
		"Jobs the sweep has completed.",
		perSweep(func(_ *sweep, sn runner.Snapshot) float64 { return float64(sn.Done) }))
	s.reg.GaugeFunc("sesa_sweep_jobs_failed",
		"Completed jobs that failed.",
		perSweep(func(_ *sweep, sn runner.Snapshot) float64 { return float64(sn.Failed) }))
	s.reg.GaugeFunc("sesa_sweep_jobs_per_second",
		"Sweep throughput: completed jobs per elapsed wall-clock second.",
		perSweep(func(_ *sweep, sn runner.Snapshot) float64 {
			if sn.ElapsedSeconds <= 0 {
				return 0
			}
			return float64(sn.Done) / sn.ElapsedSeconds
		}))
	s.reg.GaugeFunc("sesa_sweep_cycles_per_second",
		"Sweep throughput: simulated cycles per elapsed wall-clock second.",
		perSweep(func(_ *sweep, sn runner.Snapshot) float64 { return sn.CyclesPerSecond }))
}

// metricSweeps is the bounded window the per-sweep families report: queued
// and running sweeps plus the most recently finished one. Terminal sweeps
// age out of the export (their last state remains queryable via the API), so
// series cardinality never grows with daemon uptime.
func (s *Server) metricSweeps() []*sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*sweep
	if s.last != nil && s.last.progress != nil {
		out = append(out, s.last)
	}
	if s.running != nil && s.running != s.last {
		out = append(out, s.running)
	}
	for _, sw := range s.queue {
		if sw.state == stateQueued {
			out = append(out, sw)
		}
	}
	return out
}

// submit admits a resolved sweep: either completes it synchronously when
// every job is cached (a resubmission returns instantly, without touching
// the queue), or enqueues it. It returns the sweep, or an admissionError
// carrying the HTTP status to serve.
func (s *Server) submit(title string, jobs []runner.Job) (*sweep, error) {
	admStart := time.Now()
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = jobKey(j)
	}

	// Fast path outside the queue: an all-cached sweep costs no simulation,
	// so it must not wait behind queued work nor count against the bound.
	if cached, ok := s.allCached(keys, jobs); ok {
		sw := &sweep{title: title, jobs: jobs, keys: keys, done: make(chan struct{})}
		sw.results = cached
		sw.cacheHits = len(jobs)
		sw.summary = summarize(cached, 0, 0)
		sw.state = stateDone
		close(sw.done)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining || s.stopped {
			return nil, errDraining
		}
		sw.id = s.nextIDLocked()
		sw.timeline = telemetry.NewTimeline(sw.id)
		sw.timeline.Add(telemetry.Span{
			Name: telemetry.StageAdmission, Cat: "coordinator", Index: -1,
			Start: admStart, Dur: time.Since(admStart),
		})
		s.sweeps[sw.id] = sw
		s.flush(sw)
		s.log.Info("sweep served entirely from cache",
			telemetry.KeySweep, sw.id, "jobs", len(jobs))
		return sw, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return nil, errDraining
	}
	if len(s.queue) >= max(s.opts.MaxQueued, 0) {
		retry := s.retryAfterLocked()
		s.log.Warn("sweep rejected, admission queue full",
			"jobs", len(jobs), "queued", len(s.queue), "retry_after_seconds", retry)
		return nil, &admissionError{retryAfter: retry}
	}
	sw := &sweep{
		title:    title,
		state:    stateQueued,
		jobs:     jobs,
		keys:     keys,
		progress: runner.NewProgress(),
		admitted: time.Now(),
		done:     make(chan struct{}),
	}
	if s.fleet != nil {
		sw.progress.AttachFleet(s.fleet.WorkerStatus)
	}
	sw.id = s.nextIDLocked()
	sw.timeline = telemetry.NewTimeline(sw.id)
	sw.timeline.Add(telemetry.Span{
		Name: telemetry.StageAdmission, Cat: "coordinator", Index: -1,
		Start: admStart, Dur: sw.admitted.Sub(admStart),
	})
	s.sweeps[sw.id] = sw
	s.queue = append(s.queue, sw)
	s.log.Info("sweep admitted",
		telemetry.KeySweep, sw.id, "jobs", len(jobs), "queue_position", len(s.queue))
	s.nudge()
	return sw, nil
}

// nextIDLocked mints a unique sweep id. The sequence number keeps ids unique
// and orderable; it is not a content address (identical resubmissions get
// fresh ids — deduplication happens per job, in the result cache).
func (s *Server) nextIDLocked() string {
	s.seq++
	return fmt.Sprintf("sw-%06d", s.seq)
}

// allCached returns the rebound cached results when every key hits. It probes
// without recording misses first, so a partially-cached sweep does not skew
// the miss counter before the dispatcher does its real lookups.
func (s *Server) allCached(keys []string, jobs []runner.Job) ([]runner.Result, bool) {
	s.cache.mu.Lock()
	for _, k := range keys {
		if _, ok := s.cache.entries[k]; !ok {
			s.cache.mu.Unlock()
			return nil, false
		}
	}
	s.cache.mu.Unlock()
	out := make([]runner.Result, len(jobs))
	for i := range jobs {
		r, ok := s.cache.get(keys[i], i, jobs[i])
		if !ok {
			// Evicted between probe and get: fall back to the queue.
			return nil, false
		}
		out[i] = r
	}
	return out, true
}

// retryAfterLocked estimates seconds until a queue slot frees: the running
// sweep's ETA when known, else one second per queued sweep.
func (s *Server) retryAfterLocked() int {
	if s.running != nil && s.running.progress != nil {
		if eta := s.running.progress.Snapshot().ETASeconds; eta > 0 {
			return int(eta) + 1
		}
	}
	return len(s.queue) + 1
}

// nudge wakes the dispatcher without blocking.
func (s *Server) nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch is the single dispatcher goroutine: it pops queued sweeps in
// submission order and runs each to a terminal state.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		sw := s.next()
		if sw == nil {
			return
		}
		s.runSweep(sw)
	}
}

// next blocks until a sweep is runnable (skipping ones canceled while
// queued) or the server stops.
func (s *Server) next() *sweep {
	for {
		s.mu.Lock()
		for len(s.queue) > 0 {
			sw := s.queue[0]
			s.queue = s.queue[1:]
			if sw.state != stateQueued {
				continue
			}
			sw.state = stateRunning
			ctx, cancel := context.WithCancelCause(s.lifeCtx)
			sw.runCtx = ctx
			sw.cancel = cancel
			s.running = sw
			s.mu.Unlock()
			return sw
		}
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			return nil
		}
		// Wait for work or shutdown; the loop top re-checks both. lifeCtx
		// is only canceled after stopped is set, so this cannot spin.
		select {
		case <-s.wake:
		case <-s.lifeCtx.Done():
		}
	}
}

// runSweep executes one sweep: cached jobs are served from the store, the
// rest go through the runner pool under the sweep's cancelable context, and
// fresh deterministic results are stored back.
func (s *Server) runSweep(sw *sweep) {
	start := time.Now()
	ctx := sw.runCtx
	sw.timeline.Add(telemetry.Span{
		Name: telemetry.StageQueue, Cat: "coordinator", Index: -1,
		Start: sw.admitted, Dur: start.Sub(sw.admitted),
	})

	results := make([]runner.Result, len(sw.jobs))
	var toRun []runner.Job
	var toRunIdx []int
	hits := 0
	for i, j := range sw.jobs {
		if r, ok := s.cache.get(sw.keys[i], i, j); ok {
			results[i] = r
			hits++
			continue
		}
		toRun = append(toRun, j)
		toRunIdx = append(toRunIdx, i)
	}
	s.log.Info("sweep started", telemetry.KeySweep, sw.id,
		"jobs", len(sw.jobs), "cached", hits, "fleet", s.fleet != nil)

	workers := s.opts.MaxWorkers
	if len(toRun) > 0 {
		var ran []runner.Result
		if s.fleet != nil {
			// Fleet mode: the coordinator leases batches to remote workers.
			// Dedup already happened above — cached jobs never dispatch —
			// and completions stream into the cache as they settle, so a
			// second sweep overlapping this one hits on the finished jobs.
			var ferr error
			ran, ferr = s.fleet.RunJobs(ctx, sw.id, toRun, sw.progress, sw.timeline,
				func(k int, r runner.Result) {
					if !fleet.IsAbandoned(r.Err) {
						s.cache.put(sw.keys[toRunIdx[k]], r)
					}
				})
			if ferr != nil {
				ran = make([]runner.Result, len(toRun))
				for k, j := range toRun {
					ran[k] = runner.Result{Job: j, Index: k, Err: ferr}
				}
			}
		} else {
			// Local mode: the daemon's own pool is the "worker"; job spans
			// land on the same timeline the fleet path would fill.
			execStart := time.Now()
			pool := runner.Pool{Workers: workers, Cache: trace.Shared(), Progress: sw.progress,
				OnJobSpan: func(k int, name string, js, je time.Time) {
					sw.timeline.Add(telemetry.Span{
						Name: telemetry.StageJob, Cat: "worker", Worker: "local",
						Job: name, Index: toRunIdx[k], Start: js, Dur: je.Sub(js),
					})
				}}
			ran, _ = pool.RunContext(ctx, toRun)
			sw.timeline.Add(telemetry.Span{
				Name: telemetry.StageExecute, Cat: "worker", Worker: "local", Index: -1,
				Start: execStart, Dur: time.Since(execStart),
			})
		}
		for k, r := range ran {
			i := toRunIdx[k]
			r.Index = i
			results[i] = r
			if s.fleet == nil {
				s.cache.put(sw.keys[i], r)
			}
		}
	}

	canceled := ctx.Err() != nil
	aggStart := time.Now()
	sum := summarize(results, workers, time.Since(start))

	s.mu.Lock()
	sw.results = results
	sw.summary = sum
	sw.cacheHits = hits
	if canceled {
		sw.state = stateCanceled
	} else {
		sw.state = stateDone
	}
	sw.cancel(nil)
	sw.cancel = nil
	s.running = nil
	s.last = sw
	s.flush(sw)
	state := sw.state
	s.mu.Unlock()
	sw.timeline.Add(telemetry.Span{
		Name: telemetry.StageAggregate, Cat: "coordinator", Index: -1,
		Start: aggStart, Dur: time.Since(aggStart),
	})
	s.log.Info("sweep finished", telemetry.KeySweep, sw.id, "state", string(state),
		"jobs", len(sw.jobs), "failed", sum.Failed, "cached", hits,
		"wall_seconds", sum.WallSeconds)
	close(sw.done)
}

// summarize aggregates the sweep-level quantities over the full (cached +
// simulated) result set, mirroring the runner pool's own summary.
func summarize(results []runner.Result, workers int, wall time.Duration) report.SweepSummary {
	sum := report.SweepSummary{Jobs: len(results), Workers: workers, WallSeconds: wall.Seconds()}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			sum.Failed++
			if r.TimedOut() {
				sum.TimedOut++
			}
			if r.Canceled() {
				sum.Canceled++
			}
		}
		if r.Stats != nil {
			sum.SimCycles += r.Stats.Cycles
			sum.SimInsts += r.Stats.Total().RetiredInsts
		}
	}
	sum.TraceCacheHits, sum.TraceCacheMisses = trace.Shared().Stats()
	sum.CyclesPerSec = sum.CyclesPerSecond()
	sum.InstsPerSec = sum.InstsPerSecond()
	return sum
}

// flush writes a finished sweep's results document to ResultsDir (caller
// holds the server mutex; errors are logged, never reported to clients —
// the in-memory results remain authoritative).
func (s *Server) flush(sw *sweep) {
	if s.opts.ResultsDir == "" {
		return
	}
	doc := resultsDoc(sw)
	path := filepath.Join(s.opts.ResultsDir, sw.id+".json")
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(buf, '\n'), 0o644)
	}
	if err != nil {
		s.log.Error("flushing sweep results failed",
			telemetry.KeySweep, sw.id, "path", path, "error", err)
	}
}

// cancelSweep transitions a sweep toward canceled. Queued sweeps cancel
// immediately; running ones get their context canceled and finish as
// canceled once the pool's workers stop (within one cancellation poll).
func (s *Server) cancelSweep(sw *sweep, cause error) (sweepState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch sw.state {
	case stateQueued:
		sw.state = stateCanceled
		sw.results = nil
		sw.summary = report.SweepSummary{Jobs: len(sw.jobs), Canceled: len(sw.jobs), Failed: len(sw.jobs)}
		// Drop it from the admission queue so its slot frees immediately —
		// admission counts queue length, and a canceled sweep must not hold
		// a slot until the dispatcher would have skipped it.
		for i, q := range s.queue {
			if q == sw {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		close(sw.done)
		return stateCanceled, nil
	case stateRunning:
		sw.state = stateCanceling
		sw.cancel(cause)
		return stateCanceling, nil
	case stateCanceling:
		return stateCanceling, nil
	default:
		return sw.state, fmt.Errorf("serve: sweep %s already %s", sw.id, sw.state)
	}
}

// stateOf snapshots a sweep's state under the lock.
func (s *Server) stateOf(sw *sweep) sweepState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sw.state
}

// lookup finds a sweep by id.
func (s *Server) lookup(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// currentProgress is the getter behind the mounted /status endpoints: the
// running sweep's tracker, else the most recently finished one's.
func (s *Server) currentProgress() *runner.Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running != nil {
		return s.running.progress
	}
	if s.last != nil {
		return s.last.progress
	}
	return nil
}

// idle reports whether no sweep is queued or running.
func (s *Server) idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running != nil {
		return false
	}
	for _, sw := range s.queue {
		if sw.state == stateQueued {
			return false
		}
	}
	return true
}

// Drain performs the graceful SIGTERM sequence: stop admitting (submissions
// get 503), let queued and running sweeps finish, and — if ctx expires
// first — cancel whatever is still going and wait for it to stop. Results of
// every finished sweep have already been flushed to ResultsDir as they
// completed. Drain returns when the dispatcher is idle.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for !s.idle() {
		select {
		case <-ctx.Done():
			// Grace expired: hard-cancel the rest, then wait for the
			// dispatcher to report each as canceled (fast — workers stop at
			// the next cancellation poll).
			s.cancelAll(errors.New("serve: drain deadline expired"))
			for !s.idle() {
				time.Sleep(5 * time.Millisecond)
			}
			s.stop()
			return
		case <-tick.C:
		}
	}
	s.stop()
}

// Close shuts the server down immediately: cancel everything, stop the
// dispatcher, wait for it to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancelAll(errors.New("serve: server closed"))
	s.stop()
}

// cancelAll cancels every queued and running sweep.
func (s *Server) cancelAll(cause error) {
	s.mu.Lock()
	targets := make([]*sweep, 0, len(s.queue)+1)
	if s.running != nil {
		targets = append(targets, s.running)
	}
	targets = append(targets, s.queue...)
	s.mu.Unlock()
	for _, sw := range targets {
		_, _ = s.cancelSweep(sw, cause)
	}
}

// stop terminates the dispatcher and waits for it.
func (s *Server) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.lifeStop(errors.New("serve: server stopped"))
	s.nudge()
	s.wg.Wait()
	if s.fleet != nil {
		s.fleet.Close()
	}
}
