package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sesa/internal/config"
	"sesa/internal/fleet"
)

// newFleetTestServer builds a coordinator-mode Server plus its httptest
// front end, and starts n fleet workers pulling from it. Workers drain
// gracefully at cleanup.
func newFleetTestServer(t *testing.T, fc config.Fleet, n int) (*Server, *httptest.Server, []*fleet.Worker) {
	t.Helper()
	s, err := NewFleet(Options{MaxWorkers: 2, Fleet: &fc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	workers := make([]*fleet.Worker, n)
	done := make(chan struct{}, n)
	for i := range workers {
		workers[i] = fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: ts.URL + "/v1/fleet",
			Name:        "w" + string(rune('A'+i)),
			Jobs:        1,
			Poll:        5 * time.Millisecond,
			Client:      ts.Client(),
		})
		go func(w *fleet.Worker) {
			_ = w.Run(ctx)
			done <- struct{}{}
		}(workers[i])
	}
	t.Cleanup(func() {
		cancel()
		for range workers {
			<-done
		}
		ts.Close()
		s.Close()
	})
	return s, ts, workers
}

// fetchResults GETs a sweep's results document.
func fetchResults(t *testing.T, ts *httptest.Server, id string) SweepResults {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results %s: HTTP %d", id, resp.StatusCode)
	}
	var doc SweepResults
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// fetchTable GETs a sweep's raw Table IV bytes.
func fetchTable(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results?view=table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	return raw
}

func fleetSweepRequest() SweepRequest {
	return SweepRequest{
		Title: "fleet identity sweep",
		Jobs: []JobSpec{
			{Profile: "radix", Model: "370-SLFSoS-key", InstPerCore: 2000, Seed: 42},
			{Profile: "barnes", Model: "x86", InstPerCore: 2000, Seed: 42},
			{Profile: "fft", Model: "370-NoSpec", InstPerCore: 2000, Seed: 7},
			{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 43},
			{Profile: "ocean_cp", Model: "370-SLFSoS-key", InstPerCore: 2000, Seed: 9},
			{Profile: "barnes", Model: "370-NoSpec", InstPerCore: 2000, Seed: 11},
		},
	}
}

// TestFleetByteIdentity is the fabric's acceptance bar: the same sweep run
// through a coordinator plus two workers produces a Table IV document
// byte-identical to single-host execution, matching deterministic summary
// counters, and the coordinator's /status carries per-worker rows.
func TestFleetByteIdentity(t *testing.T) {
	req := fleetSweepRequest()

	// Single-host reference.
	_, local := newTestServer(t, Options{MaxWorkers: 2})
	resp, lst := post(t, local, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("local submit: HTTP %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, local, lst.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("local sweep finished %s, want done", fin.State)
	}
	wantTable := fetchTable(t, local, lst.ID)
	wantDoc := fetchResults(t, local, lst.ID)

	// The same sweep through the fabric.
	_, ts, _ := newFleetTestServer(t, config.Fleet{BatchSize: 2, LeaseTTL: 2 * time.Second, MaxAttempts: 5}, 2)
	resp, fst := post(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fleet submit: HTTP %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts, fst.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("fleet sweep finished %s, want done", fin.State)
	}

	gotTable := fetchTable(t, ts, fst.ID)
	if !bytes.Equal(gotTable, wantTable) {
		t.Errorf("fleet table is not byte-identical to single-host:\nfleet:\n%s\nlocal:\n%s", gotTable, wantTable)
	}

	gotDoc := fetchResults(t, ts, fst.ID)
	gs, ws := gotDoc.Summary, wantDoc.Summary
	if gs.Jobs != ws.Jobs || gs.Failed != ws.Failed || gs.TimedOut != ws.TimedOut ||
		gs.Canceled != ws.Canceled || gs.SimCycles != ws.SimCycles || gs.SimInsts != ws.SimInsts {
		t.Errorf("fleet summary counters differ:\nfleet: %+v\nlocal: %+v", gs, ws)
	}

	// Per-worker rows ride the sweep's status document.
	code, st := getStatus(t, ts, fst.ID)
	if code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if st.Progress == nil || len(st.Progress.FleetWorkers) != 2 {
		t.Fatalf("status fleet_workers = %+v, want 2 rows", st.Progress)
	}
	batches := 0
	for _, row := range st.Progress.FleetWorkers {
		if row.ID == "" || row.Cores != 1 {
			t.Errorf("worker row %+v missing id or cores", row)
		}
		batches += row.Completed
	}
	if batches != 3 {
		t.Errorf("completed batches across workers = %d, want 3 (6 jobs / batch 2)", batches)
	}
}

// TestFleetWorkerKilledMidSweep kills one of two workers while it holds a
// lease; the coordinator reassigns the forfeited batches and the sweep still
// finishes with output byte-identical to the single-host run.
func TestFleetWorkerKilledMidSweep(t *testing.T) {
	req := fleetSweepRequest()

	_, local := newTestServer(t, Options{MaxWorkers: 2})
	_, lst := post(t, local, req)
	if fin := waitTerminal(t, local, lst.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("local sweep finished %s, want done", fin.State)
	}
	wantTable := fetchTable(t, local, lst.ID)

	s, ts, workers := newFleetTestServer(t,
		config.Fleet{BatchSize: 1, LeaseTTL: 100 * time.Millisecond, MaxAttempts: 10}, 2)
	_, fst := post(t, ts, req)

	// Kill worker 0 as soon as it holds a lease.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var holding bool
		for _, row := range s.fleet.WorkerStatus() {
			if row.Name == "wA" && row.Leased > 0 {
				holding = true
			}
		}
		if holding {
			break
		}
		if _, st := getStatus(t, ts, fst.ID); sweepState(st.State).terminal() {
			t.Skip("sweep finished before the victim leased; nothing to kill")
		}
		if time.Now().After(deadline) {
			t.Fatal("victim worker never leased a batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	workers[0].Abort()

	if fin := waitTerminal(t, ts, fst.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("fleet sweep finished %s, want done", fin.State)
	}
	gotTable := fetchTable(t, ts, fst.ID)
	if !bytes.Equal(gotTable, wantTable) {
		t.Errorf("post-kill fleet table is not byte-identical to single-host:\nfleet:\n%s\nlocal:\n%s", gotTable, wantTable)
	}
	doc := fetchResults(t, ts, fst.ID)
	if doc.Summary.Failed != 0 {
		t.Errorf("post-kill sweep reports %d failed jobs, want 0 (failures: %+v)", doc.Summary.Failed, doc.Failures)
	}
}

// TestFleetCancelMidSweep: DELETE on a fleet sweep propagates through the
// coordinator — leaseholders are told to abandon and the sweep lands in
// canceled, exactly like the local runner path.
func TestFleetCancelMidSweep(t *testing.T) {
	_, ts, _ := newFleetTestServer(t,
		config.Fleet{BatchSize: 1, LeaseTTL: 2 * time.Second, MaxAttempts: 5}, 1)
	req := SweepRequest{
		Title: "fleet cancel sweep",
		Jobs: []JobSpec{
			{Profile: "radix", Model: "x86", InstPerCore: 60000, Seed: 1},
			{Profile: "radix", Model: "x86", InstPerCore: 60000, Seed: 2},
			{Profile: "radix", Model: "x86", InstPerCore: 60000, Seed: 3},
			{Profile: "radix", Model: "x86", InstPerCore: 60000, Seed: 4},
		},
	}
	_, st := post(t, ts, req)
	waitState(t, ts, st.ID, stateRunning, 30*time.Second)
	code, state := del(t, ts, st.ID)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", code)
	}
	if state != string(stateCanceling) && state != string(stateCanceled) {
		t.Fatalf("cancel state = %s", state)
	}
	fin := waitTerminal(t, ts, st.ID, 30*time.Second)
	if fin.State != string(stateCanceled) {
		t.Fatalf("sweep finished %s, want canceled", fin.State)
	}
}
