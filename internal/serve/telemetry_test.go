package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"sesa/internal/config"
	"sesa/internal/fleet"
	"sesa/internal/telemetry"
)

// telemetryOptions returns Options with a live metrics registry and a discard
// logger, the way sesa-serve wires them.
func telemetryOptions(o Options) Options {
	o.Telemetry = &telemetry.T{Log: telemetry.Discard(), Metrics: telemetry.NewRegistry()}
	return o
}

// scrapeSeries GETs /metrics and returns the set of series identities —
// "name{labels}" with the sample value stripped, since values (rates, byte
// counts, wall times) are not reproducible.
func scrapeSeries(t *testing.T, ts *httptest.Server) map[string]bool {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	series := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("/metrics line %q has no value", line)
		}
		series[line[:i]] = true
	}
	return series
}

// TestMetricsEndpoint drives a local-mode sweep to completion, resubmits it to
// hit the result cache, and asserts /metrics exposes the expected series
// names and label blocks. Values are normalized away — only identities are
// golden.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, telemetryOptions(Options{MaxWorkers: 2}))
	req := SweepRequest{
		Title: "metrics sweep",
		Jobs: []JobSpec{
			{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 42},
			{Profile: "fft", Model: "370-NoSpec", InstPerCore: 2000, Seed: 7},
		},
	}
	resp, st := post(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts, st.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("sweep finished %s, want done", fin.State)
	}
	// Resubmit: both jobs come out of the cache. The resubmission completes
	// synchronously with no progress tracker, so it never enters the
	// per-sweep window — the families keep reporting the executed sweep —
	// but the scrape-time cache counters move.
	resp2, _ := post(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached resubmit: HTTP %d, want 200", resp2.StatusCode)
	}

	series := scrapeSeries(t, ts)
	for _, want := range []string{
		"sesa_serve_queue_depth",
		"sesa_cache_entries",
		"sesa_cache_hits_total",
		"sesa_cache_misses_total",
		`sesa_sweep_jobs{sweep="` + st.ID + `"}`,
		`sesa_sweep_jobs_done{sweep="` + st.ID + `"}`,
		`sesa_sweep_jobs_failed{sweep="` + st.ID + `"}`,
		`sesa_sweep_jobs_per_second{sweep="` + st.ID + `"}`,
		`sesa_sweep_cycles_per_second{sweep="` + st.ID + `"}`,
	} {
		if !series[want] {
			var got []string
			for s := range series {
				got = append(got, s)
			}
			sort.Strings(got)
			t.Errorf("/metrics missing series %q; have:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

// TestMetricsWithoutTelemetry: a server built with no telemetry bundle still
// serves /metrics — an empty exposition, not a panic or a 404, so probes can
// stay unconditional.
func TestMetricsWithoutTelemetry(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(raw) != 0 {
		t.Errorf("/metrics without telemetry: HTTP %d, body %q; want empty 200", resp.StatusCode, raw)
	}
}

// chromeTrace is the slice of the Chrome trace-event schema the tests read.
type chromeTrace struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		Args struct {
			Sweep  string `json:"sweep"`
			Batch  string `json:"batch"`
			Worker string `json:"worker"`
			Index  *int   `json:"index"`
			Name   string `json:"name"`
		} `json:"args"`
	} `json:"traceEvents"`
}

// fetchTimeline downloads and decodes a sweep's Chrome-trace timeline.
func fetchTimeline(t *testing.T, ts *httptest.Server, id string) chromeTrace {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeline Content-Type = %q, want application/json", ct)
	}
	var doc chromeTrace
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline %s is not valid Chrome-trace JSON: %v\n%s", id, err, raw)
	}
	return doc
}

// TestFleetTimelineStitching runs a sweep through a coordinator plus two
// workers and checks the downloaded timeline: worker-side execution spans
// shipped over the wire are stitched between the coordinator's own lease and
// report spans, every job has an execution window, and the full
// admission→aggregate lifecycle is present.
func TestFleetTimelineStitching(t *testing.T) {
	fc := config.Fleet{BatchSize: 2, LeaseTTL: 2 * time.Second, MaxAttempts: 5}
	s, err := NewFleet(telemetryOptions(Options{MaxWorkers: 2, Fleet: &fc}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	const nWorkers = 2
	done := make(chan struct{}, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w := fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: ts.URL + "/v1/fleet",
			Name:        "w" + string(rune('A'+i)),
			Jobs:        1,
			Poll:        5 * time.Millisecond,
			Client:      ts.Client(),
		})
		go func() {
			_ = w.Run(ctx)
			done <- struct{}{}
		}()
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < nWorkers; i++ {
			<-done
		}
		ts.Close()
		s.Close()
	})

	req := fleetSweepRequest()
	resp, st := post(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts, st.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("fleet sweep finished %s, want done", fin.State)
	}

	doc := fetchTimeline(t, ts, st.ID)
	stages := make(map[string]int)
	workers := make(map[string]bool)
	jobSpans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < 0 || ev.Dur < 1 {
			t.Errorf("span %q has ts=%d dur=%d; want ts>=0, dur>=1µs", ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Args.Sweep != st.ID {
			t.Errorf("span %q carries sweep=%q, want %q", ev.Name, ev.Args.Sweep, st.ID)
		}
		if ev.Args.Index != nil {
			// Per-job execution window recorded worker-side and shipped over
			// the completion report; its event name is the job name.
			jobSpans++
			if ev.Cat != "worker" || ev.Args.Worker == "" {
				t.Errorf("job span %q not attributed to a worker: %+v", ev.Name, ev.Args)
			}
		} else {
			stages[ev.Name]++
		}
		if ev.Args.Worker != "" {
			workers[ev.Args.Worker] = true
		}
	}

	if jobSpans != len(req.Jobs) {
		t.Errorf("timeline has %d job spans, want %d (one execution window per job)",
			jobSpans, len(req.Jobs))
	}
	wantBatches := (len(req.Jobs) + fc.BatchSize - 1) / fc.BatchSize
	for stage, min := range map[string]int{
		telemetry.StageAdmission: 1,
		telemetry.StageQueue:     1,
		telemetry.StageShard:     1,
		telemetry.StageLease:     wantBatches,
		telemetry.StageExecute:   wantBatches,
		telemetry.StageReport:    wantBatches,
		telemetry.StageAggregate: 1,
	} {
		if stages[stage] < min {
			t.Errorf("timeline has %d %q spans, want >= %d (all stages: %v)",
				stages[stage], stage, min, stages)
		}
	}
	if len(workers) == 0 {
		t.Error("no span is attributed to any worker")
	}
	for w := range workers {
		if w != "wA" && w != "wB" {
			t.Errorf("span attributed to unknown worker %q", w)
		}
	}
}

// TestTimelineLocalSweep: local-mode sweeps record the same lifecycle with the
// daemon's own pool standing in as worker "local", so Perfetto renders both
// modes identically.
func TestTimelineLocalSweep(t *testing.T) {
	_, ts := newTestServer(t, telemetryOptions(Options{MaxWorkers: 2}))
	req := SweepRequest{
		Title: "local timeline sweep",
		Jobs: []JobSpec{
			{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 42},
			{Profile: "fft", Model: "370-NoSpec", InstPerCore: 2000, Seed: 7},
		},
	}
	_, st := post(t, ts, req)
	if fin := waitTerminal(t, ts, st.ID, 60*time.Second); fin.State != string(stateDone) {
		t.Fatalf("sweep finished %s, want done", fin.State)
	}
	doc := fetchTimeline(t, ts, st.ID)
	stages := make(map[string]bool)
	jobSpans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Args.Index != nil {
			jobSpans++
			if ev.Args.Worker != "local" {
				t.Errorf("local job span attributed to %q, want \"local\"", ev.Args.Worker)
			}
		} else {
			stages[ev.Name] = true
		}
	}
	if jobSpans != len(req.Jobs) {
		t.Errorf("local timeline has %d job spans, want %d", jobSpans, len(req.Jobs))
	}
	for _, stage := range []string{
		telemetry.StageAdmission, telemetry.StageQueue,
		telemetry.StageExecute, telemetry.StageAggregate,
	} {
		if !stages[stage] {
			t.Errorf("local timeline missing %q span (have %v)", stage, stages)
		}
	}
}

// TestTimelineAlwaysRecorded: span timelines are bounded, job-granular and
// cheap, so they are recorded even without a telemetry bundle — the endpoint
// 404s only for unknown sweeps.
func TestTimelineAlwaysRecorded(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkers: 1})
	resp, err := http.Get(ts.URL + "/v1/sweeps/sw-999999/timeline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep timeline: HTTP %d, want 404", resp.StatusCode)
	}

	req := SweepRequest{
		Title: "no telemetry bundle",
		Jobs:  []JobSpec{{Profile: "radix", Model: "x86", InstPerCore: 2000, Seed: 42}},
	}
	_, st := post(t, ts, req)
	waitTerminal(t, ts, st.ID, 60*time.Second)
	if doc := fetchTimeline(t, ts, st.ID); len(doc.TraceEvents) == 0 {
		t.Error("telemetry-less server recorded an empty timeline")
	}
}
