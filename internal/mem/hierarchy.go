package mem

import (
	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/noc"
	"sesa/internal/obs"
	"sesa/internal/sched"
)

// Stats accumulates memory-hierarchy counters.
type Stats struct {
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	L3Hits, L3Misses uint64
	MemAccesses      uint64
	InvalsSent       uint64
	L1Evictions      uint64
	L2Evictions      uint64
	L3Evictions      uint64
	DirEvictions     uint64
	Writebacks       uint64
	Upgrades         uint64
	OwnerForwards    uint64
	Prefetches       uint64
	StoresCompleted  uint64
	LoadsCompleted   uint64
	// InvisibleLoads counts LoadInvisible requests: reads served without
	// any directory, cache array or replacement state change (370-RCP).
	InvisibleLoads uint64
}

// Client is the hierarchy's per-core notification surface: the core-side
// half of every memory transaction, invoked when batched events fire. It
// replaces the old per-request callback closures — requests carry an opaque
// uint64 ref instead, so issuing a memory operation allocates nothing.
//
// OnLineRemoved is called when a line leaves the core's private caches: by a
// remote invalidation (eviction=false) or by a local capacity eviction
// (eviction=true). The core snoops its load queue on both, as the paper
// prescribes (Section IV, "Evictions"). The other three deliver completions
// for the ref passed to Load/Store/RMW; ref 0 requests no notification.
type Client interface {
	OnLineRemoved(lineAddr, when uint64, eviction bool)
	OnLoadDone(ref, val, when uint64)
	OnStoreWrote(ref, when uint64)
	OnRMWDone(ref, old, when uint64)
}

// Event kinds scheduled by the hierarchy on the shared queue. The hierarchy
// is the queue's only producer and, as the sched.Handler installed by the
// machine, its only consumer.
const (
	evInval       sched.Kind = iota // remove line from a core's private caches + snoop
	evEvictNotify                   // snoop only: the array already evicted the line
	evDowngrade                     // owner's private copies drop to Shared
	evLoadDone                      // read the image, deliver the load value
	evStoreWrote                    // write the image, deliver the insertion cycle
	evRMWDone                       // read-modify-write the image, deliver the old value
)

// Hierarchy is the full memory system: per-core private L1D+L2, shared L3,
// sparse directory, MESI with write-atomic invalidation, all timed through
// the NoC model and the event queue.
//
// The hierarchy carries real data values at 8-byte-word granularity in a
// single memory image that is updated at each store's memory-order insertion
// point (its completion); loads read the image at their perform cycle.
// Litmus outcomes therefore emerge from microarchitectural timing rather
// than from scripted results.
type Hierarchy struct {
	cfg   config.Memory
	cores int
	net   *noc.Network
	evq   *sched.EventQueue

	l1  []*Array
	l2  []*Array
	l3  *Array
	dir *Directory

	// image carries the memory-order data values at 8-byte-word
	// granularity: word-aligned address -> value, in a flat open-addressing
	// table presized from the trace footprint (see Reserve).
	image addrTable

	clients []Client

	// tracers holds the per-core observability sinks; entries are nil when
	// tracing is disabled.
	tracers []*obs.CoreTracer

	// hists holds the per-core latency-histogram sinks; entries are nil
	// when histograms are disabled.
	hists []*hist.Collector

	// busyUntil serializes coherence transactions per line, like a
	// blocking directory entry: line address -> busy horizon, in the same
	// flat table layout as image. now tracks the latest request time seen,
	// so lineBusy can distinguish live transactions from finished ones.
	busyUntil addrTable
	now       uint64

	// pref tracks the per-core stride prefetcher state.
	pref []strideState

	Stats Stats
}

type strideState struct {
	lastMiss uint64
	stride   int64
	streak   int
}

// NewHierarchy builds the memory system for the given core count.
func NewHierarchy(cores int, cfg config.Memory, net *noc.Network, evq *sched.EventQueue) *Hierarchy {
	h := &Hierarchy{
		cfg:       cfg,
		cores:     cores,
		net:       net,
		evq:       evq,
		l3:        NewHashedArray(config.Cache{SizeBytes: cfg.L3.SizeBytes * cfg.L3Banks, Ways: cfg.L3.Ways, LineBytes: cfg.L3.LineBytes, HitCycles: cfg.L3.HitCycles}),
		dir:       NewDirectory(cores, cfg.L2, cfg.DirectoryWays, cfg.DirectoryCoverage, cfg.L2.LineBytes),
		image:     newAddrTable(0),
		clients:   make([]Client, cores),
		tracers:   make([]*obs.CoreTracer, cores),
		hists:     make([]*hist.Collector, cores),
		busyUntil: newAddrTable(0),
		pref:      make([]strideState, cores),
	}
	h.l1 = make([]*Array, cores)
	h.l2 = make([]*Array, cores)
	for i := 0; i < cores; i++ {
		h.l1[i] = NewArray(cfg.L1D)
		h.l2[i] = NewArray(cfg.L2)
	}
	return h
}

// SetClient registers the core's notification surface.
func (h *Hierarchy) SetClient(core int, c Client) { h.clients[core] = c }

// HandleBatch fires a drained batch of due events in delivery order. The
// machine installs the hierarchy as the clock's handler; one drain hands the
// core side a slice view of everything due this cycle instead of one
// callback invocation per message.
func (h *Hierarchy) HandleBatch(evs []sched.Event) {
	for i := range evs {
		ev := &evs[i]
		core := int(ev.Core)
		switch ev.Kind {
		case evInval:
			h.l1[core].SetState(ev.Addr, Invalid)
			h.l2[core].SetState(ev.Addr, Invalid)
			h.recordSnoop(core, ev.Addr, ev.Cycle, ev.Evict)
			if c := h.clients[core]; c != nil {
				c.OnLineRemoved(ev.Addr, ev.Cycle, ev.Evict)
			}
		case evEvictNotify:
			h.recordSnoop(core, ev.Addr, ev.Cycle, true)
			if c := h.clients[core]; c != nil {
				c.OnLineRemoved(ev.Addr, ev.Cycle, true)
			}
		case evDowngrade:
			h.l1[core].SetState(ev.Addr, Shared)
			h.l2[core].SetState(ev.Addr, Shared)
		case evLoadDone:
			if ev.Ref != 0 {
				h.clients[core].OnLoadDone(ev.Ref, h.ReadImage(ev.Addr, ev.Size), ev.Cycle)
			}
		case evStoreWrote:
			h.WriteImage(ev.Addr, ev.Size, ev.Val)
			if ev.Ref != 0 {
				h.clients[core].OnStoreWrote(ev.Ref, ev.Cycle)
			}
		case evRMWDone:
			old := h.ReadImage(ev.Addr, ev.Size)
			h.WriteImage(ev.Addr, ev.Size, old+ev.Val)
			if ev.Ref != 0 {
				h.clients[core].OnRMWDone(ev.Ref, old, ev.Cycle)
			}
		}
	}
}

// AttachTracer sets the observability sink for one core's snoop events
// (nil disables it).
func (h *Hierarchy) AttachTracer(core int, t *obs.CoreTracer) { h.tracers[core] = t }

// AttachHists sets the latency-histogram sink for one core's loads (nil
// disables it).
func (h *Hierarchy) AttachHists(core int, c *hist.Collector) { h.hists[core] = c }

// recordSnoop logs the delivery of an invalidation or eviction to a core.
func (h *Hierarchy) recordSnoop(core int, lineAddr, when uint64, eviction bool) {
	if tr := h.tracers[core]; tr != nil {
		cause := obs.CauseInval
		if eviction {
			cause = obs.CauseEvict
		}
		tr.Record(obs.Event{Cycle: when, Kind: obs.KSnoop, Cause: cause,
			Key: obs.KeyNone, Addr: lineAddr})
	}
}

// LineAddr returns the line-aligned address containing addr.
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return h.l1[0].LineAddr(addr) }

// Reserve presizes the per-run address tables for a trace footprint of the
// given distinct word and line counts, so steady-state accesses never pay a
// mid-run rehash. The machine calls it once per installed program; the
// counts are hints (prefetches may touch a few lines beyond the trace) and
// the tables still grow if exceeded.
func (h *Hierarchy) Reserve(words, lines int) {
	h.image.reserve(words)
	h.busyUntil.reserve(lines)
}

// ---- data image -----------------------------------------------------------

func wordAddr(addr uint64) uint64 { return addr &^ 7 }

// ReadImage returns the current memory-order value of the size-byte location
// at addr.
func (h *Hierarchy) ReadImage(addr uint64, size uint8) uint64 {
	w := h.image.get(wordAddr(addr))
	if size == 0 || size >= 8 {
		return w
	}
	shift := (addr & 7) * 8
	mask := (uint64(1) << (uint64(size) * 8)) - 1
	return (w >> shift) & mask
}

// WriteImage writes val into the memory image immediately; used for
// initialization and by store completion.
func (h *Hierarchy) WriteImage(addr uint64, size uint8, val uint64) {
	wa := wordAddr(addr)
	if size == 0 || size >= 8 {
		h.image.put(wa, val)
		return
	}
	shift := (addr & 7) * 8
	mask := ((uint64(1) << (uint64(size) * 8)) - 1) << shift
	h.image.put(wa, (h.image.get(wa)&^mask)|((val<<shift)&mask))
}

// ---- latency building blocks ----------------------------------------------

func (h *Hierarchy) ctrl() uint64 { return uint64(h.net.Delay(noc.Control)) }
func (h *Hierarchy) data() uint64 { return uint64(h.net.Delay(noc.Data)) }

// lineBusy reports whether a coherence transaction on lineAddr is still in
// flight relative to the latest request time seen by the hierarchy.
func (h *Hierarchy) lineBusy(lineAddr uint64) bool {
	return h.busyUntil.get(lineAddr) > h.now
}

// lineBusyAt reports whether a transaction on lineAddr is in flight at t.
func (h *Hierarchy) lineBusyAt(lineAddr, t uint64) bool {
	return h.busyUntil.get(lineAddr) > t
}

// claimLine serializes a transaction on lineAddr starting no earlier than t;
// it returns the adjusted start time.
func (h *Hierarchy) claimLine(lineAddr, t uint64) uint64 {
	if b := h.busyUntil.get(lineAddr); b > t {
		t = b
	}
	return t
}

func (h *Hierarchy) releaseLine(lineAddr, done uint64) {
	h.busyUntil.put(lineAddr, done)
}

func (h *Hierarchy) advance(t uint64) {
	if t > h.now {
		h.now = t
	}
}

// ---- invalidations and evictions -------------------------------------------

// invalidateCore removes the line from core's private caches at cycle when
// and notifies the core's client.
func (h *Hierarchy) invalidateCore(core int, lineAddr, when uint64, eviction bool) {
	h.evq.Schedule(sched.Event{Cycle: when, Kind: evInval, Evict: eviction,
		Core: int32(core), Addr: lineAddr})
}

// notifyEviction tells the core's own LQ about a local eviction without
// touching cache state (the array already evicted the victim).
func (h *Hierarchy) notifyEviction(core int, lineAddr, when uint64) {
	h.Stats.L1Evictions++
	h.evq.Schedule(sched.Event{Cycle: when, Kind: evEvictNotify,
		Core: int32(core), Addr: lineAddr})
}

// fillPrivate inserts lineAddr into core's L2 and L1 with state s, handling
// eviction notifications at cycle when. The private hierarchy is
// non-inclusive (as in Skylake): an L2 victim still resident in the L1
// survives there, so L2 churn does not back-invalidate hot L1 lines; the
// directory presence is dropped only when the line has left both levels.
func (h *Hierarchy) fillPrivate(core int, lineAddr uint64, s State, when uint64) {
	if v, ok := h.l2[core].Insert(lineAddr, s); ok {
		h.Stats.L2Evictions++
		if !h.l1[core].Resident(v.LineAddr) {
			h.dropFromDirectory(core, v.LineAddr, v.Dirty)
		}
	}
	if v, ok := h.l1[core].Insert(lineAddr, s); ok {
		// The LQ must be snooped on L1 evictions: an eviction filters
		// out future invalidations for loads that performed against
		// this line (Section IV, "Evictions").
		if h.l2[core].Resident(v.LineAddr) {
			if v.Dirty {
				h.l2[core].SetState(v.LineAddr, Modified)
			}
		} else {
			h.dropFromDirectory(core, v.LineAddr, v.Dirty)
		}
		h.notifyEviction(core, v.LineAddr, when)
	}
}

// dropFromDirectory processes a non-silent private-cache eviction: the
// directory clears the core's presence and accounts a writeback for dirty
// data.
func (h *Hierarchy) dropFromDirectory(core int, lineAddr uint64, dirty bool) {
	e := h.dir.Lookup(lineAddr)
	if e == nil {
		return
	}
	if e.owner == core {
		e.owner = -1
		if dirty {
			h.Stats.Writebacks++
			e.presentL3 = true
			h.insertL3(lineAddr)
		}
	}
	e.sharers &^= 1 << uint(core)
	if e.owner == -1 && e.sharers == 0 && !e.presentL3 {
		h.dir.Remove(lineAddr)
	}
}

// insertL3 places the line in the L3 array, processing the victim.
func (h *Hierarchy) insertL3(lineAddr uint64) {
	if v, ok := h.l3.Insert(lineAddr, Shared); ok {
		h.Stats.L3Evictions++
		if ve := h.dir.Lookup(v.LineAddr); ve != nil {
			ve.presentL3 = false
			if ve.owner == -1 && ve.sharers == 0 {
				h.dir.Remove(v.LineAddr)
			}
		}
		if v.Dirty {
			h.Stats.Writebacks++
		}
	}
}

// evictDirEntry invalidates every holder of a victimized directory entry.
// The invalidations travel as control messages and snoop the remote LQs,
// reproducing the eviction-induced store-atomicity misspeculations the
// paper reports for cache-pressure-heavy applications.
func (h *Hierarchy) evictDirEntry(ev dirEntry, t uint64) {
	h.Stats.DirEvictions++
	if ev.owner >= 0 {
		h.Stats.InvalsSent++
		h.invalidateCore(ev.owner, ev.tag, t+h.ctrl(), false)
	}
	for c := 0; c < h.cores; c++ {
		if ev.sharers&(1<<uint(c)) != 0 {
			h.Stats.InvalsSent++
			h.invalidateCore(c, ev.tag, t+h.ctrl(), false)
		}
	}
	h.l3.SetState(ev.tag, Invalid)
}

// ---- load path --------------------------------------------------------------

// Load performs a data read for core at cycle t. The client's OnLoadDone
// runs at the perform cycle with the value read from the memory image at
// that cycle; ref 0 skips the notification (prefetch).
func (h *Hierarchy) Load(core int, addr uint64, size uint8, t uint64, ref uint64) {
	h.advance(t)
	when, lvl := h.loadLine(core, addr, t, false)
	h.Stats.LoadsCompleted++
	if hc := h.hists[core]; hc != nil {
		hc.Observe(lvl, when-t)
	}
	h.evq.Schedule(sched.Event{Cycle: when, Kind: evLoadDone, Size: size,
		Core: int32(core), Addr: addr, Ref: ref})
	h.maybePrefetch(core, addr, t)
}

// LoadInvisible performs a data read that leaves no trace in the coherence
// state: the reversible-coherence (370-RCP) path for loads that are still
// speculative at issue time. The data-available cycle is computed from the
// same latency model as Load — L1/L2 residence, owner forward, L3 hit, or
// memory — but nothing is allocated, filled, downgraded, evicted or
// prefetched, no directory entry records the reader, and the line's busy
// window is not extended. Because the core never becomes a sharer, a later
// conflicting store will not invalidate it; the core is responsible for
// value-validating the load at retirement instead. The client's OnLoadDone
// runs at the perform cycle with the value read from the memory image at
// that cycle, exactly as for Load.
func (h *Hierarchy) LoadInvisible(core int, addr uint64, size uint8, t uint64, ref uint64) {
	h.advance(t)
	h.Stats.InvisibleLoads++
	lineAddr := h.LineAddr(addr)
	l1lat := uint64(h.cfg.L1D.HitCycles)
	var when uint64
	lvl := hist.LoadL3
	switch {
	case h.l1[core].Lookup(lineAddr) != Invalid:
		// Reading a resident copy still defers to any in-flight
		// transaction on the line (claimLine reads the busy window
		// without extending it).
		when, lvl = h.claimLine(lineAddr, t+l1lat), hist.LoadL1
	case h.l2[core].Lookup(lineAddr) != Invalid:
		when, lvl = h.claimLine(lineAddr, t+l1lat+uint64(h.cfg.L2.HitCycles)), hist.LoadL2
	default:
		req := h.claimLine(lineAddr, t+l1lat+uint64(h.cfg.L2.HitCycles)+h.ctrl())
		e := h.dir.Lookup(lineAddr)
		switch {
		case e != nil && e.owner >= 0 && e.owner != core:
			// The owner supplies the data covertly: no downgrade, no
			// writeback, no sharer registration.
			when, lvl = req+h.ctrl()+h.data(), hist.LoadRemote
		case e != nil && e.presentL3 && h.l3.Lookup(lineAddr) != Invalid:
			when = req + uint64(h.cfg.L3.HitCycles) + h.data()
		default:
			when, lvl = req+uint64(h.cfg.L3.HitCycles)+uint64(h.cfg.MemCycles)+h.data(), hist.LoadMem
		}
	}
	h.Stats.LoadsCompleted++
	if hc := h.hists[core]; hc != nil {
		hc.Observe(lvl, when-t)
	}
	h.evq.Schedule(sched.Event{Cycle: when, Kind: evLoadDone, Size: size,
		Core: int32(core), Addr: addr, Ref: ref})
}

// loadLine obtains a readable (S/E/M) copy of addr's line for core and
// returns the cycle at which the data is available plus the service level
// that supplied it (the latency-histogram bucket). prefetch suppresses the
// stride-prefetcher trigger.
func (h *Hierarchy) loadLine(core int, addr uint64, t uint64, prefetch bool) (uint64, hist.Metric) {
	lineAddr := h.LineAddr(addr)
	l1lat := uint64(h.cfg.L1D.HitCycles)
	if h.l1[core].Lookup(lineAddr) != Invalid {
		h.Stats.L1Hits++
		// claimLine clamps to any in-flight transaction on the line
		// (e.g. an ownership prefetch whose data has not arrived yet).
		return h.claimLine(lineAddr, t+l1lat), hist.LoadL1
	}
	h.Stats.L1Misses++
	t2 := t + l1lat + uint64(h.cfg.L2.HitCycles)
	if s := h.l2[core].Lookup(lineAddr); s != Invalid {
		h.Stats.L2Hits++
		// Fill L1 from L2; L1 state mirrors L2's.
		if v, ok := h.l1[core].Insert(lineAddr, s); ok {
			if v.Dirty {
				h.l2[core].SetState(v.LineAddr, Modified)
			}
			h.notifyEviction(core, v.LineAddr, t2)
		}
		return h.claimLine(lineAddr, t2), hist.LoadL2
	}
	h.Stats.L2Misses++

	// Go to the L3/directory bank.
	req := t2 + h.ctrl()
	req = h.claimLine(lineAddr, req)

	e, ev, evicted := h.dir.Allocate(lineAddr, h.lineBusy)
	if evicted {
		h.evictDirEntry(ev, req)
	}

	var dataAt uint64
	lvl := hist.LoadL3
	grant := Shared
	switch {
	case e.owner >= 0 && e.owner != core:
		// Owner holds E/M: forward the request; the owner downgrades
		// to S and supplies the data.
		h.Stats.OwnerForwards++
		lvl = hist.LoadRemote
		owner := e.owner
		fwd := req + h.ctrl()
		h.evq.Schedule(sched.Event{Cycle: fwd, Kind: evDowngrade,
			Core: int32(owner), Addr: lineAddr})
		dataAt = fwd + h.data()
		h.Stats.Writebacks++
		e.presentL3 = true
		h.insertL3(lineAddr)
		e.sharers |= 1 << uint(owner)
		e.owner = -1
	case e.presentL3 && h.l3.Lookup(lineAddr) != Invalid:
		h.Stats.L3Hits++
		dataAt = req + uint64(h.cfg.L3.HitCycles) + h.data()
	default:
		h.Stats.L3Misses++
		h.Stats.MemAccesses++
		lvl = hist.LoadMem
		dataAt = req + uint64(h.cfg.L3.HitCycles) + uint64(h.cfg.MemCycles) + h.data()
		e.presentL3 = true
		h.insertL3(lineAddr)
	}
	if e.sharers == 0 && e.owner == -1 {
		grant = Exclusive
		e.owner = core
	} else {
		e.sharers |= 1 << uint(core)
	}
	h.releaseLine(lineAddr, dataAt)
	h.fillPrivate(core, lineAddr, grant, dataAt)
	return dataAt, lvl
}

// maybePrefetch runs the per-core stride detector and issues a next-stride
// line fetch on a stable stride (Table III: stride L1 prefetcher).
func (h *Hierarchy) maybePrefetch(core int, addr uint64, t uint64) {
	if !h.cfg.StridePrefetch {
		return
	}
	p := &h.pref[core]
	lineAddr := h.LineAddr(addr)
	st := int64(lineAddr) - int64(p.lastMiss)
	if st != 0 && st == p.stride {
		p.streak++
	} else {
		p.streak = 0
	}
	p.stride = st
	p.lastMiss = lineAddr
	if p.streak >= 2 {
		next := uint64(int64(lineAddr) + st)
		if !h.l1[core].Resident(next) && !h.lineBusy(next) {
			h.Stats.Prefetches++
			// Prefetches do not record latency: they are not on any
			// load's critical path.
			h.loadLine(core, next, t, true)
		}
	}
}

// ---- store path -------------------------------------------------------------

// Store performs the memory-order insertion of a store draining from the
// store buffer: it obtains M permission (invalidating all other copies and
// waiting for their acknowledgements: the protocol is write-atomic), writes
// the memory image at the completion cycle, and runs done. notBefore lets
// the core pipeline its SB drain while keeping TSO's in-order insertion: a
// store never completes before its program-order predecessor. The insertion
// cycle is returned; the client's OnStoreWrote runs at that cycle after the
// image write (ref 0 skips the notification).
func (h *Hierarchy) Store(core int, addr uint64, size uint8, val uint64, t, notBefore uint64, ref uint64) uint64 {
	h.advance(t)
	when := h.storeLine(core, addr, t, notBefore)
	h.Stats.StoresCompleted++
	h.evq.Schedule(sched.Event{Cycle: when, Kind: evStoreWrote, Size: size,
		Core: int32(core), Addr: addr, Val: val, Ref: ref})
	return when
}

// RMW atomically reads the old value and writes old+add at the completion
// cycle; the client's OnRMWDone then runs with the old value (ref 0 skips
// the notification). The caller is responsible for TSO atomic semantics (SB
// drain).
func (h *Hierarchy) RMW(core int, addr uint64, size uint8, add uint64, t uint64, ref uint64) {
	h.advance(t)
	when := h.storeLine(core, addr, t, 0)
	h.Stats.StoresCompleted++
	h.evq.Schedule(sched.Event{Cycle: when, Kind: evRMWDone, Size: size,
		Core: int32(core), Addr: addr, Val: add, Ref: ref})
}

// PrefetchOwner issues a read-for-ownership prefetch for a store that has
// resolved its address, as x86 cores do at store execution: by the time the
// store drains from the SB, the line is usually already in M state and the
// drain is an L1 hit. Without it, a serial store-buffer drain would expose
// every store miss latency in sequence.
func (h *Hierarchy) PrefetchOwner(core int, addr uint64, t uint64) {
	if !h.cfg.RFOPrefetch {
		return
	}
	h.advance(t)
	lineAddr := h.LineAddr(addr)
	if s := h.l1[core].Peek(lineAddr); s == Modified || s == Exclusive {
		return
	}
	if h.lineBusy(lineAddr) {
		return // a transaction is already in flight; the drain will wait
	}
	h.Stats.Prefetches++
	h.storeLine(core, addr, t, 0)
}

// storeLine obtains Modified permission for core on addr's line and returns
// the cycle at which the write is globally performed, never earlier than
// notBefore (in-order SB insertion).
// storeCommitCycles is the SB-to-L1 commit latency on an owned line (the
// L1 write takes the full array access).
const storeCommitCycles = 4

func (h *Hierarchy) storeLine(core int, addr uint64, t, notBefore uint64) uint64 {
	lineAddr := h.LineAddr(addr)
	l1lat := uint64(h.cfg.L1D.HitCycles)
	// The owning-state fast paths are valid only when no transaction is
	// in flight on the line: a concurrent reader may already be a sharer
	// in directory state (with our downgrade still travelling), in which
	// case the write must go through the directory and invalidate it —
	// otherwise that core would keep a stale copy past our insertion,
	// silently breaking write atomicity.
	clamp := func(done uint64) uint64 {
		if done < notBefore {
			done = notBefore
		}
		return done
	}
	if !h.lineBusyAt(lineAddr, t) {
		switch h.l1[core].Lookup(lineAddr) {
		case Modified:
			h.Stats.L1Hits++
			return h.sealWrite(lineAddr, clamp(t+storeCommitCycles))
		case Exclusive:
			// Silent E->M upgrade.
			h.Stats.L1Hits++
			h.l1[core].SetState(lineAddr, Modified)
			h.l2[core].SetState(lineAddr, Modified)
			return h.sealWrite(lineAddr, clamp(t+storeCommitCycles))
		}
		t2 := t + l1lat + uint64(h.cfg.L2.HitCycles)
		if s := h.l2[core].Lookup(lineAddr); s == Modified || s == Exclusive {
			h.Stats.L1Misses++
			h.Stats.L2Hits++
			h.l2[core].SetState(lineAddr, Modified)
			if v, ok := h.l1[core].Insert(lineAddr, Modified); ok {
				if v.Dirty {
					h.l2[core].SetState(v.LineAddr, Modified)
				}
				h.notifyEviction(core, v.LineAddr, t2)
			}
			return h.sealWrite(lineAddr, clamp(t2))
		}
	} else if h.l1[core].Peek(lineAddr) == Modified || h.l2[core].Peek(lineAddr) == Modified ||
		h.l1[core].Peek(lineAddr) == Exclusive || h.l2[core].Peek(lineAddr) == Exclusive {
		h.Stats.L1Hits++ // owned but a transaction is in flight: resolve at the directory
	} else {
		h.Stats.L1Misses++
	}
	t2 := t + l1lat + uint64(h.cfg.L2.HitCycles)
	// Upgrade or miss: go to the directory.
	if h.l2[core].Peek(lineAddr) == Shared {
		h.Stats.Upgrades++
	} else if h.l2[core].Peek(lineAddr) == Invalid {
		h.Stats.L2Misses++
	}
	req := t2 + h.ctrl()
	req = h.claimLine(lineAddr, req)

	e, ev, evicted := h.dir.Allocate(lineAddr, h.lineBusy)
	if evicted {
		h.evictDirEntry(ev, req)
	}

	// Invalidate every other holder; the write completes only after all
	// acks (write atomicity). On the fully connected NoC invalidations
	// travel in parallel, so the ack time is one control round trip.
	ackAt := req
	sentInval := false
	if e.owner >= 0 && e.owner != core {
		h.Stats.InvalsSent++
		h.invalidateCore(e.owner, lineAddr, req+h.ctrl(), false)
		sentInval = true
		// Dirty data is forwarded to the requester.
		h.Stats.OwnerForwards++
	}
	for c := 0; c < h.cores; c++ {
		if c != core && e.sharers&(1<<uint(c)) != 0 {
			h.Stats.InvalsSent++
			h.invalidateCore(c, lineAddr, req+h.ctrl(), false)
			sentInval = true
		}
	}
	if sentInval {
		ackAt = req + 2*h.ctrl()
	}

	// Data arrival, overlapped with invalidations.
	var dataAt uint64
	hadCopy := h.l2[core].Peek(lineAddr) != Invalid
	switch {
	case hadCopy:
		dataAt = req // upgrade: no data needed
	case e.owner >= 0 && e.owner != core:
		dataAt = req + h.ctrl() + h.data()
	case e.presentL3 && h.l3.Lookup(lineAddr) != Invalid:
		h.Stats.L3Hits++
		dataAt = req + uint64(h.cfg.L3.HitCycles) + h.data()
	default:
		h.Stats.L3Misses++
		h.Stats.MemAccesses++
		dataAt = req + uint64(h.cfg.L3.HitCycles) + uint64(h.cfg.MemCycles) + h.data()
	}

	done := dataAt
	if ackAt > done {
		done = ackAt
	}
	done = clamp(done)
	e.owner = core
	e.sharers = 0
	e.presentL3 = false
	h.l3.SetState(lineAddr, Invalid)
	h.releaseLine(lineAddr, done)
	h.fillPrivate(core, lineAddr, Modified, done)
	return done
}

// sealWrite extends the line's busy window to the write's insertion cycle
// so that later same-line transactions serialize after it.
func (h *Hierarchy) sealWrite(lineAddr, done uint64) uint64 {
	if h.busyUntil.get(lineAddr) < done {
		h.busyUntil.put(lineAddr, done)
	}
	return done
}
