package mem

import (
	"math/rand"
	"testing"
)

func TestAddrTableAgainstMap(t *testing.T) {
	// Keys shaped like the simulator's: huge sparse word/line addresses.
	rng := rand.New(rand.NewSource(1))
	tab := newAddrTable(0)
	ref := map[uint64]uint64{}
	keys := make([]uint64, 0, 4096)
	for i := 0; i < 20000; i++ {
		var k uint64
		if len(keys) > 0 && rng.Intn(3) > 0 {
			k = keys[rng.Intn(len(keys))] // overwrite an existing key
		} else {
			k = (uint64(rng.Intn(5)+1)<<32 | uint64(rng.Intn(1<<20))) &^ 7
			keys = append(keys, k)
		}
		v := rng.Uint64()
		tab.put(k, v)
		ref[k] = v
		if got := tab.get(k); got != v {
			t.Fatalf("get(%#x) = %d right after put %d", k, got, v)
		}
	}
	for k, v := range ref {
		if got := tab.get(k); got != v {
			t.Errorf("get(%#x) = %d, want %d", k, got, v)
		}
	}
	// Absent keys read as zero, like a Go map.
	if tab.get(0xdead000) != 0 {
		t.Error("absent key must read as zero")
	}
}

func TestAddrTableZeroKey(t *testing.T) {
	tab := newAddrTable(8)
	if tab.get(0) != 0 {
		t.Fatal("unset zero key must read as zero")
	}
	tab.put(0, 42)
	if tab.get(0) != 42 {
		t.Fatal("zero key must round-trip")
	}
	tab.put(0, 7)
	if tab.get(0) != 7 {
		t.Fatal("zero key must overwrite")
	}
}

func TestAddrTableReserve(t *testing.T) {
	tab := newAddrTable(0)
	tab.reserve(10000)
	capBefore := len(tab.keys)
	for i := uint64(1); i <= 10000; i++ {
		tab.put(i*8, i)
	}
	if len(tab.keys) != capBefore {
		t.Errorf("reserved table rehashed: %d -> %d slots", capBefore, len(tab.keys))
	}
	for i := uint64(1); i <= 10000; i++ {
		if tab.get(i*8) != i {
			t.Fatalf("lost key %d", i*8)
		}
	}
}
