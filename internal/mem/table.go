package mem

// addrTable maps sparse simulated addresses (word- or line-aligned) to
// uint64 values: an insert-only open-addressing hash table with linear
// probing, replacing the Go maps on the hierarchy's hot paths. Lookups are
// one multiply-shift hash and a short probe over two parallel arrays —
// no per-bucket pointers, no hash interface calls. Missing keys read as
// zero, matching the map semantics both users rely on (an untouched word's
// image value, an idle line's busy horizon). The table is never iterated,
// so probe order can't leak into simulation results.
type addrTable struct {
	keys []uint64
	vals []uint64
	sh   uint // 64 - log2(len(keys)): maps a hash onto the index space
	n    int  // occupied slots, excluding the zero-key slot
	// Address zero cannot use the in-array encoding (key 0 marks an empty
	// slot), so it gets a dedicated slot.
	zeroVal uint64
}

// tableHash spreads an aligned address over the table's power-of-two index
// space: fibonacci multiplicative hashing, taking the high bits.
func tableHash(key uint64, shift uint) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> shift
}

// newAddrTable returns a table presized for at least hint keys.
func newAddrTable(hint int) addrTable {
	var t addrTable
	capacity := 64
	for capacity*3 < hint*4 { // keep load factor under 3/4
		capacity *= 2
	}
	t.init(capacity)
	return t
}

func (t *addrTable) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([]uint64, capacity)
	t.sh = 64
	for c := capacity; c > 1; c >>= 1 {
		t.sh--
	}
	t.n = 0
}

// get returns the value stored for key, or zero when absent.
func (t *addrTable) get(key uint64) uint64 {
	if key == 0 {
		return t.zeroVal
	}
	mask := uint64(len(t.keys) - 1)
	for i := tableHash(key, t.sh); ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			return t.vals[i]
		}
		if k == 0 {
			return 0
		}
	}
}

// put inserts or overwrites key's value.
func (t *addrTable) put(key, val uint64) {
	if key == 0 {
		t.zeroVal = val
		return
	}
	if (t.n+1)*4 > len(t.keys)*3 {
		t.grow(len(t.keys) * 2)
	}
	t.insert(key, val)
}

func (t *addrTable) insert(key, val uint64) {
	mask := uint64(len(t.keys) - 1)
	for i := tableHash(key, t.sh); ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			t.vals[i] = val
			return
		}
		if k == 0 {
			t.keys[i] = key
			t.vals[i] = val
			t.n++
			return
		}
	}
}

// grow rehashes into a table of the given power-of-two capacity.
func (t *addrTable) grow(capacity int) {
	oldKeys, oldVals := t.keys, t.vals
	t.init(capacity)
	for i, k := range oldKeys {
		if k != 0 {
			t.insert(k, oldVals[i])
		}
	}
}

// reserve grows the table so that count further keys fit without rehashing.
func (t *addrTable) reserve(count int) {
	need := t.n + count
	capacity := len(t.keys)
	for capacity*3 < need*4 {
		capacity *= 2
	}
	if capacity > len(t.keys) {
		t.grow(capacity)
	}
}
