package mem

import (
	"testing"

	"sesa/internal/config"
	"sesa/internal/noc"
	"sesa/internal/sched"
)

// TestOwnerForwarding: core 0 owns a dirty line; core 1's load is serviced
// by an owner-to-requester forward and the owner downgrades to Shared.
func TestOwnerForwarding(t *testing.T) {
	h, evq := newTestHierarchy(2)
	w := h.Store(0, 0x5000, 8, 77, 0, 0, 0)
	runUntil(h, evq, 1_000_000)
	if w == 0 {
		t.Fatal("store never completed")
	}
	fwdBefore := h.Stats.OwnerForwards

	var val, when uint64
	h.SetClient(1, &testClient{load: func(ref, v, wh uint64) { val, when = v, wh }})
	h.Load(1, 0x5000, 8, w+1, 1)
	runUntil(h, evq, w+1_000_000)
	if val != 77 {
		t.Fatalf("forwarded value = %d, want 77", val)
	}
	if h.Stats.OwnerForwards == fwdBefore {
		t.Error("expected an owner forward")
	}
	runUntil(h, evq, when+1_000)
	if st := h.l1[0].Peek(h.LineAddr(0x5000)); st != Shared {
		t.Errorf("owner state after forward = %v, want S", st)
	}
}

// TestUpgradeInvalidatesAllSharers: three sharers, one writer; both other
// cores must receive invalidations before the write inserts.
func TestUpgradeInvalidatesAllSharers(t *testing.T) {
	h, evq := newTestHierarchy(4)
	var done uint64
	loadDone := &testClient{load: func(ref, v, w uint64) { done = w }}
	for c := 0; c < 3; c++ {
		h.SetClient(c, loadDone)
		h.Load(c, 0x6000, 8, uint64(c)*2000, 1)
		runUntil(h, evq, 1_000_000)
	}
	invals := map[int]uint64{}
	for c := 0; c < 4; c++ {
		c := c
		h.SetClient(c, &testClient{removed: func(line, cycle uint64, ev bool) {
			if line == h.LineAddr(0x6000) && !ev {
				invals[c] = cycle
			}
		}})
	}
	w := h.Store(3, 0x6000, 8, 5, done+10, 0, 0)
	runUntil(h, evq, done+1_000_000)
	if w == 0 {
		t.Fatal("store never completed")
	}
	for c := 0; c < 3; c++ {
		at, ok := invals[c]
		if !ok {
			t.Errorf("sharer %d never invalidated", c)
			continue
		}
		if at > w {
			t.Errorf("sharer %d invalidated at %d, after the write inserted at %d", c, at, w)
		}
	}
	if _, ok := invals[3]; ok {
		t.Error("the writer must not invalidate itself")
	}
}

// TestDirectoryEvictionBackInvalidates: flooding the directory with a huge
// footprint eventually victimizes an entry whose owner still caches the
// line; the owner must be invalidated (the 505.mcf mechanism).
func TestDirectoryEvictionBackInvalidates(t *testing.T) {
	cfg := config.Skylake(2, config.X86)
	cfg.Mem.DirectoryCoverage = 0.01 // tiny sparse directory
	cfg.Mem.StridePrefetch = false
	evq := sched.NewEventQueue()
	h := NewHierarchy(2, cfg.Mem, noc.New(cfg.NoC, 0, 1), evq)

	victim := false
	var when uint64
	h.SetClient(0, &testClient{
		removed: func(line, cycle uint64, ev bool) {
			if !ev {
				victim = true
			}
		},
		load: func(ref, v, w uint64) { when = w },
	})
	h.Load(0, 0x9000, 8, 0, 1)
	runUntil(h, evq, 1_000_000)
	// Core 1 floods the directory.
	for i := uint64(0); i < 4096; i++ {
		h.Load(1, 0x100000+i*64, 8, when+i, 0)
		runUntil(h, evq, when+i+1_000_000)
	}
	if h.Stats.DirEvictions == 0 {
		t.Fatal("directory never evicted despite the flood")
	}
	if !victim {
		t.Error("core 0 was never back-invalidated by a directory eviction")
	}
}
