package mem

import "sesa/internal/config"

// dirEntry tracks the coherence state of one line across the private cache
// hierarchy: which cores hold it and whether one holds it exclusively.
type dirEntry struct {
	tag       uint64
	valid     bool
	owner     int    // core holding E/M, or -1
	sharers   uint64 // bitmask of cores holding S
	lru       uint64
	presentL3 bool // whether the data is also cached in the L3
}

// Directory is the sparse, set-associative full-map directory (Table III: 8
// ways, 200% L2 coverage, 8 banks). A directory eviction invalidates every
// cached copy of the line, which is one source of the eviction-induced
// squashes the paper observes on 505.mcf.
type Directory struct {
	sets      [][]dirEntry
	ways      int
	setMask   uint64
	lineShift uint
	setBits   uint
	stamp     uint64
}

// NewDirectory sizes the directory to cover coverage × the aggregate L2
// capacity of cores, with the given associativity.
func NewDirectory(cores int, l2 config.Cache, ways int, coverage float64, lineBytes int) *Directory {
	linesCovered := int(coverage * float64(cores*l2.SizeBytes/lineBytes))
	sets := nextPow2(linesCovered / ways)
	if sets < 1 {
		sets = 1
	}
	d := &Directory{
		ways:      ways,
		setMask:   uint64(sets - 1),
		lineShift: log2(uint64(lineBytes)),
		setBits:   log2(uint64(sets)),
	}
	d.sets = make([][]dirEntry, sets)
	backing := make([]dirEntry, sets*ways)
	for i := range d.sets {
		d.sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return d
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// setOf hash-indexes like a shared LLC so power-of-two-spaced regions
// spread across sets.
func (d *Directory) setOf(lineAddr uint64) []dirEntry {
	return d.sets[hashIndex(lineAddr>>d.lineShift, d.setBits)&d.setMask]
}

// Lookup finds the entry for lineAddr, touching LRU. It returns nil on miss.
func (d *Directory) Lookup(lineAddr uint64) *dirEntry {
	set := d.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			d.stamp++
			set[i].lru = d.stamp
			return &set[i]
		}
	}
	return nil
}

// Allocate returns the entry for lineAddr, allocating (and possibly
// evicting) as needed. The evicted entry, if any, is returned by value so
// the caller can invalidate its sharers. Entries whose line isBusy (an
// ongoing coherence transaction) are skipped as victims when possible,
// mimicking a blocking directory that cannot victimize a transient entry.
func (d *Directory) Allocate(lineAddr uint64, isBusy func(uint64) bool) (e *dirEntry, evicted dirEntry, wasEvicted bool) {
	if e := d.Lookup(lineAddr); e != nil {
		return e, dirEntry{}, false
	}
	set := d.setOf(lineAddr)
	d.stamp++
	for i := range set {
		if !set[i].valid {
			set[i] = dirEntry{tag: lineAddr, valid: true, owner: -1, lru: d.stamp}
			return &set[i], dirEntry{}, false
		}
	}
	// Victim preference: entries with no live private copy first (their
	// eviction sends no back-invalidations), then LRU among the rest; a
	// line with an in-flight transaction is victimized only as a last
	// resort.
	vi := -1
	bestClass := 3
	for i := 0; i < len(set); i++ {
		class := 1
		if set[i].owner == -1 && set[i].sharers == 0 {
			class = 0
		}
		if isBusy != nil && isBusy(set[i].tag) {
			class = 2
		}
		if class < bestClass || (class == bestClass && vi >= 0 && set[i].lru < set[vi].lru) || vi < 0 {
			if class <= bestClass {
				vi = i
				bestClass = class
			}
		}
	}
	ev := set[vi]
	set[vi] = dirEntry{tag: lineAddr, valid: true, owner: -1, lru: d.stamp}
	return &set[vi], ev, true
}

// Remove drops the entry for lineAddr if present.
func (d *Directory) Remove(lineAddr uint64) {
	set := d.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i] = dirEntry{}
			return
		}
	}
}
