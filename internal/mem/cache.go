// Package mem implements the memory hierarchy of Table III: private L1D and
// L2 caches per core, a shared banked L3, and a sparse directory running an
// invalidation-based MESI protocol that is write-atomic — a store is
// acknowledged only after all invalidations have been performed (Section
// II-E), which is the assumption under which Processor Consistency behaviours
// cannot arise.
package mem

import (
	"fmt"

	"sesa/internal/config"
)

// State is a MESI cache-line state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

var stateNames = [...]string{"I", "S", "E", "M"}

// String returns the one-letter MESI name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// line is one cache-array entry.
type line struct {
	tag   uint64
	state State
	dirty bool
	// lru is a monotonically increasing use stamp; the smallest stamp in
	// a set is the LRU victim.
	lru uint64
}

// Array is a set-associative cache array with LRU replacement. Tags are full
// line addresses shifted by the line-offset bits; the array stores no data
// (values live in the hierarchy's memory image, read at memory-order
// insertion points).
type Array struct {
	sets      [][]line
	ways      int
	setMask   uint64
	lineShift uint
	setBits   uint
	hashed    bool
	stamp     uint64
}

// NewArray builds an array from the cache geometry, with straight set
// indexing as in L1/L2 caches.
func NewArray(c config.Cache) *Array {
	sets := c.Sets()
	a := &Array{
		ways:      c.Ways,
		setMask:   uint64(sets - 1),
		lineShift: log2(uint64(c.LineBytes)),
		setBits:   log2(uint64(sets)),
	}
	a.sets = make([][]line, sets)
	backing := make([]line, sets*c.Ways)
	for i := range a.sets {
		a.sets[i], backing = backing[:c.Ways:c.Ways], backing[c.Ways:]
	}
	return a
}

// NewHashedArray builds an array whose set index folds in higher address
// bits, as shared LLCs do, so that large power-of-two-spaced regions do not
// alias into the same sets.
func NewHashedArray(c config.Cache) *Array {
	a := NewArray(c)
	a.hashed = true
	return a
}

func log2(v uint64) uint {
	var s uint
	for (1 << s) < v {
		s++
	}
	return s
}

// LineAddr returns the line-aligned address containing addr.
func (a *Array) LineAddr(addr uint64) uint64 {
	return addr &^ ((1 << a.lineShift) - 1)
}

func (a *Array) setOf(lineAddr uint64) []line {
	idx := lineAddr >> a.lineShift
	if a.hashed {
		idx = hashIndex(idx, a.setBits)
	}
	return a.sets[idx&a.setMask]
}

// hashIndex XOR-folds the line-number bits above the set index into it.
func hashIndex(lineNum uint64, setBits uint) uint64 {
	if setBits == 0 {
		return 0
	}
	h := lineNum
	for v := lineNum >> setBits; v != 0; v >>= setBits {
		h ^= v
	}
	return h
}

// Lookup returns the state of the line containing addr, touching LRU on hit.
// It returns Invalid on miss.
func (a *Array) Lookup(lineAddr uint64) State {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			a.stamp++
			set[i].lru = a.stamp
			return set[i].state
		}
	}
	return Invalid
}

// Peek returns the state without touching LRU.
func (a *Array) Peek(lineAddr uint64) State {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			return set[i].state
		}
	}
	return Invalid
}

// SetState updates the state of a resident line; it is a no-op if the line
// is not resident. Setting Invalid removes the line.
func (a *Array) SetState(lineAddr uint64, s State) {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			if s == Invalid {
				set[i] = line{}
				return
			}
			set[i].state = s
			if s == Modified {
				set[i].dirty = true
			}
			return
		}
	}
}

// Victim describes a line evicted by Insert.
type Victim struct {
	LineAddr uint64
	State    State
	Dirty    bool
}

// Insert places lineAddr with state s, evicting the LRU way if the set is
// full. It reports the victim, if any. Inserting over an already-resident
// line just updates its state.
func (a *Array) Insert(lineAddr uint64, s State) (Victim, bool) {
	set := a.setOf(lineAddr)
	a.stamp++
	// Already resident: update in place.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].state = s
			set[i].lru = a.stamp
			if s == Modified {
				set[i].dirty = true
			}
			return Victim{}, false
		}
	}
	// Free way.
	for i := range set {
		if set[i].state == Invalid {
			set[i] = line{tag: lineAddr, state: s, lru: a.stamp, dirty: s == Modified}
			return Victim{}, false
		}
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	v := Victim{LineAddr: set[vi].tag, State: set[vi].state, Dirty: set[vi].dirty}
	set[vi] = line{tag: lineAddr, state: s, lru: a.stamp, dirty: s == Modified}
	return v, true
}

// Resident reports whether the line is present in any valid state.
func (a *Array) Resident(lineAddr uint64) bool { return a.Peek(lineAddr) != Invalid }
