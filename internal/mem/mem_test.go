package mem

import (
	"testing"
	"testing/quick"

	"sesa/internal/config"
	"sesa/internal/noc"
	"sesa/internal/sched"
)

func testCache() config.Cache {
	return config.Cache{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 4}
}

func TestArrayInsertLookupEvict(t *testing.T) {
	a := NewArray(testCache()) // 8 sets, 2 ways
	line0 := uint64(0x0000)
	line8 := uint64(0x0000 + 8*64) // same set as line0
	line16 := uint64(0x0000 + 16*64)

	if _, ev := a.Insert(line0, Shared); ev {
		t.Fatal("no eviction expected on empty set")
	}
	if _, ev := a.Insert(line8, Exclusive); ev {
		t.Fatal("two ways available")
	}
	if a.Lookup(line0) != Shared || a.Lookup(line8) != Exclusive {
		t.Fatal("lookups disagree with inserts")
	}
	// line16 maps to the same set; LRU is line0 (touched before line8...
	// but Lookup refreshed both; touch line8 again so line0 is LRU).
	a.Lookup(line8)
	v, ev := a.Insert(line16, Modified)
	if !ev || v.LineAddr != line0 {
		t.Fatalf("expected eviction of %#x, got %+v ev=%v", line0, v, ev)
	}
	if a.Resident(line0) {
		t.Error("evicted line still resident")
	}
}

func TestArraySetStateAndDirty(t *testing.T) {
	a := NewArray(testCache())
	line := uint64(0x40)
	a.Insert(line, Exclusive)
	a.SetState(line, Modified)
	if a.Peek(line) != Modified {
		t.Fatal("state not updated")
	}
	// Evict it: the victim must be dirty.
	same := func(i uint64) uint64 { return line + i*8*64 }
	a.Insert(same(1), Shared)
	v, ev := a.Insert(same(2), Shared)
	if !ev || v.LineAddr != line || !v.Dirty {
		t.Errorf("expected dirty eviction of %#x, got %+v", line, v)
	}
	a.SetState(same(1), Invalid)
	if a.Resident(same(1)) {
		t.Error("SetState(Invalid) should remove the line")
	}
}

func TestHashedArraySpreadsAliasedRegions(t *testing.T) {
	// Addresses spaced by large powers of two alias to one set in a
	// straight-indexed array but spread in a hashed one.
	straight := NewArray(config.Cache{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, HitCycles: 1})
	hashed := NewHashedArray(config.Cache{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, HitCycles: 1})
	evS, evH := 0, 0
	for i := uint64(0); i < 64; i++ {
		addr := i << 26 // 64 MiB apart: identical low bits
		if _, ev := straight.Insert(addr, Shared); ev {
			evS++
		}
		if _, ev := hashed.Insert(addr, Shared); ev {
			evH++
		}
	}
	if evS == 0 {
		t.Error("straight indexing should thrash on power-of-two strides")
	}
	if evH != 0 {
		t.Errorf("hashed indexing should spread these lines, got %d evictions", evH)
	}
}

func TestDirectorySharersAndEviction(t *testing.T) {
	d := NewDirectory(4, config.Cache{SizeBytes: 4 << 10, Ways: 2, LineBytes: 64}, 2, 0.1, 64)
	e, _, ev := d.Allocate(0x1000, nil)
	if ev {
		t.Fatal("first allocation should not evict")
	}
	e.owner = 2
	if got := d.Lookup(0x1000); got == nil || got.owner != 2 {
		t.Fatal("lookup lost the entry")
	}
	d.Remove(0x1000)
	if d.Lookup(0x1000) != nil {
		t.Fatal("removed entry still present")
	}
}

func TestDirectoryVictimSkipsBusyLines(t *testing.T) {
	d := NewDirectory(1, config.Cache{SizeBytes: 128, Ways: 1, LineBytes: 64}, 2, 1, 64)
	// Force a tiny directory and fill one set.
	var lines []uint64
	for i := uint64(0); len(lines) < 3; i++ {
		lines = append(lines, i*64)
	}
	a, _, _ := d.Allocate(lines[0], nil)
	_ = a
	// Find two more lines in the same set.
	set0 := d.setOf(lines[0])
	var sameSet []uint64
	for i := uint64(1); len(sameSet) < 2; i++ {
		if &d.setOf(i * 64)[0] == &set0[0] {
			sameSet = append(sameSet, i*64)
		}
	}
	d.Allocate(sameSet[0], nil)
	// Now the set is full (2 ways). Allocating a third with the LRU
	// marked busy must evict the other entry.
	busy := func(l uint64) bool { return l == lines[0] }
	_, ev, wasEv := d.Allocate(sameSet[1], busy)
	if !wasEv {
		t.Fatal("expected an eviction")
	}
	if ev.tag == lines[0] {
		t.Error("victim selection chose a busy line despite alternatives")
	}
}

func newTestHierarchy(cores int) (*Hierarchy, *sched.EventQueue) {
	cfg := config.Skylake(cores, config.X86)
	evq := sched.NewEventQueue()
	net := noc.New(cfg.NoC, 0, 1)
	return NewHierarchy(cores, cfg.Mem, net, evq), evq
}

// testClient adapts per-test closures to the Client interface; nil fields
// ignore that notification.
type testClient struct {
	removed func(line, when uint64, eviction bool)
	load    func(ref, val, when uint64)
	store   func(ref, when uint64)
	rmw     func(ref, old, when uint64)
}

func (c *testClient) OnLineRemoved(line, when uint64, ev bool) {
	if c.removed != nil {
		c.removed(line, when, ev)
	}
}

func (c *testClient) OnLoadDone(ref, val, when uint64) {
	if c.load != nil {
		c.load(ref, val, when)
	}
}

func (c *testClient) OnStoreWrote(ref, when uint64) {
	if c.store != nil {
		c.store(ref, when)
	}
}

func (c *testClient) OnRMWDone(ref, old, when uint64) {
	if c.rmw != nil {
		c.rmw(ref, old, when)
	}
}

// runUntil fires all events due by cycle into the hierarchy itself, as the
// machine does.
func runUntil(h *Hierarchy, evq *sched.EventQueue, cycle uint64) {
	evq.RunUntil(cycle, h)
}

func TestHierarchyLoadLatencies(t *testing.T) {
	h, evq := newTestHierarchy(2)
	h.WriteImage(0x1000, 8, 99)

	var gotVal, gotWhen uint64
	h.SetClient(0, &testClient{load: func(ref, v, w uint64) { gotVal, gotWhen = v, w }})
	h.Load(0, 0x1000, 8, 0, 1)
	runUntil(h, evq, 10_000)
	if gotVal != 99 {
		t.Fatalf("cold load value = %d", gotVal)
	}
	coldWhen := gotWhen
	// L1 hit: exactly the L1 latency.
	h.Load(0, 0x1000, 8, coldWhen, 1)
	runUntil(h, evq, coldWhen+100)
	if gotWhen != coldWhen+4 {
		t.Errorf("L1 hit latency = %d, want 4", gotWhen-coldWhen)
	}
	// The cold miss must include L1+L2 lookups, a control hop, the L3
	// lookup, memory and a data return: well over 180 cycles.
	if coldWhen < 180 {
		t.Errorf("cold miss completed at %d, implausibly fast", coldWhen)
	}
}

func TestWriteAtomicity(t *testing.T) {
	// Core 1 caches the line; core 0 then writes it. The protocol must
	// deliver core 1's invalidation no later than the write's insertion
	// (the write is acknowledged only after all invalidations).
	h, evq := newTestHierarchy(2)
	h.WriteImage(0x2000, 8, 1)

	var invalAt, loaded uint64
	h.SetClient(1, &testClient{
		removed: func(line, cycle uint64, ev bool) {
			if line == h.LineAddr(0x2000) && !ev {
				invalAt = cycle
			}
		},
		load: func(ref, v, w uint64) { loaded = w },
	})

	h.Load(1, 0x2000, 8, 0, 1)
	runUntil(h, evq, 10_000)
	if loaded == 0 {
		t.Fatal("load did not complete")
	}

	var storeDone uint64
	h.SetClient(0, &testClient{store: func(ref, w uint64) { storeDone = w }})
	h.Store(0, 0x2000, 8, 42, loaded+1, 0, 1)
	runUntil(h, evq, loaded+10_000)
	if storeDone == 0 {
		t.Fatal("store did not complete")
	}
	if invalAt == 0 {
		t.Fatal("sharer was never invalidated")
	}
	if invalAt > storeDone {
		t.Errorf("write inserted at %d before invalidation delivery at %d: not write-atomic",
			storeDone, invalAt)
	}
	if h.ReadImage(0x2000, 8) != 42 {
		t.Errorf("image = %d, want 42", h.ReadImage(0x2000, 8))
	}
}

func TestStoreNotBeforeClamp(t *testing.T) {
	h, evq := newTestHierarchy(1)
	w1 := h.Store(0, 0x3000, 8, 1, 0, 0, 0)
	runUntil(h, evq, 100_000)
	// Second store to the now-owned line, with a notBefore far in the
	// future: the insertion must be clamped.
	w2 := h.Store(0, 0x3000, 8, 2, w1+1, w1+500, 0)
	runUntil(h, evq, w1+10_000)
	if w2 < w1+500 {
		t.Errorf("store inserted at %d, notBefore %d ignored", w2, w1+500)
	}
}

func TestRMWReturnsOldValue(t *testing.T) {
	h, evq := newTestHierarchy(1)
	h.WriteImage(0x4000, 8, 10)
	var old uint64
	h.SetClient(0, &testClient{rmw: func(ref, o, w uint64) { old = o }})
	h.RMW(0, 0x4000, 8, 5, 0, 1)
	runUntil(h, evq, 10_000)
	if old != 10 {
		t.Errorf("RMW old = %d, want 10", old)
	}
	if got := h.ReadImage(0x4000, 8); got != 15 {
		t.Errorf("RMW result = %d, want 15", got)
	}
}

func TestImagePartialWrites(t *testing.T) {
	h, _ := newTestHierarchy(1)
	h.WriteImage(0x100, 8, 0xAABBCCDDEEFF0011)
	if got := h.ReadImage(0x104, 4); got != 0xAABBCCDD {
		t.Errorf("partial read = %#x", got)
	}
	h.WriteImage(0x104, 4, 0x12345678)
	if got := h.ReadImage(0x100, 8); got != 0x12345678EEFF0011 {
		t.Errorf("partial write merged wrong: %#x", got)
	}
	h.WriteImage(0x101, 1, 0x42)
	if got := h.ReadImage(0x101, 1); got != 0x42 {
		t.Errorf("byte write = %#x", got)
	}
}

func TestEvictionNotifiesOwnCore(t *testing.T) {
	h, evq := newTestHierarchy(1)
	evictions := 0
	var when uint64
	h.SetClient(0, &testClient{
		removed: func(line, cycle uint64, ev bool) {
			if ev {
				evictions++
			}
		},
		load: func(ref, v, w uint64) { when = w },
	})
	// Walk far more lines than the L1 holds.
	lines := h.l1[0].setMask + 1
	total := (lines + 1) * 8 * 2 // sets * ways * 2
	for i := uint64(0); i < total; i++ {
		h.Load(0, i*64, 8, when, 1)
		runUntil(h, evq, when+100_000)
		when++
	}
	if evictions == 0 {
		t.Error("no eviction notifications despite L1 overflow")
	}
}

func TestStridePrefetcherFires(t *testing.T) {
	h, evq := newTestHierarchy(1)
	var when uint64
	h.SetClient(0, &testClient{load: func(ref, v, w uint64) { when = w }})
	for i := uint64(0); i < 16; i++ {
		h.Load(0, 0x10000+i*64, 8, when, 1)
		runUntil(h, evq, when+100_000)
	}
	if h.Stats.Prefetches == 0 {
		t.Error("stride prefetcher never fired on a unit-line stride")
	}
}

func TestRFOPrefetchMakesDrainHit(t *testing.T) {
	h, evq := newTestHierarchy(1)
	h.PrefetchOwner(0, 0x20000, 0)
	runUntil(h, evq, 100_000)
	missesBefore := h.Stats.L1Misses
	done := h.Store(0, 0x20000, 8, 7, 1000, 0, 0)
	runUntil(h, evq, 100_000)
	if h.Stats.L1Misses != missesBefore {
		t.Error("store after RFO prefetch should hit the L1")
	}
	if done == 0 || done > 1000+8 {
		t.Errorf("owned-line store commit took %d cycles", done-1000)
	}
}

// TestMemoryOpDeliveryZeroAlloc pins the event path's allocation budget:
// with the tables warm, issuing loads and stores and delivering their
// completion events must not allocate. Requests are plain uint64 refs and
// events are heap values, so there is no per-operation closure or box.
func TestMemoryOpDeliveryZeroAlloc(t *testing.T) {
	h, evq := newTestHierarchy(1)
	h.SetClient(0, &testClient{})
	h.Reserve(64, 64)
	// Warm up a small footprint so the caches, directory, image and busy
	// tables reach steady state.
	var now uint64
	for i := uint64(0); i < 512; i++ {
		h.Load(0, (i*64)%2048, 8, now, 1)
		h.Store(0, (i*64+8)%2048, 8, i, now, 0, 1)
		runUntil(h, evq, now+1_000_000)
		now += 100
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Load(0, now%2048, 8, now, 1)
		h.Store(0, (now+8)%2048, 8, 1, now, 0, 1)
		runUntil(h, evq, now+1_000_000)
		now += 64
	})
	if allocs != 0 {
		t.Errorf("load+store+delivery allocates %.2f per op pair, want 0", allocs)
	}
}

// TestImageReadWriteRoundTrip is a property test on the data image.
func TestImageReadWriteRoundTrip(t *testing.T) {
	h, _ := newTestHierarchy(1)
	f := func(addr uint32, val uint64, szSel uint8) bool {
		sizes := []uint8{1, 2, 4, 8}
		sz := sizes[int(szSel)%len(sizes)]
		a := uint64(addr) &^ (uint64(sz) - 1)
		h.WriteImage(a, sz, val)
		mask := uint64(1)<<(uint64(sz)*8) - 1
		if sz == 8 {
			mask = ^uint64(0)
		}
		return h.ReadImage(a, sz) == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
