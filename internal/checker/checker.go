// Package checker is an exhaustive operational consistency checker: the
// analogue of the ConsistencyChecker tool the paper used to identify
// non-store-atomic behaviours of x86 (Section I, footnote 1).
//
// It enumerates every interleaving of a small multi-threaded program under
// an operational memory model — x86-TSO with store-to-load forwarding, the
// store-atomic 370 flavour of TSO, or SC — and collects the exact set of
// reachable final outcomes. The models follow the standard abstract-machine
// formulations (Sewell et al. for x86-TSO; the IBM 370 rule that a load
// matching a store-buffer entry cannot execute until that entry drains).
package checker

import (
	"fmt"
	"sort"
	"strings"

	"sesa/internal/isa"
)

// Model selects the operational memory model.
type Model int

// The three operational models.
const (
	// X86TSO: FIFO store buffer per thread with store-to-load
	// forwarding. Write-atomic but not store-atomic (rMCA).
	X86TSO Model = iota
	// TSO370: FIFO store buffer per thread WITHOUT forwarding: a load
	// that matches a store-buffer entry blocks until the buffer drains at
	// least past the matching store. Store-atomic (MCA).
	TSO370
	// SC: no store buffer; every access goes directly to memory.
	SC
)

var modelNames = [...]string{"x86-TSO", "370-TSO", "SC"}

// String names the model.
func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// RegObs observes a register of a thread in the final state.
type RegObs struct {
	Thread int
	Reg    isa.Reg
	Name   string
}

// MemObs observes a memory location in the final state.
type MemObs struct {
	Addr uint64
	Name string
}

// Program is the checker's input: per-thread instruction sequences plus
// initial memory and the observables that define an outcome.
type Program struct {
	Threads []isa.Program
	Init    map[uint64]uint64
	Regs    []RegObs
	Mem     []MemObs
}

// Outcome is a canonical "name=v name=v ..." rendering of the observables.
type Outcome string

// OutcomeSet is the set of reachable outcomes.
type OutcomeSet map[Outcome]bool

// Sorted returns the outcomes in lexical order.
func (s OutcomeSet) Sorted() []Outcome {
	out := make([]Outcome, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether the outcome is in the set.
func (s OutcomeSet) Contains(o Outcome) bool { return s[o] }

// write is one store-buffer entry.
type write struct {
	addr uint64
	size uint8
	val  uint64
}

// threadState is the dynamic state of one thread.
type threadState struct {
	pc   int
	sb   []write
	regs [isa.NumRegs]uint64
}

// machineState is a full abstract-machine state.
type machineState struct {
	threads []threadState
	mem     map[uint64]uint64
}

func (st *machineState) clone() *machineState {
	n := &machineState{
		threads: make([]threadState, len(st.threads)),
		mem:     make(map[uint64]uint64, len(st.mem)),
	}
	for i, t := range st.threads {
		n.threads[i] = threadState{pc: t.pc, regs: t.regs}
		n.threads[i].sb = append([]write(nil), t.sb...)
	}
	for k, v := range st.mem {
		n.mem[k] = v
	}
	return n
}

// encode produces a canonical key for memoization.
func (st *machineState) encode() string {
	var b strings.Builder
	for _, t := range st.threads {
		fmt.Fprintf(&b, "T%d|", t.pc)
		for _, w := range t.sb {
			fmt.Fprintf(&b, "%x:%x,", w.addr, w.val)
		}
		b.WriteByte('|')
		for r, v := range t.regs {
			if v != 0 {
				fmt.Fprintf(&b, "r%d=%x,", r, v)
			}
		}
		b.WriteByte(';')
	}
	keys := make([]uint64, 0, len(st.mem))
	for k := range st.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Fprintf(&b, "%x=%x,", k, st.mem[k])
	}
	return b.String()
}

// readSB returns the newest store-buffer entry of t covering addr, if any.
func readSB(t *threadState, addr uint64) (uint64, bool) {
	for i := len(t.sb) - 1; i >= 0; i-- {
		if t.sb[i].addr == addr {
			return t.sb[i].val, true
		}
	}
	return 0, false
}

// Enumerate explores every interleaving of p under model m and returns the
// set of reachable final outcomes. Final states require all program
// counters at the end and all store buffers drained.
func Enumerate(p Program, m Model) OutcomeSet {
	init := &machineState{
		threads: make([]threadState, len(p.Threads)),
		mem:     make(map[uint64]uint64, len(p.Init)),
	}
	for a, v := range p.Init {
		init.mem[a] = v
	}

	outcomes := make(OutcomeSet)
	seen := make(map[string]bool)
	var visit func(st *machineState)
	visit = func(st *machineState) {
		key := st.encode()
		if seen[key] {
			return
		}
		seen[key] = true

		final := true
		for ti := range st.threads {
			t := &st.threads[ti]

			// Drain transition: pop the SB head to memory.
			if len(t.sb) > 0 {
				final = false
				n := st.clone()
				w := n.threads[ti].sb[0]
				n.threads[ti].sb = n.threads[ti].sb[1:]
				n.mem[w.addr] = w.val
				visit(n)
			}

			// Execute transition.
			if t.pc < len(p.Threads[ti]) {
				final = false
				for _, n := range step(p, st, ti, m) {
					visit(n)
				}
			}
		}
		if final {
			outcomes[outcomeOf(p, st)] = true
		}
	}
	visit(init)
	return outcomes
}

// step returns the successor states of executing thread ti's next
// instruction, or none if the instruction is blocked under the model.
func step(p Program, st *machineState, ti int, m Model) []*machineState {
	t := &st.threads[ti]
	in := p.Threads[ti][t.pc]
	switch in.Op {
	case isa.OpStore:
		val := in.Imm
		if in.Src1 != isa.RegNone {
			val = t.regs[in.Src1]
		}
		n := st.clone()
		nt := &n.threads[ti]
		nt.pc++
		if m == SC {
			n.mem[in.Addr] = val
		} else {
			nt.sb = append(nt.sb, write{addr: in.Addr, size: in.EffSize(), val: val})
		}
		return []*machineState{n}

	case isa.OpLoad:
		var val uint64
		if v, hit := readSB(t, in.Addr); hit {
			switch m {
			case X86TSO:
				val = v // store-to-load forwarding
			case TSO370:
				// Store-atomic: blocked until the matching store
				// drains; the drain transitions make progress.
				return nil
			case SC:
				val = st.mem[in.Addr] // unreachable: SC has no SB
			}
		} else {
			val = st.mem[in.Addr]
		}
		n := st.clone()
		nt := &n.threads[ti]
		nt.pc++
		if in.Dst != isa.RegNone {
			nt.regs[in.Dst] = val
		}
		return []*machineState{n}

	case isa.OpFence:
		if len(t.sb) > 0 {
			return nil
		}
		n := st.clone()
		n.threads[ti].pc++
		return []*machineState{n}

	case isa.OpRMW:
		if len(t.sb) > 0 {
			return nil
		}
		n := st.clone()
		nt := &n.threads[ti]
		old := n.mem[in.Addr]
		n.mem[in.Addr] = old + in.Imm
		if in.Dst != isa.RegNone {
			nt.regs[in.Dst] = old
		}
		nt.pc++
		return []*machineState{n}

	case isa.OpALU:
		n := st.clone()
		nt := &n.threads[ti]
		var a, b uint64
		if in.Src1 != isa.RegNone {
			a = nt.regs[in.Src1]
		}
		if in.Src2 != isa.RegNone {
			b = nt.regs[in.Src2]
		}
		if in.Dst != isa.RegNone {
			nt.regs[in.Dst] = a + b + in.Imm
		}
		nt.pc++
		return []*machineState{n}

	case isa.OpNop, isa.OpBranch:
		n := st.clone()
		n.threads[ti].pc++
		return []*machineState{n}
	}
	return nil
}

// FinalState provides the observables of a finished execution; the timing
// simulator adapts to it so that simulator runs and checker enumerations
// render comparable outcomes.
type FinalState interface {
	Reg(thread int, r isa.Reg) uint64
	Mem(addr uint64) uint64
}

// RenderOutcome formats the program's observables read from st.
func RenderOutcome(p Program, st FinalState) Outcome {
	parts := make([]string, 0, len(p.Regs)+len(p.Mem))
	for _, r := range p.Regs {
		parts = append(parts, fmt.Sprintf("%s=%d", r.Name, st.Reg(r.Thread, r.Reg)))
	}
	for _, mo := range p.Mem {
		parts = append(parts, fmt.Sprintf("[%s]=%d", mo.Name, st.Mem(mo.Addr)))
	}
	return Outcome(strings.Join(parts, " "))
}

// machineFinal adapts a checker machineState to FinalState.
type machineFinal struct{ st *machineState }

func (m machineFinal) Reg(thread int, r isa.Reg) uint64 { return m.st.threads[thread].regs[r] }
func (m machineFinal) Mem(addr uint64) uint64           { return m.st.mem[addr] }

// outcomeOf renders the observables of a final state.
func outcomeOf(p Program, st *machineState) Outcome {
	return RenderOutcome(p, machineFinal{st})
}

// Compare returns the outcomes allowed under a but not under b: the
// behaviours a programmer would observe when moving from model b to the
// weaker model a. Comparing X86TSO against TSO370 reproduces the paper's
// consistency-checking workflow.
func Compare(p Program, a, b Model) []Outcome {
	oa := Enumerate(p, a)
	ob := Enumerate(p, b)
	var diff []Outcome
	for _, o := range oa.Sorted() {
		if !ob.Contains(o) {
			diff = append(diff, o)
		}
	}
	return diff
}
