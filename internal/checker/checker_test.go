package checker

import (
	"testing"

	"sesa/internal/isa"
)

const (
	x = uint64(0x100)
	y = uint64(0x140)
)

func mp() Program {
	return Program{
		Threads: []isa.Program{
			{isa.Load(1, x), isa.Load(2, y)},
			{isa.StoreImm(y, 1), isa.StoreImm(x, 1)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 0, Reg: 1, Name: "rx"},
			{Thread: 0, Reg: 2, Name: "ry"},
		},
	}
}

func n6() Program {
	return Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1), isa.Load(1, x), isa.Load(2, y)},
			{isa.StoreImm(y, 2), isa.StoreImm(x, 2)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 0, Reg: 1, Name: "rx"},
			{Thread: 0, Reg: 2, Name: "ry"},
		},
		Mem: []MemObs{{Addr: x, Name: "x"}, {Addr: y, Name: "y"}},
	}
}

// TestMPForbiddenInTSO checks Figure 1: rx=1 ry=0 is forbidden under both
// TSO flavours (the stores drain in order; the loads execute in order).
func TestMPForbiddenInTSO(t *testing.T) {
	for _, m := range []Model{X86TSO, TSO370, SC} {
		out := Enumerate(mp(), m)
		if out.Contains("rx=1 ry=0") {
			t.Errorf("%s: mp allowed rx=1 ry=0", m)
		}
		for _, legal := range []Outcome{"rx=0 ry=0", "rx=0 ry=1", "rx=1 ry=1"} {
			if !out.Contains(legal) {
				t.Errorf("%s: mp should allow %q", m, legal)
			}
		}
	}
}

// TestN6 checks Figure 2: the store-atomicity signature outcome is allowed
// in x86 but forbidden in store-atomic TSO and SC.
func TestN6(t *testing.T) {
	sig := Outcome("rx=1 ry=0 [x]=1 [y]=2")
	if !Enumerate(n6(), X86TSO).Contains(sig) {
		t.Error("x86-TSO: n6 signature outcome should be allowed")
	}
	if Enumerate(n6(), TSO370).Contains(sig) {
		t.Error("370-TSO: n6 signature outcome must be forbidden")
	}
	if Enumerate(n6(), SC).Contains(sig) {
		t.Error("SC: n6 signature outcome must be forbidden")
	}
}

// TestN6CompareIsExactlyTheStoreAtomicityGap reproduces the paper's
// ConsistencyChecker workflow: the outcomes allowed in x86 but not in 370.
func TestN6CompareIsExactlyTheStoreAtomicityGap(t *testing.T) {
	diff := Compare(n6(), X86TSO, TSO370)
	if len(diff) == 0 {
		t.Fatal("expected x86-only outcomes for n6")
	}
	for _, o := range diff {
		// Every x86-only outcome of n6 must include the early read of
		// the own store: rx=1.
		if o[:4] != "rx=1" {
			t.Errorf("unexpected x86-only outcome without forwarding: %q", o)
		}
	}
}

func iriw() Program {
	return Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1)},
			{isa.StoreImm(y, 1)},
			{isa.Load(1, x), isa.Load(2, y)},
			{isa.Load(1, y), isa.Load(2, x)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 2, Reg: 1, Name: "a"},
			{Thread: 2, Reg: 2, Name: "b"},
			{Thread: 3, Reg: 1, Name: "c"},
			{Thread: 3, Reg: 2, Name: "d"},
		},
	}
}

// TestIRIWForbidden checks Figure 3: both write-atomic models forbid the
// observers disagreeing about the order of independent stores.
func TestIRIWForbidden(t *testing.T) {
	for _, m := range []Model{X86TSO, TSO370, SC} {
		if Enumerate(iriw(), m).Contains("a=1 b=0 c=1 d=0") {
			t.Errorf("%s: iriw disagreement must be forbidden", m)
		}
	}
}

func fig5() Program {
	return Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1), isa.Load(1, x), isa.Load(2, y)},
			{isa.StoreImm(y, 1), isa.Load(1, y), isa.Load(2, x)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 0, Reg: 1, Name: "c1x"},
			{Thread: 0, Reg: 2, Name: "c1y"},
			{Thread: 1, Reg: 1, Name: "c2y"},
			{Thread: 1, Reg: 2, Name: "c2x"},
		},
	}
}

// TestTableII checks the paper's Table II exactly: under 370 the Figure 5
// program has precisely three outcomes; x86 adds the disagreement case.
func TestTableII(t *testing.T) {
	disagree := Outcome("c1x=1 c1y=0 c2y=1 c2x=1") // placeholder, fixed below
	_ = disagree

	out370 := Enumerate(fig5(), TSO370)
	want370 := []Outcome{
		"c1x=1 c1y=0 c2y=1 c2x=1", // case 2: Core2 cannot see order
		"c1x=1 c1y=1 c2y=1 c2x=0", // case 3: Core1 cannot see order
		"c1x=1 c1y=1 c2y=1 c2x=1", // case 4: none can see any order
	}
	if len(out370) != len(want370) {
		t.Errorf("370: got %d outcomes %v, want %d", len(out370), out370.Sorted(), len(want370))
	}
	for _, o := range want370 {
		if !out370.Contains(o) {
			t.Errorf("370: missing outcome %q", o)
		}
	}

	outX86 := Enumerate(fig5(), X86TSO)
	caseOne := Outcome("c1x=1 c1y=0 c2y=1 c2x=0") // disagreement in order
	if !outX86.Contains(caseOne) {
		t.Error("x86: the Table II case-1 disagreement must be allowed")
	}
	for _, o := range want370 {
		if !outX86.Contains(o) {
			t.Errorf("x86: missing common outcome %q", o)
		}
	}
	if len(outX86) != 4 {
		t.Errorf("x86: got %d outcomes %v, want 4", len(outX86), outX86.Sorted())
	}
}

// TestFig4AllFourObservations checks Figure 4: a third-party observer of two
// independent stores can see any of the four value pairs, in every model.
func TestFig4AllFourObservations(t *testing.T) {
	p := Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1)},
			{isa.StoreImm(y, 1)},
			{isa.Load(1, y), isa.Load(2, x)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 2, Reg: 1, Name: "ry"},
			{Thread: 2, Reg: 2, Name: "rx"},
		},
	}
	for _, m := range []Model{X86TSO, TSO370, SC} {
		out := Enumerate(p, m)
		for _, o := range []Outcome{"ry=0 rx=0", "ry=0 rx=1", "ry=1 rx=0", "ry=1 rx=1"} {
			if !out.Contains(o) {
				t.Errorf("%s: observer outcome %q should be reachable", m, o)
			}
		}
	}
}

// TestSBDistinguishesTSOFromSC: the classic store-buffering relaxation.
func TestSBDistinguishesTSOFromSC(t *testing.T) {
	p := Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1), isa.Load(1, y)},
			{isa.StoreImm(y, 1), isa.Load(1, x)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 0, Reg: 1, Name: "ry"},
			{Thread: 1, Reg: 1, Name: "rx"},
		},
	}
	relaxed := Outcome("ry=0 rx=0")
	if !Enumerate(p, X86TSO).Contains(relaxed) {
		t.Error("x86-TSO must allow the SB relaxation")
	}
	if !Enumerate(p, TSO370).Contains(relaxed) {
		t.Error("370-TSO also relaxes store->load, so SB must be allowed")
	}
	if Enumerate(p, SC).Contains(relaxed) {
		t.Error("SC must forbid the SB relaxation")
	}
}

// TestFencesRestoreSC: SB with fences forbids the relaxation everywhere.
func TestFencesRestoreSC(t *testing.T) {
	p := Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1), isa.Fence(), isa.Load(1, y)},
			{isa.StoreImm(y, 1), isa.Fence(), isa.Load(1, x)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 0, Reg: 1, Name: "ry"},
			{Thread: 1, Reg: 1, Name: "rx"},
		},
	}
	for _, m := range []Model{X86TSO, TSO370, SC} {
		if Enumerate(p, m).Contains("ry=0 rx=0") {
			t.Errorf("%s: fenced SB must forbid ry=0 rx=0", m)
		}
	}
}

// TestRMWAtomicity: two fetch-and-adds from different threads never lose an
// update in any model.
func TestRMWAtomicity(t *testing.T) {
	p := Program{
		Threads: []isa.Program{
			{isa.RMW(1, x, 1)},
			{isa.RMW(1, x, 1)},
		},
		Init: map[uint64]uint64{x: 0},
		Mem:  []MemObs{{Addr: x, Name: "x"}},
	}
	for _, m := range []Model{X86TSO, TSO370, SC} {
		out := Enumerate(p, m)
		if len(out) != 1 || !out.Contains("[x]=2") {
			t.Errorf("%s: RMW outcomes = %v, want exactly [x]=2", m, out.Sorted())
		}
	}
}

// TestCompareTable drives Compare over the litmus programs of this file:
// the diff must be exactly the set difference of the Enumerate outcome sets,
// sorted, and match the known model gaps (or lack of one) per program pair.
func TestCompareTable(t *testing.T) {
	sb := Program{
		Threads: []isa.Program{
			{isa.StoreImm(x, 1), isa.Load(1, y)},
			{isa.StoreImm(y, 1), isa.Load(1, x)},
		},
		Init: map[uint64]uint64{x: 0, y: 0},
		Regs: []RegObs{
			{Thread: 0, Reg: 1, Name: "ry"},
			{Thread: 1, Reg: 1, Name: "rx"},
		},
	}
	cases := []struct {
		name string
		prog Program
		a, b Model
		// wantGap: outcomes that must be in Compare(prog, a, b);
		// wantEmpty asserts there is no gap at all.
		wantGap   []Outcome
		wantEmpty bool
	}{
		{name: "mp x86-vs-370 has no gap", prog: mp(), a: X86TSO, b: TSO370, wantEmpty: true},
		{name: "mp 370-vs-sc has no gap", prog: mp(), a: TSO370, b: SC, wantEmpty: true},
		{name: "n6 x86-vs-370 is the signature", prog: n6(), a: X86TSO, b: TSO370,
			wantGap: []Outcome{"rx=1 ry=0 [x]=1 [y]=2"}},
		{name: "n6 370-vs-x86 is empty (MCA subset)", prog: n6(), a: TSO370, b: X86TSO, wantEmpty: true},
		{name: "sb x86-vs-370 has no gap", prog: sb, a: X86TSO, b: TSO370, wantEmpty: true},
		{name: "sb x86-vs-sc is the relaxation", prog: sb, a: X86TSO, b: SC,
			wantGap: []Outcome{"ry=0 rx=0"}},
		{name: "iriw x86-vs-370 has no gap", prog: iriw(), a: X86TSO, b: TSO370, wantEmpty: true},
		{name: "identical models always empty", prog: n6(), a: X86TSO, b: X86TSO, wantEmpty: true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			diff := Compare(c.prog, c.a, c.b)
			if c.wantEmpty {
				if len(diff) != 0 {
					t.Fatalf("Compare(%s, %s) = %v, want empty", c.a, c.b, diff)
				}
				return
			}
			if len(diff) == 0 {
				t.Fatalf("Compare(%s, %s) is empty, want a gap", c.a, c.b)
			}
			for _, want := range c.wantGap {
				found := false
				for _, o := range diff {
					if o == want {
						found = true
					}
				}
				if !found {
					t.Errorf("Compare(%s, %s) = %v, missing %q", c.a, c.b, diff, want)
				}
			}
			// Exactness: the diff is precisely allowed(a) minus allowed(b),
			// and comes back sorted and duplicate-free.
			oa, ob := Enumerate(c.prog, c.a), Enumerate(c.prog, c.b)
			seen := map[Outcome]bool{}
			for i, o := range diff {
				if !oa.Contains(o) || ob.Contains(o) {
					t.Errorf("diff outcome %q is not in allowed(%s)-allowed(%s)", o, c.a, c.b)
				}
				if seen[o] {
					t.Errorf("duplicate outcome %q", o)
				}
				seen[o] = true
				if i > 0 && !(diff[i-1] < o) {
					t.Errorf("diff not sorted at %d: %q >= %q", i, diff[i-1], o)
				}
			}
			for o := range oa {
				if !ob.Contains(o) && !seen[o] {
					t.Errorf("Compare missed gap outcome %q", o)
				}
			}
		})
	}
}

// TestTaxonomy pins Table I: 370 is store-atomic (MCA): every 370 outcome
// set is a subset of the x86 set, and SC sets are subsets of both, on the
// suite of programs in this file.
func TestTaxonomy(t *testing.T) {
	progs := []Program{mp(), n6(), iriw(), fig5()}
	for i, p := range progs {
		oSC := Enumerate(p, SC)
		o370 := Enumerate(p, TSO370)
		oX86 := Enumerate(p, X86TSO)
		for o := range oSC {
			if !o370.Contains(o) {
				t.Errorf("prog %d: SC outcome %q not in 370", i, o)
			}
		}
		for o := range o370 {
			if !oX86.Contains(o) {
				t.Errorf("prog %d: 370 outcome %q not in x86 (370 must be stronger)", i, o)
			}
		}
	}
}

// TestEnumerateDeterministic: the same program yields the same set.
func TestEnumerateDeterministic(t *testing.T) {
	a := Enumerate(fig5(), X86TSO).Sorted()
	b := Enumerate(fig5(), X86TSO).Sorted()
	if len(a) != len(b) {
		t.Fatalf("set sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("outcome %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestDependentValueFlow: a stored register value flows through the SB.
func TestDependentValueFlow(t *testing.T) {
	p := Program{
		Threads: []isa.Program{
			{isa.Load(1, x), isa.ALUImm(2, 1, 10, 0), isa.StoreReg(y, 2)},
		},
		Init: map[uint64]uint64{x: 5, y: 0},
		Mem:  []MemObs{{Addr: y, Name: "y"}},
	}
	for _, m := range []Model{X86TSO, TSO370, SC} {
		out := Enumerate(p, m)
		if len(out) != 1 || !out.Contains("[y]=15") {
			t.Errorf("%s: outcomes = %v, want exactly [y]=15", m, out.Sorted())
		}
	}
}
