package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"sesa/internal/runner"
	"sesa/internal/telemetry"
	"sesa/internal/trace"
)

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's fleet base URL, e.g.
	// "http://host:8344/v1/fleet".
	Coordinator string
	// Name labels the worker in the coordinator's status table.
	Name string
	// Jobs is the worker's parallel simulation capacity (runner pool size
	// per batch); 0 means GOMAXPROCS.
	Jobs int
	// Poll is the idle re-lease interval when the coordinator has no work;
	// 0 means 200ms.
	Poll time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Tel (may be nil) supplies the worker's structured logger and the
	// metrics registry behind its -status-addr /metrics endpoint.
	Tel *telemetry.T
}

// Worker is one fleet node: it registers with the coordinator, pulls one
// batch at a time, fans the batch's jobs across its local runner pool,
// streams the results back and renews its leases on a heartbeat. The
// parallelism knob is Jobs — a batch's jobs run concurrently — while
// batches are pulled one at a time, so a worker's capacity is advertised
// honestly and lease loss costs at most one batch of work.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	base   string
	log    *slog.Logger        // never nil (telemetry.Discard when unset)
	reg    *telemetry.Registry // nil-safe no-op when unset

	// hardCtx is the worker's lifetime: Abort (or process death) cancels
	// it, killing in-flight batch execution without completion or
	// deregistration — the crash the lease protocol exists to survive.
	hardCtx  context.Context
	hardStop context.CancelFunc

	mu       sync.Mutex
	id       string
	hbEvery  time.Duration
	inflight map[string]context.CancelFunc // batch id -> abandon

	// BatchesDone counts batches this worker completed (tests use it).
	batchesDone int
}

// NewWorker builds a worker; Run starts it.
func NewWorker(o WorkerOptions) *Worker {
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	ctx, stop := context.WithCancel(context.Background())
	w := &Worker{
		opts:     o,
		client:   client,
		base:     strings.TrimRight(o.Coordinator, "/"),
		log:      o.Tel.Component("fleet.worker").With(slog.String(telemetry.KeyWorker, o.Name)),
		reg:      o.Tel.Registry(),
		hardCtx:  ctx,
		hardStop: stop,
		inflight: make(map[string]context.CancelFunc),
	}
	w.reg.GaugeFunc("sesa_worker_inflight_batches",
		"Batches this worker is currently executing.", func() []telemetry.Sample {
			w.mu.Lock()
			defer w.mu.Unlock()
			return []telemetry.Sample{{Value: float64(len(w.inflight))}}
		})
	return w
}

// Abort kills the worker immediately: in-flight batch execution stops, no
// completion is reported, no deregistration happens. From the
// coordinator's view this is indistinguishable from a crash — the worker's
// leases expire and its batches are reassigned.
func (w *Worker) Abort() { w.hardStop() }

// BatchesDone reports how many batches this worker has completed.
func (w *Worker) BatchesDone() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batchesDone
}

// Run is the worker's life: register, then lease/execute/complete until ctx
// is canceled. Cancellation of ctx is the graceful SIGTERM drain — the
// same contract sesa-serve's own drain has: the worker stops leasing,
// finishes and reports its in-flight batch, and deregisters so the
// coordinator immediately requeues anything it would otherwise have to
// time out. Abort (a crash) skips all of that.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}

	// Heartbeats run on the hard context: a draining worker must keep its
	// final batch's lease alive until completion is reported.
	hbDone := make(chan struct{})
	hbStop := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(hbStop)
	}()
	defer func() {
		close(hbStop)
		<-hbDone
	}()

	leaseFails := 0
	for ctx.Err() == nil && w.hardCtx.Err() == nil {
		lease, ok, err := w.lease()
		if err != nil {
			// Coordinator unreachable or restarting: back off and retry;
			// the fabric is pull-based, so patience is the whole story.
			leaseFails++
			w.reg.Counter("sesa_worker_lease_errors_total",
				"Lease requests that failed (coordinator unreachable or restarting).").Inc()
			w.log.Warn("lease request failed, backing off",
				"error", err, telemetry.KeyAttempt, leaseFails)
			if !w.sleep(ctx, w.opts.Poll) {
				break
			}
			continue
		}
		leaseFails = 0
		if !ok {
			if !w.sleep(ctx, w.opts.Poll) {
				break
			}
			continue
		}
		w.reg.Counter("sesa_worker_batches_leased_total", "Batches leased from the coordinator.").Inc()
		w.runBatch(lease)
	}

	if w.hardCtx.Err() != nil {
		return w.hardCtx.Err()
	}
	// Graceful exit: hand back anything the coordinator still thinks we
	// hold (normally nothing — the in-flight batch was completed above).
	_, err := postJSON(w.client, w.base+"/deregister", DeregisterRequest{WorkerID: w.workerID()}, nil)
	if err != nil {
		// The coordinator will time the leases out instead; surfacing the
		// error (rather than dropping it) is what lets an operator tell a
		// clean drain from one that leaned on lease expiry.
		w.log.Warn("deregistration failed; coordinator will expire our leases", "error", err)
	} else {
		w.log.Info("deregistered from coordinator")
	}
	return err
}

// register announces the worker, retrying until it succeeds or ctx ends.
func (w *Worker) register(ctx context.Context) error {
	req := RegisterRequest{Name: w.opts.Name, Cores: w.opts.Jobs}
	for attempt := 1; ; attempt++ {
		var resp RegisterResponse
		_, err := postJSON(w.client, w.base+"/register", req, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.hbEvery = time.Duration(resp.HeartbeatSeconds * float64(time.Second))
			if w.hbEvery <= 0 {
				w.hbEvery = time.Second
			}
			w.mu.Unlock()
			w.log.Info("registered with coordinator",
				"worker_id", resp.WorkerID, "lease_seconds", resp.LeaseSeconds)
			return nil
		}
		w.log.Warn("registration failed, retrying",
			"error", err, telemetry.KeyAttempt, attempt)
		if !w.sleep(ctx, w.opts.Poll) {
			return fmt.Errorf("fleet: worker never registered: %w", err)
		}
	}
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// lease asks for one batch; on errGone the coordinator forgot us (restart),
// so re-register and retry once.
func (w *Worker) lease() (LeaseResponse, bool, error) {
	var resp LeaseResponse
	ok, err := postJSON(w.client, w.base+"/lease", LeaseRequest{WorkerID: w.workerID()}, &resp)
	if err == errGone {
		if rerr := w.register(w.hardCtx); rerr != nil {
			return LeaseResponse{}, false, rerr
		}
		ok, err = postJSON(w.client, w.base+"/lease", LeaseRequest{WorkerID: w.workerID()}, &resp)
	}
	return resp, ok && err == nil, err
}

// runBatch executes one leased batch on the local pool and reports it.
// Execution runs under the hard context plus a per-batch cancel delivered
// by heartbeat responses; a canceled batch is abandoned without a
// completion report (its results would not be deterministic, and the
// coordinator has already moved on).
func (w *Worker) runBatch(lease LeaseResponse) {
	bctx, cancel := context.WithCancel(w.hardCtx)
	w.mu.Lock()
	w.inflight[lease.BatchID] = cancel
	w.mu.Unlock()
	defer func() {
		cancel()
		w.mu.Lock()
		delete(w.inflight, lease.BatchID)
		w.mu.Unlock()
	}()

	jobs := make([]runner.Job, len(lease.Jobs))
	for k, wj := range lease.Jobs {
		j, err := wj.Resolve()
		if err != nil {
			// The coordinator validated these at submission; failing the
			// whole batch loudly beats guessing.
			w.log.Error("leased batch carries an unresolvable job, failing it",
				telemetry.KeySweep, lease.SweepID, telemetry.KeyBatch, lease.BatchID, "error", err)
			w.completeError(lease, err)
			return
		}
		jobs[k] = j
	}

	// Per-job execution windows, recorded relative to the batch start so
	// the coordinator can stitch them without cross-host clock sync.
	execStart := time.Now()
	var spanMu sync.Mutex
	spans := []WireSpan{}
	pool := runner.Pool{Workers: w.opts.Jobs, Cache: trace.Shared(),
		OnJobSpan: func(k int, name string, start, end time.Time) {
			spanMu.Lock()
			spans = append(spans, WireSpan{
				Name: telemetry.StageJob, Job: name, Index: lease.Start + k,
				StartSeconds: start.Sub(execStart).Seconds(),
				DurSeconds:   end.Sub(start).Seconds(),
			})
			spanMu.Unlock()
		}}
	results, _ := pool.RunContext(bctx, jobs)
	if bctx.Err() != nil {
		w.reg.Counter("sesa_worker_batches_abandoned_total",
			"Batches abandoned mid-execution (drain, crash or coordinator cancel).").Inc()
		w.log.Warn("batch abandoned mid-execution",
			telemetry.KeySweep, lease.SweepID, telemetry.KeyBatch, lease.BatchID,
			"cause", context.Cause(bctx))
		return // abandoned: crash, drain deadline, or coordinator cancel
	}

	req := CompleteRequest{
		WorkerID: w.workerID(),
		BatchID:  lease.BatchID,
		Results:  make([]WireResult, len(results)),
	}
	failed := 0
	for k := range results {
		wr := EncodeResult(results[k])
		wr.Index = lease.Start + k // rebase batch-local index to sweep index
		req.Results[k] = wr
		if results[k].Err != nil {
			failed++
		}
	}
	spanMu.Lock()
	req.Spans = append(spans, WireSpan{
		Name: telemetry.StageExecute, DurSeconds: time.Since(execStart).Seconds(),
	})
	spanMu.Unlock()
	w.reg.Counter("sesa_worker_jobs_completed_total", "Jobs executed and reported.").
		Add(float64(len(results) - failed))
	if failed > 0 {
		w.reg.Counter("sesa_worker_jobs_failed_total", "Executed jobs that reported an error.").
			Add(float64(failed))
	}
	w.log.Debug("batch executed",
		telemetry.KeySweep, lease.SweepID, telemetry.KeyBatch, lease.BatchID,
		"jobs", len(results), "failed", failed,
		"wall_seconds", time.Since(execStart).Seconds())
	w.complete(req)
}

// completeError reports every job of the batch as failed with err.
func (w *Worker) completeError(lease LeaseResponse, err error) {
	req := CompleteRequest{WorkerID: w.workerID(), BatchID: lease.BatchID}
	for k := range lease.Jobs {
		req.Results = append(req.Results, WireResult{Index: lease.Start + k, Error: err.Error()})
	}
	w.complete(req)
}

// complete posts a completion report, retrying transient failures a few
// times. If it ultimately fails the batch is simply lost to this worker —
// the lease expires and another worker redoes it, at the price of wasted
// cycles, never wrong bytes.
func (w *Worker) complete(req CompleteRequest) {
	for attempt := 1; attempt <= 3; attempt++ {
		_, err := postJSON(w.client, w.base+"/complete", req, nil)
		if err == nil {
			w.mu.Lock()
			w.batchesDone++
			w.mu.Unlock()
			w.reg.Counter("sesa_worker_batches_completed_total",
				"Batches whose completion report was delivered.").Inc()
			return
		}
		if err == errGone {
			w.log.Warn("completion refused: coordinator no longer knows us (restart); dropping batch",
				telemetry.KeyBatch, req.BatchID)
			return // coordinator restarted; our lease is gone with it
		}
		w.reg.Counter("sesa_worker_report_retries_total",
			"Completion-report deliveries that failed and were retried.").Inc()
		w.log.Warn("completion report failed",
			telemetry.KeyBatch, req.BatchID, "error", err, telemetry.KeyAttempt, attempt)
		if !w.sleep(w.hardCtx, w.opts.Poll) {
			return
		}
	}
	// The batch is lost to this worker: its lease will expire and another
	// worker will redo it — wasted cycles, never wrong bytes.
	w.log.Error("completion report undeliverable after retries; lease will expire",
		telemetry.KeyBatch, req.BatchID)
}

// heartbeatLoop renews leases every hbEvery until stopped, applying the
// coordinator's cancel verdicts to in-flight batches.
func (w *Worker) heartbeatLoop(stop <-chan struct{}) {
	hbFails := 0 // consecutive misses, reset on any successful renewal
	for {
		w.mu.Lock()
		every := w.hbEvery
		w.mu.Unlock()
		if every <= 0 {
			every = time.Second
		}
		select {
		case <-stop:
			return
		case <-w.hardCtx.Done():
			return
		case <-time.After(every):
		}
		w.mu.Lock()
		ids := make([]string, 0, len(w.inflight))
		for id := range w.inflight {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		var resp HeartbeatResponse
		ok, err := postJSON(w.client, w.base+"/heartbeat",
			HeartbeatRequest{WorkerID: w.workerID(), Batches: ids}, &resp)
		if err != nil || !ok {
			// Transient; the lease TTL is the real deadline — but a silent
			// string of misses is exactly what precedes a surprise lease
			// expiry, so count and log each one.
			hbFails++
			w.reg.Counter("sesa_worker_heartbeat_errors_total",
				"Heartbeats that failed to reach the coordinator.").Inc()
			w.log.Warn("heartbeat failed; lease expires without renewal",
				"error", err, telemetry.KeyAttempt, hbFails, "held_batches", len(ids))
			continue
		}
		hbFails = 0
		w.mu.Lock()
		for _, id := range resp.Cancel {
			if cancel := w.inflight[id]; cancel != nil {
				w.log.Info("coordinator canceled our lease, abandoning batch",
					telemetry.KeyBatch, id)
				cancel()
			}
		}
		w.mu.Unlock()
	}
}

// sleep waits d or until ctx/hardCtx end; it reports whether the full wait
// elapsed.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	case <-w.hardCtx.Done():
		return false
	}
}
