// Package fleet is the distributed sweep fabric: a coordinator that shards
// design-space sweeps into job batches and a pull-based worker that leases,
// executes and reports them over HTTP/JSON.
//
// The protocol is built around one invariant: a sweep executed by any fleet
// produces byte-identical output to the same sweep run single-host. Three
// properties deliver it:
//
//   - jobs are deterministic: a runner.Job's observable result depends only
//     on the job, never on the host, worker count or wall clock;
//   - results are job-order-indexed: every wire result carries its sweep
//     index and lands positionally in the coordinator's result slice, so
//     placement and completion order are invisible;
//   - aggregation is exact: statistics are sums and internal/hist merges
//     are lossless, and the wire encoding round-trips both without losing
//     a bucket or a counter.
//
// Failure handling is lease-based, in the spirit of every pull-model batch
// scheduler: a worker that goes silent for a lease TTL forfeits its batches,
// which are re-leased to the next worker to ask (bounded by MaxAttempts);
// a worker completing a batch it technically lost is still accepted under
// first-write-wins — its results are the same bytes any other worker would
// have produced. Duplicate execution wastes cycles, never correctness.
//
// The coordinator side is mounted by sesa-serve under /v1/fleet/; the
// worker side is cmd/sesa-worker (or any process embedding Worker).
package fleet

import (
	"errors"
	"fmt"
	"time"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/runner"
	"sesa/internal/sim"
	"sesa/internal/stats"
	"sesa/internal/trace"
)

// WireJob is the serialized form of one runner.Job, mirroring the sweep
// service's job spec: everything the job's observable result depends on,
// spelled with the parseable names (model, step mode) rather than internal
// enum values, so the two sides need only agree on the protocol, not on
// binary layout.
type WireJob struct {
	Profile     string `json:"profile"`
	Model       string `json:"model"`
	InstPerCore int    `json:"inst_per_core"`
	Seed        uint64 `json:"seed"`
	StepMode    string `json:"step_mode,omitempty"`
	MaxCycles   uint64 `json:"max_cycles,omitempty"`
	Hists       bool   `json:"hists,omitempty"`
}

// EncodeJob serializes a runner job. Jobs with a custom Config are not
// encodable — the sweep service never produces one (wire jobs resolve
// against config.Default on both sides).
func EncodeJob(j runner.Job) (WireJob, error) {
	if j.Config != nil {
		return WireJob{}, errors.New("fleet: jobs with custom configs are not wire-encodable")
	}
	if j.Trace != nil {
		return WireJob{}, errors.New("fleet: traced jobs are not wire-encodable")
	}
	w := WireJob{
		Profile:     j.Profile.Name,
		Model:       j.Model.String(),
		InstPerCore: j.InstPerCore,
		Seed:        j.Seed,
		MaxCycles:   j.MaxCycles,
		Hists:       j.Hists,
	}
	if j.StepMode != config.StepSkip {
		w.StepMode = j.StepMode.String()
	}
	return w, nil
}

// Resolve translates the wire job back into a runner job. It is the inverse
// of EncodeJob: the resolved job produces the same content address and the
// same results as the original.
func (w WireJob) Resolve() (runner.Job, error) {
	p, ok := trace.Lookup(w.Profile)
	if !ok {
		return runner.Job{}, fmt.Errorf("fleet: unknown profile %q", w.Profile)
	}
	model, err := config.ParseModel(w.Model)
	if err != nil {
		return runner.Job{}, fmt.Errorf("fleet: job %q: %w", w.Profile, err)
	}
	step := config.StepSkip
	if w.StepMode != "" {
		if step, err = config.ParseStepMode(w.StepMode); err != nil {
			return runner.Job{}, fmt.Errorf("fleet: job %q: %w", w.Profile, err)
		}
	}
	if w.InstPerCore <= 0 {
		return runner.Job{}, fmt.Errorf("fleet: job %q: inst_per_core must be positive, got %d",
			w.Profile, w.InstPerCore)
	}
	return runner.Job{
		Profile:     p,
		Model:       model,
		InstPerCore: w.InstPerCore,
		Seed:        w.Seed,
		StepMode:    step,
		MaxCycles:   w.MaxCycles,
		Hists:       w.Hists,
	}, nil
}

// WireTimeout carries the fields of a sim.TimeoutError so the coordinator
// can rebuild the typed error — Result.TimedOut and the failure-row error
// string must come out exactly as a local run's would.
type WireTimeout struct {
	MaxCycles uint64 `json:"max_cycles"`
	Model     string `json:"model"`
	Workload  string `json:"workload"`
}

// WireResult is the serialized outcome of one job: the deterministic slice
// of a runner.Result (statistics, characterization, histograms, error)
// plus the worker-side wall clock for throughput reporting. Index is the
// job's position in the sweep's job list — results are positional, which
// is what makes fleet output placement-independent.
type WireResult struct {
	Index int `json:"index"`
	// Stats and Char round-trip exactly: all-integer counters and float64s
	// that encoding/json prints with shortest round-trip precision.
	Stats *stats.Machine         `json:"stats,omitempty"`
	Char  stats.Characterization `json:"char"`
	// Error/Timeout rebuild Result.Err; canceled results are never shipped
	// (they are not deterministic, so a worker abandons them instead).
	Error   string       `json:"error,omitempty"`
	Timeout *WireTimeout `json:"timeout,omitempty"`
	// Hists is the job's latency-histogram set (lossless wire encoding).
	Hists *hist.Set `json:"hists,omitempty"`
	// WallSeconds is the worker-side execution time — informational only,
	// excluded from all deterministic output.
	WallSeconds float64 `json:"wall_seconds"`
}

// EncodeResult serializes a job outcome for the completion report.
func EncodeResult(r runner.Result) WireResult {
	w := WireResult{
		Index:       r.Index,
		Stats:       r.Stats,
		Char:        r.Char,
		Hists:       r.Hists,
		WallSeconds: r.Wall.Seconds(),
	}
	if r.Err != nil {
		w.Error = r.Err.Error()
		var te *sim.TimeoutError
		if errors.As(r.Err, &te) {
			w.Timeout = &WireTimeout{MaxCycles: te.MaxCycles, Model: te.Model, Workload: te.Workload}
		}
	}
	return w
}

// wireError is a decoded remote failure: it preserves the exact error
// string the worker observed and, for timeouts, unwraps to the rebuilt
// sim.TimeoutError so errors.As classification works as if the job had run
// locally.
type wireError struct {
	msg     string
	timeout *sim.TimeoutError
}

func (e *wireError) Error() string { return e.msg }

func (e *wireError) Unwrap() error {
	if e.timeout == nil {
		return nil
	}
	return e.timeout
}

// Decode rebuilds the runner result, rebinding the coordinator's own job
// record (job identity never travels back — the coordinator is
// authoritative for what it asked).
func (w WireResult) Decode(j runner.Job) runner.Result {
	r := runner.Result{
		Job:   j,
		Index: w.Index,
		Stats: w.Stats,
		Char:  w.Char,
		Hists: w.Hists,
		Wall:  time.Duration(w.WallSeconds * float64(time.Second)),
	}
	if w.Error != "" || w.Timeout != nil {
		we := &wireError{msg: w.Error}
		if w.Timeout != nil {
			we.timeout = &sim.TimeoutError{
				MaxCycles: w.Timeout.MaxCycles, Model: w.Timeout.Model, Workload: w.Timeout.Workload,
			}
			if we.msg == "" {
				we.msg = we.timeout.Error()
			}
		}
		r.Err = we
	}
	return r
}

// AbandonedError is the terminal failure of a batch that exhausted its
// lease attempts: its jobs are failed rather than recirculated forever.
// Abandonment depends on which workers died, so results carrying it are
// operational — never cached, never part of the deterministic surface.
type AbandonedError struct {
	Batch    string
	Attempts int
}

func (e *AbandonedError) Error() string {
	return fmt.Sprintf("fleet: batch %s abandoned after %d lease attempts", e.Batch, e.Attempts)
}

// IsAbandoned reports whether err records fleet abandonment (for the result
// cache to refuse).
func IsAbandoned(err error) bool {
	var ae *AbandonedError
	return errors.As(err, &ae)
}

// Protocol messages. Every request carries the worker id minted at
// registration; an id the coordinator does not know is answered with HTTP
// 410 Gone, telling the worker to re-register (it survives coordinator
// restarts that way).

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Name string `json:"name,omitempty"`
	// Cores is the worker's parallel job capacity (its runner pool size).
	Cores int `json:"cores"`
}

// RegisterResponse assigns the worker its identity and cadences.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseSeconds is the lease TTL; HeartbeatSeconds the renewal cadence
	// the worker should use (TTL/3).
	LeaseSeconds     float64 `json:"lease_seconds"`
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
}

// LeaseRequest asks for one batch of work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse grants a batch (the HTTP layer answers 204 No Content when
// nothing is pending).
type LeaseResponse struct {
	BatchID string `json:"batch_id"`
	SweepID string `json:"sweep_id"`
	// Start is the sweep index of Jobs[0]; job k's sweep index is Start+k
	// (batches are contiguous spans of the job list).
	Start int       `json:"start"`
	Jobs  []WireJob `json:"jobs"`
}

// HeartbeatRequest renews the worker's leases.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Batches  []string `json:"batches,omitempty"`
}

// HeartbeatResponse lists batches the worker should abandon: their sweep
// was canceled, or their lease was forfeited and reassigned.
type HeartbeatResponse struct {
	Cancel []string `json:"cancel,omitempty"`
}

// WireSpan is one worker-side timeline span shipped back with a completion
// report: the batch-execute window and each job's execution window. Times
// are relative to the moment the worker began executing the batch — the
// coordinator anchors them at its own lease-grant timestamp when stitching
// the sweep timeline, so the protocol needs no cross-host clock sync (skew
// shifts a worker's block as a whole, never spans within it). Spans are
// operational data: informational only, excluded from all deterministic
// output, and an empty list is always valid (older workers simply ship
// none).
type WireSpan struct {
	// Name is a telemetry.Stage* constant ("worker-execute" or "job").
	Name string `json:"name"`
	// Job and Index identify the job for per-job spans (Index is the
	// sweep index, like WireResult.Index).
	Job   string `json:"job,omitempty"`
	Index int    `json:"index,omitempty"`
	// StartSeconds is the offset from the batch execution start.
	StartSeconds float64 `json:"start_seconds"`
	DurSeconds   float64 `json:"dur_seconds"`
}

// CompleteRequest reports a finished batch.
type CompleteRequest struct {
	WorkerID string       `json:"worker_id"`
	BatchID  string       `json:"batch_id"`
	Results  []WireResult `json:"results"`
	// Spans carries the worker-side timeline of the batch (see WireSpan).
	Spans []WireSpan `json:"spans,omitempty"`
}

// CompleteResponse acknowledges a completion. Accepted counts results that
// were recorded; a duplicate completion (the batch was finished by another
// holder first) reports Duplicate with Accepted 0 — first write wins.
type CompleteResponse struct {
	Accepted  int  `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// DeregisterRequest announces a graceful departure; the coordinator
// immediately requeues anything the worker still holds.
type DeregisterRequest struct {
	WorkerID string `json:"worker_id"`
}
