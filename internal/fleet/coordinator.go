package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"sesa/internal/config"
	"sesa/internal/runner"
	"sesa/internal/telemetry"
)

// ErrUnknownWorker rejects a request carrying a worker id the coordinator
// never minted (or forgot across a restart); the HTTP layer maps it to 410
// Gone and the worker re-registers.
var ErrUnknownWorker = fmt.Errorf("fleet: unknown worker id")

// run is one sweep in flight through the fabric: the authoritative job
// slice, the positional result slice filling in as completions arrive, and
// the progress tracker mirroring what a local pool would report.
type run struct {
	id       string
	jobs     []runner.Job
	wire     []WireJob
	results  []runner.Result
	jobDone  []bool
	left     int
	canceled bool
	closed   bool          // finished has been (or is being) closed
	finished chan struct{} // closed when left reaches 0 (or the run is canceled)
	progress *runner.Progress
	timeline *telemetry.Timeline // nil-safe; spans of the sweep's fleet life
	onResult func(i int, r runner.Result)
}

// batch is one lease unit: a contiguous span of a run's job list.
type batch struct {
	id         string
	run        *run
	span       runner.Span
	attempts   int    // times leased so far
	worker     string // current holder ("" while pending)
	workerName string // holder's -name label (survives holder deletion, for telemetry)
	leasedAt   time.Time
	expires    time.Time
	canceled   bool
}

// settled reports whether every job in the span already has a result
// (completed by some holder, or failed by abandonment/cancellation).
func (b *batch) settled() bool {
	for i := b.span.Start; i < b.span.End; i++ {
		if !b.run.jobDone[i] {
			return false
		}
	}
	return true
}

// workerState is the coordinator's ledger for one registered worker.
type workerState struct {
	id        string
	name      string
	cores     int
	leased    map[string]*batch
	completed int
	failed    int
	retried   int
	lastSeen  time.Time
	draining  bool
}

// Coordinator decomposes sweeps into batches and runs the lease protocol.
// One coordinator serves many sequential sweeps (sesa-serve runs one sweep
// at a time, but nothing here assumes that — concurrent RunJobs calls
// interleave their batches in the pending queue).
type Coordinator struct {
	opts config.Fleet
	log  *slog.Logger        // never nil (telemetry.Discard when unset)
	reg  *telemetry.Registry // nil-safe no-op when unset

	mu      sync.Mutex
	workers map[string]*workerState
	runs    map[string]*run
	batches map[string]*batch // every live run's batches, by id
	pending []*batch          // FIFO; expired re-leases go to the front
	wseq    int
	bseq    int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator builds a coordinator and starts its lease-expiry scanner.
// tel (may be nil) supplies the structured logger and the metrics registry
// the lease-lifecycle counters land in.
func NewCoordinator(opts config.Fleet, tel *telemetry.T) (*Coordinator, error) {
	opts = opts.WithDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:    opts,
		log:     tel.Component("fleet.coordinator"),
		reg:     tel.Registry(),
		workers: make(map[string]*workerState),
		runs:    make(map[string]*run),
		batches: make(map[string]*batch),
		stop:    make(chan struct{}),
	}
	c.registerGauges()
	c.wg.Add(1)
	go c.expiryLoop()
	return c, nil
}

// registerGauges installs the scrape-time families derived from live
// coordinator state: queue depth, in-flight jobs, registered workers and
// per-worker heartbeat age. They cost nothing until /metrics is read.
func (c *Coordinator) registerGauges() {
	c.reg.GaugeFunc("sesa_fleet_queue_depth",
		"Lease batches waiting to be granted.", func() []telemetry.Sample {
			c.mu.Lock()
			defer c.mu.Unlock()
			return []telemetry.Sample{{Value: float64(len(c.pending))}}
		})
	c.reg.GaugeFunc("sesa_fleet_inflight_jobs",
		"Jobs inside currently leased batches that have no result yet.", func() []telemetry.Sample {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, b := range c.batches {
				if b.worker == "" || b.canceled {
					continue
				}
				for i := b.span.Start; i < b.span.End; i++ {
					if !b.run.jobDone[i] {
						n++
					}
				}
			}
			return []telemetry.Sample{{Value: float64(n)}}
		})
	c.reg.GaugeFunc("sesa_fleet_workers",
		"Currently registered fleet workers.", func() []telemetry.Sample {
			c.mu.Lock()
			defer c.mu.Unlock()
			return []telemetry.Sample{{Value: float64(len(c.workers))}}
		})
	c.reg.GaugeFunc("sesa_fleet_worker_heartbeat_age_seconds",
		"Seconds since each worker's last register/lease/heartbeat/complete call.",
		func() []telemetry.Sample {
			c.mu.Lock()
			defer c.mu.Unlock()
			now := time.Now()
			out := make([]telemetry.Sample, 0, len(c.workers))
			for _, w := range c.workers {
				out = append(out, telemetry.Sample{
					Labels: [][2]string{{"worker", w.name}},
					Value:  now.Sub(w.lastSeen).Seconds(),
				})
			}
			return out
		})
}

// counter is the event-time increment helper: per-worker series are labeled
// with the worker's -name label (stable across re-registration), not the
// minted id, so a restarted worker keeps its series.
func (c *Coordinator) counter(name, help, workerName string) *telemetry.Counter {
	if workerName == "" {
		return c.reg.Counter(name, help)
	}
	return c.reg.Counter(name, help, "worker", workerName)
}

// Options returns the effective fleet parameters.
func (c *Coordinator) Options() config.Fleet { return c.opts }

// Close stops the expiry scanner. In-flight RunJobs calls are the caller's
// to cancel (sesa-serve cancels every sweep context before closing).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// expiryLoop reclaims batches whose lease expired without renewal. The scan
// cadence is a quarter TTL (bounded to stay responsive in tests with
// millisecond TTLs and cheap with long ones).
func (c *Coordinator) expiryLoop() {
	defer c.wg.Done()
	tick := c.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.expire(now)
		}
	}
}

// expire forfeits every lease older than its deadline: the batch goes back
// to the front of the pending queue (or its jobs fail once the attempt
// budget is spent), and the holder's failed counter grows.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	var notify []func()
	for id, b := range c.batches {
		if b.worker == "" || b.canceled || now.Before(b.expires) {
			continue
		}
		if w := c.workers[b.worker]; w != nil {
			delete(w.leased, id)
			w.failed++
		}
		c.counter("sesa_fleet_leases_expired_total",
			"Leases forfeited by TTL expiry without renewal.", b.workerName).Inc()
		b.run.timeline.Add(telemetry.Span{
			Name: telemetry.StageExpired, Cat: "coordinator", Batch: b.id,
			Worker: b.workerName, Attempt: b.attempts,
			Start: b.leasedAt, Dur: now.Sub(b.leasedAt),
		})
		c.log.Warn("lease expired, requeueing batch",
			telemetry.KeySweep, b.run.id, telemetry.KeyBatch, b.id,
			telemetry.KeyWorker, b.workerName, telemetry.KeyAttempt, b.attempts)
		b.worker = ""
		notify = append(notify, c.requeueLocked(b)...)
	}
	c.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
}

// requeueLocked puts a forfeited batch back in circulation, or abandons it
// once MaxAttempts leases have been burned. It returns progress/result
// notifications to invoke outside the lock.
func (c *Coordinator) requeueLocked(b *batch) []func() {
	if b.settled() || b.run.canceled {
		return nil
	}
	if b.attempts >= c.opts.MaxAttempts {
		c.reg.Counter("sesa_fleet_batches_abandoned_total",
			"Batches failed outright after exhausting their lease attempts.").Inc()
		c.log.Error("batch abandoned after exhausting lease attempts",
			telemetry.KeySweep, b.run.id, telemetry.KeyBatch, b.id,
			telemetry.KeyAttempt, b.attempts)
		return c.failBatchLocked(b, &AbandonedError{Batch: b.id, Attempts: b.attempts})
	}
	// Front of the queue: a reassigned batch is the sweep's oldest
	// outstanding work, and latency to re-place it bounds worker-loss
	// recovery time.
	c.pending = append([]*batch{b}, c.pending...)
	return nil
}

// failBatchLocked settles every unfinished job in the batch with err.
func (c *Coordinator) failBatchLocked(b *batch, err error) []func() {
	r := b.run
	var notify []func()
	for i := b.span.Start; i < b.span.End; i++ {
		if r.jobDone[i] {
			continue
		}
		res := runner.Result{Job: r.jobs[i], Index: i, Err: err}
		notify = append(notify, c.settleJobLocked(r, i, res)...)
	}
	return notify
}

// settleJobLocked records job i's result exactly once and returns the
// notifications (progress, cache hook, completion signal) to run unlocked.
func (c *Coordinator) settleJobLocked(r *run, i int, res runner.Result) []func() {
	if r.jobDone[i] {
		return nil
	}
	r.jobDone[i] = true
	r.results[i] = res
	r.left--
	notify := []func(){func() {
		r.progress.JobDone(&r.results[i])
		if r.onResult != nil {
			r.onResult(i, r.results[i])
		}
	}}
	if r.left == 0 && !r.closed {
		r.closed = true
		done := r.finished
		notify = append(notify, func() { close(done) })
	}
	return notify
}

// RunJobs distributes jobs across the fleet and blocks until every job has
// a result or ctx is canceled. Results come back in job order, satisfying
// the same contract as runner.Pool.RunContext: results[i] depends only on
// jobs[i], so output is byte-identical to a local run. progress (may be
// nil) is driven exactly like a local pool would: Begin now, JobStarted at
// lease time, JobDone per completion. tl (may be nil) receives the sweep's
// fleet timeline: shard/lease/report spans recorded here plus the
// worker-execute and per-job spans shipped back in completion reports.
// onResult (may be nil) fires once per settled job, in completion order —
// the coordinator's cache hook.
func (c *Coordinator) RunJobs(ctx context.Context, sweepID string, jobs []runner.Job,
	progress *runner.Progress, tl *telemetry.Timeline,
	onResult func(i int, r runner.Result)) ([]runner.Result, error) {
	wire := make([]WireJob, len(jobs))
	for i, j := range jobs {
		w, err := EncodeJob(j)
		if err != nil {
			return nil, fmt.Errorf("fleet: job %d (%s): %w", i, j.Name(), err)
		}
		wire[i] = w
	}
	progress.Begin(len(jobs))
	r := &run{
		id:       sweepID,
		jobs:     jobs,
		wire:     wire,
		results:  make([]runner.Result, len(jobs)),
		jobDone:  make([]bool, len(jobs)),
		left:     len(jobs),
		finished: make(chan struct{}),
		progress: progress,
		timeline: tl,
		onResult: onResult,
	}
	shardStart := time.Now()
	c.mu.Lock()
	if _, dup := c.runs[sweepID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: sweep %s already running", sweepID)
	}
	c.runs[sweepID] = r
	batches := 0
	for _, sp := range runner.Decompose(len(jobs), c.opts.BatchSize) {
		c.bseq++
		b := &batch{id: fmt.Sprintf("b-%06d", c.bseq), run: r, span: sp}
		c.batches[b.id] = b
		c.pending = append(c.pending, b)
		batches++
	}
	c.mu.Unlock()
	tl.Add(telemetry.Span{
		Name: telemetry.StageShard, Cat: "coordinator",
		Start: shardStart, Dur: time.Since(shardStart),
	})
	c.log.Info("sweep sharded across fleet",
		telemetry.KeySweep, sweepID, "jobs", len(jobs), "batches", batches)

	if len(jobs) == 0 {
		close(r.finished)
	}
	select {
	case <-r.finished:
	case <-ctx.Done():
		c.cancelRun(r, ctx)
		<-r.finished
	}
	c.release(r)
	return r.results, nil
}

// cancelRun marks the run canceled, drops its pending batches, flags its
// leased batches for worker-side abandonment (delivered on the next
// heartbeat or lease renewal) and fails every unfinished job with the
// context's error — mirroring the local pool's canceled-before-ran results.
func (c *Coordinator) cancelRun(r *run, ctx context.Context) {
	err := ctx.Err()
	if cause := context.Cause(ctx); cause != nil && cause != err {
		err = fmt.Errorf("%w (%w)", err, cause)
	}
	cerr := fmt.Errorf("runner: sweep canceled before job ran: %w", err)

	c.mu.Lock()
	if r.canceled {
		c.mu.Unlock()
		return
	}
	r.canceled = true
	kept := c.pending[:0]
	for _, b := range c.pending {
		if b.run == r {
			continue
		}
		kept = append(kept, b)
	}
	c.pending = kept
	var notify []func()
	for _, b := range c.batches {
		if b.run != r {
			continue
		}
		b.canceled = true
		notify = append(notify, c.failBatchLocked(b, cerr)...)
	}
	if !r.closed {
		r.closed = true
		done := r.finished
		notify = append(notify, func() { close(done) })
	}
	c.mu.Unlock()
	c.log.Info("sweep canceled, dropping its batches", telemetry.KeySweep, r.id)
	for _, fn := range notify {
		fn()
	}
}

// release forgets a finished run's bookkeeping (its batches stay known just
// long enough for stragglers' completions to be answered as duplicates —
// they are removed here, so a late completion gets Duplicate: true via the
// missing-batch path).
func (c *Coordinator) release(r *run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.runs, r.id)
	for id, b := range c.batches {
		if b.run == r {
			delete(c.batches, id)
			for _, w := range c.workers {
				delete(w.leased, id)
			}
		}
	}
	kept := c.pending[:0]
	for _, b := range c.pending {
		if b.run != r {
			kept = append(kept, b)
		}
	}
	c.pending = kept
}

// Register admits a worker and mints its id.
func (c *Coordinator) Register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wseq++
	w := &workerState{
		id:       fmt.Sprintf("w-%06d", c.wseq),
		name:     req.Name,
		cores:    req.Cores,
		leased:   make(map[string]*batch),
		lastSeen: time.Now(),
	}
	c.workers[w.id] = w
	c.reg.Counter("sesa_fleet_registrations_total",
		"Worker registrations accepted (re-registrations included).").Inc()
	c.log.Info("worker registered",
		telemetry.KeyWorker, w.name, "worker_id", w.id, "cores", w.cores)
	return RegisterResponse{
		WorkerID:         w.id,
		LeaseSeconds:     c.opts.LeaseTTL.Seconds(),
		HeartbeatSeconds: c.opts.HeartbeatEvery().Seconds(),
	}
}

// Lease hands the worker the oldest pending batch, or ok=false when none is
// runnable. Leasing marks every job in the batch as started in the sweep's
// progress view.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, bool, error) {
	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		return LeaseResponse{}, false, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	if w.draining {
		c.mu.Unlock()
		return LeaseResponse{}, false, nil
	}
	var b *batch
	for len(c.pending) > 0 {
		cand := c.pending[0]
		c.pending = c.pending[1:]
		if cand.canceled || cand.run.canceled || cand.settled() {
			continue
		}
		b = cand
		break
	}
	if b == nil {
		c.mu.Unlock()
		return LeaseResponse{}, false, nil
	}
	if b.attempts > 0 {
		w.retried++
	}
	b.attempts++
	b.worker = w.id
	b.workerName = w.name
	b.leasedAt = time.Now()
	b.expires = b.leasedAt.Add(c.opts.LeaseTTL)
	w.leased[b.id] = b
	c.counter("sesa_fleet_leases_granted_total",
		"Lease batches granted to workers.", w.name).Inc()
	c.log.Debug("lease granted",
		telemetry.KeySweep, b.run.id, telemetry.KeyBatch, b.id,
		telemetry.KeyWorker, w.name, telemetry.KeyAttempt, b.attempts,
		"jobs", b.span.Len())
	resp := LeaseResponse{
		BatchID: b.id,
		SweepID: b.run.id,
		Start:   b.span.Start,
		Jobs:    append([]WireJob(nil), b.run.wire[b.span.Start:b.span.End]...),
	}
	r := b.run
	span := b.span
	c.mu.Unlock()

	for i := span.Start; i < span.End; i++ {
		r.progress.JobStarted(i, r.jobs[i].Name())
	}
	return resp, true, nil
}

// Heartbeat renews the worker's leases and reports which batches it should
// abandon (sweep canceled, or lease forfeited and no longer this worker's).
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w == nil {
		return HeartbeatResponse{}, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	var resp HeartbeatResponse
	for _, id := range req.Batches {
		b := c.batches[id]
		if b == nil || b.canceled || b.run.canceled || b.worker != w.id {
			resp.Cancel = append(resp.Cancel, id)
			continue
		}
		b.expires = time.Now().Add(c.opts.LeaseTTL)
		c.counter("sesa_fleet_leases_renewed_total",
			"Lease renewals applied by worker heartbeats.", w.name).Inc()
	}
	return resp, nil
}

// Complete records a finished batch's results. First write wins per job:
// results for jobs already settled (a reassigned batch finished twice) are
// dropped — both copies are byte-identical, so dropping loses nothing. A
// batch the coordinator no longer tracks is acknowledged as a duplicate.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	reportStart := time.Now()
	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		return CompleteResponse{}, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	b := c.batches[req.BatchID]
	if b == nil {
		c.mu.Unlock()
		c.counter("sesa_fleet_duplicate_completions_total",
			"Completion reports for batches already settled or released.", w.name).Inc()
		return CompleteResponse{Duplicate: true}, nil
	}
	if b.worker == w.id {
		delete(w.leased, req.BatchID)
		b.worker = ""
	}
	r := b.run
	if b.canceled || r.canceled {
		c.mu.Unlock()
		return CompleteResponse{}, nil
	}
	accepted := 0
	failed := 0
	dup := b.settled()
	var notify []func()
	for _, wr := range req.Results {
		i := wr.Index
		if i < b.span.Start || i >= b.span.End {
			c.mu.Unlock()
			return CompleteResponse{}, fmt.Errorf(
				"fleet: batch %s: result index %d outside span [%d,%d)",
				req.BatchID, i, b.span.Start, b.span.End)
		}
		if r.jobDone[i] {
			continue
		}
		res := wr.Decode(r.jobs[i])
		if res.Canceled() {
			// Canceled results are not deterministic; a well-behaved
			// worker never ships one, and the coordinator refuses any.
			continue
		}
		accepted++
		if res.Err != nil {
			failed++
		}
		notify = append(notify, c.settleJobLocked(r, i, res)...)
	}
	if accepted > 0 {
		w.completed++
	}
	tl, anchor, attempt := r.timeline, b.leasedAt, b.attempts
	batchID, sweepID, workerName := b.id, r.id, w.name
	c.mu.Unlock()

	if accepted > 0 {
		c.counter("sesa_fleet_batches_completed_total",
			"Batches whose completion report was accepted.", workerName).Inc()
		if failed > 0 {
			c.counter("sesa_fleet_batches_failed_total",
				"Accepted batches containing at least one failed job.", workerName).Inc()
		}
		// Stitch the worker's spans into the sweep timeline, anchored at
		// the lease grant so no cross-host clock sync is needed.
		tl.Add(telemetry.Span{
			Name: telemetry.StageLease, Cat: "coordinator", Batch: batchID,
			Worker: workerName, Attempt: attempt,
			Start: anchor, Dur: reportStart.Sub(anchor),
		})
		for _, ws := range req.Spans {
			tl.Add(telemetry.Span{
				Name: ws.Name, Cat: "worker", Batch: batchID, Worker: workerName,
				Job: ws.Job, Index: ws.Index,
				Start: anchor.Add(time.Duration(ws.StartSeconds * float64(time.Second))),
				Dur:   time.Duration(ws.DurSeconds * float64(time.Second)),
			})
		}
		tl.Add(telemetry.Span{
			Name: telemetry.StageReport, Cat: "coordinator", Batch: batchID,
			Worker: workerName, Start: reportStart, Dur: time.Since(reportStart),
		})
		c.log.Debug("batch completed",
			telemetry.KeySweep, sweepID, telemetry.KeyBatch, batchID,
			telemetry.KeyWorker, workerName, "accepted", accepted, "failed", failed)
	} else if dup {
		c.counter("sesa_fleet_duplicate_completions_total",
			"Completion reports for batches already settled or released.", workerName).Inc()
		c.log.Debug("duplicate completion dropped (first write won)",
			telemetry.KeySweep, sweepID, telemetry.KeyBatch, batchID,
			telemetry.KeyWorker, workerName)
	}
	for _, fn := range notify {
		fn()
	}
	return CompleteResponse{Accepted: accepted, Duplicate: dup && accepted == 0}, nil
}

// Deregister retires a worker: anything it still holds goes straight back
// to the pending queue (without burning an attempt — a graceful departure
// is not a failure), and its row leaves the status table.
func (c *Coordinator) Deregister(req DeregisterRequest) error {
	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		return ErrUnknownWorker
	}
	w.draining = true
	var notify []func()
	for id, b := range w.leased {
		delete(w.leased, id)
		b.worker = ""
		b.attempts-- // give the abandoned lease back its attempt
		if b.attempts < 0 {
			b.attempts = 0
		}
		c.counter("sesa_fleet_leases_refunded_total",
			"Leases handed back by gracefully deregistering workers.", w.name).Inc()
		notify = append(notify, c.requeueLocked(b)...)
	}
	delete(c.workers, req.WorkerID)
	c.log.Info("worker deregistered",
		telemetry.KeyWorker, w.name, "worker_id", w.id,
		"completed_batches", w.completed)
	c.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
	return nil
}

// WorkerStatus snapshots the per-worker rows for /status, ordered by worker
// id (registration order).
func (c *Coordinator) WorkerStatus() []runner.WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	rows := make([]runner.WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		rows = append(rows, runner.WorkerStatus{
			ID:                   w.id,
			Name:                 w.name,
			Cores:                w.cores,
			Leased:               len(w.leased),
			Completed:            w.completed,
			Failed:               w.failed,
			Retried:              w.retried,
			LastHeartbeatSeconds: now.Sub(w.lastSeen).Seconds(),
			Draining:             w.draining,
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
	return rows
}
