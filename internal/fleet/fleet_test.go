package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sesa/internal/config"
	"sesa/internal/runner"
	"sesa/internal/trace"
)

// testJobs builds n small deterministic jobs (distinct seeds so each is a
// distinct content address).
func testJobs(t *testing.T, n int, hists bool) []runner.Job {
	t.Helper()
	p, ok := trace.Lookup("radix")
	if !ok {
		t.Fatal("radix profile missing")
	}
	model, err := config.ParseModel("x86")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]runner.Job, n)
	for i := range jobs {
		jobs[i] = runner.Job{
			Profile:     p,
			Model:       model,
			InstPerCore: 500,
			Seed:        uint64(100 + i),
			Hists:       hists,
		}
	}
	return jobs
}

func newTestCoordinator(t *testing.T, opts config.Fleet) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// runAsync drives RunJobs in a goroutine, returning the channel its results
// land on.
func runAsync(ctx context.Context, c *Coordinator, id string, jobs []runner.Job) <-chan []runner.Result {
	out := make(chan []runner.Result, 1)
	go func() {
		res, err := c.RunJobs(ctx, id, jobs, nil, nil, nil)
		if err != nil {
			res = nil
		}
		out <- res
	}()
	return out
}

// localResults runs the same jobs on a local pool — the byte-identity
// reference for every fleet path.
func localResults(t *testing.T, jobs []runner.Job) []runner.Result {
	t.Helper()
	res, _ := runner.Pool{Workers: 2, Cache: trace.Shared()}.Run(jobs)
	return res
}

// sameResults compares the deterministic slice of two result sets: stats,
// characterization, histograms and error classification — everything the
// report layer serializes.
func sameResults(t *testing.T, got, want []runner.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("result %d: err %v, want %v", i, got[i].Err, want[i].Err)
		}
		if !reflect.DeepEqual(got[i].Char, want[i].Char) {
			t.Errorf("result %d: characterization differs:\n got %+v\nwant %+v", i, got[i].Char, want[i].Char)
		}
		if !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Errorf("result %d: stats differ", i)
		}
		gh, _ := json.Marshal(got[i].Hists)
		wh, _ := json.Marshal(want[i].Hists)
		if string(gh) != string(wh) {
			t.Errorf("result %d: histograms differ:\n got %s\nwant %s", i, gh, wh)
		}
	}
}

// completeBatch simulates a worker executing a lease and reporting it.
func completeBatch(t *testing.T, c *Coordinator, workerID string, lease LeaseResponse) CompleteResponse {
	t.Helper()
	jobs := make([]runner.Job, len(lease.Jobs))
	for k, wj := range lease.Jobs {
		j, err := wj.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		jobs[k] = j
	}
	results, _ := runner.Pool{Workers: 1, Cache: trace.Shared()}.Run(jobs)
	req := CompleteRequest{WorkerID: workerID, BatchID: lease.BatchID}
	for k := range results {
		wr := EncodeResult(results[k])
		wr.Index = lease.Start + k
		req.Results = append(req.Results, wr)
	}
	resp, err := c.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// leaseUntil polls Lease until a batch is granted or the deadline passes.
func leaseUntil(t *testing.T, c *Coordinator, workerID string, timeout time.Duration) LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		lease, ok, err := c.Lease(LeaseRequest{WorkerID: workerID})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return lease
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s got no lease within %s", workerID, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func statusRow(rows []runner.WorkerStatus, id string) (runner.WorkerStatus, bool) {
	for _, r := range rows {
		if r.ID == id {
			return r, true
		}
	}
	return runner.WorkerStatus{}, false
}

// TestLeaseExpiryReassignment is the heart of the failure model: a worker
// that leases a batch and goes silent forfeits it after the TTL, and the
// next worker to ask redoes the work — with the sweep's final results
// indistinguishable from the no-failure run.
func TestLeaseExpiryReassignment(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 2, LeaseTTL: 30 * time.Millisecond, MaxAttempts: 5})
	jobs := testJobs(t, 2, true)
	done := runAsync(context.Background(), c, "sw-exp", jobs)

	dead := c.Register(RegisterRequest{Name: "dead"})
	lease := leaseUntil(t, c, dead.WorkerID, time.Second)
	// The dead worker never heartbeats and never completes.

	live := c.Register(RegisterRequest{Name: "live"})
	release := leaseUntil(t, c, live.WorkerID, 2*time.Second)
	if release.BatchID != lease.BatchID {
		t.Fatalf("reassigned batch %s, want the forfeited %s", release.BatchID, lease.BatchID)
	}
	if resp := completeBatch(t, c, live.WorkerID, release); resp.Accepted != 2 {
		t.Fatalf("accepted %d results, want 2", resp.Accepted)
	}

	results := <-done
	sameResults(t, results, localResults(t, jobs))

	rows := c.WorkerStatus()
	if row, ok := statusRow(rows, dead.WorkerID); !ok || row.Failed != 1 {
		t.Errorf("dead worker row = %+v (ok=%v), want Failed=1", row, ok)
	}
	if row, ok := statusRow(rows, live.WorkerID); !ok || row.Retried != 1 || row.Completed != 1 {
		t.Errorf("live worker row = %+v (ok=%v), want Retried=1 Completed=1", row, ok)
	}
}

// TestDuplicateCompletionFirstWriteWins: when a forfeited batch is finished
// by both its old and new holder, the first report lands and the second is
// acknowledged as a duplicate — never double-counted, never an error.
func TestDuplicateCompletionFirstWriteWins(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 2, LeaseTTL: 30 * time.Millisecond, MaxAttempts: 5})
	jobs := testJobs(t, 2, false)
	done := runAsync(context.Background(), c, "sw-dup", jobs)

	w1 := c.Register(RegisterRequest{Name: "slow"})
	lease1 := leaseUntil(t, c, w1.WorkerID, time.Second)
	w2 := c.Register(RegisterRequest{Name: "fast"})
	lease2 := leaseUntil(t, c, w2.WorkerID, 2*time.Second)
	if lease2.BatchID != lease1.BatchID {
		t.Fatalf("second lease got %s, want reassigned %s", lease2.BatchID, lease1.BatchID)
	}

	if resp := completeBatch(t, c, w2.WorkerID, lease2); resp.Accepted != 2 || resp.Duplicate {
		t.Fatalf("first completion = %+v, want Accepted=2 Duplicate=false", resp)
	}
	// The sweep may already have finished and released its batches; both the
	// settled-batch and missing-batch paths must answer duplicate.
	if resp := completeBatch(t, c, w1.WorkerID, lease1); resp.Accepted != 0 || !resp.Duplicate {
		t.Fatalf("second completion = %+v, want Accepted=0 Duplicate=true", resp)
	}

	results := <-done
	sameResults(t, results, localResults(t, jobs))
	if row, ok := statusRow(c.WorkerStatus(), w1.WorkerID); !ok || row.Completed != 0 {
		t.Errorf("losing worker row = %+v (ok=%v), want Completed=0", row, ok)
	}
}

// TestBatchAbandonedAfterMaxAttempts: a batch that keeps getting leased to
// workers that die stops recirculating once the attempt budget is spent; its
// jobs fail with AbandonedError (which the result cache refuses).
func TestBatchAbandonedAfterMaxAttempts(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 4, LeaseTTL: 20 * time.Millisecond, MaxAttempts: 2})
	jobs := testJobs(t, 2, false)
	done := runAsync(context.Background(), c, "sw-abandon", jobs)

	w := c.Register(RegisterRequest{Name: "flaky"})
	leaseUntil(t, c, w.WorkerID, time.Second) // attempt 1: silence
	leaseUntil(t, c, w.WorkerID, time.Second) // attempt 2: silence

	results := <-done
	for i, r := range results {
		if !IsAbandoned(r.Err) {
			t.Fatalf("result %d err = %v, want AbandonedError", i, r.Err)
		}
	}
	var ae *AbandonedError
	if !errors.As(results[0].Err, &ae) || ae.Attempts != 2 {
		t.Errorf("abandonment = %+v, want Attempts=2", ae)
	}
}

// TestCancelPropagation: canceling a sweep's context fails its unfinished
// jobs like a local pool would, tells leaseholders to abandon via heartbeat,
// and drops its pending batches from circulation.
func TestCancelPropagation(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 1, LeaseTTL: time.Second, MaxAttempts: 5})
	jobs := testJobs(t, 3, false)
	ctx, cancel := context.WithCancel(context.Background())
	done := runAsync(ctx, c, "sw-cancel", jobs)

	w := c.Register(RegisterRequest{Name: "holder"})
	lease := leaseUntil(t, c, w.WorkerID, time.Second)

	cancel()
	results := <-done
	if results == nil {
		t.Fatal("RunJobs errored instead of returning canceled results")
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d err = %v, want context.Canceled", i, r.Err)
		}
		if !r.Canceled() {
			t.Fatalf("result %d not classified canceled", i)
		}
	}

	// The holder learns about the cancellation on its next heartbeat.
	hb, err := c.Heartbeat(HeartbeatRequest{WorkerID: w.WorkerID, Batches: []string{lease.BatchID}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Cancel) != 1 || hb.Cancel[0] != lease.BatchID {
		t.Fatalf("heartbeat cancel = %v, want [%s]", hb.Cancel, lease.BatchID)
	}
	// Nothing from the canceled sweep is leasable.
	if _, ok, _ := c.Lease(LeaseRequest{WorkerID: w.WorkerID}); ok {
		t.Fatal("leased a batch from a canceled sweep")
	}
}

// TestDeregisterRequeuesWithoutBurningAttempt: a graceful departure hands
// held batches back immediately and refunds the lease attempt — drain is
// not a failure.
func TestDeregisterRequeuesWithoutBurningAttempt(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 2, LeaseTTL: time.Minute, MaxAttempts: 1})
	jobs := testJobs(t, 2, false)
	done := runAsync(context.Background(), c, "sw-drain", jobs)

	w1 := c.Register(RegisterRequest{Name: "leaver"})
	lease := leaseUntil(t, c, w1.WorkerID, time.Second)
	if err := c.Deregister(DeregisterRequest{WorkerID: w1.WorkerID}); err != nil {
		t.Fatal(err)
	}
	if _, ok := statusRow(c.WorkerStatus(), w1.WorkerID); ok {
		t.Error("deregistered worker still in status table")
	}

	// MaxAttempts is 1: if deregistration burned the attempt, this re-lease
	// would be an abandonment instead of a grant.
	w2 := c.Register(RegisterRequest{Name: "stayer"})
	release := leaseUntil(t, c, w2.WorkerID, time.Second)
	if release.BatchID != lease.BatchID {
		t.Fatalf("re-lease got %s, want %s", release.BatchID, lease.BatchID)
	}
	completeBatch(t, c, w2.WorkerID, release)
	sameResults(t, <-done, localResults(t, jobs))
}

// TestWorkerCrashMidBatch is the end-to-end kill test over real HTTP: a
// worker is aborted while holding leases, its batches expire and are redone
// by a second worker, and the sweep's results match the no-failure run.
func TestWorkerCrashMidBatch(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 1, LeaseTTL: 60 * time.Millisecond, MaxAttempts: 10})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	jobs := testJobs(t, 6, true)
	done := runAsync(context.Background(), c, "sw-crash", jobs)

	victim := NewWorker(WorkerOptions{
		Coordinator: ts.URL, Name: "victim", Jobs: 1, Poll: 5 * time.Millisecond, Client: ts.Client(),
	})
	vdone := make(chan error, 1)
	go func() { vdone <- victim.Run(context.Background()) }()

	// Wait until the victim holds at least one lease, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var holding bool
		for _, row := range c.WorkerStatus() {
			if row.Name == "victim" && row.Leased > 0 {
				holding = true
			}
		}
		if holding {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.Abort()
	if err := <-vdone; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted worker returned %v, want context.Canceled", err)
	}

	rescuer := NewWorker(WorkerOptions{
		Coordinator: ts.URL, Name: "rescuer", Jobs: 2, Poll: 5 * time.Millisecond, Client: ts.Client(),
	})
	rctx, rcancel := context.WithCancel(context.Background())
	rdone := make(chan error, 1)
	go func() { rdone <- rescuer.Run(rctx) }()

	results := <-done
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d failed: %v", i, r.Err)
		}
	}
	sameResults(t, results, localResults(t, jobs))

	rcancel() // graceful drain: the rescuer deregisters
	if err := <-rdone; err != nil {
		t.Fatalf("draining worker returned %v", err)
	}
	if _, ok := statusRow(c.WorkerStatus(), "rescuer"); ok {
		t.Error("drained worker should have deregistered")
	}
}

// TestWorkerGracefulDrain: canceling Run's context mid-lease is the SIGTERM
// path — the worker finishes and reports its in-flight batch before
// deregistering, so no work is redone.
func TestWorkerGracefulDrain(t *testing.T) {
	c := newTestCoordinator(t, config.Fleet{BatchSize: 2, LeaseTTL: time.Minute, MaxAttempts: 1})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	jobs := testJobs(t, 2, false)
	done := runAsync(context.Background(), c, "sw-soft", jobs)

	w := NewWorker(WorkerOptions{
		Coordinator: ts.URL, Name: "drainer", Jobs: 1, Poll: 5 * time.Millisecond, Client: ts.Client(),
	})
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	go func() { wdone <- w.Run(wctx) }()

	// Cancel as soon as the worker holds the lease: with MaxAttempts 1 and a
	// one-minute TTL, the sweep can only finish if the draining worker
	// completes its in-flight batch instead of dropping it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if row, ok := statusRow(c.WorkerStatus(), "w-000001"); ok && row.Leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never leased the batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	wcancel()

	results := <-done
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d failed: %v", i, r.Err)
		}
	}
	sameResults(t, results, localResults(t, jobs))
	if err := <-wdone; err != nil {
		t.Fatalf("drained worker returned %v", err)
	}
	if w.BatchesDone() != 1 {
		t.Errorf("worker completed %d batches, want 1", w.BatchesDone())
	}
	if rows := c.WorkerStatus(); len(rows) != 0 {
		t.Errorf("worker rows after drain = %+v, want none", rows)
	}
}

// TestWireJobRejectsCustomConfig locks the encodability boundary.
func TestWireJobRejectsCustomConfig(t *testing.T) {
	j := testJobs(t, 1, false)[0]
	j.Config = &config.Config{}
	if _, err := EncodeJob(j); err == nil {
		t.Error("EncodeJob accepted a custom-config job")
	}
}

// TestWireJobRoundTrip: Resolve is EncodeJob's inverse.
func TestWireJobRoundTrip(t *testing.T) {
	orig := testJobs(t, 1, true)[0]
	orig.StepMode = config.StepNaive
	orig.MaxCycles = 123456
	w, err := EncodeJob(orig)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireJob
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, orig)
	}
}
