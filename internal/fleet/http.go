package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler returns the coordinator's protocol surface, mounted by sesa-serve
// under /v1/fleet:
//
//	POST /register    announce a worker, get an id + cadences
//	POST /lease       pull one batch (204 when nothing is pending)
//	POST /heartbeat   renew leases, learn which batches to abandon
//	POST /complete    report a finished batch's results
//	POST /deregister  graceful departure; held batches are requeued
//	GET  /workers     per-worker status rows (the /status fleet table)
//
// Requests with an unknown worker id get 410 Gone — the worker's cue to
// re-register after a coordinator restart.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeBody(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.Register(req))
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, ok, err := c.Lease(req)
		if err != nil {
			writeProtoError(w, err)
			return
		}
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := c.Heartbeat(req)
		if err != nil {
			writeProtoError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := c.Complete(req)
		if err != nil {
			writeProtoError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /deregister", func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Deregister(req); err != nil {
			writeProtoError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.WorkerStatus())
	})
	return mux
}

// decodeBody parses a JSON request body, answering 400 itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("fleet: bad request: %v", err)})
		return false
	}
	return true
}

// writeProtoError maps protocol errors to status codes.
func writeProtoError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ErrUnknownWorker) {
		status = http.StatusGone
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeJSON writes v as JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errGone is the client-side classification of a 410: the coordinator does
// not know this worker id any more.
var errGone = errors.New("fleet: coordinator does not know this worker (re-register)")

// postJSON is the worker-side protocol call: POST in, decode out. A 204
// returns false with no error (no content to decode); a 410 returns
// errGone; other non-2xx statuses surface the body as the error.
func postJSON(client *http.Client, url string, in, out any) (bool, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return false, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return false, nil
	case resp.StatusCode == http.StatusGone:
		return false, errGone
	case resp.StatusCode < 200 || resp.StatusCode > 299:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("fleet: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("fleet: %s: decoding response: %w", url, err)
		}
	}
	return true, nil
}
