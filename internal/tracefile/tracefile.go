// Package tracefile serializes programs and workloads to a line-oriented
// text format, so generated traces can be inspected, archived and replayed
// byte-identically — the artifact-evaluation workflow for a trace-driven
// simulator.
//
// Format (one instruction per line, '#' comments, blank lines ignored):
//
//	# sesa trace v1
//	thread 0
//	ld   r1, [0x1000]            ; optional "size=4" and "dep=r8" suffixes
//	st   [0x1008], 42
//	st   [0x1010], r3
//	alu  r2, r1, r0, imm=5, lat=2
//	br   pc=0x400, taken
//	fence
//	rmw  r1, [0x2000], add=1
//	thread 1
//	...
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sesa/internal/isa"
)

// Header is the first line of every trace file.
const Header = "# sesa trace v1"

// Write serializes the per-thread programs.
func Write(w io.Writer, threads []isa.Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, Header)
	for ti, p := range threads {
		fmt.Fprintf(bw, "thread %d\n", ti)
		for _, in := range p {
			if err := writeInst(bw, in); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeInst(w io.Writer, in isa.Inst) error {
	var err error
	switch in.Op {
	case isa.OpLoad:
		_, err = fmt.Fprintf(w, "ld r%d, [%#x]%s%s%s\n",
			in.Dst, in.Addr, sizeSuffix(in), depSuffix(in), pcSuffix(in))
	case isa.OpStore:
		if in.Src1 == isa.RegNone {
			_, err = fmt.Fprintf(w, "st [%#x], %d%s%s%s\n",
				in.Addr, in.Imm, sizeSuffix(in), depSuffix(in), pcSuffix(in))
		} else {
			_, err = fmt.Fprintf(w, "st [%#x], r%d%s%s%s\n",
				in.Addr, in.Src1, sizeSuffix(in), depSuffix(in), pcSuffix(in))
		}
	case isa.OpALU:
		_, err = fmt.Fprintf(w, "alu r%s, r%s, r%s, imm=%d, lat=%d%s\n",
			regStr(in.Dst), regStr(in.Src1), regStr(in.Src2), in.Imm, in.Lat, pcSuffix(in))
	case isa.OpBranch:
		taken := "nottaken"
		if in.Taken {
			taken = "taken"
		}
		_, err = fmt.Fprintf(w, "br pc=%#x, %s\n", in.PC, taken)
	case isa.OpFence:
		_, err = fmt.Fprintln(w, "fence")
	case isa.OpRMW:
		_, err = fmt.Fprintf(w, "rmw r%d, [%#x], add=%d%s\n", in.Dst, in.Addr, in.Imm, pcSuffix(in))
	case isa.OpNop:
		_, err = fmt.Fprintln(w, "nop")
	default:
		return fmt.Errorf("tracefile: cannot serialize op %v", in.Op)
	}
	return err
}

func regStr(r isa.Reg) string {
	if r == isa.RegNone {
		return "_"
	}
	return strconv.Itoa(int(r))
}

func sizeSuffix(in isa.Inst) string {
	if in.Size == 0 || in.Size == 8 {
		return ""
	}
	return fmt.Sprintf(", size=%d", in.Size)
}

func depSuffix(in isa.Inst) string {
	if in.Src2 == isa.RegNone {
		return ""
	}
	return fmt.Sprintf(", dep=r%d", in.Src2)
}

func pcSuffix(in isa.Inst) string {
	if in.PC == 0 {
		return ""
	}
	return fmt.Sprintf(", pc=%#x", in.PC)
}

// Read parses a trace file back into per-thread programs.
func Read(r io.Reader) ([]isa.Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var threads []isa.Program
	cur := -1
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !sawHeader {
				if line != Header {
					return nil, fmt.Errorf("tracefile:%d: bad header %q", lineNo, line)
				}
				sawHeader = true
			}
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("tracefile:%d: missing %q header", lineNo, Header)
		}
		if strings.HasPrefix(line, "thread ") {
			id, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "thread ")))
			if err != nil || id != len(threads) {
				return nil, fmt.Errorf("tracefile:%d: threads must be declared in order, got %q", lineNo, line)
			}
			threads = append(threads, isa.Program{})
			cur = id
			continue
		}
		if cur < 0 {
			return nil, fmt.Errorf("tracefile:%d: instruction before any thread declaration", lineNo)
		}
		in, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("tracefile:%d: %v", lineNo, err)
		}
		threads[cur] = append(threads[cur], in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for ti, p := range threads {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("tracefile: thread %d: %v", ti, err)
		}
	}
	return threads, nil
}

// parseInst parses one instruction line.
func parseInst(line string) (isa.Inst, error) {
	op, rest, _ := strings.Cut(line, " ")
	fields := splitFields(rest)
	switch op {
	case "ld":
		if len(fields) < 2 {
			return isa.Inst{}, fmt.Errorf("ld needs a register and an address")
		}
		dst, err := parseReg(fields[0])
		if err != nil {
			return isa.Inst{}, err
		}
		addr, err := parseAddr(fields[1])
		if err != nil {
			return isa.Inst{}, err
		}
		in := isa.Load(dst, addr)
		return applyOptions(in, fields[2:])
	case "st":
		if len(fields) < 2 {
			return isa.Inst{}, fmt.Errorf("st needs an address and a value")
		}
		addr, err := parseAddr(fields[0])
		if err != nil {
			return isa.Inst{}, err
		}
		var in isa.Inst
		if strings.HasPrefix(fields[1], "r") {
			src, err := parseReg(fields[1])
			if err != nil {
				return isa.Inst{}, err
			}
			in = isa.StoreReg(addr, src)
		} else {
			v, err := parseUint(fields[1])
			if err != nil {
				return isa.Inst{}, err
			}
			in = isa.StoreImm(addr, v)
		}
		return applyOptions(in, fields[2:])
	case "alu":
		if len(fields) < 3 {
			return isa.Inst{}, fmt.Errorf("alu needs three register operands")
		}
		dst, err := parseRegOrNone(fields[0])
		if err != nil {
			return isa.Inst{}, err
		}
		s1, err := parseRegOrNone(fields[1])
		if err != nil {
			return isa.Inst{}, err
		}
		s2, err := parseRegOrNone(fields[2])
		if err != nil {
			return isa.Inst{}, err
		}
		in := isa.Inst{Op: isa.OpALU, Dst: dst, Src1: s1, Src2: s2}
		return applyOptions(in, fields[3:])
	case "br":
		in := isa.Inst{Op: isa.OpBranch, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
		return applyOptions(in, fields)
	case "fence":
		return isa.Fence(), nil
	case "nop":
		return isa.Nop(), nil
	case "rmw":
		if len(fields) < 2 {
			return isa.Inst{}, fmt.Errorf("rmw needs a register and an address")
		}
		dst, err := parseReg(fields[0])
		if err != nil {
			return isa.Inst{}, err
		}
		addr, err := parseAddr(fields[1])
		if err != nil {
			return isa.Inst{}, err
		}
		in := isa.RMW(dst, addr, 0)
		return applyOptions(in, fields[2:])
	}
	return isa.Inst{}, fmt.Errorf("unknown mnemonic %q", op)
}

// applyOptions parses key=value suffix fields.
func applyOptions(in isa.Inst, opts []string) (isa.Inst, error) {
	for _, o := range opts {
		key, val, ok := strings.Cut(o, "=")
		if !ok {
			switch o {
			case "taken":
				in.Taken = true
				continue
			case "nottaken":
				in.Taken = false
				continue
			}
			return in, fmt.Errorf("bad option %q", o)
		}
		switch key {
		case "size":
			v, err := parseUint(val)
			if err != nil {
				return in, err
			}
			in.Size = uint8(v)
		case "dep":
			r, err := parseReg(val)
			if err != nil {
				return in, err
			}
			in.Src2 = r
		case "imm", "add":
			v, err := parseUint(val)
			if err != nil {
				return in, err
			}
			in.Imm = v
		case "lat":
			v, err := parseUint(val)
			if err != nil {
				return in, err
			}
			in.Lat = uint8(v)
		case "pc":
			v, err := parseUint(val)
			if err != nil {
				return in, err
			}
			in.PC = v
		default:
			return in, fmt.Errorf("unknown option %q", key)
		}
	}
	return in, nil
}

func splitFields(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseReg(s string) (isa.Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 || v >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(v), nil
}

func parseRegOrNone(s string) (isa.Reg, error) {
	if s == "r_" || s == "_" {
		return isa.RegNone, nil
	}
	return parseReg(s)
}

func parseAddr(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, "]"), "[")
	return parseUint(s)
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}
