package tracefile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sesa/internal/isa"
	"sesa/internal/trace"
)

func roundTrip(t *testing.T, threads []isa.Program) []isa.Program {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, threads); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read back failed: %v\nfile:\n%s", err, buf.String())
	}
	return got
}

func TestRoundTripHandWritten(t *testing.T) {
	ld4 := isa.Inst{Op: isa.OpLoad, Dst: 1, Src1: isa.RegNone, Src2: 8, Addr: 0x104, Size: 4, PC: 0x400}
	threads := []isa.Program{
		{
			isa.Load(1, 0x1000),
			ld4,
			isa.StoreImm(0x1008, 42),
			isa.StoreReg(0x1010, 3),
			isa.ALUImm(2, 1, 5, 2),
			isa.Branch(0x404, true),
			isa.Fence(),
			isa.RMW(4, 0x2000, 1),
			isa.Nop(),
		},
		{
			isa.Branch(0x500, false),
			isa.Load(7, 0x3000),
		},
	}
	got := roundTrip(t, threads)
	if len(got) != 2 {
		t.Fatalf("threads = %d", len(got))
	}
	for ti := range threads {
		if len(got[ti]) != len(threads[ti]) {
			t.Fatalf("thread %d: %d instructions, want %d", ti, len(got[ti]), len(threads[ti]))
		}
		for i := range threads[ti] {
			want, have := threads[ti][i], got[ti][i]
			// Lat/PC on branches and metadata must survive.
			if want.Op != have.Op || want.Addr != have.Addr || want.Dst != have.Dst ||
				want.Src1 != have.Src1 || want.Src2 != have.Src2 ||
				want.Imm != have.Imm || want.EffSize() != have.EffSize() ||
				want.Taken != have.Taken || want.Lat != have.Lat {
				t.Errorf("thread %d inst %d: %+v != %+v", ti, i, have, want)
			}
		}
	}
}

// TestRoundTripGeneratedWorkloads: every Table IV profile's generated trace
// survives a byte round trip.
func TestRoundTripGeneratedWorkloads(t *testing.T) {
	for _, name := range []string{"barnes", "x264", "505.mcf"} {
		p, _ := trace.Lookup(name)
		w := trace.Build(p, 2, 1500, 7)
		got := roundTrip(t, w.Programs)
		for ti := range w.Programs {
			for i := range w.Programs[ti] {
				a, b := w.Programs[ti][i], got[ti][i]
				if a.Op != b.Op || a.Addr != b.Addr || a.Imm != b.Imm ||
					a.Dst != b.Dst || a.Src1 != b.Src1 || a.Src2 != b.Src2 ||
					a.Taken != b.Taken || a.Lat != b.Lat || a.EffSize() != b.EffSize() {
					t.Fatalf("%s thread %d inst %d: %+v != %+v", name, ti, i, b, a)
				}
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"ld r1, [0x100]",                        // no header
		"# sesa trace v2\nthread 0\n",           // bad header
		Header + "\nld r1, [0x100]\n",           // inst before thread
		Header + "\nthread 1\n",                 // out-of-order thread ids
		Header + "\nthread 0\nfoo r1\n",         // unknown mnemonic
		Header + "\nthread 0\nld r99, [0x0]\n",  // bad register
		Header + "\nthread 0\nld r1, [0x101]\n", // misaligned (Validate)
		Header + "\nthread 0\nld r1\n",          // missing operand
		Header + "\nthread 0\nld r1, [0x100], bogus=1\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted:\n%s", i, c)
		}
	}
}

func TestReadToleratesCommentsAndBlanks(t *testing.T) {
	in := Header + "\n\n# a comment\nthread 0\n\nld r1, [0x100]\n# trailing\n"
	threads, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 1 || len(threads[0]) != 1 {
		t.Fatalf("parsed %v", threads)
	}
}

// TestRoundTripProperty: arbitrary valid instructions survive the trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(dst, src uint8, addrWords uint32, v uint64, lat uint8, taken bool) bool {
		d := isa.Reg(dst % isa.NumRegs)
		s := isa.Reg(src % isa.NumRegs)
		addr := uint64(addrWords) * 8
		prog := isa.Program{
			isa.Load(d, addr),
			isa.StoreImm(addr, v),
			isa.StoreReg(addr, s),
			isa.ALUImm(d, s, v, lat),
			isa.Branch(0x40, taken),
			isa.RMW(d, addr, v),
		}
		var buf bytes.Buffer
		if err := Write(&buf, []isa.Program{prog}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 || len(got[0]) != len(prog) {
			return false
		}
		for i := range prog {
			a, b := prog[i], got[0][i]
			if a.Op != b.Op || a.Addr != b.Addr || a.Imm != b.Imm || a.Taken != b.Taken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
