package core

import (
	"testing"
	"testing/quick"

	"sesa/internal/isa"
)

func newStore(seq uint64, addr uint64) *entry {
	return &entry{
		inst:   isa.StoreImm(addr, seq),
		dynSeq: seq,
		alive:  true,
	}
}

func TestStoreQueueAllocFreeWrapSortingBit(t *testing.T) {
	q := newStoreQueue(4)
	var seq uint64

	// Fill, drain, and refill across the wrap-around: the sorting bit of
	// each slot must flip, so keys from the two generations differ.
	firstGen := make([]key, 4)
	for i := 0; i < 4; i++ {
		seq++
		e := newStore(seq, uint64(i*64))
		q.alloc(e)
		firstGen[i] = e.sqKey
		e.status = stRetired
	}
	if !q.full() {
		t.Fatal("queue should be full")
	}
	for i := 0; i < 4; i++ {
		e := q.oldest()
		e.writtenL1 = true
		q.free(e)
	}
	if !q.empty() {
		t.Fatal("queue should be empty")
	}
	for i := 0; i < 4; i++ {
		seq++
		e := newStore(seq, uint64(i*64))
		q.alloc(e)
		if e.sqKey.slot != firstGen[i].slot {
			t.Errorf("slot %d: expected same slot reuse", i)
		}
		if e.sqKey.sort == firstGen[i].sort {
			t.Errorf("slot %d: sorting bit did not flip on wrap", i)
		}
	}
}

func TestStoreQueuePresent(t *testing.T) {
	q := newStoreQueue(2)
	e1 := newStore(1, 0)
	q.alloc(e1)
	k1 := e1.sqKey
	if !q.present(k1) {
		t.Fatal("freshly allocated store should be present")
	}
	e1.status = stRetired
	e1.writtenL1 = true
	q.free(e1)
	if q.present(k1) {
		t.Error("freed store should not be present")
	}
	// A new store in the same slot must not match the old key: the tail
	// wraps back to slot 0 on the second allocation.
	q.alloc(newStore(2, 64))
	e3 := newStore(3, 128)
	q.alloc(e3)
	if e3.sqSlot != e1.sqSlot {
		t.Fatalf("expected slot reuse, got %d vs %d", e3.sqSlot, e1.sqSlot)
	}
	if q.present(k1) {
		t.Error("old-generation key must not match the slot's new occupant")
	}
	if !q.present(e3.sqKey) {
		t.Error("new occupant should be present under its own key")
	}
}

func TestStoreQueueRollback(t *testing.T) {
	q := newStoreQueue(4)
	a, b, c := newStore(1, 0), newStore(2, 64), newStore(3, 128)
	q.alloc(a)
	q.alloc(b)
	q.alloc(c)
	// Squash flushes the youngest suffix: c then b.
	q.rollback(c)
	q.rollback(b)
	if q.count != 1 || q.oldest() != a {
		t.Fatalf("rollback broke the queue: count=%d", q.count)
	}
	// Re-allocation reuses the rolled-back slots with unchanged sorting
	// bits (no wrap happened).
	b2 := newStore(4, 64)
	q.alloc(b2)
	if b2.sqSlot != b.sqSlot || b2.sqKey.sort != b.sqKey.sort {
		t.Error("re-allocated slot should keep its sorting bit")
	}
}

func TestStoreQueueRollbackOutOfOrderPanics(t *testing.T) {
	q := newStoreQueue(4)
	a, b := newStore(1, 0), newStore(2, 64)
	q.alloc(a)
	q.alloc(b)
	defer func() {
		if recover() == nil {
			t.Error("rolling back a non-youngest store must panic")
		}
	}()
	q.rollback(a)
}

func TestStoreQueueSearchOrder(t *testing.T) {
	q := newStoreQueue(8)
	old := newStore(1, 0x100)
	mid := newStore(2, 0x100)
	q.alloc(old)
	q.alloc(mid)
	ld := &entry{inst: isa.Load(1, 0x100), dynSeq: 3, alive: true}
	m, unk := q.youngestOlderMatch(ld)
	if m != mid {
		t.Error("search must return the youngest older matching store")
	}
	if unk != nil {
		t.Error("no unknown-address store expected")
	}

	// A younger store (dynSeq 4) must not match a load with dynSeq 3.
	q.alloc(newStore(4, 0x100))
	if m, _ := q.youngestOlderMatch(ld); m != mid {
		t.Error("younger store must be invisible to an older load")
	}
}

func TestStoreQueueUnknownAddressBlocksSearch(t *testing.T) {
	q := newStoreQueue(8)
	known := newStore(1, 0x200)
	q.alloc(known)
	// Store with an address dependency that has not resolved.
	dep := &entry{inst: isa.Inst{Op: isa.OpStore, Src1: isa.RegNone, Src2: 5, Addr: 0x200}, dynSeq: 2, alive: true}
	dep.src2Prod = &entry{status: stDispatched}
	q.alloc(dep)
	ld := &entry{inst: isa.Load(1, 0x200), dynSeq: 3, alive: true}
	m, unk := q.youngestOlderMatch(ld)
	if unk != dep {
		t.Error("unresolved store should be reported")
	}
	// The older resolved match is returned alongside the younger
	// unresolved store: the caller may speculate past the unknown
	// (StoreSet D-speculation) and forward from the match; if the unknown
	// later resolves to the same address, the dependence-violation check
	// squashes the load.
	if m != known {
		t.Error("resolved older match should be returned for D-speculation")
	}
	if unk.dynSeq < m.dynSeq {
		t.Error("reported unknown must be younger than the match")
	}
}

func TestStoreQueueAnyOlderUnwritten(t *testing.T) {
	q := newStoreQueue(4)
	a := newStore(1, 0)
	b := newStore(5, 64)
	q.alloc(a)
	q.alloc(b)
	if !q.anyOlderUnwritten(3) {
		t.Error("store 1 is older than 3 and unwritten")
	}
	a.writtenL1 = true
	if q.anyOlderUnwritten(3) {
		t.Error("store 1 written; store 5 is younger than 3")
	}
	if !q.anyOlderUnwritten(10) {
		t.Error("store 5 is older than 10 and unwritten")
	}
}

// TestOverlapContainsForward exercises the byte-precise forwarding helpers.
func TestOverlapContainsForward(t *testing.T) {
	st8 := &entry{inst: isa.StoreImm(0x100, 0x1122334455667788)}
	ld8 := &entry{inst: isa.Load(1, 0x100)}
	ld4 := &entry{inst: isa.Inst{Op: isa.OpLoad, Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x104, Size: 4}}
	ldOther := &entry{inst: isa.Load(1, 0x108)}

	if !overlaps(st8, ld8) || !contains(st8, ld8) {
		t.Error("same-address same-size must forward")
	}
	if got := forwardValue(st8, ld8); got != 0x1122334455667788 {
		t.Errorf("full forward = %#x", got)
	}
	if !contains(st8, ld4) {
		t.Error("8-byte store contains 4-byte load of its upper half")
	}
	if got := forwardValue(st8, ld4); got != 0x11223344 {
		t.Errorf("partial forward = %#x, want upper half", got)
	}
	if overlaps(st8, ldOther) {
		t.Error("disjoint accesses must not overlap")
	}

	st4 := &entry{inst: isa.Inst{Op: isa.OpStore, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x100, Size: 4, Imm: 7}}
	if contains(st4, ld8) {
		t.Error("4-byte store cannot fully cover an 8-byte load")
	}
	if !overlaps(st4, ld8) {
		t.Error("they do overlap")
	}
}

// TestOverlapSymmetry is a property test: overlaps is symmetric and
// contains implies overlaps.
func TestOverlapSymmetry(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(a, b uint16, si, sj uint8) bool {
		ea := &entry{inst: isa.Inst{Op: isa.OpStore, Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: uint64(a), Size: sizes[int(si)%len(sizes)]}}
		eb := &entry{inst: isa.Inst{Op: isa.OpLoad, Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: uint64(b), Size: sizes[int(sj)%len(sizes)]}}
		if overlaps(ea, eb) != overlaps(eb, ea) {
			return false
		}
		if contains(ea, eb) && !overlaps(ea, eb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
