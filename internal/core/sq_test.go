package core

import (
	"testing"
	"testing/quick"

	"sesa/internal/isa"
)

// sqHarness is an arena + store queue pair, the minimal state the SQ/SB
// operates over.
type sqHarness struct {
	ar arena
	q  storeQueue
}

func newSQHarness(capacity int) *sqHarness {
	return &sqHarness{ar: newArena(capacity + 8), q: newStoreQueue(capacity)}
}

// addStore dispatches a store with the given dynSeq and address into the
// arena and the queue, returning its slot.
func (h *sqHarness) addStore(seq uint64, addr uint64) int32 {
	i := h.ar.alloc()
	e := &h.ar.ents[i]
	e.inst = isa.StoreImm(addr, seq)
	e.dynSeq = seq
	h.q.alloc(h.ar.refOf(i), e)
	return i
}

// write retires the store and completes its L1 write: the slot leaves the
// queue and the arena recycles the entry, as storeWrote does.
func (h *sqHarness) write(i int32) {
	h.ar.stat[i] = stRetired
	h.ar.ents[i].writtenL1 = true
	h.q.free(h.ar.refOf(i))
	h.ar.release(i)
}

func TestStoreQueueAllocFreeWrapSortingBit(t *testing.T) {
	h := newSQHarness(4)
	var seq uint64

	// Fill, drain, and refill across the wrap-around: the sorting bit of
	// each slot must flip, so keys from the two generations differ.
	firstGen := make([]key, 4)
	idxs := make([]int32, 4)
	for i := 0; i < 4; i++ {
		seq++
		idxs[i] = h.addStore(seq, uint64(i*64))
		firstGen[i] = h.ar.ents[idxs[i]].sqKey
	}
	if !h.q.full() {
		t.Fatal("queue should be full")
	}
	for i := 0; i < 4; i++ {
		h.write(idxs[i])
	}
	if !h.q.empty() {
		t.Fatal("queue should be empty")
	}
	for i := 0; i < 4; i++ {
		seq++
		e := &h.ar.ents[h.addStore(seq, uint64(i*64))]
		if e.sqKey.slot != firstGen[i].slot {
			t.Errorf("slot %d: expected same slot reuse", i)
		}
		if e.sqKey.sort == firstGen[i].sort {
			t.Errorf("slot %d: sorting bit did not flip on wrap", i)
		}
	}
}

func TestStoreQueuePresent(t *testing.T) {
	h := newSQHarness(2)
	i1 := h.addStore(1, 0)
	k1 := h.ar.ents[i1].sqKey
	slot1 := h.ar.ents[i1].sqSlot
	if !h.q.present(&h.ar, k1) {
		t.Fatal("freshly allocated store should be present")
	}
	h.write(i1)
	if h.q.present(&h.ar, k1) {
		t.Error("freed store should not be present")
	}
	// A new store in the same slot must not match the old key: the tail
	// wraps back to slot 0 on the second allocation.
	h.addStore(2, 64)
	i3 := h.addStore(3, 128)
	if h.ar.ents[i3].sqSlot != slot1 {
		t.Fatalf("expected slot reuse, got %d vs %d", h.ar.ents[i3].sqSlot, slot1)
	}
	if h.q.present(&h.ar, k1) {
		t.Error("old-generation key must not match the slot's new occupant")
	}
	if !h.q.present(&h.ar, h.ar.ents[i3].sqKey) {
		t.Error("new occupant should be present under its own key")
	}
}

func TestStoreQueueRollback(t *testing.T) {
	h := newSQHarness(4)
	a := h.addStore(1, 0)
	b := h.addStore(2, 64)
	cc := h.addStore(3, 128)
	bSlot, bSort := h.ar.ents[b].sqSlot, h.ar.ents[b].sqKey.sort
	// Squash flushes the youngest suffix: c then b.
	h.q.rollback(h.ar.refOf(cc))
	h.ar.release(cc)
	h.q.rollback(h.ar.refOf(b))
	h.ar.release(b)
	if h.q.count != 1 || h.q.oldest() != h.ar.refOf(a) {
		t.Fatalf("rollback broke the queue: count=%d", h.q.count)
	}
	// Re-allocation reuses the rolled-back slots with unchanged sorting
	// bits (no wrap happened).
	b2 := h.addStore(4, 64)
	if h.ar.ents[b2].sqSlot != bSlot || h.ar.ents[b2].sqKey.sort != bSort {
		t.Error("re-allocated slot should keep its sorting bit")
	}
}

func TestStoreQueueRollbackOutOfOrderPanics(t *testing.T) {
	h := newSQHarness(4)
	a := h.addStore(1, 0)
	h.addStore(2, 64)
	defer func() {
		if recover() == nil {
			t.Error("rolling back a non-youngest store must panic")
		}
	}()
	h.q.rollback(h.ar.refOf(a))
}

func TestStoreQueueSearchOrder(t *testing.T) {
	h := newSQHarness(8)
	h.addStore(1, 0x100)
	mid := h.addStore(2, 0x100)
	ld := &entry{inst: isa.Load(1, 0x100), dynSeq: 3}
	m, unk := h.q.youngestOlderMatch(&h.ar, ld)
	if m != mid {
		t.Error("search must return the youngest older matching store")
	}
	if unk >= 0 {
		t.Error("no unknown-address store expected")
	}

	// A younger store (dynSeq 4) must not match a load with dynSeq 3.
	h.addStore(4, 0x100)
	if m, _ := h.q.youngestOlderMatch(&h.ar, ld); m != mid {
		t.Error("younger store must be invisible to an older load")
	}
}

func TestStoreQueueUnknownAddressBlocksSearch(t *testing.T) {
	h := newSQHarness(8)
	known := h.addStore(1, 0x200)
	// Store with an address dependency that has not resolved: its Src2
	// producer is a dispatched (incomplete) arena entry.
	prod := h.ar.alloc()
	dep := h.ar.alloc()
	de := &h.ar.ents[dep]
	de.inst = isa.Inst{Op: isa.OpStore, Src1: isa.RegNone, Src2: 5, Addr: 0x200}
	de.dynSeq = 2
	de.src2Prod = h.ar.refOf(prod)
	h.q.alloc(h.ar.refOf(dep), de)
	ld := &entry{inst: isa.Load(1, 0x200), dynSeq: 3}
	m, unk := h.q.youngestOlderMatch(&h.ar, ld)
	if unk != dep {
		t.Error("unresolved store should be reported")
	}
	// The older resolved match is returned alongside the younger
	// unresolved store: the caller may speculate past the unknown
	// (StoreSet D-speculation) and forward from the match; if the unknown
	// later resolves to the same address, the dependence-violation check
	// squashes the load.
	if m != known {
		t.Error("resolved older match should be returned for D-speculation")
	}
	if h.ar.ents[unk].dynSeq < h.ar.ents[m].dynSeq {
		t.Error("reported unknown must be younger than the match")
	}
	// Completing the producer resolves the address.
	h.ar.stat[prod] = stDone
	if _, unk := h.q.youngestOlderMatch(&h.ar, ld); unk >= 0 {
		t.Error("address should be known once the producer completes")
	}
	// A recycled producer slot means the producer retired: still known.
	h.ar.release(prod)
	if _, unk := h.q.youngestOlderMatch(&h.ar, ld); unk >= 0 {
		t.Error("a stale producer ref must read as resolved")
	}
}

func TestStoreQueueAnyOlderUnwritten(t *testing.T) {
	h := newSQHarness(4)
	a := h.addStore(1, 0)
	h.addStore(5, 64)
	if !h.q.anyOlderUnwritten(&h.ar, 3) {
		t.Error("store 1 is older than 3 and unwritten")
	}
	h.write(a)
	if h.q.anyOlderUnwritten(&h.ar, 3) {
		t.Error("store 1 written; store 5 is younger than 3")
	}
	if !h.q.anyOlderUnwritten(&h.ar, 10) {
		t.Error("store 5 is older than 10 and unwritten")
	}
}

// TestOverlapContainsForward exercises the byte-precise forwarding helpers.
func TestOverlapContainsForward(t *testing.T) {
	st8 := &entry{inst: isa.StoreImm(0x100, 0x1122334455667788)}
	ld8 := &entry{inst: isa.Load(1, 0x100)}
	ld4 := &entry{inst: isa.Inst{Op: isa.OpLoad, Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x104, Size: 4}}
	ldOther := &entry{inst: isa.Load(1, 0x108)}

	if !overlaps(st8, ld8) || !contains(st8, ld8) {
		t.Error("same-address same-size must forward")
	}
	if got := forwardBytes(st8.inst.Imm, 0x100, 0x100, 8); got != 0x1122334455667788 {
		t.Errorf("full forward = %#x", got)
	}
	if !contains(st8, ld4) {
		t.Error("8-byte store contains 4-byte load of its upper half")
	}
	if got := forwardBytes(st8.inst.Imm, 0x100, 0x104, 4); got != 0x11223344 {
		t.Errorf("partial forward = %#x, want upper half", got)
	}
	if overlaps(st8, ldOther) {
		t.Error("disjoint accesses must not overlap")
	}

	st4 := &entry{inst: isa.Inst{Op: isa.OpStore, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x100, Size: 4, Imm: 7}}
	if contains(st4, ld8) {
		t.Error("4-byte store cannot fully cover an 8-byte load")
	}
	if !overlaps(st4, ld8) {
		t.Error("they do overlap")
	}
}

// TestOverlapSymmetry is a property test: overlaps is symmetric and
// contains implies overlaps.
func TestOverlapSymmetry(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(a, b uint16, si, sj uint8) bool {
		ea := &entry{inst: isa.Inst{Op: isa.OpStore, Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: uint64(a), Size: sizes[int(si)%len(sizes)]}}
		eb := &entry{inst: isa.Inst{Op: isa.OpLoad, Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: uint64(b), Size: sizes[int(sj)%len(sizes)]}}
		if overlaps(ea, eb) != overlaps(eb, ea) {
			return false
		}
		if contains(ea, eb) && !overlaps(ea, eb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
