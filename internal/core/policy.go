package core

import (
	"fmt"

	"sesa/internal/config"
	"sesa/internal/obs"
)

// Policy is the per-machine consistency policy: every decision point that
// used to be a `switch c.model` in the core lives behind this interface, so
// registering a machine is writing one implementation here plus one
// config.ModelInfo entry. Implementations are stateless singletons — all
// machine state stays in the Core, which keeps the policies trivially safe
// to share across cores and keeps the hot path allocation-free.
//
// Determinism: a policy only reads and writes core-local state through the
// *Core it is handed, inside the same call sites the old switches occupied.
// The cycle-by-cycle decision sequence is therefore a pure function of the
// (model, trace, seed) triple exactly as before, which is why the policy
// extraction leaves every golden of the five paper machines byte-identical.
type Policy interface {
	// LoadRetireBlocked applies the machine's retirement policy to the
	// done load at the ROB head (arena slot i) and accounts the stall;
	// true holds retirement this cycle.
	LoadRetireBlocked(c *Core, i int32, e *entry, now uint64) bool
	// ClosesGate reports whether a retiring SLF load whose forwarding
	// store is still in the SQ/SB closes the retire gate behind it
	// (Fig. 8 step b).
	ClosesGate() bool
	// KeyedGate reports whether the gate closes with the forwarding
	// store's key, reopening as soon as that store writes to the L1,
	// rather than unkeyed.
	KeyedGate() bool
	// ReopensGateOnSBDrain reports whether an unkeyed closed gate reopens
	// when the store buffer fully drains (the keyless SoS variant).
	ReopensGateOnSBDrain() bool
	// BlanketLoadOrdering reports whether a load matching an older SQ/SB
	// store must wait for that store's L1 write instead of forwarding
	// (IBM 370 blanket enforcement).
	BlanketLoadOrdering() bool
	// SpeculatesPastFences reports whether loads may issue while an older
	// fence is still in flight (Louvre versioned ordering); such loads
	// stay squashable until the fence retires.
	SpeculatesPastFences() bool
	// InvisibleSpeculation reports whether loads that are speculative at
	// issue time read the hierarchy without perturbing directory or cache
	// state and are value-validated at retirement (RCP).
	InvisibleSpeculation() bool
	// SASpeculative reports whether the performed load at LQ position k
	// is SA-speculative — squashable by an invalidation or eviction under
	// the machine's store-atomicity rules.
	SASpeculative(c *Core, k int, e *entry) bool
	// VersionSpeculative reports machine-specific squashability beyond
	// the baseline in-window M-speculation (Louvre: the load's fence
	// barrier is still in flight).
	VersionSpeculative(c *Core, e *entry) bool
}

// basePolicy is the all-permissive default every machine embeds: no retire
// blocking, no gate, no blanket ordering, no extra speculation sources.
type basePolicy struct{}

func (basePolicy) LoadRetireBlocked(*Core, int32, *entry, uint64) bool { return false }
func (basePolicy) ClosesGate() bool                                    { return false }
func (basePolicy) KeyedGate() bool                                     { return false }
func (basePolicy) ReopensGateOnSBDrain() bool                          { return false }
func (basePolicy) BlanketLoadOrdering() bool                           { return false }
func (basePolicy) SpeculatesPastFences() bool                          { return false }
func (basePolicy) InvisibleSpeculation() bool                          { return false }
func (basePolicy) SASpeculative(*Core, int, *entry) bool               { return false }
func (basePolicy) VersionSpeculative(*Core, *entry) bool               { return false }

// x86Policy is the non-store-atomic TSO baseline: unrestricted SLF, free
// retirement, baseline load-load speculation only.
type x86Policy struct{ basePolicy }

// noSpecPolicy is IBM 370 blanket enforcement: no speculation, loads
// matching an SQ/SB store wait for its L1 write.
type noSpecPolicy struct{ basePolicy }

func (noSpecPolicy) BlanketLoadOrdering() bool { return true }

// slfSpecPolicy is SC-like speculation adapted to 370: the SLF load itself
// is speculative, performs early, but retires only after the SB drains.
type slfSpecPolicy struct{ basePolicy }

func (slfSpecPolicy) LoadRetireBlocked(c *Core, i int32, e *entry, now uint64) bool {
	// SC-like speculation: the SLF load itself is speculative and
	// cannot retire until the store buffer empties.
	if e.slf && c.sq.anyOlderUnwritten(&c.ar, e.dynSeq) {
		if !e.gateStalled {
			e.gateStalled = true
			c.st.SLFSpecRetWaits++
			c.progressed = true
		}
		c.st.GateStallCycles++
		c.delta.gateStall = 1
		return true
	}
	return false
}

func (slfSpecPolicy) SASpeculative(c *Core, k int, e *entry) bool {
	for j := 0; j <= k; j++ {
		li := c.lq.at(j).index()
		l := &c.ar.ents[li]
		if l.slf && c.ar.stat[li] >= stDone && c.sq.anyOlderUnwritten(&c.ar, l.dynSeq) {
			return true
		}
	}
	return false
}

// gatePolicy is the shared source-of-speculation machinery of the SoS
// family (SoS, SoS-key, Louvre, RCP): retirement stalls while the gate is
// closed, and a load is SA-speculative when the gate is closed or an older
// SLF load's forwarding store has not yet written to the L1. The SLF load
// itself is NOT speculative (Section IV-A).
type gatePolicy struct{ basePolicy }

func (gatePolicy) LoadRetireBlocked(c *Core, i int32, e *entry, now uint64) bool {
	return c.gateRetireBlocked(e)
}

func (gatePolicy) ClosesGate() bool { return true }

func (gatePolicy) SASpeculative(c *Core, k int, e *entry) bool {
	if c.gate.Closed() {
		return true
	}
	for j := 0; j < k; j++ {
		l := &c.ar.ents[c.lq.at(j).index()]
		// A live forwarding-store ref is by construction a store
		// that has not yet written to the L1.
		if l.slf && c.ar.live(l.slfStore) {
			return true
		}
	}
	return false
}

// sosPolicy is the keyless SoS variant: the gate closes unkeyed and
// reopens only when the store buffer becomes empty.
type sosPolicy struct{ gatePolicy }

func (sosPolicy) ReopensGateOnSBDrain() bool { return true }

// sosKeyPolicy is the paper's full proposal: the gate closes with the
// forwarding store's key and reopens on that store's L1 write.
type sosKeyPolicy struct{ gatePolicy }

func (sosKeyPolicy) KeyedGate() bool { return true }

// louvrePolicy layers Louvre-style versioned ordering (Kumar et al.) on
// the keyed machine: loads issue speculatively past in-flight fences
// instead of stalling, and remain squashable — as if holding an unvalidated
// version — until the fence retires. In-order retirement discharges the
// version check: the fence (which waits for SB drain) always retires before
// the load, and invalidations are delivered before the conflicting store's
// memory-order insertion, so a load that retires unsquashed performed
// legally.
type louvrePolicy struct{ sosKeyPolicy }

func (louvrePolicy) SpeculatesPastFences() bool { return true }

func (louvrePolicy) VersionSpeculative(c *Core, e *entry) bool {
	// A live barrier ref is an in-flight fence: the load's version is
	// still unvalidated.
	return e.fenceBarrier != nilRef && c.ar.live(e.fenceBarrier)
}

// rcpPolicy rides a reversible-coherence idea (Wu et al.) on the keyed
// machine: a load that is speculative at issue time reads the hierarchy
// invisibly — no directory, cache or replacement state changes — and is
// value-validated against memory at retirement. A mismatch squashes from
// the load; a match proves the load could legally perform at its
// memory-order point (value-based validation, so the check is sound even
// when the invisible line was never installed and thus never snooped).
type rcpPolicy struct{ sosKeyPolicy }

func (rcpPolicy) InvisibleSpeculation() bool { return true }

func (rcpPolicy) LoadRetireBlocked(c *Core, i int32, e *entry, now uint64) bool {
	if c.gateRetireBlocked(e) {
		return true
	}
	return c.validateInvisible(i, e, now)
}

// gateRetireBlocked holds the done load at the ROB head while the retire
// gate is closed, accounting the stall (Table IV "Gate Stalls").
func (c *Core) gateRetireBlocked(e *entry) bool {
	if c.gate.Closed() {
		if !e.gateStalled {
			e.gateStalled = true
			c.st.GateStalls++
			c.progressed = true
		}
		c.st.GateStallCycles++
		c.delta.gateStall = 1
		return true
	}
	return false
}

// validateInvisible re-reads memory at retirement for a load that performed
// invisibly and compares against the value it consumed. A match means the
// load could legally perform now, at its memory-order point; a mismatch is
// an ordering violation the directory never saw (the invisible load was
// never a sharer), so the pipeline squashes from the load. The squash makes
// forward progress: re-issued as the oldest load with an open gate, the
// load is no longer speculative at issue and reads visibly.
func (c *Core) validateInvisible(i int32, e *entry, now uint64) bool {
	if !e.invisible {
		return false
	}
	c.st.Validations++
	if c.hier.ReadImage(e.inst.Addr, e.inst.EffSize()) == e.val {
		return false
	}
	c.st.Squashes++
	c.st.SASquashes++
	c.st.ValidationSquashes++
	c.squashFrom(i, now, true, true, obs.CauseValidation, e.inst.Addr)
	return true
}

// speculativeAtIssue reports whether a load issuing to memory now is
// consistency-speculative: squashable by the LQ snoop or blockable by the
// retire gate before it retires. These are the loads RCP sends down the
// invisible path. The conditions mirror loadSpeculative, evaluated at
// issue time: a closed gate, an older unperformed LQ load, an older SLF
// load whose forwarding store has not written, or an older in-flight RMW.
func (c *Core) speculativeAtIssue(e *entry) bool {
	if c.gate.Closed() {
		return true
	}
	n := c.lq.len()
	for k := 0; k < n; k++ {
		li := c.lq.at(k).index()
		l := &c.ar.ents[li]
		if l.dynSeq >= e.dynSeq {
			break // the LQ is program-ordered; e itself and younger follow
		}
		if c.ar.stat[li] < stDone {
			return true
		}
		if l.slf && c.ar.live(l.slfStore) {
			return true
		}
	}
	for _, r := range c.rmws {
		ri := r.index()
		if c.ar.gens[ri] != r.gen() || c.ar.stat[ri] >= stDone {
			continue
		}
		if c.ar.ents[ri].dynSeq < e.dynSeq {
			return true
		}
	}
	return false
}

// policies maps each registered model to its policy singleton. The roster
// must stay in lockstep with the config registry; policyFor panics (and
// TestPolicyRosterMatchesRegistry fails) on a registered model without a
// policy.
var policies = [...]Policy{
	config.X86:          x86Policy{},
	config.NoSpec370:    noSpecPolicy{},
	config.SLFSpec370:   slfSpecPolicy{},
	config.SLFSoS370:    sosPolicy{},
	config.SLFSoSKey370: sosKeyPolicy{},
	config.Louvre370:    louvrePolicy{},
	config.RCP370:       rcpPolicy{},
}

// policyFor returns the policy implementing the model's machine.
func policyFor(m config.Model) Policy {
	if int(m) >= 0 && int(m) < len(policies) && policies[m] != nil {
		return policies[m]
	}
	panic(fmt.Sprintf("core: no policy registered for model %v", m))
}
