package core

import (
	"fmt"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/isa"
	"sesa/internal/mem"
	"sesa/internal/obs"
	"sesa/internal/predictor"
	"sesa/internal/sched"
	"sesa/internal/stats"
)

// issueWidth caps how many instructions may begin execution per cycle
// (functional units).
const issueWidth = 8

// Core is one out-of-order core. It is driven by Tick, once per cycle,
// after the simulator has delivered the cycle's memory-system events.
type Core struct {
	id    int
	cfg   config.Core
	model config.Model
	hier  *mem.Hierarchy
	st    *stats.Core

	bp *predictor.TAGE
	ss *predictor.StoreSet

	l1Lat int

	prog     isa.Program
	fetchIdx int
	dynSeq   uint64

	rob []*entry
	lq  []*entry
	sq  *storeQueue

	regProd [isa.NumRegs]*entry
	regVal  [isa.NumRegs]uint64

	gate Gate

	// redirectUntil blocks dispatch during branch-redirect or
	// squash-refill windows.
	redirectUntil uint64
	// haltBranch blocks dispatch until a mispredicted branch resolves.
	haltBranch *entry
	// lastFence is the youngest in-flight fence; younger loads record it
	// as their issue barrier.
	lastFence *entry
	// rmws holds in-flight atomic RMWs. An RMW bypasses the store queue, so
	// the SQ search can neither forward from it nor order a younger load
	// behind it; overlapping younger loads block here until the RMW
	// performs. The list compacts itself during the scan.
	rmws []*entry
	// drainInflight and lastDrainWhen pipeline the SB drain while keeping
	// insertion in order.
	drainInflight int
	lastDrainWhen uint64

	// loadVals records the retired value of each load, keyed by trace
	// index. The trace length is known at SetProgram time, so it is a
	// dense slice (with a parallel set bitmap) rather than a map: retire
	// writes are a plain indexed store instead of a hash insert.
	loadVals    []uint64
	loadValsSet []bool

	// tr is the observability sink; nil when tracing is disabled, so every
	// hook is one never-taken branch on the disabled path.
	tr *obs.CoreTracer

	// hc is the latency-histogram sink, nil-checked like tr.
	hc *hist.Collector
	// gateClosedAt is the cycle the retire gate last closed, the start of
	// the episode the GateClosed histogram measures.
	gateClosedAt uint64

	// progressed flags any state mutation during the current Tick beyond
	// the per-cycle counter deltas recorded in delta; it is what Tick's
	// quiescence report is built from.
	progressed bool
	delta      tickDelta

	done bool
}

// tickDelta records the per-cycle counter increments of the tick just
// executed. A tick that made no progress will repeat exactly these
// increments every following cycle until an event fires or a timed wake
// arrives, so the machine can bulk-apply them over a skipped range with
// SkipCycles instead of re-executing the dead ticks.
type tickDelta struct {
	gateClosed uint64 // 0/1: the retire gate was closed this cycle
	gateStall  uint64 // 0/1: a done load at the ROB head was held back this cycle
	stall      int8   // dispatch stall cause this cycle (-1 when none)
	sqSearches uint64 // SQ searches by loads re-polling a matched store's data
}

// New builds a core. The invalidation listener is registered with the
// hierarchy so that remote invalidations and local evictions snoop the LQ.
func New(id int, cfg config.Config, hier *mem.Hierarchy, st *stats.Core) *Core {
	c := &Core{
		id:    id,
		cfg:   cfg.Core,
		model: cfg.Model,
		hier:  hier,
		st:    st,
		bp:    predictor.NewTAGE(),
		ss:    predictor.NewStoreSet(),
		l1Lat: cfg.Mem.L1D.HitCycles,
		sq:    newStoreQueue(cfg.Core.SQEntries),
	}
	hier.SetInvalListener(id, c.onLineRemoved)
	return c
}

// SetProgram installs the trace the core will execute. It must be called
// before the first Tick.
func (c *Core) SetProgram(p isa.Program) {
	c.prog = p
	c.fetchIdx = 0
	c.done = len(p) == 0
	c.loadVals = make([]uint64, len(p))
	c.loadValsSet = make([]bool, len(p))
}

// Done reports whether the core has retired its whole trace and drained its
// store buffer.
func (c *Core) Done() bool { return c.done }

// RegValue returns the architectural value of r (valid once Done).
func (c *Core) RegValue(r isa.Reg) uint64 { return c.regVal[r] }

// LoadValue returns the retired value of the load at trace index idx.
func (c *Core) LoadValue(idx int) (uint64, bool) {
	if idx < 0 || idx >= len(c.loadVals) || !c.loadValsSet[idx] {
		return 0, false
	}
	return c.loadVals[idx], true
}

// setLoadVal records the retired value of the load at trace index idx.
func (c *Core) setLoadVal(idx int, val uint64) {
	c.loadVals[idx] = val
	c.loadValsSet[idx] = true
}

// Gate exposes the retire gate for tests and introspection.
func (c *Core) Gate() *Gate { return &c.gate }

// AttachTracer sets the core's observability sink (nil disables it). Call
// before the first Tick; events recorded mid-run would miss prior history.
func (c *Core) AttachTracer(t *obs.CoreTracer) { c.tr = t }

// AttachHists sets the core's latency-histogram sink (nil disables it).
// Call before the first Tick.
func (c *Core) AttachHists(h *hist.Collector) { c.hc = h }

// Occupancy returns the instantaneous ROB, LQ and SQ/SB occupancies, for
// the interval-metrics sampler and for tests.
func (c *Core) Occupancy() (rob, lq, sb int) { return len(c.rob), len(c.lq), c.sq.count }

// obsKey encodes a store key for an event payload.
func obsKey(k key) int32 { return obs.EncodeKey(k.slot, k.sort) }

// Tick advances the core one cycle and returns its quiescence report:
// progressed is true when any state beyond the per-cycle counter deltas
// changed, and wake is the earliest future cycle at which the core can next
// do timed work (sched.Never when it is purely event-blocked). A quiescent
// core's following ticks are exact replays until that wake cycle or an
// event, which is what lets the machine skip them with SkipCycles.
func (c *Core) Tick(now uint64) (progressed bool, wake uint64) {
	if c.done {
		return false, sched.Never
	}
	c.progressed = false
	c.delta = tickDelta{stall: -1}
	c.st.Cycles++
	if c.gate.Closed() {
		c.st.GateClosedCycles++
		c.delta.gateClosed = 1
	}
	c.retire(now)
	c.drainSB(now)
	c.issue(now)
	c.dispatch(now)
	if c.fetchIdx >= len(c.prog) && len(c.rob) == 0 && c.sq.empty() {
		c.done = true
		c.progressed = true
	}
	if c.progressed {
		return true, now + 1
	}
	return false, c.wakeCycle(now)
}

// SkipCycles bulk-applies n quiescent cycles: the per-cycle counter deltas
// recorded by the last Tick, n times. The machine calls it only after a
// fully quiescent Step and only for ranges that end before the next event
// or wake cycle, where each skipped tick is provably a replay of the last.
func (c *Core) SkipCycles(n uint64) {
	if c.done || n == 0 {
		return
	}
	c.st.Cycles += n
	c.st.GateClosedCycles += c.delta.gateClosed * n
	c.st.GateStallCycles += c.delta.gateStall * n
	if c.delta.stall >= 0 {
		c.st.StallCycles[c.delta.stall] += n
	}
	c.st.SQSearches += c.delta.sqSearches * n
}

// wakeCycle reports the earliest future cycle at which this (quiescent)
// core can make progress — or change its per-cycle counter deltas —
// without a memory-system event: the pipeline-depth window of the ROB
// head, a running execution latency, or the end of a front-end redirect
// window. Everything else the core can wait on arrives as an event.
func (c *Core) wakeCycle(now uint64) uint64 {
	w := uint64(sched.Never)
	if len(c.rob) > 0 {
		if e := c.rob[0]; e.status == stDone && now < e.minRetire {
			w = e.minRetire
		}
	}
	for _, e := range c.rob {
		if e.alive && e.status == stIssued && !e.inflight && e.execDone > now && e.execDone < w {
			w = e.execDone
		}
	}
	if c.fetchIdx < len(c.prog) && c.haltBranch == nil && now < c.redirectUntil && c.redirectUntil < w {
		w = c.redirectUntil
	}
	return w
}

// ---- retire -----------------------------------------------------------------

func (c *Core) retire(now uint64) {
	for n := 0; n < c.cfg.Width && len(c.rob) > 0; n++ {
		e := c.rob[0]
		if e.status != stDone || now < e.minRetire {
			return
		}
		if e.inst.Op == isa.OpFence && c.sq.anyOlderUnwritten(e.dynSeq) {
			return
		}
		if e.isLoad() && c.loadRetireBlocked(e, now) {
			return
		}
		c.doRetire(e, now)
	}
}

// loadRetireBlocked applies the per-model retirement policy to the done
// load at the ROB head and accounts gate stalls.
func (c *Core) loadRetireBlocked(e *entry, now uint64) bool {
	switch c.model {
	case config.SLFSoS370, config.SLFSoSKey370:
		if c.gate.Closed() {
			if !e.gateStalled {
				e.gateStalled = true
				c.st.GateStalls++
				c.progressed = true
			}
			c.st.GateStallCycles++
			c.delta.gateStall = 1
			return true
		}
	case config.SLFSpec370:
		// SC-like speculation: the SLF load itself is speculative and
		// cannot retire until the store buffer empties.
		if e.slf && c.sq.anyOlderUnwritten(e.dynSeq) {
			if !e.gateStalled {
				e.gateStalled = true
				c.st.SLFSpecRetWaits++
				c.progressed = true
			}
			c.st.GateStallCycles++
			c.delta.gateStall = 1
			return true
		}
	}
	return false
}

func (c *Core) doRetire(e *entry, now uint64) {
	c.progressed = true
	e.status = stRetired
	c.rob = c.rob[1:]
	c.st.RetiredInsts++
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KRetire, Op: e.inst.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
	}

	switch {
	case e.isLoad():
		if c.lq[0] != e {
			panic("core: LQ head out of sync with ROB")
		}
		c.lq = c.lq[1:]
		c.st.RetiredLoads++
		if e.slf {
			c.st.SLFLoads++
		}
		c.setLoadVal(e.traceIdx, e.val)
		// The paper's mechanism: a retiring SLF load whose forwarding
		// store is still in the SQ/SB closes the retire gate behind
		// it (Fig. 8 step b). The presence check is the direct
		// slot+sorting-bit compare.
		if (c.model == config.SLFSoS370 || c.model == config.SLFSoSKey370) &&
			e.slf && c.sq.present(e.slfKey) && !e.slfStore.writtenL1 {
			gk := obs.KeyNone
			if c.model == config.SLFSoSKey370 {
				c.gate.CloseKeyed(e.slfKey)
				gk = obsKey(e.slfKey)
			} else {
				c.gate.CloseUnkeyed()
			}
			c.st.GateCloses++
			c.gateClosedAt = now
			if c.tr != nil {
				c.tr.Record(obs.Event{Cycle: now, Kind: obs.KGateClose, Op: e.inst.Op,
					Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: gk, Addr: e.inst.Addr})
			}
		}
	case e.isStore():
		c.st.RetiredStores++
		// The store stays in its SQ/SB slot; retirement moves it
		// logically from the SQ to the SB. Its residency there — the
		// window during which it can hold the retire gate closed — is
		// measured from here to its L1 write.
		e.retiredAt = now
	case e.inst.Op == isa.OpRMW:
		c.st.RetiredLoads++
		c.st.RetiredStores++
		c.setLoadVal(e.traceIdx, e.val)
	}

	if d := e.inst.Dst; d != isa.RegNone {
		c.regVal[d] = e.val
		if c.regProd[d] == e {
			c.regProd[d] = nil
		}
	}
	if c.lastFence == e {
		// The fence stays the barrier pointer for younger loads; its
		// retired status is what unblocks them.
		_ = e
	}
}

// ---- store buffer drain -------------------------------------------------------

// maxDrainInflight bounds the overlapping store-buffer drains (the L1 store
// commit pipeline depth).
const maxDrainInflight = 8

// drainSB issues L1 writes for retired stores at the SB head. Drains are
// pipelined — several may be in flight — but TSO's in-order memory-order
// insertion is preserved by chaining each store's completion to be no
// earlier than its predecessor's (and at most one insertion per cycle).
func (c *Core) drainSB(now uint64) {
	c.sq.forEach(func(e *entry) {
		if c.drainInflight >= maxDrainInflight {
			return
		}
		if e.status != stRetired || e.draining || e.writtenL1 {
			return
		}
		e.draining = true
		c.progressed = true
		c.drainInflight++
		st := e
		if st.inst.Op != isa.OpStore {
			panic(fmt.Sprintf("core: non-store %v in SB", st.inst))
		}
		// In-order insertion, at most one store every other cycle (the
		// L1 write port is shared with fills).
		notBefore := uint64(0)
		if c.lastDrainWhen > 0 {
			notBefore = c.lastDrainWhen + 2
		}
		when := c.hier.Store(c.id, st.inst.Addr, st.inst.EffSize(), st.storeData(), now, notBefore, func(w uint64) {
			c.storeWrote(st, w)
		})
		c.lastDrainWhen = when
	})
}

// storeWrote runs at the store's memory-order insertion cycle: the store
// leaves the SB and, if it forwarded to an SLF load that locked the retire
// gate, reopens the gate with its key (Fig. 8 step c).
func (c *Core) storeWrote(e *entry, when uint64) {
	e.writtenL1 = true
	c.drainInflight--
	c.sq.free(e)
	if c.hc != nil {
		c.hc.Observe(hist.SBResidency, when-e.retiredAt)
	}
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: when, Kind: obs.KSBInsert, Op: e.inst.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obsKey(e.sqKey), Addr: e.inst.Addr})
	}
	if c.gate.StoreWrote(e.sqKey) {
		c.st.GateReopens++
		if c.hc != nil {
			c.hc.Observe(hist.GateClosed, when-c.gateClosedAt)
		}
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: when, Kind: obs.KGateReopen, Op: e.inst.Op,
				Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obsKey(e.sqKey), Addr: e.inst.Addr})
		}
	}
	// The keyless SLFSoS variant reopens only when the SB drains.
	if c.model == config.SLFSoS370 && !c.sq.anyRetiredUnwritten() {
		if c.gate.SBDrained() {
			c.st.GateReopens++
			if c.hc != nil {
				c.hc.Observe(hist.GateClosed, when-c.gateClosedAt)
			}
			if c.tr != nil {
				c.tr.Record(obs.Event{Cycle: when, Kind: obs.KGateReopen, Op: e.inst.Op,
					Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
			}
		}
	}
}

// ---- issue / execute ----------------------------------------------------------

func (c *Core) issue(now uint64) {
	budget := issueWidth
	for _, e := range c.rob {
		if !e.alive {
			continue
		}
		switch e.status {
		case stIssued:
			if !e.inflight && now >= e.execDone {
				c.complete(e, now)
			}
		case stDispatched:
			if budget == 0 {
				continue
			}
			if c.tryIssue(e, now) {
				c.progressed = true
				budget--
				if c.tr != nil {
					c.tr.Record(obs.Event{Cycle: now, Kind: obs.KIssue, Op: e.inst.Op,
						Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
					if e.status >= stDone {
						// Stores, fences and nops complete in place.
						c.tr.Record(obs.Event{Cycle: now, Kind: obs.KPerform, Op: e.inst.Op,
							Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
					}
				}
			}
		}
	}
}

// complete finishes a locally executing instruction (ALU, branch, or a
// forwarded load whose latency elapsed).
func (c *Core) complete(e *entry, now uint64) {
	c.progressed = true
	switch e.inst.Op {
	case isa.OpALU:
		e.val = e.srcVal(1) + e.srcVal(2) + e.inst.Imm
	case isa.OpBranch:
		if e.predWrong {
			c.st.BranchMispredicts++
			c.redirectUntil = maxU64(c.redirectUntil, now+uint64(c.cfg.BranchMispredictPenalty))
			if c.haltBranch == e {
				c.haltBranch = nil
			}
		}
	case isa.OpLoad:
		if e.slf {
			e.val = forwardValue(e.slfStore, e)
		}
	}
	e.status = stDone
	e.execDone = now
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KPerform, Op: e.inst.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr, N: e.val})
	}
}

// srcVal returns the current value of source operand n (1 or 2).
func (e *entry) srcVal(n int) uint64 {
	var prod *entry
	var val uint64
	var reg isa.Reg
	if n == 1 {
		prod, val, reg = e.src1Prod, e.src1Val, e.inst.Src1
	} else {
		prod, val, reg = e.src2Prod, e.src2Val, e.inst.Src2
	}
	if reg == isa.RegNone {
		return 0
	}
	if prod != nil {
		return prod.val
	}
	return val
}

// srcReady reports whether source operand n is available.
func (e *entry) srcReady(n int) bool {
	var prod *entry
	var reg isa.Reg
	if n == 1 {
		prod, reg = e.src1Prod, e.inst.Src1
	} else {
		prod, reg = e.src2Prod, e.inst.Src2
	}
	return reg == isa.RegNone || prod == nil || prod.status >= stDone
}

func (c *Core) tryIssue(e *entry, now uint64) bool {
	switch e.inst.Op {
	case isa.OpALU:
		if e.srcReady(1) && e.srcReady(2) {
			e.status = stIssued
			e.execDone = now + 1 + uint64(e.inst.Lat)
			return true
		}
	case isa.OpBranch:
		if e.srcReady(1) {
			e.status = stIssued
			e.execDone = now + 1
			return true
		}
	case isa.OpNop:
		e.status = stDone
		e.execDone = now
		return true
	case isa.OpFence:
		// Fences "execute" immediately; retirement enforces the drain.
		e.status = stDone
		e.execDone = now
		return true
	case isa.OpStore:
		return c.tryIssueStore(e, now)
	case isa.OpLoad:
		return c.tryIssueLoad(e, now)
	case isa.OpRMW:
		return c.tryIssueRMW(e, now)
	}
	return false
}

func (c *Core) tryIssueStore(e *entry, now uint64) bool {
	if !e.addrResolved && e.addrKnown() {
		e.addrResolved = true
		c.progressed = true
		c.checkDependenceViolation(e, now)
		// Read-for-ownership prefetch: acquire M early so the SB drain
		// hits in the L1.
		c.hier.PrefetchOwner(c.id, e.inst.Addr, now)
	}
	if e.addrResolved && e.dataKnown() {
		e.status = stDone
		e.execDone = now + 1
		return true
	}
	return false
}

// checkDependenceViolation runs when a store's address resolves: any
// younger load that already performed on overlapping bytes without
// forwarding from this store (or a younger one) is a memory-dependence
// misspeculation; it is squashed and the StoreSet predictor trained.
func (c *Core) checkDependenceViolation(s *entry, now uint64) {
	for _, l := range c.lq {
		if l.dynSeq <= s.dynSeq || l.status < stDone {
			continue
		}
		if !overlaps(s, l) {
			continue
		}
		if l.slf && l.slfStore.dynSeq > s.dynSeq {
			continue // forwarded from a younger store: shadowed
		}
		c.ss.TrainViolation(l.inst.PC, s.inst.PC)
		c.st.DepSquashes++
		c.squashFrom(l, now, false, false, obs.CauseStoreSet, s.inst.Addr)
		return
	}
}

func (c *Core) tryIssueRMW(e *entry, now uint64) bool {
	// Atomic RMW: executes at the ROB head with the SB drained, giving it
	// TSO atomic (and trivially store-atomic) semantics.
	if len(c.rob) == 0 || c.rob[0] != e || !e.addrKnown() {
		return false
	}
	if c.sq.anyOlderUnwritten(e.dynSeq) {
		return false
	}
	e.status = stIssued
	e.inflight = true
	rmw := e
	c.hier.RMW(c.id, e.inst.Addr, e.inst.EffSize(), e.inst.Imm, now, func(old, when uint64) {
		if !rmw.alive {
			return
		}
		rmw.val = old
		rmw.inflight = false
		rmw.status = stDone
		rmw.execDone = when
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: when, Kind: obs.KPerform, Op: rmw.inst.Op,
				Seq: rmw.dynSeq, TraceIdx: int32(rmw.traceIdx), Key: obs.KeyNone, Addr: rmw.inst.Addr, N: old})
		}
	})
	return true
}

func (c *Core) tryIssueLoad(e *entry, now uint64) bool {
	if !e.addrKnown() {
		return false
	}
	if e.fenceBarrier != nil && e.fenceBarrier.status != stRetired {
		return false // serialize loads behind an in-flight fence
	}
	if len(c.rmws) > 0 && c.rmwBlocked(e) {
		return false
	}
	e.lineAddr = c.hier.LineAddr(e.inst.Addr)

	// Blocked on a specific store writing to the L1 (370-NoSpec blanket
	// enforcement, or a partial-overlap forwarding block)?
	if e.waitStore != nil {
		if !e.waitStore.writtenL1 {
			return false
		}
		e.waitStore = nil
		c.issueToMemory(e, now)
		return true
	}
	// Blocked on an older store's address (StoreSet dependence or
	// 370-NoSpec waiting)?
	if e.waitAddr != nil {
		if !e.waitAddr.addrKnown() {
			return false
		}
		e.waitAddr = nil
		c.progressed = true
		// fall through and re-disambiguate
	}

	c.st.SQSearches++
	c.delta.sqSearches++
	match, unknown := c.sq.youngestOlderMatch(e)

	if c.model == config.NoSpec370 {
		// Blanket enforcement: wait for all older store addresses; on a
		// match, wait for that store's L1 write (IBM 370, Section II-C).
		if unknown != nil {
			e.waitAddr = unknown
			c.progressed = true
			return false
		}
		if match != nil {
			e.waitStore = match
			c.progressed = true
			if !e.noSpecWaited {
				e.noSpecWaited = true
				c.st.NoSpecWaits++
			}
			return false
		}
		c.issueToMemory(e, now)
		return true
	}

	if unknown != nil && c.ss.PredictDependent(e.inst.PC, unknown.inst.PC) {
		e.waitAddr = unknown
		c.progressed = true
		return false
	}
	if match != nil {
		if !contains(match, e) {
			// Partial overlap: cannot forward; wait for the store's
			// L1 write, as conventional cores do.
			e.waitStore = match
			c.progressed = true
			return false
		}
		if !match.dataKnown() {
			return false // wait for the store data
		}
		// Store-to-load forwarding: the load becomes an SLF load and
		// copies the store's key (Fig. 8 step a). Under the paper's
		// insight the SLF load is NOT speculative; it is the source
		// of SA-speculation for younger loads.
		e.slf = true
		e.slfStore = match
		e.slfKey = match.sqKey
		e.status = stIssued
		e.execDone = now + uint64(c.l1Lat)
		if c.hc != nil {
			c.hc.Observe(hist.LoadSLF, e.execDone-now)
		}
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: now, Kind: obs.KSLFHit, Op: e.inst.Op,
				Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obsKey(e.slfKey), Addr: e.inst.Addr})
		}
		return true
	}
	c.issueToMemory(e, now)
	return true
}

// rmwBlocked reports whether an older in-flight RMW overlapping the load's
// bytes has not yet performed. Such a load must wait: the RMW's write never
// enters the SQ, so issuing the load early would read the pre-RMW value with
// no disambiguation or squash to catch it. Completed, retired and squashed
// RMWs are dropped from the list as it is scanned, so the check costs
// nothing once they drain.
func (c *Core) rmwBlocked(e *entry) bool {
	live := c.rmws[:0]
	blocked := false
	for _, r := range c.rmws {
		if !r.alive || r.status >= stDone {
			continue
		}
		live = append(live, r)
		if r.dynSeq < e.dynSeq && overlaps(r, e) {
			blocked = true
		}
	}
	for i := len(live); i < len(c.rmws); i++ {
		c.rmws[i] = nil
	}
	c.rmws = live
	return blocked
}

func (c *Core) issueToMemory(e *entry, now uint64) {
	e.status = stIssued
	e.inflight = true
	ld := e
	c.hier.Load(c.id, e.inst.Addr, e.inst.EffSize(), now, func(val, when uint64) {
		if !ld.alive {
			return
		}
		ld.val = val
		ld.inflight = false
		ld.status = stDone
		ld.execDone = when
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: when, Kind: obs.KPerform, Op: ld.inst.Op,
				Seq: ld.dynSeq, TraceIdx: int32(ld.traceIdx), Key: obs.KeyNone, Addr: ld.inst.Addr, N: val})
		}
	})
}

// ---- dispatch -----------------------------------------------------------------

func (c *Core) dispatch(now uint64) {
	if now < c.redirectUntil {
		return
	}
	if c.haltBranch != nil {
		// A mispredicted branch is in flight: the front end fetches the
		// wrong path until the branch resolves (handled in complete).
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.fetchIdx >= len(c.prog) {
			return
		}
		in := c.prog[c.fetchIdx]
		if len(c.rob) >= c.cfg.ROBEntries {
			if n == 0 {
				c.st.StallCycles[stats.StallROB]++
				c.delta.stall = int8(stats.StallROB)
			}
			return
		}
		if in.Op == isa.OpLoad && len(c.lq) >= c.cfg.LQEntries {
			if n == 0 {
				c.st.StallCycles[stats.StallLQ]++
				c.delta.stall = int8(stats.StallLQ)
			}
			return
		}
		if in.Op == isa.OpStore && c.sq.full() {
			if n == 0 {
				c.st.StallCycles[stats.StallSQ]++
				c.delta.stall = int8(stats.StallSQ)
			}
			return
		}
		c.dispatchOne(in, now)
	}
}

func (c *Core) dispatchOne(in isa.Inst, now uint64) {
	c.progressed = true
	c.dynSeq++
	e := &entry{
		inst:      in,
		traceIdx:  c.fetchIdx,
		dynSeq:    c.dynSeq,
		alive:     true,
		minRetire: now + uint64(c.cfg.PipelineDepth),
	}
	c.fetchIdx++

	// Rename: capture producers or values for the source operands.
	if in.Src1 != isa.RegNone {
		if p := c.regProd[in.Src1]; p != nil {
			e.src1Prod = p
		} else {
			e.src1Val = c.regVal[in.Src1]
		}
	}
	if in.Src2 != isa.RegNone {
		if p := c.regProd[in.Src2]; p != nil {
			e.src2Prod = p
		} else {
			e.src2Val = c.regVal[in.Src2]
		}
	}
	if in.Dst != isa.RegNone {
		c.regProd[in.Dst] = e
	}

	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KDispatch, Op: in.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: in.Addr})
	}

	c.rob = append(c.rob, e)
	switch in.Op {
	case isa.OpFence:
		c.lastFence = e
	case isa.OpLoad:
		e.fenceBarrier = c.lastFence
		c.lq = append(c.lq, e)
	case isa.OpRMW:
		c.rmws = append(c.rmws, e)
	case isa.OpStore:
		c.sq.alloc(e)
	case isa.OpBranch:
		// Train in dispatch order so the global history is coherent;
		// the penalty applies when the branch resolves.
		correct := c.bp.Update(in.PC, in.Taken)
		if !correct {
			e.predWrong = true
			c.haltBranch = e
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
