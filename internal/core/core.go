package core

import (
	"fmt"

	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/isa"
	"sesa/internal/mem"
	"sesa/internal/obs"
	"sesa/internal/predictor"
	"sesa/internal/sched"
	"sesa/internal/stats"
)

// issueWidth caps how many instructions may begin execution per cycle
// (functional units).
const issueWidth = 8

// Core is one out-of-order core. It is driven by Tick, once per cycle,
// after the simulator has delivered the cycle's memory-system events.
type Core struct {
	id  int
	cfg config.Core
	// policy is the machine's consistency policy — every decision the
	// paper varies per machine is a method on it (see policy.go).
	policy Policy
	hier   *mem.Hierarchy
	st     *stats.Core

	bp *predictor.TAGE
	ss *predictor.StoreSet

	l1Lat int

	prog     isa.Program
	fetchIdx int
	dynSeq   uint64

	// ar is the entry arena every in-flight instruction lives in; rob, lq
	// and sq hold refs into it.
	ar  arena
	rob ring
	lq  ring
	sq  storeQueue

	regProd [isa.NumRegs]entryRef
	regVal  [isa.NumRegs]uint64

	gate Gate

	// redirectUntil blocks dispatch during branch-redirect or
	// squash-refill windows.
	redirectUntil uint64
	// haltBranch blocks dispatch until a mispredicted branch resolves.
	haltBranch entryRef
	// lastFence is the youngest in-flight fence; younger loads record it
	// as their issue barrier.
	lastFence entryRef
	// rmws holds in-flight atomic RMWs. An RMW bypasses the store queue, so
	// the SQ search can neither forward from it nor order a younger load
	// behind it; overlapping younger loads block here until the RMW
	// performs. The list compacts itself during the scan.
	rmws []entryRef
	// drainInflight and lastDrainWhen pipeline the SB drain while keeping
	// insertion in order.
	drainInflight int
	lastDrainWhen uint64

	// nDispatched and nLocalExec count the ROB entries the issue scan could
	// act on: entries still waiting to issue, and entries executing locally
	// (stIssued without a memory access in flight, i.e. with a pending
	// complete at execDone). When both are zero the scan is provably a
	// no-op and is skipped — the common state while every in-flight
	// instruction waits on memory.
	nDispatched int
	nLocalExec  int

	// wakeHints gates the wakeCycle scan. The two-level skip clock is the
	// only consumer of a quiescent tick's wake report; under the naive
	// stepper the value is registered but never read, so the machine turns
	// the scan off and Tick reports sched.Never instead.
	wakeHints bool

	// loadVals records the retired value of each load, keyed by trace
	// index. The trace length is known at SetProgram time, so it is a
	// dense slice (with a parallel set bitmap) rather than a map: retire
	// writes are a plain indexed store instead of a hash insert.
	loadVals    []uint64
	loadValsSet []bool

	// tr is the observability sink; nil when tracing is disabled, so every
	// hook is one never-taken branch on the disabled path.
	tr *obs.CoreTracer

	// hc is the latency-histogram sink, nil-checked like tr.
	hc *hist.Collector
	// gateClosedAt is the cycle the retire gate last closed, the start of
	// the episode the GateClosed histogram measures.
	gateClosedAt uint64

	// progressed flags any state mutation during the current Tick beyond
	// the per-cycle counter deltas recorded in delta; it is what Tick's
	// quiescence report is built from.
	progressed bool
	delta      tickDelta

	done bool
}

// tickDelta records the per-cycle counter increments of the tick just
// executed. A tick that made no progress will repeat exactly these
// increments every following cycle until an event fires or a timed wake
// arrives, so the machine can bulk-apply them over a skipped range with
// SkipCycles instead of re-executing the dead ticks.
type tickDelta struct {
	gateClosed uint64 // 0/1: the retire gate was closed this cycle
	gateStall  uint64 // 0/1: a done load at the ROB head was held back this cycle
	stall      int8   // dispatch stall cause this cycle (-1 when none)
	sqSearches uint64 // SQ searches by loads re-polling a matched store's data
}

// New builds a core. The invalidation listener is registered with the
// hierarchy so that remote invalidations and local evictions snoop the LQ.
func New(id int, cfg config.Config, hier *mem.Hierarchy, st *stats.Core) *Core {
	c := &Core{
		id:     id,
		cfg:    cfg.Core,
		policy: policyFor(cfg.Model),
		hier:   hier,
		st:     st,
		bp:     predictor.NewTAGE(),
		ss:     predictor.NewStoreSet(),
		l1Lat:  cfg.Mem.L1D.HitCycles,
		// Arena bound: the ROB holds at most ROBEntries live entries and
		// the SB at most SQEntries retired stores no longer in the ROB.
		ar:  newArena(cfg.Core.ROBEntries + cfg.Core.SQEntries),
		rob: newRing(cfg.Core.ROBEntries),
		lq:  newRing(cfg.Core.LQEntries),
		sq:  newStoreQueue(cfg.Core.SQEntries),

		wakeHints: true,
	}
	hier.SetClient(id, c)
	return c
}

// SetWakeHints enables or disables quiescence wake reports. With hints off a
// quiescent Tick returns sched.Never without scanning the ROB for the next
// timed-work cycle. Only the skip stepper reads the reports; the naive
// stepper disables them. Hints are on by default.
func (c *Core) SetWakeHints(on bool) { c.wakeHints = on }

// SetProgram installs the trace the core will execute. It must be called
// before the first Tick.
func (c *Core) SetProgram(p isa.Program) {
	c.prog = p
	c.fetchIdx = 0
	c.done = len(p) == 0
	c.loadVals = make([]uint64, len(p))
	c.loadValsSet = make([]bool, len(p))
}

// Done reports whether the core has retired its whole trace and drained its
// store buffer.
func (c *Core) Done() bool { return c.done }

// RegValue returns the architectural value of r (valid once Done).
func (c *Core) RegValue(r isa.Reg) uint64 { return c.regVal[r] }

// LoadValue returns the retired value of the load at trace index idx.
func (c *Core) LoadValue(idx int) (uint64, bool) {
	if idx < 0 || idx >= len(c.loadVals) || !c.loadValsSet[idx] {
		return 0, false
	}
	return c.loadVals[idx], true
}

// setLoadVal records the retired value of the load at trace index idx.
func (c *Core) setLoadVal(idx int, val uint64) {
	c.loadVals[idx] = val
	c.loadValsSet[idx] = true
}

// Gate exposes the retire gate for tests and introspection.
func (c *Core) Gate() *Gate { return &c.gate }

// AttachTracer sets the core's observability sink (nil disables it). Call
// before the first Tick; events recorded mid-run would miss prior history.
func (c *Core) AttachTracer(t *obs.CoreTracer) { c.tr = t }

// AttachHists sets the core's latency-histogram sink (nil disables it).
// Call before the first Tick.
func (c *Core) AttachHists(h *hist.Collector) { c.hc = h }

// Occupancy returns the instantaneous ROB, LQ and SQ/SB occupancies, for
// the interval-metrics sampler and for tests.
func (c *Core) Occupancy() (rob, lq, sb int) { return c.rob.len(), c.lq.len(), c.sq.count }

// obsKey encodes a store key for an event payload.
func obsKey(k key) int32 { return obs.EncodeKey(k.slot, k.sort) }

// operandVal returns the current value of source operand n (1 or 2). A
// live producer is read in place; a stale producer has retired, and because
// retirement is in order and rename captured the *youngest* older producer,
// no other writer of the register can have retired since — the
// architectural register file holds exactly the producer's value.
func (c *Core) operandVal(e *entry, n int) uint64 {
	var prod entryRef
	var val uint64
	var reg isa.Reg
	if n == 1 {
		prod, val, reg = e.src1Prod, e.src1Val, e.inst.Src1
	} else {
		prod, val, reg = e.src2Prod, e.src2Val, e.inst.Src2
	}
	if reg == isa.RegNone {
		return 0
	}
	if prod == nilRef {
		return val
	}
	if i := prod.index(); c.ar.gens[i] == prod.gen() {
		return c.ar.ents[i].val
	}
	return c.regVal[reg]
}

// operandReady reports whether source operand n is available. A stale
// producer retired, hence completed.
func (c *Core) operandReady(e *entry, n int) bool {
	var prod entryRef
	var reg isa.Reg
	if n == 1 {
		prod, reg = e.src1Prod, e.inst.Src1
	} else {
		prod, reg = e.src2Prod, e.inst.Src2
	}
	if reg == isa.RegNone || prod == nilRef {
		return true
	}
	if i := prod.index(); c.ar.gens[i] == prod.gen() {
		return c.ar.stat[i] >= stDone
	}
	return true
}

// storeData returns the store's data value; call only when dataKnown. Once
// the store issues, the value has been latched into src1Val (see
// tryIssueStore), so post-retirement readers (the SB drain, SLF) never
// chase a recycled producer slot.
func (c *Core) storeData(e *entry) uint64 {
	if e.inst.Src1 == isa.RegNone {
		return e.inst.Imm
	}
	if p := e.src1Prod; p != nilRef {
		if i := p.index(); c.ar.gens[i] == p.gen() {
			return c.ar.ents[i].val
		}
		return c.regVal[e.inst.Src1]
	}
	return e.src1Val
}

// forwardValue extracts the load's bytes from the store's data; call only
// when contains(s, l).
func (c *Core) forwardValue(s, l *entry) uint64 {
	return forwardBytes(c.storeData(s), s.inst.Addr, l.inst.Addr, l.inst.EffSize())
}

// Tick advances the core one cycle and returns its quiescence report:
// progressed is true when any state beyond the per-cycle counter deltas
// changed, and wake is the earliest future cycle at which the core can next
// do timed work (sched.Never when it is purely event-blocked). A quiescent
// core's following ticks are exact replays until that wake cycle or an
// event, which is what lets the machine skip them with SkipCycles.
func (c *Core) Tick(now uint64) (progressed bool, wake uint64) {
	if c.done {
		return false, sched.Never
	}
	c.progressed = false
	c.delta = tickDelta{stall: -1}
	c.st.Cycles++
	if c.gate.Closed() {
		c.st.GateClosedCycles++
		c.delta.gateClosed = 1
	}
	c.retire(now)
	c.drainSB(now)
	c.issue(now)
	c.dispatch(now)
	if c.fetchIdx >= len(c.prog) && c.rob.len() == 0 && c.sq.empty() {
		c.done = true
		c.progressed = true
	}
	if c.progressed {
		return true, now + 1
	}
	if !c.wakeHints {
		return false, sched.Never
	}
	return false, c.wakeCycle(now)
}

// SkipCycles bulk-applies n quiescent cycles: the per-cycle counter deltas
// recorded by the last Tick, n times. The machine calls it only after a
// fully quiescent Step and only for ranges that end before the next event
// or wake cycle, where each skipped tick is provably a replay of the last.
func (c *Core) SkipCycles(n uint64) {
	if c.done || n == 0 {
		return
	}
	c.st.Cycles += n
	c.st.GateClosedCycles += c.delta.gateClosed * n
	c.st.GateStallCycles += c.delta.gateStall * n
	if c.delta.stall >= 0 {
		c.st.StallCycles[c.delta.stall] += n
	}
	c.st.SQSearches += c.delta.sqSearches * n
}

// wakeCycle reports the earliest future cycle at which this (quiescent)
// core can make progress — or change its per-cycle counter deltas —
// without a memory-system event: the pipeline-depth window of the ROB
// head, a running execution latency, or the end of a front-end redirect
// window. Everything else the core can wait on arrives as an event. The
// scan touches only the arena's SoA arrays.
func (c *Core) wakeCycle(now uint64) uint64 {
	w := uint64(sched.Never)
	if c.rob.len() > 0 {
		if i := c.rob.at(0).index(); c.ar.stat[i] == stDone && now < c.ar.minRetire[i] {
			w = c.ar.minRetire[i]
		}
	}
	if c.nLocalExec > 0 {
		sa, sb := c.rob.spans()
		for _, span := range [2][]entryRef{sa, sb} {
			for _, r := range span {
				i := r.index()
				if c.ar.stat[i] == stIssued && !c.ar.inflight[i] {
					if d := c.ar.execDone[i]; d > now && d < w {
						w = d
					}
				}
			}
		}
	}
	if c.fetchIdx < len(c.prog) && c.haltBranch == nilRef && now < c.redirectUntil && c.redirectUntil < w {
		w = c.redirectUntil
	}
	return w
}

// ---- retire -----------------------------------------------------------------

func (c *Core) retire(now uint64) {
	for n := 0; n < c.cfg.Width && c.rob.len() > 0; n++ {
		i := c.rob.at(0).index()
		e := &c.ar.ents[i]
		if c.ar.stat[i] != stDone || now < c.ar.minRetire[i] {
			return
		}
		if e.inst.Op == isa.OpFence && c.sq.anyOlderUnwritten(&c.ar, e.dynSeq) {
			return
		}
		if e.isLoad() && c.policy.LoadRetireBlocked(c, i, e, now) {
			return
		}
		c.doRetire(i, e, now)
	}
}

func (c *Core) doRetire(i int32, e *entry, now uint64) {
	c.progressed = true
	c.ar.stat[i] = stRetired
	c.rob.popFront()
	c.st.RetiredInsts++
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KRetire, Op: e.inst.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
	}

	// A retiring store keeps its arena slot until the SB drain writes it
	// to the L1; everything else is recycled at the end of this function.
	freeSlot := !e.isStore()

	switch {
	case e.isLoad():
		if c.lq.at(0).index() != i {
			panic("core: LQ head out of sync with ROB")
		}
		c.lq.popFront()
		c.st.RetiredLoads++
		if e.slf {
			c.st.SLFLoads++
		}
		c.setLoadVal(e.traceIdx, e.val)
		// The paper's mechanism: a retiring SLF load whose forwarding
		// store is still in the SQ/SB closes the retire gate behind
		// it (Fig. 8 step b). The presence check is the direct
		// slot+sorting-bit compare; a live forwarding store is by
		// construction not yet written to the L1.
		if c.policy.ClosesGate() &&
			e.slf && c.sq.present(&c.ar, e.slfKey) && c.ar.live(e.slfStore) {
			gk := obs.KeyNone
			if c.policy.KeyedGate() {
				c.gate.CloseKeyed(e.slfKey)
				gk = obsKey(e.slfKey)
			} else {
				c.gate.CloseUnkeyed()
			}
			c.st.GateCloses++
			c.gateClosedAt = now
			if c.tr != nil {
				c.tr.Record(obs.Event{Cycle: now, Kind: obs.KGateClose, Op: e.inst.Op,
					Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: gk, Addr: e.inst.Addr})
			}
		}
	case e.isStore():
		c.st.RetiredStores++
		// The store stays in its SQ/SB slot; retirement moves it
		// logically from the SQ to the SB. Its residency there — the
		// window during which it can hold the retire gate closed — is
		// measured from here to its L1 write.
		e.retiredAt = now
	case e.inst.Op == isa.OpRMW:
		c.st.RetiredLoads++
		c.st.RetiredStores++
		c.setLoadVal(e.traceIdx, e.val)
	}

	if d := e.inst.Dst; d != isa.RegNone {
		c.regVal[d] = e.val
		if c.regProd[d].index() == i {
			c.regProd[d] = nilRef
		}
	}
	// A retiring fence's slot is recycled; younger loads holding it as
	// their barrier see a stale ref, which is exactly "fence retired".
	if freeSlot {
		c.ar.release(i)
	}
}

// ---- store buffer drain -------------------------------------------------------

// maxDrainInflight bounds the overlapping store-buffer drains (the L1 store
// commit pipeline depth).
const maxDrainInflight = 8

// drainSB issues L1 writes for retired stores at the SB head. Drains are
// pipelined — several may be in flight — but TSO's in-order memory-order
// insertion is preserved by chaining each store's completion to be no
// earlier than its predecessor's (and at most one insertion per cycle).
func (c *Core) drainSB(now uint64) {
	q := &c.sq
	for i, n := q.head, q.count; n > 0; n-- {
		if c.drainInflight >= maxDrainInflight {
			return
		}
		r := q.slots[i]
		if i++; i == len(q.slots) {
			i = 0
		}
		idx := r.index()
		st := &c.ar.ents[idx]
		if c.ar.stat[idx] != stRetired {
			// Retirement is in order and the queue is in program order, so
			// the retired (drainable) stores are the oldest prefix: nothing
			// younger can be drainable either.
			return
		}
		if st.draining {
			continue
		}
		st.draining = true
		c.progressed = true
		c.drainInflight++
		if st.inst.Op != isa.OpStore {
			panic(fmt.Sprintf("core: non-store %v in SB", st.inst))
		}
		// In-order insertion, at most one store every other cycle (the
		// L1 write port is shared with fills).
		notBefore := uint64(0)
		if c.lastDrainWhen > 0 {
			notBefore = c.lastDrainWhen + 2
		}
		when := c.hier.Store(c.id, st.inst.Addr, st.inst.EffSize(), c.storeData(st), now, notBefore, uint64(r))
		c.lastDrainWhen = when
	}
}

// OnStoreWrote runs at the store's memory-order insertion cycle: the store
// leaves the SB and, if it forwarded to an SLF load that locked the retire
// gate, reopens the gate with its key (Fig. 8 step c). The arena slot is
// recycled at the end — from here on, every ref to this store (SLF loads'
// slfStore, NoSpec waitStore) reads as stale, meaning "written". Retired
// stores are never squashed, so the ref is always live here.
func (c *Core) OnStoreWrote(ref, when uint64) { c.storeWrote(entryRef(ref), when) }

func (c *Core) storeWrote(r entryRef, when uint64) {
	i := r.index()
	e := &c.ar.ents[i]
	e.writtenL1 = true
	c.drainInflight--
	c.sq.free(r)
	if c.hc != nil {
		c.hc.Observe(hist.SBResidency, when-e.retiredAt)
	}
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: when, Kind: obs.KSBInsert, Op: e.inst.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obsKey(e.sqKey), Addr: e.inst.Addr})
	}
	if c.gate.StoreWrote(e.sqKey) {
		c.st.GateReopens++
		if c.hc != nil {
			c.hc.Observe(hist.GateClosed, when-c.gateClosedAt)
		}
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: when, Kind: obs.KGateReopen, Op: e.inst.Op,
				Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obsKey(e.sqKey), Addr: e.inst.Addr})
		}
	}
	// The keyless SLFSoS variant reopens only when the SB drains.
	if c.policy.ReopensGateOnSBDrain() && !c.sq.anyRetiredUnwritten(&c.ar) {
		if c.gate.SBDrained() {
			c.st.GateReopens++
			if c.hc != nil {
				c.hc.Observe(hist.GateClosed, when-c.gateClosedAt)
			}
			if c.tr != nil {
				c.tr.Record(obs.Event{Cycle: when, Kind: obs.KGateReopen, Op: e.inst.Op,
					Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
			}
		}
	}
	c.ar.release(i)
}

// ---- issue / execute ----------------------------------------------------------

func (c *Core) issue(now uint64) {
	// Entries the scan can act on are counted as they change state: when
	// nothing is waiting to issue and nothing is executing locally — every
	// in-flight instruction is waiting on memory — the scan is a no-op.
	if c.nDispatched == 0 && c.nLocalExec == 0 {
		return
	}
	budget := issueWidth
	// Iterate a snapshot of the ROB by position: a mid-scan squash
	// truncates the youngest suffix in place, and the generation check
	// skips the flushed positions exactly like the old `alive` flag did.
	sa, sb := c.rob.spans()
	for _, span := range [2][]entryRef{sa, sb} {
		for _, r := range span {
			i := r.index()
			if c.ar.gens[i] != r.gen() {
				continue
			}
			switch c.ar.stat[i] {
			case stIssued:
				if !c.ar.inflight[i] && now >= c.ar.execDone[i] {
					c.complete(i, now)
				}
			case stDispatched:
				if budget == 0 {
					continue
				}
				e := &c.ar.ents[i]
				if c.tryIssue(i, e, now) {
					c.progressed = true
					c.nDispatched--
					if c.ar.stat[i] == stIssued && !c.ar.inflight[i] {
						c.nLocalExec++
					}
					budget--
					if c.tr != nil {
						c.tr.Record(obs.Event{Cycle: now, Kind: obs.KIssue, Op: e.inst.Op,
							Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
						if c.ar.stat[i] >= stDone {
							// Stores, fences and nops complete in place.
							c.tr.Record(obs.Event{Cycle: now, Kind: obs.KPerform, Op: e.inst.Op,
								Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
						}
					}
				}
			}
		}
	}
}

// complete finishes a locally executing instruction (ALU, branch, or a
// forwarded load whose latency elapsed).
func (c *Core) complete(i int32, now uint64) {
	c.progressed = true
	c.nLocalExec--
	e := &c.ar.ents[i]
	switch e.inst.Op {
	case isa.OpALU:
		e.val = c.operandVal(e, 1) + c.operandVal(e, 2) + e.inst.Imm
	case isa.OpBranch:
		if e.predWrong {
			c.st.BranchMispredicts++
			c.redirectUntil = maxU64(c.redirectUntil, now+uint64(c.cfg.BranchMispredictPenalty))
			if c.haltBranch.index() == i {
				c.haltBranch = nilRef
			}
		}
	case isa.OpLoad:
		// An SLF load's value was latched at forwarding time (the store
		// data was final then; its producer's slot may since have been
		// recycled).
	}
	c.ar.stat[i] = stDone
	c.ar.execDone[i] = now
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KPerform, Op: e.inst.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr, N: e.val})
	}
}

func (c *Core) tryIssue(i int32, e *entry, now uint64) bool {
	switch e.inst.Op {
	case isa.OpALU:
		if c.operandReady(e, 1) && c.operandReady(e, 2) {
			c.ar.stat[i] = stIssued
			c.ar.execDone[i] = now + 1 + uint64(e.inst.Lat)
			return true
		}
	case isa.OpBranch:
		if c.operandReady(e, 1) {
			c.ar.stat[i] = stIssued
			c.ar.execDone[i] = now + 1
			return true
		}
	case isa.OpNop:
		c.ar.stat[i] = stDone
		c.ar.execDone[i] = now
		return true
	case isa.OpFence:
		// Fences "execute" immediately; retirement enforces the drain.
		c.ar.stat[i] = stDone
		c.ar.execDone[i] = now
		return true
	case isa.OpStore:
		return c.tryIssueStore(i, e, now)
	case isa.OpLoad:
		return c.tryIssueLoad(i, e, now)
	case isa.OpRMW:
		return c.tryIssueRMW(i, e, now)
	}
	return false
}

func (c *Core) tryIssueStore(i int32, e *entry, now uint64) bool {
	if !e.addrResolved && c.ar.addrKnown(e) {
		e.addrResolved = true
		c.progressed = true
		c.checkDependenceViolation(e, now)
		// Read-for-ownership prefetch: acquire M early so the SB drain
		// hits in the L1.
		c.hier.PrefetchOwner(c.id, e.inst.Addr, now)
	}
	if e.addrResolved && c.ar.dataKnown(e) {
		// Latch the data value now: the producing entry completes before
		// this point and may be recycled long before the SB drain (or an
		// SLF read) needs the value.
		if e.inst.Src1 != isa.RegNone && e.src1Prod != nilRef {
			e.src1Val = c.operandVal(e, 1)
			e.src1Prod = nilRef
		}
		c.ar.stat[i] = stDone
		c.ar.execDone[i] = now + 1
		return true
	}
	return false
}

// checkDependenceViolation runs when a store's address resolves: any
// younger load that already performed on overlapping bytes without
// forwarding from this store (or a younger one) is a memory-dependence
// misspeculation; it is squashed and the StoreSet predictor trained.
func (c *Core) checkDependenceViolation(s *entry, now uint64) {
	n := c.lq.len()
	for k := 0; k < n; k++ {
		li := c.lq.at(k).index()
		l := &c.ar.ents[li]
		if l.dynSeq <= s.dynSeq || c.ar.stat[li] < stDone {
			continue
		}
		if !overlaps(s, l) {
			continue
		}
		if l.slf && l.slfStoreSeq > s.dynSeq {
			continue // forwarded from a younger store: shadowed
		}
		c.ss.TrainViolation(l.inst.PC, s.inst.PC)
		c.st.DepSquashes++
		c.squashFrom(li, now, false, false, obs.CauseStoreSet, s.inst.Addr)
		return
	}
}

func (c *Core) tryIssueRMW(i int32, e *entry, now uint64) bool {
	// Atomic RMW: executes at the ROB head with the SB drained, giving it
	// TSO atomic (and trivially store-atomic) semantics.
	if c.rob.len() == 0 || c.rob.at(0).index() != i || !c.ar.addrKnown(e) {
		return false
	}
	if c.sq.anyOlderUnwritten(&c.ar, e.dynSeq) {
		return false
	}
	c.ar.stat[i] = stIssued
	c.ar.inflight[i] = true
	rmw := c.ar.refOf(i)
	c.hier.RMW(c.id, e.inst.Addr, e.inst.EffSize(), e.inst.Imm, now, uint64(rmw))
	return true
}

// OnRMWDone delivers an atomic's completion: a stale ref means the RMW was
// squashed after issue and the result is dropped.
func (c *Core) OnRMWDone(ref, old, when uint64) {
	rmw := entryRef(ref)
	if !c.ar.live(rmw) {
		return
	}
	ri := rmw.index()
	re := &c.ar.ents[ri]
	re.val = old
	c.ar.inflight[ri] = false
	c.ar.stat[ri] = stDone
	c.ar.execDone[ri] = when
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: when, Kind: obs.KPerform, Op: re.inst.Op,
			Seq: re.dynSeq, TraceIdx: int32(re.traceIdx), Key: obs.KeyNone, Addr: re.inst.Addr, N: old})
	}
}

func (c *Core) tryIssueLoad(i int32, e *entry, now uint64) bool {
	if !c.ar.addrKnown(e) {
		return false
	}
	if e.fenceBarrier != nilRef && c.ar.live(e.fenceBarrier) && !c.policy.SpeculatesPastFences() {
		return false // serialize loads behind an in-flight fence
	}
	if len(c.rmws) > 0 && c.rmwBlocked(e) {
		return false
	}
	c.ar.lineAddr[i] = c.hier.LineAddr(e.inst.Addr)

	// Blocked on a specific store writing to the L1 (370-NoSpec blanket
	// enforcement, or a partial-overlap forwarding block)? A live ref is
	// an unwritten store; a stale one has written.
	if e.waitStore != nilRef {
		if c.ar.live(e.waitStore) {
			return false
		}
		e.waitStore = nilRef
		c.issueToMemory(i, e, now)
		return true
	}
	// Blocked on an older store's address (StoreSet dependence or
	// 370-NoSpec waiting)?
	if e.waitAddr != nilRef {
		if wi := e.waitAddr.index(); c.ar.gens[wi] == e.waitAddr.gen() && !c.ar.addrKnown(&c.ar.ents[wi]) {
			return false
		}
		e.waitAddr = nilRef
		c.progressed = true
		// fall through and re-disambiguate
	}

	c.st.SQSearches++
	c.delta.sqSearches++
	matchIdx, unknownIdx := c.sq.youngestOlderMatch(&c.ar, e)

	if c.policy.BlanketLoadOrdering() {
		// Blanket enforcement: wait for all older store addresses; on a
		// match, wait for that store's L1 write (IBM 370, Section II-C).
		if unknownIdx >= 0 {
			e.waitAddr = c.ar.refOf(unknownIdx)
			c.progressed = true
			return false
		}
		if matchIdx >= 0 {
			e.waitStore = c.ar.refOf(matchIdx)
			c.progressed = true
			if !e.noSpecWaited {
				e.noSpecWaited = true
				c.st.NoSpecWaits++
			}
			return false
		}
		c.issueToMemory(i, e, now)
		return true
	}

	if unknownIdx >= 0 && c.ss.PredictDependent(e.inst.PC, c.ar.ents[unknownIdx].inst.PC) {
		e.waitAddr = c.ar.refOf(unknownIdx)
		c.progressed = true
		return false
	}
	if matchIdx >= 0 {
		match := &c.ar.ents[matchIdx]
		if !contains(match, e) {
			// Partial overlap: cannot forward; wait for the store's
			// L1 write, as conventional cores do.
			e.waitStore = c.ar.refOf(matchIdx)
			c.progressed = true
			return false
		}
		if !c.ar.dataKnown(match) {
			return false // wait for the store data
		}
		// Store-to-load forwarding: the load becomes an SLF load and
		// copies the store's key (Fig. 8 step a). Under the paper's
		// insight the SLF load is NOT speculative; it is the source
		// of SA-speculation for younger loads. The forwarded value and
		// the store's dynSeq are latched here — both are final — so no
		// later reader chases the store's (recyclable) slot.
		if e.fenceBarrier != nilRef && c.ar.live(e.fenceBarrier) {
			// Forwarding past a live fence: Louvre version speculation.
			c.st.VersionSpecLoads++
		}
		e.slf = true
		e.slfStore = c.ar.refOf(matchIdx)
		e.slfStoreSeq = match.dynSeq
		e.slfKey = match.sqKey
		e.val = c.forwardValue(match, e)
		c.ar.stat[i] = stIssued
		c.ar.execDone[i] = now + uint64(c.l1Lat)
		if c.hc != nil {
			c.hc.Observe(hist.LoadSLF, c.ar.execDone[i]-now)
		}
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: now, Kind: obs.KSLFHit, Op: e.inst.Op,
				Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obsKey(e.slfKey), Addr: e.inst.Addr})
		}
		return true
	}
	c.issueToMemory(i, e, now)
	return true
}

// rmwBlocked reports whether an older in-flight RMW overlapping the load's
// bytes has not yet performed. Such a load must wait: the RMW's write never
// enters the SQ, so issuing the load early would read the pre-RMW value with
// no disambiguation or squash to catch it. Completed, retired and squashed
// RMWs are dropped from the list as it is scanned, so the check costs
// nothing once they drain.
func (c *Core) rmwBlocked(e *entry) bool {
	live := c.rmws[:0]
	blocked := false
	for _, r := range c.rmws {
		ri := r.index()
		if c.ar.gens[ri] != r.gen() || c.ar.stat[ri] >= stDone {
			continue
		}
		re := &c.ar.ents[ri]
		live = append(live, r)
		if re.dynSeq < e.dynSeq && overlaps(re, e) {
			blocked = true
		}
	}
	for i := len(live); i < len(c.rmws); i++ {
		c.rmws[i] = nilRef
	}
	c.rmws = live
	return blocked
}

func (c *Core) issueToMemory(i int32, e *entry, now uint64) {
	c.ar.stat[i] = stIssued
	c.ar.inflight[i] = true
	ld := c.ar.refOf(i)
	if e.fenceBarrier != nilRef && c.ar.live(e.fenceBarrier) {
		// Only Louvre issues past a live fence; every other machine was
		// blocked at the top of tryIssueLoad.
		c.st.VersionSpecLoads++
	}
	if c.policy.InvisibleSpeculation() && c.speculativeAtIssue(e) {
		e.invisible = true
		c.st.InvisibleLoads++
		c.hier.LoadInvisible(c.id, e.inst.Addr, e.inst.EffSize(), now, uint64(ld))
		return
	}
	c.hier.Load(c.id, e.inst.Addr, e.inst.EffSize(), now, uint64(ld))
}

// OnLoadDone delivers a load's performed value: a stale ref means the load
// was squashed after issue and the value is dropped.
func (c *Core) OnLoadDone(ref, val, when uint64) {
	ld := entryRef(ref)
	if !c.ar.live(ld) {
		return
	}
	li := ld.index()
	le := &c.ar.ents[li]
	le.val = val
	c.ar.inflight[li] = false
	c.ar.stat[li] = stDone
	c.ar.execDone[li] = when
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: when, Kind: obs.KPerform, Op: le.inst.Op,
			Seq: le.dynSeq, TraceIdx: int32(le.traceIdx), Key: obs.KeyNone, Addr: le.inst.Addr, N: val})
	}
}

// ---- dispatch -----------------------------------------------------------------

func (c *Core) dispatch(now uint64) {
	if now < c.redirectUntil {
		return
	}
	if c.haltBranch != nilRef {
		// A mispredicted branch is in flight: the front end fetches the
		// wrong path until the branch resolves (handled in complete).
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.fetchIdx >= len(c.prog) {
			return
		}
		in := c.prog[c.fetchIdx]
		if c.rob.full() {
			if n == 0 {
				c.st.StallCycles[stats.StallROB]++
				c.delta.stall = int8(stats.StallROB)
			}
			return
		}
		if in.Op == isa.OpLoad && c.lq.full() {
			if n == 0 {
				c.st.StallCycles[stats.StallLQ]++
				c.delta.stall = int8(stats.StallLQ)
			}
			return
		}
		if in.Op == isa.OpStore && c.sq.full() {
			if n == 0 {
				c.st.StallCycles[stats.StallSQ]++
				c.delta.stall = int8(stats.StallSQ)
			}
			return
		}
		c.dispatchOne(in, now)
	}
}

func (c *Core) dispatchOne(in isa.Inst, now uint64) {
	c.progressed = true
	c.nDispatched++
	c.dynSeq++
	i := c.ar.alloc()
	e := &c.ar.ents[i]
	e.inst = in
	e.traceIdx = c.fetchIdx
	e.dynSeq = c.dynSeq
	c.ar.minRetire[i] = now + uint64(c.cfg.PipelineDepth)
	ref := c.ar.refOf(i)
	c.fetchIdx++

	// Rename: capture producers or values for the source operands.
	if in.Src1 != isa.RegNone {
		if p := c.regProd[in.Src1]; p != nilRef {
			e.src1Prod = p
		} else {
			e.src1Val = c.regVal[in.Src1]
		}
	}
	if in.Src2 != isa.RegNone {
		if p := c.regProd[in.Src2]; p != nilRef {
			e.src2Prod = p
		} else {
			e.src2Val = c.regVal[in.Src2]
		}
	}
	if in.Dst != isa.RegNone {
		c.regProd[in.Dst] = ref
	}

	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KDispatch, Op: in.Op,
			Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: in.Addr})
	}

	c.rob.push(ref)
	switch in.Op {
	case isa.OpFence:
		c.lastFence = ref
	case isa.OpLoad:
		e.fenceBarrier = c.lastFence
		c.lq.push(ref)
	case isa.OpRMW:
		c.rmws = append(c.rmws, ref)
	case isa.OpStore:
		c.sq.alloc(ref, e)
	case isa.OpBranch:
		// Train in dispatch order so the global history is coherent;
		// the penalty applies when the branch resolves.
		correct := c.bp.Update(in.PC, in.Taken)
		if !correct {
			e.predWrong = true
			c.haltBranch = ref
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
