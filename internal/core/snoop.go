package core

import (
	"sesa/internal/config"
	"sesa/internal/hist"
	"sesa/internal/isa"
	"sesa/internal/obs"
)

// DebugSquash, when non-nil, is called on every invalidation/eviction
// squash with the line and cause; test harnesses use it to attribute
// misspeculation sources.
var DebugSquash func(lineAddr uint64, eviction bool)

// onLineRemoved is the hierarchy's invalidation/eviction listener: it snoops
// the load queue. A performed, non-retired load on the removed line is
// squashed if it is speculative under the core's model — the mechanism that
// dynamically enforces store atomicity exactly when a violation would
// otherwise become observable (Sections III and IV).
func (c *Core) onLineRemoved(lineAddr uint64, when uint64, eviction bool) {
	if c.done {
		return
	}
	c.st.LQSnoops++
	for i, e := range c.lq {
		if e.status != stDone || e.lineAddr != lineAddr {
			continue
		}
		mspec, sa := c.loadSpeculative(i, e)
		if !mspec && !sa {
			continue
		}
		c.st.LQSnoopHits++
		c.st.Squashes++
		if sa {
			// The load was SA-speculative when caught: a
			// store-atomicity misspeculation (Table IV counts
			// re-execution "from the speculative load that is
			// caught by an invalidation or replacement").
			c.st.SASquashes++
		}
		if eviction {
			c.st.EvictionSquashes++
		}
		if DebugSquash != nil {
			DebugSquash(lineAddr, eviction)
		}
		cause := obs.CauseMSpec
		if sa {
			cause = obs.CauseSA
		}
		c.squashFrom(e, when, true, sa, cause, lineAddr)
		return
	}
}

// loadSpeculative decides whether the performed load c.lq[i] may still be
// squashed, under the core's consistency model.
//
// All models use in-window load-load speculation: a load that performed
// while an older load is unperformed is M-speculative. The chain through
// older performed-but-speculative loads is implied: if the oldest
// unperformed load L0 precedes them both, every younger performed load sees
// L0 as an older unperformed load.
//
// The SA-speculation models add the paper's new state:
//   - 370-SLFSoS / 370-SLFSoS-key: a load is SA-speculative if the retire
//     gate is closed (it is then younger than the retired SLF load that
//     closed it) or if an older SLF load in the LQ has a forwarding store
//     that has not yet written to the L1. The SLF load itself is NOT
//     speculative (Section IV-A).
//   - 370-SLFSpec: SC-like speculation where the SLF load itself IS
//     speculative until every older store has written to the L1.
func (c *Core) loadSpeculative(i int, e *entry) (mspec, sa bool) {
	// M-speculative: any older unperformed load. This is the baseline
	// load-load in-window speculation every model (including x86) uses.
	for j := 0; j < i; j++ {
		if c.lq[j].status < stDone {
			mspec = true
			break
		}
	}
	if !mspec {
		// An in-flight atomic RMW is an older unperformed read too; it
		// occupies no LQ slot, but a load that performed past it is just
		// as speculative.
		for _, r := range c.rmws {
			if r.alive && r.status < stDone && r.dynSeq < e.dynSeq {
				mspec = true
				break
			}
		}
	}
	switch c.model {
	case config.SLFSoS370, config.SLFSoSKey370:
		if c.gate.Closed() {
			sa = true
			return
		}
		for j := 0; j < i; j++ {
			l := c.lq[j]
			if l.slf && !l.slfStore.writtenL1 {
				sa = true
				return
			}
		}
	case config.SLFSpec370:
		for j := 0; j <= i; j++ {
			l := c.lq[j]
			if l.slf && l.status >= stDone && c.sq.anyOlderUnwritten(l.dynSeq) {
				sa = true
				return
			}
		}
	}
	return
}

// squashFrom flushes the pipeline from entry `from` (inclusive) to the ROB
// tail and restarts fetch at its trace index. countReexec attributes the
// flushed instructions to the Table IV "re-executed" metric (store-atomicity
// or load-load misspeculation); memory-dependence squashes are counted
// separately.
func (c *Core) squashFrom(from *entry, now uint64, countReexec, saOnly bool, cause obs.Cause, addr uint64) {
	c.progressed = true
	pos := -1
	for i, e := range c.rob {
		if e == from {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic("core: squash target not in ROB")
	}
	flushed := c.rob[pos:]
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KSquash, Cause: cause, Op: from.inst.Op,
			Seq: from.dynSeq, TraceIdx: int32(from.traceIdx), Key: obs.KeyNone, Addr: addr,
			N: uint64(len(flushed))})
	}
	for i := len(flushed) - 1; i >= 0; i-- {
		e := flushed[i]
		e.alive = false
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: now, Kind: obs.KFlush, Cause: cause, Op: e.inst.Op,
				Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
		}
		if e.isStore() {
			if e.status == stRetired {
				panic("core: squashing a retired store")
			}
			c.sq.rollback(e)
		}
		if c.haltBranch == e {
			c.haltBranch = nil
		}
	}
	if countReexec {
		c.st.ReexecInsts += uint64(len(flushed))
		if saOnly {
			c.st.SAReexecInsts += uint64(len(flushed))
		}
	}
	c.rob = c.rob[:pos]

	// Rebuild the LQ (a suffix was flushed) and the rename map.
	for len(c.lq) > 0 && !c.lq[len(c.lq)-1].alive {
		c.lq = c.lq[:len(c.lq)-1]
	}
	for r := range c.regProd {
		c.regProd[r] = nil
	}
	c.lastFence = nil
	for _, e := range c.rob {
		if e.inst.Dst != isa.RegNone {
			c.regProd[e.inst.Dst] = e
		}
		if e.inst.Op == isa.OpFence {
			c.lastFence = e
		}
	}

	c.fetchIdx = from.traceIdx
	c.redirectUntil = maxU64(c.redirectUntil, now+uint64(c.cfg.SquashRefillPenalty))
	if c.hc != nil {
		// The squash-to-refill cost: cycles dispatch stays blocked from
		// this squash until its refill window ends (overlapping windows
		// extend it past the fixed penalty).
		c.hc.Observe(hist.SquashRefill, c.redirectUntil-now)
	}
}
