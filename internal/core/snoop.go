package core

import (
	"sesa/internal/hist"
	"sesa/internal/isa"
	"sesa/internal/obs"
)

// DebugSquash, when non-nil, is called on every invalidation/eviction
// squash with the line and cause; test harnesses use it to attribute
// misspeculation sources.
var DebugSquash func(lineAddr uint64, eviction bool)

// OnLineRemoved is the hierarchy's invalidation/eviction notification: it
// snoops the load queue. A performed, non-retired load on the removed line
// is squashed if it is speculative under the core's model — the mechanism
// that dynamically enforces store atomicity exactly when a violation would
// otherwise become observable (Sections III and IV).
func (c *Core) OnLineRemoved(lineAddr uint64, when uint64, eviction bool) {
	if c.done {
		return
	}
	c.st.LQSnoops++
	n := c.lq.len()
	for k := 0; k < n; k++ {
		i := c.lq.at(k).index()
		if c.ar.stat[i] != stDone || c.ar.lineAddr[i] != lineAddr {
			continue
		}
		e := &c.ar.ents[i]
		mspec, sa := c.loadSpeculative(k, e)
		if !mspec && !sa {
			continue
		}
		c.st.LQSnoopHits++
		c.st.Squashes++
		if sa {
			// The load was SA-speculative when caught: a
			// store-atomicity misspeculation (Table IV counts
			// re-execution "from the speculative load that is
			// caught by an invalidation or replacement").
			c.st.SASquashes++
		}
		if eviction {
			c.st.EvictionSquashes++
		}
		if DebugSquash != nil {
			DebugSquash(lineAddr, eviction)
		}
		cause := obs.CauseMSpec
		if sa {
			cause = obs.CauseSA
		}
		c.squashFrom(i, when, true, sa, cause, lineAddr)
		return
	}
}

// loadSpeculative decides whether the performed load at LQ position k may
// still be squashed, under the core's consistency policy.
//
// All machines use in-window load-load speculation: a load that performed
// while an older load is unperformed is M-speculative. The chain through
// older performed-but-speculative loads is implied: if the oldest
// unperformed load L0 precedes them both, every younger performed load sees
// L0 as an older unperformed load.
//
// Beyond that baseline the policy decides: Policy.VersionSpeculative adds
// machine-specific M-speculation sources (Louvre holds loads squashable
// while their fence barrier is in flight), and Policy.SASpeculative is the
// machine's store-atomicity speculation state — the SoS family keys it on
// the retire gate and older SLF loads with unwritten forwarding stores
// (Section IV-A), SLFSpec on the SLF load itself until the SB drains.
func (c *Core) loadSpeculative(k int, e *entry) (mspec, sa bool) {
	// M-speculative: any older unperformed load. This is the baseline
	// load-load in-window speculation every model (including x86) uses.
	for j := 0; j < k; j++ {
		if c.ar.stat[c.lq.at(j).index()] < stDone {
			mspec = true
			break
		}
	}
	if !mspec {
		// An in-flight atomic RMW is an older unperformed read too; it
		// occupies no LQ slot, but a load that performed past it is just
		// as speculative. A stale ref is a retired or squashed RMW.
		for _, r := range c.rmws {
			ri := r.index()
			if c.ar.gens[ri] != r.gen() || c.ar.stat[ri] >= stDone {
				continue
			}
			if c.ar.ents[ri].dynSeq < e.dynSeq {
				mspec = true
				break
			}
		}
	}
	if !mspec && c.policy.VersionSpeculative(c, e) {
		mspec = true
	}
	sa = c.policy.SASpeculative(c, k, e)
	return
}

// squashFrom flushes the pipeline from the entry in arena slot fromIdx
// (inclusive) to the ROB tail and restarts fetch at its trace index.
// countReexec attributes the flushed instructions to the Table IV
// "re-executed" metric (store-atomicity or load-load misspeculation);
// memory-dependence squashes are counted separately. Every flushed entry's
// arena slot is recycled here — outstanding refs (memory callbacks in
// flight, producer links) turn stale, which their holders read as
// "squashed; ignore".
func (c *Core) squashFrom(fromIdx int32, now uint64, countReexec, saOnly bool, cause obs.Cause, addr uint64) {
	c.progressed = true
	fromRef := c.ar.refOf(fromIdx)
	from := &c.ar.ents[fromIdx]
	fromTraceIdx := from.traceIdx
	pos := -1
	n := c.rob.len()
	for k := 0; k < n; k++ {
		if c.rob.at(k) == fromRef {
			pos = k
			break
		}
	}
	if pos < 0 {
		panic("core: squash target not in ROB")
	}
	flushed := n - pos
	if c.tr != nil {
		c.tr.Record(obs.Event{Cycle: now, Kind: obs.KSquash, Cause: cause, Op: from.inst.Op,
			Seq: from.dynSeq, TraceIdx: int32(from.traceIdx), Key: obs.KeyNone, Addr: addr,
			N: uint64(flushed)})
	}
	for k := n - 1; k >= pos; k-- {
		r := c.rob.at(k)
		i := r.index()
		e := &c.ar.ents[i]
		if c.tr != nil {
			c.tr.Record(obs.Event{Cycle: now, Kind: obs.KFlush, Cause: cause, Op: e.inst.Op,
				Seq: e.dynSeq, TraceIdx: int32(e.traceIdx), Key: obs.KeyNone, Addr: e.inst.Addr})
		}
		switch c.ar.stat[i] {
		case stDispatched:
			c.nDispatched--
		case stIssued:
			if !c.ar.inflight[i] {
				c.nLocalExec--
			}
		}
		if e.isStore() {
			if c.ar.stat[i] == stRetired {
				panic("core: squashing a retired store")
			}
			c.sq.rollback(r)
		}
		if c.haltBranch == r {
			c.haltBranch = nilRef
		}
		c.ar.release(i)
	}
	if countReexec {
		c.st.ReexecInsts += uint64(flushed)
		if saOnly {
			c.st.SAReexecInsts += uint64(flushed)
		}
	}
	c.rob.truncate(pos)

	// Rebuild the LQ (a suffix was flushed) and the rename map. Flushed
	// loads are the now-stale refs at the LQ tail.
	for c.lq.len() > 0 && !c.ar.live(c.lq.at(c.lq.len()-1)) {
		c.lq.truncate(c.lq.len() - 1)
	}
	for r := range c.regProd {
		c.regProd[r] = nilRef
	}
	c.lastFence = nilRef
	for k := 0; k < c.rob.len(); k++ {
		ref := c.rob.at(k)
		e := &c.ar.ents[ref.index()]
		if e.inst.Dst != isa.RegNone {
			c.regProd[e.inst.Dst] = ref
		}
		if e.inst.Op == isa.OpFence {
			c.lastFence = ref
		}
	}

	c.fetchIdx = fromTraceIdx
	c.redirectUntil = maxU64(c.redirectUntil, now+uint64(c.cfg.SquashRefillPenalty))
	if c.hc != nil {
		// The squash-to-refill cost: cycles dispatch stays blocked from
		// this squash until its refill window ends (overlapping windows
		// extend it past the fixed penalty).
		c.hc.Observe(hist.SquashRefill, c.redirectUntil-now)
	}
}
