package core

// ring is a fixed-capacity FIFO of entry refs — the ROB and LQ layout.
// Dispatch pushes at the tail, retirement pops at the head, and a squash
// truncates the youngest suffix; positions of surviving entries never move,
// which is what lets the issue scan iterate by position across a mid-scan
// squash (truncated positions read stale refs and are skipped by the
// generation check, exactly like the old layout's dead `alive` flags).
type ring struct {
	buf   []entryRef
	head  int
	count int
}

func newRing(capacity int) ring {
	return ring{buf: make([]entryRef, capacity)}
}

func (r *ring) len() int   { return r.count }
func (r *ring) full() bool { return r.count == len(r.buf) }

// at returns the k-th oldest ref. k must be < len(buf); reading positions
// in [count, lastTruncatedCount) yields the stale refs of a just-squashed
// suffix, which callers filter with the arena generation check.
func (r *ring) at(k int) entryRef {
	p := r.head + k
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	return r.buf[p]
}

// spans returns the ring's current contents as up to two contiguous slices
// (oldest first), so per-cycle scans iterate plain slices instead of paying
// the wrap arithmetic of at() per position. The slices alias buf: a mid-scan
// truncate leaves them valid, and the dropped positions read the stale refs
// the generation check filters — the same contract as at().
func (r *ring) spans() (a, b []entryRef) {
	if r.head+r.count <= len(r.buf) {
		return r.buf[r.head : r.head+r.count], nil
	}
	return r.buf[r.head:], r.buf[:r.head+r.count-len(r.buf)]
}

func (r *ring) push(v entryRef) {
	if r.full() {
		panic("core: ring overflow")
	}
	p := r.head + r.count
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	r.buf[p] = v
	r.count++
}

func (r *ring) popFront() {
	if r.count == 0 {
		panic("core: ring underflow")
	}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count--
}

// truncate keeps the oldest n entries, dropping the youngest suffix.
func (r *ring) truncate(n int) {
	if n > r.count {
		panic("core: ring truncate grows")
	}
	r.count = n
}
