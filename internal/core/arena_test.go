package core

import "testing"

func TestEntryRefPackUnpack(t *testing.T) {
	if nilRef.index() != -1 {
		t.Fatalf("nilRef.index() = %d, want -1", nilRef.index())
	}
	for _, tc := range []struct {
		idx int32
		gen uint32
	}{{0, 0}, {0, 1}, {7, 0}, {279, 4294967295}, {1 << 20, 12345}} {
		r := makeRef(tc.idx, tc.gen)
		if r == nilRef {
			t.Fatalf("makeRef(%d,%d) collided with nilRef", tc.idx, tc.gen)
		}
		if r.index() != tc.idx || r.gen() != tc.gen {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", tc.idx, tc.gen, r.index(), r.gen())
		}
	}
}

func TestArenaGenerationInvalidation(t *testing.T) {
	a := newArena(4)
	i := a.alloc()
	r := a.refOf(i)
	if !a.live(r) {
		t.Fatal("fresh ref must be live")
	}
	a.ents[i].dynSeq = 42
	a.release(i)
	if a.live(r) {
		t.Fatal("ref must go stale when its slot is released")
	}
	// Reuse of the slot must not revive the old ref.
	j := a.alloc()
	if j != i {
		t.Fatalf("free list should hand back the released slot, got %d want %d", j, i)
	}
	if a.live(r) {
		t.Fatal("old-generation ref must not match the slot's new occupant")
	}
	if !a.live(a.refOf(j)) {
		t.Fatal("new ref must be live")
	}
	if a.ents[j].dynSeq != 0 {
		t.Fatal("alloc must hand out a zeroed entry")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := newArena(2)
	a.alloc()
	a.alloc()
	defer func() {
		if recover() == nil {
			t.Error("allocating past capacity must panic")
		}
	}()
	a.alloc()
}

func TestRingFIFOAndTruncate(t *testing.T) {
	r := newRing(4)
	refs := []entryRef{makeRef(0, 0), makeRef(1, 0), makeRef(2, 0), makeRef(3, 0)}
	for _, v := range refs {
		r.push(v)
	}
	if !r.full() {
		t.Fatal("ring should be full")
	}
	for k, want := range refs {
		if got := r.at(k); got != want {
			t.Fatalf("at(%d) = %v, want %v", k, got, want)
		}
	}
	// Pop two, push two: wrap-around keeps FIFO positions stable.
	r.popFront()
	r.popFront()
	r.push(makeRef(4, 0))
	r.push(makeRef(5, 0))
	want := []entryRef{makeRef(2, 0), makeRef(3, 0), makeRef(4, 0), makeRef(5, 0)}
	for k, w := range want {
		if got := r.at(k); got != w {
			t.Fatalf("after wrap: at(%d) = %v, want %v", k, got, w)
		}
	}
	// Truncating the youngest suffix leaves survivors' positions intact,
	// and the dropped positions still read their (now stale) refs — the
	// property the issue scan's generation check relies on.
	r.truncate(2)
	if r.len() != 2 || r.at(0) != makeRef(2, 0) || r.at(1) != makeRef(3, 0) {
		t.Fatal("truncate moved surviving positions")
	}
	if r.at(2) != makeRef(4, 0) {
		t.Fatal("truncated position should still read the old ref")
	}
}

func TestRingOverflowPanics(t *testing.T) {
	r := newRing(1)
	r.push(makeRef(0, 0))
	defer func() {
		if recover() == nil {
			t.Error("pushing past capacity must panic")
		}
	}()
	r.push(makeRef(1, 0))
}
