package core

// key identifies a store's SQ/SB slot: the slot position bits plus one
// sorting bit that disambiguates wrap-around of the circular buffer
// (Section IV-B2, after Buyuktosunoglu et al.). For the 56-entry SQ/SB of
// Table III this is 6+1 bits; with the LQ's SLF bit it is the 8 bits per LQ
// entry the paper accounts for.
type key struct {
	slot int
	sort bool
}

// Gate is the retire gate: a single open/closed bit and a key register
// (Section IV-B). When an SLF load retires while its forwarding store is
// still in the store buffer, it closes the gate and locks it with its copy
// of the store's key; the store reopens the gate when it writes to the L1.
// The invariant is that exactly one store in the SB matches the key and
// exactly one (already retired) load closed the gate.
//
// The gate never changes state as a function of elapsed cycles: it closes
// only inside a retiring tick (progress) and reopens only inside a store's
// L1-write event callback. The two-level clock relies on this — a closed
// gate stays closed across any skipped quiescent range, so the per-cycle
// gate-closed accounting can be bulk-applied.
type Gate struct {
	closed bool
	// keyed is true when the gate was locked with a key (SLFSoS-key);
	// the keyless SLFSoS variant closes the gate without a key and
	// reopens it only when the store buffer drains completely.
	keyed bool
	key   key
}

// Closed reports whether loads are currently blocked from retiring.
func (g *Gate) Closed() bool { return g.closed }

// CloseKeyed closes the gate locked with k (370-SLFSoS-key).
func (g *Gate) CloseKeyed(k key) {
	g.closed = true
	g.keyed = true
	g.key = k
}

// CloseUnkeyed closes the gate with no key (370-SLFSoS): only a full store
// buffer drain reopens it.
func (g *Gate) CloseUnkeyed() {
	g.closed = true
	g.keyed = false
}

// StoreWrote is called when the store holding k completes its L1 write. It
// reopens a keyed gate when the keys match and reports whether the gate
// opened.
func (g *Gate) StoreWrote(k key) bool {
	if g.closed && g.keyed && g.key == k {
		g.closed = false
		return true
	}
	return false
}

// SBDrained is called when the store buffer becomes empty. It reopens an
// unkeyed gate and reports whether the gate opened. A keyed gate must have
// been opened already by its store's write (the store cannot leave the SB
// without writing), but opening it here too keeps the mechanism safe.
func (g *Gate) SBDrained() bool {
	if g.closed {
		g.closed = false
		return true
	}
	return false
}
