package core

import "testing"

func TestGateKeyedCloseReopen(t *testing.T) {
	var g Gate
	if g.Closed() {
		t.Fatal("gate must start open")
	}
	k := key{slot: 5, sort: true}
	g.CloseKeyed(k)
	if !g.Closed() {
		t.Fatal("gate should be closed")
	}
	// A different key must not open it: wrong slot, wrong sorting bit.
	if g.StoreWrote(key{slot: 4, sort: true}) {
		t.Error("wrong slot opened the gate")
	}
	if g.StoreWrote(key{slot: 5, sort: false}) {
		t.Error("wrong sorting bit opened the gate")
	}
	if !g.Closed() {
		t.Fatal("gate should still be closed")
	}
	if !g.StoreWrote(k) {
		t.Error("matching key should open the gate")
	}
	if g.Closed() {
		t.Error("gate should be open after key match")
	}
	// Opening an already-open gate reports false.
	if g.StoreWrote(k) {
		t.Error("opening an open gate should report false")
	}
}

func TestGateUnkeyedIgnoresStoreWrites(t *testing.T) {
	var g Gate
	g.CloseUnkeyed()
	if g.StoreWrote(key{slot: 0}) {
		t.Error("an unkeyed gate must not open on a store write")
	}
	if !g.Closed() {
		t.Fatal("gate should still be closed")
	}
	if !g.SBDrained() {
		t.Error("SB drain should open an unkeyed gate")
	}
	if g.Closed() {
		t.Error("gate should be open")
	}
	if g.SBDrained() {
		t.Error("draining an open gate should report false")
	}
}

func TestGateSBDrainOpensKeyedGateToo(t *testing.T) {
	// Safety net: if the SB fully drains, even a keyed gate opens (its
	// store cannot still be in the SB).
	var g Gate
	g.CloseKeyed(key{slot: 3})
	if !g.SBDrained() {
		t.Error("SB drain should open a keyed gate as a safety net")
	}
}

func TestGateRelockAfterReopen(t *testing.T) {
	var g Gate
	k1 := key{slot: 1}
	k2 := key{slot: 2}
	g.CloseKeyed(k1)
	g.StoreWrote(k1)
	g.CloseKeyed(k2)
	if g.StoreWrote(k1) {
		t.Error("stale key must not open a re-locked gate")
	}
	if !g.StoreWrote(k2) {
		t.Error("current key should open the gate")
	}
}
