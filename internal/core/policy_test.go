package core

import (
	"testing"

	"sesa/internal/config"
)

// TestPolicyRosterMatchesRegistry pins the policy table to the config
// registry: every registered model must resolve to a policy, so a machine
// added to the registry without a core implementation fails here instead of
// panicking inside New at first use.
func TestPolicyRosterMatchesRegistry(t *testing.T) {
	for _, m := range config.AllModels() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("policyFor(%s) panicked: %v", m, r)
				}
			}()
			if p := policyFor(m); p == nil {
				t.Errorf("policyFor(%s) = nil", m)
			}
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("policyFor on an unregistered model should panic")
		}
	}()
	policyFor(config.Model(99))
}

// TestPolicyPredicates pins each machine's decision profile: the flag set a
// policy answers is the machine's definition, so a silent change here is a
// different machine wearing the same name.
func TestPolicyPredicates(t *testing.T) {
	cases := []struct {
		model                                              config.Model
		closes, keyed, sbDrain, blanket, fences, invisible bool
	}{
		{config.X86, false, false, false, false, false, false},
		{config.NoSpec370, false, false, false, true, false, false},
		{config.SLFSpec370, false, false, false, false, false, false},
		{config.SLFSoS370, true, false, true, false, false, false},
		{config.SLFSoSKey370, true, true, false, false, false, false},
		{config.Louvre370, true, true, false, false, true, false},
		{config.RCP370, true, true, false, false, false, true},
	}
	for _, tc := range cases {
		p := policyFor(tc.model)
		if p.ClosesGate() != tc.closes {
			t.Errorf("%s: ClosesGate = %v, want %v", tc.model, p.ClosesGate(), tc.closes)
		}
		if p.KeyedGate() != tc.keyed {
			t.Errorf("%s: KeyedGate = %v, want %v", tc.model, p.KeyedGate(), tc.keyed)
		}
		if p.ReopensGateOnSBDrain() != tc.sbDrain {
			t.Errorf("%s: ReopensGateOnSBDrain = %v, want %v", tc.model, p.ReopensGateOnSBDrain(), tc.sbDrain)
		}
		if p.BlanketLoadOrdering() != tc.blanket {
			t.Errorf("%s: BlanketLoadOrdering = %v, want %v", tc.model, p.BlanketLoadOrdering(), tc.blanket)
		}
		if p.SpeculatesPastFences() != tc.fences {
			t.Errorf("%s: SpeculatesPastFences = %v, want %v", tc.model, p.SpeculatesPastFences(), tc.fences)
		}
		if p.InvisibleSpeculation() != tc.invisible {
			t.Errorf("%s: InvisibleSpeculation = %v, want %v", tc.model, p.InvisibleSpeculation(), tc.invisible)
		}
	}
}
