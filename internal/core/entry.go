// Package core implements the Skylake-like out-of-order core of Table III
// and the paper's primary contribution: speculative enforcement of store
// atomicity through SLF loads, SA-speculative loads and the retire gate
// (Section IV).
//
// The core is trace driven. Every cycle it retires up to Width instructions
// (subject to the consistency-model policy and the retire gate), drains the
// store buffer, issues ready instructions, and dispatches up to Width new
// instructions from the trace into the ROB/LQ/SQ. Invalidation and eviction
// messages from the memory hierarchy snoop the load queue and squash
// performed speculative loads, exactly the squash-and-reexecute discipline
// the paper builds on.
//
// In-flight instructions live in a per-core entry arena: a fixed-capacity
// dense slice indexed by generation-tagged entryRef handles instead of a
// heap-allocated, pointer-linked graph. The hot per-entry scalars scanned
// every cycle (status, execDone, minRetire, lineAddr, inflight) are split
// into struct-of-arrays siblings of the arena so the retire/issue/wake
// scans walk a few cache lines instead of chasing pointers.
package core

import (
	"sesa/internal/isa"
)

// status tracks an entry's progress through the pipeline.
type status uint8

const (
	// stDispatched: in the ROB, waiting for operands.
	stDispatched status = iota
	// stIssued: executing (ALU latency, memory access in flight, or
	// waiting on a store-forwarding condition).
	stIssued
	// stDone: result available (loads: performed; stores: address and
	// data ready; branches: resolved).
	stDone
	// stRetired: left the ROB. Only stores linger afterwards, in the SB
	// portion of their SQ/SB slot, until they write to the L1.
	stRetired
)

// entryRef is a generation-tagged handle to an arena slot: slot index plus
// one in the high half, the slot's generation at hand-out in the low half.
// The zero value is the nil reference. A slot's generation is bumped every
// time it is freed, so a ref held across retirement, squash, or an L1-write
// event detects staleness with one compare — replacing the old layout's
// `alive` flag and pointer identity. Because squashes flush a contiguous
// youngest suffix and retirement is in order, a stale ref from a live entry
// always means "that instruction retired (or its store wrote to the L1)",
// never "an unrelated instruction reused the slot under me".
type entryRef uint64

// nilRef is the null entry reference.
const nilRef entryRef = 0

func makeRef(idx int32, gen uint32) entryRef {
	return entryRef(uint64(idx+1)<<32 | uint64(gen))
}

// index returns the arena slot, or -1 for nilRef.
func (r entryRef) index() int32 { return int32(r>>32) - 1 }

// gen returns the generation the ref was minted with.
func (r entryRef) gen() uint32 { return uint32(r) }

// entry is one in-flight instruction: a ROB entry, plus the LQ or SQ/SB
// fields when it is a memory operation. The per-cycle-scanned scalars
// (status, execDone, minRetire, lineAddr, inflight) live in the arena's
// struct-of-arrays siblings, not here.
type entry struct {
	inst     isa.Inst
	traceIdx int    // index in the core's program
	dynSeq   uint64 // per-core dynamic sequence number (re-execution gets a new one)

	// Operand tracking. A nil producer means the value was captured at
	// dispatch time. A stale producer ref means the producer retired; its
	// value is then the architectural register value (in-order retirement
	// guarantees no intervening writer — see Core.operandVal).
	src1Prod entryRef
	src2Prod entryRef
	src1Val  uint64
	src2Val  uint64

	val uint64 // result: load value, ALU result, RMW old value

	// Load fields.
	slf      bool     // performed by store-to-load forwarding
	slfStore entryRef // forwarding store (nilRef if !slf); stale once it wrote to the L1
	// slfStoreSeq snapshots the forwarding store's dynSeq at forwarding
	// time, so the dependence-violation shadow check works after the
	// store's slot is recycled.
	slfStoreSeq uint64
	slfKey      key // copy of the forwarding store's SQ/SB key
	// waitStore, when non-nil, blocks the load until that store drains
	// (370-NoSpec store-atomicity blocking, or a partial-overlap
	// forwarding block). A stale ref means the store wrote: unblocked.
	waitStore entryRef
	// waitAddr, when non-nil, blocks the load until that store's address
	// resolves (StoreSet predicted dependence, or blanket waiting in
	// 370-NoSpec).
	waitAddr entryRef
	// fenceBarrier is the youngest older fence at dispatch time; the load
	// may not issue until it retires (mfence ordering; Louvre issues past
	// it and stays squashable instead). A stale ref is a retired fence:
	// no barrier.
	fenceBarrier entryRef
	// invisible marks a load that performed without touching directory or
	// cache state (370-RCP); it must value-validate at retirement.
	invisible bool

	// gateStalled marks that this load has already been counted as a
	// gate stall (or an SLFSpec retire wait) at the ROB head.
	gateStalled bool
	// noSpecWaited marks that the load was counted as a 370-NoSpec
	// blanket-enforcement wait.
	noSpecWaited bool

	// Branch fields.
	predWrong bool // the front end mispredicted this branch

	// Store fields.
	addrResolved bool // address resolution (and violation check) done
	sqSlot       int  // SQ/SB slot index
	sqKey        key  // slot + sorting bit
	writtenL1    bool // store has written to the L1 (inserted in memory order)
	draining     bool // write request issued to the hierarchy
	// retiredAt is the cycle the store retired into the SB portion of its
	// slot; the SBResidency histogram measures from here to the L1 write.
	retiredAt uint64
}

// isLoad reports whether the entry occupies a load-queue slot.
func (e *entry) isLoad() bool { return e.inst.Op == isa.OpLoad }

// isStore reports whether the entry occupies an SQ/SB slot.
func (e *entry) isStore() bool { return e.inst.Op == isa.OpStore }

// arena is the per-core entry pool: every in-flight instruction occupies one
// slot of the dense ents slice, handed out and reclaimed through a free
// list. Capacity is ROBEntries+SQEntries — the ROB bound plus retired
// stores lingering in the SB — so allocation can never fail. The parallel
// stat/execDone/minRetire/lineAddr/inflight arrays are the struct-of-arrays
// split of the fields the per-cycle scans touch.
type arena struct {
	ents []entry
	gens []uint32
	free []int32

	stat      []status
	execDone  []uint64
	minRetire []uint64
	lineAddr  []uint64
	inflight  []bool
}

func newArena(capacity int) arena {
	a := arena{
		ents:      make([]entry, capacity),
		gens:      make([]uint32, capacity),
		free:      make([]int32, capacity),
		stat:      make([]status, capacity),
		execDone:  make([]uint64, capacity),
		minRetire: make([]uint64, capacity),
		lineAddr:  make([]uint64, capacity),
		inflight:  make([]bool, capacity),
	}
	// Stack the free list so the first allocations come out in ascending
	// slot order (pure locality; slot choice is never observable).
	for i := range a.free {
		a.free[i] = int32(capacity - 1 - i)
	}
	return a
}

// alloc hands out a zeroed slot.
func (a *arena) alloc() int32 {
	n := len(a.free)
	if n == 0 {
		panic("core: entry arena exhausted")
	}
	i := a.free[n-1]
	a.free = a.free[:n-1]
	a.ents[i] = entry{}
	a.stat[i] = stDispatched
	a.execDone[i] = 0
	a.minRetire[i] = 0
	a.lineAddr[i] = 0
	a.inflight[i] = false
	return i
}

// release reclaims a slot, invalidating every outstanding ref to it.
func (a *arena) release(i int32) {
	a.gens[i]++
	a.free = append(a.free, i)
}

// refOf mints the current-generation ref for slot i.
func (a *arena) refOf(i int32) entryRef { return makeRef(i, a.gens[i]) }

// live reports whether r still names its original entry.
func (a *arena) live(r entryRef) bool {
	i := r.index()
	return i >= 0 && a.gens[i] == r.gen()
}

// addrKnown reports whether the memory address is resolved. Addresses come
// from the trace but become known only when the address-dependency register
// (Src2) is available, modelling address generation. A stale producer
// retired, so the address is known.
func (a *arena) addrKnown(e *entry) bool {
	p := e.src2Prod
	if e.inst.Src2 == isa.RegNone || p == nilRef {
		return true
	}
	if i := p.index(); a.gens[i] == p.gen() {
		return a.stat[i] >= stDone
	}
	return true
}

// dataKnown reports whether a store's data operand is available.
func (a *arena) dataKnown(e *entry) bool {
	p := e.src1Prod
	if e.inst.Src1 == isa.RegNone || p == nilRef {
		return true
	}
	if i := p.index(); a.gens[i] == p.gen() {
		return a.stat[i] >= stDone
	}
	return true
}

// overlaps reports whether two memory operations touch overlapping bytes.
func overlaps(a, b *entry) bool {
	as, ae := a.inst.Addr, a.inst.Addr+uint64(a.inst.EffSize())
	bs, be := b.inst.Addr, b.inst.Addr+uint64(b.inst.EffSize())
	return as < be && bs < ae
}

// contains reports whether store s fully covers load l's bytes, the
// condition for store-to-load forwarding.
func contains(s, l *entry) bool {
	return s.inst.Addr <= l.inst.Addr &&
		s.inst.Addr+uint64(s.inst.EffSize()) >= l.inst.Addr+uint64(l.inst.EffSize())
}

// forwardBytes extracts a load's bytes from a containing store's data
// value: data is the store's value at sAddr, and the load reads size bytes
// at lAddr.
func forwardBytes(data uint64, sAddr, lAddr uint64, size uint8) uint64 {
	v := data >> ((lAddr - sAddr) * 8)
	if size >= 8 {
		return v
	}
	return v & ((1 << (uint64(size) * 8)) - 1)
}
