// Package core implements the Skylake-like out-of-order core of Table III
// and the paper's primary contribution: speculative enforcement of store
// atomicity through SLF loads, SA-speculative loads and the retire gate
// (Section IV).
//
// The core is trace driven. Every cycle it retires up to Width instructions
// (subject to the consistency-model policy and the retire gate), drains the
// store buffer, issues ready instructions, and dispatches up to Width new
// instructions from the trace into the ROB/LQ/SQ. Invalidation and eviction
// messages from the memory hierarchy snoop the load queue and squash
// performed speculative loads, exactly the squash-and-reexecute discipline
// the paper builds on.
package core

import (
	"sesa/internal/isa"
)

// status tracks an entry's progress through the pipeline.
type status uint8

const (
	// stDispatched: in the ROB, waiting for operands.
	stDispatched status = iota
	// stIssued: executing (ALU latency, memory access in flight, or
	// waiting on a store-forwarding condition).
	stIssued
	// stDone: result available (loads: performed; stores: address and
	// data ready; branches: resolved).
	stDone
	// stRetired: left the ROB. Only stores linger afterwards, in the SB
	// portion of their SQ/SB slot, until they write to the L1.
	stRetired
)

// entry is one in-flight instruction: a ROB entry, plus the LQ or SQ/SB
// fields when it is a memory operation.
type entry struct {
	inst     isa.Inst
	traceIdx int    // index in the core's program
	dynSeq   uint64 // per-core dynamic sequence number (re-execution gets a new one)
	status   status
	alive    bool // false once squashed; stale memory callbacks check this

	// Operand tracking. A nil producer means the value was captured at
	// dispatch time.
	src1Prod *entry
	src2Prod *entry
	src1Val  uint64
	src2Val  uint64

	val      uint64 // result: load value, ALU result, RMW old value
	execDone uint64 // cycle execution completes (valid when status >= stDone)
	// minRetire is the earliest cycle the entry may retire: dispatch
	// cycle plus the pipeline depth.
	minRetire uint64

	// Load fields.
	lineAddr uint64 // cache line of Addr, set at issue
	slf      bool   // performed by store-to-load forwarding
	slfStore *entry // forwarding store (nil if !slf)
	slfKey   key    // copy of the forwarding store's SQ/SB key
	// waitStore, when non-nil, blocks the load until that store drains
	// (370-NoSpec store-atomicity blocking, or a partial-overlap
	// forwarding block).
	waitStore *entry
	// waitAddr, when non-nil, blocks the load until that store's address
	// resolves (StoreSet predicted dependence, or blanket waiting in
	// 370-NoSpec).
	waitAddr *entry
	inflight bool // memory request outstanding
	// fenceBarrier is the youngest older fence at dispatch time; the load
	// may not issue until it retires (mfence ordering).
	fenceBarrier *entry

	// gateStalled marks that this load has already been counted as a
	// gate stall (or an SLFSpec retire wait) at the ROB head.
	gateStalled bool
	// noSpecWaited marks that the load was counted as a 370-NoSpec
	// blanket-enforcement wait.
	noSpecWaited bool

	// Branch fields.
	predWrong bool // the front end mispredicted this branch

	// Store fields.
	addrResolved bool // address resolution (and violation check) done
	sqSlot       int  // SQ/SB slot index
	sqKey        key  // slot + sorting bit
	writtenL1    bool // store has written to the L1 (inserted in memory order)
	draining     bool // write request issued to the hierarchy
	// retiredAt is the cycle the store retired into the SB portion of its
	// slot; the SBResidency histogram measures from here to the L1 write.
	retiredAt uint64
}

// isLoad reports whether the entry occupies a load-queue slot.
func (e *entry) isLoad() bool { return e.inst.Op == isa.OpLoad }

// isStore reports whether the entry occupies an SQ/SB slot.
func (e *entry) isStore() bool { return e.inst.Op == isa.OpStore }

// addrKnown reports whether the memory address is resolved. Addresses come
// from the trace but become known only when the address-dependency register
// (Src2) is available, modelling address generation.
func (e *entry) addrKnown() bool {
	return e.inst.Src2 == isa.RegNone || e.src2Prod == nil || e.src2Prod.status >= stDone
}

// dataKnown reports whether a store's data operand is available.
func (e *entry) dataKnown() bool {
	return e.inst.Src1 == isa.RegNone || e.src1Prod == nil || e.src1Prod.status >= stDone
}

// storeData returns the store's data value; call only when dataKnown.
func (e *entry) storeData() uint64 {
	if e.inst.Src1 == isa.RegNone {
		return e.inst.Imm
	}
	if e.src1Prod != nil {
		return e.src1Prod.val
	}
	return e.src1Val
}

// overlaps reports whether two memory operations touch overlapping bytes.
func overlaps(a, b *entry) bool {
	as, ae := a.inst.Addr, a.inst.Addr+uint64(a.inst.EffSize())
	bs, be := b.inst.Addr, b.inst.Addr+uint64(b.inst.EffSize())
	return as < be && bs < ae
}

// contains reports whether store s fully covers load l's bytes, the
// condition for store-to-load forwarding.
func contains(s, l *entry) bool {
	return s.inst.Addr <= l.inst.Addr &&
		s.inst.Addr+uint64(s.inst.EffSize()) >= l.inst.Addr+uint64(l.inst.EffSize())
}

// forwardValue extracts the load's bytes from the store's data; call only
// when contains(s, l).
func forwardValue(s, l *entry) uint64 {
	shift := (l.inst.Addr - s.inst.Addr) * 8
	v := s.storeData() >> shift
	size := l.inst.EffSize()
	if size >= 8 {
		return v
	}
	return v & ((1 << (uint64(size) * 8)) - 1)
}
