package core

// storeQueue is the combined store queue + store buffer: a single circular
// structure where the retired/non-retired division is implicit in each
// entry's status (Section II-A). A store occupies its slot from dispatch
// until its L1 write completes; the sorting bit per slot flips on
// wrap-around so that a (slot, sorting-bit) key uniquely names a live store.
//
// Occupancy changes only at dispatch (alloc), squash (rollback) — both
// progress in the owning tick — or a store's L1-write event callback
// (free). Predicates like anyOlderUnwritten are therefore constant across
// a skipped quiescent range, which the two-level clock depends on.
type storeQueue struct {
	slots []*entry
	sort  []bool
	head  int // oldest occupied slot
	tail  int // next free slot
	count int
}

func newStoreQueue(capacity int) *storeQueue {
	return &storeQueue{
		slots: make([]*entry, capacity),
		sort:  make([]bool, capacity),
	}
}

func (q *storeQueue) full() bool  { return q.count == len(q.slots) }
func (q *storeQueue) empty() bool { return q.count == 0 }

// alloc assigns the next slot to store e and stamps its key.
func (q *storeQueue) alloc(e *entry) {
	if q.full() {
		panic("core: store queue overflow")
	}
	e.sqSlot = q.tail
	e.sqKey = key{slot: q.tail, sort: q.sort[q.tail]}
	q.slots[q.tail] = e
	q.tail = (q.tail + 1) % len(q.slots)
	q.count++
}

// oldest returns the store at the head of the queue, or nil.
func (q *storeQueue) oldest() *entry {
	if q.count == 0 {
		return nil
	}
	return q.slots[q.head]
}

// free releases the head slot after its store's L1 write, flipping the
// sorting bit for the slot's next occupant.
func (q *storeQueue) free(e *entry) {
	if q.slots[q.head] != e {
		panic("core: store buffer freed out of order")
	}
	q.slots[q.head] = nil
	q.sort[q.head] = !q.sort[q.head]
	q.head = (q.head + 1) % len(q.slots)
	q.count--
}

// rollback removes a squashed, non-retired store. Squashes flush a
// contiguous youngest suffix of the ROB, so the store must be the youngest
// allocation.
func (q *storeQueue) rollback(e *entry) {
	prev := (q.tail - 1 + len(q.slots)) % len(q.slots)
	if q.slots[prev] != e {
		panic("core: store queue rollback out of order")
	}
	q.slots[prev] = nil
	q.tail = prev
	q.count--
}

// present reports whether the store named by k is still in the SQ/SB; this
// is the direct-slot sorting-bit check the retiring SLF load performs
// (Section IV-B2).
func (q *storeQueue) present(k key) bool {
	e := q.slots[k.slot]
	return e != nil && e.sqKey == k
}

// anyOlderUnwritten reports whether any store older than dynSeq has not yet
// written to the L1. Fences and the 370-SLFSpec retire rule use it.
func (q *storeQueue) anyOlderUnwritten(dynSeq uint64) bool {
	for i, n := q.head, q.count; n > 0; i, n = (i+1)%len(q.slots), n-1 {
		e := q.slots[i]
		if e != nil && e.dynSeq < dynSeq && !e.writtenL1 {
			return true
		}
	}
	return false
}

// anyRetiredUnwritten reports whether the store-buffer portion is non-empty:
// a retired store that has not yet written to the L1.
func (q *storeQueue) anyRetiredUnwritten() bool {
	for i, n := q.head, q.count; n > 0; i, n = (i+1)%len(q.slots), n-1 {
		e := q.slots[i]
		if e != nil && e.status == stRetired && !e.writtenL1 {
			return true
		}
	}
	return false
}

// youngestOlderMatch returns the youngest store older than the load that
// overlaps it, and separately the youngest older store whose address is
// still unknown. Either may be nil. The search walks from the youngest
// allocation backwards, which is the SQ/SB snoop every load already does in
// a conventional core — the snoop our mechanism reuses to copy the key.
func (q *storeQueue) youngestOlderMatch(l *entry) (match, unknown *entry) {
	i := (q.tail - 1 + len(q.slots)) % len(q.slots)
	for n := q.count; n > 0; n-- {
		e := q.slots[i]
		if e != nil && e.dynSeq < l.dynSeq {
			if !e.addrKnown() {
				if unknown == nil {
					unknown = e
				}
			} else if overlaps(e, l) {
				match = e
				return
			}
		}
		i = (i - 1 + len(q.slots)) % len(q.slots)
	}
	return
}

// forEach calls fn on every store from oldest to youngest.
func (q *storeQueue) forEach(fn func(*entry)) {
	for i, n := q.head, q.count; n > 0; i, n = (i+1)%len(q.slots), n-1 {
		if e := q.slots[i]; e != nil {
			fn(e)
		}
	}
}
