package core

// storeQueue is the combined store queue + store buffer: a single circular
// structure where the retired/non-retired division is implicit in each
// entry's status (Section II-A). A store occupies its slot from dispatch
// until its L1 write completes; the sorting bit per slot flips on
// wrap-around so that a (slot, sorting-bit) key uniquely names a live store.
//
// Slots hold arena refs; every occupied slot is live by construction (the
// queue releases a slot before the arena recycles the entry), so lookups
// index the arena directly.
//
// Occupancy changes only at dispatch (alloc), squash (rollback) — both
// progress in the owning tick — or a store's L1-write event callback
// (free). Predicates like anyOlderUnwritten are therefore constant across
// a skipped quiescent range, which the two-level clock depends on.
type storeQueue struct {
	slots []entryRef
	sort  []bool
	head  int // oldest occupied slot
	tail  int // next free slot
	count int
}

func newStoreQueue(capacity int) storeQueue {
	return storeQueue{
		slots: make([]entryRef, capacity),
		sort:  make([]bool, capacity),
	}
}

func (q *storeQueue) full() bool  { return q.count == len(q.slots) }
func (q *storeQueue) empty() bool { return q.count == 0 }

// alloc assigns the next slot to store e and stamps its key.
func (q *storeQueue) alloc(r entryRef, e *entry) {
	if q.full() {
		panic("core: store queue overflow")
	}
	e.sqSlot = q.tail
	e.sqKey = key{slot: q.tail, sort: q.sort[q.tail]}
	q.slots[q.tail] = r
	q.tail = (q.tail + 1) % len(q.slots)
	q.count++
}

// oldest returns the store ref at the head of the queue, or nilRef.
func (q *storeQueue) oldest() entryRef {
	if q.count == 0 {
		return nilRef
	}
	return q.slots[q.head]
}

// free releases the head slot after its store's L1 write, flipping the
// sorting bit for the slot's next occupant.
func (q *storeQueue) free(r entryRef) {
	if q.slots[q.head] != r {
		panic("core: store buffer freed out of order")
	}
	q.slots[q.head] = nilRef
	q.sort[q.head] = !q.sort[q.head]
	q.head = (q.head + 1) % len(q.slots)
	q.count--
}

// rollback removes a squashed, non-retired store. Squashes flush a
// contiguous youngest suffix of the ROB, so the store must be the youngest
// allocation.
func (q *storeQueue) rollback(r entryRef) {
	prev := (q.tail - 1 + len(q.slots)) % len(q.slots)
	if q.slots[prev] != r {
		panic("core: store queue rollback out of order")
	}
	q.slots[prev] = nilRef
	q.tail = prev
	q.count--
}

// present reports whether the store named by k is still in the SQ/SB; this
// is the direct-slot sorting-bit check the retiring SLF load performs
// (Section IV-B2).
func (q *storeQueue) present(a *arena, k key) bool {
	r := q.slots[k.slot]
	return r != nilRef && a.ents[r.index()].sqKey == k
}

// anyOlderUnwritten reports whether any store older than dynSeq has not yet
// written to the L1. Fences and the 370-SLFSpec retire rule use it. An
// in-queue store has by definition not written (its slot is freed at the
// write), so only the age check matters.
func (q *storeQueue) anyOlderUnwritten(a *arena, dynSeq uint64) bool {
	for i, n := q.head, q.count; n > 0; i, n = (i+1)%len(q.slots), n-1 {
		if r := q.slots[i]; r != nilRef && a.ents[r.index()].dynSeq < dynSeq {
			return true
		}
	}
	return false
}

// anyRetiredUnwritten reports whether the store-buffer portion is non-empty:
// a retired store that has not yet written to the L1.
func (q *storeQueue) anyRetiredUnwritten(a *arena) bool {
	for i, n := q.head, q.count; n > 0; i, n = (i+1)%len(q.slots), n-1 {
		if r := q.slots[i]; r != nilRef && a.stat[r.index()] == stRetired {
			return true
		}
	}
	return false
}

// youngestOlderMatch returns the youngest store older than the load that
// overlaps it, and separately the youngest older store whose address is
// still unknown. Either may be -1. The search walks from the youngest
// allocation backwards, which is the SQ/SB snoop every load already does in
// a conventional core — the snoop our mechanism reuses to copy the key.
func (q *storeQueue) youngestOlderMatch(a *arena, l *entry) (match, unknown int32) {
	match, unknown = -1, -1
	i := (q.tail - 1 + len(q.slots)) % len(q.slots)
	for n := q.count; n > 0; n-- {
		if r := q.slots[i]; r != nilRef {
			idx := r.index()
			e := &a.ents[idx]
			if e.dynSeq < l.dynSeq {
				if !a.addrKnown(e) {
					if unknown < 0 {
						unknown = idx
					}
				} else if overlaps(e, l) {
					match = idx
					return
				}
			}
		}
		i = (i - 1 + len(q.slots)) % len(q.slots)
	}
	return
}
