package obs

// CoreSnapshot is the cumulative per-core state the sampler reads at an
// interval boundary. The simulator fills it from the core's counters; the
// Metrics series differences consecutive snapshots into interval rates.
type CoreSnapshot struct {
	// Retired is the cumulative retired-instruction count.
	Retired uint64
	// Squashes is the cumulative squash count (invalidation/eviction plus
	// memory-dependence squashes).
	Squashes uint64
	// GateClosedCycles is the cumulative count of cycles the retire gate
	// was closed.
	GateClosedCycles uint64
	// ROBOcc, LQOcc and SBOcc are the instantaneous structure occupancies.
	ROBOcc, LQOcc, SBOcc int
}

// Sample is one interval-metrics row: core activity over (Cycle-Span,
// Cycle].
type Sample struct {
	// Cycle is the interval's end cycle.
	Cycle uint64 `json:"cycle"`
	// Span is the interval length in cycles (the final sample of a run may
	// be shorter than the configured interval).
	Span uint64 `json:"span"`
	// Core identifies the sampled core.
	Core int `json:"core"`
	// IPC is retired instructions per cycle over the interval.
	IPC float64 `json:"ipc"`
	// ROBOcc, LQOcc and SBOcc are the occupancies at the interval boundary.
	ROBOcc int `json:"rob_occ"`
	LQOcc  int `json:"lq_occ"`
	SBOcc  int `json:"sb_occ"`
	// GateClosedFrac is the fraction of the interval's cycles the retire
	// gate was closed.
	GateClosedFrac float64 `json:"gate_closed_frac"`
	// Squashes counts pipeline flushes during the interval.
	Squashes uint64 `json:"squashes"`
}

// Metrics accumulates the interval time series for one machine.
type Metrics struct {
	// Interval is the configured sampling period in cycles.
	Interval uint64
	// Samples holds the series in (cycle, core) order.
	Samples []Sample

	lastCycle uint64
	last      []CoreSnapshot
}

func newMetrics(cores int, interval uint64) *Metrics {
	return &Metrics{Interval: interval, last: make([]CoreSnapshot, cores)}
}

// Sample records one interval boundary at the given cycle. snaps must have
// one entry per core. Boundaries with an empty span (e.g. a final flush at
// an exact interval multiple) are ignored.
func (m *Metrics) Sample(cycle uint64, snaps []CoreSnapshot) {
	span := cycle - m.lastCycle
	if span == 0 {
		return
	}
	for core, s := range snaps {
		prev := m.last[core]
		m.Samples = append(m.Samples, Sample{
			Cycle:          cycle,
			Span:           span,
			Core:           core,
			IPC:            float64(s.Retired-prev.Retired) / float64(span),
			ROBOcc:         s.ROBOcc,
			LQOcc:          s.LQOcc,
			SBOcc:          s.SBOcc,
			GateClosedFrac: float64(s.GateClosedCycles-prev.GateClosedCycles) / float64(span),
			Squashes:       s.Squashes - prev.Squashes,
		})
		m.last[core] = s
	}
	m.lastCycle = cycle
}
