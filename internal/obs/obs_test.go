package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sesa/internal/isa"
)

func TestEncodeDecodeKey(t *testing.T) {
	for _, slot := range []int{0, 1, 7, 55} {
		for _, sort := range []bool{false, true} {
			k := EncodeKey(slot, sort)
			if k == KeyNone {
				t.Fatalf("EncodeKey(%d,%v) collides with KeyNone", slot, sort)
			}
			gs, gb := DecodeKey(k)
			if gs != slot || gb != sort {
				t.Errorf("roundtrip(%d,%v) = (%d,%v)", slot, sort, gs, gb)
			}
		}
	}
}

func TestKindAndCauseNames(t *testing.T) {
	for k := KDispatch; k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	for _, c := range []Cause{CauseNone, CauseSA, CauseMSpec, CauseStoreSet, CauseInval, CauseEvict} {
		if s := c.String(); s == "" || strings.HasPrefix(s, "cause(") {
			t.Errorf("cause %d has no name", c)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestRingWrap(t *testing.T) {
	tr := NewCoreTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Event{Cycle: uint64(i), Kind: KRetire, Seq: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The two oldest were overwritten; order stays chronological.
	for i, ev := range evs {
		if want := uint64(i + 2); ev.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	// Counts survive the wrap: all 6 retires are tallied.
	if got := tr.Count(KRetire); got != 6 {
		t.Errorf("Count(KRetire) = %d, want 6", got)
	}
}

func TestNilCoreTracer(t *testing.T) {
	if NewCoreTracer(0) != nil {
		t.Error("NewCoreTracer(0) should be nil")
	}
	var tr *CoreTracer
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Count(KRetire) != 0 {
		t.Error("nil tracer accessors should return zero values")
	}
}

func TestDisabledTracer(t *testing.T) {
	var tr *Tracer
	if tr.MetricsInterval() != 0 {
		t.Error("nil tracer MetricsInterval should be 0")
	}
	if tr.Metrics() != nil {
		t.Error("nil tracer Metrics should be nil")
	}
	tr = New(2, Options{}) // events and metrics both off
	if tr.Core(0) != nil || tr.Core(1) != nil {
		t.Error("Core should be nil when BufCap is 0")
	}
	if tr.Metrics() != nil {
		t.Error("Metrics should be nil when the interval is 0")
	}
}

func TestMetricsDeltas(t *testing.T) {
	m := newMetrics(1, 100)
	m.Sample(100, []CoreSnapshot{{Retired: 150, Squashes: 2, GateClosedCycles: 25, ROBOcc: 10, LQOcc: 4, SBOcc: 3}})
	m.Sample(100, []CoreSnapshot{{Retired: 150}}) // zero span: ignored
	m.Sample(160, []CoreSnapshot{{Retired: 180, Squashes: 2, GateClosedCycles: 40, ROBOcc: 7, LQOcc: 2, SBOcc: 1}})
	if len(m.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(m.Samples))
	}
	s0, s1 := m.Samples[0], m.Samples[1]
	if s0.Cycle != 100 || s0.Span != 100 || s0.IPC != 1.5 || s0.GateClosedFrac != 0.25 || s0.Squashes != 2 {
		t.Errorf("sample 0 = %+v", s0)
	}
	if s1.Cycle != 160 || s1.Span != 60 || s1.IPC != 0.5 || s1.GateClosedFrac != 0.25 || s1.Squashes != 0 {
		t.Errorf("sample 1 = %+v", s1)
	}
	if s1.ROBOcc != 7 || s1.LQOcc != 2 || s1.SBOcc != 1 {
		t.Errorf("sample 1 occupancies = %+v", s1)
	}
}

// synthTracer records a tiny two-instruction run with an SLF load, a gate
// close/reopen pair, a squash and a snoop — every exporter code path.
func synthTracer() *Tracer {
	tr := New(1, Options{BufCap: 64})
	c := tr.Core(0)
	c.Record(Event{Cycle: 0, Kind: KDispatch, Op: isa.OpStore, Seq: 0, TraceIdx: 0, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 1, Kind: KDispatch, Op: isa.OpLoad, Seq: 1, TraceIdx: 1, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 2, Kind: KIssue, Op: isa.OpStore, Seq: 0, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 2, Kind: KPerform, Op: isa.OpStore, Seq: 0, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 3, Kind: KIssue, Op: isa.OpLoad, Seq: 1, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 3, Kind: KSLFHit, Op: isa.OpLoad, Seq: 1, Key: EncodeKey(0, false), Addr: 0x100})
	c.Record(Event{Cycle: 4, Kind: KPerform, Op: isa.OpLoad, Seq: 1, Key: KeyNone, Addr: 0x100, N: 7})
	c.Record(Event{Cycle: 5, Kind: KRetire, Op: isa.OpStore, Seq: 0, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 6, Kind: KRetire, Op: isa.OpLoad, Seq: 1, Key: KeyNone, Addr: 0x100})
	c.Record(Event{Cycle: 6, Kind: KGateClose, Op: isa.OpLoad, Seq: 1, Key: EncodeKey(0, false), Addr: 0x100})
	c.Record(Event{Cycle: 7, Kind: KSnoop, Cause: CauseInval, Key: KeyNone, Addr: 0x140})
	c.Record(Event{Cycle: 8, Kind: KDispatch, Op: isa.OpALU, Seq: 2, TraceIdx: 2, Key: KeyNone})
	c.Record(Event{Cycle: 9, Kind: KSquash, Cause: CauseSA, Op: isa.OpALU, Seq: 2, TraceIdx: 2, Key: KeyNone, Addr: 0x140, N: 1})
	c.Record(Event{Cycle: 9, Kind: KFlush, Cause: CauseSA, Op: isa.OpALU, Seq: 2, TraceIdx: 2, Key: KeyNone})
	c.Record(Event{Cycle: 10, Kind: KSBInsert, Op: isa.OpStore, Seq: 0, Key: EncodeKey(0, false), Addr: 0x100})
	c.Record(Event{Cycle: 10, Kind: KGateReopen, Op: isa.OpStore, Seq: 0, Key: EncodeKey(0, false), Addr: 0x100})
	return tr
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	runs := []Run{{Name: "synth/test", Tracer: synthTracer()}}
	if err := WriteChrome(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var begins, ends, completes, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		case "X":
			completes++
		case "i":
			instants++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("gate B/E = %d/%d, want 1/1", begins, ends)
	}
	// Three instructions: two retired, one squashed.
	if completes != 3 {
		t.Errorf("complete events = %d, want 3", completes)
	}
	// SLF hit, snoop, squash, SB insert.
	if instants != 4 {
		t.Errorf("instant events = %d, want 4", instants)
	}
	if !strings.Contains(buf.String(), "(SLF)") {
		t.Error("SLF load should be labelled in its complete event")
	}
}

func TestWriteKanata(t *testing.T) {
	var buf bytes.Buffer
	runs := []Run{{Name: "synth/test", Tracer: synthTracer()}}
	if err := WriteKanata(&buf, runs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Kanata\t0004\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var retires, flushes, inits int
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "I\t"):
			inits++
		case strings.HasPrefix(l, "R\t"):
			if strings.HasSuffix(l, "\t1") {
				flushes++
			} else {
				retires++
			}
		}
	}
	if inits != 3 {
		t.Errorf("I records = %d, want 3", inits)
	}
	if retires != 2 || flushes != 1 {
		t.Errorf("retire/flush records = %d/%d, want 2/1", retires, flushes)
	}
	if !strings.Contains(out, "#\tgate close tid=0") || !strings.Contains(out, "#\tgate reopen tid=0") {
		t.Error("gate transition comments missing")
	}
}

// TestExportDeterminism: exporting the same recorded state twice is
// byte-identical — the property the CLI relies on for -jobs invariance.
func TestExportDeterminism(t *testing.T) {
	runs := []Run{{Name: "a", Tracer: synthTracer()}, {Name: "b", Tracer: synthTracer()}}
	var c1, c2, k1, k2 bytes.Buffer
	if err := WriteChrome(&c1, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&c2, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteKanata(&k1, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteKanata(&k2, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("chrome export is not deterministic")
	}
	if !bytes.Equal(k1.Bytes(), k2.Bytes()) {
		t.Error("kanata export is not deterministic")
	}
}
