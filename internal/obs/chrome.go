package obs

import (
	"bufio"
	"fmt"
	"io"

	"sesa/internal/isa"
)

// WriteChrome renders the runs as a Chrome trace-event JSON document,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Layout: each run is one process (pid = run index, named after the run);
// each core contributes two threads — an instruction track (tid 2*core)
// carrying one complete event per instruction lifetime plus instant events
// for SLF hits, squashes, SB insertions and snoops, and a gate track
// (tid 2*core+1) carrying one begin/end pair per retire-gate closed window.
// One simulated cycle maps to one microsecond of trace time.
//
// The output is deterministic: events are emitted in recording order with
// hand-built JSON, so a fixed seed produces byte-identical files no matter
// how many sweep workers ran the simulation.
func WriteChrome(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for pid, run := range runs {
		cw.meta(pid, -1, "process_name", run.Name)
		for c := 0; c < run.Tracer.Cores(); c++ {
			cw.meta(pid, 2*c, "thread_name", fmt.Sprintf("core %d", c))
			cw.meta(pid, 2*c+1, "thread_name", fmt.Sprintf("core %d gate", c))
		}
		for c := 0; c < run.Tracer.Cores(); c++ {
			cw.core(pid, c, run.Tracer.Core(c))
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// chromeWriter hand-builds the trace-event array (no maps anywhere, so
// field order is fixed and output is reproducible byte for byte).
type chromeWriter struct {
	w       *bufio.Writer
	started bool
	err     error
}

// sep writes the separating comma before every event but the first.
func (cw *chromeWriter) sep() {
	if cw.started {
		fmt.Fprintf(cw.w, ",\n")
	}
	cw.started = true
}

func (cw *chromeWriter) meta(pid, tid int, kind, name string) {
	cw.sep()
	if tid < 0 {
		fmt.Fprintf(cw.w, "{\"ph\":\"M\",\"pid\":%d,\"name\":%q,\"args\":{\"name\":%q}}", pid, kind, name)
		return
	}
	fmt.Fprintf(cw.w, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%q}}", pid, tid, kind, name)
}

// span tracks one in-flight instruction between its dispatch and its
// retire/flush event.
type span struct {
	seq      uint64
	op       isa.Op
	addr     uint64
	traceIdx int32
	dispatch uint64
	issue    uint64
	perform  uint64
	slf      bool
}

// instLabel renders the span's display name.
func (s *span) instLabel() string {
	if s.op.IsMem() {
		return fmt.Sprintf("%s [%#x]", s.op, s.addr)
	}
	return s.op.String()
}

// core emits one core's events onto its two tracks.
func (cw *chromeWriter) core(pid, coreID int, t *CoreTracer) {
	events := t.Events()
	tid := 2 * coreID
	gateTid := tid + 1
	// Open spans by dynamic sequence number. Squashes keep the map small;
	// a leftover span at the end of the record is an instruction still in
	// flight when the run was cut off.
	open := make(map[uint64]*span)
	order := []uint64{} // dispatch order, for deterministic leftover emission
	var last uint64
	for i := range events {
		ev := &events[i]
		last = ev.Cycle
		switch ev.Kind {
		case KDispatch:
			s := &span{seq: ev.Seq, op: ev.Op, addr: ev.Addr, traceIdx: ev.TraceIdx, dispatch: ev.Cycle}
			open[ev.Seq] = s
			order = append(order, ev.Seq)
		case KIssue:
			if s := open[ev.Seq]; s != nil {
				s.issue = ev.Cycle
			}
		case KPerform:
			if s := open[ev.Seq]; s != nil {
				s.perform = ev.Cycle
			}
		case KRetire:
			if s := open[ev.Seq]; s != nil {
				cw.inst(pid, tid, s, "inst", ev.Cycle)
				delete(open, ev.Seq)
			}
		case KFlush:
			if s := open[ev.Seq]; s != nil {
				cw.inst(pid, tid, s, "squashed", ev.Cycle)
				delete(open, ev.Seq)
			}
		case KSLFHit:
			if s := open[ev.Seq]; s != nil {
				s.slf = true
			}
			cw.instant(pid, tid, fmt.Sprintf("SLF hit [%#x]", ev.Addr), ev.Cycle,
				fmt.Sprintf("{\"seq\":%d,\"key\":%d}", ev.Seq, ev.Key))
		case KGateClose:
			cw.sep()
			fmt.Fprintf(cw.w, "{\"name\":\"gate closed\",\"cat\":\"gate\",\"ph\":\"B\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"key\":%d}}",
				ev.Cycle, pid, gateTid, ev.Key)
		case KGateReopen:
			cw.sep()
			fmt.Fprintf(cw.w, "{\"name\":\"gate closed\",\"cat\":\"gate\",\"ph\":\"E\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"key\":%d}}",
				ev.Cycle, pid, gateTid, ev.Key)
		case KSquash:
			cw.instant(pid, tid, fmt.Sprintf("squash (%s)", ev.Cause), ev.Cycle,
				fmt.Sprintf("{\"line\":\"%#x\",\"flushed\":%d,\"from_idx\":%d}", ev.Addr, ev.N, ev.TraceIdx))
		case KSBInsert:
			cw.instant(pid, tid, fmt.Sprintf("SB insert [%#x]", ev.Addr), ev.Cycle,
				fmt.Sprintf("{\"seq\":%d,\"key\":%d}", ev.Seq, ev.Key))
		case KSnoop:
			cw.instant(pid, tid, fmt.Sprintf("snoop %s [%#x]", ev.Cause, ev.Addr), ev.Cycle, "")
		}
	}
	// Instructions still in flight when the record ended.
	for _, seq := range order {
		if s := open[seq]; s != nil {
			cw.inst(pid, tid, s, "inflight", last)
		}
	}
}

// inst emits one instruction-lifetime complete event.
func (cw *chromeWriter) inst(pid, tid int, s *span, cat string, end uint64) {
	cw.sep()
	name := s.instLabel()
	if s.slf {
		name += " (SLF)"
	}
	fmt.Fprintf(cw.w, "{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"seq\":%d,\"idx\":%d,\"issue\":%d,\"perform\":%d}}",
		name, cat, s.dispatch, end-s.dispatch, pid, tid, s.seq, s.traceIdx, s.issue, s.perform)
}

// instant emits one thread-scoped instant event; args is a pre-rendered
// JSON object or "".
func (cw *chromeWriter) instant(pid, tid int, name string, ts uint64, args string) {
	cw.sep()
	if args == "" {
		fmt.Fprintf(cw.w, "{\"name\":%q,\"cat\":\"mem\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d}",
			name, ts, pid, tid)
		return
	}
	fmt.Fprintf(cw.w, "{\"name\":%q,\"cat\":\"mem\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":%s}",
		name, ts, pid, tid, args)
}
