package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// kanata stage names for the default lane: dispatch wait, execute, complete
// wait (performed, waiting to retire).
const (
	stageDispatch = "Dp"
	stageIssue    = "Is"
	stageCommit   = "Cm"
)

// WriteKanata renders the runs as a Kanata 0004 pipeline-viewer log (the
// Onikiri2/Konata format). Every instruction appears as one row with Dp
// (dispatched, waiting to issue), Is (executing) and Cm (performed, waiting
// to retire) stages; retirement emits an R record and squashes emit a flush
// R record. Thread ids enumerate (run, core) pairs in order.
//
// Like WriteChrome, the output depends only on the recorded events, so it
// is byte-identical across sweep worker counts.
func WriteKanata(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Kanata\t0004\n")

	// Merge every (run, core) stream into one cycle-ordered record. The
	// per-core streams are already cycle-ordered, so a stable sort by
	// cycle keeps the (run, core) interleave deterministic.
	type tagged struct {
		tid int
		ev  Event
	}
	var all []tagged
	tid := 0
	for _, run := range runs {
		for c := 0; c < run.Tracer.Cores(); c++ {
			for _, ev := range run.Tracer.Core(c).Events() {
				all = append(all, tagged{tid: tid, ev: ev})
			}
			tid++
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ev.Cycle < all[j].ev.Cycle })

	// ids maps (tid, seq) to the Kanata instruction id; stage tracks each
	// id's currently open stage.
	type instKey struct {
		tid int
		seq uint64
	}
	ids := make(map[instKey]int)
	stage := make(map[int]string)
	nextID, retireID := 0, 0

	var cycle uint64
	started := false
	for _, t := range all {
		ev := t.ev
		if !started {
			fmt.Fprintf(bw, "C=\t%d\n", ev.Cycle)
			cycle = ev.Cycle
			started = true
		} else if ev.Cycle > cycle {
			fmt.Fprintf(bw, "C\t%d\n", ev.Cycle-cycle)
			cycle = ev.Cycle
		}
		key := instKey{t.tid, ev.Seq}
		switch ev.Kind {
		case KDispatch:
			id := nextID
			nextID++
			ids[key] = id
			fmt.Fprintf(bw, "I\t%d\t%d\t%d\n", id, ev.TraceIdx, t.tid)
			label := ev.Op.String()
			if ev.Op.IsMem() {
				label = fmt.Sprintf("%s [%#x]", ev.Op, ev.Addr)
			}
			fmt.Fprintf(bw, "L\t%d\t0\t%s\n", id, label)
			fmt.Fprintf(bw, "S\t%d\t0\t%s\n", id, stageDispatch)
			stage[id] = stageDispatch
		case KIssue:
			if id, ok := ids[key]; ok {
				fmt.Fprintf(bw, "E\t%d\t0\t%s\n", id, stage[id])
				fmt.Fprintf(bw, "S\t%d\t0\t%s\n", id, stageIssue)
				stage[id] = stageIssue
			}
		case KPerform:
			if id, ok := ids[key]; ok {
				fmt.Fprintf(bw, "E\t%d\t0\t%s\n", id, stage[id])
				fmt.Fprintf(bw, "S\t%d\t0\t%s\n", id, stageCommit)
				stage[id] = stageCommit
			}
		case KRetire:
			if id, ok := ids[key]; ok {
				fmt.Fprintf(bw, "E\t%d\t0\t%s\n", id, stage[id])
				fmt.Fprintf(bw, "R\t%d\t%d\t0\n", id, retireID)
				retireID++
				delete(ids, key)
				delete(stage, id)
			}
		case KFlush:
			if id, ok := ids[key]; ok {
				fmt.Fprintf(bw, "E\t%d\t0\t%s\n", id, stage[id])
				fmt.Fprintf(bw, "R\t%d\t0\t1\n", id)
				delete(ids, key)
				delete(stage, id)
			}
		case KSLFHit:
			if id, ok := ids[key]; ok {
				fmt.Fprintf(bw, "L\t%d\t1\tSLF hit key=%d\n", id, ev.Key)
			}
		case KGateClose:
			// Gate transitions have no instruction row; record them as
			// comment lines (viewers skip them, diffs and greps keep them).
			fmt.Fprintf(bw, "#\tgate close tid=%d key=%d\n", t.tid, ev.Key)
		case KGateReopen:
			fmt.Fprintf(bw, "#\tgate reopen tid=%d key=%d\n", t.tid, ev.Key)
		}
	}
	return bw.Flush()
}
