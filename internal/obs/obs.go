// Package obs is the simulator's observability layer: a cycle-level,
// per-core pipeline event tracer and an interval-metrics sampler.
//
// The paper's dynamics — the Figure 8 gate close/reopen sequence, the
// x264 contended-sync and 505.mcf eviction-squash pathologies of Table IV —
// are invisible in end-of-run aggregates. The tracer records every typed
// pipeline event (dispatch, issue, perform, retire, SLF hits, gate
// transitions, squashes with cause, store-buffer memory-order insertions,
// invalidation/eviction snoops) with its cycle timestamp into a per-core
// ring buffer, and the exporters render the record as a Chrome trace-event
// JSON file (loadable in Perfetto) or as a Kanata pipeline-viewer log.
//
// The subsystem is designed around a nil-checked sink: a core or hierarchy
// holds a *CoreTracer pointer that is nil when tracing is disabled, so the
// disabled path costs one never-taken branch per hook and allocates
// nothing. Everything recorded is derived from deterministic simulator
// state, so trace output is byte-identical for a fixed seed regardless of
// how many workers ran the sweep.
package obs

import (
	"fmt"

	"sesa/internal/isa"
)

// Kind enumerates the typed pipeline events.
type Kind uint8

// Pipeline event kinds.
const (
	// KDispatch: the instruction entered the ROB (and LQ/SQ).
	KDispatch Kind = iota
	// KIssue: the instruction began execution (or its memory request left
	// for the hierarchy).
	KIssue
	// KPerform: the instruction's result became available — a load
	// performed, an ALU op finished, a store resolved address and data.
	KPerform
	// KRetire: the instruction left the ROB.
	KRetire
	// KFlush: the instruction was squashed out of the ROB before retiring.
	KFlush
	// KSLFHit: an issuing load forwarded from an in-flight store; Key is
	// the forwarding store's SQ/SB key.
	KSLFHit
	// KGateClose: a retiring SLF load closed the retire gate; Key is the
	// gate's lock key (KeyNone for the unkeyed 370-SLFSoS variant).
	KGateClose
	// KGateReopen: the gate reopened — the locking store wrote to the L1,
	// or the store buffer drained (unkeyed variant).
	KGateReopen
	// KSquash: a pipeline flush started at this instruction; Cause
	// attributes it (SA vs M-spec vs StoreSet) and N counts the flushed
	// instructions.
	KSquash
	// KSBInsert: a store left the store buffer — its memory-order
	// insertion (L1 write) completed.
	KSBInsert
	// KSnoop: an invalidation or eviction was delivered to the core's
	// private caches and snooped its load queue; Cause distinguishes
	// CauseInval from CauseEvict.
	KSnoop
	numKinds
)

var kindNames = [...]string{
	KDispatch:   "dispatch",
	KIssue:      "issue",
	KPerform:    "perform",
	KRetire:     "retire",
	KFlush:      "flush",
	KSLFHit:     "slf-hit",
	KGateClose:  "gate-close",
	KGateReopen: "gate-reopen",
	KSquash:     "squash",
	KSBInsert:   "sb-insert",
	KSnoop:      "snoop",
}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Cause attributes squash and snoop events.
type Cause uint8

// Squash and snoop causes.
const (
	CauseNone Cause = iota
	// CauseSA: a store-atomicity misspeculation — the load was
	// SA-speculative when an invalidation or eviction caught it.
	CauseSA
	// CauseMSpec: baseline load-load (in-window) misspeculation.
	CauseMSpec
	// CauseStoreSet: a memory-dependence misspeculation detected at store
	// address resolution.
	CauseStoreSet
	// CauseInval: a remote invalidation (snoop events).
	CauseInval
	// CauseEvict: a local capacity eviction (snoop events).
	CauseEvict
	// CauseValidation: an invisible speculative load (370-RCP) whose
	// retire-time value validation against memory failed.
	CauseValidation
)

var causeNames = [...]string{
	CauseNone:       "none",
	CauseSA:         "SA",
	CauseMSpec:      "M-spec",
	CauseStoreSet:   "StoreSet",
	CauseInval:      "inval",
	CauseEvict:      "evict",
	CauseValidation: "validation",
}

// String names the cause.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// KeyNone marks an event that carries no store key.
const KeyNone int32 = -1

// EncodeKey packs an SQ/SB slot index and its sorting bit into the compact
// key representation events carry (slot<<1 | sort).
func EncodeKey(slot int, sort bool) int32 {
	k := int32(slot) << 1
	if sort {
		k |= 1
	}
	return k
}

// DecodeKey unpacks an encoded store key.
func DecodeKey(k int32) (slot int, sort bool) { return int(k >> 1), k&1 != 0 }

// Event is one recorded pipeline event. Not every field is meaningful for
// every kind; unused fields are zero (Key is KeyNone when absent).
type Event struct {
	// Cycle is the event's timestamp.
	Cycle uint64
	// Kind is the event type.
	Kind Kind
	// Cause attributes squashes and snoops.
	Cause Cause
	// Op is the instruction's micro-op kind (instruction events).
	Op isa.Op
	// Seq is the per-core dynamic sequence number of the instruction
	// (instruction events; re-execution gets a new one).
	Seq uint64
	// TraceIdx is the instruction's index in the core's program.
	TraceIdx int32
	// Key is the encoded SQ/SB store key (KeyNone if absent).
	Key int32
	// Addr is the memory address or cache-line address involved.
	Addr uint64
	// N is a kind-specific payload: flushed instruction count for KSquash,
	// the performed/forwarded value for KPerform.
	N uint64
}

// CoreTracer records one core's events into a bounded ring buffer. It is
// owned by a single machine and is not safe for concurrent use — machines
// are single-threaded and a parallel sweep gives each machine its own
// tracer.
type CoreTracer struct {
	capacity int
	buf      []Event
	start    int // index of the oldest event once the ring wrapped
	dropped  uint64

	// counts tallies recorded events per kind, including any that were
	// later overwritten by ring wrap-around.
	counts [numKinds]uint64
}

// NewCoreTracer returns a tracer with the given ring capacity.
func NewCoreTracer(capacity int) *CoreTracer {
	if capacity <= 0 {
		return nil
	}
	return &CoreTracer{capacity: capacity}
}

// Record appends the event, overwriting the oldest once the ring is full.
// The buffer grows lazily up to its capacity, so small runs stay small.
func (t *CoreTracer) Record(ev Event) {
	t.counts[ev.Kind]++
	if len(t.buf) < t.capacity {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % t.capacity
	t.dropped++
}

// Events returns the retained events in recording order. The returned slice
// is freshly allocated only when the ring has wrapped.
func (t *CoreTracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.start == 0 {
		return t.buf
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.start:]...)
	out = append(out, t.buf[:t.start]...)
	return out
}

// Dropped reports how many events were overwritten by ring wrap-around.
func (t *CoreTracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Count returns the number of events of kind k recorded over the run,
// including any dropped by wrap-around.
func (t *CoreTracer) Count(k Kind) uint64 {
	if t == nil {
		return 0
	}
	return t.counts[k]
}

// DefaultBufCap is the default per-core ring capacity: ample for the smoke
// runs (~5 events per instruction) while bounding a long run's memory.
const DefaultBufCap = 1 << 20

// Options configures a Tracer.
type Options struct {
	// BufCap is the per-core event ring capacity; 0 disables event
	// recording (metrics may still be enabled).
	BufCap int
	// MetricsInterval samples interval metrics every N cycles; 0 disables
	// sampling.
	MetricsInterval uint64
}

// Tracer is the machine-level observability sink: per-core event rings plus
// the interval-metrics series.
type Tracer struct {
	opts    Options
	cores   []*CoreTracer
	metrics *Metrics
}

// New builds a tracer for a machine with the given core count.
func New(cores int, o Options) *Tracer {
	t := &Tracer{opts: o, cores: make([]*CoreTracer, cores)}
	if o.BufCap > 0 {
		for i := range t.cores {
			t.cores[i] = NewCoreTracer(o.BufCap)
		}
	}
	if o.MetricsInterval > 0 {
		t.metrics = newMetrics(cores, o.MetricsInterval)
	}
	return t
}

// Core returns core i's event ring, or nil when event recording is
// disabled — the nil a core stores and checks in its hooks.
func (t *Tracer) Core(i int) *CoreTracer {
	if t == nil || t.cores[i] == nil {
		return nil
	}
	return t.cores[i]
}

// Cores reports the machine's core count.
func (t *Tracer) Cores() int { return len(t.cores) }

// Metrics returns the interval-metrics series, or nil when sampling is
// disabled.
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// MetricsInterval returns the sampling interval in cycles (0 = disabled).
// Safe on a nil receiver, so a machine without a tracer can call it per step.
func (t *Tracer) MetricsInterval() uint64 {
	if t == nil {
		return 0
	}
	return t.opts.MetricsInterval
}

// Run pairs a tracer with a name for export: one simulated machine
// execution (a benchmark under a model, or one litmus iteration).
type Run struct {
	// Name labels the run in the exported trace (e.g. "x264/370-SLFSoS-key"
	// or "n6+sbp/370-SLFSoS-key#3").
	Name string
	// Tracer holds the run's recorded events and metrics.
	Tracer *Tracer
}
