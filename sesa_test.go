package sesa_test

import (
	"testing"

	"sesa"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := sesa.NewSystem(sesa.SkylakeConfig(1, sesa.SLFSoSKey370), "test")
	if err != nil {
		t.Fatal(err)
	}
	prog := sesa.Program{
		sesa.StoreImm(0x100, 41),
		sesa.Load(1, 0x100),
		sesa.ALUImm(2, 1, 1, 0),
		sesa.StoreReg(0x108, 2),
	}
	if err := sys.LoadProgram(0, prog); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if got := sys.Core(0).RegValue(2); got != 42 {
		t.Errorf("r2 = %d, want 42", got)
	}
	if got := sys.ReadMemory(0x108); got != 42 {
		t.Errorf("[0x108] = %d, want 42", got)
	}
	if st := sys.Stats().Total(); st.SLFLoads != 1 {
		t.Errorf("SLF loads = %d, want 1", st.SLFLoads)
	}
	if sys.MemoryStats().StoresCompleted == 0 {
		t.Error("memory stats not wired through")
	}
}

func TestInitMemoryVisible(t *testing.T) {
	sys, err := sesa.NewSystem(sesa.SmallConfig(1, sesa.X86), "init")
	if err != nil {
		t.Fatal(err)
	}
	sys.InitMemory(0x200, 1234)
	if err := sys.LoadProgram(0, sesa.Program{sesa.Load(1, 0x200)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if got := sys.Core(0).RegValue(1); got != 1234 {
		t.Errorf("r1 = %d, want 1234", got)
	}
}

func TestRunBenchmarkAllModels(t *testing.T) {
	for _, model := range sesa.AllModels() {
		ch, st, err := sesa.RunBenchmark("swaptions", model, 3000, 1)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if ch.Instructions == 0 || st.Cycles == 0 {
			t.Errorf("%s: empty run", model)
		}
		if model == sesa.NoSpec370 && ch.ForwardedPct != 0 {
			t.Errorf("370-NoSpec forwarded %.3f%%", ch.ForwardedPct)
		}
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, _, err := sesa.RunBenchmark("nope", sesa.X86, 100, 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestWorkloadAPI(t *testing.T) {
	p, ok := sesa.LookupProfile("barnes")
	if !ok {
		t.Fatal("barnes missing")
	}
	w := sesa.BuildWorkload(p, 4, 500, 9)
	if len(w.Programs) != 4 {
		t.Fatalf("programs = %d", len(w.Programs))
	}
	st, err := sesa.RunWorkload(sesa.X86, sesa.SkylakeConfig(4, sesa.X86), w, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total().RetiredInsts != 2000 {
		t.Errorf("retired %d, want 2000", st.Total().RetiredInsts)
	}
}

func TestWorkloadTooManyPrograms(t *testing.T) {
	p, _ := sesa.LookupProfile("barnes")
	w := sesa.BuildWorkload(p, 4, 100, 9)
	if _, err := sesa.RunWorkload(sesa.X86, sesa.SkylakeConfig(2, sesa.X86), w, 1_000_000); err == nil {
		t.Error("expected an error for more programs than cores")
	}
}

func TestPublicLitmusAPI(t *testing.T) {
	if len(sesa.LitmusTests()) < 9 {
		t.Error("litmus suite incomplete")
	}
	n6, err := sesa.GetLitmus("n6")
	if err != nil {
		t.Fatal(err)
	}
	out := sesa.Enumerate(n6.Prog, sesa.CheckerX86TSO)
	if !out.Contains(n6.Interesting) {
		t.Error("x86 must allow the n6 signature")
	}
	if diff := sesa.CompareModels(n6.Prog, sesa.CheckerX86TSO, sesa.Checker370TSO); len(diff) != 1 {
		t.Errorf("n6 x86-only outcomes = %d, want exactly 1", len(diff))
	}
}

func TestGateStorageBitsPublic(t *testing.T) {
	if got := sesa.GateStorageBits(sesa.DefaultConfig(sesa.SLFSoSKey370)); got != 640 {
		t.Errorf("storage = %d bits, want 640 (Section IV-D)", got)
	}
}

func TestGeoMeanPublic(t *testing.T) {
	if g := sesa.GeoMean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("geomean = %f", g)
	}
	if m := sesa.Mean([]float64{2, 4}); m != 3 {
		t.Errorf("mean = %f", m)
	}
}
