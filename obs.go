package sesa

import (
	"fmt"
	"io"
	"os"
	"strings"

	"sesa/internal/litmus"
	"sesa/internal/obs"
	"sesa/internal/report"
	"sesa/internal/sim"
)

// Tracer is the observability sink of one machine: per-core pipeline event
// rings plus the interval-metrics series.
type Tracer = obs.Tracer

// TraceOptions configures a Tracer (ring capacity, metrics interval).
type TraceOptions = obs.Options

// TraceRun pairs a tracer with a name for export.
type TraceRun = obs.Run

// TraceEvent is one recorded pipeline event.
type TraceEvent = obs.Event

// DefaultTraceBufCap is the default per-core event ring capacity.
const DefaultTraceBufCap = obs.DefaultBufCap

// NewTracer builds a tracer for a machine with the given core count.
func NewTracer(cores int, o TraceOptions) *Tracer { return obs.New(cores, o) }

// WriteChromeTrace renders the runs as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error { return obs.WriteChrome(w, runs) }

// WriteKanataTrace renders the runs as a Kanata pipeline-viewer log.
func WriteKanataTrace(w io.Writer, runs []TraceRun) error { return obs.WriteKanata(w, runs) }

// AttachTracer wires an observability tracer through the system's cores and
// memory hierarchy. Call before Run.
func (s *System) AttachTracer(t *Tracer) { s.m.AttachTracer(t) }

// Tracer returns the system's attached tracer (nil when tracing is off).
func (s *System) Tracer() *Tracer { return s.m.Tracer() }

// SimMachine is the underlying simulator machine, exposed for the
// RunLitmusTraced attach hook.
type SimMachine = sim.Machine

// RunLitmusTraced is RunLitmus with a per-iteration machine hook, used to
// attach tracers to litmus iterations.
func RunLitmusTraced(t LitmusTest, model Model, iters int, seed uint64,
	attach func(iter int, m *sim.Machine)) (*LitmusResult, error) {
	return litmus.RunTraced(t, model, iters, seed, attach)
}

// ValidTraceFormats names the supported -trace-format values.
const ValidTraceFormats = "chrome, kanata"

// WriteTraceFile writes the runs to path as Chrome trace-event JSON
// (format "chrome") or a Kanata pipeline log (format "kanata").
func WriteTraceFile(path, format string, runs []TraceRun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = WriteChromeTrace(f, runs)
	case "kanata":
		err = WriteKanataTrace(f, runs)
	default:
		err = fmt.Errorf("sesa: unknown trace format %q (want %s)", format, ValidTraceFormats)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteMetricsFile writes the runs' interval-metrics series to path — JSON
// when the path ends in .json, CSV otherwise.
func WriteMetricsFile(path string, runs []TraceRun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	series := report.NewMetricsSeries(runs)
	if strings.HasSuffix(path, ".json") {
		err = series.WriteJSON(f)
	} else {
		err = series.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
