// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding result on the
// simulated machine and reports the headline quantities as custom metrics,
// so `go test -bench .` reproduces the whole evaluation at reduced scale
// (cmd/sesa-bench runs the same experiments at arbitrary scale).
package sesa_test

import (
	"fmt"
	"testing"

	"sesa"
)

const (
	benchInsts = 8_000 // instructions per core for the workload benches
	benchSeed  = 42
)

// suiteJobs builds the (profile × model) sweep grid for the suite in
// row-major order.
func suiteJobs(s sesa.Suite, insts int) ([]sesa.Profile, []sesa.SweepJob) {
	profiles := sesa.ParallelProfiles()
	if s == sesa.SequentialSuite {
		profiles = sesa.SequentialProfiles()
	}
	var jobs []sesa.SweepJob
	for _, p := range profiles {
		for _, model := range sesa.AllModels() {
			jobs = append(jobs, sesa.SweepJob{Profile: p, Model: model, InstPerCore: insts, Seed: benchSeed})
		}
	}
	return profiles, jobs
}

// runSuite executes every profile of the suite under all five models — fanned
// across GOMAXPROCS workers over one shared set of cached traces — and
// returns normalized execution times and characterizations per model.
func runSuite(b *testing.B, s sesa.Suite, insts int) (norm map[string][]float64, chars map[string][]sesa.Characterization) {
	b.Helper()
	profiles, jobs := suiteJobs(s, insts)
	results, _ := sesa.RunSweep(jobs, 0)
	norm = make(map[string][]float64)
	chars = make(map[string][]sesa.Characterization)
	models := sesa.AllModels()
	for i := range profiles {
		var base uint64
		for j, model := range models {
			res := results[i*len(models)+j]
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			ch := res.Char
			if model == sesa.X86 {
				base = ch.Cycles
			}
			norm[model.String()] = append(norm[model.String()], float64(ch.Cycles)/float64(base))
			chars[model.String()] = append(chars[model.String()], ch)
		}
	}
	return norm, chars
}

// BenchmarkFig1MP: the mp litmus test (Figure 1). The metric reports
// whether the forbidden outcome was ever witnessed (must stay 0).
func BenchmarkFig1MP(b *testing.B) { litmusBench(b, "mp") }

// BenchmarkFig2N6: the n6 litmus test (Figure 2): witnessed on x86, never
// on the store-atomic machines.
func BenchmarkFig2N6(b *testing.B) { litmusBench(b, "n6") }

// BenchmarkFig3IRIW: independent reads of independent writes (Figure 3).
func BenchmarkFig3IRIW(b *testing.B) { litmusBench(b, "iriw") }

// BenchmarkFig4Outcomes: the four observer outcomes (Figure 4).
func BenchmarkFig4Outcomes(b *testing.B) {
	t, err := sesa.GetLitmus("fig4")
	if err != nil {
		b.Fatal(err)
	}
	var n int
	for i := 0; i < b.N; i++ {
		n = len(sesa.Enumerate(t.Prog, sesa.CheckerX86TSO))
	}
	b.ReportMetric(float64(n), "outcomes")
	if n != 4 {
		b.Fatalf("fig4 outcomes = %d, want 4", n)
	}
}

// BenchmarkTable2Fig5Outcomes: Table II — exactly 3 outcomes under the
// store-atomic model, 4 under x86 (the extra one is the disagreement).
func BenchmarkTable2Fig5Outcomes(b *testing.B) {
	t, err := sesa.GetLitmus("fig5")
	if err != nil {
		b.Fatal(err)
	}
	var nx, na int
	for i := 0; i < b.N; i++ {
		nx = len(sesa.Enumerate(t.Prog, sesa.CheckerX86TSO))
		na = len(sesa.Enumerate(t.Prog, sesa.Checker370TSO))
	}
	b.ReportMetric(float64(nx), "x86-outcomes")
	b.ReportMetric(float64(na), "370-outcomes")
	if nx != 4 || na != 3 {
		b.Fatalf("fig5 outcomes x86=%d 370=%d, want 4 and 3", nx, na)
	}
	litmusBench(b, "fig5")
}

func litmusBench(b *testing.B, name string) {
	b.Helper()
	t, err := sesa.GetLitmus(name)
	if err != nil {
		b.Fatal(err)
	}
	pressured := sesa.WithSBPressure(t, 3)
	var x86Hits, atomicHits int
	for i := 0; i < b.N; i++ {
		x86Hits, atomicHits = 0, 0
		rx, err := sesa.RunLitmus(pressured, sesa.X86, 8, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if rx.Observed(t.Interesting) {
			x86Hits++
		}
		ra, err := sesa.RunLitmus(pressured, sesa.SLFSoSKey370, 8, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if ra.Observed(t.Interesting) {
			atomicHits++
		}
	}
	b.ReportMetric(float64(x86Hits), "x86-witnessed")
	b.ReportMetric(float64(atomicHits), "370key-witnessed")
	if t.Allowed(sesa.Checker370TSO).Contains(t.Interesting) {
		return // common outcome: either machine may see it
	}
	if atomicHits != 0 {
		b.Fatalf("%s: store-atomic machine witnessed the forbidden outcome", name)
	}
}

// BenchmarkTable4Parallel regenerates the top half of Table IV: the
// characterization of the 25 SPLASH-3/PARSEC workloads under 370-SLFSoS-key.
func BenchmarkTable4Parallel(b *testing.B) { table4(b, sesa.ParallelSuite) }

// BenchmarkTable4Sequential regenerates the bottom half of Table IV: the 36
// SPECrate 2017 workloads.
func BenchmarkTable4Sequential(b *testing.B) { table4(b, sesa.SequentialSuite) }

func table4(b *testing.B, s sesa.Suite) {
	profiles := sesa.ParallelProfiles()
	if s == sesa.SequentialSuite {
		profiles = sesa.SequentialProfiles()
	}
	jobs := make([]sesa.SweepJob, len(profiles))
	for i, p := range profiles {
		jobs[i] = sesa.SweepJob{Profile: p, Model: sesa.SLFSoSKey370, InstPerCore: benchInsts, Seed: benchSeed}
	}
	var fwd, gate, stallCyc, reexec []float64
	for i := 0; i < b.N; i++ {
		fwd, gate, stallCyc, reexec = nil, nil, nil, nil
		results, _ := sesa.RunSweep(jobs, 0)
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			ch := res.Char
			fwd = append(fwd, ch.ForwardedPct)
			gate = append(gate, ch.GateStallsPct)
			if ch.GateStallsPct > 0 {
				stallCyc = append(stallCyc, ch.AvgStallCycles)
			}
			reexec = append(reexec, ch.ReexecutedPct)
		}
	}
	b.ReportMetric(sesa.Mean(fwd), "fwd-%")
	b.ReportMetric(sesa.Mean(gate), "gate-stall-%")
	b.ReportMetric(sesa.Mean(stallCyc), "stall-cyc")
	b.ReportMetric(sesa.Mean(reexec), "reexec-%")
}

// BenchmarkFig9StallsParallel regenerates Figure 9 (top): dispatch-stall
// percentages per model over the parallel suite.
func BenchmarkFig9StallsParallel(b *testing.B) { fig9(b, sesa.ParallelSuite) }

// BenchmarkFig9StallsSequential regenerates Figure 9 (bottom).
func BenchmarkFig9StallsSequential(b *testing.B) { fig9(b, sesa.SequentialSuite) }

func fig9(b *testing.B, s sesa.Suite) {
	var chars map[string][]sesa.Characterization
	for i := 0; i < b.N; i++ {
		_, chars = runSuite(b, s, benchInsts)
	}
	for _, m := range sesa.AllModels() {
		var tot []float64
		for _, ch := range chars[m.String()] {
			tot = append(tot, ch.TotalStallPct)
		}
		b.ReportMetric(sesa.Mean(tot), fmt.Sprintf("stall%%-%s", m))
	}
}

// BenchmarkFig10ExecTimeParallel regenerates Figure 10 (top): execution
// time normalized to x86, per model, over the parallel suite. The paper's
// geomeans are 1.27 (NoSpec), 1.07 (SLFSpec), 1.05 (SLFSoS), 1.025
// (SLFSoS-key).
func BenchmarkFig10ExecTimeParallel(b *testing.B) { fig10(b, sesa.ParallelSuite) }

// BenchmarkFig10ExecTimeSequential regenerates Figure 10 (bottom); paper
// geomeans 1.23, 1.14, 1.12, 1.027.
func BenchmarkFig10ExecTimeSequential(b *testing.B) { fig10(b, sesa.SequentialSuite) }

func fig10(b *testing.B, s sesa.Suite) {
	var norm map[string][]float64
	for i := 0; i < b.N; i++ {
		norm, _ = runSuite(b, s, benchInsts)
	}
	for _, m := range sesa.AllModels() {
		b.ReportMetric(sesa.GeoMean(norm[m.String()]), fmt.Sprintf("time-%s", m))
	}
	// The paper's ordering must hold: x86 <= key <= SoS and SLFSpec,
	// NoSpec worst or near-worst among the 370 machines.
	key := sesa.GeoMean(norm[sesa.SLFSoSKey370.String()])
	sos := sesa.GeoMean(norm[sesa.SLFSoS370.String()])
	spec := sesa.GeoMean(norm[sesa.SLFSpec370.String()])
	if key > sos || sos > spec {
		b.Logf("warning: ordering key=%.3f sos=%.3f slfspec=%.3f deviates from the paper", key, sos, spec)
	}
}

// BenchmarkAblationKey isolates the contribution of the key (Section IV-B):
// SLFSoS (gate reopens on SB drain) versus SLFSoS-key (gate reopens on the
// forwarding store's write), on the most forwarding-intensive workload.
func BenchmarkAblationKey(b *testing.B) {
	var sos, key uint64
	for i := 0; i < b.N; i++ {
		chSoS, _, err := sesa.RunBenchmark("barnes", sesa.SLFSoS370, benchInsts, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		chKey, _, err := sesa.RunBenchmark("barnes", sesa.SLFSoSKey370, benchInsts, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		sos, key = chSoS.Cycles, chKey.Cycles
	}
	b.ReportMetric(float64(sos)/float64(key), "sos-over-key")
}

// BenchmarkAblationRFO isolates the read-for-ownership prefetch: without
// it, the serial SB drain exposes every store miss and the whole machine
// slows down (the baseline design choice DESIGN.md calls out).
func BenchmarkAblationRFO(b *testing.B) {
	p, _ := sesa.LookupProfile("radix")
	var with, without uint64
	for i := 0; i < b.N; i++ {
		for _, rfo := range []bool{true, false} {
			cfg := sesa.DefaultConfig(sesa.X86)
			cfg.Mem.RFOPrefetch = rfo
			w := sesa.BuildWorkload(p, cfg.Cores, benchInsts, benchSeed)
			st, err := sesa.RunWorkload(sesa.X86, cfg, w, 100_000_000)
			if err != nil {
				b.Fatal(err)
			}
			if rfo {
				with = st.Cycles
			} else {
				without = st.Cycles
			}
		}
	}
	b.ReportMetric(float64(without)/float64(with), "norfo-over-rfo")
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, _ := sesa.LookupProfile("swaptions")
	cfg := sesa.DefaultConfig(sesa.SLFSoSKey370)
	w := sesa.BuildWorkload(p, cfg.Cores, 20_000, benchSeed)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		st, err := sesa.RunWorkload(sesa.SLFSoSKey370, cfg, w, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		total += int(st.Total().RetiredInsts)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkCheckerEnumerate measures exhaustive-enumeration speed on the
// largest litmus state space in the suite (iriw, 4 threads).
func BenchmarkCheckerEnumerate(b *testing.B) {
	t, _ := sesa.GetLitmus("iriw")
	for i := 0; i < b.N; i++ {
		sesa.Enumerate(t.Prog, sesa.CheckerX86TSO)
	}
}

// BenchmarkTraceGeneration measures workload-generation speed.
func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := sesa.LookupProfile("barnes")
	for i := 0; i < b.N; i++ {
		sesa.BuildWorkload(p, 8, 10_000, uint64(i))
	}
}

// BenchmarkEnergyProxy quantifies the paper's energy argument (Section
// VI-B): the mechanism adds no snoops. The metric is the ratio of SQ/SB
// searches per retired load between 370-SLFSoS-key and x86 — close to 1.0,
// differing only through re-execution, never through extra mechanism snoops.
func BenchmarkEnergyProxy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		perLoad := func(model sesa.Model) float64 {
			_, st, err := sesa.RunBenchmark("barnes", model, benchInsts, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			t := st.Total()
			return float64(t.SQSearches) / float64(t.RetiredLoads)
		}
		ratio = perLoad(sesa.SLFSoSKey370) / perLoad(sesa.X86)
	}
	b.ReportMetric(ratio, "sq-searches-ratio")
	if ratio > 1.25 {
		b.Fatalf("key mechanism added %.2fx SQ searches; it must add none beyond re-execution", ratio)
	}
}

// BenchmarkSensitivitySBSize sweeps the SQ/SB capacity: smaller store
// buffers drain sooner (fewer gate closures) but stall dispatch more; the
// key's advantage over plain SLFSoS grows with SB depth. An extension
// experiment beyond the paper's fixed 56-entry configuration.
func BenchmarkSensitivitySBSize(b *testing.B) {
	for _, size := range []int{14, 28, 56, 112} {
		b.Run(fmt.Sprintf("SB%d", size), func(b *testing.B) {
			p, _ := sesa.LookupProfile("water_spatial")
			var sos, key uint64
			for i := 0; i < b.N; i++ {
				for _, model := range []sesa.Model{sesa.SLFSoS370, sesa.SLFSoSKey370} {
					cfg := sesa.DefaultConfig(model)
					cfg.Core.SQEntries = size
					w := sesa.BuildWorkload(p, cfg.Cores, benchInsts, benchSeed)
					st, err := sesa.RunWorkload(model, cfg, w, 100_000_000)
					if err != nil {
						b.Fatal(err)
					}
					if model == sesa.SLFSoS370 {
						sos = st.Cycles
					} else {
						key = st.Cycles
					}
				}
			}
			b.ReportMetric(float64(sos)/float64(key), "sos-over-key")
		})
	}
}

// BenchmarkSensitivityROBSize sweeps the ROB: larger windows lengthen the
// SA-speculative shadows and raise the gate-stall exposure, testing how the
// mechanism scales to wider machines.
func BenchmarkSensitivityROBSize(b *testing.B) {
	for _, size := range []int{112, 224, 448} {
		b.Run(fmt.Sprintf("ROB%d", size), func(b *testing.B) {
			p, _ := sesa.LookupProfile("barnes")
			var x86, key uint64
			for i := 0; i < b.N; i++ {
				for _, model := range []sesa.Model{sesa.X86, sesa.SLFSoSKey370} {
					cfg := sesa.DefaultConfig(model)
					cfg.Core.ROBEntries = size
					w := sesa.BuildWorkload(p, cfg.Cores, benchInsts, benchSeed)
					st, err := sesa.RunWorkload(model, cfg, w, 100_000_000)
					if err != nil {
						b.Fatal(err)
					}
					if model == sesa.X86 {
						x86 = st.Cycles
					} else {
						key = st.Cycles
					}
				}
			}
			b.ReportMetric(float64(key)/float64(x86), "key-over-x86")
		})
	}
}
