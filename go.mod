module sesa

go 1.22
