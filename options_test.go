package sesa_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sesa"
)

// loadDemo installs a small two-core program mix on sys.
func loadDemo(t *testing.T, sys *sesa.System) {
	t.Helper()
	progs := []sesa.Program{
		{
			sesa.StoreImm(0x100, 1),
			sesa.Load(1, 0x100),
			sesa.StoreImm(0x200, 2),
			sesa.Load(2, 0x200),
		},
		{
			sesa.Load(1, 0x200),
			sesa.StoreImm(0x300, 3),
			sesa.Load(2, 0x300),
		},
	}
	for i, p := range progs {
		if err := sys.LoadProgram(i, p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNewOptionsEquivalence locks in that New with options reproduces the
// imperative construction paths exactly.
func TestNewOptionsEquivalence(t *testing.T) {
	cfg := sesa.SmallConfig(2, sesa.SLFSoSKey370)

	old, err := sesa.NewSystem(cfg, "demo")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sesa.New(cfg, sesa.WithWorkloadName("demo"))
	if err != nil {
		t.Fatal(err)
	}
	loadDemo(t, old)
	loadDemo(t, opt)
	if err := old.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if err := opt.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if old.Stats().Workload != opt.Stats().Workload {
		t.Errorf("workload names diverge: %q vs %q", old.Stats().Workload, opt.Stats().Workload)
	}
	if old.Cycles() != opt.Cycles() {
		t.Errorf("cycles diverge: %d vs %d", old.Cycles(), opt.Cycles())
	}
	if a, b := old.Stats().Total(), opt.Stats().Total(); a != b {
		t.Errorf("totals diverge:\nsetters %+v\noptions %+v", a, b)
	}
}

func TestNewWithStepModeAndSinks(t *testing.T) {
	cfg := sesa.SmallConfig(2, sesa.X86)
	hists := sesa.NewHistSet(cfg.Cores)
	tracer := sesa.NewTracer(cfg.Cores, sesa.TraceOptions{MetricsInterval: 100})
	sys, err := sesa.New(cfg,
		sesa.WithWorkloadName("sinks"),
		sesa.WithTrace(tracer),
		sesa.WithHistograms(hists),
		sesa.WithStepMode(sesa.StepNaive))
	if err != nil {
		t.Fatal(err)
	}
	loadDemo(t, sys)
	if err := sys.Run(100_000); err != nil {
		t.Fatal(err)
	}

	// The naive stepper must match the default skip clock byte-for-byte.
	ref, err := sesa.New(cfg, sesa.WithWorkloadName("sinks"))
	if err != nil {
		t.Fatal(err)
	}
	loadDemo(t, ref)
	if err := ref.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if sys.Cycles() != ref.Cycles() {
		t.Errorf("naive %d cycles, skip %d", sys.Cycles(), ref.Cycles())
	}

	// The optioned-in sinks must actually be attached.
	if len(hists.Merged().Summaries()) == 0 {
		t.Error("WithHistograms attached nothing: merged histogram is empty")
	}
}

func TestRunContextTypedErrors(t *testing.T) {
	cfg := sesa.SmallConfig(1, sesa.X86)
	sys, err := sesa.New(cfg, sesa.WithWorkloadName("typed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadProgram(0, sesa.Program{sesa.Load(1, 0x100)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sys.RunContext(ctx, 100_000)
	var ce *sesa.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *sesa.CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}

	// The timeout path stays intact and distinct.
	sys2, err := sesa.New(cfg, sesa.WithWorkloadName("typed2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadProgram(0, sesa.Program{sesa.Load(1, 0x100)}); err != nil {
		t.Fatal(err)
	}
	err = sys2.RunContext(context.Background(), 1)
	var te *sesa.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *sesa.TimeoutError", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("timeout must not match context.Canceled; err = %v", err)
	}
}

func TestRunSweepContextCancel(t *testing.T) {
	var jobs []sesa.SweepJob
	for seed := uint64(1); seed <= 4; seed++ {
		j, err := sesa.BenchmarkJob("radix", sesa.X86, 200_000, seed)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(150*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	results, sum := sesa.RunSweepContext(ctx, jobs, 2)
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("canceled sweep took %s; workers were not freed", wall)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i := range results {
		if !results[i].Canceled() {
			t.Errorf("job %d: Canceled() = false, err = %v", i, results[i].Err)
		}
	}
	if sum.Canceled != len(jobs) {
		t.Errorf("summary Canceled = %d, want %d", sum.Canceled, len(jobs))
	}

	// An uncanceled context reproduces RunSweep.
	small, err := sesa.BenchmarkJob("radix", sesa.X86, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sesa.RunSweep([]sesa.SweepJob{small}, 1)
	b, _ := sesa.RunSweepContext(context.Background(), []sesa.SweepJob{small}, 1)
	if a[0].Err != nil || b[0].Err != nil {
		t.Fatalf("small jobs failed: %v / %v", a[0].Err, b[0].Err)
	}
	if a[0].Char != b[0].Char {
		t.Error("RunSweep and RunSweepContext(Background) diverge")
	}
}
